(* Transient thermal analysis of a real schedule: turn a scheduled
   benchmark into its exact per-PE power breakpoints, replay them through
   the event-driven transient engine, and compare the transient peak
   against the steady-state estimate the tables use.

   This exercises the part of HotSpot [2] the paper does not use directly
   (the RC dynamics), and shows why the steady-state abstraction is sound
   for its experiments: schedules repeat every hyperperiod, so temperatures
   ride close to the steady solution of the average power.

   Run with: dune exec examples/transient_hotspot.exe *)

let () =
  let graph = Core.Benchmarks.load 0 in
  let lib = Core.Catalog.platform_library () in
  let o = Core.Flow.run_platform ~graph ~lib ~policy:Core.Policy.Thermal_aware () in
  let s = o.Core.Flow.schedule in
  let model = Core.Hotspot.model o.Core.Flow.hotspot in
  let n_pes = Core.Schedule.n_pes s in

  (* The schedule's piecewise-constant power profile: a PE draws its
     task's WCPC while the task runs, plus its idle floor. One schedule
     time unit = 1 ms of wall clock, and the schedule repeats (a periodic
     application). Where this example used to sample that profile on the
     integrator's grid, Replay.of_schedule now extracts the exact
     breakpoints. *)
  let profile = Core.Replay.of_schedule ~time_unit:1e-3 ~lib s in
  let period = Core.Transient.profile_duration profile in
  let periods = 300 in

  Format.printf "Schedule: %a@." Core.Schedule.pp s;
  Format.printf
    "Replaying %d periods of %.3f s (%d power segments) through the \
     event-driven engine...@.@."
    periods period
    (Core.Transient.profile_segments profile);

  let engine = Core.Transient.create (Core.Transient.of_model model) in
  let r =
    Core.Transient.replay ~record:true engine ~profile
      ~t0:(Core.Transient.initial_ambient model)
      ~dt:(period /. 100.0) ~periods
  in

  let steady = o.Core.Flow.report in
  Format.printf "per-PE temperatures (°C):@.";
  Format.printf "  PE   steady(avg power)   transient peak   ripple@.";
  Array.iteri
    (fun pe p ->
      if pe < n_pes then
        let st = steady.Core.Metrics.block_temps.(pe) in
        Format.printf "  %d        %8.2f        %8.2f      %+6.2f@." pe st p (p -. st))
    r.Core.Transient.last_period_peak;

  (match
     Core.Transient.settle_time
       (Option.get r.Core.Transient.trace)
       ~steady:r.Core.Transient.final ~tol:2.0
   with
  | Some t -> Format.printf "@.Thermal transient settles (within 2 °C) by t = %.1f s.@." t
  | None -> Format.printf "@.Trace did not settle (unexpected).@.");

  Format.printf "@.engine: %a@." Core.Transient.pp_stats (Core.Transient.stats engine)
