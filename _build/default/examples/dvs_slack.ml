(* DVS slack reclamation: schedule a benchmark, then convert the remaining
   deadline slack into lower voltage/frequency levels and compare energy and
   temperature before/after — the classic continuation of thermal-aware
   scheduling.

   Run with: dune exec examples/dvs_slack.exe *)

let () =
  let graph = Core.Benchmarks.load 0 in
  let lib = Core.Catalog.platform_library () in
  let o = Core.Flow.run_platform ~graph ~lib ~policy:Core.Policy.Baseline () in
  let s = o.Core.Flow.schedule in
  Format.printf "Baseline schedule: makespan %.1f of deadline %.0f — %.0f slack@.@."
    s.Core.Schedule.makespan (Core.Graph.deadline graph)
    (Core.Graph.deadline graph -. s.Core.Schedule.makespan);

  let plan = Core.Dvs.reclaim ~lib s in

  (* Per-task level histogram. *)
  let counts = Hashtbl.create 8 in
  Array.iter
    (fun (l : Core.Dvs.level) ->
      Hashtbl.replace counts l.Core.Dvs.name
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts l.Core.Dvs.name)))
    plan.Core.Dvs.levels;
  Format.printf "Chosen V/f levels:@.";
  List.iter
    (fun (l : Core.Dvs.level) ->
      let n = Option.value ~default:0 (Hashtbl.find_opt counts l.Core.Dvs.name) in
      Format.printf "  %-6s (x%.2f speed, x%.3f power): %2d tasks@." l.Core.Dvs.name
        l.Core.Dvs.scale l.Core.Dvs.power_factor n)
    Core.Dvs.default_levels;

  let before = o.Core.Flow.report in
  let after = Core.Dvs.thermal_report plan ~hotspot:o.Core.Flow.hotspot in
  Format.printf "@.%-22s %12s %12s@." "" "before DVS" "after DVS";
  Format.printf "%-22s %12.1f %12.1f@." "task energy (J)"
    (Core.Metrics.total_task_energy s)
    (Core.Dvs.total_energy plan);
  Format.printf "%-22s %12.2f %12.2f@." "peak temperature (°C)"
    before.Core.Metrics.max_temp after.Core.Metrics.max_temp;
  Format.printf "%-22s %12.2f %12.2f@." "avg temperature (°C)"
    before.Core.Metrics.avg_temp after.Core.Metrics.avg_temp;
  Format.printf "%-22s %12.1f %12.1f@." "makespan" s.Core.Schedule.makespan
    plan.Core.Dvs.makespan;
  Format.printf "@.Energy saved: %.1f%%; the stretched plan is still safe: %s@."
    (100.0 *. Core.Dvs.energy_saving_ratio plan)
    (if Core.Dvs.validate plan ~lib = [] then "yes" else "NO (bug!)")
