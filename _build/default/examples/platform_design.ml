(* Platform-based design-space exploration — the scenario of the paper's
   Figure 1(b): a fixed multiprocessor platform running a custom embedded
   application, here an MPEG-style video pipeline (capture -> motion
   estimation over four slices -> DCT/quantize -> entropy code -> mux).

   The example builds the application graph by hand, runs every scheduling
   policy, and prints a per-PE Gantt chart, utilizations and temperatures so
   the thermal/performance trade is visible.

   Run with: dune exec examples/platform_design.exe *)

(* Task types index the platform library's WCET/WCPC tables (10 types). *)
let capture = 0
let motion_estimation = 1
let dct = 2
let quantize = 3
let entropy = 4
let mux = 5

let video_pipeline () =
  let b = Core.Graph.builder ~name:"video-pipeline" ~deadline:2200.0 in
  let cap = Core.Graph.add_task b ~name:"capture" ~task_type:capture () in
  (* Four parallel slices, each ME -> DCT -> Q. *)
  let slices =
    List.init 4 (fun i ->
        let me =
          Core.Graph.add_task b ~name:(Printf.sprintf "me%d" i)
            ~task_type:motion_estimation ()
        in
        let d =
          Core.Graph.add_task b ~name:(Printf.sprintf "dct%d" i) ~task_type:dct ()
        in
        let q =
          Core.Graph.add_task b ~name:(Printf.sprintf "q%d" i) ~task_type:quantize ()
        in
        Core.Graph.add_edge b ~data:64.0 cap me;
        Core.Graph.add_edge b ~data:64.0 me d;
        Core.Graph.add_edge b ~data:32.0 d q;
        q)
  in
  let ent = Core.Graph.add_task b ~name:"entropy" ~task_type:entropy () in
  let out = Core.Graph.add_task b ~name:"mux" ~task_type:mux () in
  List.iter (fun q -> Core.Graph.add_edge b ~data:32.0 q ent) slices;
  Core.Graph.add_edge b ~data:16.0 ent out;
  Core.Graph.build b

let bar width frac = String.make (int_of_float (frac *. float_of_int width)) '#'

let () =
  let graph = video_pipeline () in
  let lib = Core.Catalog.platform_library () in
  Format.printf "Application: %a@.@." Core.Graph.pp graph;

  List.iter
    (fun policy ->
      let o = Core.Flow.run_platform ~graph ~lib ~policy () in
      let s = o.Core.Flow.schedule in
      Format.printf "=== policy %-8s  %a@." (Core.Policy.name policy)
        Core.Metrics.pp_row o.Core.Flow.row;
      Format.printf "    makespan %.0f / deadline %.0f@." s.Core.Schedule.makespan
        (Core.Graph.deadline graph);
      let utils = Core.Metrics.utilizations s in
      let report = o.Core.Flow.report in
      Array.iteri
        (fun pe u ->
          Format.printf "    PE%d %5.1f%% util %6.1f °C |%-20s|@." pe (100.0 *. u)
            report.Core.Metrics.block_temps.(pe) (bar 20 u))
        utils;
      (* Gantt line for each PE: task(start-finish). *)
      for pe = 0 to Core.Schedule.n_pes s - 1 do
        Format.printf "    PE%d:" pe;
        List.iter
          (fun (e : Core.Schedule.entry) ->
            Format.printf " %s[%.0f-%.0f]"
              (Core.Graph.task graph e.Core.Schedule.task).Core.Task.name
              e.Core.Schedule.start e.Core.Schedule.finish)
          (Core.Schedule.tasks_on_pe s pe);
        Format.printf "@."
      done;
      Format.printf "@.")
    Core.Policy.all;

  Format.printf
    "Note how the thermal policy spreads the slice workers and stretches@.";
  Format.printf "toward the deadline, trading unused slack for temperature.@."
