(* Conditional task graphs (the Xie–Wolf substrate): a mode-switching
   application where a detector task decides at run time which of two
   processing chains executes. The scheduler may let mutually exclusive
   tasks time-share a PE, shortening the worst-case schedule.

   Run with: dune exec examples/conditional_app.exe *)

let build_app () =
  let b = Core.Graph.builder ~name:"mode-switch" ~deadline:1500.0 in
  let detect = Core.Graph.add_task b ~name:"detect" ~task_type:0 () in
  (* Mode A: heavy video chain. *)
  let va = Core.Graph.add_task b ~name:"video_dec" ~task_type:1 () in
  let fa = Core.Graph.add_task b ~name:"video_filt" ~task_type:2 () in
  (* Mode B: light audio chain. *)
  let au = Core.Graph.add_task b ~name:"audio_dec" ~task_type:3 () in
  let fb = Core.Graph.add_task b ~name:"audio_filt" ~task_type:4 () in
  let out = Core.Graph.add_task b ~name:"render" ~task_type:5 () in
  Core.Graph.add_edge b ~data:32.0 detect va;
  Core.Graph.add_edge b ~data:32.0 detect au;
  Core.Graph.add_edge b ~data:64.0 va fa;
  Core.Graph.add_edge b ~data:64.0 au fb;
  Core.Graph.add_edge b ~data:32.0 fa out;
  Core.Graph.add_edge b ~data:32.0 fb out;
  let g = Core.Graph.build b in
  (g, Core.Cond.make g [ (detect, va, 0, true); (detect, au, 0, false) ])

let () =
  let graph, cond = build_app () in
  Format.printf "Application: %a@." Core.Graph.pp graph;
  Format.printf "Mutually exclusive pairs:";
  List.iter (fun (a, b) -> Format.printf " (%d,%d)" a b) (Core.Cond.exclusion_pairs cond);
  Format.printf "@.@.";

  let lib = Core.Catalog.platform_library () in
  let pes = Core.Catalog.platform_instances 2 in
  let naive =
    Core.List_sched.run ~graph ~lib ~pes ~policy:Core.Policy.Baseline ()
  in
  let aware =
    Core.List_sched.run
      ~exclusive:(Core.Cond.mutually_exclusive cond)
      ~graph ~lib ~pes ~policy:Core.Policy.Baseline ()
  in
  Format.printf "Exclusion-blind schedule:  makespan %.1f@." naive.Core.Schedule.makespan;
  Format.printf "Exclusion-aware schedule:  makespan %.1f@.@."
    aware.Core.Schedule.makespan;
  Format.printf "%a@." Core.Schedule.pp aware;

  (* Per-scenario behaviour of the exclusion-aware schedule. *)
  Format.printf "Per-scenario makespans (only the active branch runs):@.";
  List.iter
    (fun assignment ->
      let label =
        String.concat ", "
          (List.map
             (fun (v, pol) -> Printf.sprintf "c%d=%b" v pol)
             assignment)
      in
      let finish t = (Core.Schedule.entry aware t).Core.Schedule.finish in
      let active = Core.Cond.active_tasks cond assignment in
      Format.printf "  [%s] %d active tasks, makespan %.1f@."
        (if label = "" then "unconditional" else label)
        (List.length active)
        (Core.Cond.scenario_makespan cond ~finish assignment))
    (Core.Cond.scenarios cond)
