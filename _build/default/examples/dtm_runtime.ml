(* Design time meets run time: simulate dynamic thermal management (DTM,
   the subject of the paper's reference [2]) over schedules produced by the
   different design-time policies.

   A hot design-time schedule trips the runtime throttle, which stretches
   execution and can break the deadline that looked safe on paper; the
   thermal-aware schedule stays below the trigger and sails through — the
   quantitative argument for doing the work at design time.

   Run with: dune exec examples/dtm_runtime.exe *)

let () =
  let graph = Core.Benchmarks.load 0 in
  let lib = Core.Catalog.platform_library () in
  let trigger = 90.0 in
  Format.printf
    "DTM: throttle to half speed above %.0f °C (hysteresis 3 °C), Bm1 on 4 PEs,@."
    trigger;
  Format.printf "200 back-to-back executions (thermally warmed up)@.@.";
  Format.printf "%-10s %10s %12s %12s %10s %10s@." "policy" "static" "simulated"
    "throttled" "peak °C" "deadline";
  List.iter
    (fun policy ->
      let o = Core.Flow.run_platform ~graph ~lib ~policy () in
      let params = { Core.Dtm.default_params with Core.Dtm.trigger; passes = 200 } in
      let r =
        Core.Dtm.simulate ~params ~lib ~hotspot:o.Core.Flow.hotspot
          o.Core.Flow.schedule
      in
      Format.printf "%-10s %10.1f %12.1f %11.1f%% %10.2f %10s@."
        (Core.Policy.name policy)
        o.Core.Flow.schedule.Core.Schedule.makespan r.Core.Dtm.makespan
        (100.0 *. r.Core.Dtm.throttled_fraction)
        r.Core.Dtm.peak_temperature
        (if r.Core.Dtm.meets_deadline then "met" else "MISSED"))
    Core.Policy.all;
  Format.printf
    "@.The hot design-time schedules trip the runtime throttle and stretch;@.";
  Format.printf
    "the thermal-aware schedule stays below the trigger, so DTM leaves it alone.@."
