(* Periodic multi-application scheduling: two applications with different
   periods share a 2-PE platform; the hyperperiod expansion schedules every
   job instance, and the steady-state temperatures follow from the
   hyperperiod-average power.

   Run with: dune exec examples/periodic_apps.exe *)

let app_of_benchmark ~bench ~period =
  Core.Periodic.make_app ~graph:(Core.Benchmarks.load bench) ~period

let () =
  (* Bm1 (deadline 790) every 1000; a second, lighter instance of Bm1's
     structure would be overkill, so use Bm1 at two rates via two apps. *)
  let pipeline =
    let b = Core.Graph.builder ~name:"sensor-pipeline" ~deadline:450.0 in
    let sense = Core.Graph.add_task b ~name:"sense" ~task_type:6 () in
    let fuse = Core.Graph.add_task b ~name:"fuse" ~task_type:7 () in
    let act = Core.Graph.add_task b ~name:"act" ~task_type:8 () in
    Core.Graph.add_edge b ~data:16.0 sense fuse;
    Core.Graph.add_edge b ~data:16.0 fuse act;
    Core.Periodic.make_app ~graph:(Core.Graph.build b) ~period:500.0
  in
  let heavy = app_of_benchmark ~bench:0 ~period:1000.0 in
  let apps = [ pipeline; heavy ] in
  Format.printf "hyperperiod(%.0f, %.0f) = %.0f@.@." 500.0 1000.0
    (Core.Periodic.hyperperiod apps);

  let lib = Core.Catalog.platform_library () in
  let pes = Core.Catalog.platform_instances 4 in
  let hotspot =
    Core.Hotspot.create
      (Core.Grid.layout
         (Array.map
            (fun (i : Core.Pe.inst) ->
              Core.Block.make
                ~name:(Printf.sprintf "PE%d" i.Core.Pe.inst_id)
                ~area:i.Core.Pe.kind.Core.Pe.area ())
            pes))
  in
  List.iter
    (fun (name, policy) ->
      let t, _ =
        Core.Periodic.schedule_adaptive ~policy ~hotspot ~apps ~lib ~pes ()
      in
      let report = Core.Periodic.thermal_report t ~hotspot in
      Format.printf "policy %-9s: %d jobs, utilization %.1f%%, avg power %.2f W@."
        name
        (Array.length t.Core.Periodic.entries)
        (100.0 *. Core.Periodic.utilization t)
        (Core.Periodic.average_power t);
      Format.printf "  deadlines %s; temps: %.2f °C max, %.2f °C avg@."
        (if Core.Periodic.meets_all_deadlines t then "all met" else "MISSED")
        report.Core.Metrics.max_temp report.Core.Metrics.avg_temp)
    [
      ("baseline", Core.Policy.Baseline);
      ("thermal", Core.Policy.Thermal_aware);
    ];
  Format.printf
    "@.Each pipeline instance releases at k x 500 and must finish 450 later;@.";
  Format.printf "the heavy app interleaves at half the rate on the same PEs.@.";
  Format.printf
    "With the hyperperiod fixed, average power cannot be stretched away;@.";
  Format.printf
    "the thermal gain here comes purely from balancing energy across PEs.@."
