(* Communication-aware design: linear task clustering against a mesh NoC.

   On a network-on-chip, cross-PE traffic pays per-hop latency and energy.
   Fusing the heaviest producer-consumer chains (Sarkar-style linear
   clustering) internalizes that traffic before scheduling; the mesh then
   only carries the light residual edges.

   Run with: dune exec examples/noc_clustering.exe *)

let () =
  let graph = Core.Benchmarks.load 1 (* Bm2: 35 tasks, 40 edges *) in
  Format.printf "Workload: %a@." Core.Graph.pp graph;
  Format.printf "%a@.@." Core.Analysis.pp (Core.Analysis.analyze graph);

  (* A 2x2 mesh NoC platform with an expensive interconnect: 60 time units
     per hop (e.g. a shared, arbitrated fabric). *)
  let mesh_lib =
    Core.Library.generate ~seed:77 ~n_task_types:Core.Benchmarks.n_task_types
      ~kinds:[ Core.Catalog.platform_kind () ]
      ~comm:(Core.Comm.mesh ~cols:2 ~per_hop_delay:60.0 ())
      ()
  in
  let pes = Core.Catalog.platform_instances 4 in

  let evaluate name g lib =
    let s = Core.List_sched.run ~graph:g ~lib ~pes ~policy:Core.Policy.Baseline () in
    Format.printf "%-22s makespan %7.1f, NoC energy %8.1f J@." name
      s.Core.Schedule.makespan
      (Core.Metrics.total_comm_energy s ~lib);
    s
  in
  let _plain = evaluate "unclustered" graph mesh_lib in
  List.iter
    (fun threshold ->
      let c = Core.Cluster.linear ~threshold graph in
      let clib =
        Core.Library.aggregate mesh_lib
          ~member_types:(Core.Cluster.member_types c graph)
      in
      let name = Printf.sprintf "clustered (>%g bytes)" threshold in
      Format.printf "  %d clusters, %.0f bytes internalized:@."
        (Core.Graph.n_tasks c.Core.Cluster.clustered)
        c.Core.Cluster.internalized_data;
      ignore (evaluate name c.Core.Cluster.clustered clib : Core.Schedule.t))
    [ 100.0; 60.0; 0.0 ];
  Format.printf
    "@.Lower thresholds fuse more chains and cut NoC energy by up to 3.5x,@.";
  Format.printf
    "but the fused chains serialize and the makespan grows: the DC-driven@.";
  Format.printf
    "scheduler already co-locates chatty tasks when the fabric is slow, so@.";
  Format.printf
    "clustering buys *guaranteed* co-location (and energy), not speed —@.";
  Format.printf "the classic granularity trade.@."
