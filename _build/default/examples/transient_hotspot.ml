(* Transient thermal analysis of a real schedule: replay the per-PE power
   profile of a scheduled benchmark through the RC network's transient
   integrators, and compare the transient peak against the steady-state
   estimate the tables use.

   This exercises the part of HotSpot [2] the paper does not use directly
   (the RC dynamics), and shows why the steady-state abstraction is sound
   for its experiments: schedules repeat every hyperperiod, so temperatures
   ride close to the steady solution of the average power.

   Run with: dune exec examples/transient_hotspot.exe *)

let () =
  let graph = Core.Benchmarks.load 0 in
  let lib = Core.Catalog.platform_library () in
  let o = Core.Flow.run_platform ~graph ~lib ~policy:Core.Policy.Thermal_aware () in
  let s = o.Core.Flow.schedule in
  let hotspot = o.Core.Flow.hotspot in
  let model = Core.Hotspot.model hotspot in
  let n_pes = Core.Schedule.n_pes s in

  (* Piecewise power profile: a PE draws its task's WCPC while the task
     runs, plus its idle floor. One schedule time unit = 1 ms of wall
     clock, and the schedule repeats (a periodic application). *)
  let time_unit = 1e-3 in
  let period = s.Core.Schedule.makespan *. time_unit in
  let power_at wall_clock =
    let t = Float.rem wall_clock period /. time_unit in
    Array.init n_pes (fun pe ->
        let idle = s.Core.Schedule.pes.(pe).Core.Pe.kind.Core.Pe.idle_power in
        let running =
          List.fold_left
            (fun acc (e : Core.Schedule.entry) ->
              if e.Core.Schedule.start <= t && t < e.Core.Schedule.finish then
                let tt =
                  (Core.Graph.task graph e.Core.Schedule.task).Core.Task.task_type
                in
                acc
                +. Core.Library.wcpc lib ~task_type:tt
                     ~kind:s.Core.Schedule.pes.(pe).Core.Pe.kind.Core.Pe.kind_id
              else acc)
            0.0
            (Core.Schedule.tasks_on_pe s pe)
        in
        idle +. running)
  in

  Format.printf "Schedule: %a@." Core.Schedule.pp s;
  Format.printf "Replaying %.0f periods of %.3f s through backward Euler...@.@."
    300.0 period;

  let t0 = Core.Transient.initial_ambient model in
  let dt = 5e-3 in
  let steps = int_of_float (300.0 *. period /. dt) in
  let trace = Core.Transient.backward_euler model ~power:power_at ~t0 ~dt ~steps in

  (* Transient block peaks over the last ten periods (warmed up). *)
  let start_k = steps - int_of_float (10.0 *. period /. dt) in
  let peak = Array.make n_pes neg_infinity in
  for k = start_k to steps do
    for pe = 0 to n_pes - 1 do
      peak.(pe) <- Float.max peak.(pe) trace.Core.Transient.temps.(k).(pe)
    done
  done;

  let steady = o.Core.Flow.report in
  Format.printf "per-PE temperatures (°C):@.";
  Format.printf "  PE   steady(avg power)   transient peak   ripple@.";
  Array.iteri
    (fun pe p ->
      let st = steady.Core.Metrics.block_temps.(pe) in
      Format.printf "  %d        %8.2f        %8.2f      %+6.2f@." pe st p (p -. st))
    peak;

  match
    Core.Transient.settle_time trace
      ~steady:trace.Core.Transient.temps.(steps)
      ~tol:2.0
  with
  | Some t -> Format.printf "@.Thermal transient settles (within 2 °C) by t = %.1f s.@." t
  | None -> Format.printf "@.Trace did not settle (unexpected).@."
