examples/noc_clustering.mli:
