examples/conditional_app.ml: Core Format List Printf String
