examples/cosynth_flow.mli:
