examples/periodic_apps.ml: Array Core Format List Printf
