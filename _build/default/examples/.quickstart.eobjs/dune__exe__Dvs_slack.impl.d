examples/dvs_slack.ml: Array Core Format Hashtbl List Option
