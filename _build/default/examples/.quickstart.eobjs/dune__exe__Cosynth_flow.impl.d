examples/cosynth_flow.ml: Array Core Format List
