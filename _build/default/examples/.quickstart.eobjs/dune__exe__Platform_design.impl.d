examples/platform_design.ml: Array Core Format List Printf String
