examples/transient_hotspot.ml: Array Core Float Format List
