examples/dvs_slack.mli:
