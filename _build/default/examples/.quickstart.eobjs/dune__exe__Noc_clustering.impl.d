examples/noc_clustering.ml: Core Format List Printf
