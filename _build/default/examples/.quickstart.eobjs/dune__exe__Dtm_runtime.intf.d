examples/dtm_runtime.mli:
