examples/platform_design.mli:
