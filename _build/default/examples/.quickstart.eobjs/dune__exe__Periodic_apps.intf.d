examples/periodic_apps.mli:
