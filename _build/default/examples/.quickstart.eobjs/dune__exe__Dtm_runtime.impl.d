examples/dtm_runtime.ml: Core Format List
