examples/conditional_app.mli:
