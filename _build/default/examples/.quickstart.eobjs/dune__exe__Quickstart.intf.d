examples/quickstart.mli:
