examples/transient_hotspot.mli:
