(* The full co-synthesis flow of the paper's Figure 1(a): PE allocation from
   a heterogeneous catalogue, thermal-aware GA floorplanning with HotSpot in
   the loop, the thermal-aware ASP, and temperature extraction — with the
   stage trace printed as it is in the figure.

   Run with: dune exec examples/cosynth_flow.exe *)

let () =
  let graph = Core.Benchmarks.load 1 (* Bm2: 35 tasks, 40 edges *) in
  let lib = Core.Catalog.default_library () in
  Format.printf "Input task graph: %a@." Core.Graph.pp graph;
  Format.printf "Technology library: %a@.@." Core.Library.pp lib;

  List.iter
    (fun policy ->
      let o = Core.Flow.run_cosynthesis ~graph ~lib ~policy () in
      Format.printf "=== co-synthesis with %s ===@." (Core.Policy.name policy);
      List.iter
        (fun (e : Core.Flow.log_entry) ->
          Format.printf "  [%s] %s@."
            (Core.Flow.stage_name e.Core.Flow.stage)
            e.Core.Flow.detail)
        o.Core.Flow.log;
      Format.printf "  selected PEs (catalogue cost %.0f):@." o.Core.Flow.arch_cost;
      Array.iter
        (fun pe -> Format.printf "    %a@." Core.Pe.pp_inst pe)
        o.Core.Flow.schedule.Core.Schedule.pes;
      Format.printf "  floorplan:@.    %a@." Core.Placement.pp o.Core.Flow.placement;
      Format.printf "  result: %a@.@." Core.Metrics.pp_row o.Core.Flow.row)
    [ Core.Policy.Power_aware Core.Policy.Min_task_energy; Core.Policy.Thermal_aware ];

  Format.printf
    "The thermal flow buys one PE of headroom and a temperature-aware@.";
  Format.printf
    "floorplan, then spends both on a cooler, deadline-respecting schedule.@."
