(* Quickstart: schedule one of the paper's benchmarks on the four-PE
   platform, first performance-only, then thermal-aware, and compare the
   paper's three metrics.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* Bm1: 19 tasks, 19 edges, deadline 790 (Table 1 of the paper). *)
  let graph = Core.Benchmarks.load 0 in
  Format.printf "Benchmark: %a@.@." Core.Graph.pp graph;

  let lib = Core.Catalog.platform_library () in
  let run policy = Core.Flow.run_platform ~graph ~lib ~policy () in

  let baseline = run Core.Policy.Baseline in
  let thermal = run Core.Policy.Thermal_aware in

  Format.printf "baseline      : %a@." Core.Metrics.pp_row baseline.Core.Flow.row;
  Format.printf "thermal-aware : %a@.@." Core.Metrics.pp_row thermal.Core.Flow.row;

  Format.printf "Peak temperature reduced by %.1f °C, average by %.1f °C.@."
    (baseline.Core.Flow.row.Core.Metrics.max_temp
    -. thermal.Core.Flow.row.Core.Metrics.max_temp)
    (baseline.Core.Flow.row.Core.Metrics.avg_temp
    -. thermal.Core.Flow.row.Core.Metrics.avg_temp);

  Format.printf
    "Both schedules meet the %.0f deadline: baseline makespan %.1f, thermal %.1f.@."
    (Core.Graph.deadline graph)
    baseline.Core.Flow.schedule.Core.Schedule.makespan
    thermal.Core.Flow.schedule.Core.Schedule.makespan
