module Matrix = Tats_linalg.Matrix
module Lu = Tats_linalg.Lu

type trace = { times : float array; temps : float array array }

let initial_ambient model =
  Array.make (Rcmodel.n_nodes model) (Rcmodel.package model).Package.ambient

let derivative model c_inv a temps rhs =
  let flow = Matrix.mul_vec a temps in
  Array.init (Rcmodel.n_nodes model) (fun i -> c_inv.(i) *. (rhs.(i) -. flow.(i)))

let check_args model t0 dt steps =
  if Array.length t0 <> Rcmodel.n_nodes model then
    invalid_arg "Transient: t0 must cover all nodes";
  if dt <= 0.0 || steps < 1 then invalid_arg "Transient: bad dt/steps"

let rk4 model ~power ~t0 ~dt ~steps =
  check_args model t0 dt steps;
  let a = Rcmodel.system_matrix model in
  let c_inv = Array.map (fun c -> 1.0 /. c) (Rcmodel.capacitances model) in
  let n = Rcmodel.n_nodes model in
  let times = Array.make (steps + 1) 0.0 in
  let temps = Array.make (steps + 1) t0 in
  temps.(0) <- Array.copy t0;
  for k = 1 to steps do
    let t_prev = times.(k - 1) and y = temps.(k - 1) in
    let rhs_at time = Rcmodel.rhs model ~power:(power time) in
    let f time y = derivative model c_inv a y (rhs_at time) in
    let add y k scale = Array.init n (fun i -> y.(i) +. (scale *. k.(i))) in
    let k1 = f t_prev y in
    let k2 = f (t_prev +. (dt /. 2.0)) (add y k1 (dt /. 2.0)) in
    let k3 = f (t_prev +. (dt /. 2.0)) (add y k2 (dt /. 2.0)) in
    let k4 = f (t_prev +. dt) (add y k3 dt) in
    temps.(k) <-
      Array.init n (fun i ->
          y.(i) +. (dt /. 6.0 *. (k1.(i) +. (2.0 *. k2.(i)) +. (2.0 *. k3.(i)) +. k4.(i))));
    times.(k) <- t_prev +. dt
  done;
  { times; temps }

let backward_euler model ~power ~t0 ~dt ~steps =
  check_args model t0 dt steps;
  let a = Rcmodel.system_matrix model in
  let c = Rcmodel.capacitances model in
  let n = Rcmodel.n_nodes model in
  (* (C/dt + A) T_{k+1} = C/dt T_k + rhs(t_{k+1}) *)
  let lhs = Matrix.copy a in
  for i = 0 to n - 1 do
    Matrix.add_to lhs i i (c.(i) /. dt)
  done;
  let factored = Lu.factor lhs in
  let times = Array.make (steps + 1) 0.0 in
  let temps = Array.make (steps + 1) t0 in
  temps.(0) <- Array.copy t0;
  for k = 1 to steps do
    let time = float_of_int k *. dt in
    let rhs = Rcmodel.rhs model ~power:(power time) in
    let b = Array.init n (fun i -> (c.(i) /. dt *. temps.(k - 1).(i)) +. rhs.(i)) in
    temps.(k) <- Lu.solve_factored factored b;
    times.(k) <- time
  done;
  { times; temps }

let settle_time trace ~steady ~tol =
  let within temps =
    let ok = ref true in
    Array.iteri (fun i t -> if Float.abs (t -. steady.(i)) > tol then ok := false) temps;
    !ok
  in
  let n = Array.length trace.times in
  (* Scan backwards for the earliest index from which everything stays
     settled. *)
  let rec scan k last_good =
    if k < 0 then last_good
    else if within trace.temps.(k) then scan (k - 1) (Some k)
    else last_good
  in
  match scan (n - 1) None with
  | Some k -> Some trace.times.(k)
  | None -> None
