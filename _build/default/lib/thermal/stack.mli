(** Multi-layer package model: per-block die, TIM (thermal interface
    material) and spreader nodes, lateral conduction inside the die and the
    spreader layers, then a lumped sink with convection to ambient.

    This is closer to HotSpot's full stack than the single-constriction
    compact model in {!Rcmodel}; block-to-block coupling through the copper
    spreader emerges from the physics instead of a calibrated coefficient.
    Used as a cross-check and in the solver ablation; the scheduler keeps
    the cheaper compact model. *)

type params = {
  tim_thickness : float;    (** m *)
  k_tim : float;            (** W/(m K) *)
  spreader_thickness : float;
  k_spreader : float;
  spreader_margin : float;
      (** how far the spreader extends past each block edge, as a fraction
          of the die diagonal (widens the lateral paths) *)
}

val default_params : params
(** 50 um TIM at 4 W/(m K), 1 mm copper spreader. *)

type t

val build :
  ?package:Package.t -> ?params:params -> Tats_floorplan.Placement.t -> t

val n_blocks : t -> int

val block_temperatures : t -> power:float array -> float array
(** Steady-state die-layer block temperatures, °C. *)

val layer_temperatures : t -> power:float array -> float array * float array * float array
(** (die, tim, spreader) per-block node temperatures — the vertical gradient
    through the stack. *)

val sink_temperature : t -> power:float array -> float
(** Must equal ambient + R_conv x total power (conservation; tested). *)
