(** Grid-mode thermal model: the die is discretized into rectangular cells
    (HotSpot's "grid model"), each cell a node with lateral conduction to
    its 4-neighbours and a vertical path to the shared spreader/sink stack.
    Block powers are spread over the cells they cover, and block
    temperatures read back as area-weighted cell averages.

    The resulting system is large and sparse; it is solved with conjugate
    gradient (see {!Tats_linalg.Cg}). Used to cross-validate the compact
    block model and in the solver ablation bench. *)

type t

val build : ?nx:int -> ?ny:int -> Package.t -> Tats_floorplan.Placement.t -> t
(** Defaults: 32x32 cells over the die bounding box. *)

val n_cells : t -> int

val block_temperatures : t -> power:float array -> float array
(** [power] per block (W); returns per-block mean temperature (°C). *)

val cell_temperatures : t -> power:float array -> float array array
(** Row-major [ny][nx] cell temperatures, for heat-map rendering. *)

val max_cell_temperature : t -> power:float array -> float
