(** Thermal package parameters for the compact HotSpot-style model.

    The heat path is: silicon block -> (conduction through the die +
    spreading into the heat spreader) -> lumped spreader -> lumped heat sink
    -> convection to ambient, with lateral conduction between abutting
    blocks. Defaults are tuned for the millimeter-scale embedded PEs of the
    paper's experiments: per-block local resistances of a few K/W and a
    shared package path below 1 K/W, which lands block temperatures in the
    paper's 60–120 °C band for 5–45 W designs. *)

type t = {
  ambient : float;         (** °C; HotSpot's customary 45 °C *)
  die_thickness : float;   (** m *)
  k_die : float;           (** silicon conductivity, W/(m K) *)
  die_cap : float;         (** volumetric heat capacity of Si, J/(m^3 K) *)
  r_spread_coeff : float;
      (** per-block spreading resistance = coeff / sqrt(area/pi), K/W *)
  r_spreader_sink : float; (** lumped spreader->sink resistance, K/W *)
  r_convection : float;    (** sink->ambient convection resistance, K/W *)
  c_spreader : float;      (** lumped spreader capacitance, J/K *)
  c_sink : float;          (** lumped sink capacitance, J/K *)
  leak_beta : float;       (** leakage temperature exponent, 1/K *)
  leak_t_ref : float;      (** temperature at which nominal idle power holds *)
}

val default : t

val block_vertical_resistance : t -> area:float -> float
(** Die conduction + spreading: [t/(k A) + coeff / sqrt(A/pi)]. *)

val lateral_conductance : t -> shared_len:float -> distance:float -> float
(** [k_die * die_thickness * shared_len / distance], W/K; 0 when the blocks
    do not abut. *)

val pp : Format.formatter -> t -> unit
