(** Steady-state temperature extraction.

    The network matrix is constant for a fixed floorplan, so it is factored
    once and each power inquiry costs a single back-substitution — the
    operation the thermal-aware scheduler performs for every candidate
    (task, PE) pair. *)

type t
(** A factored steady-state solver for one RC model. *)

val create : Rcmodel.t -> t

val solve : t -> power:float array -> float array
(** [solve t ~power] returns node temperatures (length [n_nodes]); the first
    [n_blocks] entries are the block temperatures in °C. [power] is per
    block, W, non-negative. *)

val block_temperatures : t -> power:float array -> float array
(** Just the block entries. *)

val solve_with_leakage :
  ?max_iter:int ->
  ?tol:float ->
  t ->
  dynamic:float array ->
  idle:float array ->
  float array * int
(** Fixed-point iteration coupling temperature and leakage:
    [p_i = dynamic_i + idle_i * exp(beta * (T_i - T_ref))]. Returns block
    temperatures and the iteration count. [max_iter] defaults to 50, [tol]
    (max °C change) to 1e-6. Raises [Failure] on divergence. *)

val model : t -> Rcmodel.t
