module Matrix = Tats_linalg.Matrix
module Lu = Tats_linalg.Lu
module Block = Tats_floorplan.Block
module Placement = Tats_floorplan.Placement

type params = {
  tim_thickness : float;
  k_tim : float;
  spreader_thickness : float;
  k_spreader : float;
  spreader_margin : float;
}

let default_params =
  {
    tim_thickness = 5e-5;
    k_tim = 4.0;
    spreader_thickness = 1e-3;
    k_spreader = 400.0;
    spreader_margin = 0.25;
  }

type t = {
  package : Package.t;
  n_blocks : int;
  factored : Lu.t;
  g_amb : float array;
  sink : int;
}

(* Node layout: [0..n) die, [n..2n) tim, [2n..3n) spreader, 3n = sink. *)
let build ?(package = Package.default) ?(params = default_params) placement =
  let rects = placement.Placement.rects in
  let n = Array.length rects in
  if n = 0 then invalid_arg "Stack.build: empty floorplan";
  let nodes = (3 * n) + 1 in
  let sink = 3 * n in
  let a = Matrix.create nodes nodes in
  let connect i j g =
    if g > 0.0 then begin
      Matrix.add_to a i i g;
      Matrix.add_to a j j g;
      Matrix.add_to a i j (-.g);
      Matrix.add_to a j i (-.g)
    end
  in
  let die = Fun.id and tim i = n + i and spr i = (2 * n) + i in
  let diag = Float.hypot placement.Placement.die_w placement.Placement.die_h in
  (* Lateral conduction inside the die, and inside the spreader (where the
     copper plate is modelled as enlarged block shadows: abutting blocks
     couple over a wider section). *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let shared = Block.shared_boundary rects.(i) rects.(j) in
      let dist = Block.center_distance rects.(i) rects.(j) in
      connect (die i) (die j)
        (Package.lateral_conductance package ~shared_len:shared ~distance:dist);
      if dist > 0.0 then begin
        let widened = shared +. (2.0 *. params.spreader_margin *. diag /. 4.0) in
        let g_spr =
          if shared > 0.0 then
            params.k_spreader *. params.spreader_thickness *. widened /. dist
          else 0.0
        in
        connect (spr i) (spr j) g_spr
      end
    done
  done;
  for i = 0 to n - 1 do
    let area = Block.rect_area rects.(i) in
    (* die -> TIM -> spreader: pure slab conduction, half-thickness on each
       side of the interface node. *)
    let g_die_tim =
      1.0
      /. ((package.Package.die_thickness /. 2.0 /. (package.Package.k_die *. area))
         +. (params.tim_thickness /. 2.0 /. (params.k_tim *. area)))
    in
    let g_tim_spr =
      1.0
      /. ((params.tim_thickness /. 2.0 /. (params.k_tim *. area))
         +. (params.spreader_thickness /. 2.0 /. (params.k_spreader *. area)))
    in
    connect (die i) (tim i) g_die_tim;
    connect (tim i) (spr i) g_tim_spr;
    (* spreader -> sink: the lumped spreader-to-sink resistance shared in
       proportion to block area. *)
    let total_area =
      Array.fold_left (fun acc r -> acc +. Block.rect_area r) 0.0 rects
    in
    let g_spr_sink =
      area /. total_area /. package.Package.r_spreader_sink
    in
    connect (spr i) sink g_spr_sink
  done;
  let g_amb = Array.make nodes 0.0 in
  g_amb.(sink) <- 1.0 /. package.Package.r_convection;
  Matrix.add_to a sink sink g_amb.(sink);
  { package; n_blocks = n; factored = Lu.factor a; g_amb; sink }

let n_blocks t = t.n_blocks

let solve t ~power =
  if Array.length power <> t.n_blocks then
    invalid_arg "Stack: power vector must have one entry per block";
  Array.iter (fun p -> if p < 0.0 then invalid_arg "Stack: negative power") power;
  let nodes = (3 * t.n_blocks) + 1 in
  let rhs =
    Array.init nodes (fun i ->
        let inject = if i < t.n_blocks then power.(i) else 0.0 in
        inject +. (t.g_amb.(i) *. t.package.Package.ambient))
  in
  Lu.solve_factored t.factored rhs

let block_temperatures t ~power = Array.sub (solve t ~power) 0 t.n_blocks

let layer_temperatures t ~power =
  let temps = solve t ~power in
  let n = t.n_blocks in
  ( Array.sub temps 0 n,
    Array.sub temps n n,
    Array.sub temps (2 * n) n )

let sink_temperature t ~power = (solve t ~power).(t.sink)
