module Placement = Tats_floorplan.Placement

type t = {
  package : Package.t;
  placement : Placement.t;
  model : Rcmodel.t;
  solver : Steady.t;
  mutable inquiries : int;
}

let create ?(package = Package.default) placement =
  let model = Rcmodel.build package placement in
  { package; placement; model; solver = Steady.create model; inquiries = 0 }

let n_blocks t = Rcmodel.n_blocks t.model
let package t = t.package
let placement t = t.placement
let model t = t.model
let solver t = t.solver
let inquiries t = t.inquiries

let query t ~power =
  t.inquiries <- t.inquiries + 1;
  Steady.block_temperatures t.solver ~power

let query_with_leakage t ~dynamic ~idle =
  t.inquiries <- t.inquiries + 1;
  fst (Steady.solve_with_leakage t.solver ~dynamic ~idle)

let average_temperature t ~power = Tats_util.Stats.mean (query t ~power)
let peak_temperature t ~power = Tats_util.Stats.max (query t ~power)
