type t = {
  ambient : float;
  die_thickness : float;
  k_die : float;
  die_cap : float;
  r_spread_coeff : float;
  r_spreader_sink : float;
  r_convection : float;
  c_spreader : float;
  c_sink : float;
  leak_beta : float;
  leak_t_ref : float;
}

let default =
  {
    ambient = 45.0;
    die_thickness = 5e-4;
    k_die = 110.0;
    die_cap = 1.75e6;
    r_spread_coeff = 0.008;
    r_spreader_sink = 0.1;
    r_convection = 0.45;
    c_spreader = 30.0;
    c_sink = 150.0;
    leak_beta = 0.02;
    leak_t_ref = 25.0;
  }

let block_vertical_resistance t ~area =
  if area <= 0.0 then invalid_arg "Package.block_vertical_resistance: bad area";
  (t.die_thickness /. (t.k_die *. area))
  +. (t.r_spread_coeff /. sqrt (area /. Float.pi))

let lateral_conductance t ~shared_len ~distance =
  if shared_len <= 0.0 || distance <= 0.0 then 0.0
  else t.k_die *. t.die_thickness *. shared_len /. distance

let pp ppf t =
  Format.fprintf ppf
    "@[ambient %.1f°C, die %.0fum Si (k=%.0f), R_conv %.2f K/W, leak beta %.3f@]"
    t.ambient (t.die_thickness *. 1e6) t.k_die t.r_convection t.leak_beta
