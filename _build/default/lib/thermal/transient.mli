(** Transient thermal simulation: [C dT/dt = -A T + rhs(t)].

    Two integrators: explicit RK4 (accurate for small steps) and backward
    Euler (unconditionally stable, one LU factorization per step size —
    suited to the stiff block/package time-constant mix). *)

type trace = { times : float array; temps : float array array }
(** [temps.(k)] is the node temperature vector at [times.(k)]. *)

val initial_ambient : Rcmodel.t -> float array
(** All nodes at the package ambient. *)

val rk4 :
  Rcmodel.t ->
  power:(float -> float array) ->
  t0:float array ->
  dt:float ->
  steps:int ->
  trace
(** [power time] gives per-block power at [time]. *)

val backward_euler :
  Rcmodel.t ->
  power:(float -> float array) ->
  t0:float array ->
  dt:float ->
  steps:int ->
  trace

val settle_time :
  trace -> steady:float array -> tol:float -> float option
(** First time at which every node is within [tol] °C of [steady] and stays
    there for the rest of the trace. *)
