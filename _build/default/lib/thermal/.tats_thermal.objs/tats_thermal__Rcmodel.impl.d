lib/thermal/rcmodel.ml: Array Package Tats_floorplan Tats_linalg
