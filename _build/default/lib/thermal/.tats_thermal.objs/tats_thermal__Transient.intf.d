lib/thermal/transient.mli: Rcmodel
