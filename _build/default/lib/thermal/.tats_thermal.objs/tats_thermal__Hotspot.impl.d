lib/thermal/hotspot.ml: Package Rcmodel Steady Tats_floorplan Tats_util
