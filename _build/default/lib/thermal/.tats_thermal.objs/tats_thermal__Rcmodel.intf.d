lib/thermal/rcmodel.mli: Package Tats_floorplan Tats_linalg
