lib/thermal/hotspot.mli: Package Rcmodel Steady Tats_floorplan
