lib/thermal/stack.mli: Package Tats_floorplan
