lib/thermal/steady.ml: Array Float Package Rcmodel Tats_linalg
