lib/thermal/gridmodel.mli: Package Tats_floorplan
