lib/thermal/stack.ml: Array Float Fun Package Tats_floorplan Tats_linalg
