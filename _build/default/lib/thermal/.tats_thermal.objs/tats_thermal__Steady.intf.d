lib/thermal/steady.mli: Rcmodel
