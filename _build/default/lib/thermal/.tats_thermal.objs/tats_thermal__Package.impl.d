lib/thermal/package.ml: Float Format
