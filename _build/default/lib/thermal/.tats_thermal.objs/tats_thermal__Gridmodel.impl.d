lib/thermal/gridmodel.ml: Array Float Package Tats_floorplan Tats_linalg
