lib/thermal/transient.ml: Array Float Package Rcmodel Tats_linalg
