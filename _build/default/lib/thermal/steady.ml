module Lu = Tats_linalg.Lu

type t = { model : Rcmodel.t; factored : Lu.t }

let create model = { model; factored = Lu.factor (Rcmodel.system_matrix model) }

let model t = t.model

let solve t ~power =
  Array.iter
    (fun p -> if p < 0.0 then invalid_arg "Steady.solve: negative power")
    power;
  Lu.solve_factored t.factored (Rcmodel.rhs t.model ~power)

let block_temperatures t ~power =
  Array.sub (solve t ~power) 0 (Rcmodel.n_blocks t.model)

(* The exponential leakage feedback can run away on very hot designs; real
   silicon saturates (and throttles) first, so the temperature excursion in
   the exponent is capped at 100 K above the reference. *)
let max_leak_excursion = 100.0

let solve_with_leakage ?(max_iter = 200) ?(tol = 1e-6) t ~dynamic ~idle =
  let n = Rcmodel.n_blocks t.model in
  if Array.length dynamic <> n || Array.length idle <> n then
    invalid_arg "Steady.solve_with_leakage: bad vector length";
  let pkg = Rcmodel.package t.model in
  let beta = pkg.Package.leak_beta and t_ref = pkg.Package.leak_t_ref in
  let leak temp base =
    let excursion = Float.min (temp -. t_ref) max_leak_excursion in
    base *. exp (beta *. excursion)
  in
  let temps = ref (block_temperatures t ~power:dynamic) in
  let rec iterate k =
    if k >= max_iter then
      failwith "Steady.solve_with_leakage: leakage fixed point did not converge";
    let power = Array.init n (fun i -> dynamic.(i) +. leak !temps.(i) idle.(i)) in
    let next = block_temperatures t ~power in
    (* Damping keeps the exponential feedback stable on hot designs; the
       convergence test is on the damped (committed) step. *)
    let delta = ref 0.0 in
    Array.iteri
      (fun i x ->
        let damped = (0.4 *. x) +. (0.6 *. !temps.(i)) in
        delta := Float.max !delta (Float.abs (damped -. !temps.(i)));
        next.(i) <- damped)
      next;
    temps := next;
    if !delta <= tol then k + 1 else iterate (k + 1)
  in
  let iters = iterate 0 in
  (!temps, iters)
