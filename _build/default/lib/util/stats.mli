(** Small statistics helpers over float arrays. *)

val sum : float array -> float
val mean : float array -> float
(** Mean of a non-empty array. *)

val min : float array -> float
val max : float array -> float
val stddev : float array -> float
(** Population standard deviation of a non-empty array. *)

val spread : float array -> float
(** [max - min] of a non-empty array. *)

val median : float array -> float
val percentile : float array -> float -> float
(** [percentile a p] with [p] in [\[0, 100\]], linear interpolation. *)

val argmax : float array -> int
val argmin : float array -> int
