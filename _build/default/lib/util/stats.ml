let sum a = Array.fold_left ( +. ) 0.0 a

let mean a =
  assert (Array.length a > 0);
  sum a /. float_of_int (Array.length a)

let min a =
  assert (Array.length a > 0);
  Array.fold_left Float.min a.(0) a

let max a =
  assert (Array.length a > 0);
  Array.fold_left Float.max a.(0) a

let stddev a =
  let m = mean a in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a
    /. float_of_int (Array.length a)
  in
  sqrt var

let spread a = max a -. min a

let percentile a p =
  assert (Array.length a > 0 && p >= 0.0 && p <= 100.0);
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median a = percentile a 50.0

let argbest better a =
  assert (Array.length a > 0);
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if better a.(i) a.(!best) then best := i
  done;
  !best

let argmax a = argbest ( > ) a
let argmin a = argbest ( < ) a
