lib/util/rng.mli:
