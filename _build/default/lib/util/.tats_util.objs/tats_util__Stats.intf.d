lib/util/stats.mli:
