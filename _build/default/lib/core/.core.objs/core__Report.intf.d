lib/core/report.mli: Experiments Paper_data
