lib/core/core.ml: Experiments Paper_data Report Tats_cosynth Tats_floorplan Tats_linalg Tats_render Tats_sched Tats_taskgraph Tats_techlib Tats_thermal Tats_util
