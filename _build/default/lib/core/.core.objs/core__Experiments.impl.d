lib/core/experiments.ml: Array Float List Printf Stdlib Tats_cosynth Tats_floorplan Tats_sched Tats_taskgraph Tats_techlib Tats_thermal Tats_util
