lib/core/experiments.mli: Tats_cosynth Tats_sched
