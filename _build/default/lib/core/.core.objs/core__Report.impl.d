lib/core/report.ml: Array Buffer Experiments List Paper_data Printf String Tats_sched
