type cell = { total_power : float; max_temp : float; avg_temp : float }

let c total_power max_temp avg_temp = { total_power; max_temp; avg_temp }

type table1_group = {
  bench : string;
  baseline_cosynth : cell;
  h1_cosynth : cell;
  h2_cosynth : cell;
  h3_cosynth : cell;
  baseline_platform : cell;
  h1_platform : cell;
  h2_platform : cell;
  h3_platform : cell;
}

let table1 =
  [|
    {
      bench = "Bm1";
      baseline_cosynth = c 16.60 118.18 106.32;
      h1_cosynth = c 16.14 121.70 109.29;
      h2_cosynth = c 16.60 118.18 106.32;
      h3_cosynth = c 15.56 113.29 104.49;
      baseline_platform = c 11.91 100.59 81.03;
      h1_platform = c 10.40 85.88 75.58;
      h2_platform = c 12.60 107.16 82.78;
      h3_platform = c 10.40 85.88 75.58;
    };
    {
      bench = "Bm2";
      baseline_cosynth = c 29.47 121.44 110.22;
      h1_cosynth = c 28.55 115.21 107.55;
      h2_cosynth = c 29.47 121.44 110.22;
      h3_cosynth = c 28.27 112.82 105.42;
      baseline_platform = c 24.48 114.33 101.04;
      h1_platform = c 23.36 107.63 98.21;
      h2_platform = c 24.90 113.31 99.96;
      h3_platform = c 24.09 106.63 97.40;
    };
    {
      bench = "Bm3";
      baseline_cosynth = c 28.84 113.58 101.76;
      h1_cosynth = c 27.75 110.33 100.46;
      h2_cosynth = c 29.35 110.49 100.60;
      h3_cosynth = c 28.20 109.96 100.15;
      baseline_platform = c 26.88 113.81 98.47;
      h1_platform = c 26.10 106.63 96.74;
      h2_platform = c 26.88 113.81 98.47;
      h3_platform = c 25.20 103.95 94.69;
    };
    {
      bench = "Bm4";
      baseline_cosynth = c 44.99 122.09 111.14;
      h1_cosynth = c 46.99 122.28 111.53;
      h2_cosynth = c 44.99 117.86 111.13;
      h3_cosynth = c 43.34 118.68 109.87;
      baseline_platform = c 42.35 106.54 97.05;
      h1_platform = c 40.33 100.61 89.74;
      h2_platform = c 42.35 106.54 91.62;
      h3_platform = c 41.64 100.42 89.24;
    };
  |]

type versus = { bench : string; power : cell; thermal : cell }

let table2 =
  [|
    { bench = "Bm1"; power = c 15.56 113.29 104.49; thermal = c 12.48 87.11 86.13 };
    { bench = "Bm2"; power = c 28.27 112.82 105.42; thermal = c 24.64 106.38 99.84 };
    { bench = "Bm3"; power = c 28.20 109.96 100.15; thermal = c 26.51 102.08 96.28 };
    { bench = "Bm4"; power = c 43.34 118.68 109.87; thermal = c 42.41 106.32 102.48 };
  |]

let table3 =
  [|
    { bench = "Bm1"; power = c 10.40 85.88 75.58; thermal = c 6.37 65.71 61.16 };
    { bench = "Bm2"; power = c 24.09 106.63 97.40; thermal = c 22.37 96.33 93.47 };
    { bench = "Bm3"; power = c 25.20 103.95 94.69; thermal = c 24.98 103.03 94.59 };
    { bench = "Bm4"; power = c 41.64 100.42 89.24; thermal = c 38.54 94.85 85.76 };
  |]

let avg_reduction rows =
  let n = float_of_int (Array.length rows) in
  let dmax =
    Array.fold_left (fun acc r -> acc +. (r.power.max_temp -. r.thermal.max_temp)) 0.0 rows
  in
  let davg =
    Array.fold_left (fun acc r -> acc +. (r.power.avg_temp -. r.thermal.avg_temp)) 0.0 rows
  in
  (dmax /. n, davg /. n)

let table2_avg_reduction = avg_reduction table2
let table3_avg_reduction = avg_reduction table3
