(** The numbers published in the paper's Tables 1–3, for side-by-side
    reporting. Units: W, °C, °C. *)

type cell = { total_power : float; max_temp : float; avg_temp : float }

type table1_group = {
  bench : string;
  baseline_cosynth : cell;
  h1_cosynth : cell;
  h2_cosynth : cell;
  h3_cosynth : cell;
  baseline_platform : cell;
  h1_platform : cell;
  h2_platform : cell;
  h3_platform : cell;
}

val table1 : table1_group array
(** Bm1..Bm4, the paper's Table 1. *)

type versus = { bench : string; power : cell; thermal : cell }

val table2 : versus array
(** Power-aware (H3) vs thermal-aware, co-synthesis architecture. *)

val table3 : versus array
(** Power-aware vs thermal-aware, platform architecture. *)

val table2_avg_reduction : float * float
(** The paper's headline: (10.9 °C max, 6.95 °C avg) on co-synthesis. *)

val table3_avg_reduction : float * float
(** (9.75 °C max, 5.02 °C avg) on the platform architecture. *)
