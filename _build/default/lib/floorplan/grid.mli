(** Fixed grid floorplans for platform-based architectures.

    The paper's platform is four identical PEs; we place them on a
    near-square grid of abutting square tiles, which gives the thermal model
    a regular lateral-coupling structure. *)

val layout : Block.t array -> Placement.t
(** Places [n] blocks on a [ceil(sqrt n)]-wide grid. Each tile is a square
    sized by the largest block area, so tiles abut exactly (identical blocks
    tile perfectly; heterogeneous blocks are centered in their tile). *)

val square_of_area : float -> float
(** Side of the square with the given area. *)
