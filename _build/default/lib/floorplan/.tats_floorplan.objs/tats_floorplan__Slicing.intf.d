lib/floorplan/slicing.mli: Block Format Placement Tats_util
