lib/floorplan/sa.ml: Array Fun List Placement Slicing Tats_util
