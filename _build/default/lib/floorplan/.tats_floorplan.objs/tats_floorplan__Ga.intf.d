lib/floorplan/ga.mli: Block Placement Slicing
