lib/floorplan/grid.ml: Array Block Float Placement
