lib/floorplan/block.mli:
