lib/floorplan/grid.mli: Block Placement
