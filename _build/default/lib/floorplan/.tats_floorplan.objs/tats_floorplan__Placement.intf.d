lib/floorplan/placement.mli: Block Format
