lib/floorplan/sa.mli: Block Placement Slicing
