lib/floorplan/block.ml: Float
