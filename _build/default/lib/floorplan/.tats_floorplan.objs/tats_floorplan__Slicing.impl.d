lib/floorplan/slicing.ml: Array Block Float Format List Placement Stdlib Tats_util
