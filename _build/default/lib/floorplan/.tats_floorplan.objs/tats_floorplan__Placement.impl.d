lib/floorplan/placement.ml: Array Block Float Format List
