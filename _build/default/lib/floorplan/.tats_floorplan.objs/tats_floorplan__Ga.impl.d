lib/floorplan/ga.ml: Array List Placement Slicing Tats_util
