(** Slicing floorplans encoded as Polish (postfix) expressions.

    An expression over [n] blocks has [n] operands and [n-1] cut operators;
    [H] stacks its two sub-floorplans vertically, [V] places them side by
    side. Every prefix must contain more operands than operators (the
    balloting property). Sizing uses discrete shape curves per block
    (several aspect ratios within the block's bounds) with dominated shapes
    pruned at every combine — Stockmeyer's algorithm on a fixed tree. *)

type elt = Op of int (** operand: block index *) | H | V

type expr = elt array

val validate : n_blocks:int -> expr -> (unit, string) result
(** Checks length, operand permutation, and the balloting property. *)

val initial : int -> expr
(** [initial n] is the canonical chain [b0 b1 V b2 V ...] (all side by
    side). Requires [n >= 1]. *)

val evaluate : ?shapes_per_block:int -> Block.t array -> expr -> Placement.t
(** Sizes and places the expression, choosing the minimum-die-area shape
    combination. [shapes_per_block] (default 5) controls the shape-curve
    granularity. Raises [Invalid_argument] on an invalid expression. *)

val random : Tats_util.Rng.t -> int -> expr
(** A random valid expression over [n] blocks. *)

val pp : Format.formatter -> expr -> unit
