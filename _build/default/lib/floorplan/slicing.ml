module Rng = Tats_util.Rng

type elt = Op of int | H | V
type expr = elt array

let validate ~n_blocks expr =
  let n = Array.length expr in
  if n <> (2 * n_blocks) - 1 then Error "wrong length"
  else begin
    let seen = Array.make n_blocks false in
    let rec scan i operands operators =
      if i >= n then
        if operands = n_blocks && operators = n_blocks - 1 then Ok ()
        else Error "wrong operand/operator counts"
      else
        match expr.(i) with
        | Op b ->
            if b < 0 || b >= n_blocks then Error "operand out of range"
            else if seen.(b) then Error "repeated operand"
            else begin
              seen.(b) <- true;
              scan (i + 1) (operands + 1) operators
            end
        | H | V ->
            (* The operator consumes two stacked sub-floorplans. *)
            if operands - operators < 2 then Error "balloting violation"
            else scan (i + 1) operands (operators + 1)
    in
    scan 0 0 0
  end

let initial n =
  assert (n >= 1);
  let expr = Array.make ((2 * n) - 1) (Op 0) in
  expr.(0) <- Op 0;
  for b = 1 to n - 1 do
    expr.((2 * b) - 1) <- Op b;
    expr.(2 * b) <- V
  done;
  expr

(* --- Sizing ------------------------------------------------------------ *)

(* A shape option of a subtree: its bounding dimensions plus which child
   options realize it (for reconstruction). *)
type shape = { w : float; h : float; pick_l : int; pick_r : int }

type node =
  | Leaf of int * shape array
  | Cut of elt * node * node * shape array

let shapes_of node = match node with Leaf (_, s) | Cut (_, _, _, s) -> s

(* Keep the Pareto frontier: sort by width, keep strictly decreasing
   heights. *)
let prune options =
  let arr = Array.of_list options in
  Array.sort (fun a b -> compare (a.w, a.h) (b.w, b.h)) arr;
  let keep = ref [] in
  Array.iter
    (fun s ->
      match !keep with
      | best :: _ when s.h >= best.h -> ()
      | _ -> keep := s :: !keep)
    arr;
  Array.of_list (List.rev !keep)

let leaf_shapes ?(shapes_per_block = 5) (b : Block.t) =
  let k = Stdlib.max 1 shapes_per_block in
  let options =
    List.init k (fun i ->
        let t = if k = 1 then 0.5 else float_of_int i /. float_of_int (k - 1) in
        (* Geometric interpolation across the aspect range. *)
        let aspect = b.Block.min_aspect *. ((b.Block.max_aspect /. b.Block.min_aspect) ** t) in
        let w = sqrt (b.Block.area *. aspect) in
        let h = b.Block.area /. w in
        { w; h; pick_l = -1; pick_r = -1 })
  in
  prune options

let combine op left right =
  let ls = shapes_of left and rs = shapes_of right in
  let options = ref [] in
  Array.iteri
    (fun i l ->
      Array.iteri
        (fun j r ->
          let shape =
            match op with
            | H -> { w = Float.max l.w r.w; h = l.h +. r.h; pick_l = i; pick_r = j }
            | V -> { w = l.w +. r.w; h = Float.max l.h r.h; pick_l = i; pick_r = j }
            | Op _ -> assert false
          in
          options := shape :: !options)
        rs)
    ls;
  prune !options

let build_tree ?shapes_per_block blocks expr =
  let stack = ref [] in
  Array.iter
    (fun elt ->
      match elt with
      | Op b -> stack := Leaf (b, leaf_shapes ?shapes_per_block blocks.(b)) :: !stack
      | (H | V) as op -> begin
          match !stack with
          | right :: left :: rest ->
              stack := Cut (op, left, right, combine op left right) :: rest
          | _ -> assert false (* validate ruled this out *)
        end)
    expr;
  match !stack with [ root ] -> root | _ -> assert false

(* Walk the tree assigning rectangles; for an H cut the left child sits
   below the right one, for a V cut the left child sits to the left. *)
let rec place rects node pick x y =
  match node with
  | Leaf (b, shapes) ->
      let s = shapes.(pick) in
      rects.(b) <- { Block.x; y; w = s.w; h = s.h }
  | Cut (op, left, right, shapes) -> begin
      let s = shapes.(pick) in
      let ls = (shapes_of left).(s.pick_l) in
      place rects left s.pick_l x y;
      match op with
      | H -> place rects right s.pick_r x (y +. ls.h)
      | V -> place rects right s.pick_r (x +. ls.w) y
      | Op _ -> assert false
    end

let evaluate ?shapes_per_block blocks expr =
  (match validate ~n_blocks:(Array.length blocks) expr with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Slicing.evaluate: " ^ msg));
  let root = build_tree ?shapes_per_block blocks expr in
  let shapes = shapes_of root in
  let best = ref 0 in
  Array.iteri
    (fun i s -> if s.w *. s.h < shapes.(!best).w *. shapes.(!best).h then best := i)
    shapes;
  let rects = Array.make (Array.length blocks) { Block.x = 0.; y = 0.; w = 0.; h = 0. } in
  place rects root !best 0.0 0.0;
  Placement.make ~blocks ~rects

let random rng n =
  assert (n >= 1);
  let operands = Array.init n (fun i -> i) in
  Rng.shuffle rng operands;
  let expr = Array.make ((2 * n) - 1) (Op operands.(0)) in
  (* Random interleaving respecting the balloting property. *)
  let next_operand = ref 1 and placed_ops = ref 0 in
  for i = 1 to Array.length expr - 1 do
    let remaining_operands = n - !next_operand in
    let can_operator = !next_operand > !placed_ops + 1 && !placed_ops < n - 1 in
    let must_operator = remaining_operands = 0 in
    let use_operator = must_operator || (can_operator && Rng.bool rng) in
    if use_operator then begin
      expr.(i) <- (if Rng.bool rng then H else V);
      incr placed_ops
    end
    else begin
      expr.(i) <- Op operands.(!next_operand);
      incr next_operand
    end
  done;
  expr

let pp ppf expr =
  Array.iter
    (fun elt ->
      match elt with
      | Op b -> Format.fprintf ppf "%d " b
      | H -> Format.fprintf ppf "H "
      | V -> Format.fprintf ppf "V ")
    expr
