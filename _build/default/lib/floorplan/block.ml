type t = { name : string; area : float; min_aspect : float; max_aspect : float }

let make ~name ~area ?(min_aspect = 0.5) ?(max_aspect = 2.0) () =
  if area <= 0.0 then invalid_arg "Block.make: non-positive area";
  if min_aspect <= 0.0 || max_aspect < min_aspect then
    invalid_arg "Block.make: bad aspect bounds";
  { name; area; min_aspect; max_aspect }

type rect = { x : float; y : float; w : float; h : float }

let rect_area r = r.w *. r.h
let rect_center r = (r.x +. (r.w /. 2.0), r.y +. (r.h /. 2.0))

let interval_overlap a1 a2 b1 b2 = Float.max 0.0 (Float.min a2 b2 -. Float.max a1 b1)

let overlap_area a b =
  interval_overlap a.x (a.x +. a.w) b.x (b.x +. b.w)
  *. interval_overlap a.y (a.y +. a.h) b.y (b.y +. b.h)

(* Two rectangles share boundary when they touch along a vertical or
   horizontal line; a small tolerance absorbs floating-point placement. *)
let shared_boundary a b =
  let eps = 1e-9 in
  let touch u1 u2 v1 v2 = Float.abs (u2 -. v1) <= eps || Float.abs (v2 -. u1) <= eps in
  let vertical =
    if touch a.x (a.x +. a.w) b.x (b.x +. b.w) then
      interval_overlap a.y (a.y +. a.h) b.y (b.y +. b.h)
    else 0.0
  in
  let horizontal =
    if touch a.y (a.y +. a.h) b.y (b.y +. b.h) then
      interval_overlap a.x (a.x +. a.w) b.x (b.x +. b.w)
    else 0.0
  in
  Float.max vertical horizontal

let center_distance a b =
  let ax, ay = rect_center a and bx, by = rect_center b in
  Float.hypot (ax -. bx) (ay -. by)
