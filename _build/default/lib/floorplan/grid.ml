let square_of_area a = sqrt a

let layout blocks =
  let n = Array.length blocks in
  if n = 0 then invalid_arg "Grid.layout: no blocks";
  let max_area = Array.fold_left (fun acc b -> Float.max acc b.Block.area) 0.0 blocks in
  let tile = square_of_area max_area in
  let cols = int_of_float (Float.ceil (sqrt (float_of_int n))) in
  let rects =
    Array.mapi
      (fun i b ->
        let col = i mod cols and row = i / cols in
        let side = square_of_area b.Block.area in
        let margin = (tile -. side) /. 2.0 in
        {
          Block.x = (float_of_int col *. tile) +. margin;
          y = (float_of_int row *. tile) +. margin;
          w = side;
          h = side;
        })
      blocks
  in
  Placement.make ~blocks ~rects
