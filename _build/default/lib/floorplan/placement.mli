(** A placed floorplan: one rectangle per block, plus the bounding die. *)

type t = {
  blocks : Block.t array;
  rects : Block.rect array; (** indexed like [blocks] *)
  die_w : float;
  die_h : float;
}

val make : blocks:Block.t array -> rects:Block.rect array -> t
(** Computes the die bounding box. Arrays must have equal length. *)

val die_area : t -> float
val blocks_area : t -> float
val dead_space_ratio : t -> float
(** [(die - blocks) / die], in [0, 1). *)

val has_overlap : ?eps:float -> t -> bool
(** True when any two block interiors intersect by more than [eps] (default
    1e-12 m^2). *)

val total_wirelength : ?nets:(int * int) list -> t -> float
(** Half-perimeter-style wirelength: sum of center-to-center distances over
    [nets] (defaults to all block pairs — a clique approximation). *)

val pp : Format.formatter -> t -> unit
