(** Simulated-annealing floorplanner over the same slicing-tree encoding as
    the GA — the comparator the ISQED'05 floorplanning paper [3] measures
    its genetic algorithm against (Wong–Liu style annealing on Polish
    expressions).

    Shares {!Slicing}'s move set with {!Ga} (operand swap, chain complement,
    operand/operator swap), accepts uphill moves with probability
    [exp (-delta / temperature)], and cools geometrically. *)

type params = {
  initial_temperature : float; (** > 0; in units of the cost function *)
  cooling : float;             (** geometric factor in (0, 1) *)
  moves_per_temperature : int; (** > 0 *)
  min_temperature : float;     (** stop threshold, > 0 *)
}

val default_params : params
(** 1.0 / 0.92 / 64 / 1e-4 — roughly the same move budget as
    {!Ga.default_params}. *)

type result = {
  best_expr : Slicing.expr;
  best_placement : Placement.t;
  best_cost : float;
  moves_tried : int;
  moves_accepted : int;
}

val run :
  ?params:params ->
  seed:int ->
  blocks:Block.t array ->
  cost:(Placement.t -> float) ->
  unit ->
  result
(** Deterministic for a fixed seed. Starts from the canonical chain. *)
