(** Floorplan blocks and placed rectangles. *)

type t = {
  name : string;
  area : float;       (** m^2, positive *)
  min_aspect : float; (** lower bound on width/height *)
  max_aspect : float; (** upper bound on width/height *)
}

val make : name:string -> area:float -> ?min_aspect:float -> ?max_aspect:float -> unit -> t
(** Aspect bounds default to [0.5] and [2.0]. Requires
    [0 < min_aspect <= max_aspect]. *)

type rect = { x : float; y : float; w : float; h : float }

val rect_area : rect -> float
val rect_center : rect -> float * float

val overlap_area : rect -> rect -> float
(** Area of the intersection (0 when disjoint). *)

val shared_boundary : rect -> rect -> float
(** Length of the common boundary of two abutting rectangles — the lateral
    heat-flow cross-section the thermal model needs. 0 for non-touching or
    overlapping interiors are not special-cased (callers guarantee a valid
    placement). *)

val center_distance : rect -> rect -> float
