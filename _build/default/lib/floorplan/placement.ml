type t = {
  blocks : Block.t array;
  rects : Block.rect array;
  die_w : float;
  die_h : float;
}

let make ~blocks ~rects =
  if Array.length blocks <> Array.length rects then
    invalid_arg "Placement.make: blocks/rects length mismatch";
  let die_w =
    Array.fold_left (fun acc r -> Float.max acc (r.Block.x +. r.Block.w)) 0.0 rects
  in
  let die_h =
    Array.fold_left (fun acc r -> Float.max acc (r.Block.y +. r.Block.h)) 0.0 rects
  in
  { blocks; rects; die_w; die_h }

let die_area t = t.die_w *. t.die_h
let blocks_area t = Array.fold_left (fun acc b -> acc +. b.Block.area) 0.0 t.blocks

let dead_space_ratio t =
  let die = die_area t in
  if die <= 0.0 then 0.0 else (die -. blocks_area t) /. die

let has_overlap ?(eps = 1e-12) t =
  let n = Array.length t.rects in
  let found = ref false in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Block.overlap_area t.rects.(i) t.rects.(j) > eps then found := true
    done
  done;
  !found

let total_wirelength ?nets t =
  let nets =
    match nets with
    | Some l -> l
    | None ->
        let n = Array.length t.rects in
        let acc = ref [] in
        for i = 0 to n - 1 do
          for j = i + 1 to n - 1 do
            acc := (i, j) :: !acc
          done
        done;
        !acc
  in
  List.fold_left
    (fun acc (i, j) -> acc +. Block.center_distance t.rects.(i) t.rects.(j))
    0.0 nets

let pp ppf t =
  Format.fprintf ppf "@[<v>die %.2f x %.2f mm (dead space %.1f%%)@," (t.die_w *. 1e3)
    (t.die_h *. 1e3)
    (100.0 *. dead_space_ratio t);
  Array.iteri
    (fun i r ->
      Format.fprintf ppf "  %-10s @@ (%.2f, %.2f) %.2f x %.2f mm@,"
        t.blocks.(i).Block.name (r.Block.x *. 1e3) (r.Block.y *. 1e3)
        (r.Block.w *. 1e3) (r.Block.h *. 1e3))
    t.rects;
  Format.fprintf ppf "@]"
