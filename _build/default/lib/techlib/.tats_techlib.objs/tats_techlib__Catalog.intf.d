lib/techlib/catalog.mli: Library Pe
