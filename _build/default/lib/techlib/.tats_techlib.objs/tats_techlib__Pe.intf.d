lib/techlib/pe.mli: Format
