lib/techlib/pe.ml: Array Format List
