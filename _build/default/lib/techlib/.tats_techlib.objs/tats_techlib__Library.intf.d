lib/techlib/library.mli: Comm Format Pe
