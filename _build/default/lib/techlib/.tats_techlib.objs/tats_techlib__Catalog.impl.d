lib/techlib/catalog.ml: Library List Pe Tats_taskgraph
