lib/techlib/library.ml: Array Comm Float Format List Pe Printf Tats_util
