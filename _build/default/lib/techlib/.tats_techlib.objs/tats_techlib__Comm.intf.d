lib/techlib/comm.mli:
