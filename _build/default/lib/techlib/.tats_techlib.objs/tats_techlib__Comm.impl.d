lib/techlib/comm.ml:
