module Rng = Tats_util.Rng

type t = {
  kinds : Pe.kind array;
  wcet : float array array; (* [task_type][kind_id] *)
  wcpc : float array array;
  comm : Comm.t;
}

let check_kinds kinds =
  let arr = Array.of_list kinds in
  Array.iteri
    (fun i (k : Pe.kind) ->
      if k.Pe.kind_id <> i then
        invalid_arg "Library: kind_ids must be dense and in order")
    arr;
  arr

let of_tables ~kinds ~wcet ~wcpc ?(comm = Comm.default) () =
  let kinds = check_kinds kinds in
  let nk = Array.length kinds in
  let check name table =
    Array.iter
      (fun row ->
        if Array.length row <> nk then
          invalid_arg (Printf.sprintf "Library.of_tables: ragged %s table" name);
        Array.iter
          (fun x ->
            if x <= 0.0 then
              invalid_arg (Printf.sprintf "Library.of_tables: non-positive %s" name))
          row)
      table
  in
  check "wcet" wcet;
  check "wcpc" wcpc;
  if Array.length wcet <> Array.length wcpc then
    invalid_arg "Library.of_tables: wcet/wcpc disagree on task types";
  { kinds; wcet; wcpc; comm }

let generate ~seed ~n_task_types ~kinds ?(comm = Comm.default) () =
  if n_task_types < 1 then invalid_arg "Library.generate: no task types";
  let kinds = check_kinds kinds in
  let rng = Rng.create seed in
  let wcet = Array.make_matrix n_task_types (Array.length kinds) 0.0 in
  let wcpc = Array.make_matrix n_task_types (Array.length kinds) 0.0 in
  for tt = 0 to n_task_types - 1 do
    let ref_wcet = Rng.uniform rng 40.0 160.0 in
    let intensity = Rng.uniform rng 0.6 1.6 in
    Array.iteri
      (fun ki (k : Pe.kind) ->
        let special =
          match List.assoc_opt tt k.Pe.specialization with
          | Some m -> m
          | None -> 1.0
        in
        let t_jitter = Rng.uniform rng 0.85 1.15 in
        let p_jitter = Rng.uniform rng 0.9 1.1 in
        wcet.(tt).(ki) <- ref_wcet /. k.Pe.speed *. t_jitter *. special;
        wcpc.(tt).(ki) <- k.Pe.power_scale *. intensity *. p_jitter)
      kinds
  done;
  { kinds; wcet; wcpc; comm }

let n_task_types t = Array.length t.wcet
let kinds t = Array.copy t.kinds
let kind t i = t.kinds.(i)
let comm t = t.comm

let wcet t ~task_type ~kind = t.wcet.(task_type).(kind)
let wcpc t ~task_type ~kind = t.wcpc.(task_type).(kind)
let energy t ~task_type ~kind = t.wcet.(task_type).(kind) *. t.wcpc.(task_type).(kind)

let wcet_avg t ~task_type =
  Tats_util.Stats.mean t.wcet.(task_type)

let fold_tables f init t =
  let acc = ref init in
  Array.iteri
    (fun tt row ->
      Array.iteri (fun ki _ -> acc := f !acc tt ki) row)
    t.wcet;
  !acc

let max_wcpc t =
  fold_tables (fun acc tt ki -> Float.max acc t.wcpc.(tt).(ki)) 0.0 t

let max_energy t =
  fold_tables
    (fun acc tt ki -> Float.max acc (t.wcet.(tt).(ki) *. t.wcpc.(tt).(ki)))
    0.0 t

let aggregate t ~member_types =
  let nk = Array.length t.kinds in
  let n_clusters = Array.length member_types in
  let wcet = Array.make_matrix n_clusters nk 0.0 in
  let wcpc = Array.make_matrix n_clusters nk 0.0 in
  Array.iteri
    (fun c types ->
      if types = [] then invalid_arg "Library.aggregate: empty cluster";
      for k = 0 to nk - 1 do
        let total_wcet =
          List.fold_left (fun acc tt -> acc +. t.wcet.(tt).(k)) 0.0 types
        in
        let total_energy =
          List.fold_left
            (fun acc tt -> acc +. (t.wcet.(tt).(k) *. t.wcpc.(tt).(k)))
            0.0 types
        in
        wcet.(c).(k) <- total_wcet;
        wcpc.(c).(k) <- total_energy /. total_wcet
      done)
    member_types;
  { t with wcet; wcpc }

let pp ppf t =
  Format.fprintf ppf "@[<v>library: %d task types x %d kinds@," (n_task_types t)
    (Array.length t.kinds);
  Array.iter (fun k -> Format.fprintf ppf "  %a@," Pe.pp_kind k) t.kinds;
  Format.fprintf ppf "@]"
