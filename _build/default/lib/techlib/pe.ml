type kind = {
  kind_id : int;
  kind_name : string;
  area : float;
  cost : float;
  speed : float;
  power_scale : float;
  idle_power : float;
  specialization : (int * float) list;
}

type inst = { inst_id : int; kind : kind }

let make_kind ~kind_id ~name ~area ~cost ~speed ~power_scale ~idle_power
    ?(specialization = []) () =
  if kind_id < 0 then invalid_arg "Pe.make_kind: negative id";
  if area <= 0.0 || cost <= 0.0 || speed <= 0.0 || power_scale <= 0.0 then
    invalid_arg "Pe.make_kind: non-positive characteristic";
  if idle_power < 0.0 then invalid_arg "Pe.make_kind: negative idle power";
  List.iter
    (fun (tt, m) ->
      if tt < 0 || m <= 0.0 then invalid_arg "Pe.make_kind: bad specialization")
    specialization;
  {
    kind_id;
    kind_name = name;
    area;
    cost;
    speed;
    power_scale;
    idle_power;
    specialization;
  }

let instances kinds =
  Array.of_list (List.mapi (fun i kind -> { inst_id = i; kind }) kinds)

let pp_kind ppf k =
  Format.fprintf ppf "%s(speed=%.2f, %.1fW, $%.0f)" k.kind_name k.speed
    k.power_scale k.cost

let pp_inst ppf i = Format.fprintf ppf "PE%d:%s" i.inst_id i.kind.kind_name
