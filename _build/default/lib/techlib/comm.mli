(** Inter-PE communication model.

    Two topologies:

    - {b Shared bus} (the co-synthesis default, and the paper's implicit
      model): any cross-PE transfer costs the same per byte.
    - {b 2D mesh NoC}: PEs sit on a [cols]-wide grid (PE [i] at row
      [i / cols], column [i mod cols]); a transfer pays a per-hop latency
      over the Manhattan distance plus the per-byte serialization, and
      energy scales with the hop count.

    Communication between tasks mapped to the same PE is free in both
    models, the usual co-synthesis assumption. *)

type topology =
  | Shared_bus
  | Mesh of { cols : int; per_hop_delay : float }

type t = {
  delay_per_byte : float;
  energy_per_byte : float;
  topology : topology;
}

val make :
  delay_per_byte:float -> energy_per_byte:float -> ?topology:topology -> unit -> t
(** [topology] defaults to [Shared_bus]. Mesh [cols] must be positive and
    [per_hop_delay] non-negative. *)

val default : t
(** Shared bus, 0.2 time-units and 0.05 J per byte — edge payloads of
    16–128 bytes then cost a small fraction of a typical task's WCET. *)

val mesh : ?cols:int -> ?per_hop_delay:float -> unit -> t
(** Default-rate mesh: 2 columns, 4.0 time units per hop. *)

val hops : t -> src:int -> dst:int -> int
(** Manhattan distance on the mesh; 1 between distinct PEs on the bus;
    0 when [src = dst]. PE indices must be non-negative. *)

val delay : t -> data:float -> same_pe:bool -> float
(** Topology-free view (used where endpoints are unknown, e.g. static
    criticality): bus semantics, i.e. [data * delay_per_byte] across PEs. *)

val delay_between : t -> src:int -> dst:int -> data:float -> float
(** Exact transfer latency between PE indices:
    0 same-PE; [data * rate] on the bus;
    [hops * per_hop_delay + data * rate] on the mesh. *)

val energy_between : t -> src:int -> dst:int -> data:float -> float
(** 0 same-PE; [data * rate] on the bus; [hops * data * rate] on the mesh
    (every traversed link burns the per-byte energy). *)
