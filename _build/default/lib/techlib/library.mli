(** The target technology library of the paper: worst-case execution time
    (WCET) and worst-case power consumption (WCPC) for every task type on
    every PE kind, plus the communication model. *)

type t

val generate : seed:int -> n_task_types:int -> kinds:Pe.kind list -> ?comm:Comm.t -> unit -> t
(** Synthesizes a consistent library: each task type gets a reference WCET
    (uniform in [40, 160] time units) and a power intensity (uniform in
    [0.6, 1.6]); on a kind, WCET = reference / speed x jitter x any
    specialization multiplier, WCPC = power_scale x intensity x jitter.
    Faster kinds therefore run hotter — the tension the paper's heuristics
    trade on. *)

val of_tables :
  kinds:Pe.kind list ->
  wcet:float array array ->
  wcpc:float array array ->
  ?comm:Comm.t ->
  unit ->
  t
(** Explicit tables indexed [task_type][kind_id]. Both must be rectangular,
    positive, and agree in shape. *)

val n_task_types : t -> int
val kinds : t -> Pe.kind array
val kind : t -> int -> Pe.kind
val comm : t -> Comm.t

val wcet : t -> task_type:int -> kind:int -> float
val wcpc : t -> task_type:int -> kind:int -> float
val energy : t -> task_type:int -> kind:int -> float
(** [wcet * wcpc]: the task's worst-case energy on that kind — heuristic 3's
    objective. *)

val wcet_avg : t -> task_type:int -> float
(** Average WCET over all kinds: the node weight used for static
    criticality. *)

val max_wcpc : t -> float
val max_energy : t -> float
(** Library-wide maxima, used to normalize DC cost terms. *)

val aggregate : t -> member_types:int list array -> t
(** The library for a clustered task graph (see
    {!Tats_taskgraph.Cluster}): cluster [c] becomes task type [c] whose
    WCET on a kind is the sum of its members' WCETs (a fused chain
    serializes on one PE) and whose WCPC is the energy-weighted average
    power, so cluster energy = sum of member energies. Kinds and the
    communication model are inherited. Every member list must be
    non-empty. *)

val pp : Format.formatter -> t -> unit
