type topology = Shared_bus | Mesh of { cols : int; per_hop_delay : float }

type t = { delay_per_byte : float; energy_per_byte : float; topology : topology }

let make ~delay_per_byte ~energy_per_byte ?(topology = Shared_bus) () =
  if delay_per_byte < 0.0 || energy_per_byte < 0.0 then
    invalid_arg "Comm.make: negative rate";
  (match topology with
  | Shared_bus -> ()
  | Mesh { cols; per_hop_delay } ->
      if cols < 1 then invalid_arg "Comm.make: mesh needs at least one column";
      if per_hop_delay < 0.0 then invalid_arg "Comm.make: negative hop delay");
  { delay_per_byte; energy_per_byte; topology }

let default =
  { delay_per_byte = 0.2; energy_per_byte = 0.05; topology = Shared_bus }

let mesh ?(cols = 2) ?(per_hop_delay = 4.0) () =
  make ~delay_per_byte:default.delay_per_byte
    ~energy_per_byte:default.energy_per_byte
    ~topology:(Mesh { cols; per_hop_delay })
    ()

let hops t ~src ~dst =
  if src < 0 || dst < 0 then invalid_arg "Comm.hops: negative PE index";
  if src = dst then 0
  else
    match t.topology with
    | Shared_bus -> 1
    | Mesh { cols; _ } ->
        abs ((src / cols) - (dst / cols)) + abs ((src mod cols) - (dst mod cols))

let delay t ~data ~same_pe = if same_pe then 0.0 else data *. t.delay_per_byte

let delay_between t ~src ~dst ~data =
  if src = dst then 0.0
  else
    match t.topology with
    | Shared_bus -> data *. t.delay_per_byte
    | Mesh { per_hop_delay; _ } ->
        (float_of_int (hops t ~src ~dst) *. per_hop_delay)
        +. (data *. t.delay_per_byte)

let energy_between t ~src ~dst ~data =
  if src = dst then 0.0
  else
    match t.topology with
    | Shared_bus -> data *. t.energy_per_byte
    | Mesh _ -> float_of_int (hops t ~src ~dst) *. data *. t.energy_per_byte
