(** Default PE catalogues used by the experiments.

    Co-synthesis draws from a heterogeneous catalogue (low-power, standard
    and high-performance cores plus a DSP and an accelerator); the
    platform-based architecture uses four identical standard cores, matching
    the paper's "four identical PEs". *)

val heterogeneous : unit -> Pe.kind list
(** Five kinds; the DSP and accelerator are specialized for a subset of the
    default benchmark task types. *)

val platform_kind : unit -> Pe.kind
(** The standard core used (x4) by the platform-based architecture. *)

val platform_instances : int -> Pe.inst array
(** [platform_instances n] — [n] identical standard cores. *)

val default_library : unit -> Library.t
(** The library shared by all paper experiments: heterogeneous catalogue,
    {!Tats_taskgraph.Benchmarks.n_task_types} task types, fixed seed. *)

val platform_library : unit -> Library.t
(** Same task types and seed, restricted to the platform kind (kind_id 0). *)
