(** Processing elements.

    A {!kind} is a catalogue entry (a core type with its silicon area, dollar
    cost, speed and power characteristics); an {!inst} is one placed instance
    of a kind inside an architecture. Co-synthesis picks a multiset of kinds;
    the platform-based flow fixes four instances of one kind. *)

type kind = {
  kind_id : int;
  kind_name : string;
  area : float;  (** die area in m^2 (drives the floorplan + thermal model) *)
  cost : float;  (** co-synthesis price *)
  speed : float; (** relative throughput; 1.0 = reference core *)
  power_scale : float;
      (** dynamic power of the reference-intensity task on this kind, W *)
  idle_power : float; (** leakage/idle floor, W *)
  specialization : (int * float) list;
      (** (task_type, wcet multiplier < 1) pairs: task types this kind
          accelerates, e.g. a DSP running filter kernels *)
}

type inst = { inst_id : int; kind : kind }

val make_kind :
  kind_id:int ->
  name:string ->
  area:float ->
  cost:float ->
  speed:float ->
  power_scale:float ->
  idle_power:float ->
  ?specialization:(int * float) list ->
  unit ->
  kind
(** Validates positivity of the numeric fields. *)

val instances : kind list -> inst array
(** Numbers instances densely in list order. *)

val pp_kind : Format.formatter -> kind -> unit
val pp_inst : Format.formatter -> inst -> unit
