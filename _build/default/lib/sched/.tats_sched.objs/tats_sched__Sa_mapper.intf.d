lib/sched/sa_mapper.mli: Schedule Tats_taskgraph Tats_techlib Tats_thermal
