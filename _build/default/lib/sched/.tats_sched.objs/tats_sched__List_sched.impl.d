lib/sched/list_sched.ml: Array Dc Float Int List Option Policy Schedule Set Tats_taskgraph Tats_techlib Tats_thermal Tats_util
