lib/sched/metrics.ml: Array Float Format List Schedule Stdlib Tats_taskgraph Tats_techlib Tats_thermal Tats_util
