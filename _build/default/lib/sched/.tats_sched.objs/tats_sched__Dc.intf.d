lib/sched/dc.mli: Tats_taskgraph Tats_techlib
