lib/sched/montecarlo.mli: Schedule Tats_taskgraph Tats_techlib Tats_thermal
