lib/sched/dvs.ml: Array Float List Metrics Schedule Tats_taskgraph Tats_techlib Tats_thermal Tats_util
