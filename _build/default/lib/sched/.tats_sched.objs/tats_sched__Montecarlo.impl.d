lib/sched/montecarlo.ml: Array Float Fun List Schedule Tats_taskgraph Tats_techlib Tats_thermal Tats_util
