lib/sched/periodic.ml: Array Dc Float Hashtbl Int List List_sched Metrics Option Policy Set Tats_taskgraph Tats_techlib Tats_thermal Tats_util
