lib/sched/schedule.mli: Format Tats_taskgraph Tats_techlib
