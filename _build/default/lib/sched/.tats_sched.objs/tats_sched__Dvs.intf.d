lib/sched/dvs.mli: Metrics Schedule Tats_taskgraph Tats_techlib Tats_thermal
