lib/sched/policy.ml: Format
