lib/sched/bus_sched.ml: Array Dc Float Int List Policy Printf Schedule Set Tats_taskgraph Tats_techlib
