lib/sched/policy.mli: Format
