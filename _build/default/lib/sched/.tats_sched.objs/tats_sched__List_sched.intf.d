lib/sched/list_sched.mli: Policy Schedule Tats_taskgraph Tats_techlib Tats_thermal
