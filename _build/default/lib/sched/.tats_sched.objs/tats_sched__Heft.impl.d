lib/sched/heft.ml: Array Dc Float List Schedule Tats_taskgraph Tats_techlib
