lib/sched/heft.mli: Schedule Tats_taskgraph Tats_techlib
