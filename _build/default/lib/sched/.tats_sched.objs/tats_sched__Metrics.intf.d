lib/sched/metrics.mli: Format Schedule Tats_taskgraph Tats_techlib Tats_thermal
