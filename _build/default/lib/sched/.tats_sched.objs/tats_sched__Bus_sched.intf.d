lib/sched/bus_sched.mli: Policy Schedule Tats_taskgraph Tats_techlib
