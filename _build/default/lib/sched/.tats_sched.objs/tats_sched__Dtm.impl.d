lib/sched/dtm.ml: Array Float List Schedule Tats_linalg Tats_taskgraph Tats_techlib Tats_thermal
