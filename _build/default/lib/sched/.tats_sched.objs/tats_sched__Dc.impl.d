lib/sched/dc.ml: Tats_taskgraph Tats_techlib
