lib/sched/sa_mapper.ml: Array Float Fun List List_sched Metrics Policy Schedule Set Tats_taskgraph Tats_techlib Tats_thermal Tats_util
