lib/sched/schedule.ml: Array Float Format List Tats_taskgraph Tats_techlib
