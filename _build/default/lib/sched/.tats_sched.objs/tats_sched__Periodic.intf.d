lib/sched/periodic.mli: Metrics Policy Tats_taskgraph Tats_techlib Tats_thermal
