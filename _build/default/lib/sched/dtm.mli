(** Dynamic thermal management (DTM) simulation — the runtime counterpart of
    the paper's design-time scheduling, and the subject of its reference
    [2] (Skadron et al., HPCA 2002).

    The simulator replays a schedule against the transient RC model. Tasks
    run on their assigned PEs in schedule order, respecting data
    dependencies; whenever a PE's die temperature crosses the trigger
    threshold, that PE is throttled (its progress rate drops) until it cools
    below the trigger minus a hysteresis band. Throttling delays everything
    behind it, so aggressive design-time schedules can miss deadlines at run
    time — exactly the interplay thermal-aware scheduling is meant to avoid,
    measurable here. *)

module Graph = Tats_taskgraph.Graph
module Library = Tats_techlib.Library
module Hotspot = Tats_thermal.Hotspot

type params = {
  trigger : float;         (** throttle above this die temperature, °C *)
  hysteresis : float;      (** un-throttle below trigger - hysteresis, °C *)
  throttle_factor : float; (** progress (and power) rate when throttled, in (0,1) *)
  time_unit : float;       (** seconds of wall clock per schedule time unit *)
  dt : float;              (** simulation step, schedule time units *)
  passes : int;
      (** back-to-back executions of the schedule (a periodic application);
          the package needs many sub-second passes to warm up to its
          steady state, so run-time behaviour is reported for the last
          pass *)
}

val default_params : params
(** trigger 85 °C, hysteresis 3 °C, factor 0.5, 1 ms per unit, dt 1,
    1 pass. *)

type result = {
  finish : float array;       (** per task, relative to the last pass's start *)
  makespan : float;           (** of the last pass *)
  peak_temperature : float;   (** highest die temperature ever reached *)
  throttled_fraction : float;
      (** throttled PE-time / busy PE-time, over the last pass *)
  meets_deadline : bool;      (** last pass within the graph deadline *)
}

val simulate :
  ?params:params -> lib:Library.t -> hotspot:Hotspot.t -> Schedule.t -> result
(** The hotspot must have one block per PE. Raises [Invalid_argument]
    otherwise or on bad parameters. Deterministic. *)
