(** Schedules: the output of the allocation-and-scheduling procedure.

    A schedule fixes, for every task, the PE instance it runs on and its
    start/finish times. Validity (precedence + PE exclusivity + complete
    coverage) is checked structurally, independent of how the schedule was
    produced — the test suite leans on this. *)

module Graph = Tats_taskgraph.Graph
module Task = Tats_taskgraph.Task
module Pe = Tats_techlib.Pe
module Library = Tats_techlib.Library

type entry = {
  task : Task.id;
  pe : int; (** index into the architecture's instance array *)
  start : float;
  finish : float;
  energy : float; (** task energy on its PE (WCET x WCPC) *)
}

type t = {
  graph : Graph.t;
  pes : Pe.inst array;
  entries : entry array; (** indexed by task id *)
  makespan : float;
}

val make : graph:Graph.t -> pes:Pe.inst array -> entries:entry array -> t
(** Computes the makespan. Raises [Invalid_argument] when [entries] does not
    cover the graph's tasks exactly or references an unknown PE. *)

val entry : t -> Task.id -> entry
val n_pes : t -> int

val tasks_on_pe : t -> int -> entry list
(** Entries on one PE, by increasing start time. *)

val meets_deadline : t -> bool

type violation =
  | Precedence of Graph.edge * string
  | Pe_overlap of int * Task.id * Task.id
  | Negative_time of Task.id
  | Bad_duration of Task.id

val validate :
  ?exclusive:(Task.id -> Task.id -> bool) ->
  lib:Library.t ->
  t ->
  violation list
(** Structural check: every edge's consumer starts no earlier than its
    producer's finish plus the communication delay implied by [lib]; no two
    entries overlap on a PE unless [exclusive] declares the pair mutually
    exclusive; no negative times; each entry's duration equals the library
    WCET. Empty list = valid. *)

val pp_violation : Format.formatter -> violation -> unit
val pp : Format.formatter -> t -> unit
(** Gantt-style text rendering, one line per PE. *)
