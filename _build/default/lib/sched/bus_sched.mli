(** Shared-bus communication scheduling — the Xie–Wolf co-synthesis detail
    the base ASP abstracts away.

    {!List_sched} charges a fixed per-byte delay for cross-PE edges and
    assumes infinite bus bandwidth. Here the bus is a real resource: every
    cross-PE edge becomes a transfer that occupies the (single) bus
    exclusively, so concurrent communication serializes and contention
    lengthens schedules. Selection still uses the contention-free estimate
    (the classic optimistic list-scheduling approximation); commitment
    schedules the transfers exactly. *)

module Graph = Tats_taskgraph.Graph
module Task = Tats_taskgraph.Task
module Pe = Tats_techlib.Pe
module Library = Tats_techlib.Library

type transfer = {
  edge : Graph.edge;
  bus_start : float;
  bus_finish : float;
}

type result = { schedule : Schedule.t; transfers : transfer list }

val run :
  ?weights:Policy.weights ->
  graph:Graph.t ->
  lib:Library.t ->
  pes:Pe.inst array ->
  policy:Policy.t ->
  unit ->
  result
(** Like {!List_sched.run} with bus contention. [Thermal_aware] is not
    supported here (raises [Invalid_argument]); the substrate exists to
    study the communication model, not the thermal policy. *)

val validate : result -> lib:Library.t -> string list
(** Structural check: transfers do not overlap on the bus, every cross-PE
    edge has exactly one transfer starting no earlier than its producer's
    finish, every consumer starts no earlier than its transfers complete,
    and no two tasks overlap on a PE. Empty list = valid. *)

val bus_utilization : result -> float
(** Busy fraction of the bus over the schedule makespan. *)
