type heuristic = Min_task_power | Min_pe_average_power | Min_task_energy

type t = Baseline | Power_aware of heuristic | Thermal_aware

let all =
  [
    Baseline;
    Power_aware Min_task_power;
    Power_aware Min_pe_average_power;
    Power_aware Min_task_energy;
    Thermal_aware;
  ]

let name = function
  | Baseline -> "baseline"
  | Power_aware Min_task_power -> "h1"
  | Power_aware Min_pe_average_power -> "h2"
  | Power_aware Min_task_energy -> "h3"
  | Thermal_aware -> "thermal"

let of_name = function
  | "baseline" -> Some Baseline
  | "h1" -> Some (Power_aware Min_task_power)
  | "h2" -> Some (Power_aware Min_pe_average_power)
  | "h3" -> Some (Power_aware Min_task_energy)
  | "thermal" -> Some Thermal_aware
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (name t)

type weights = { cost_weight : float }

let default_weights ~deadline =
  if deadline <= 0.0 then invalid_arg "Policy.default_weights: bad deadline";
  { cost_weight = 0.4 *. deadline }
