module Graph = Tats_taskgraph.Graph
module Task = Tats_taskgraph.Task
module Pe = Tats_techlib.Pe
module Library = Tats_techlib.Library
module Comm = Tats_techlib.Comm

type entry = {
  task : Task.id;
  pe : int;
  start : float;
  finish : float;
  energy : float;
}

type t = {
  graph : Graph.t;
  pes : Pe.inst array;
  entries : entry array;
  makespan : float;
}

let make ~graph ~pes ~entries =
  let n = Graph.n_tasks graph in
  if Array.length entries <> n then
    invalid_arg "Schedule.make: entries must cover every task";
  Array.iteri
    (fun i e ->
      if e.task <> i then invalid_arg "Schedule.make: entries must be indexed by task id";
      if e.pe < 0 || e.pe >= Array.length pes then
        invalid_arg "Schedule.make: unknown PE")
    entries;
  let makespan = Array.fold_left (fun acc e -> Float.max acc e.finish) 0.0 entries in
  { graph; pes; entries; makespan }

let entry t id = t.entries.(id)
let n_pes t = Array.length t.pes

let tasks_on_pe t pe =
  Array.to_list t.entries
  |> List.filter (fun e -> e.pe = pe)
  |> List.sort (fun a b -> compare (a.start, a.task) (b.start, b.task))

let meets_deadline t = t.makespan <= Graph.deadline t.graph +. 1e-9

type violation =
  | Precedence of Graph.edge * string
  | Pe_overlap of int * Task.id * Task.id
  | Negative_time of Task.id
  | Bad_duration of Task.id

let validate ?(exclusive = fun _ _ -> false) ~lib t =
  let violations = ref [] in
  let comm = Library.comm lib in
  (* Times and durations. *)
  Array.iter
    (fun e ->
      if e.start < -1e-9 || e.finish < e.start then
        violations := Negative_time e.task :: !violations;
      let tt = (Graph.task t.graph e.task).Task.task_type in
      let kind = t.pes.(e.pe).Pe.kind.Pe.kind_id in
      let wcet = Library.wcet lib ~task_type:tt ~kind in
      if Float.abs (e.finish -. e.start -. wcet) > 1e-6 then
        violations := Bad_duration e.task :: !violations)
    t.entries;
  (* Precedence + communication. *)
  List.iter
    (fun ({ Graph.src; dst; data } as edge) ->
      let p = t.entries.(src) and c = t.entries.(dst) in
      let delay = Comm.delay_between comm ~src:p.pe ~dst:c.pe ~data in
      if c.start +. 1e-6 < p.finish +. delay then
        violations := Precedence (edge, "consumer starts before data arrives") :: !violations)
    (Graph.edges t.graph);
  (* PE exclusivity. *)
  for pe = 0 to n_pes t - 1 do
    let rec scan = function
      | a :: (b :: _ as rest) ->
          if b.start +. 1e-9 < a.finish && not (exclusive a.task b.task) then
            violations := Pe_overlap (pe, a.task, b.task) :: !violations;
          scan rest
      | [ _ ] | [] -> ()
    in
    scan (tasks_on_pe t pe)
  done;
  List.rev !violations

let pp_violation ppf = function
  | Precedence ({ Graph.src; dst; _ }, why) ->
      Format.fprintf ppf "precedence %d->%d: %s" src dst why
  | Pe_overlap (pe, a, b) -> Format.fprintf ppf "PE%d overlap: tasks %d and %d" pe a b
  | Negative_time task -> Format.fprintf ppf "task %d has negative/inverted times" task
  | Bad_duration task ->
      Format.fprintf ppf "task %d duration disagrees with library WCET" task

let pp ppf t =
  Format.fprintf ppf "@[<v>%s on %d PEs, makespan %.1f (deadline %.0f)@,"
    (Graph.name t.graph) (n_pes t) t.makespan (Graph.deadline t.graph);
  for pe = 0 to n_pes t - 1 do
    Format.fprintf ppf "  %a:" Pe.pp_inst t.pes.(pe);
    List.iter
      (fun e -> Format.fprintf ppf " [%d: %.0f-%.0f]" e.task e.start e.finish)
      (tasks_on_pe t pe);
    Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
