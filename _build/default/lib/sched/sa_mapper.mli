(** Simulated-annealing task mapper — a search-based comparator for the
    constructive ASP.

    The state is a full mapping (task -> PE) plus a scheduling priority
    permutation; a state decodes to a schedule by list-scheduling the tasks
    in priority order onto their assigned PEs. Annealing moves either remap
    one task or swap two priorities. Because it searches globally instead of
    deciding greedily, it bounds how much the one-pass ASP leaves on the
    table (at ~1000x the cost — see the bench). *)

module Graph = Tats_taskgraph.Graph
module Pe = Tats_techlib.Pe
module Library = Tats_techlib.Library
module Hotspot = Tats_thermal.Hotspot

type objective =
  | Makespan
  | Peak_temperature of Hotspot.t
      (** steady-state peak under per-PE average power (with leakage),
          plus a large penalty per unit of deadline violation *)

type params = {
  initial_temperature : float;
  cooling : float;
  moves_per_temperature : int;
  min_temperature : float;
}

val default_params : params

type result = {
  schedule : Schedule.t;
  cost : float;
  moves_tried : int;
  moves_accepted : int;
}

val decode :
  graph:Graph.t ->
  lib:Library.t ->
  pes:Pe.inst array ->
  assignment:int array ->
  priority:int array ->
  Schedule.t
(** [decode ~assignment ~priority] builds the schedule for a fixed mapping:
    tasks become eligible in dependency order and ties are broken by
    [priority] (lower value = scheduled first). Exposed for tests. *)

val run :
  ?params:params ->
  seed:int ->
  objective:objective ->
  graph:Graph.t ->
  lib:Library.t ->
  pes:Pe.inst array ->
  unit ->
  result
(** Deterministic for a fixed seed. The initial state is the ASP baseline
    schedule's own mapping, so the result is never worse than a decoded
    baseline. *)
