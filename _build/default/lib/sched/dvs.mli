(** Dynamic voltage/frequency scaling on top of a finished schedule — the
    classic follow-up to thermal-aware scheduling (and the natural extension
    of the paper): once the ASP has fixed the mapping and the order, any
    slack before the deadline can be converted into lower voltage, which
    reduces energy quadratically while stretching execution linearly.

    The result is a {!plan}: the original schedule plus a per-task V/f level
    and stretched finish times. Starts are kept, so the plan is safe by
    construction as long as each task still finishes before every
    constraint that consumed its output. *)

module Graph = Tats_taskgraph.Graph
module Library = Tats_techlib.Library
module Hotspot = Tats_thermal.Hotspot

type level = {
  name : string;
  scale : float;        (** frequency factor in (0, 1]; WCET divides by it *)
  power_factor : float; (** dynamic-power factor in (0, 1]; ~ scale^3 *)
}

val default_levels : level list
(** Four levels: 1.00/0.85/0.70/0.55 frequency, cubic power factors —
    a typical embedded DVFS ladder. Always sorted fastest first. *)

val make_level : name:string -> scale:float -> power_factor:float -> level

type plan = {
  base : Schedule.t;
  levels : level array; (** per task id *)
  finish : float array; (** stretched finish per task id *)
  makespan : float;
}

val reclaim : ?levels:level list -> lib:Library.t -> Schedule.t -> plan
(** Single reverse pass: each task may stretch until the earliest of (a) the
    deadline, (b) the start of any data successor minus the communication
    delay, (c) the start of the next task on its PE; the slowest level that
    fits is chosen. Start times are unchanged. *)

val task_energy : plan -> Tats_taskgraph.Task.id -> float
(** Energy of one task under its chosen level:
    base energy x power_factor / scale (quadratic saving for cubic
    power factors). *)

val total_energy : plan -> float
val energy_saving_ratio : plan -> float
(** 1 - planned/original task energy, in [0, 1). *)

val pe_average_powers : plan -> float array
(** Stretched per-PE dynamic power + idle floor, for thermal evaluation. *)

val thermal_report : ?leakage:bool -> plan -> hotspot:Hotspot.t -> Metrics.thermal_report

type violation =
  | Deadline_exceeded of float
  | Precedence_broken of Graph.edge
  | Pe_order_broken of int * Tats_taskgraph.Task.id * Tats_taskgraph.Task.id

val validate : plan -> lib:Library.t -> violation list
(** Structural check of the stretched times (analogous to
    {!Schedule.validate}). [Deadline_exceeded] is only reported when the
    plan finishes later than both the deadline and the base schedule — an
    already-late base schedule is inherited, not caused. Empty list = safe
    plan. *)
