module Graph = Tats_taskgraph.Graph
module Task = Tats_taskgraph.Task
module Pe = Tats_techlib.Pe
module Library = Tats_techlib.Library
module Comm = Tats_techlib.Comm

type transfer = { edge : Graph.edge; bus_start : float; bus_finish : float }

type result = { schedule : Schedule.t; transfers : transfer list }

let run ?weights ~graph ~lib ~pes ~policy () =
  (match policy with
  | Policy.Thermal_aware ->
      invalid_arg "Bus_sched.run: thermal policy not supported on the bus model"
  | Policy.Baseline | Policy.Power_aware _ -> ());
  let n = Graph.n_tasks graph in
  let weights =
    match weights with
    | Some w -> w
    | None -> Policy.default_weights ~deadline:(Graph.deadline graph)
  in
  let comm = Library.comm lib in
  let sc = Dc.static_criticality lib graph in
  let entries : Schedule.entry option array = Array.make n None in
  let pe_avail = Array.make (Array.length pes) 0.0 in
  let pe_energy = Array.make (Array.length pes) 0.0 in
  let bus_avail = ref 0.0 in
  let transfers = ref [] in
  (* Data arrival for committed predecessors, optimistic about the bus. *)
  let estimated_ready task pe =
    List.fold_left
      (fun acc (pred, data) ->
        match entries.(pred) with
        | None -> assert false
        | Some e ->
            let delay = Comm.delay comm ~data ~same_pe:(e.Schedule.pe = pe) in
            Float.max acc (e.Schedule.finish +. delay))
      0.0 (Graph.preds graph task)
  in
  (* Exact arrival: transfers of this task's inputs are scheduled on the
     bus, first-come in predecessor order, each after both the producer's
     finish and the bus becoming free. *)
  let commit_transfers task pe =
    List.fold_left
      (fun acc (pred, data) ->
        match entries.(pred) with
        | None -> assert false
        | Some e ->
            if e.Schedule.pe = pe || data <= 0.0 then
              Float.max acc e.Schedule.finish
            else begin
              let duration = Comm.delay comm ~data ~same_pe:false in
              let bus_start = Float.max e.Schedule.finish !bus_avail in
              let bus_finish = bus_start +. duration in
              bus_avail := bus_finish;
              transfers :=
                { edge = { Graph.src = pred; dst = task; data }; bus_start; bus_finish }
                :: !transfers;
              Float.max acc bus_finish
            end)
      0.0 (Graph.preds graph task)
  in
  let unscheduled_preds = Array.init n (fun v -> List.length (Graph.preds graph v)) in
  let module Iset = Set.Make (Int) in
  let ready =
    ref (List.fold_left (fun s v -> Iset.add v s) Iset.empty (Graph.sources graph))
  in
  let scheduled = ref 0 in
  while !scheduled < n do
    let best = ref None in
    Iset.iter
      (fun task ->
        let tt = (Graph.task graph task).Task.task_type in
        Array.iteri
          (fun pe (inst : Pe.inst) ->
            let kind = inst.Pe.kind.Pe.kind_id in
            let wcet = Library.wcet lib ~task_type:tt ~kind in
            let task_energy = Library.energy lib ~task_type:tt ~kind in
            let start = Float.max (estimated_ready task pe) pe_avail.(pe) in
            let finish = start +. wcet in
            let cost =
              match policy with
              | Policy.Baseline -> 0.0
              | Policy.Power_aware Policy.Min_task_power ->
                  Dc.cost_task_power lib ~task_type:tt ~kind
              | Policy.Power_aware Policy.Min_pe_average_power ->
                  Dc.cost_pe_average_power lib ~pe_energy:pe_energy.(pe) ~task_energy
                    ~finish
              | Policy.Power_aware Policy.Min_task_energy ->
                  Dc.cost_task_energy lib ~task_type:tt ~kind
              | Policy.Thermal_aware -> assert false
            in
            let dc =
              Dc.value ~sc:sc.(task) ~wcet ~start ~cost
                ~weight:weights.Policy.cost_weight
            in
            let better =
              match !best with
              | None -> true
              | Some (dc', task', pe', _) ->
                  dc > dc' +. 1e-12
                  || (Float.abs (dc -. dc') <= 1e-12
                     && (task < task' || (task = task' && pe < pe')))
            in
            if better then best := Some (dc, task, pe, task_energy))
          pes)
      !ready;
    (match !best with
    | None -> assert false
    | Some (_, task, pe, task_energy) ->
        (* Exact commitment with bus contention. *)
        let arrival = commit_transfers task pe in
        let start = Float.max arrival pe_avail.(pe) in
        let tt = (Graph.task graph task).Task.task_type in
        let wcet = Library.wcet lib ~task_type:tt ~kind:pes.(pe).Pe.kind.Pe.kind_id in
        let finish = start +. wcet in
        entries.(task) <- Some { Schedule.task; pe; start; finish; energy = task_energy };
        pe_avail.(pe) <- finish;
        pe_energy.(pe) <- pe_energy.(pe) +. task_energy;
        incr scheduled;
        ready := Iset.remove task !ready;
        List.iter
          (fun (succ, _) ->
            unscheduled_preds.(succ) <- unscheduled_preds.(succ) - 1;
            if unscheduled_preds.(succ) = 0 then ready := Iset.add succ !ready)
          (Graph.succs graph task))
  done;
  let entries = Array.map (function Some e -> e | None -> assert false) entries in
  {
    schedule = Schedule.make ~graph ~pes ~entries;
    transfers = List.rev !transfers;
  }

let validate { schedule = s; transfers } ~lib =
  let comm = Library.comm lib in
  let problems = ref [] in
  let say fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  (* Bus exclusivity. *)
  let sorted =
    List.sort (fun a b -> compare a.bus_start b.bus_start) transfers
  in
  let rec scan = function
    | a :: (b :: _ as rest) ->
        if b.bus_start +. 1e-9 < a.bus_finish then
          say "bus overlap: %d->%d and %d->%d" a.edge.Graph.src a.edge.Graph.dst
            b.edge.Graph.src b.edge.Graph.dst;
        scan rest
    | [ _ ] | [] -> ()
  in
  scan sorted;
  (* Every cross-PE edge has one transfer, correctly anchored. *)
  List.iter
    (fun ({ Graph.src; dst; data } as edge) ->
      let p = s.Schedule.entries.(src) and c = s.Schedule.entries.(dst) in
      if p.Schedule.pe <> c.Schedule.pe && data > 0.0 then begin
        match List.filter (fun t -> t.edge = edge) transfers with
        | [ t ] ->
            if t.bus_start +. 1e-9 < p.Schedule.finish then
              say "transfer %d->%d starts before producer finishes" src dst;
            let duration = Comm.delay comm ~data ~same_pe:false in
            if Float.abs (t.bus_finish -. t.bus_start -. duration) > 1e-6 then
              say "transfer %d->%d has wrong duration" src dst;
            if c.Schedule.start +. 1e-9 < t.bus_finish then
              say "consumer %d starts before its data arrives" dst
        | [] -> say "missing transfer for edge %d->%d" src dst
        | _ -> say "duplicate transfers for edge %d->%d" src dst
      end
      else if c.Schedule.start +. 1e-9 < p.Schedule.finish then
        say "same-PE precedence broken on edge %d->%d" src dst)
    (Graph.edges s.Schedule.graph);
  (* PE exclusivity. *)
  for pe = 0 to Schedule.n_pes s - 1 do
    let rec scan = function
      | (a : Schedule.entry) :: (b :: _ as rest) ->
          if b.Schedule.start +. 1e-9 < a.Schedule.finish then
            say "PE%d overlap: %d and %d" pe a.Schedule.task b.Schedule.task;
          scan rest
      | [ _ ] | [] -> ()
    in
    scan (Schedule.tasks_on_pe s pe)
  done;
  List.rev !problems

let bus_utilization { schedule; transfers } =
  let busy =
    List.fold_left (fun acc t -> acc +. (t.bus_finish -. t.bus_start)) 0.0 transfers
  in
  busy /. Float.max schedule.Schedule.makespan 1e-9
