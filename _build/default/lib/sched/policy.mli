(** Allocation-and-scheduling policies.

    The paper's dynamic criticality is
    [DC(task, PE) = SC(task) - WCET(task, PE)
                    - max(PE available, task ready) - cost],
    where the trailing cost term distinguishes the policies. *)

type heuristic =
  | Min_task_power
      (** Heuristic 1: minimize power consumption of the current task. *)
  | Min_pe_average_power
      (** Heuristic 2: minimize the PE's cumulative average power. *)
  | Min_task_energy
      (** Heuristic 3: minimize energy of the current task (the paper's
          winner among the power heuristics). *)

type t =
  | Baseline      (** performance only: no cost term *)
  | Power_aware of heuristic
  | Thermal_aware (** cost = average HotSpot temperature of the inquiry *)

val all : t list
(** Baseline, the three power heuristics, thermal-aware — Table 1 order. *)

val name : t -> string
val of_name : string -> t option
(** Inverse of {!name} ("baseline", "h1", "h2", "h3", "thermal"). *)

val pp : Format.formatter -> t -> unit

type weights = { cost_weight : float }
(** Scale translating the normalized cost term into schedule time units so
    it competes with the WCET/start-time terms of DC. *)

val default_weights : deadline:float -> weights
(** [cost_weight = 0.4 * deadline] — strong enough to steer PE choice, weak
    enough not to override criticality ordering; the adaptive scheduler
    (see {!List_sched.run_adaptive}) rescales it against the deadline
    anyway. Sensitivity is explored in the ablation bench. *)
