type t = { width : float; height : float; buf : Buffer.t }

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let create ~width ~height =
  if width <= 0.0 || height <= 0.0 then invalid_arg "Svg.create: bad dimensions";
  { width; height; buf = Buffer.create 4096 }

let rect t ~x ~y ~w ~h ?(fill = "#dddddd") ?(stroke = "#333333")
    ?(stroke_width = 1.0) ?title () =
  Buffer.add_string t.buf
    (Printf.sprintf
       "<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%.2f\" fill=\"%s\" \
        stroke=\"%s\" stroke-width=\"%.2f\"%s\n"
       x y w h (escape fill) (escape stroke) stroke_width
       (match title with
       | None -> "/>"
       | Some s -> Printf.sprintf "><title>%s</title></rect>" (escape s)))

let line t ~x1 ~y1 ~x2 ~y2 ?(stroke = "#333333") ?(stroke_width = 1.0) () =
  Buffer.add_string t.buf
    (Printf.sprintf
       "<line x1=\"%.2f\" y1=\"%.2f\" x2=\"%.2f\" y2=\"%.2f\" stroke=\"%s\" \
        stroke-width=\"%.2f\"/>\n"
       x1 y1 x2 y2 (escape stroke) stroke_width)

let text t ~x ~y ?(size = 12.0) ?(fill = "#000000") ?(anchor = "start") s =
  Buffer.add_string t.buf
    (Printf.sprintf
       "<text x=\"%.2f\" y=\"%.2f\" font-size=\"%.1f\" fill=\"%s\" \
        text-anchor=\"%s\" font-family=\"sans-serif\">%s</text>\n"
       x y size (escape fill) (escape anchor) (escape s))

let to_string t =
  Printf.sprintf
    "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
     <svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" \
     viewBox=\"0 0 %.0f %.0f\">\n%s</svg>\n"
    t.width t.height t.width t.height (Buffer.contents t.buf)

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

(* Piecewise-linear blue -> cyan -> yellow -> red ramp. *)
let heat_color f =
  let f = Float.max 0.0 (Float.min 1.0 f) in
  let lerp a b t = a +. ((b -. a) *. t) in
  let r, g, b =
    if f < 0.33 then (lerp 0.1 0.0 (f /. 0.33), lerp 0.2 0.8 (f /. 0.33), 0.9)
    else if f < 0.66 then
      let t = (f -. 0.33) /. 0.33 in
      (lerp 0.0 0.95 t, lerp 0.8 0.85 t, lerp 0.9 0.1 t)
    else
      let t = (f -. 0.66) /. 0.34 in
      (lerp 0.95 0.85 t, lerp 0.85 0.1 t, 0.1)
  in
  Printf.sprintf "#%02x%02x%02x"
    (int_of_float (255.0 *. r))
    (int_of_float (255.0 *. g))
    (int_of_float (255.0 *. b))
