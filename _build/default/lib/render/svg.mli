(** Minimal SVG writer (no dependencies): enough structure for floorplans,
    heat maps and Gantt charts, with proper XML escaping. *)

type t
(** An SVG document under construction. *)

val create : width:float -> height:float -> t
(** Dimensions in user units (pixels). *)

val rect :
  t ->
  x:float ->
  y:float ->
  w:float ->
  h:float ->
  ?fill:string ->
  ?stroke:string ->
  ?stroke_width:float ->
  ?title:string ->
  unit ->
  unit
(** [title] becomes a child <title> (hover tooltip in browsers). *)

val line :
  t -> x1:float -> y1:float -> x2:float -> y2:float -> ?stroke:string ->
  ?stroke_width:float -> unit -> unit

val text :
  t -> x:float -> y:float -> ?size:float -> ?fill:string -> ?anchor:string ->
  string -> unit

val to_string : t -> string
val save : t -> string -> unit

val heat_color : float -> string
(** [heat_color f] with [f] in [0, 1]: a blue→red thermal ramp as
    ["#rrggbb"]. Clamped outside the range. *)
