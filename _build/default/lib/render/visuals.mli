(** Ready-made renderings of the library's main artifacts.

    Each function returns a complete SVG document string; [save_*] variants
    write it to a file. *)

module Placement = Tats_floorplan.Placement
module Schedule = Tats_sched.Schedule
module Library = Tats_techlib.Library
module Gridmodel = Tats_thermal.Gridmodel

val floorplan :
  ?temps:float array ->
  ?canvas:float ->
  Placement.t ->
  string
(** Blocks drawn to scale with their names; with [temps] (one per block,
    °C) they are colored on the thermal ramp and annotated, and a legend
    shows the range. [canvas] is the image width in px (default 480). *)

val gantt : ?canvas:float -> Schedule.t -> string
(** One lane per PE, tasks as labelled boxes, the deadline as a red line. *)

val heat_map : ?canvas:float -> Gridmodel.t -> power:float array -> string
(** Grid-model cell temperatures as colored tiles with a range legend. *)

val save : string -> path:string -> unit
(** Write any of the above documents to disk. *)
