module Block = Tats_floorplan.Block
module Placement = Tats_floorplan.Placement
module Schedule = Tats_sched.Schedule
module Graph = Tats_taskgraph.Graph
module Library = Tats_techlib.Library
module Gridmodel = Tats_thermal.Gridmodel
module Stats = Tats_util.Stats

let normalize temps =
  let lo = Stats.min temps and hi = Stats.max temps in
  let span = Float.max (hi -. lo) 1e-9 in
  (lo, hi, fun t -> (t -. lo) /. span)

let legend svg ~x ~y ~lo ~hi =
  let steps = 24 in
  let w = 160.0 and h = 12.0 in
  for i = 0 to steps - 1 do
    let f = float_of_int i /. float_of_int (steps - 1) in
    Svg.rect svg
      ~x:(x +. (f *. (w -. (w /. float_of_int steps))))
      ~y ~w:(w /. float_of_int steps) ~h ~fill:(Svg.heat_color f) ~stroke:"none"
      ~stroke_width:0.0 ()
  done;
  Svg.text svg ~x ~y:(y +. h +. 14.0) ~size:11.0 (Printf.sprintf "%.1f °C" lo);
  Svg.text svg ~x:(x +. w) ~y:(y +. h +. 14.0) ~size:11.0 ~anchor:"end"
    (Printf.sprintf "%.1f °C" hi)

let floorplan ?temps ?(canvas = 480.0) (p : Placement.t) =
  let margin = 20.0 in
  let footer = match temps with Some _ -> 50.0 | None -> 0.0 in
  let scale = (canvas -. (2.0 *. margin)) /. Float.max p.Placement.die_w 1e-12 in
  let height = (p.Placement.die_h *. scale) +. (2.0 *. margin) +. footer in
  let svg = Svg.create ~width:canvas ~height in
  let ramp =
    match temps with
    | Some ts ->
        let lo, hi, f = normalize ts in
        legend svg ~x:margin ~y:(height -. 36.0) ~lo ~hi;
        Some (ts, f)
    | None -> None
  in
  (* Die outline. *)
  Svg.rect svg ~x:margin ~y:margin ~w:(p.Placement.die_w *. scale)
    ~h:(p.Placement.die_h *. scale) ~fill:"#f7f7f7" ~stroke:"#000000"
    ~stroke_width:1.5 ();
  Array.iteri
    (fun i r ->
      let x = margin +. (r.Block.x *. scale) in
      (* SVG's y axis grows downward; flip so (0,0) is bottom-left. *)
      let y = margin +. ((p.Placement.die_h -. r.Block.y -. r.Block.h) *. scale) in
      let w = r.Block.w *. scale and h = r.Block.h *. scale in
      let fill, label =
        match ramp with
        | Some (ts, f) ->
            ( Svg.heat_color (f ts.(i)),
              Printf.sprintf "%s (%.1f °C)" p.Placement.blocks.(i).Block.name ts.(i) )
        | None -> ("#cfe2f3", p.Placement.blocks.(i).Block.name)
      in
      Svg.rect svg ~x ~y ~w ~h ~fill ~title:label ();
      if w > 40.0 && h > 14.0 then
        Svg.text svg ~x:(x +. (w /. 2.0)) ~y:(y +. (h /. 2.0) +. 4.0) ~size:10.0
          ~anchor:"middle" p.Placement.blocks.(i).Block.name)
    p.Placement.rects;
  Svg.to_string svg

let gantt ?(canvas = 720.0) (s : Schedule.t) =
  let lane_h = 28.0 and margin = 40.0 and header = 24.0 in
  let n = Schedule.n_pes s in
  let deadline = Graph.deadline s.Schedule.graph in
  let horizon = Float.max s.Schedule.makespan deadline *. 1.02 in
  let scale = (canvas -. margin -. 10.0) /. Float.max horizon 1e-9 in
  let height = header +. (float_of_int n *. lane_h) +. 30.0 in
  let svg = Svg.create ~width:canvas ~height in
  for pe = 0 to n - 1 do
    let y = header +. (float_of_int pe *. lane_h) in
    Svg.text svg ~x:4.0 ~y:(y +. (lane_h /. 2.0) +. 4.0) ~size:11.0
      (Printf.sprintf "PE%d" pe);
    Svg.line svg ~x1:margin ~y1:(y +. lane_h) ~x2:canvas ~y2:(y +. lane_h)
      ~stroke:"#cccccc" ()
  done;
  Array.iter
    (fun (e : Schedule.entry) ->
      let x = margin +. (e.Schedule.start *. scale) in
      let w = Float.max 1.0 ((e.Schedule.finish -. e.Schedule.start) *. scale) in
      let y = header +. (float_of_int e.Schedule.pe *. lane_h) +. 3.0 in
      let name = (Graph.task s.Schedule.graph e.Schedule.task).Tats_taskgraph.Task.name in
      Svg.rect svg ~x ~y ~w ~h:(lane_h -. 6.0) ~fill:"#9fc5e8"
        ~title:(Printf.sprintf "%s: %.0f-%.0f" name e.Schedule.start e.Schedule.finish)
        ();
      if w > 24.0 then
        Svg.text svg ~x:(x +. (w /. 2.0)) ~y:(y +. 14.0) ~size:9.0 ~anchor:"middle" name)
    s.Schedule.entries;
  (* Deadline marker. *)
  let xd = margin +. (deadline *. scale) in
  Svg.line svg ~x1:xd ~y1:header ~x2:xd
    ~y2:(header +. (float_of_int n *. lane_h))
    ~stroke:"#cc0000" ~stroke_width:2.0 ();
  Svg.text svg ~x:xd ~y:(header -. 6.0) ~size:10.0 ~fill:"#cc0000" ~anchor:"middle"
    (Printf.sprintf "deadline %.0f" deadline);
  Svg.text svg ~x:margin ~y:14.0 ~size:12.0
    (Printf.sprintf "%s — makespan %.1f" (Graph.name s.Schedule.graph)
       s.Schedule.makespan);
  Svg.to_string svg

let heat_map ?(canvas = 480.0) grid ~power =
  let cells = Gridmodel.cell_temperatures grid ~power in
  let ny = Array.length cells and nx = Array.length cells.(0) in
  let all = Array.concat (Array.to_list cells) in
  let lo, hi, f = normalize all in
  let margin = 16.0 and footer = 50.0 in
  let cell = (canvas -. (2.0 *. margin)) /. float_of_int nx in
  let height = (float_of_int ny *. cell) +. (2.0 *. margin) +. footer in
  let svg = Svg.create ~width:canvas ~height in
  for iy = 0 to ny - 1 do
    for ix = 0 to nx - 1 do
      let t = cells.(iy).(ix) in
      Svg.rect svg
        ~x:(margin +. (float_of_int ix *. cell))
        ~y:(margin +. (float_of_int (ny - 1 - iy) *. cell))
        ~w:(cell +. 0.5) ~h:(cell +. 0.5) ~fill:(Svg.heat_color (f t)) ~stroke:"none"
        ~stroke_width:0.0
        ~title:(Printf.sprintf "%.1f °C" t)
        ()
    done
  done;
  legend svg ~x:margin ~y:(height -. 36.0) ~lo ~hi;
  Svg.to_string svg

let save doc ~path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc doc)
