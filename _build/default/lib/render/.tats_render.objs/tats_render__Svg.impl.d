lib/render/svg.ml: Buffer Float Fun Printf String
