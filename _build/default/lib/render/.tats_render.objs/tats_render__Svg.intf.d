lib/render/svg.mli:
