lib/render/visuals.mli: Tats_floorplan Tats_sched Tats_techlib Tats_thermal
