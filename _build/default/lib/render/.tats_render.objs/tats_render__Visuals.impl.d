lib/render/visuals.ml: Array Float Fun Printf Svg Tats_floorplan Tats_sched Tats_taskgraph Tats_techlib Tats_thermal Tats_util
