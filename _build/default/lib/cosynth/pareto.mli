(** Cost/temperature design-space exploration.

    Co-synthesis picks one architecture; this sweeps the PE budget and both
    end-to-end flows to expose the whole catalogue-cost vs peak-temperature
    trade, and extracts the Pareto frontier — what a designer would actually
    look at before fixing the platform. *)

module Graph = Tats_taskgraph.Graph
module Library = Tats_techlib.Library
module Policy = Tats_sched.Policy
module Metrics = Tats_sched.Metrics

type point = {
  label : string;       (** e.g. "cosynth/thermal/max4" *)
  arch_cost : float;
  n_pes : int;
  meets_deadline : bool;
  row : Metrics.row;
}

val explore :
  ?policies:Policy.t list ->
  ?min_pes_range:int list ->
  graph:Graph.t ->
  lib:Library.t ->
  unit ->
  point list
(** Runs co-synthesis for each (policy, forced minimum PE count) pair;
    [policies] defaults to [h3; thermal], [min_pes_range] to [1..6].
    Points that miss the deadline are kept (flagged) so the frontier's
    feasible edge is visible. Deterministic. *)

val frontier : point list -> point list
(** Deadline-meeting points not dominated in (arch_cost, max_temp) — lower
    is better on both axes — sorted by cost. *)

val pp_points : Format.formatter -> point list -> unit
