module Graph = Tats_taskgraph.Graph
module Library = Tats_techlib.Library
module Policy = Tats_sched.Policy
module Schedule = Tats_sched.Schedule
module Metrics = Tats_sched.Metrics

type point = {
  label : string;
  arch_cost : float;
  n_pes : int;
  meets_deadline : bool;
  row : Metrics.row;
}

let default_policies = [ Policy.Power_aware Policy.Min_task_energy; Policy.Thermal_aware ]

let explore ?(policies = default_policies) ?(min_pes_range = [ 1; 2; 3; 4; 5; 6 ])
    ~graph ~lib () =
  List.concat_map
    (fun policy ->
      List.map
        (fun min_pes ->
          let o = Flow.run_cosynthesis ~min_pes ~max_pes:8 ~graph ~lib ~policy () in
          {
            label = Printf.sprintf "cosynth/%s/pes>=%d" (Policy.name policy) min_pes;
            arch_cost = o.Flow.arch_cost;
            n_pes = Schedule.n_pes o.Flow.schedule;
            meets_deadline = Schedule.meets_deadline o.Flow.schedule;
            row = o.Flow.row;
          })
        min_pes_range)
    policies

let dominates a b =
  a.arch_cost <= b.arch_cost
  && a.row.Metrics.max_temp <= b.row.Metrics.max_temp
  && (a.arch_cost < b.arch_cost || a.row.Metrics.max_temp < b.row.Metrics.max_temp)

let frontier points =
  let feasible = List.filter (fun p -> p.meets_deadline) points in
  let non_dominated =
    List.filter (fun p -> not (List.exists (fun q -> dominates q p) feasible)) feasible
  in
  (* Collapse duplicate (cost, temperature) points: keep the first label. *)
  let sorted =
    List.sort
      (fun a b ->
        compare (a.arch_cost, a.row.Metrics.max_temp) (b.arch_cost, b.row.Metrics.max_temp))
      non_dominated
  in
  let rec dedup = function
    | a :: b :: rest
      when a.arch_cost = b.arch_cost && a.row.Metrics.max_temp = b.row.Metrics.max_temp
      ->
        dedup (a :: rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup sorted

let pp_points ppf points =
  Format.fprintf ppf "@[<v>%-26s %8s %5s %10s %10s %10s %s@,"
    "design point" "cost" "PEs" "Pow(W)" "MaxT(C)" "AvgT(C)" "deadline";
  List.iter
    (fun p ->
      Format.fprintf ppf "%-26s %8.0f %5d %10.2f %10.2f %10.2f %s@," p.label
        p.arch_cost p.n_pes p.row.Metrics.total_power p.row.Metrics.max_temp
        p.row.Metrics.avg_temp
        (if p.meets_deadline then "met" else "MISSED"))
    points;
  Format.fprintf ppf "@]"
