(** PE allocation (selection) for co-synthesis.

    Greedy incremental search in the style of Xie–Wolf: start from the
    single kind that best serves the graph, and while the baseline ASP
    misses the deadline, add the catalogue kind whose extra instance
    shrinks the makespan the most (ties broken by lower cost). The
    architecture is then fixed and handed to the policy ASP. *)

module Graph = Tats_taskgraph.Graph
module Pe = Tats_techlib.Pe
module Library = Tats_techlib.Library

type t = {
  insts : Pe.inst array;
  total_cost : float;
  feasible : bool; (** baseline ASP meets the deadline on this architecture *)
  asp_runs : int;  (** how many trial schedules the search needed *)
}

val run :
  ?max_pes:int ->
  ?min_pes:int ->
  ?policy:Tats_sched.Policy.t ->
  ?weights:Tats_sched.Policy.weights ->
  graph:Graph.t ->
  lib:Library.t ->
  unit ->
  t
(** [max_pes] defaults to 8, [min_pes] to 1 (the outer co-synthesis loop
    raises it when the policy ASP misses the deadline on the allocated
    architecture). [policy] (default [Baseline]) guides the trial
    schedules, so a power-aware DC also steers PE {e selection} — the
    paper's "the selection of PEs and the assignment of tasks are both
    guided by ASP". [Thermal_aware] is rejected (it would need a floorplan
    per candidate architecture); the flow allocates those runs with
    [Baseline] and iterates. The result has between [min_pes] and
    [max_pes] instances; [feasible] is false when even [max_pes] instances
    miss the deadline. *)

val instances_of_kinds : Library.t -> int list -> Pe.inst array
(** Build an instance array from kind ids (helper for tests and the CLI). *)
