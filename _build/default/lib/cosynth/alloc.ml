module Graph = Tats_taskgraph.Graph
module Pe = Tats_techlib.Pe
module Library = Tats_techlib.Library
module Schedule = Tats_sched.Schedule
module List_sched = Tats_sched.List_sched
module Policy = Tats_sched.Policy

type t = {
  insts : Pe.inst array;
  total_cost : float;
  feasible : bool;
  asp_runs : int;
}

let instances_of_kinds lib kind_ids =
  Pe.instances (List.map (fun k -> Library.kind lib k) kind_ids)

let makespan_of runs ~policy ~weights ~graph ~lib kinds =
  incr runs;
  let pes = instances_of_kinds lib kinds in
  let s = List_sched.run ?weights ~graph ~lib ~pes ~policy () in
  s.Schedule.makespan

let total_cost lib kinds =
  List.fold_left (fun acc k -> acc +. (Library.kind lib k).Pe.cost) 0.0 kinds

(* The search state is a multiset of kind ids (kept sorted for
   determinism). *)
let run ?(max_pes = 8) ?(min_pes = 1) ?(policy = Policy.Baseline) ?weights ~graph
    ~lib () =
  if max_pes < 1 || min_pes < 1 || min_pes > max_pes then
    invalid_arg "Alloc.run: bad PE bounds";
  (match policy with
  | Policy.Thermal_aware ->
      invalid_arg
        "Alloc.run: thermal-aware allocation needs a floorplan per candidate; \
         allocate with Baseline and let the flow's outer loop iterate"
  | Policy.Baseline | Policy.Power_aware _ -> ());
  let runs = ref 0 in
  let n_kinds = Array.length (Library.kinds lib) in
  let all_kinds = List.init n_kinds Fun.id in
  let makespan = makespan_of runs ~policy ~weights ~graph ~lib in
  let deadline = Graph.deadline graph in
  (* Seed: the cheapest single kind that meets the deadline alone, else the
     cheapest kind outright — cost is the primary co-synthesis objective,
     the deadline the constraint. *)
  let kind_cost k = (Library.kind lib k).Pe.cost in
  let cheaper a b = kind_cost a < kind_cost b in
  let seed =
    let feasible_alone =
      List.filter (fun k -> makespan [ k ] <= deadline +. 1e-9) all_kinds
    in
    let pool = if feasible_alone = [] then all_kinds else feasible_alone in
    List.fold_left (fun best k -> if cheaper k best then k else best)
      (List.hd pool) (List.tl pool)
  in
  let kinds = ref [ seed ] in
  let current_makespan = ref (makespan [ seed ]) in
  let continue_growing () =
    List.length !kinds < min_pes
    || (!current_makespan > deadline +. 1e-9 && List.length !kinds < max_pes)
  in
  while continue_growing () do
    (* Grow by one instance. Prefer the cheapest addition that reaches
       feasibility; otherwise the best makespan improvement per unit cost. *)
    let candidates =
      List.map
        (fun k ->
          let c = List.sort compare (k :: !kinds) in
          (k, c, makespan c))
        all_kinds
    in
    let feasible = List.filter (fun (_, _, m) -> m <= deadline +. 1e-9) candidates in
    let chosen =
      match feasible with
      | _ :: _ ->
          List.fold_left
            (fun (bk, bc, bm) (k, c, m) ->
              if cheaper k bk || (kind_cost k = kind_cost bk && m < bm) then (k, c, m)
              else (bk, bc, bm))
            (List.hd feasible) (List.tl feasible)
      | [] ->
          let gain (k, _, m) = (!current_makespan -. m) /. kind_cost k in
          List.fold_left
            (fun best c ->
              if gain c > gain best +. 1e-12 then c
              else if
                Float.abs (gain c -. gain best) <= 1e-12
                && (fun (k, _, _) -> kind_cost k) c < (fun (k, _, _) -> kind_cost k) best
              then c
              else best)
            (List.hd candidates) (List.tl candidates)
    in
    let _, c, m = chosen in
    kinds := c;
    current_makespan := m
  done;
  {
    insts = instances_of_kinds lib !kinds;
    total_cost = total_cost lib !kinds;
    feasible = !current_makespan <= deadline +. 1e-9;
    asp_runs = !runs;
  }
