lib/cosynth/flow.ml: Alloc Array Float List Printf Tats_floorplan Tats_sched Tats_taskgraph Tats_techlib Tats_thermal
