lib/cosynth/flow.mli: Tats_floorplan Tats_sched Tats_taskgraph Tats_techlib Tats_thermal
