lib/cosynth/alloc.ml: Array Float Fun List Tats_sched Tats_taskgraph Tats_techlib
