lib/cosynth/pareto.ml: Flow Format List Printf Tats_sched Tats_taskgraph Tats_techlib
