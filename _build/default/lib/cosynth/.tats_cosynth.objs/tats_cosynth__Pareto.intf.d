lib/cosynth/pareto.mli: Format Tats_sched Tats_taskgraph Tats_techlib
