lib/cosynth/alloc.mli: Tats_sched Tats_taskgraph Tats_techlib
