(** Tasks: the vertices of an application task graph.

    A task carries a [task_type], the key into the technology library's
    WCET/WCPC tables — two tasks of the same type run identically on the same
    processing element. *)

type id = int
(** Dense task identifiers [0 .. n-1] within one graph. *)

type t = { id : id; name : string; task_type : int }

val make : id:id -> ?name:string -> task_type:int -> unit -> t
(** [make ~id ~task_type ()] names the task ["t<id>"] unless [name] is
    given. [task_type] must be non-negative. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
