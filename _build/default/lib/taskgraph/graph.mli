(** Directed acyclic task graphs with real-time deadlines.

    Edges carry the amount of data communicated from producer to consumer;
    the technology library's communication model turns it into a delay when
    the two endpoints are mapped to different processing elements. *)

type edge = { src : Task.id; dst : Task.id; data : float }
(** [data] is in abstract "bytes" and must be non-negative. *)

type t

(** {1 Construction} *)

type builder

val builder : name:string -> deadline:float -> builder
(** [deadline] must be positive. *)

val add_task : builder -> ?name:string -> task_type:int -> unit -> Task.id
(** Returns the identifier of the freshly added task. *)

val add_edge : builder -> ?data:float -> Task.id -> Task.id -> unit
(** [add_edge b src dst] adds a dependency. Raises [Invalid_argument] on an
    unknown endpoint, a self-loop, or a duplicate edge. [data] defaults to
    0. *)

val build : builder -> t
(** Freezes the builder. Raises [Invalid_argument] if the graph is cyclic. *)

(** {1 Accessors} *)

val name : t -> string
val deadline : t -> float
val n_tasks : t -> int
val n_edges : t -> int
val task : t -> Task.id -> Task.t
val tasks : t -> Task.t array
val edges : t -> edge list
val succs : t -> Task.id -> (Task.id * float) list
(** Successors with edge data sizes. *)

val preds : t -> Task.id -> (Task.id * float) list
val has_edge : t -> Task.id -> Task.id -> bool
val sources : t -> Task.id list
(** Tasks without predecessors, ascending. *)

val sinks : t -> Task.id list
(** Tasks without successors, ascending. *)

val topological_order : t -> Task.id array
(** A topological order (deterministic: Kahn's algorithm with a min-id
    queue). *)

val is_weakly_connected : t -> bool

val longest_path_hops : t -> int
(** Number of vertices on the longest source-to-sink chain. *)

val pp : Format.formatter -> t -> unit
