type edge = { src : Task.id; dst : Task.id; data : float }

type t = {
  name : string;
  deadline : float;
  tasks : Task.t array;
  succs : (Task.id * float) list array;
  preds : (Task.id * float) list array;
  n_edges : int;
}

type builder = {
  b_name : string;
  b_deadline : float;
  mutable b_tasks : Task.t list; (* reversed *)
  mutable b_count : int;
  mutable b_edges : edge list; (* reversed *)
}

let builder ~name ~deadline =
  if deadline <= 0.0 then invalid_arg "Graph.builder: non-positive deadline";
  { b_name = name; b_deadline = deadline; b_tasks = []; b_count = 0; b_edges = [] }

let add_task b ?name ~task_type () =
  let id = b.b_count in
  b.b_tasks <- Task.make ~id ?name ~task_type () :: b.b_tasks;
  b.b_count <- id + 1;
  id

let add_edge b ?(data = 0.0) src dst =
  if src < 0 || src >= b.b_count || dst < 0 || dst >= b.b_count then
    invalid_arg "Graph.add_edge: unknown endpoint";
  if src = dst then invalid_arg "Graph.add_edge: self-loop";
  if data < 0.0 then invalid_arg "Graph.add_edge: negative data";
  if List.exists (fun e -> e.src = src && e.dst = dst) b.b_edges then
    invalid_arg "Graph.add_edge: duplicate edge";
  b.b_edges <- { src; dst; data } :: b.b_edges

(* Kahn's algorithm over adjacency arrays; also detects cycles. *)
let kahn n succs preds =
  let indeg = Array.init n (fun i -> List.length preds.(i)) in
  let module Iset = Set.Make (Int) in
  let ready = ref Iset.empty in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then ready := Iset.add i !ready
  done;
  let order = Array.make n (-1) in
  let filled = ref 0 in
  while not (Iset.is_empty !ready) do
    let v = Iset.min_elt !ready in
    ready := Iset.remove v !ready;
    order.(!filled) <- v;
    incr filled;
    List.iter
      (fun (w, _) ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then ready := Iset.add w !ready)
      succs.(v)
  done;
  if !filled < n then None else Some order

let build b =
  let n = b.b_count in
  let tasks = Array.of_list (List.rev b.b_tasks) in
  let succs = Array.make n [] and preds = Array.make n [] in
  let edges = List.rev b.b_edges in
  List.iter
    (fun e ->
      succs.(e.src) <- (e.dst, e.data) :: succs.(e.src);
      preds.(e.dst) <- (e.src, e.data) :: preds.(e.dst))
    edges;
  Array.iteri (fun i l -> succs.(i) <- List.rev l) succs;
  Array.iteri (fun i l -> preds.(i) <- List.rev l) preds;
  match kahn n succs preds with
  | None -> invalid_arg "Graph.build: cyclic graph"
  | Some _ ->
      {
        name = b.b_name;
        deadline = b.b_deadline;
        tasks;
        succs;
        preds;
        n_edges = List.length edges;
      }

let name t = t.name
let deadline t = t.deadline
let n_tasks t = Array.length t.tasks
let n_edges t = t.n_edges
let task t id = t.tasks.(id)
let tasks t = Array.copy t.tasks
let succs t id = t.succs.(id)
let preds t id = t.preds.(id)

let has_edge t src dst = List.exists (fun (w, _) -> w = dst) t.succs.(src)

let edges t =
  let acc = ref [] in
  for src = Array.length t.tasks - 1 downto 0 do
    List.iter
      (fun (dst, data) -> acc := { src; dst; data } :: !acc)
      (List.rev t.succs.(src))
  done;
  !acc

let filter_ids p t =
  let acc = ref [] in
  for i = Array.length t.tasks - 1 downto 0 do
    if p i then acc := i :: !acc
  done;
  !acc

let sources t = filter_ids (fun i -> t.preds.(i) = []) t
let sinks t = filter_ids (fun i -> t.succs.(i) = []) t

let topological_order t =
  match kahn (n_tasks t) t.succs t.preds with
  | Some order -> order
  | None -> assert false (* acyclicity was established at build time *)

let is_weakly_connected t =
  let n = n_tasks t in
  if n = 0 then true
  else begin
    let seen = Array.make n false in
    let rec visit v =
      if not seen.(v) then begin
        seen.(v) <- true;
        List.iter (fun (w, _) -> visit w) t.succs.(v);
        List.iter (fun (w, _) -> visit w) t.preds.(v)
      end
    in
    visit 0;
    Array.for_all Fun.id seen
  end

let longest_path_hops t =
  let order = topological_order t in
  let depth = Array.make (n_tasks t) 1 in
  Array.iter
    (fun v ->
      List.iter
        (fun (w, _) -> depth.(w) <- Stdlib.max depth.(w) (depth.(v) + 1))
        t.succs.(v))
    order;
  Array.fold_left Stdlib.max 0 depth

let pp ppf t =
  Format.fprintf ppf "@[<v>%s: %d tasks, %d edges, deadline %.0f@]" t.name
    (n_tasks t) t.n_edges t.deadline
