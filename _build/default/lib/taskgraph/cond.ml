type var = int
type guard = (var * bool) list

module Lit = struct
  type t = var * bool

  let compare = compare
end

module Lset = Set.Make (Lit)

type t = {
  graph : Graph.t;
  edge_cond : (Task.id * Task.id, var * bool) Hashtbl.t;
  guards : Lset.t array; (* per task, resolved *)
}

(* A task's raw constraint set is the union over incoming paths; a variable
   present with both polarities means the task runs regardless of that
   variable, so both literals are dropped. *)
let resolve raw =
  Lset.filter (fun (v, b) -> not (Lset.mem (v, not b) raw)) raw

let make g conds =
  let edge_cond = Hashtbl.create 16 in
  List.iter
    (fun (src, dst, var, polarity) ->
      if var < 0 then invalid_arg "Cond.make: negative condition variable";
      if not (Graph.has_edge g src dst) then
        invalid_arg "Cond.make: condition on a non-existent edge";
      if Hashtbl.mem edge_cond (src, dst) then
        invalid_arg "Cond.make: duplicate condition on an edge";
      Hashtbl.add edge_cond (src, dst) (var, polarity))
    conds;
  let n = Graph.n_tasks g in
  let raw = Array.make n Lset.empty in
  let order = Graph.topological_order g in
  Array.iter
    (fun v ->
      List.iter
        (fun (w, _) ->
          let inherited = raw.(v) in
          let with_edge =
            match Hashtbl.find_opt edge_cond (v, w) with
            | Some lit -> Lset.add lit inherited
            | None -> inherited
          in
          raw.(w) <- Lset.union raw.(w) with_edge)
        (Graph.succs g v))
    order;
  { graph = g; edge_cond; guards = Array.map resolve raw }

let graph t = t.graph

let guard_of t id = Lset.elements t.guards.(id)

let mutually_exclusive t a b =
  Lset.exists (fun (v, pol) -> Lset.mem (v, not pol) t.guards.(b)) t.guards.(a)

let exclusion_pairs t =
  let n = Graph.n_tasks t.graph in
  let acc = ref [] in
  for a = n - 1 downto 0 do
    for b = n - 1 downto a + 1 do
      if mutually_exclusive t a b then acc := (a, b) :: !acc
    done
  done;
  !acc

let annotate_random rng ~fork_probability g =
  if fork_probability < 0.0 || fork_probability > 1.0 then
    invalid_arg "Cond.annotate_random: probability out of range";
  let next_var = ref 0 in
  let conds = ref [] in
  for v = 0 to Graph.n_tasks g - 1 do
    match Graph.succs g v with
    | (s1, _) :: (s2, _) :: _
      when Tats_util.Rng.float rng 1.0 < fork_probability ->
        let var = !next_var in
        incr next_var;
        conds := (v, s1, var, true) :: (v, s2, var, false) :: !conds
    | _ -> ()
  done;
  make g (List.rev !conds)

let variables t =
  let module Iset = Set.Make (Int) in
  let vars =
    Hashtbl.fold (fun _ (var, _) acc -> Iset.add var acc) t.edge_cond Iset.empty
  in
  Iset.elements vars

let scenarios ?(limit = 256) t =
  let vars = variables t in
  let count = 1 lsl List.length vars in
  if count > limit then
    invalid_arg
      (Printf.sprintf "Cond.scenarios: %d scenarios exceed the limit %d" count limit);
  let rec expand = function
    | [] -> [ [] ]
    | var :: rest ->
        let tails = expand rest in
        List.concat_map (fun tail -> [ (var, true) :: tail; (var, false) :: tail ]) tails
  in
  expand vars

let active_tasks t assignment =
  let satisfied guard =
    Lset.for_all
      (fun (var, polarity) ->
        match List.assoc_opt var assignment with
        | Some value -> value = polarity
        | None -> false)
      guard
  in
  let acc = ref [] in
  for v = Graph.n_tasks t.graph - 1 downto 0 do
    if satisfied t.guards.(v) then acc := v :: !acc
  done;
  !acc

let scenario_makespan t ~finish assignment =
  List.fold_left
    (fun acc v -> Float.max acc (finish v))
    0.0 (active_tasks t assignment)
