(** Static criticality (SC), the list-scheduling priority of the paper.

    SC of a task is "the maximum distance from the current task to the end
    task", i.e. the longest weighted path from the task to any sink. Node
    weights are supplied by the caller (typically the average WCET of the
    task over all processing-element kinds), edge weights by the
    communication model. *)

val compute :
  ?edge_weight:(Graph.edge -> float) ->
  node_weight:(Task.t -> float) ->
  Graph.t ->
  float array
(** [compute ~node_weight g] returns [sc] indexed by task id, where
    [sc.(i) = node_weight i + max over successors s of
    (edge_weight (i->s) + sc.(s))] and sinks have [sc = node_weight].
    [edge_weight] defaults to [fun _ -> 0.]. *)

val hop_distance : Graph.t -> int array
(** Unweighted variant: number of tasks (inclusive) on the longest chain from
    each task to a sink. *)

val rank_order : float array -> int array
(** Task ids sorted by decreasing criticality; ties broken by ascending id.
    A valid list-scheduling priority order when criticalities come from
    [compute]. *)
