(** The paper's benchmark suite.

    Table 1 characterizes each benchmark as name/tasks/edges/deadline:
    Bm1/19/19/790, Bm2/35/40/1500, Bm3/39/43/1650, Bm4/51/60/2000. The
    graphs themselves are unpublished, so we regenerate seeded random DAGs
    with exactly those counts (see DESIGN.md, substitution 1). *)

type descriptor = {
  bench_name : string;
  tasks : int;
  edges : int;
  deadline : float;
}

val descriptors : descriptor array
(** The four rows of Table 1, in order. *)

val n_task_types : int
(** Number of distinct task types used across the suite (shared with the
    default technology library). *)

val load : int -> Graph.t
(** [load i] with [i] in [0..3] builds Bm(i+1) deterministically. *)

val all : unit -> Graph.t array
(** All four benchmarks, in order. *)

val by_name : string -> Graph.t
(** [by_name "Bm2"] — raises [Not_found] for unknown names. *)
