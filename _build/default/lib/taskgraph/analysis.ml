type t = {
  n_tasks : int;
  n_edges : int;
  depth : int;
  width : int;
  level_sizes : int array;
  avg_out_degree : float;
  max_out_degree : int;
  max_in_degree : int;
  n_sources : int;
  n_sinks : int;
  edge_density : float;
  avg_parallelism : float;
}

let levels g =
  let n = Graph.n_tasks g in
  let level = Array.make n 0 in
  Array.iter
    (fun v ->
      List.iter
        (fun (w, _) -> level.(w) <- Stdlib.max level.(w) (level.(v) + 1))
        (Graph.succs g v))
    (Graph.topological_order g);
  level

let analyze g =
  let n = Graph.n_tasks g in
  if n = 0 then invalid_arg "Analysis.analyze: empty graph";
  let level = levels g in
  let depth = Array.fold_left Stdlib.max 0 level + 1 in
  let level_sizes = Array.make depth 0 in
  Array.iter (fun l -> level_sizes.(l) <- level_sizes.(l) + 1) level;
  let out_degrees = Array.init n (fun v -> List.length (Graph.succs g v)) in
  let in_degrees = Array.init n (fun v -> List.length (Graph.preds g v)) in
  let max_pairs = n * (n - 1) / 2 in
  {
    n_tasks = n;
    n_edges = Graph.n_edges g;
    depth;
    width = Array.fold_left Stdlib.max 0 level_sizes;
    level_sizes;
    avg_out_degree = float_of_int (Graph.n_edges g) /. float_of_int n;
    max_out_degree = Array.fold_left Stdlib.max 0 out_degrees;
    max_in_degree = Array.fold_left Stdlib.max 0 in_degrees;
    n_sources = List.length (Graph.sources g);
    n_sinks = List.length (Graph.sinks g);
    edge_density =
      (if max_pairs = 0 then 0.0
       else float_of_int (Graph.n_edges g) /. float_of_int max_pairs);
    avg_parallelism = float_of_int n /. float_of_int depth;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%d tasks, %d edges (density %.3f)@,\
     depth %d, width %d, avg parallelism %.2f@,\
     degrees: avg out %.2f, max out %d, max in %d@,\
     %d sources, %d sinks@]"
    t.n_tasks t.n_edges t.edge_density t.depth t.width t.avg_parallelism
    t.avg_out_degree t.max_out_degree t.max_in_degree t.n_sources t.n_sinks
