lib/taskgraph/cluster.mli: Graph Task
