lib/taskgraph/benchmarks.mli: Graph
