lib/taskgraph/task.ml: Format Printf String
