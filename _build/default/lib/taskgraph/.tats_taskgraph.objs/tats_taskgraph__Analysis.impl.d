lib/taskgraph/analysis.ml: Array Format Graph List Stdlib
