lib/taskgraph/criticality.mli: Graph Task
