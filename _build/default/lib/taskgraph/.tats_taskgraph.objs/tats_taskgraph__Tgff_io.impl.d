lib/taskgraph/tgff_io.ml: Array Buffer Fun Graph Hashtbl In_channel List Printf String Task
