lib/taskgraph/task.mli: Format
