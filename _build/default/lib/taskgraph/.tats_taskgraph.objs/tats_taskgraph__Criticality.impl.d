lib/taskgraph/criticality.ml: Array Float Fun Graph List
