lib/taskgraph/cluster.ml: Array Fun Graph Hashtbl List Option Printf Queue String Task
