lib/taskgraph/graph.ml: Array Format Fun Int List Set Stdlib Task
