lib/taskgraph/generator.ml: Array Fun Graph Hashtbl Printf Stdlib Task Tats_util
