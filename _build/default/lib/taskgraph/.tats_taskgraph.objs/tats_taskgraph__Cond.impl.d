lib/taskgraph/cond.ml: Array Float Graph Hashtbl Int List Printf Set Task Tats_util
