lib/taskgraph/dot.mli: Graph Task
