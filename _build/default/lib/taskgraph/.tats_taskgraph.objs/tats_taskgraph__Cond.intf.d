lib/taskgraph/cond.mli: Graph Task Tats_util
