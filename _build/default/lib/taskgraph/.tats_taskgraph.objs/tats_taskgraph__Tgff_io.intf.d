lib/taskgraph/tgff_io.mli: Graph
