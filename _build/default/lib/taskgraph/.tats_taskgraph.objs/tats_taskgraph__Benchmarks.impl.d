lib/taskgraph/benchmarks.ml: Array Generator String
