let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "graph %s deadline %.6g\n" (Graph.name g) (Graph.deadline g));
  Array.iter
    (fun (t : Task.t) ->
      Buffer.add_string buf
        (Printf.sprintf "task %s type %d\n" t.Task.name t.Task.task_type))
    (Graph.tasks g);
  List.iter
    (fun { Graph.src; dst; data } ->
      let name id = (Graph.task g id).Task.name in
      if data = 0.0 then
        Buffer.add_string buf (Printf.sprintf "edge %s -> %s\n" (name src) (name dst))
      else
        Buffer.add_string buf
          (Printf.sprintf "edge %s -> %s data %.6g\n" (name src) (name dst) data))
    (Graph.edges g);
  Buffer.contents buf

type parse_state = {
  mutable builder : Graph.builder option;
  ids : (string, Task.id) Hashtbl.t;
}

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let of_string text =
  let state = { builder = None; ids = Hashtbl.create 64 } in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let parse_line lineno line =
    match tokens (strip_comment line) with
    | [] -> Ok ()
    | [ "graph"; name; "deadline"; d ] -> begin
        match (state.builder, float_of_string_opt d) with
        | Some _, _ -> err lineno "duplicate graph directive"
        | None, None -> err lineno ("bad deadline: " ^ d)
        | None, Some deadline ->
            if deadline <= 0.0 then err lineno "non-positive deadline"
            else begin
              state.builder <- Some (Graph.builder ~name ~deadline);
              Ok ()
            end
      end
    | [ "task"; name; "type"; tt ] -> begin
        match (state.builder, int_of_string_opt tt) with
        | None, _ -> err lineno "task before graph directive"
        | Some _, None -> err lineno ("bad task type: " ^ tt)
        | Some b, Some task_type ->
            if Hashtbl.mem state.ids name then
              err lineno ("duplicate task name: " ^ name)
            else if task_type < 0 then err lineno "negative task type"
            else begin
              Hashtbl.add state.ids name (Graph.add_task b ~name ~task_type ());
              Ok ()
            end
      end
    | "edge" :: src :: "->" :: dst :: rest -> begin
        let data =
          match rest with
          | [] -> Ok 0.0
          | [ "data"; d ] -> begin
              match float_of_string_opt d with
              | Some x when x >= 0.0 -> Ok x
              | Some _ -> Error "negative edge data"
              | None -> Error ("bad edge data: " ^ d)
            end
          | _ -> Error "trailing tokens after edge"
        in
        match (state.builder, data) with
        | None, _ -> err lineno "edge before graph directive"
        | Some _, Error msg -> err lineno msg
        | Some b, Ok data -> begin
            match (Hashtbl.find_opt state.ids src, Hashtbl.find_opt state.ids dst) with
            | None, _ -> err lineno ("unknown task: " ^ src)
            | _, None -> err lineno ("unknown task: " ^ dst)
            | Some s, Some d -> begin
                match Graph.add_edge b ~data s d with
                | () -> Ok ()
                | exception Invalid_argument msg -> err lineno msg
              end
          end
      end
    | tok :: _ -> err lineno ("unrecognized directive: " ^ tok)
  in
  let lines = String.split_on_char '\n' text in
  let rec go lineno = function
    | [] -> begin
        match state.builder with
        | None -> Error "no graph directive found"
        | Some b -> begin
            match Graph.build b with
            | g -> Ok g
            | exception Invalid_argument msg -> Error msg
          end
      end
    | line :: rest -> begin
        match parse_line lineno line with
        | Ok () -> go (lineno + 1) rest
        | Error _ as e -> e
      end
  in
  go 1 lines

let save g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let load path =
  match open_in path with
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> of_string (In_channel.input_all ic))
  | exception Sys_error msg -> Error msg
