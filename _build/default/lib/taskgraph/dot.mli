(** Graphviz export of task graphs, for inspection and documentation. *)

val to_dot :
  ?highlight:(Task.id -> string option) -> Graph.t -> string
(** [to_dot g] renders a [digraph]. [highlight] may map a task to a fill
    color (e.g. the processing element it was assigned to). *)

val save : ?highlight:(Task.id -> string option) -> Graph.t -> string -> unit
(** [save g path] writes the DOT text to [path]. *)
