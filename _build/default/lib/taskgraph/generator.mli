(** TGFF-style random task-graph generation.

    The paper's benchmarks are characterized only by task count, edge count
    and deadline; this generator produces layered random DAGs matching those
    counts exactly, weakly connected, with seeded determinism. *)

type spec = {
  n_tasks : int;        (** >= 1 *)
  n_edges : int;        (** see {!feasible_edges} *)
  deadline : float;     (** > 0 *)
  n_task_types : int;   (** task types are drawn uniformly from [0, n) *)
  min_data : float;     (** edge data lower bound *)
  max_data : float;     (** edge data upper bound *)
}

val default_spec : spec
(** 20 tasks, 24 edges, deadline 1000, 8 task types, data in [8, 64]. *)

val feasible_edges : n_tasks:int -> int * int
(** [(lo, hi)] — the edge counts for which generation is guaranteed:
    connectivity needs at least [n_tasks - 1]; a DAG admits at most
    [n_tasks * (n_tasks - 1) / 2]. *)

val generate : seed:int -> name:string -> spec -> Graph.t
(** Layered construction: tasks are spread over layers, every non-first-layer
    task gets one incoming edge from an earlier layer (yielding a connected
    spanning structure), and the remaining edges are drawn uniformly among
    forward pairs. Raises [Invalid_argument] when [spec] is out of the
    feasible range. *)
