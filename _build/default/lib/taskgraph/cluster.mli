(** Communication-driven task clustering — the classic co-synthesis
    pre-pass (Sarkar-style linear clustering): tasks joined by heavy edges
    are fused so the scheduler can never map them apart, zeroing the
    heaviest bus traffic at the cost of reduced mapping freedom.

    The result is a smaller task graph whose nodes are clusters, plus the
    mappings needed to lift a cluster-level schedule back to tasks. *)

type t = {
  clustered : Graph.t;         (** one node per cluster *)
  cluster_of : int array;      (** original task id -> cluster id *)
  members : Task.id list array; (** cluster id -> original tasks, in order *)
  internalized_data : float;   (** edge payload removed from the bus *)
}

val linear : ?threshold:float -> Graph.t -> t
(** Greedy linear clustering: scan edges by decreasing payload and merge
    endpoint clusters when (a) the payload strictly exceeds [threshold]
    (default 0: merge on any positive payload), (b) both endpoints are
    still singletons-or-chain-ends so every cluster remains a path
    (linear), and (c) the merge keeps the cluster graph acyclic.

    Cluster [c]'s node carries the fresh task type [c]; schedule the
    clustered graph against a library derived with
    [Tats_techlib.Library.aggregate ~member_types:(member_types t g)], whose
    tables sum the members' work. The clustered graph's edge payloads are
    the sums of the original cross-cluster payloads; the deadline is
    unchanged. *)

val member_types : t -> Graph.t -> int list array
(** Per cluster, the original task types of its members in chain order —
    the input [Tats_techlib.Library.aggregate] needs. *)

val lift_assignment : t -> cluster_assignment:int array -> int array
(** Expand a PE assignment over clusters into one over original tasks. *)

val validate : t -> Graph.t -> (unit, string) result
(** Structural soundness: [cluster_of]/[members] are mutually consistent,
    the clustered graph is a DAG with one node per cluster, and every
    original edge is either internal to a cluster or represented across
    clusters. *)
