type id = int
type t = { id : id; name : string; task_type : int }

let make ~id ?name ~task_type () =
  assert (id >= 0 && task_type >= 0);
  let name = match name with Some n -> n | None -> Printf.sprintf "t%d" id in
  { id; name; task_type }

let equal a b = a.id = b.id && String.equal a.name b.name && a.task_type = b.task_type

let pp ppf t = Format.fprintf ppf "%s(type=%d)" t.name t.task_type
