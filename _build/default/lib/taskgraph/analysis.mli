(** Structural statistics of task graphs — workload characterization for
    experiment write-ups and generator validation. *)

type t = {
  n_tasks : int;
  n_edges : int;
  depth : int;            (** vertices on the longest chain *)
  width : int;            (** size of the largest antichain level *)
  level_sizes : int array; (** tasks per topological level *)
  avg_out_degree : float;
  max_out_degree : int;
  max_in_degree : int;
  n_sources : int;
  n_sinks : int;
  edge_density : float;   (** edges / max possible DAG edges, in [0, 1] *)
  avg_parallelism : float; (** n_tasks / depth — mean exploitable width *)
}

val analyze : Graph.t -> t

val levels : Graph.t -> int array
(** Topological level (longest distance from a source, 0-based) per task. *)

val pp : Format.formatter -> t -> unit
