let compute ?(edge_weight = fun _ -> 0.0) ~node_weight g =
  let n = Graph.n_tasks g in
  let sc = Array.make n 0.0 in
  let order = Graph.topological_order g in
  (* Reverse topological order: successors are final before their
     predecessors are computed. *)
  for k = n - 1 downto 0 do
    let v = order.(k) in
    let own = node_weight (Graph.task g v) in
    let downstream =
      List.fold_left
        (fun acc (w, data) ->
          let e = { Graph.src = v; dst = w; data } in
          Float.max acc (edge_weight e +. sc.(w)))
        0.0 (Graph.succs g v)
    in
    sc.(v) <- own +. downstream
  done;
  sc

let hop_distance g =
  let sc = compute ~node_weight:(fun _ -> 1.0) g in
  Array.map int_of_float sc

let rank_order sc =
  let ids = Array.init (Array.length sc) Fun.id in
  Array.sort
    (fun a b -> if sc.(a) <> sc.(b) then compare sc.(b) sc.(a) else compare a b)
    ids;
  ids
