type t = {
  clustered : Graph.t;
  cluster_of : int array;
  members : Task.id list array;
  internalized_data : float;
}

(* Union-find over task ids, with chain-end bookkeeping for linearity. *)
type uf = { parent : int array; head : int array; tail : int array }

let rec find uf x = if uf.parent.(x) = x then x else find uf uf.parent.(x)

let linear ?(threshold = 0.0) g =
  let n = Graph.n_tasks g in
  let uf =
    { parent = Array.init n Fun.id; head = Array.init n Fun.id; tail = Array.init n Fun.id }
  in
  let internalized = ref 0.0 in
  (* Edges by decreasing payload; deterministic tie-break on endpoints. *)
  let edges =
    List.sort
      (fun (a : Graph.edge) b ->
        if a.Graph.data <> b.Graph.data then compare b.Graph.data a.Graph.data
        else compare (a.Graph.src, a.Graph.dst) (b.Graph.src, b.Graph.dst))
      (Graph.edges g)
  in
  (* A merge of clusters A (containing src as its tail) and B (containing
     dst as its head) keeps every cluster a path. Cycle safety is checked
     exactly: contract the current clusters with A and B unified and run
     Kahn's algorithm over the cluster-level graph — the graphs here are
     small, so the O(V+E) check per candidate merge is cheap. *)
  let acyclic_if_merged a b =
    let rep v =
      let r = find uf v in
      if r = b then a else r
    in
    let indeg = Hashtbl.create 16 and succs = Hashtbl.create 16 in
    let nodes = Hashtbl.create 16 in
    for v = 0 to n - 1 do
      Hashtbl.replace nodes (rep v) ()
    done;
    List.iter
      (fun { Graph.src; dst; _ } ->
        let cs = rep src and cd = rep dst in
        if cs <> cd then begin
          Hashtbl.replace succs cs (cd :: Option.value ~default:[] (Hashtbl.find_opt succs cs));
          Hashtbl.replace indeg cd (1 + Option.value ~default:0 (Hashtbl.find_opt indeg cd))
        end)
      (Graph.edges g);
    let queue = Queue.create () in
    Hashtbl.iter
      (fun node () ->
        if Option.value ~default:0 (Hashtbl.find_opt indeg node) = 0 then
          Queue.add node queue)
      nodes;
    let visited = ref 0 in
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      incr visited;
      List.iter
        (fun w ->
          let d = Option.value ~default:0 (Hashtbl.find_opt indeg w) - 1 in
          Hashtbl.replace indeg w d;
          if d = 0 then Queue.add w queue)
        (Option.value ~default:[] (Hashtbl.find_opt succs v))
    done;
    !visited = Hashtbl.length nodes
  in
  List.iter
    (fun { Graph.src; dst; data } ->
      if data > threshold then begin
        let a = find uf src and b = find uf dst in
        if
          a <> b
          && uf.tail.(a) = src (* src ends its chain *)
          && uf.head.(b) = dst (* dst begins its chain *)
          && acyclic_if_merged a b
        then begin
          (* Merge chain b after chain a. *)
          uf.parent.(b) <- a;
          uf.tail.(a) <- uf.tail.(b);
          internalized := !internalized +. data
        end
      end)
    edges;
  (* Dense cluster ids in order of each cluster's first (head) task. *)
  let roots =
    List.init n Fun.id
    |> List.filter (fun v -> find uf v = v)
    |> List.sort (fun a b -> compare uf.head.(a) uf.head.(b))
  in
  let cluster_id = Hashtbl.create 16 in
  List.iteri (fun i r -> Hashtbl.add cluster_id r i) roots;
  let cluster_of = Array.init n (fun v -> Hashtbl.find cluster_id (find uf v)) in
  let n_clusters = List.length roots in
  let members = Array.make n_clusters [] in
  for v = n - 1 downto 0 do
    members.(cluster_of.(v)) <- v :: members.(cluster_of.(v))
  done;
  (* Build the clustered DAG: cluster c carries the fresh task type c (its
     WCET/WCPC come from Library.aggregate); edges sum cross-cluster
     payloads. *)
  let b = Graph.builder ~name:(Graph.name g ^ "-clustered") ~deadline:(Graph.deadline g) in
  Array.iteri
    (fun c _ ->
      ignore
        (Graph.add_task b ~name:(Printf.sprintf "c%d" c) ~task_type:c ()
          : Task.id))
    members;
  let cross = Hashtbl.create 32 in
  List.iter
    (fun { Graph.src; dst; data } ->
      let cs = cluster_of.(src) and cd = cluster_of.(dst) in
      if cs <> cd then
        Hashtbl.replace cross (cs, cd)
          (data +. Option.value ~default:0.0 (Hashtbl.find_opt cross (cs, cd))))
    (Graph.edges g);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) cross []
  |> List.sort compare
  |> List.iter (fun ((cs, cd), data) -> Graph.add_edge b ~data cs cd);
  {
    clustered = Graph.build b;
    cluster_of;
    members;
    internalized_data = !internalized;
  }

let member_types t g =
  Array.map
    (fun ms -> List.map (fun v -> (Graph.task g v).Task.task_type) ms)
    t.members

let lift_assignment t ~cluster_assignment =
  if Array.length cluster_assignment <> Graph.n_tasks t.clustered then
    invalid_arg "Cluster.lift_assignment: wrong length";
  Array.map (fun c -> cluster_assignment.(c)) t.cluster_of

let validate t g =
  let n = Graph.n_tasks g in
  let problems = ref [] in
  let say fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  if Array.length t.cluster_of <> n then say "cluster_of length mismatch";
  Array.iteri
    (fun c ms ->
      List.iter
        (fun v -> if t.cluster_of.(v) <> c then say "member %d not mapped to %d" v c)
        ms)
    t.members;
  let member_count = Array.fold_left (fun acc ms -> acc + List.length ms) 0 t.members in
  if member_count <> n then say "members cover %d of %d tasks" member_count n;
  if Graph.n_tasks t.clustered <> Array.length t.members then
    say "clustered node count disagrees with members";
  List.iter
    (fun { Graph.src; dst; _ } ->
      let cs = t.cluster_of.(src) and cd = t.cluster_of.(dst) in
      if cs <> cd && not (Graph.has_edge t.clustered cs cd) then
        say "edge %d->%d lost across clusters" src dst)
    (Graph.edges g);
  match !problems with [] -> Ok () | l -> Error (String.concat "; " (List.rev l))
