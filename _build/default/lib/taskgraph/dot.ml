let to_dot ?(highlight = fun _ -> None) g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" (Graph.name g));
  Buffer.add_string buf "  rankdir=TB;\n  node [shape=box];\n";
  Array.iter
    (fun task ->
      let open Task in
      let color =
        match highlight task.id with
        | Some c -> Printf.sprintf ", style=filled, fillcolor=\"%s\"" c
        | None -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\\ntype %d\"%s];\n" task.id task.name
           task.task_type color))
    (Graph.tasks g);
  List.iter
    (fun { Graph.src; dst; data } ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%.0f\"];\n" src dst data))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let save ?highlight g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot ?highlight g))
