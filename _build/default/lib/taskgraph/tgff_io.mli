(** Plain-text task-graph interchange, in the spirit of TGFF's `.tgff`
    files (the tool behind the paper's benchmark style).

    Format (one directive per line, [#] starts a comment):

    {v
    graph <name> deadline <float>
    task <name> type <int>
    edge <src-name> -> <dst-name> [data <float>]
    v}

    Task names must be unique; edges refer to tasks by name and must appear
    after both endpoints were declared (like TGFF output). *)

val to_string : Graph.t -> string
(** Serialize; [of_string (to_string g)] reconstructs an identical graph. *)

val of_string : string -> (Graph.t, string) result
(** Parse. The error string carries a 1-based line number. *)

val save : Graph.t -> string -> unit
val load : string -> (Graph.t, string) result
