(** Conditional task graphs — the Xie–Wolf (DATE'01) substrate.

    Some edges are guarded by the boolean outcome of a condition variable
    evaluated at run time (e.g. a branch computed by the producer task). Two
    tasks whose activation guards require opposite values of some variable
    are {e mutually exclusive}: at most one of them executes in any run, so a
    scheduler may let them share a processing element's time slot. *)

type var = int
(** Condition variables, non-negative and graph-wide. *)

type guard = (var * bool) list
(** A conjunction of variable/polarity literals; [[]] is "always". *)

type t

val make : Graph.t -> (Task.id * Task.id * var * bool) list -> t
(** [make g conds] attaches condition [(var, polarity)] to each listed edge
    of [g]. Raises [Invalid_argument] if a listed edge does not exist in [g]
    or appears twice. *)

val graph : t -> Graph.t

val guard_of : t -> Task.id -> guard
(** Activation guard of a task: the union of literals along all paths from
    the sources, where an edge's literal applies to its destination and
    guards propagate transitively. A task reachable through two paths with
    conflicting literals on the same variable is considered unconditional on
    that variable (it runs either way), so the conflicting pair is dropped —
    the standard conservative approximation. *)

val mutually_exclusive : t -> Task.id -> Task.id -> bool
(** True when some variable appears with opposite polarity in the two tasks'
    guards — the pair can never both execute. *)

val exclusion_pairs : t -> (Task.id * Task.id) list
(** All mutually exclusive pairs [(a, b)] with [a < b]. *)

val annotate_random :
  Tats_util.Rng.t -> fork_probability:float -> Graph.t -> t
(** Randomly turns forks into conditional branches: each task with at least
    two successors becomes, with the given probability, a branch on a fresh
    condition variable whose first two out-edges get opposite polarities.
    With probability 0 the result has no conditions. *)

val variables : t -> var list
(** Condition variables actually used, ascending. *)

val scenarios : ?limit:int -> t -> (var * bool) list list
(** All assignments of the used variables (2^n, capped at [limit], default
    256 — raises [Invalid_argument] beyond it). The empty conjunction [[]]
    is returned for an unconditional graph. *)

val active_tasks : t -> (var * bool) list -> Task.id list
(** Tasks whose guard is satisfied under the (total) assignment, ascending.
    Unconditional tasks are always active. *)

val scenario_makespan :
  t -> finish:(Task.id -> float) -> (var * bool) list -> float
(** The makespan a given schedule exhibits in one scenario: the latest
    finish among the active tasks (0 when none). With a schedule built for
    the worst case, the maximum over {!scenarios} equals the schedule
    makespan only if every task is active in some scenario. *)
