lib/linalg/sparse.ml: Array Float List Matrix Stdlib
