lib/linalg/cg.mli: Sparse
