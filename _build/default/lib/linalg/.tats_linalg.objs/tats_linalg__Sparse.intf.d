lib/linalg/sparse.mli: Matrix
