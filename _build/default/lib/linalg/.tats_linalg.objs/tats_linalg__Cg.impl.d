lib/linalg/cg.ml: Array Float Printf Sparse Stdlib
