(** Conjugate-gradient solver for symmetric positive-definite sparse systems,
    with optional Jacobi (diagonal) preconditioning.

    Thermal conductance matrices are SPD by construction, which makes CG the
    natural solver for the grid-mode thermal model. *)

type stats = { iterations : int; residual_norm : float }

val solve :
  ?x0:float array ->
  ?tol:float ->
  ?max_iter:int ->
  ?jacobi:bool ->
  Sparse.t ->
  float array ->
  float array * stats
(** [solve a b] returns [(x, stats)] with [||A x - b|| <= tol * ||b||] when
    converged. [tol] defaults to [1e-10], [max_iter] to [10 * n], [jacobi] to
    [true]. Raises [Failure] if the iteration fails to converge. *)
