(* Tests for Tats_techlib: PE kinds, communication model, WCET/WCPC library,
   default catalogues. *)

module Pe = Tats_techlib.Pe
module Comm = Tats_techlib.Comm
module Library = Tats_techlib.Library
module Catalog = Tats_techlib.Catalog
module Benchmarks = Tats_taskgraph.Benchmarks

let kind ?(id = 0) ?(speed = 1.0) ?(power = 5.0) ?(cost = 100.0) ?spec () =
  Pe.make_kind ~kind_id:id ~name:(Printf.sprintf "k%d" id) ~area:1e-5 ~cost ~speed
    ~power_scale:power ~idle_power:0.5 ?specialization:spec ()

(* --- Pe ----------------------------------------------------------------- *)

let test_make_kind_validation () =
  let bad f = try ignore (f () : Pe.kind); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "negative id" true (bad (fun () -> kind ~id:(-1) ()));
  Alcotest.(check bool) "zero speed" true (bad (fun () -> kind ~speed:0.0 ()));
  Alcotest.(check bool) "zero power" true (bad (fun () -> kind ~power:0.0 ()));
  Alcotest.(check bool) "bad specialization" true
    (bad (fun () -> kind ~spec:[ (0, 0.0) ] ()))

let test_instances_numbering () =
  let insts = Pe.instances [ kind ~id:0 (); kind ~id:1 (); kind ~id:0 () ] in
  Alcotest.(check int) "count" 3 (Array.length insts);
  Array.iteri (fun i inst -> Alcotest.(check int) "dense ids" i inst.Pe.inst_id) insts

(* --- Comm --------------------------------------------------------------- *)

let test_comm_same_pe_free () =
  let c = Comm.make ~delay_per_byte:0.5 ~energy_per_byte:0.1 () in
  Alcotest.(check (float 0.0)) "same-PE delay" 0.0 (Comm.delay c ~data:100.0 ~same_pe:true);
  Alcotest.(check (float 0.0)) "same-PE energy" 0.0
    (Comm.energy_between c ~src:1 ~dst:1 ~data:100.0)

let test_comm_scales_with_data () =
  let c = Comm.make ~delay_per_byte:0.5 ~energy_per_byte:0.1 () in
  Alcotest.(check (float 1e-9)) "delay" 50.0 (Comm.delay c ~data:100.0 ~same_pe:false);
  Alcotest.(check (float 1e-9)) "energy" 10.0 (Comm.energy_between c ~src:0 ~dst:1 ~data:100.0)

let test_mesh_hops () =
  let c = Comm.mesh ~cols:2 () in
  (* PEs on a 2-column grid: 0 1 / 2 3. *)
  Alcotest.(check int) "same pe" 0 (Comm.hops c ~src:1 ~dst:1);
  Alcotest.(check int) "adjacent row" 1 (Comm.hops c ~src:0 ~dst:1);
  Alcotest.(check int) "adjacent col" 1 (Comm.hops c ~src:0 ~dst:2);
  Alcotest.(check int) "diagonal" 2 (Comm.hops c ~src:0 ~dst:3);
  let wide = Comm.mesh ~cols:4 () in
  Alcotest.(check int) "manhattan" 5 (Comm.hops wide ~src:0 ~dst:14)

let test_mesh_delay_and_energy () =
  let c =
    Comm.make ~delay_per_byte:0.1 ~energy_per_byte:0.05
      ~topology:(Comm.Mesh { cols = 2; per_hop_delay = 5.0 })
      ()
  in
  (* Diagonal transfer on a 2x2: 2 hops. *)
  Alcotest.(check (float 1e-9)) "delay = hops*perhop + data*rate"
    ((2.0 *. 5.0) +. (100.0 *. 0.1))
    (Comm.delay_between c ~src:0 ~dst:3 ~data:100.0);
  Alcotest.(check (float 1e-9)) "energy scales with hops" (2.0 *. 100.0 *. 0.05)
    (Comm.energy_between c ~src:0 ~dst:3 ~data:100.0);
  Alcotest.(check (float 1e-9)) "same pe free" 0.0
    (Comm.delay_between c ~src:2 ~dst:2 ~data:100.0)

let test_bus_hops_binary () =
  let c = Comm.default in
  Alcotest.(check int) "bus cross" 1 (Comm.hops c ~src:0 ~dst:7);
  Alcotest.(check int) "bus same" 0 (Comm.hops c ~src:3 ~dst:3)

let test_mesh_validation () =
  Alcotest.(check bool) "zero cols" true
    (try
       ignore
         (Comm.make ~delay_per_byte:0.1 ~energy_per_byte:0.1
            ~topology:(Comm.Mesh { cols = 0; per_hop_delay = 1.0 })
            ()
          : Comm.t);
       false
     with Invalid_argument _ -> true)

let test_comm_rejects_negative () =
  Alcotest.(check bool) "negative rate" true
    (try ignore (Comm.make ~delay_per_byte:(-1.0) ~energy_per_byte:0.0 () : Comm.t); false
     with Invalid_argument _ -> true)

(* --- Library ------------------------------------------------------------ *)

let two_kinds () = [ kind ~id:0 ~speed:1.0 ~power:4.0 (); kind ~id:1 ~speed:2.0 ~power:10.0 () ]

let test_generate_positive_tables () =
  let lib = Library.generate ~seed:1 ~n_task_types:6 ~kinds:(two_kinds ()) () in
  for tt = 0 to 5 do
    for k = 0 to 1 do
      Alcotest.(check bool) "wcet > 0" true (Library.wcet lib ~task_type:tt ~kind:k > 0.0);
      Alcotest.(check bool) "wcpc > 0" true (Library.wcpc lib ~task_type:tt ~kind:k > 0.0)
    done
  done

let test_generate_faster_kind_shorter_wcet () =
  let lib = Library.generate ~seed:2 ~n_task_types:8 ~kinds:(two_kinds ()) () in
  (* Speed 2.0 vs 1.0 with +-15% jitter: kind 1 must be faster on average. *)
  let ratio_sum = ref 0.0 in
  for tt = 0 to 7 do
    ratio_sum :=
      !ratio_sum
      +. (Library.wcet lib ~task_type:tt ~kind:1 /. Library.wcet lib ~task_type:tt ~kind:0)
  done;
  Alcotest.(check bool) "avg ratio < 1" true (!ratio_sum /. 8.0 < 0.75)

let test_generate_determinism () =
  let a = Library.generate ~seed:3 ~n_task_types:4 ~kinds:(two_kinds ()) () in
  let b = Library.generate ~seed:3 ~n_task_types:4 ~kinds:(two_kinds ()) () in
  for tt = 0 to 3 do
    Alcotest.(check (float 0.0)) "same wcet"
      (Library.wcet a ~task_type:tt ~kind:0)
      (Library.wcet b ~task_type:tt ~kind:0)
  done

let test_specialization_speeds_up () =
  let kinds =
    [ kind ~id:0 (); kind ~id:1 ~spec:[ (2, 0.4) ] () ]
  in
  (* Compare against the same library without the specialization. *)
  let plain = [ kind ~id:0 (); kind ~id:1 () ] in
  let with_spec = Library.generate ~seed:4 ~n_task_types:4 ~kinds () in
  let without = Library.generate ~seed:4 ~n_task_types:4 ~kinds:plain () in
  let r =
    Library.wcet with_spec ~task_type:2 ~kind:1 /. Library.wcet without ~task_type:2 ~kind:1
  in
  Alcotest.(check (float 1e-9)) "exactly the multiplier" 0.4 r

let test_energy_is_product () =
  let lib = Library.generate ~seed:5 ~n_task_types:3 ~kinds:(two_kinds ()) () in
  let e = Library.energy lib ~task_type:1 ~kind:0 in
  let w = Library.wcet lib ~task_type:1 ~kind:0 *. Library.wcpc lib ~task_type:1 ~kind:0 in
  Alcotest.(check (float 1e-9)) "wcet*wcpc" w e

let test_wcet_avg () =
  let lib =
    Library.of_tables ~kinds:(two_kinds ())
      ~wcet:[| [| 10.0; 20.0 |] |]
      ~wcpc:[| [| 1.0; 2.0 |] |]
      ()
  in
  Alcotest.(check (float 1e-9)) "avg" 15.0 (Library.wcet_avg lib ~task_type:0)

let test_maxima () =
  let lib =
    Library.of_tables ~kinds:(two_kinds ())
      ~wcet:[| [| 10.0; 20.0 |]; [| 5.0; 8.0 |] |]
      ~wcpc:[| [| 1.0; 2.0 |]; [| 6.0; 3.0 |] |]
      ()
  in
  Alcotest.(check (float 1e-9)) "max wcpc" 6.0 (Library.max_wcpc lib);
  Alcotest.(check (float 1e-9)) "max energy" 40.0 (Library.max_energy lib)

let test_of_tables_validation () =
  let bad f = try ignore (f () : Library.t); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "ragged" true
    (bad (fun () ->
         Library.of_tables ~kinds:(two_kinds ()) ~wcet:[| [| 1.0 |] |]
           ~wcpc:[| [| 1.0; 1.0 |] |] ()));
  Alcotest.(check bool) "non-positive" true
    (bad (fun () ->
         Library.of_tables ~kinds:(two_kinds ())
           ~wcet:[| [| 1.0; 0.0 |] |]
           ~wcpc:[| [| 1.0; 1.0 |] |]
           ()));
  Alcotest.(check bool) "kind ids must be dense" true
    (bad (fun () ->
         Library.of_tables
           ~kinds:[ kind ~id:1 () ]
           ~wcet:[| [| 1.0 |] |] ~wcpc:[| [| 1.0 |] |] ()))

let test_aggregate_conserves_work_and_energy () =
  let lib = Library.generate ~seed:9 ~n_task_types:5 ~kinds:(two_kinds ()) () in
  let member_types = [| [ 0; 2; 4 ]; [ 1 ]; [ 3 ] |] in
  let agg = Library.aggregate lib ~member_types in
  Alcotest.(check int) "three cluster types" 3 (Library.n_task_types agg);
  for k = 0 to 1 do
    (* Cluster 0: WCET sums, energy sums. *)
    let wcet_sum =
      List.fold_left (fun acc tt -> acc +. Library.wcet lib ~task_type:tt ~kind:k)
        0.0 [ 0; 2; 4 ]
    in
    let energy_sum =
      List.fold_left (fun acc tt -> acc +. Library.energy lib ~task_type:tt ~kind:k)
        0.0 [ 0; 2; 4 ]
    in
    Alcotest.(check (float 1e-9)) "wcet sum" wcet_sum
      (Library.wcet agg ~task_type:0 ~kind:k);
    Alcotest.(check (float 1e-6)) "energy sum" energy_sum
      (Library.energy agg ~task_type:0 ~kind:k);
    (* Singleton clusters are unchanged. *)
    Alcotest.(check (float 1e-9)) "singleton wcet"
      (Library.wcet lib ~task_type:1 ~kind:k)
      (Library.wcet agg ~task_type:1 ~kind:k)
  done

let test_aggregate_rejects_empty_cluster () =
  let lib = Library.generate ~seed:9 ~n_task_types:3 ~kinds:(two_kinds ()) () in
  Alcotest.(check bool) "empty rejected" true
    (try ignore (Library.aggregate lib ~member_types:[| [] |] : Library.t); false
     with Invalid_argument _ -> true)

(* --- Catalog ------------------------------------------------------------ *)

let test_heterogeneous_catalogue () =
  let kinds = Catalog.heterogeneous () in
  Alcotest.(check int) "five kinds" 5 (List.length kinds);
  List.iteri (fun i (k : Pe.kind) -> Alcotest.(check int) "dense" i k.Pe.kind_id) kinds

let test_power_energy_rank_disagree () =
  (* The catalogue is built so that the lowest-power kind is NOT the
     lowest-energy kind — the gap between heuristics 1 and 3. *)
  let lib = Catalog.default_library () in
  let kinds = Library.kinds lib in
  let avg f =
    Array.init (Library.n_task_types lib) (fun tt -> f tt)
    |> Array.fold_left ( +. ) 0.0
  in
  let power_of k = avg (fun tt -> Library.wcpc lib ~task_type:tt ~kind:k) in
  let energy_of k = avg (fun tt -> Library.energy lib ~task_type:tt ~kind:k) in
  let n = Array.length kinds in
  let by cmp f =
    let best = ref 0 in
    for k = 1 to n - 1 do
      if cmp (f k) (f !best) then best := k
    done;
    !best
  in
  let min_power_kind = by ( < ) power_of in
  let min_energy_kind = by ( < ) energy_of in
  Alcotest.(check bool) "rankings disagree" true (min_power_kind <> min_energy_kind)

let test_platform_library_single_kind () =
  let lib = Catalog.platform_library () in
  Alcotest.(check int) "one kind" 1 (Array.length (Library.kinds lib));
  Alcotest.(check int) "task types match suite" Benchmarks.n_task_types
    (Library.n_task_types lib)

let test_platform_instances () =
  let insts = Catalog.platform_instances 4 in
  Alcotest.(check int) "four" 4 (Array.length insts);
  Array.iter
    (fun (i : Pe.inst) ->
      Alcotest.(check string) "all std-core" "std-core" i.Pe.kind.Pe.kind_name)
    insts

let prop_generated_wcet_in_plausible_range =
  QCheck.Test.make ~name:"generated WCETs within speed-scaled bounds" ~count:50
    QCheck.small_int (fun seed ->
      let lib = Library.generate ~seed ~n_task_types:5 ~kinds:(two_kinds ()) () in
      let ok = ref true in
      for tt = 0 to 4 do
        (* Reference range [40, 160], speed 1 kind, +-15% jitter. *)
        let w = Library.wcet lib ~task_type:tt ~kind:0 in
        if w < 40.0 *. 0.85 || w > 160.0 *. 1.15 then ok := false
      done;
      !ok)

let () =
  Alcotest.run "tats_techlib"
    [
      ( "pe",
        [
          Alcotest.test_case "validation" `Quick test_make_kind_validation;
          Alcotest.test_case "instances" `Quick test_instances_numbering;
        ] );
      ( "comm",
        [
          Alcotest.test_case "same-PE free" `Quick test_comm_same_pe_free;
          Alcotest.test_case "scales with data" `Quick test_comm_scales_with_data;
          Alcotest.test_case "validation" `Quick test_comm_rejects_negative;
          Alcotest.test_case "mesh hops" `Quick test_mesh_hops;
          Alcotest.test_case "mesh delay/energy" `Quick test_mesh_delay_and_energy;
          Alcotest.test_case "bus hops" `Quick test_bus_hops_binary;
          Alcotest.test_case "mesh validation" `Quick test_mesh_validation;
        ] );
      ( "library",
        [
          Alcotest.test_case "positive tables" `Quick test_generate_positive_tables;
          Alcotest.test_case "speed shortens wcet" `Quick
            test_generate_faster_kind_shorter_wcet;
          Alcotest.test_case "determinism" `Quick test_generate_determinism;
          Alcotest.test_case "specialization" `Quick test_specialization_speeds_up;
          Alcotest.test_case "energy = wcet*wcpc" `Quick test_energy_is_product;
          Alcotest.test_case "wcet_avg" `Quick test_wcet_avg;
          Alcotest.test_case "maxima" `Quick test_maxima;
          Alcotest.test_case "of_tables validation" `Quick test_of_tables_validation;
          Alcotest.test_case "aggregate conserves" `Quick
            test_aggregate_conserves_work_and_energy;
          Alcotest.test_case "aggregate empty" `Quick test_aggregate_rejects_empty_cluster;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "heterogeneous" `Quick test_heterogeneous_catalogue;
          Alcotest.test_case "power/energy ranks disagree" `Quick
            test_power_energy_rank_disagree;
          Alcotest.test_case "platform library" `Quick test_platform_library_single_kind;
          Alcotest.test_case "platform instances" `Quick test_platform_instances;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_generated_wcet_in_plausible_range ]);
    ]
