(* Tests for Tats_sched: policies, schedules and their validation, DC cost
   terms, the list-scheduling ASP, adaptive weights, metrics. *)

module Graph = Tats_taskgraph.Graph
module Benchmarks = Tats_taskgraph.Benchmarks
module Cond = Tats_taskgraph.Cond
module Pe = Tats_techlib.Pe
module Library = Tats_techlib.Library
module Catalog = Tats_techlib.Catalog
module Block = Tats_floorplan.Block
module Grid = Tats_floorplan.Grid
module Hotspot = Tats_thermal.Hotspot
module Policy = Tats_sched.Policy
module Schedule = Tats_sched.Schedule
module Dc = Tats_sched.Dc
module List_sched = Tats_sched.List_sched
module Metrics = Tats_sched.Metrics
module Stats = Tats_util.Stats

let platform_lib = Catalog.platform_library ()
let hetero_lib = Catalog.default_library ()

let platform_pes n = Catalog.platform_instances n

let platform_hotspot n =
  Hotspot.create
    (Grid.layout
       (Array.map
          (fun (i : Pe.inst) ->
            Block.make ~name:(string_of_int i.Pe.inst_id) ~area:i.Pe.kind.Pe.area ())
          (platform_pes n)))

(* A 4-task chain with one fork, easy to reason about. *)
let small_graph () =
  let b = Graph.builder ~name:"small" ~deadline:1000.0 in
  let t0 = Graph.add_task b ~task_type:0 () in
  let t1 = Graph.add_task b ~task_type:1 () in
  let t2 = Graph.add_task b ~task_type:2 () in
  let t3 = Graph.add_task b ~task_type:3 () in
  Graph.add_edge b ~data:32.0 t0 t1;
  Graph.add_edge b ~data:32.0 t0 t2;
  Graph.add_edge b ~data:32.0 t1 t3;
  Graph.add_edge b ~data:32.0 t2 t3;
  Graph.build b

let run_platform ?weights ?hotspot ~policy graph =
  List_sched.run ?weights ?hotspot ~graph ~lib:platform_lib ~pes:(platform_pes 4)
    ~policy ()

(* --- Policy ------------------------------------------------------------- *)

let test_policy_names_roundtrip () =
  List.iter
    (fun p ->
      match Policy.of_name (Policy.name p) with
      | Some p' -> Alcotest.(check bool) "roundtrip" true (p = p')
      | None -> Alcotest.failf "name %s did not parse" (Policy.name p))
    Policy.all;
  Alcotest.(check bool) "unknown name" true (Policy.of_name "bogus" = None)

let test_policy_all_count () =
  Alcotest.(check int) "five policies" 5 (List.length Policy.all)

let test_default_weights () =
  let w = Policy.default_weights ~deadline:1000.0 in
  Alcotest.(check bool) "positive" true (w.Policy.cost_weight > 0.0);
  Alcotest.(check bool) "bad deadline" true
    (try ignore (Policy.default_weights ~deadline:0.0 : Policy.weights); false
     with Invalid_argument _ -> true)

(* --- Dc ----------------------------------------------------------------- *)

let test_dc_value_formula () =
  Alcotest.(check (float 1e-9)) "formula" (100.0 -. 10.0 -. 20.0 -. (2.0 *. 0.5))
    (Dc.value ~sc:100.0 ~wcet:10.0 ~start:20.0 ~cost:0.5 ~weight:2.0)

let test_dc_costs_normalized () =
  for tt = 0 to Library.n_task_types hetero_lib - 1 do
    for k = 0 to Array.length (Library.kinds hetero_lib) - 1 do
      let c1 = Dc.cost_task_power hetero_lib ~task_type:tt ~kind:k in
      let c3 = Dc.cost_task_energy hetero_lib ~task_type:tt ~kind:k in
      Alcotest.(check bool) "h1 in (0,1]" true (c1 > 0.0 && c1 <= 1.0);
      Alcotest.(check bool) "h3 in (0,1]" true (c3 > 0.0 && c3 <= 1.0)
    done
  done

let test_dc_pe_average_power () =
  (* 100 J on the PE plus 20 J of task, finishing at t=60: 2 W average. *)
  let lib =
    Library.of_tables
      ~kinds:
        [ Pe.make_kind ~kind_id:0 ~name:"k" ~area:1e-5 ~cost:1.0 ~speed:1.0
            ~power_scale:4.0 ~idle_power:0.0 () ]
      ~wcet:[| [| 10.0 |] |]
      ~wcpc:[| [| 4.0 |] |]
      ()
  in
  Alcotest.(check (float 1e-9)) "avg power / max wcpc" (2.0 /. 4.0)
    (Dc.cost_pe_average_power lib ~pe_energy:100.0 ~task_energy:20.0 ~finish:60.0)

let test_dc_temperature_cost () =
  Alcotest.(check (float 1e-9)) "scaled excursion" 0.3
    (Dc.cost_temperature ~ambient:45.0 ~avg_temp:75.0)

let test_static_criticality_decreases_downstream () =
  let g = small_graph () in
  let sc = Dc.static_criticality platform_lib g in
  Alcotest.(check bool) "source most critical" true (sc.(0) > sc.(1));
  Alcotest.(check bool) "sink least critical" true (sc.(3) < sc.(1))

(* --- Schedule validation ------------------------------------------------ *)

let test_valid_schedule_passes () =
  let g = small_graph () in
  let s = run_platform ~policy:Policy.Baseline g in
  Alcotest.(check int) "no violations" 0
    (List.length (Schedule.validate ~lib:platform_lib s))

let test_validate_detects_precedence_breach () =
  let g = small_graph () in
  let s = run_platform ~policy:Policy.Baseline g in
  (* Forge a schedule where task 3 starts at 0 (before its parents finish). *)
  let wcet3 =
    Library.wcet platform_lib
      ~task_type:(Graph.task g 3).Tats_taskgraph.Task.task_type ~kind:0
  in
  let entries =
    Array.map
      (fun (e : Schedule.entry) ->
        if e.Schedule.task = 3 then
          { e with Schedule.start = 0.0; finish = wcet3; pe = 3 }
        else e)
      s.Schedule.entries
  in
  let forged = Schedule.make ~graph:g ~pes:(platform_pes 4) ~entries in
  let violations = Schedule.validate ~lib:platform_lib forged in
  Alcotest.(check bool) "precedence caught" true
    (List.exists
       (function Schedule.Precedence _ -> true | _ -> false)
       violations)

let test_validate_detects_overlap () =
  let g = small_graph () in
  let s = run_platform ~policy:Policy.Baseline g in
  (* Push tasks 1 and 2 onto PE 0 at the same time. *)
  let entries =
    Array.map
      (fun (e : Schedule.entry) ->
        if e.Schedule.task = 1 || e.Schedule.task = 2 then { e with Schedule.pe = 0 }
        else e)
      s.Schedule.entries
  in
  (* Align their start times. *)
  let e1 = entries.(1) and e2 = entries.(2) in
  entries.(2) <-
    { e2 with Schedule.start = e1.Schedule.start;
      finish = e1.Schedule.start +. (e2.Schedule.finish -. e2.Schedule.start) };
  let forged = Schedule.make ~graph:g ~pes:(platform_pes 4) ~entries in
  let violations = Schedule.validate ~lib:platform_lib forged in
  Alcotest.(check bool) "overlap caught" true
    (List.exists (function Schedule.Pe_overlap _ -> true | _ -> false) violations)

let test_validate_detects_bad_duration () =
  let g = small_graph () in
  let s = run_platform ~policy:Policy.Baseline g in
  let entries =
    Array.map
      (fun (e : Schedule.entry) ->
        if e.Schedule.task = 0 then { e with Schedule.finish = e.Schedule.finish +. 5.0 }
        else e)
      s.Schedule.entries
  in
  let forged = Schedule.make ~graph:g ~pes:(platform_pes 4) ~entries in
  Alcotest.(check bool) "duration caught" true
    (List.exists
       (function Schedule.Bad_duration 0 -> true | _ -> false)
       (Schedule.validate ~lib:platform_lib forged))

let test_schedule_make_validation () =
  let g = small_graph () in
  let s = run_platform ~policy:Policy.Baseline g in
  Alcotest.(check bool) "wrong count" true
    (try
       ignore
         (Schedule.make ~graph:g ~pes:(platform_pes 4)
            ~entries:(Array.sub s.Schedule.entries 0 2)
          : Schedule.t);
       false
     with Invalid_argument _ -> true)

(* --- List scheduler ----------------------------------------------------- *)

let all_benchmark_policy_pairs () =
  List.concat_map
    (fun bench ->
      List.map (fun policy -> (bench, policy)) Policy.all)
    [ 0; 1; 2; 3 ]

let test_all_policies_produce_valid_schedules () =
  List.iter
    (fun (bench, policy) ->
      let graph = Benchmarks.load bench in
      let hotspot = platform_hotspot 4 in
      let s =
        List_sched.run ~hotspot ~graph ~lib:platform_lib ~pes:(platform_pes 4) ~policy ()
      in
      let violations = Schedule.validate ~lib:platform_lib s in
      if violations <> [] then
        Alcotest.failf "%s/%s: %d violations" (Graph.name graph) (Policy.name policy)
          (List.length violations))
    (all_benchmark_policy_pairs ())

let test_scheduler_deterministic () =
  let graph = Benchmarks.load 1 in
  let s1 = run_platform ~policy:Policy.Baseline graph in
  let s2 = run_platform ~policy:Policy.Baseline graph in
  Alcotest.(check bool) "identical schedules" true
    (Array.for_all2
       (fun (a : Schedule.entry) (b : Schedule.entry) ->
         a.Schedule.pe = b.Schedule.pe && a.Schedule.start = b.Schedule.start)
       s1.Schedule.entries s2.Schedule.entries)

let test_thermal_requires_hotspot () =
  let graph = small_graph () in
  Alcotest.check_raises "missing hotspot" List_sched.Thermal_policy_needs_hotspot
    (fun () -> ignore (run_platform ~policy:Policy.Thermal_aware graph : Schedule.t))

let test_thermal_hotspot_size_checked () =
  let graph = small_graph () in
  Alcotest.(check bool) "wrong block count" true
    (try
       ignore
         (run_platform ~hotspot:(platform_hotspot 2) ~policy:Policy.Thermal_aware graph
          : Schedule.t);
       false
     with Invalid_argument _ -> true)

let test_single_pe_serializes () =
  let graph = small_graph () in
  let s =
    List_sched.run ~graph ~lib:platform_lib ~pes:(platform_pes 1)
      ~policy:Policy.Baseline ()
  in
  Alcotest.(check int) "no violations" 0
    (List.length (Schedule.validate ~lib:platform_lib s));
  (* With one PE the makespan is at least the total work. *)
  let total_wcet =
    Array.fold_left
      (fun acc (e : Schedule.entry) -> acc +. (e.Schedule.finish -. e.Schedule.start))
      0.0 s.Schedule.entries
  in
  Alcotest.(check bool) "serialized" true (s.Schedule.makespan >= total_wcet -. 1e-6)

let test_heterogeneous_valid () =
  let graph = Benchmarks.load 0 in
  let pes = Pe.instances (Catalog.heterogeneous ()) in
  let s = List_sched.run ~graph ~lib:hetero_lib ~pes ~policy:Policy.Baseline () in
  Alcotest.(check int) "no violations" 0 (List.length (Schedule.validate ~lib:hetero_lib s))

let test_h1_prefers_low_power_pe () =
  (* Two kinds, same speed, very different power: with a strong weight H1
     must put everything on the low-power kind. *)
  let kinds =
    [ Pe.make_kind ~kind_id:0 ~name:"hot" ~area:1e-5 ~cost:1.0 ~speed:1.0
        ~power_scale:10.0 ~idle_power:0.0 ();
      Pe.make_kind ~kind_id:1 ~name:"cool" ~area:1e-5 ~cost:1.0 ~speed:1.0
        ~power_scale:1.0 ~idle_power:0.0 () ]
  in
  let lib = Library.generate ~seed:1 ~n_task_types:4 ~kinds () in
  let b = Graph.builder ~name:"chain" ~deadline:1e6 in
  let t0 = Graph.add_task b ~task_type:0 () in
  let t1 = Graph.add_task b ~task_type:1 () in
  Graph.add_edge b t0 t1;
  let graph = Graph.build b in
  let pes = Pe.instances kinds in
  let s =
    List_sched.run
      ~weights:{ Policy.cost_weight = 1e5 }
      ~graph ~lib ~pes
      ~policy:(Policy.Power_aware Policy.Min_task_power)
      ()
  in
  Array.iter
    (fun (e : Schedule.entry) -> Alcotest.(check int) "on the cool PE" 1 e.Schedule.pe)
    s.Schedule.entries

let test_exclusive_tasks_may_overlap () =
  (* Conditional fork: tasks 1 and 2 are mutually exclusive; on a single PE
     they may share the time slot. *)
  let b = Graph.builder ~name:"cond" ~deadline:1e6 in
  let t0 = Graph.add_task b ~task_type:0 () in
  let t1 = Graph.add_task b ~task_type:1 () in
  let t2 = Graph.add_task b ~task_type:1 () in
  Graph.add_edge b t0 t1;
  Graph.add_edge b t0 t2;
  let graph = Graph.build b in
  let cond = Cond.make graph [ (t0, t1, 0, true); (t0, t2, 0, false) ] in
  let exclusive = Cond.mutually_exclusive cond in
  let pes = platform_pes 1 in
  let serial = List_sched.run ~graph ~lib:platform_lib ~pes ~policy:Policy.Baseline () in
  let shared =
    List_sched.run ~exclusive ~graph ~lib:platform_lib ~pes ~policy:Policy.Baseline ()
  in
  Alcotest.(check bool) "exclusion shortens the schedule" true
    (shared.Schedule.makespan < serial.Schedule.makespan -. 1e-9);
  Alcotest.(check int) "still valid under exclusion" 0
    (List.length (Schedule.validate ~exclusive ~lib:platform_lib shared))

let test_mesh_comm_schedules_validly () =
  (* The same library over a 2x2 mesh NoC: schedules stay valid and the
     extra hop latency can only lengthen the makespan. *)
  let mesh_lib =
    Library.generate ~seed:77
      ~n_task_types:Benchmarks.n_task_types
      ~kinds:[ Catalog.platform_kind () ]
      ~comm:(Tats_techlib.Comm.mesh ~cols:2 ~per_hop_delay:8.0 ())
      ()
  in
  List.iter
    (fun bench ->
      let graph = Benchmarks.load bench in
      let bus = List_sched.run ~graph ~lib:platform_lib ~pes:(platform_pes 4)
          ~policy:Policy.Baseline () in
      let mesh = List_sched.run ~graph ~lib:mesh_lib ~pes:(platform_pes 4)
          ~policy:Policy.Baseline () in
      Alcotest.(check int) "valid on mesh" 0
        (List.length (Schedule.validate ~lib:mesh_lib mesh));
      Alcotest.(check bool) "mesh latency >= bus" true
        (mesh.Schedule.makespan >= bus.Schedule.makespan -. 1e-6))
    [ 0; 1 ]

let test_mesh_comm_energy_distance_dependent () =
  (* On a mesh, total comm energy depends on which PEs talk; verify the
     metric accounts hops by constructing a 2-task schedule across the
     diagonal vs adjacent PEs. *)
  let mesh_lib =
    Library.generate ~seed:77 ~n_task_types:4
      ~kinds:[ Catalog.platform_kind () ]
      ~comm:(Tats_techlib.Comm.mesh ~cols:2 ~per_hop_delay:1.0 ())
      ()
  in
  let b = Graph.builder ~name:"pair" ~deadline:1e6 in
  let t0 = Graph.add_task b ~task_type:0 () in
  let t1 = Graph.add_task b ~task_type:1 () in
  Graph.add_edge b ~data:100.0 t0 t1;
  let graph = Graph.build b in
  let pes = platform_pes 4 in
  let forge src dst =
    let wcet t =
      Library.wcet mesh_lib
        ~task_type:(Graph.task graph t).Tats_taskgraph.Task.task_type ~kind:0
    in
    let delay =
      Tats_techlib.Comm.delay_between (Library.comm mesh_lib) ~src ~dst ~data:100.0
    in
    let e0 =
      { Schedule.task = 0; pe = src; start = 0.0; finish = wcet 0; energy = 1.0 }
    in
    let e1 =
      {
        Schedule.task = 1;
        pe = dst;
        start = wcet 0 +. delay;
        finish = wcet 0 +. delay +. wcet 1;
        energy = 1.0;
      }
    in
    Schedule.make ~graph ~pes ~entries:[| e0; e1 |]
  in
  let adjacent = Metrics.total_comm_energy (forge 0 1) ~lib:mesh_lib in
  let diagonal = Metrics.total_comm_energy (forge 0 3) ~lib:mesh_lib in
  Alcotest.(check bool) "diagonal costs twice" true
    (Float.abs (diagonal -. (2.0 *. adjacent)) < 1e-9)

(* --- Adaptive weights --------------------------------------------------- *)

let test_adaptive_meets_deadline_when_possible () =
  let graph = Benchmarks.load 0 in
  let hotspot = platform_hotspot 4 in
  let s, w =
    List_sched.run_adaptive ~hotspot ~graph ~lib:platform_lib ~pes:(platform_pes 4)
      ~policy:Policy.Thermal_aware ()
  in
  Alcotest.(check bool) "meets deadline" true (Schedule.meets_deadline s);
  Alcotest.(check bool) "weight positive" true (w.Policy.cost_weight > 0.0)

let test_adaptive_cools_platform () =
  let graph = Benchmarks.load 0 in
  let hotspot = platform_hotspot 4 in
  let pes = platform_pes 4 in
  let base = List_sched.run ~graph ~lib:platform_lib ~pes ~policy:Policy.Baseline () in
  let thermal, _ =
    List_sched.run_adaptive ~hotspot ~graph ~lib:platform_lib ~pes
      ~policy:Policy.Thermal_aware ()
  in
  let t_base = Metrics.thermal_report base ~hotspot in
  let t_thermal = Metrics.thermal_report thermal ~hotspot in
  Alcotest.(check bool) "thermal cooler (max)" true
    (t_thermal.Metrics.max_temp < t_base.Metrics.max_temp)

let test_adaptive_power_capped_at_base () =
  let graph = Benchmarks.load 0 in
  let base_weights = Policy.default_weights ~deadline:(Graph.deadline graph) in
  let _, w =
    List_sched.run_adaptive ~base_weights ~max_multiplier:1.0 ~graph ~lib:platform_lib
      ~pes:(platform_pes 4)
      ~policy:(Policy.Power_aware Policy.Min_task_energy)
      ()
  in
  Alcotest.(check bool) "capped" true
    (w.Policy.cost_weight <= base_weights.Policy.cost_weight +. 1e-9)

let test_adaptive_infeasible_architecture () =
  (* A 1-PE platform cannot meet Bm1's deadline; run_adaptive must still
     return a complete (if late) schedule. *)
  let graph = Benchmarks.load 0 in
  let hotspot = platform_hotspot 1 in
  let s, _ =
    List_sched.run_adaptive ~hotspot ~graph ~lib:platform_lib ~pes:(platform_pes 1)
      ~policy:Policy.Thermal_aware ()
  in
  Alcotest.(check bool) "late but complete" true (not (Schedule.meets_deadline s));
  Alcotest.(check int) "valid" 0 (List.length (Schedule.validate ~lib:platform_lib s))

(* --- Metrics ------------------------------------------------------------ *)

let test_pe_energies_sum () =
  let graph = Benchmarks.load 0 in
  let s = run_platform ~policy:Policy.Baseline graph in
  Alcotest.(check (float 1e-6)) "partition of total"
    (Metrics.total_task_energy s)
    (Stats.sum (Metrics.pe_energies s))

let test_total_power_definition () =
  let graph = Benchmarks.load 0 in
  let s = run_platform ~policy:Policy.Baseline graph in
  let expected =
    (Metrics.total_task_energy s +. Metrics.total_comm_energy s ~lib:platform_lib)
    /. s.Schedule.makespan
  in
  Alcotest.(check (float 1e-9)) "energy / makespan" expected
    (Metrics.total_power s ~lib:platform_lib)

let test_utilizations_bounded () =
  let graph = Benchmarks.load 1 in
  let s = run_platform ~policy:Policy.Baseline graph in
  Array.iter
    (fun u -> Alcotest.(check bool) "in [0,1]" true (u >= 0.0 && u <= 1.0 +. 1e-9))
    (Metrics.utilizations s);
  let spread = Metrics.utilization_spread s in
  Alcotest.(check bool) "spread bounded" true (spread >= 0.0 && spread <= 1.0)

let test_thermal_report_consistency () =
  let graph = Benchmarks.load 0 in
  let hotspot = platform_hotspot 4 in
  let s = run_platform ~policy:Policy.Baseline graph in
  let r = Metrics.thermal_report s ~hotspot in
  Alcotest.(check (float 1e-9)) "max" (Stats.max r.Metrics.block_temps) r.Metrics.max_temp;
  Alcotest.(check (float 1e-9)) "avg" (Stats.mean r.Metrics.block_temps) r.Metrics.avg_temp;
  Alcotest.(check bool) "above ambient" true (r.Metrics.avg_temp > 45.0)

let test_leakage_flag_changes_report () =
  let graph = Benchmarks.load 0 in
  let hotspot = platform_hotspot 4 in
  let s = run_platform ~policy:Policy.Baseline graph in
  let on = Metrics.thermal_report ~leakage:true s ~hotspot in
  let off = Metrics.thermal_report ~leakage:false s ~hotspot in
  Alcotest.(check bool) "leakage hotter" true (on.Metrics.max_temp > off.Metrics.max_temp)

let test_comm_energy_zero_on_single_pe () =
  let graph = small_graph () in
  let s =
    List_sched.run ~graph ~lib:platform_lib ~pes:(platform_pes 1)
      ~policy:Policy.Baseline ()
  in
  Alcotest.(check (float 1e-12)) "no cross-PE traffic" 0.0
    (Metrics.total_comm_energy s ~lib:platform_lib)

let prop_generated_graphs_schedule_validly =
  QCheck.Test.make ~name:"random graphs always schedule validly" ~count:40
    QCheck.(pair small_int (int_range 2 30))
    (fun (seed, tasks) ->
      let lo, hi = Tats_taskgraph.Generator.feasible_edges ~n_tasks:tasks in
      let edges = lo + ((seed * 7) mod (Stdlib.max 1 (hi - lo + 1))) in
      let graph =
        Tats_taskgraph.Generator.generate ~seed ~name:"q"
          {
            Tats_taskgraph.Generator.default_spec with
            Tats_taskgraph.Generator.n_tasks = tasks;
            n_edges = edges;
            n_task_types = Benchmarks.n_task_types;
          }
      in
      let s = run_platform ~policy:Policy.Baseline graph in
      Schedule.validate ~lib:platform_lib s = [])

let () =
  Alcotest.run "tats_sched"
    [
      ( "policy",
        [
          Alcotest.test_case "names roundtrip" `Quick test_policy_names_roundtrip;
          Alcotest.test_case "all policies" `Quick test_policy_all_count;
          Alcotest.test_case "default weights" `Quick test_default_weights;
        ] );
      ( "dc",
        [
          Alcotest.test_case "value formula" `Quick test_dc_value_formula;
          Alcotest.test_case "costs normalized" `Quick test_dc_costs_normalized;
          Alcotest.test_case "pe average power" `Quick test_dc_pe_average_power;
          Alcotest.test_case "temperature cost" `Quick test_dc_temperature_cost;
          Alcotest.test_case "static criticality" `Quick
            test_static_criticality_decreases_downstream;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "valid passes" `Quick test_valid_schedule_passes;
          Alcotest.test_case "precedence breach" `Quick
            test_validate_detects_precedence_breach;
          Alcotest.test_case "overlap" `Quick test_validate_detects_overlap;
          Alcotest.test_case "bad duration" `Quick test_validate_detects_bad_duration;
          Alcotest.test_case "make validation" `Quick test_schedule_make_validation;
        ] );
      ( "list_sched",
        [
          Alcotest.test_case "all policies x benchmarks valid" `Quick
            test_all_policies_produce_valid_schedules;
          Alcotest.test_case "deterministic" `Quick test_scheduler_deterministic;
          Alcotest.test_case "thermal needs hotspot" `Quick test_thermal_requires_hotspot;
          Alcotest.test_case "hotspot size checked" `Quick
            test_thermal_hotspot_size_checked;
          Alcotest.test_case "single PE serializes" `Quick test_single_pe_serializes;
          Alcotest.test_case "heterogeneous valid" `Quick test_heterogeneous_valid;
          Alcotest.test_case "h1 prefers low power" `Quick test_h1_prefers_low_power_pe;
          Alcotest.test_case "exclusive overlap" `Quick test_exclusive_tasks_may_overlap;
          Alcotest.test_case "mesh NoC validity" `Quick test_mesh_comm_schedules_validly;
          Alcotest.test_case "mesh energy by distance" `Quick
            test_mesh_comm_energy_distance_dependent;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "meets deadline" `Quick
            test_adaptive_meets_deadline_when_possible;
          Alcotest.test_case "cools platform" `Quick test_adaptive_cools_platform;
          Alcotest.test_case "power capped" `Quick test_adaptive_power_capped_at_base;
          Alcotest.test_case "infeasible architecture" `Quick
            test_adaptive_infeasible_architecture;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "pe energies sum" `Quick test_pe_energies_sum;
          Alcotest.test_case "total power" `Quick test_total_power_definition;
          Alcotest.test_case "utilizations" `Quick test_utilizations_bounded;
          Alcotest.test_case "thermal report" `Quick test_thermal_report_consistency;
          Alcotest.test_case "leakage flag" `Quick test_leakage_flag_changes_report;
          Alcotest.test_case "comm energy single PE" `Quick
            test_comm_energy_zero_on_single_pe;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_generated_graphs_schedule_validly ]);
    ]
