(* Tests for the SVG rendering layer. *)

module Svg = Tats_render.Svg
module Visuals = Tats_render.Visuals
module Block = Tats_floorplan.Block
module Grid = Tats_floorplan.Grid
module Gridmodel = Tats_thermal.Gridmodel
module Package = Tats_thermal.Package
module Benchmarks = Tats_taskgraph.Benchmarks
module Catalog = Tats_techlib.Catalog
module Policy = Tats_sched.Policy
module List_sched = Tats_sched.List_sched

let count_substring haystack needle =
  let ln = String.length needle and lh = String.length haystack in
  let rec go i acc =
    if i + ln > lh then acc
    else if String.sub haystack i ln = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let contains h n = count_substring h n > 0

let well_formed doc =
  contains doc "<?xml" && contains doc "<svg" && contains doc "</svg>"

(* --- Svg primitives ------------------------------------------------------ *)

let test_svg_structure () =
  let svg = Svg.create ~width:100.0 ~height:50.0 in
  Svg.rect svg ~x:1.0 ~y:2.0 ~w:10.0 ~h:5.0 ();
  Svg.line svg ~x1:0.0 ~y1:0.0 ~x2:10.0 ~y2:10.0 ();
  Svg.text svg ~x:5.0 ~y:5.0 "hello";
  let doc = Svg.to_string svg in
  Alcotest.(check bool) "well formed" true (well_formed doc);
  Alcotest.(check int) "one rect" 1 (count_substring doc "<rect");
  Alcotest.(check int) "one line" 1 (count_substring doc "<line");
  Alcotest.(check int) "one text" 1 (count_substring doc "<text")

let test_svg_escaping () =
  let svg = Svg.create ~width:10.0 ~height:10.0 in
  Svg.text svg ~x:0.0 ~y:0.0 "a<b & \"c\"";
  let doc = Svg.to_string svg in
  Alcotest.(check bool) "escaped lt" true (contains doc "a&lt;b");
  Alcotest.(check bool) "escaped amp" true (contains doc "&amp;");
  Alcotest.(check bool) "no raw <b" false (contains doc "a<b")

let test_svg_title_tooltip () =
  let svg = Svg.create ~width:10.0 ~height:10.0 in
  Svg.rect svg ~x:0.0 ~y:0.0 ~w:1.0 ~h:1.0 ~title:"tip" ();
  Alcotest.(check bool) "title child" true (contains (Svg.to_string svg) "<title>tip</title>")

let test_svg_validation () =
  Alcotest.(check bool) "bad dims" true
    (try ignore (Svg.create ~width:0.0 ~height:5.0 : Svg.t); false
     with Invalid_argument _ -> true)

let test_heat_color_format_and_ramp () =
  List.iter
    (fun f ->
      let c = Svg.heat_color f in
      Alcotest.(check int) "length 7" 7 (String.length c);
      Alcotest.(check char) "hash" '#' c.[0])
    [ -1.0; 0.0; 0.25; 0.5; 0.75; 1.0; 2.0 ];
  (* Cold is blue-dominant, hot is red-dominant. *)
  let channel c i = int_of_string ("0x" ^ String.sub c i 2) in
  let cold = Svg.heat_color 0.0 and hot = Svg.heat_color 1.0 in
  Alcotest.(check bool) "cold blue" true (channel cold 5 > channel cold 1);
  Alcotest.(check bool) "hot red" true (channel hot 1 > channel hot 5)

(* --- Visuals ------------------------------------------------------------- *)

let placement () =
  Grid.layout
    (Array.init 4 (fun i -> Block.make ~name:(Printf.sprintf "PE%d" i) ~area:1.6e-5 ()))

let test_floorplan_svg () =
  let doc = Visuals.floorplan (placement ()) in
  Alcotest.(check bool) "well formed" true (well_formed doc);
  (* Die outline + 4 blocks. *)
  Alcotest.(check int) "rect count" 5 (count_substring doc "<rect")

let test_floorplan_svg_with_temps () =
  let doc = Visuals.floorplan ~temps:[| 60.0; 90.0; 70.0; 65.0 |] (placement ()) in
  Alcotest.(check bool) "well formed" true (well_formed doc);
  Alcotest.(check bool) "legend present" true (contains doc "°C");
  Alcotest.(check bool) "tooltip carries temp" true (contains doc "90.0 °C")

let test_gantt_svg () =
  let graph = Benchmarks.load 0 in
  let lib = Catalog.platform_library () in
  let s =
    List_sched.run ~graph ~lib ~pes:(Catalog.platform_instances 4)
      ~policy:Policy.Baseline ()
  in
  let doc = Visuals.gantt s in
  Alcotest.(check bool) "well formed" true (well_formed doc);
  Alcotest.(check bool) "deadline marker" true (contains doc "deadline 790");
  (* One rect per task at least. *)
  Alcotest.(check bool) "task boxes" true (count_substring doc "<rect" >= 19)

let test_heat_map_svg () =
  let grid = Gridmodel.build ~nx:8 ~ny:6 Package.default (placement ()) in
  let doc = Visuals.heat_map grid ~power:[| 2.0; 8.0; 1.0; 3.0 |] in
  Alcotest.(check bool) "well formed" true (well_formed doc);
  (* 48 cells + 24 legend steps. *)
  Alcotest.(check int) "cells + legend" 72 (count_substring doc "<rect")

let test_save_roundtrip () =
  let doc = Visuals.floorplan (placement ()) in
  let path = Filename.temp_file "tats" ".svg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Visuals.save doc ~path;
      let read = In_channel.with_open_text path In_channel.input_all in
      Alcotest.(check string) "roundtrip" doc read)

let () =
  Alcotest.run "render"
    [
      ( "svg",
        [
          Alcotest.test_case "structure" `Quick test_svg_structure;
          Alcotest.test_case "escaping" `Quick test_svg_escaping;
          Alcotest.test_case "title tooltip" `Quick test_svg_title_tooltip;
          Alcotest.test_case "validation" `Quick test_svg_validation;
          Alcotest.test_case "heat color" `Quick test_heat_color_format_and_ramp;
        ] );
      ( "visuals",
        [
          Alcotest.test_case "floorplan" `Quick test_floorplan_svg;
          Alcotest.test_case "floorplan + temps" `Quick test_floorplan_svg_with_temps;
          Alcotest.test_case "gantt" `Quick test_gantt_svg;
          Alcotest.test_case "heat map" `Quick test_heat_map_svg;
          Alcotest.test_case "save" `Quick test_save_roundtrip;
        ] );
    ]
