(* Tests for Tats_util: the deterministic RNG and the statistics helpers. *)

module Rng = Tats_util.Rng
module Stats = Tats_util.Stats

let check_float = Alcotest.(check (float 1e-9))

(* --- Rng ---------------------------------------------------------------- *)

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.bits64 a) (Rng.bits64 b) then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 4)

let test_copy_preserves_position () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a : int64);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_split_decorrelates () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.bits64 a) (Rng.bits64 b) then incr matches
  done;
  Alcotest.(check bool) "split stream differs" true (!matches < 4)

let test_int_range_bounds () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 17 in
    Alcotest.(check bool) "int in range" true (x >= 0 && x < 17);
    let y = Rng.range rng (-5) 5 in
    Alcotest.(check bool) "range inclusive" true (y >= -5 && y <= 5)
  done

let test_int_covers_all_values () =
  let rng = Rng.create 3 in
  let seen = Array.make 8 false in
  for _ = 1 to 1000 do
    seen.(Rng.int rng 8) <- true
  done;
  Alcotest.(check bool) "all buckets hit" true (Array.for_all Fun.id seen)

let test_float_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Rng.float rng 2.5 in
    Alcotest.(check bool) "float in [0, bound)" true (x >= 0.0 && x < 2.5);
    let u = Rng.uniform rng (-1.0) 1.0 in
    Alcotest.(check bool) "uniform in [lo, hi)" true (u >= -1.0 && u < 1.0)
  done

let test_gaussian_moments () =
  let rng = Rng.create 9 in
  let n = 20_000 in
  let samples = Array.init n (fun _ -> Rng.gaussian rng ~mu:3.0 ~sigma:2.0) in
  let mean = Stats.mean samples in
  let sd = Stats.stddev samples in
  Alcotest.(check bool) "mean near mu" true (Float.abs (mean -. 3.0) < 0.1);
  Alcotest.(check bool) "stddev near sigma" true (Float.abs (sd -. 2.0) < 0.1)

let test_shuffle_is_permutation () =
  let rng = Rng.create 13 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_pick_uniformish () =
  let rng = Rng.create 17 in
  let counts = Array.make 4 0 in
  let arr = [| 0; 1; 2; 3 |] in
  for _ = 1 to 4000 do
    let k = Rng.pick rng arr in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "roughly uniform" true (c > 800 && c < 1200))
    counts

(* --- Stats -------------------------------------------------------------- *)

let test_basic_stats () =
  let a = [| 4.0; 1.0; 3.0; 2.0 |] in
  check_float "sum" 10.0 (Stats.sum a);
  check_float "mean" 2.5 (Stats.mean a);
  check_float "min" 1.0 (Stats.min a);
  check_float "max" 4.0 (Stats.max a);
  check_float "spread" 3.0 (Stats.spread a);
  check_float "median" 2.5 (Stats.median a)

let test_stddev () =
  check_float "constant array" 0.0 (Stats.stddev [| 5.0; 5.0; 5.0 |]);
  (* population stddev of {1,2,3,4} is sqrt(1.25) *)
  check_float "known value" (sqrt 1.25) (Stats.stddev [| 1.0; 2.0; 3.0; 4.0 |])

let test_percentile () =
  let a = [| 10.0; 20.0; 30.0; 40.0; 50.0 |] in
  check_float "p0" 10.0 (Stats.percentile a 0.0);
  check_float "p100" 50.0 (Stats.percentile a 100.0);
  check_float "p50" 30.0 (Stats.percentile a 50.0);
  check_float "p25" 20.0 (Stats.percentile a 25.0);
  (* interpolation between ranks *)
  check_float "p10 interpolated" 14.0 (Stats.percentile a 10.0)

let test_percentile_singleton () =
  check_float "singleton" 7.0 (Stats.percentile [| 7.0 |] 33.0)

let test_argmax_argmin () =
  let a = [| 3.0; 9.0; 1.0; 9.0 |] in
  Alcotest.(check int) "argmax first of ties" 1 (Stats.argmax a);
  Alcotest.(check int) "argmin" 2 (Stats.argmin a)

(* --- Properties --------------------------------------------------------- *)

let prop_mean_bounded =
  QCheck.Test.make ~name:"mean lies within [min, max]" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 40) (float_bound_exclusive 1000.0))
    (fun a ->
      let m = Stats.mean a in
      m >= Stats.min a -. 1e-9 && m <= Stats.max a +. 1e-9)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck.(
      pair
        (array_of_size Gen.(int_range 1 40) (float_bound_exclusive 1000.0))
        (pair (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)))
    (fun (a, (p1, p2)) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile a lo <= Stats.percentile a hi +. 1e-9)

let prop_shuffle_preserves_elements =
  QCheck.Test.make ~name:"shuffle preserves elements" ~count:100
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let arr = Array.of_list l in
      let before = List.sort compare (Array.to_list arr) in
      Rng.shuffle (Rng.create seed) arr;
      List.sort compare (Array.to_list arr) = before)

let () =
  Alcotest.run "tats_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_copy_preserves_position;
          Alcotest.test_case "split" `Quick test_split_decorrelates;
          Alcotest.test_case "int/range bounds" `Quick test_int_range_bounds;
          Alcotest.test_case "int coverage" `Quick test_int_covers_all_values;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "pick uniform" `Quick test_pick_uniformish;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_basic_stats;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "percentile singleton" `Quick test_percentile_singleton;
          Alcotest.test_case "argmax/argmin" `Quick test_argmax_argmin;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_mean_bounded; prop_percentile_monotone; prop_shuffle_preserves_elements ]
      );
    ]
