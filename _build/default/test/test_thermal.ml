(* Tests for Tats_thermal: the compact RC model, steady-state solver,
   leakage fixed point, transient integrators, grid model, HotSpot facade.

   Several tests exploit exact conservation laws of the network: in steady
   state all injected power leaves through the convection resistance, so
   T_sink = T_amb + R_conv * P_total regardless of the floorplan. *)

module Block = Tats_floorplan.Block
module Placement = Tats_floorplan.Placement
module Grid = Tats_floorplan.Grid
module Package = Tats_thermal.Package
module Rcmodel = Tats_thermal.Rcmodel
module Steady = Tats_thermal.Steady
module Transient = Tats_thermal.Transient
module Gridmodel = Tats_thermal.Gridmodel
module Hotspot = Tats_thermal.Hotspot
module Matrix = Tats_linalg.Matrix
module Stats = Tats_util.Stats

let pkg = Package.default

let platform_placement n =
  Grid.layout
    (Array.init n (fun i ->
         Block.make ~name:(Printf.sprintf "pe%d" i) ~area:1.6e-5 ()))

let single_block_placement () =
  Placement.make
    ~blocks:[| Block.make ~name:"b" ~area:1.6e-5 () |]
    ~rects:[| { Block.x = 0.0; y = 0.0; w = 4e-3; h = 4e-3 } |]

(* --- Package ------------------------------------------------------------ *)

let test_vertical_resistance_decreases_with_area () =
  let r_small = Package.block_vertical_resistance pkg ~area:1e-6 in
  let r_big = Package.block_vertical_resistance pkg ~area:1e-4 in
  Alcotest.(check bool) "bigger blocks conduct better" true (r_big < r_small)

let test_lateral_conductance () =
  Alcotest.(check (float 1e-12)) "no contact" 0.0
    (Package.lateral_conductance pkg ~shared_len:0.0 ~distance:1e-3);
  let g = Package.lateral_conductance pkg ~shared_len:4e-3 ~distance:4e-3 in
  Alcotest.(check (float 1e-9)) "k*t*L/d" (pkg.Package.k_die *. pkg.Package.die_thickness) g

(* --- Rcmodel ------------------------------------------------------------ *)

let test_model_shape () =
  let m = Rcmodel.build pkg (platform_placement 4) in
  Alcotest.(check int) "blocks" 4 (Rcmodel.n_blocks m);
  Alcotest.(check int) "nodes" 6 (Rcmodel.n_nodes m);
  Alcotest.(check int) "spreader" 4 (Rcmodel.spreader_node m);
  Alcotest.(check int) "sink" 5 (Rcmodel.sink_node m)

let test_system_matrix_symmetric () =
  let m = Rcmodel.build pkg (platform_placement 4) in
  let a = Rcmodel.system_matrix m in
  Alcotest.(check (float 1e-12)) "symmetric" 0.0 (Matrix.max_abs_diff a (Matrix.transpose a))

let test_lateral_only_between_neighbours () =
  (* On a 2x2 grid, blocks 0 and 3 touch only at a corner. *)
  let m = Rcmodel.build pkg (platform_placement 4) in
  Alcotest.(check bool) "0-1 coupled" true (Rcmodel.lateral_conductance_between m 0 1 > 0.0);
  Alcotest.(check bool) "0-2 coupled" true (Rcmodel.lateral_conductance_between m 0 2 > 0.0);
  Alcotest.(check (float 1e-15)) "0-3 diagonal uncoupled" 0.0
    (Rcmodel.lateral_conductance_between m 0 3)

let test_capacitances_positive () =
  let m = Rcmodel.build pkg (platform_placement 4) in
  Array.iter
    (fun c -> Alcotest.(check bool) "positive C" true (c > 0.0))
    (Rcmodel.capacitances m)

let test_rhs_validation () =
  let m = Rcmodel.build pkg (platform_placement 4) in
  Alcotest.(check bool) "wrong length" true
    (try ignore (Rcmodel.rhs m ~power:[| 1.0 |] : float array); false
     with Invalid_argument _ -> true)

(* --- Steady ------------------------------------------------------------- *)

let test_zero_power_is_ambient () =
  let s = Steady.create (Rcmodel.build pkg (platform_placement 4)) in
  let temps = Steady.solve s ~power:(Array.make 4 0.0) in
  Array.iter
    (fun t -> Alcotest.(check (float 1e-6)) "ambient everywhere" pkg.Package.ambient t)
    temps

let test_energy_conservation_at_sink () =
  (* All heat exits through R_conv: T_sink - T_amb = R_conv * P_total. *)
  let model = Rcmodel.build pkg (platform_placement 4) in
  let s = Steady.create model in
  let power = [| 3.0; 1.0; 2.0; 4.0 |] in
  let temps = Steady.solve s ~power in
  let t_sink = temps.(Rcmodel.sink_node model) in
  Alcotest.(check (float 1e-6)) "sink temperature"
    (pkg.Package.ambient +. (pkg.Package.r_convection *. 10.0))
    t_sink

let test_single_block_analytic () =
  (* One block: T = amb + (R_conv + R_sp_sink + R_v) * P exactly. *)
  let placement = single_block_placement () in
  let model = Rcmodel.build pkg placement in
  let s = Steady.create model in
  let area = Block.rect_area placement.Placement.rects.(0) in
  let r_total =
    pkg.Package.r_convection +. pkg.Package.r_spreader_sink
    +. Package.block_vertical_resistance pkg ~area
  in
  let temps = Steady.block_temperatures s ~power:[| 5.0 |] in
  Alcotest.(check (float 1e-6)) "analytic" (pkg.Package.ambient +. (5.0 *. r_total)) temps.(0)

let test_linearity_superposition () =
  let s = Steady.create (Rcmodel.build pkg (platform_placement 4)) in
  let p1 = [| 2.0; 0.0; 0.0; 0.0 |] and p2 = [| 0.0; 0.0; 3.0; 0.0 |] in
  let both = Array.init 4 (fun i -> p1.(i) +. p2.(i)) in
  let t1 = Steady.block_temperatures s ~power:p1 in
  let t2 = Steady.block_temperatures s ~power:p2 in
  let t12 = Steady.block_temperatures s ~power:both in
  for i = 0 to 3 do
    (* Superposition holds after subtracting the ambient offset. *)
    Alcotest.(check (float 1e-6)) "superposition"
      (t1.(i) +. t2.(i) -. pkg.Package.ambient)
      t12.(i)
  done

let test_heated_block_is_hottest () =
  let s = Steady.create (Rcmodel.build pkg (platform_placement 4)) in
  let temps = Steady.block_temperatures s ~power:[| 0.0; 8.0; 0.0; 0.0 |] in
  Alcotest.(check int) "hottest is the heated one" 1 (Stats.argmax temps)

let test_neighbour_warmer_than_ambient () =
  let s = Steady.create (Rcmodel.build pkg (platform_placement 4)) in
  let temps = Steady.block_temperatures s ~power:[| 0.0; 8.0; 0.0; 0.0 |] in
  Array.iter
    (fun t -> Alcotest.(check bool) "coupling heats everyone" true (t > pkg.Package.ambient))
    temps

let test_monotone_in_power () =
  let s = Steady.create (Rcmodel.build pkg (platform_placement 4)) in
  let t_low = Steady.block_temperatures s ~power:(Array.make 4 2.0) in
  let t_high = Steady.block_temperatures s ~power:(Array.make 4 4.0) in
  for i = 0 to 3 do
    Alcotest.(check bool) "more power, hotter" true (t_high.(i) > t_low.(i))
  done

let test_negative_power_rejected () =
  let s = Steady.create (Rcmodel.build pkg (platform_placement 2)) in
  Alcotest.(check bool) "negative rejected" true
    (try ignore (Steady.solve s ~power:[| -1.0; 0.0 |] : float array); false
     with Invalid_argument _ -> true)

let test_leakage_raises_temperature () =
  let s = Steady.create (Rcmodel.build pkg (platform_placement 4)) in
  let dynamic = Array.make 4 3.0 in
  let no_leak = Steady.block_temperatures s ~power:dynamic in
  let with_leak, iters =
    Steady.solve_with_leakage s ~dynamic ~idle:(Array.make 4 0.5)
  in
  Alcotest.(check bool) "converged" true (iters > 0);
  for i = 0 to 3 do
    Alcotest.(check bool) "leakage adds heat" true (with_leak.(i) > no_leak.(i))
  done

let test_leakage_zero_idle_matches_linear () =
  let s = Steady.create (Rcmodel.build pkg (platform_placement 4)) in
  let dynamic = [| 1.0; 2.0; 3.0; 4.0 |] in
  let linear = Steady.block_temperatures s ~power:dynamic in
  let with_leak, _ = Steady.solve_with_leakage s ~dynamic ~idle:(Array.make 4 0.0) in
  for i = 0 to 3 do
    Alcotest.(check (float 1e-4)) "no idle, no feedback" linear.(i) with_leak.(i)
  done

let test_leakage_hot_design_converges () =
  (* The exponential is clamped; even absurd power must converge. *)
  let s = Steady.create (Rcmodel.build pkg (platform_placement 4)) in
  let temps, _ = Steady.solve_with_leakage s ~dynamic:(Array.make 4 20.0) ~idle:(Array.make 4 1.0) in
  Array.iter (fun t -> Alcotest.(check bool) "finite" true (Float.is_finite t)) temps

(* --- Transient ---------------------------------------------------------- *)

let test_transient_converges_to_steady () =
  let model = Rcmodel.build pkg (platform_placement 4) in
  let s = Steady.create model in
  let power _ = [| 2.0; 4.0; 1.0; 3.0 |] in
  let steady = Steady.solve s ~power:(power 0.0) in
  let t0 = Transient.initial_ambient model in
  (* The sink time constant is ~70 s, so simulate several of them. *)
  let trace = Transient.backward_euler model ~power ~t0 ~dt:1.0 ~steps:600 in
  let final = trace.Transient.temps.(600) in
  Array.iteri
    (fun i t -> Alcotest.(check bool) "near steady" true (Float.abs (t -. steady.(i)) < 0.5))
    final

let test_rk4_matches_backward_euler () =
  let model = Rcmodel.build pkg (platform_placement 2) in
  let power _ = [| 3.0; 1.0 |] in
  let t0 = Transient.initial_ambient model in
  (* Small dt keeps the explicit integrator stable (block tau ~ 70 ms). *)
  let rk = Transient.rk4 model ~power ~t0 ~dt:0.002 ~steps:500 in
  let be = Transient.backward_euler model ~power ~t0 ~dt:0.002 ~steps:500 in
  let last a = a.Transient.temps.(500) in
  Array.iteri
    (fun i t ->
      Alcotest.(check bool) "integrators agree" true (Float.abs (t -. (last be).(i)) < 0.1))
    (last rk)

let test_transient_monotone_heating () =
  let model = Rcmodel.build pkg (platform_placement 2) in
  let power _ = [| 5.0; 5.0 |] in
  let t0 = Transient.initial_ambient model in
  let trace = Transient.backward_euler model ~power ~t0 ~dt:0.1 ~steps:100 in
  let ok = ref true in
  for k = 1 to 100 do
    if trace.Transient.temps.(k).(0) < trace.Transient.temps.(k - 1).(0) -. 1e-9 then
      ok := false
  done;
  Alcotest.(check bool) "monotone step response" true !ok

let test_settle_time () =
  let model = Rcmodel.build pkg (platform_placement 2) in
  let s = Steady.create model in
  let power _ = [| 2.0; 2.0 |] in
  let steady = Steady.solve s ~power:(power 0.0) in
  let t0 = Transient.initial_ambient model in
  let trace = Transient.backward_euler model ~power ~t0 ~dt:0.5 ~steps:400 in
  match Transient.settle_time trace ~steady ~tol:1.0 with
  | Some t ->
      Alcotest.(check bool) "settles strictly after start" true (t > 0.0);
      Alcotest.(check bool) "settles before the end" true (t < 200.0)
  | None -> Alcotest.fail "never settled"

let test_transient_validation () =
  let model = Rcmodel.build pkg (platform_placement 2) in
  Alcotest.(check bool) "bad dt" true
    (try
       ignore
         (Transient.backward_euler model ~power:(fun _ -> [| 0.0; 0.0 |])
            ~t0:(Transient.initial_ambient model) ~dt:0.0 ~steps:1
          : Transient.trace);
       false
     with Invalid_argument _ -> true)

(* --- Gridmodel ---------------------------------------------------------- *)

let test_grid_close_to_compact () =
  (* Same physics at a finer discretization: block temperatures should agree
     with the compact model within a few degrees. *)
  let placement = platform_placement 4 in
  let compact = Steady.create (Rcmodel.build pkg placement) in
  let grid = Gridmodel.build ~nx:16 ~ny:16 pkg placement in
  let power = [| 2.0; 6.0; 1.0; 3.0 |] in
  let t_compact = Steady.block_temperatures compact ~power in
  let t_grid = Gridmodel.block_temperatures grid ~power in
  for i = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "block %d within 5C (%.2f vs %.2f)" i t_compact.(i) t_grid.(i))
      true
      (Float.abs (t_compact.(i) -. t_grid.(i)) < 5.0)
  done

let test_grid_hotspot_location () =
  let placement = platform_placement 4 in
  let grid = Gridmodel.build ~nx:8 ~ny:8 pkg placement in
  let t = Gridmodel.block_temperatures grid ~power:[| 0.0; 9.0; 0.0; 0.0 |] in
  Alcotest.(check int) "hottest block" 1 (Stats.argmax t)

let test_grid_peak_above_block_mean () =
  let placement = platform_placement 4 in
  let grid = Gridmodel.build ~nx:8 ~ny:8 pkg placement in
  let power = [| 1.0; 6.0; 2.0; 1.0 |] in
  let peak = Gridmodel.max_cell_temperature grid ~power in
  let blocks = Gridmodel.block_temperatures grid ~power in
  Alcotest.(check bool) "peak >= any block mean" true (peak >= Stats.max blocks -. 1e-9)

let test_grid_cell_matrix_shape () =
  let placement = platform_placement 4 in
  let grid = Gridmodel.build ~nx:6 ~ny:4 pkg placement in
  Alcotest.(check int) "cells" 24 (Gridmodel.n_cells grid);
  let cells = Gridmodel.cell_temperatures grid ~power:(Array.make 4 1.0) in
  Alcotest.(check int) "rows" 4 (Array.length cells);
  Alcotest.(check int) "cols" 6 (Array.length cells.(0))

(* --- Hotspot facade ----------------------------------------------------- *)

let test_hotspot_counts_inquiries () =
  let h = Hotspot.create (platform_placement 4) in
  Alcotest.(check int) "fresh" 0 (Hotspot.inquiries h);
  ignore (Hotspot.query h ~power:(Array.make 4 1.0) : float array);
  ignore (Hotspot.average_temperature h ~power:(Array.make 4 1.0) : float);
  Alcotest.(check int) "counted" 2 (Hotspot.inquiries h)

let test_hotspot_avg_peak_consistent () =
  let h = Hotspot.create (platform_placement 4) in
  let power = [| 1.0; 5.0; 2.0; 2.0 |] in
  let temps = Hotspot.query h ~power in
  Alcotest.(check (float 1e-9)) "avg" (Stats.mean temps)
    (Hotspot.average_temperature h ~power);
  Alcotest.(check (float 1e-9)) "peak" (Stats.max temps) (Hotspot.peak_temperature h ~power)

let () =
  Alcotest.run "tats_thermal"
    [
      ( "package",
        [
          Alcotest.test_case "vertical R vs area" `Quick
            test_vertical_resistance_decreases_with_area;
          Alcotest.test_case "lateral conductance" `Quick test_lateral_conductance;
        ] );
      ( "rcmodel",
        [
          Alcotest.test_case "shape" `Quick test_model_shape;
          Alcotest.test_case "symmetric" `Quick test_system_matrix_symmetric;
          Alcotest.test_case "neighbour coupling" `Quick
            test_lateral_only_between_neighbours;
          Alcotest.test_case "capacitances" `Quick test_capacitances_positive;
          Alcotest.test_case "rhs validation" `Quick test_rhs_validation;
        ] );
      ( "steady",
        [
          Alcotest.test_case "zero power" `Quick test_zero_power_is_ambient;
          Alcotest.test_case "conservation at sink" `Quick
            test_energy_conservation_at_sink;
          Alcotest.test_case "single block analytic" `Quick test_single_block_analytic;
          Alcotest.test_case "superposition" `Quick test_linearity_superposition;
          Alcotest.test_case "hottest block" `Quick test_heated_block_is_hottest;
          Alcotest.test_case "coupling" `Quick test_neighbour_warmer_than_ambient;
          Alcotest.test_case "monotone in power" `Quick test_monotone_in_power;
          Alcotest.test_case "negative power" `Quick test_negative_power_rejected;
        ] );
      ( "leakage",
        [
          Alcotest.test_case "raises temperature" `Quick test_leakage_raises_temperature;
          Alcotest.test_case "zero idle = linear" `Quick
            test_leakage_zero_idle_matches_linear;
          Alcotest.test_case "hot design converges" `Quick
            test_leakage_hot_design_converges;
        ] );
      ( "transient",
        [
          Alcotest.test_case "converges to steady" `Quick
            test_transient_converges_to_steady;
          Alcotest.test_case "rk4 vs backward euler" `Quick test_rk4_matches_backward_euler;
          Alcotest.test_case "monotone heating" `Quick test_transient_monotone_heating;
          Alcotest.test_case "settle time" `Quick test_settle_time;
          Alcotest.test_case "validation" `Quick test_transient_validation;
        ] );
      ( "gridmodel",
        [
          Alcotest.test_case "close to compact" `Quick test_grid_close_to_compact;
          Alcotest.test_case "hotspot location" `Quick test_grid_hotspot_location;
          Alcotest.test_case "peak above mean" `Quick test_grid_peak_above_block_mean;
          Alcotest.test_case "cell matrix shape" `Quick test_grid_cell_matrix_shape;
        ] );
      ( "hotspot",
        [
          Alcotest.test_case "inquiry counter" `Quick test_hotspot_counts_inquiries;
          Alcotest.test_case "avg/peak consistent" `Quick test_hotspot_avg_peak_consistent;
        ] );
    ]
