(* Tests for Tats_linalg: dense matrices, LU, sparse CSR, conjugate
   gradient. *)

module Matrix = Tats_linalg.Matrix
module Lu = Tats_linalg.Lu
module Sparse = Tats_linalg.Sparse
module Cg = Tats_linalg.Cg
module Rng = Tats_util.Rng

let check_float = Alcotest.(check (float 1e-9))

let vec_close ?(eps = 1e-8) name a b =
  Alcotest.(check int) (name ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if Float.abs (x -. b.(i)) > eps then
        Alcotest.failf "%s: index %d: %g vs %g" name i x b.(i))
    a

(* --- Matrix ------------------------------------------------------------- *)

let test_init_get_set () =
  let m = Matrix.init 2 3 (fun i j -> float_of_int ((i * 10) + j)) in
  check_float "get" 12.0 (Matrix.get m 1 2);
  Matrix.set m 1 2 99.0;
  check_float "set" 99.0 (Matrix.get m 1 2);
  Matrix.add_to m 1 2 1.0;
  check_float "add_to" 100.0 (Matrix.get m 1 2)

let test_of_arrays_ragged () =
  Alcotest.check_raises "ragged rejected"
    (Invalid_argument "Matrix.of_arrays: ragged input") (fun () ->
      ignore (Matrix.of_arrays [| [| 1.0 |]; [| 1.0; 2.0 |] |] : Matrix.t))

let test_identity_mul () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let i = Matrix.identity 2 in
  Alcotest.(check (float 0.0)) "I*A = A" 0.0 (Matrix.max_abs_diff (Matrix.mul i a) a);
  Alcotest.(check (float 0.0)) "A*I = A" 0.0 (Matrix.max_abs_diff (Matrix.mul a i) a)

let test_mul_known () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Matrix.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Matrix.mul a b in
  check_float "c00" 19.0 (Matrix.get c 0 0);
  check_float "c01" 22.0 (Matrix.get c 0 1);
  check_float "c10" 43.0 (Matrix.get c 1 0);
  check_float "c11" 50.0 (Matrix.get c 1 1)

let test_transpose () =
  let a = Matrix.init 2 3 (fun i j -> float_of_int ((i * 3) + j)) in
  let t = Matrix.transpose a in
  Alcotest.(check int) "rows" 3 (Matrix.rows t);
  Alcotest.(check int) "cols" 2 (Matrix.cols t);
  check_float "t21" 5.0 (Matrix.get t 2 1)

let test_mul_vec () =
  let a = Matrix.of_arrays [| [| 2.0; 0.0 |]; [| 1.0; 3.0 |] |] in
  vec_close "mul_vec" [| 2.0; 7.0 |] (Matrix.mul_vec a [| 1.0; 2.0 |])

let test_add_sub_scale_frobenius () =
  let a = Matrix.of_arrays [| [| 3.0; 4.0 |] |] in
  check_float "frobenius" 5.0 (Matrix.frobenius a);
  let z = Matrix.sub (Matrix.add a a) (Matrix.scale 2.0 a) in
  check_float "a+a-2a = 0" 0.0 (Matrix.frobenius z)

(* --- Lu ----------------------------------------------------------------- *)

let test_lu_known_system () =
  (* 2x + y = 5 ; x + 3y = 10 -> x = 1, y = 3 *)
  let a = Matrix.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  vec_close "solution" [| 1.0; 3.0 |] (Lu.solve a [| 5.0; 10.0 |])

let test_lu_needs_pivoting () =
  (* Zero on the leading diagonal forces a row swap. *)
  let a = Matrix.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  vec_close "swap solved" [| 2.0; 1.0 |] (Lu.solve a [| 1.0; 2.0 |])

let test_lu_singular () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular" Lu.Singular (fun () ->
      ignore (Lu.factor a : Lu.t))

let test_lu_det () =
  let a = Matrix.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  check_float "det" 5.0 (Lu.det (Lu.factor a));
  let swapped = Matrix.of_arrays [| [| 1.0; 3.0 |]; [| 2.0; 1.0 |] |] in
  check_float "det sign under row order" (-5.0) (Lu.det (Lu.factor swapped))

let test_lu_inverse () =
  let a = Matrix.of_arrays [| [| 4.0; 7.0 |]; [| 2.0; 6.0 |] |] in
  let inv = Lu.inverse a in
  let prod = Matrix.mul a inv in
  Alcotest.(check bool) "A * A^-1 = I" true
    (Matrix.max_abs_diff prod (Matrix.identity 2) < 1e-10)

let test_factored_reuse () =
  let a = Matrix.of_arrays [| [| 3.0; 1.0 |]; [| 1.0; 2.0 |] |] in
  let f = Lu.factor a in
  let x1 = Lu.solve_factored f [| 4.0; 3.0 |] in
  let x2 = Lu.solve_factored f [| 8.0; 6.0 |] in
  vec_close "scaled rhs, scaled solution" (Array.map (fun v -> 2.0 *. v) x1) x2

let random_dd_matrix rng n =
  (* Diagonally dominant: always non-singular and well-conditioned. *)
  Matrix.init n n (fun i j ->
      if i = j then 10.0 +. Rng.float rng 5.0
      else Rng.uniform rng (-1.0) 1.0)

let prop_lu_residual =
  QCheck.Test.make ~name:"LU residual is tiny on random systems" ~count:100
    QCheck.(pair small_int (int_range 1 12))
    (fun (seed, n) ->
      let rng = Rng.create (seed + 1) in
      let a = random_dd_matrix rng n in
      let b = Array.init n (fun _ -> Rng.uniform rng (-10.0) 10.0) in
      let x = Lu.solve a b in
      Lu.residual a x b < 1e-8)

(* --- Sparse ------------------------------------------------------------- *)

let test_sparse_roundtrip () =
  let s = Sparse.of_triplets ~rows:2 ~cols:3 [ (0, 1, 2.0); (1, 2, -1.0) ] in
  Alcotest.(check int) "nnz" 2 (Sparse.nnz s);
  check_float "get present" 2.0 (Sparse.get s 0 1);
  check_float "get absent" 0.0 (Sparse.get s 1 0)

let test_sparse_duplicates_summed () =
  let s = Sparse.of_triplets ~rows:1 ~cols:1 [ (0, 0, 1.5); (0, 0, 2.5) ] in
  Alcotest.(check int) "merged" 1 (Sparse.nnz s);
  check_float "summed" 4.0 (Sparse.get s 0 0)

let test_sparse_mul_vec_matches_dense () =
  let triplets = [ (0, 0, 2.0); (0, 2, 1.0); (1, 1, 3.0); (2, 0, -1.0) ] in
  let s = Sparse.of_triplets ~rows:3 ~cols:3 triplets in
  let v = [| 1.0; 2.0; 3.0 |] in
  vec_close "sparse vs dense" (Matrix.mul_vec (Sparse.to_dense s) v) (Sparse.mul_vec s v)

let test_sparse_diag_and_symmetry () =
  let sym =
    Sparse.of_triplets ~rows:2 ~cols:2 [ (0, 0, 1.0); (0, 1, 2.0); (1, 0, 2.0); (1, 1, 3.0) ]
  in
  vec_close "diag" [| 1.0; 3.0 |] (Sparse.diag sym);
  Alcotest.(check bool) "symmetric" true (Sparse.is_symmetric sym);
  let asym = Sparse.of_triplets ~rows:2 ~cols:2 [ (0, 1, 2.0) ] in
  Alcotest.(check bool) "asymmetric" false (Sparse.is_symmetric asym)

let test_sparse_out_of_range () =
  Alcotest.check_raises "row out of range"
    (Invalid_argument "Sparse.of_triplets: index out of range") (fun () ->
      ignore (Sparse.of_triplets ~rows:1 ~cols:1 [ (1, 0, 1.0) ] : Sparse.t))

(* --- Cg ----------------------------------------------------------------- *)

let random_spd_triplets rng n =
  (* Laplacian-like: symmetric positive definite with strong diagonal. *)
  let acc = ref [] in
  for i = 0 to n - 1 do
    acc := (i, i, 8.0 +. Rng.float rng 4.0) :: !acc;
    if i + 1 < n then begin
      let g = -.Rng.float rng 1.0 in
      acc := (i, i + 1, g) :: (i + 1, i, g) :: !acc
    end
  done;
  !acc

let test_cg_matches_lu () =
  let rng = Rng.create 123 in
  let n = 20 in
  let s = Sparse.of_triplets ~rows:n ~cols:n (random_spd_triplets rng n) in
  let b = Array.init n (fun _ -> Rng.uniform rng (-5.0) 5.0) in
  let x_cg, stats = Cg.solve s b in
  let x_lu = Lu.solve (Sparse.to_dense s) b in
  vec_close ~eps:1e-6 "cg vs lu" x_lu x_cg;
  Alcotest.(check bool) "converged quickly" true (stats.Cg.iterations <= 10 * n)

let test_cg_identity () =
  let s = Sparse.of_triplets ~rows:3 ~cols:3 [ (0, 0, 1.0); (1, 1, 1.0); (2, 2, 1.0) ] in
  let x, stats = Cg.solve s [| 1.0; 2.0; 3.0 |] in
  vec_close "identity solve" [| 1.0; 2.0; 3.0 |] x;
  Alcotest.(check bool) "few iterations" true (stats.Cg.iterations <= 2)

let test_cg_warm_start () =
  let s = Sparse.of_triplets ~rows:2 ~cols:2 [ (0, 0, 4.0); (1, 1, 2.0) ] in
  let b = [| 8.0; 4.0 |] in
  let exact = [| 2.0; 2.0 |] in
  let _, cold = Cg.solve s b in
  let _, warm = Cg.solve ~x0:exact s b in
  Alcotest.(check bool) "warm start cheaper or equal" true
    (warm.Cg.iterations <= cold.Cg.iterations)

let prop_cg_residual =
  QCheck.Test.make ~name:"CG residual below tolerance" ~count:60
    QCheck.(pair small_int (int_range 2 30))
    (fun (seed, n) ->
      let rng = Rng.create (seed + 7) in
      let s = Sparse.of_triplets ~rows:n ~cols:n (random_spd_triplets rng n) in
      let b = Array.init n (fun _ -> Rng.uniform rng (-5.0) 5.0) in
      let x, _ = Cg.solve ~tol:1e-10 s b in
      let r = Sparse.mul_vec s x in
      let worst = ref 0.0 in
      Array.iteri (fun i v -> worst := Float.max !worst (Float.abs (v -. b.(i)))) r;
      !worst < 1e-6)

let () =
  Alcotest.run "tats_linalg"
    [
      ( "matrix",
        [
          Alcotest.test_case "init/get/set" `Quick test_init_get_set;
          Alcotest.test_case "ragged rejected" `Quick test_of_arrays_ragged;
          Alcotest.test_case "identity mul" `Quick test_identity_mul;
          Alcotest.test_case "mul known" `Quick test_mul_known;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "mul_vec" `Quick test_mul_vec;
          Alcotest.test_case "add/sub/scale/frobenius" `Quick
            test_add_sub_scale_frobenius;
        ] );
      ( "lu",
        [
          Alcotest.test_case "known system" `Quick test_lu_known_system;
          Alcotest.test_case "pivoting" `Quick test_lu_needs_pivoting;
          Alcotest.test_case "singular detection" `Quick test_lu_singular;
          Alcotest.test_case "determinant" `Quick test_lu_det;
          Alcotest.test_case "inverse" `Quick test_lu_inverse;
          Alcotest.test_case "factored reuse" `Quick test_factored_reuse;
        ] );
      ( "sparse",
        [
          Alcotest.test_case "roundtrip" `Quick test_sparse_roundtrip;
          Alcotest.test_case "duplicate merge" `Quick test_sparse_duplicates_summed;
          Alcotest.test_case "mul_vec vs dense" `Quick test_sparse_mul_vec_matches_dense;
          Alcotest.test_case "diag/symmetry" `Quick test_sparse_diag_and_symmetry;
          Alcotest.test_case "range check" `Quick test_sparse_out_of_range;
        ] );
      ( "cg",
        [
          Alcotest.test_case "matches LU" `Quick test_cg_matches_lu;
          Alcotest.test_case "identity" `Quick test_cg_identity;
          Alcotest.test_case "warm start" `Quick test_cg_warm_start;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_lu_residual; prop_cg_residual ] );
    ]
