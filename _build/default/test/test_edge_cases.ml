(* Edge cases and failure injection across modules: degenerate sizes,
   dimension mismatches, empty structures, and API misuse that must raise
   rather than corrupt. *)

module Rng = Tats_util.Rng
module Matrix = Tats_linalg.Matrix
module Lu = Tats_linalg.Lu
module Sparse = Tats_linalg.Sparse
module Cg = Tats_linalg.Cg
module Graph = Tats_taskgraph.Graph
module Generator = Tats_taskgraph.Generator
module Benchmarks = Tats_taskgraph.Benchmarks
module Tgff_io = Tats_taskgraph.Tgff_io
module Comm = Tats_techlib.Comm
module Catalog = Tats_techlib.Catalog
module Block = Tats_floorplan.Block
module Slicing = Tats_floorplan.Slicing
module Grid = Tats_floorplan.Grid
module Hotspot = Tats_thermal.Hotspot
module Policy = Tats_sched.Policy
module Schedule = Tats_sched.Schedule
module List_sched = Tats_sched.List_sched
module Metrics = Tats_sched.Metrics
module Pareto = Tats_cosynth.Pareto

let raises f = try ignore (f ()); false with Invalid_argument _ -> true

(* --- linalg ---------------------------------------------------------------- *)

let test_matrix_dimension_mismatches () =
  let a = Matrix.create 2 3 and b = Matrix.create 2 3 in
  Alcotest.(check bool) "mul" true (raises (fun () -> Matrix.mul a b));
  Alcotest.(check bool) "mul_vec" true (raises (fun () -> Matrix.mul_vec a [| 1.0 |]));
  Alcotest.(check bool) "add" true
    (raises (fun () -> Matrix.add a (Matrix.create 3 2)));
  Alcotest.(check bool) "max_abs_diff" true
    (raises (fun () -> Matrix.max_abs_diff a (Matrix.create 3 3)))

let test_lu_non_square () =
  Alcotest.(check bool) "factor" true (raises (fun () -> Lu.factor (Matrix.create 2 3)))

let test_lu_1x1 () =
  let a = Matrix.of_arrays [| [| 4.0 |] |] in
  Alcotest.(check (float 1e-12)) "solve" 2.5 (Lu.solve a [| 10.0 |]).(0);
  Alcotest.(check (float 1e-12)) "det" 4.0 (Lu.det (Lu.factor a))

let test_cg_rejects_non_square_and_mismatch () =
  let rect = Sparse.of_triplets ~rows:2 ~cols:3 [ (0, 0, 1.0) ] in
  Alcotest.(check bool) "non-square" true (raises (fun () -> Cg.solve rect [| 1.0; 1.0 |]));
  let sq = Sparse.of_triplets ~rows:2 ~cols:2 [ (0, 0, 1.0); (1, 1, 1.0) ] in
  Alcotest.(check bool) "rhs mismatch" true (raises (fun () -> Cg.solve sq [| 1.0 |]))

let test_sparse_empty_matrix () =
  let s = Sparse.of_triplets ~rows:3 ~cols:3 [] in
  Alcotest.(check int) "nnz" 0 (Sparse.nnz s);
  Alcotest.(check (array (float 0.0))) "mul_vec" [| 0.0; 0.0; 0.0 |]
    (Sparse.mul_vec s [| 1.0; 2.0; 3.0 |])

(* --- util ------------------------------------------------------------------ *)

let test_rng_range_degenerate () =
  let rng = Rng.create 1 in
  for _ = 1 to 20 do
    Alcotest.(check int) "lo = hi" 7 (Rng.range rng 7 7)
  done

let test_rng_shuffle_small () =
  let rng = Rng.create 1 in
  let empty = [||] in
  Rng.shuffle rng empty;
  Alcotest.(check int) "empty untouched" 0 (Array.length empty);
  let one = [| 42 |] in
  Rng.shuffle rng one;
  Alcotest.(check int) "singleton untouched" 42 one.(0)

(* --- taskgraph --------------------------------------------------------------- *)

let test_single_task_graph () =
  let b = Graph.builder ~name:"solo" ~deadline:10.0 in
  let t0 = Graph.add_task b ~task_type:0 () in
  let g = Graph.build b in
  Alcotest.(check (list int)) "source" [ t0 ] (Graph.sources g);
  Alcotest.(check (list int)) "sink" [ t0 ] (Graph.sinks g);
  Alcotest.(check int) "depth" 1 (Graph.longest_path_hops g);
  Alcotest.(check bool) "connected" true (Graph.is_weakly_connected g)

let test_empty_graph_builds () =
  let g = Graph.build (Graph.builder ~name:"empty" ~deadline:1.0) in
  Alcotest.(check int) "no tasks" 0 (Graph.n_tasks g);
  Alcotest.(check (list int)) "no sources" [] (Graph.sources g);
  Alcotest.(check bool) "vacuously connected" true (Graph.is_weakly_connected g)

let test_generator_single_task () =
  let g =
    Generator.generate ~seed:3 ~name:"one"
      { Generator.default_spec with Generator.n_tasks = 1; n_edges = 0 }
  in
  Alcotest.(check int) "one task" 1 (Graph.n_tasks g);
  Alcotest.(check int) "no edges" 0 (Graph.n_edges g)

let test_tgff_rejects_negative_data () =
  let text = "graph g deadline 10\ntask a type 0\ntask b type 0\nedge a -> b data -5\n" in
  match Tgff_io.of_string text with
  | Ok _ -> Alcotest.fail "negative data accepted"
  | Error msg ->
      Alcotest.(check bool) "mentions line 4" true
        (String.length msg >= 6 && String.sub msg 0 6 = "line 4")

(* --- floorplan ---------------------------------------------------------------- *)

let test_single_block_floorplans () =
  let blocks = [| Block.make ~name:"b" ~area:4e-6 () |] in
  let p = Slicing.evaluate blocks (Slicing.initial 1) in
  Alcotest.(check (float 1e-15)) "exact area" 4e-6
    (Tats_floorplan.Placement.die_area p);
  let g = Grid.layout blocks in
  Alcotest.(check (float 1e-15)) "grid too" 4e-6
    (Tats_floorplan.Placement.die_area g)

let test_grid_rejects_empty () =
  Alcotest.(check bool) "empty" true (raises (fun () -> Grid.layout [||]))

(* --- thermal ------------------------------------------------------------------ *)

let test_hotspot_single_block () =
  let placement = Grid.layout [| Block.make ~name:"b" ~area:1.6e-5 () |] in
  let h = Hotspot.create placement in
  let t = Hotspot.query h ~power:[| 5.0 |] in
  Alcotest.(check int) "one block" 1 (Array.length t);
  Alcotest.(check bool) "warm" true (t.(0) > 45.0)

let test_hotspot_power_length_checked () =
  let placement = Grid.layout [| Block.make ~name:"b" ~area:1.6e-5 () |] in
  let h = Hotspot.create placement in
  Alcotest.(check bool) "wrong length" true
    (raises (fun () -> Hotspot.query h ~power:[| 1.0; 2.0 |]))

(* --- sched --------------------------------------------------------------------- *)

let platform_lib = Catalog.platform_library ()

let test_schedule_empty_graph () =
  let g = Graph.build (Graph.builder ~name:"empty" ~deadline:1.0) in
  let s =
    List_sched.run ~graph:g ~lib:platform_lib ~pes:(Catalog.platform_instances 2)
      ~policy:Policy.Baseline ()
  in
  Alcotest.(check (float 0.0)) "zero makespan" 0.0 s.Schedule.makespan;
  Alcotest.(check int) "valid" 0 (List.length (Schedule.validate ~lib:platform_lib s));
  Alcotest.(check (float 0.0)) "no energy" 0.0 (Metrics.total_task_energy s)

let test_single_task_schedule_metrics () =
  let b = Graph.builder ~name:"solo" ~deadline:1000.0 in
  let _ = Graph.add_task b ~task_type:0 () in
  let g = Graph.build b in
  let s =
    List_sched.run ~graph:g ~lib:platform_lib ~pes:(Catalog.platform_instances 4)
      ~policy:Policy.Baseline ()
  in
  let utils = Metrics.utilizations s in
  (* One PE fully busy for the task's span; the others idle. *)
  Alcotest.(check (float 1e-9)) "busy PE" 1.0 (Tats_util.Stats.max utils);
  Alcotest.(check (float 1e-9)) "idle PE" 0.0 (Tats_util.Stats.min utils);
  Alcotest.(check (float 1e-12)) "no comm energy" 0.0
    (Metrics.total_comm_energy s ~lib:platform_lib)

let test_run_adaptive_rejects_bad_multiplier () =
  let g = Benchmarks.load 0 in
  Alcotest.(check bool) "non-positive" true
    (raises (fun () ->
         List_sched.run_adaptive ~max_multiplier:0.0 ~graph:g ~lib:platform_lib
           ~pes:(Catalog.platform_instances 4) ~policy:Policy.Baseline ()))

let test_lower_bound_rejects_no_pes () =
  let g = Benchmarks.load 0 in
  Alcotest.(check bool) "zero PEs" true
    (raises (fun () -> Metrics.makespan_lower_bound g ~lib:platform_lib ~n_pes:0))

(* --- pareto -------------------------------------------------------------------- *)

let test_pareto_frontier_of_all_infeasible () =
  let mk label =
    {
      Pareto.label;
      arch_cost = 10.0;
      n_pes = 1;
      meets_deadline = false;
      row = { Metrics.total_power = 1.0; max_temp = 50.0; avg_temp = 50.0 };
    }
  in
  Alcotest.(check int) "empty frontier" 0
    (List.length (Pareto.frontier [ mk "a"; mk "b" ]))

let test_pareto_frontier_empty_input () =
  Alcotest.(check int) "empty in, empty out" 0 (List.length (Pareto.frontier []))

(* --- comm triangle inequality ---------------------------------------------------- *)

let prop_mesh_hops_triangle_inequality =
  QCheck.Test.make ~name:"mesh hop counts satisfy the triangle inequality" ~count:200
    QCheck.(triple (int_range 0 15) (int_range 0 15) (int_range 0 15))
    (fun (a, b, c) ->
      let comm = Comm.mesh ~cols:4 () in
      Comm.hops comm ~src:a ~dst:c
      <= Comm.hops comm ~src:a ~dst:b + Comm.hops comm ~src:b ~dst:c)

let prop_mesh_hops_symmetric =
  QCheck.Test.make ~name:"mesh hop counts are symmetric" ~count:200
    QCheck.(pair (int_range 0 15) (int_range 0 15))
    (fun (a, b) ->
      let comm = Comm.mesh ~cols:4 () in
      Comm.hops comm ~src:a ~dst:b = Comm.hops comm ~src:b ~dst:a)

let () =
  Alcotest.run "edge_cases"
    [
      ( "linalg",
        [
          Alcotest.test_case "matrix mismatches" `Quick test_matrix_dimension_mismatches;
          Alcotest.test_case "lu non-square" `Quick test_lu_non_square;
          Alcotest.test_case "lu 1x1" `Quick test_lu_1x1;
          Alcotest.test_case "cg shape checks" `Quick
            test_cg_rejects_non_square_and_mismatch;
          Alcotest.test_case "sparse empty" `Quick test_sparse_empty_matrix;
        ] );
      ( "util",
        [
          Alcotest.test_case "range lo=hi" `Quick test_rng_range_degenerate;
          Alcotest.test_case "shuffle small" `Quick test_rng_shuffle_small;
        ] );
      ( "taskgraph",
        [
          Alcotest.test_case "single task" `Quick test_single_task_graph;
          Alcotest.test_case "empty graph" `Quick test_empty_graph_builds;
          Alcotest.test_case "generator n=1" `Quick test_generator_single_task;
          Alcotest.test_case "tgff negative data" `Quick test_tgff_rejects_negative_data;
        ] );
      ( "floorplan",
        [
          Alcotest.test_case "single block" `Quick test_single_block_floorplans;
          Alcotest.test_case "grid empty" `Quick test_grid_rejects_empty;
        ] );
      ( "thermal",
        [
          Alcotest.test_case "single block hotspot" `Quick test_hotspot_single_block;
          Alcotest.test_case "power length" `Quick test_hotspot_power_length_checked;
        ] );
      ( "sched",
        [
          Alcotest.test_case "empty graph schedules" `Quick test_schedule_empty_graph;
          Alcotest.test_case "single task metrics" `Quick
            test_single_task_schedule_metrics;
          Alcotest.test_case "adaptive bad multiplier" `Quick
            test_run_adaptive_rejects_bad_multiplier;
          Alcotest.test_case "lower bound no PEs" `Quick test_lower_bound_rejects_no_pes;
        ] );
      ( "pareto",
        [
          Alcotest.test_case "all infeasible" `Quick test_pareto_frontier_of_all_infeasible;
          Alcotest.test_case "empty input" `Quick test_pareto_frontier_empty_input;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_mesh_hops_triangle_inequality; prop_mesh_hops_symmetric ] );
    ]
