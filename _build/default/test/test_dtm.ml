(* Tests for the DTM simulator, task-graph analysis, the floorplan study,
   and idle-energy/power-gating metrics. *)

module Graph = Tats_taskgraph.Graph
module Benchmarks = Tats_taskgraph.Benchmarks
module Analysis = Tats_taskgraph.Analysis
module Pe = Tats_techlib.Pe
module Catalog = Tats_techlib.Catalog
module Block = Tats_floorplan.Block
module Grid = Tats_floorplan.Grid
module Hotspot = Tats_thermal.Hotspot
module Policy = Tats_sched.Policy
module Schedule = Tats_sched.Schedule
module List_sched = Tats_sched.List_sched
module Dtm = Tats_sched.Dtm
module Metrics = Tats_sched.Metrics

let platform_lib = Catalog.platform_library ()
let platform_pes n = Catalog.platform_instances n

let platform_hotspot n =
  Hotspot.create
    (Grid.layout
       (Array.map
          (fun (i : Pe.inst) ->
            Block.make ~name:(string_of_int i.Pe.inst_id) ~area:i.Pe.kind.Pe.area ())
          (platform_pes n)))

let baseline_schedule bench =
  let graph = Benchmarks.load bench in
  List_sched.run ~graph ~lib:platform_lib ~pes:(platform_pes 4)
    ~policy:Policy.Baseline ()

(* --- Dtm ------------------------------------------------------------------ *)

let no_throttle_params =
  { Dtm.default_params with Dtm.trigger = 1000.0 }

let test_dtm_no_trigger_reproduces_schedule () =
  let s = baseline_schedule 0 in
  let hotspot = platform_hotspot 4 in
  let r = Dtm.simulate ~params:no_throttle_params ~lib:platform_lib ~hotspot s in
  (* Without throttling the simulator replays the schedule. Each task's
     finish rounds up to a dt boundary and the rounding accumulates along
     dependency chains, so the drift bound scales with the graph depth. *)
  let slack =
    float_of_int (Graph.longest_path_hops s.Schedule.graph + 1)
    *. Dtm.default_params.Dtm.dt
  in
  Array.iteri
    (fun task f ->
      let static = s.Schedule.entries.(task).Schedule.finish in
      Alcotest.(check bool)
        (Printf.sprintf "task %d: %.1f vs %.1f" task f static)
        true
        (Float.abs (f -. static) <= slack +. 1e-6))
    r.Dtm.finish;
  Alcotest.(check (float 1e-9)) "no throttling" 0.0 r.Dtm.throttled_fraction

let test_dtm_low_trigger_throttles_and_lengthens () =
  let s = baseline_schedule 0 in
  let hotspot = platform_hotspot 4 in
  let free = Dtm.simulate ~params:no_throttle_params ~lib:platform_lib ~hotspot s in
  let hot_params = { Dtm.default_params with Dtm.trigger = 60.0; hysteresis = 2.0 } in
  let managed = Dtm.simulate ~params:hot_params ~lib:platform_lib ~hotspot s in
  Alcotest.(check bool) "throttling happened" true (managed.Dtm.throttled_fraction > 0.0);
  Alcotest.(check bool) "makespan grows" true (managed.Dtm.makespan > free.Dtm.makespan);
  (* Throttling caps the excursion relative to the unmanaged run. *)
  Alcotest.(check bool) "peak reduced" true
    (managed.Dtm.peak_temperature < free.Dtm.peak_temperature)

let test_dtm_thermal_schedule_throttles_less () =
  (* The thermal-aware schedule runs cooler, so the same DTM trigger
     throttles it less than the baseline — the design-time/run-time story. *)
  let graph = Benchmarks.load 0 in
  let hotspot = platform_hotspot 4 in
  let pes = platform_pes 4 in
  let baseline = List_sched.run ~graph ~lib:platform_lib ~pes ~policy:Policy.Baseline () in
  let thermal, _ =
    List_sched.run_adaptive ~hotspot ~graph ~lib:platform_lib ~pes
      ~policy:Policy.Thermal_aware ()
  in
  let params = { Dtm.default_params with Dtm.trigger = 75.0 } in
  let r_base = Dtm.simulate ~params ~lib:platform_lib ~hotspot baseline in
  let r_thermal = Dtm.simulate ~params ~lib:platform_lib ~hotspot thermal in
  Alcotest.(check bool)
    (Printf.sprintf "thermal %.3f <= baseline %.3f" r_thermal.Dtm.throttled_fraction
       r_base.Dtm.throttled_fraction)
    true
    (r_thermal.Dtm.throttled_fraction <= r_base.Dtm.throttled_fraction +. 1e-9)

let test_dtm_validation () =
  let s = baseline_schedule 0 in
  let hotspot = platform_hotspot 4 in
  let bad params =
    try ignore (Dtm.simulate ~params ~lib:platform_lib ~hotspot s : Dtm.result); false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "bad factor" true
    (bad { Dtm.default_params with Dtm.throttle_factor = 1.5 });
  Alcotest.(check bool) "bad dt" true (bad { Dtm.default_params with Dtm.dt = 0.0 });
  Alcotest.(check bool) "wrong hotspot" true
    (try
       ignore
         (Dtm.simulate ~lib:platform_lib ~hotspot:(platform_hotspot 2) s : Dtm.result);
       false
     with Invalid_argument _ -> true)

let test_dtm_warmup_passes_raise_peak () =
  (* One cold pass never reaches steady temperature; repeated passes warm
     the package and the peak rises toward (and beyond) the steady value. *)
  let s = baseline_schedule 0 in
  let hotspot = platform_hotspot 4 in
  let run passes =
    Dtm.simulate
      ~params:{ no_throttle_params with Dtm.passes }
      ~lib:platform_lib ~hotspot s
  in
  let cold = run 1 and warm = run 150 in
  Alcotest.(check bool) "warm peak higher" true
    (warm.Dtm.peak_temperature > cold.Dtm.peak_temperature +. 5.0);
  (* Warmed up, the transient peak rides above the steady-state estimate. *)
  let steady =
    (Metrics.thermal_report ~leakage:false s ~hotspot).Metrics.max_temp
  in
  Alcotest.(check bool)
    (Printf.sprintf "warm %.1f vs steady %.1f" warm.Dtm.peak_temperature steady)
    true
    (warm.Dtm.peak_temperature > steady -. 2.0)

let test_dtm_deterministic () =
  let s = baseline_schedule 1 in
  let hotspot = platform_hotspot 4 in
  let params = { Dtm.default_params with Dtm.trigger = 70.0 } in
  let a = Dtm.simulate ~params ~lib:platform_lib ~hotspot s in
  let b = Dtm.simulate ~params ~lib:platform_lib ~hotspot s in
  Alcotest.(check (float 0.0)) "same makespan" a.Dtm.makespan b.Dtm.makespan;
  Alcotest.(check (float 0.0)) "same peak" a.Dtm.peak_temperature b.Dtm.peak_temperature

(* --- Analysis -------------------------------------------------------------- *)

let diamond () =
  let b = Graph.builder ~name:"d" ~deadline:10.0 in
  let t0 = Graph.add_task b ~task_type:0 () in
  let t1 = Graph.add_task b ~task_type:0 () in
  let t2 = Graph.add_task b ~task_type:0 () in
  let t3 = Graph.add_task b ~task_type:0 () in
  Graph.add_edge b t0 t1;
  Graph.add_edge b t0 t2;
  Graph.add_edge b t1 t3;
  Graph.add_edge b t2 t3;
  Graph.build b

let test_analysis_diamond () =
  let a = Analysis.analyze (diamond ()) in
  Alcotest.(check int) "depth" 3 a.Analysis.depth;
  Alcotest.(check int) "width" 2 a.Analysis.width;
  Alcotest.(check (array int)) "levels" [| 1; 2; 1 |] a.Analysis.level_sizes;
  Alcotest.(check int) "sources" 1 a.Analysis.n_sources;
  Alcotest.(check int) "sinks" 1 a.Analysis.n_sinks;
  Alcotest.(check int) "max out" 2 a.Analysis.max_out_degree;
  Alcotest.(check int) "max in" 2 a.Analysis.max_in_degree;
  Alcotest.(check (float 1e-9)) "parallelism" (4.0 /. 3.0) a.Analysis.avg_parallelism

let test_analysis_levels_respect_edges () =
  let g = Benchmarks.load 1 in
  let level = Analysis.levels g in
  List.iter
    (fun { Graph.src; dst; _ } ->
      Alcotest.(check bool) "level increases along edges" true (level.(dst) > level.(src)))
    (Graph.edges g)

let test_analysis_consistency_on_benchmarks () =
  Array.iteri
    (fun i _ ->
      let g = Benchmarks.load i in
      let a = Analysis.analyze g in
      Alcotest.(check int) "level sizes sum to tasks" a.Analysis.n_tasks
        (Array.fold_left ( + ) 0 a.Analysis.level_sizes);
      Alcotest.(check int) "depth matches graph" (Graph.longest_path_hops g)
        a.Analysis.depth;
      Alcotest.(check bool) "density in range" true
        (a.Analysis.edge_density > 0.0 && a.Analysis.edge_density <= 1.0))
    Benchmarks.descriptors

(* --- Floorplan study -------------------------------------------------------- *)

let test_floorplan_study_thermal_cooler_on_average () =
  let rows = Core.Experiments.floorplan_study () in
  Alcotest.(check int) "four seeds" 4 (List.length rows);
  let mean f =
    List.fold_left (fun acc r -> acc +. f r) 0.0 rows /. float_of_int (List.length rows)
  in
  let d =
    mean (fun (r : Core.Experiments.floorplan_study_row) ->
        r.Core.Experiments.area_only_peak -. r.Core.Experiments.thermal_aware_peak)
  in
  Alcotest.(check bool) (Printf.sprintf "mean reduction %.2f °C" d) true (d > 0.0);
  List.iter
    (fun (r : Core.Experiments.floorplan_study_row) ->
      Alcotest.(check bool) "bounded overhead" true
        (r.Core.Experiments.area_overhead < 1.6))
    rows

(* --- Idle energy / power gating ---------------------------------------------- *)

let test_idle_energy_accounting () =
  let s = baseline_schedule 0 in
  let idle = Metrics.idle_energy s in
  (* Four PEs at 0.6 W idle for (makespan - busy) each. *)
  let utils = Metrics.utilizations s in
  let expect =
    Array.fold_left
      (fun acc u -> acc +. (0.6 *. ((1.0 -. u) *. s.Schedule.makespan)))
      0.0 utils
  in
  Alcotest.(check bool) "matches utilization view" true (Float.abs (idle -. expect) < 1e-6)

let test_power_gating_monotone_in_break_even () =
  let s = baseline_schedule 0 in
  let s0 = Metrics.power_gating_saving s ~break_even:0.0 in
  let s50 = Metrics.power_gating_saving s ~break_even:50.0 in
  let s_inf = Metrics.power_gating_saving s ~break_even:1e12 in
  Alcotest.(check bool) "monotone" true (s0 >= s50 && s50 >= s_inf);
  Alcotest.(check (float 1e-9)) "nothing gated at infinity" 0.0 s_inf;
  (* With break-even 0 every idle moment is gated. *)
  Alcotest.(check bool) "full gating = idle energy" true
    (Float.abs (s0 -. Metrics.idle_energy s) < 1e-6)

let () =
  Alcotest.run "dtm_analysis"
    [
      ( "dtm",
        [
          Alcotest.test_case "no trigger = schedule" `Quick
            test_dtm_no_trigger_reproduces_schedule;
          Alcotest.test_case "low trigger throttles" `Quick
            test_dtm_low_trigger_throttles_and_lengthens;
          Alcotest.test_case "thermal schedule throttles less" `Quick
            test_dtm_thermal_schedule_throttles_less;
          Alcotest.test_case "validation" `Quick test_dtm_validation;
          Alcotest.test_case "deterministic" `Quick test_dtm_deterministic;
          Alcotest.test_case "warm-up passes" `Quick test_dtm_warmup_passes_raise_peak;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "diamond" `Quick test_analysis_diamond;
          Alcotest.test_case "levels respect edges" `Quick
            test_analysis_levels_respect_edges;
          Alcotest.test_case "benchmark consistency" `Quick
            test_analysis_consistency_on_benchmarks;
        ] );
      ( "floorplan_study",
        [
          Alcotest.test_case "thermal cooler" `Quick
            test_floorplan_study_thermal_cooler_on_average;
        ] );
      ( "power_gating",
        [
          Alcotest.test_case "idle energy" `Quick test_idle_energy_accounting;
          Alcotest.test_case "gating monotone" `Quick
            test_power_gating_monotone_in_break_even;
        ] );
    ]
