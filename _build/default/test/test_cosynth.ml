(* Tests for Tats_cosynth: the allocation search and the Figure-1 flows. *)

module Graph = Tats_taskgraph.Graph
module Benchmarks = Tats_taskgraph.Benchmarks
module Pe = Tats_techlib.Pe
module Library = Tats_techlib.Library
module Catalog = Tats_techlib.Catalog
module Placement = Tats_floorplan.Placement
module Policy = Tats_sched.Policy
module Schedule = Tats_sched.Schedule
module Metrics = Tats_sched.Metrics
module Alloc = Tats_cosynth.Alloc
module Flow = Tats_cosynth.Flow

let hetero = Catalog.default_library ()
let platform = Catalog.platform_library ()

(* --- Alloc -------------------------------------------------------------- *)

let test_alloc_feasible_on_benchmarks () =
  Array.iteri
    (fun i _ ->
      let graph = Benchmarks.load i in
      let a = Alloc.run ~graph ~lib:hetero () in
      Alcotest.(check bool) (Graph.name graph ^ " feasible") true a.Alloc.feasible;
      Alcotest.(check bool) "ran trial schedules" true (a.Alloc.asp_runs > 0))
    Benchmarks.descriptors

let test_alloc_cost_is_sum_of_kinds () =
  let graph = Benchmarks.load 0 in
  let a = Alloc.run ~graph ~lib:hetero () in
  let expect =
    Array.fold_left (fun acc (i : Pe.inst) -> acc +. i.Pe.kind.Pe.cost) 0.0 a.Alloc.insts
  in
  Alcotest.(check (float 1e-9)) "cost" expect a.Alloc.total_cost

let test_alloc_respects_min_pes () =
  let graph = Benchmarks.load 0 in
  let a = Alloc.run ~min_pes:4 ~graph ~lib:hetero () in
  Alcotest.(check bool) "at least 4" true (Array.length a.Alloc.insts >= 4)

let test_alloc_respects_max_pes () =
  let graph = Benchmarks.load 3 in
  let a = Alloc.run ~max_pes:2 ~graph ~lib:hetero () in
  Alcotest.(check bool) "at most 2" true (Array.length a.Alloc.insts <= 2)

let test_alloc_infeasible_reported () =
  (* Bm4 with a single PE from a library of one slow kind cannot meet the
     deadline. *)
  let slow =
    Library.generate ~seed:1 ~n_task_types:Benchmarks.n_task_types
      ~kinds:
        [ Pe.make_kind ~kind_id:0 ~name:"slow" ~area:1e-5 ~cost:10.0 ~speed:0.05
            ~power_scale:1.0 ~idle_power:0.1 () ]
      ()
  in
  let graph = Benchmarks.load 3 in
  let a = Alloc.run ~max_pes:2 ~graph ~lib:slow () in
  Alcotest.(check bool) "infeasible" false a.Alloc.feasible

let test_alloc_deterministic () =
  let graph = Benchmarks.load 1 in
  let a = Alloc.run ~graph ~lib:hetero () in
  let b = Alloc.run ~graph ~lib:hetero () in
  Alcotest.(check int) "same size" (Array.length a.Alloc.insts) (Array.length b.Alloc.insts);
  Alcotest.(check (float 0.0)) "same cost" a.Alloc.total_cost b.Alloc.total_cost

let test_alloc_rejects_thermal_policy () =
  let graph = Benchmarks.load 0 in
  Alcotest.(check bool) "thermal rejected" true
    (try ignore (Alloc.run ~policy:Policy.Thermal_aware ~graph ~lib:hetero () : Alloc.t);
       false
     with Invalid_argument _ -> true)

let test_alloc_bad_bounds () =
  let graph = Benchmarks.load 0 in
  Alcotest.(check bool) "min > max" true
    (try ignore (Alloc.run ~min_pes:5 ~max_pes:2 ~graph ~lib:hetero () : Alloc.t); false
     with Invalid_argument _ -> true)

let test_instances_of_kinds () =
  let insts = Alloc.instances_of_kinds hetero [ 0; 2; 2 ] in
  Alcotest.(check int) "three" 3 (Array.length insts);
  Alcotest.(check string) "kind name" "hp-core" insts.(1).Pe.kind.Pe.kind_name

(* --- Platform flow ------------------------------------------------------ *)

let test_platform_flow_stages () =
  let graph = Benchmarks.load 0 in
  let o = Flow.run_platform ~graph ~lib:platform ~policy:Policy.Thermal_aware () in
  let stages = List.map (fun (e : Flow.log_entry) -> e.Flow.stage) o.Flow.log in
  Alcotest.(check (list string))
    "figure 1(b) order"
    [ "allocation"; "floorplanning"; "scheduling"; "thermal-extraction" ]
    (List.map Flow.stage_name stages)

let test_platform_flow_schedule_valid () =
  List.iter
    (fun policy ->
      let graph = Benchmarks.load 0 in
      let o = Flow.run_platform ~graph ~lib:platform ~policy () in
      Alcotest.(check int)
        (Policy.name policy ^ " valid")
        0
        (List.length (Schedule.validate ~lib:platform o.Flow.schedule)))
    Policy.all

let test_platform_flow_meets_deadline () =
  List.iter
    (fun policy ->
      let graph = Benchmarks.load 0 in
      let o = Flow.run_platform ~graph ~lib:platform ~policy () in
      Alcotest.(check bool)
        (Policy.name policy ^ " deadline")
        true
        (Schedule.meets_deadline o.Flow.schedule))
    Policy.all

let test_platform_flow_row_sane () =
  let graph = Benchmarks.load 0 in
  let o = Flow.run_platform ~graph ~lib:platform ~policy:Policy.Baseline () in
  Alcotest.(check bool) "power positive" true (o.Flow.row.Metrics.total_power > 0.0);
  Alcotest.(check bool) "max >= avg" true
    (o.Flow.row.Metrics.max_temp >= o.Flow.row.Metrics.avg_temp);
  Alcotest.(check bool) "above ambient" true (o.Flow.row.Metrics.avg_temp > 45.0)

let test_platform_flow_rejects_multikind_library () =
  let graph = Benchmarks.load 0 in
  Alcotest.(check bool) "multi-kind rejected" true
    (try
       ignore (Flow.run_platform ~graph ~lib:hetero ~policy:Policy.Baseline ()
               : Flow.outcome);
       false
     with Invalid_argument _ -> true)

let test_platform_flow_pe_count () =
  let graph = Benchmarks.load 0 in
  let o = Flow.run_platform ~n_pes:6 ~graph ~lib:platform ~policy:Policy.Baseline () in
  Alcotest.(check int) "six PEs" 6 (Schedule.n_pes o.Flow.schedule);
  Alcotest.(check int) "six blocks" 6 (Array.length o.Flow.placement.Placement.rects)

(* --- Co-synthesis flow -------------------------------------------------- *)

let test_cosynth_flow_meets_deadline_all_policies () =
  List.iter
    (fun policy ->
      let graph = Benchmarks.load 0 in
      let o = Flow.run_cosynthesis ~graph ~lib:hetero ~policy () in
      Alcotest.(check bool)
        (Policy.name policy ^ " deadline")
        true
        (Schedule.meets_deadline o.Flow.schedule);
      Alcotest.(check int)
        (Policy.name policy ^ " valid")
        0
        (List.length (Schedule.validate ~lib:hetero o.Flow.schedule)))
    Policy.all

let test_cosynth_floorplan_overlap_free () =
  let graph = Benchmarks.load 1 in
  let o = Flow.run_cosynthesis ~graph ~lib:hetero ~policy:Policy.Thermal_aware () in
  Alcotest.(check bool) "no overlap" false (Placement.has_overlap o.Flow.placement)

let test_cosynth_thermal_headroom () =
  (* The thermal flow allocates at least as many PEs as the baseline flow
     (one extra unless already at the cap). *)
  let graph = Benchmarks.load 0 in
  let base = Flow.run_cosynthesis ~graph ~lib:hetero ~policy:Policy.Baseline () in
  let thermal = Flow.run_cosynthesis ~graph ~lib:hetero ~policy:Policy.Thermal_aware () in
  Alcotest.(check bool) "headroom" true
    (Schedule.n_pes thermal.Flow.schedule > Schedule.n_pes base.Flow.schedule)

let test_cosynth_thermal_cooler_than_power () =
  let graph = Benchmarks.load 1 in
  let power =
    Flow.run_cosynthesis ~graph ~lib:hetero
      ~policy:(Policy.Power_aware Policy.Min_task_energy) ()
  in
  let thermal = Flow.run_cosynthesis ~graph ~lib:hetero ~policy:Policy.Thermal_aware () in
  Alcotest.(check bool) "cooler max" true
    (thermal.Flow.row.Metrics.max_temp < power.Flow.row.Metrics.max_temp)

let test_cosynth_deterministic () =
  let graph = Benchmarks.load 0 in
  let a = Flow.run_cosynthesis ~graph ~lib:hetero ~policy:Policy.Baseline () in
  let b = Flow.run_cosynthesis ~graph ~lib:hetero ~policy:Policy.Baseline () in
  Alcotest.(check (float 0.0)) "same max temp" a.Flow.row.Metrics.max_temp
    b.Flow.row.Metrics.max_temp;
  Alcotest.(check (float 0.0)) "same cost" a.Flow.arch_cost b.Flow.arch_cost

let test_cosynth_refinement_rounds () =
  let graph = Benchmarks.load 0 in
  let one = Flow.run_cosynthesis ~refine_rounds:1 ~graph ~lib:hetero
      ~policy:Policy.Thermal_aware () in
  let two = Flow.run_cosynthesis ~refine_rounds:2 ~graph ~lib:hetero
      ~policy:Policy.Thermal_aware () in
  (* Each refinement round logs one floorplanning and one scheduling stage. *)
  let count stage o =
    List.length
      (List.filter (fun (e : Flow.log_entry) -> e.Flow.stage = stage) o.Flow.log)
  in
  Alcotest.(check int) "extra floorplan round"
    (count Flow.Floorplanning one + 1)
    (count Flow.Floorplanning two);
  Alcotest.(check bool) "still meets deadline" true
    (Schedule.meets_deadline two.Flow.schedule);
  Alcotest.(check bool) "refinement not hotter" true
    (two.Flow.row.Metrics.max_temp <= one.Flow.row.Metrics.max_temp +. 3.0)

let test_cosynth_hotspot_inquiries_counted () =
  let graph = Benchmarks.load 0 in
  let o = Flow.run_cosynthesis ~graph ~lib:hetero ~policy:Policy.Thermal_aware () in
  Alcotest.(check bool) "thermal policy issued inquiries" true
    (Tats_thermal.Hotspot.inquiries o.Flow.hotspot > 0)

let test_floorplan_cost_components () =
  let blocks = [| Tats_floorplan.Block.make ~name:"a" ~area:1e-6 () |] in
  let p = Tats_floorplan.Grid.layout blocks in
  let plain = Flow.floorplan_cost ~blocks_area:1e-6 p in
  let with_thermal = Flow.floorplan_cost ~thermal:(fun _ -> 2.5) ~blocks_area:1e-6 p in
  Alcotest.(check (float 1e-9)) "thermal term added" 2.5 (with_thermal -. plain);
  (* One square block fills its die exactly: area term is 1, wirelength 0. *)
  Alcotest.(check (float 1e-6)) "area term" 1.0 plain

(* --- Pareto exploration --------------------------------------------------- *)

let test_min_pes_forces_architecture () =
  let graph = Benchmarks.load 0 in
  let o =
    Flow.run_cosynthesis ~min_pes:5 ~graph ~lib:hetero ~policy:Policy.Baseline ()
  in
  Alcotest.(check bool) "at least five PEs" true (Schedule.n_pes o.Flow.schedule >= 5)

let test_pareto_explore_points () =
  let graph = Benchmarks.load 0 in
  let points =
    Tats_cosynth.Pareto.explore
      ~policies:[ Policy.Baseline ]
      ~min_pes_range:[ 1; 3 ] ~graph ~lib:hetero ()
  in
  Alcotest.(check int) "one point per (policy, min)" 2 (List.length points);
  List.iter
    (fun (p : Tats_cosynth.Pareto.point) ->
      Alcotest.(check bool) "cost positive" true (p.Tats_cosynth.Pareto.arch_cost > 0.0))
    points

let test_pareto_frontier_non_dominated () =
  let mk label cost temp met =
    {
      Tats_cosynth.Pareto.label;
      arch_cost = cost;
      n_pes = 2;
      meets_deadline = met;
      row = { Metrics.total_power = 1.0; max_temp = temp; avg_temp = temp };
    }
  in
  let points =
    [
      mk "cheap-hot" 100.0 120.0 true;
      mk "dear-cool" 300.0 90.0 true;
      mk "dominated" 300.0 121.0 true;
      mk "missed" 50.0 60.0 false;
      mk "dup" 100.0 120.0 true;
    ]
  in
  let f = Tats_cosynth.Pareto.frontier points in
  let labels = List.map (fun p -> p.Tats_cosynth.Pareto.label) f in
  Alcotest.(check (list string)) "frontier" [ "cheap-hot"; "dear-cool" ] labels

let test_pareto_frontier_dedups_triples () =
  let mk label =
    {
      Tats_cosynth.Pareto.label;
      arch_cost = 10.0;
      n_pes = 1;
      meets_deadline = true;
      row = { Metrics.total_power = 1.0; max_temp = 50.0; avg_temp = 50.0 };
    }
  in
  let f = Tats_cosynth.Pareto.frontier [ mk "a"; mk "b"; mk "c" ] in
  Alcotest.(check int) "one survivor" 1 (List.length f)

let () =
  Alcotest.run "tats_cosynth"
    [
      ( "alloc",
        [
          Alcotest.test_case "feasible on benchmarks" `Quick
            test_alloc_feasible_on_benchmarks;
          Alcotest.test_case "cost sum" `Quick test_alloc_cost_is_sum_of_kinds;
          Alcotest.test_case "min pes" `Quick test_alloc_respects_min_pes;
          Alcotest.test_case "max pes" `Quick test_alloc_respects_max_pes;
          Alcotest.test_case "infeasible reported" `Quick test_alloc_infeasible_reported;
          Alcotest.test_case "deterministic" `Quick test_alloc_deterministic;
          Alcotest.test_case "thermal rejected" `Quick test_alloc_rejects_thermal_policy;
          Alcotest.test_case "bad bounds" `Quick test_alloc_bad_bounds;
          Alcotest.test_case "instances_of_kinds" `Quick test_instances_of_kinds;
        ] );
      ( "platform_flow",
        [
          Alcotest.test_case "stage trace" `Quick test_platform_flow_stages;
          Alcotest.test_case "schedules valid" `Quick test_platform_flow_schedule_valid;
          Alcotest.test_case "meets deadline" `Quick test_platform_flow_meets_deadline;
          Alcotest.test_case "row sanity" `Quick test_platform_flow_row_sane;
          Alcotest.test_case "library shape enforced" `Quick
            test_platform_flow_rejects_multikind_library;
          Alcotest.test_case "pe count" `Quick test_platform_flow_pe_count;
        ] );
      ( "pareto",
        [
          Alcotest.test_case "min_pes forces arch" `Quick
            test_min_pes_forces_architecture;
          Alcotest.test_case "explore points" `Quick test_pareto_explore_points;
          Alcotest.test_case "frontier non-dominated" `Quick
            test_pareto_frontier_non_dominated;
          Alcotest.test_case "frontier dedup" `Quick test_pareto_frontier_dedups_triples;
        ] );
      ( "cosynth_flow",
        [
          Alcotest.test_case "deadline + validity" `Quick
            test_cosynth_flow_meets_deadline_all_policies;
          Alcotest.test_case "floorplan overlap-free" `Quick
            test_cosynth_floorplan_overlap_free;
          Alcotest.test_case "thermal headroom" `Quick test_cosynth_thermal_headroom;
          Alcotest.test_case "thermal cooler than power" `Quick
            test_cosynth_thermal_cooler_than_power;
          Alcotest.test_case "deterministic" `Quick test_cosynth_deterministic;
          Alcotest.test_case "inquiries counted" `Quick
            test_cosynth_hotspot_inquiries_counted;
          Alcotest.test_case "refinement rounds" `Quick test_cosynth_refinement_rounds;
          Alcotest.test_case "floorplan cost" `Quick test_floorplan_cost_components;
        ] );
    ]
