(* Tests for periodic multi-application scheduling, the makespan lower
   bound, and the robustness experiment. *)

module Graph = Tats_taskgraph.Graph
module Benchmarks = Tats_taskgraph.Benchmarks
module Generator = Tats_taskgraph.Generator
module Pe = Tats_techlib.Pe
module Catalog = Tats_techlib.Catalog
module Block = Tats_floorplan.Block
module Grid = Tats_floorplan.Grid
module Hotspot = Tats_thermal.Hotspot
module Policy = Tats_sched.Policy
module Schedule = Tats_sched.Schedule
module List_sched = Tats_sched.List_sched
module Periodic = Tats_sched.Periodic
module Metrics = Tats_sched.Metrics

let platform_lib = Catalog.platform_library ()
let platform_pes n = Catalog.platform_instances n

let platform_hotspot n =
  Hotspot.create
    (Grid.layout
       (Array.map
          (fun (i : Pe.inst) ->
            Block.make ~name:(string_of_int i.Pe.inst_id) ~area:i.Pe.kind.Pe.area ())
          (platform_pes n)))

(* A small pipeline app: 3 tasks in a chain, deadline 400. *)
let small_app ~period =
  let b = Graph.builder ~name:"pipe" ~deadline:400.0 in
  let t0 = Graph.add_task b ~task_type:0 () in
  let t1 = Graph.add_task b ~task_type:1 () in
  let t2 = Graph.add_task b ~task_type:2 () in
  Graph.add_edge b ~data:16.0 t0 t1;
  Graph.add_edge b ~data:16.0 t1 t2;
  Periodic.make_app ~graph:(Graph.build b) ~period

let second_app ~period =
  let b = Graph.builder ~name:"burst" ~deadline:500.0 in
  let t0 = Graph.add_task b ~task_type:3 () in
  let t1 = Graph.add_task b ~task_type:4 () in
  let t2 = Graph.add_task b ~task_type:5 () in
  Graph.add_edge b ~data:16.0 t0 t1;
  Graph.add_edge b ~data:16.0 t0 t2;
  Periodic.make_app ~graph:(Graph.build b) ~period

(* --- hyperperiod / app construction ------------------------------------- *)

let test_make_app_validation () =
  let bad f = try ignore (f () : Periodic.app); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "fractional period" true
    (bad (fun () -> small_app ~period:400.5));
  Alcotest.(check bool) "period below deadline" true
    (bad (fun () -> small_app ~period:300.0))

let test_hyperperiod_lcm () =
  let apps = [ small_app ~period:400.0; second_app ~period:600.0 ] in
  Alcotest.(check (float 0.0)) "lcm(400,600)" 1200.0 (Periodic.hyperperiod apps);
  Alcotest.(check (float 0.0)) "single app" 400.0
    (Periodic.hyperperiod [ small_app ~period:400.0 ])

(* --- scheduling ---------------------------------------------------------- *)

let schedule_two () =
  Periodic.schedule
    ~apps:[ small_app ~period:400.0; second_app ~period:600.0 ]
    ~lib:platform_lib ~pes:(platform_pes 2) ()

let test_schedule_covers_all_jobs () =
  let t = schedule_two () in
  (* 1200/400 = 3 instances x 3 tasks + 1200/600 = 2 instances x 3 tasks. *)
  Alcotest.(check int) "job count" (9 + 6) (Array.length t.Periodic.entries)

let test_schedule_valid () =
  let t = schedule_two () in
  let violations = Periodic.validate t ~lib:platform_lib in
  Alcotest.(check int) "no violations" 0 (List.length violations)

let test_schedule_meets_deadlines () =
  let t = schedule_two () in
  Alcotest.(check bool) "all deadlines" true (Periodic.meets_all_deadlines t)

let test_releases_respected () =
  let t = schedule_two () in
  Array.iter
    (fun (e : Periodic.entry) ->
      let release =
        float_of_int e.Periodic.job.Periodic.instance
        *. t.Periodic.apps.(e.Periodic.job.Periodic.app).Periodic.period
      in
      Alcotest.(check bool) "after release" true (e.Periodic.start >= release -. 1e-9))
    t.Periodic.entries

let test_energy_sums_instances () =
  (* Every instance of an app on identical PEs burns the same energy, so
     the combined hyperperiod energy decomposes exactly: with periods 400
     and 1200, the hyperperiod (1200) holds 3 instances of the first app
     and 1 of the second. *)
  let solo app =
    Periodic.total_energy
      (Periodic.schedule ~apps:[ app ] ~lib:platform_lib ~pes:(platform_pes 2) ())
  in
  let combined =
    Periodic.schedule
      ~apps:[ small_app ~period:400.0; second_app ~period:1200.0 ]
      ~lib:platform_lib ~pes:(platform_pes 2) ()
  in
  Alcotest.(check (float 1e-6)) "3x + 1x energy"
    ((3.0 *. solo (small_app ~period:400.0)) +. solo (second_app ~period:1200.0))
    (Periodic.total_energy combined)

let test_average_power_definition () =
  let t = schedule_two () in
  Alcotest.(check (float 1e-9)) "energy / hyperperiod"
    (Periodic.total_energy t /. t.Periodic.hyper)
    (Periodic.average_power t)

let test_utilization_bounds () =
  let t = schedule_two () in
  let u = Periodic.utilization t in
  Alcotest.(check bool) "in (0,1]" true (u > 0.0 && u <= 1.0)

let test_thermal_report_consistent () =
  let t = schedule_two () in
  let hotspot = platform_hotspot 2 in
  let r = Periodic.thermal_report t ~hotspot in
  Alcotest.(check bool) "above ambient" true (r.Metrics.avg_temp > 45.0);
  Alcotest.(check bool) "max >= avg" true (r.Metrics.max_temp >= r.Metrics.avg_temp)

let test_thermal_policy_needs_hotspot () =
  Alcotest.check_raises "missing hotspot" List_sched.Thermal_policy_needs_hotspot
    (fun () ->
      ignore
        (Periodic.schedule ~policy:Policy.Thermal_aware
           ~apps:[ small_app ~period:400.0 ]
           ~lib:platform_lib ~pes:(platform_pes 2) ()
         : Periodic.t))

let test_thermal_policy_schedules_validly () =
  let hotspot = platform_hotspot 2 in
  let t =
    Periodic.schedule ~policy:Policy.Thermal_aware ~hotspot
      ~apps:[ small_app ~period:400.0; second_app ~period:600.0 ]
      ~lib:platform_lib ~pes:(platform_pes 2) ()
  in
  Alcotest.(check int) "valid" 0 (List.length (Periodic.validate t ~lib:platform_lib))

let test_more_pes_reduce_peak_power_density () =
  let apps = [ small_app ~period:400.0; second_app ~period:600.0 ] in
  let two = Periodic.schedule ~apps ~lib:platform_lib ~pes:(platform_pes 2) () in
  let four = Periodic.schedule ~apps ~lib:platform_lib ~pes:(platform_pes 4) () in
  let peak t = Tats_util.Stats.max (Periodic.pe_average_powers t) in
  Alcotest.(check bool) "spreading lowers the peak PE power" true
    (peak four <= peak two +. 1e-9)

let test_schedule_adaptive_meets_deadlines_and_not_hotter () =
  let apps = [ small_app ~period:400.0; second_app ~period:600.0 ] in
  let hotspot = platform_hotspot 2 in
  let plain =
    Periodic.schedule ~apps ~lib:platform_lib ~pes:(platform_pes 2) ()
  in
  let adaptive, w =
    Periodic.schedule_adaptive ~policy:Policy.Thermal_aware ~hotspot ~apps
      ~lib:platform_lib ~pes:(platform_pes 2) ()
  in
  Alcotest.(check bool) "weight non-negative" true (w.Policy.cost_weight >= 0.0);
  Alcotest.(check bool) "deadlines met" true (Periodic.meets_all_deadlines adaptive);
  let t_plain = (Periodic.thermal_report plain ~hotspot).Metrics.max_temp in
  let t_adaptive = (Periodic.thermal_report adaptive ~hotspot).Metrics.max_temp in
  Alcotest.(check bool)
    (Printf.sprintf "adaptive %.2f <= plain %.2f" t_adaptive t_plain)
    true (t_adaptive <= t_plain +. 1e-9)

(* --- makespan lower bound ------------------------------------------------ *)

let test_lower_bound_below_schedules () =
  Array.iteri
    (fun i _ ->
      let graph = Benchmarks.load i in
      let bound = Metrics.makespan_lower_bound graph ~lib:platform_lib ~n_pes:4 in
      let s =
        List_sched.run ~graph ~lib:platform_lib ~pes:(platform_pes 4)
          ~policy:Policy.Baseline ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %.1f >= %.1f" (Graph.name graph) s.Schedule.makespan bound)
        true
        (s.Schedule.makespan >= bound -. 1e-6))
    Benchmarks.descriptors

let test_lower_bound_single_pe_is_work () =
  let graph = Benchmarks.load 0 in
  let bound1 = Metrics.makespan_lower_bound graph ~lib:platform_lib ~n_pes:1 in
  let bound4 = Metrics.makespan_lower_bound graph ~lib:platform_lib ~n_pes:4 in
  Alcotest.(check bool) "1 PE bound >= 4 PE bound" true (bound1 >= bound4)

let prop_lower_bound_holds_on_random_graphs =
  QCheck.Test.make ~name:"every schedule respects the lower bound" ~count:40
    QCheck.(pair small_int (int_range 3 25))
    (fun (seed, tasks) ->
      let lo, hi = Generator.feasible_edges ~n_tasks:tasks in
      let edges = lo + ((seed * 3) mod (Stdlib.max 1 (hi - lo + 1))) in
      let graph =
        Generator.generate ~seed ~name:"q"
          {
            Generator.default_spec with
            Generator.n_tasks = tasks;
            n_edges = edges;
            n_task_types = Benchmarks.n_task_types;
          }
      in
      let bound = Metrics.makespan_lower_bound graph ~lib:platform_lib ~n_pes:3 in
      let s =
        List_sched.run ~graph ~lib:platform_lib ~pes:(platform_pes 3)
          ~policy:Policy.Baseline ()
      in
      s.Schedule.makespan >= bound -. 1e-6)

let prop_periodic_valid_on_random_apps =
  QCheck.Test.make ~name:"random periodic app sets schedule validly" ~count:25
    QCheck.(pair small_int (int_range 3 12))
    (fun (seed, tasks) ->
      let module Generator = Tats_taskgraph.Generator in
      let lo, hi = Generator.feasible_edges ~n_tasks:tasks in
      let edges = lo + ((seed * 3) mod (Stdlib.max 1 (hi - lo + 1))) in
      let graph =
        Generator.generate ~seed ~name:"q"
          {
            Generator.default_spec with
            Generator.n_tasks = tasks;
            n_edges = edges;
            deadline = 2000.0;
            n_task_types = Benchmarks.n_task_types;
          }
      in
      let period = float_of_int (2000 + (100 * (seed mod 5))) in
      let apps =
        [ Periodic.make_app ~graph ~period; small_app ~period:(period *. 2.0) ]
      in
      let t = Periodic.schedule ~apps ~lib:platform_lib ~pes:(platform_pes 3) () in
      (* Structural validity; a job deadline can legitimately be missed
         under contention (the scheduler is best-effort, callers check
         meets_all_deadlines). *)
      List.for_all
        (function
          | Periodic.Job_deadline _ -> true
          | Periodic.Release _ | Periodic.Precedence _ | Periodic.Pe_overlap _ ->
              false)
        (Periodic.validate t ~lib:platform_lib))

(* --- robustness experiment ------------------------------------------------ *)

let test_robustness_thermal_wins_majority () =
  let r = Core.Experiments.robustness ~n:8 ~tasks:24 () in
  Alcotest.(check int) "sample size" 8 r.Core.Experiments.n_graphs;
  Alcotest.(check bool)
    (Printf.sprintf "max-temp wins %d/8" r.Core.Experiments.wins_max)
    true
    (r.Core.Experiments.wins_max >= 6);
  Alcotest.(check bool) "positive mean reduction" true
    (r.Core.Experiments.mean_reduction.Core.Experiments.d_max_temp > 0.0)

let test_robustness_deterministic () =
  let a = Core.Experiments.robustness ~n:4 ~tasks:20 () in
  let b = Core.Experiments.robustness ~n:4 ~tasks:20 () in
  Alcotest.(check (float 0.0)) "same mean"
    a.Core.Experiments.mean_reduction.Core.Experiments.d_max_temp
    b.Core.Experiments.mean_reduction.Core.Experiments.d_max_temp

let () =
  Alcotest.run "periodic"
    [
      ( "construction",
        [
          Alcotest.test_case "make_app validation" `Quick test_make_app_validation;
          Alcotest.test_case "hyperperiod lcm" `Quick test_hyperperiod_lcm;
        ] );
      ( "scheduling",
        [
          Alcotest.test_case "covers all jobs" `Quick test_schedule_covers_all_jobs;
          Alcotest.test_case "valid" `Quick test_schedule_valid;
          Alcotest.test_case "meets deadlines" `Quick test_schedule_meets_deadlines;
          Alcotest.test_case "releases respected" `Quick test_releases_respected;
          Alcotest.test_case "energy sums instances" `Quick test_energy_sums_instances;
          Alcotest.test_case "average power" `Quick test_average_power_definition;
          Alcotest.test_case "utilization" `Quick test_utilization_bounds;
          Alcotest.test_case "thermal report" `Quick test_thermal_report_consistent;
          Alcotest.test_case "thermal needs hotspot" `Quick
            test_thermal_policy_needs_hotspot;
          Alcotest.test_case "thermal schedules validly" `Quick
            test_thermal_policy_schedules_validly;
          Alcotest.test_case "spreading lowers peak power" `Quick
            test_more_pes_reduce_peak_power_density;
          Alcotest.test_case "adaptive coolest feasible" `Quick
            test_schedule_adaptive_meets_deadlines_and_not_hotter;
        ] );
      ( "lower_bound",
        [
          Alcotest.test_case "below benchmark schedules" `Quick
            test_lower_bound_below_schedules;
          Alcotest.test_case "monotone in PEs" `Quick test_lower_bound_single_pe_is_work;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "thermal wins majority" `Quick
            test_robustness_thermal_wins_majority;
          Alcotest.test_case "deterministic" `Quick test_robustness_deterministic;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_lower_bound_holds_on_random_graphs; prop_periodic_valid_on_random_apps ]
      );
    ]
