test/test_sched.ml: Alcotest Array Float List QCheck QCheck_alcotest Stdlib Tats_floorplan Tats_sched Tats_taskgraph Tats_techlib Tats_thermal Tats_util
