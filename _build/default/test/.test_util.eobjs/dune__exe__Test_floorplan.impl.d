test/test_floorplan.ml: Alcotest Array Float Printf QCheck QCheck_alcotest Tats_floorplan Tats_util
