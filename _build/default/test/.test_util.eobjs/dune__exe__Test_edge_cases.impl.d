test/test_edge_cases.ml: Alcotest Array List QCheck QCheck_alcotest String Tats_cosynth Tats_floorplan Tats_linalg Tats_sched Tats_taskgraph Tats_techlib Tats_thermal Tats_util
