test/test_dtm.ml: Alcotest Array Core Float List Printf Tats_floorplan Tats_sched Tats_taskgraph Tats_techlib Tats_thermal
