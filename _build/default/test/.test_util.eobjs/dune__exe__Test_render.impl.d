test/test_render.ml: Alcotest Array Filename Fun In_channel List Printf String Sys Tats_floorplan Tats_render Tats_sched Tats_taskgraph Tats_techlib Tats_thermal
