test/test_thermal.ml: Alcotest Array Float Printf Tats_floorplan Tats_linalg Tats_thermal Tats_util
