test/test_periodic.ml: Alcotest Array Core List Printf QCheck QCheck_alcotest Stdlib Tats_floorplan Tats_sched Tats_taskgraph Tats_techlib Tats_thermal Tats_util
