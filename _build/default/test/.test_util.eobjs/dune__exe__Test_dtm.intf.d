test/test_dtm.mli:
