test/test_linalg.ml: Alcotest Array Float List QCheck QCheck_alcotest Tats_linalg Tats_util
