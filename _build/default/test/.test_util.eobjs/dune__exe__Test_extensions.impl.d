test/test_extensions.ml: Alcotest Array Filename Float Fun List Printf QCheck QCheck_alcotest Stdlib String Sys Tats_floorplan Tats_taskgraph Tats_thermal Tats_util
