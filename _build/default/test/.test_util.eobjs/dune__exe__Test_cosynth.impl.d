test/test_cosynth.ml: Alcotest Array List Tats_cosynth Tats_floorplan Tats_sched Tats_taskgraph Tats_techlib Tats_thermal
