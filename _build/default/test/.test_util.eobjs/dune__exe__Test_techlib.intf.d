test/test_techlib.mli:
