test/test_sched_ext.mli:
