test/test_sched_ext.ml: Alcotest Array Float Fun List Printf QCheck QCheck_alcotest Stdlib String Tats_floorplan Tats_sched Tats_taskgraph Tats_techlib Tats_thermal
