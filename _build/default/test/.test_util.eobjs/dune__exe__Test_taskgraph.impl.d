test/test_taskgraph.ml: Alcotest Array List QCheck QCheck_alcotest Stdlib String Tats_taskgraph
