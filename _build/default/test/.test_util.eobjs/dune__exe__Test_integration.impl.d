test/test_integration.ml: Alcotest Core Lazy List String
