test/test_techlib.ml: Alcotest Array List Printf QCheck QCheck_alcotest Tats_taskgraph Tats_techlib
