(* Tests for the Core facade: paper data, report rendering, experiment
   plumbing (single cells; the full tables run in test_integration). *)

module Metrics = Core.Metrics
module Policy = Core.Policy

(* --- Paper_data --------------------------------------------------------- *)

let test_paper_table_shapes () =
  Alcotest.(check int) "table1 benchmarks" 4 (Array.length Core.Paper_data.table1);
  Alcotest.(check int) "table2 benchmarks" 4 (Array.length Core.Paper_data.table2);
  Alcotest.(check int) "table3 benchmarks" 4 (Array.length Core.Paper_data.table3)

let test_paper_reductions_positive () =
  let m2, a2 = Core.Paper_data.table2_avg_reduction in
  let m3, a3 = Core.Paper_data.table3_avg_reduction in
  Alcotest.(check bool) "table2 positive" true (m2 > 0.0 && a2 > 0.0);
  Alcotest.(check bool) "table3 positive" true (m3 > 0.0 && a3 > 0.0)

let test_paper_h3_claim_holds_in_published_data () =
  (* Sanity of our transcription: in the paper's own Table 1, H3's average
     temperature is never above H2's, on either architecture. *)
  Array.iter
    (fun (g : Core.Paper_data.table1_group) ->
      Alcotest.(check bool) "cosynth h3 <= h2" true
        (g.Core.Paper_data.h3_cosynth.Core.Paper_data.avg_temp
         <= g.Core.Paper_data.h2_cosynth.Core.Paper_data.avg_temp +. 1e-9);
      Alcotest.(check bool) "platform h3 <= h2" true
        (g.Core.Paper_data.h3_platform.Core.Paper_data.avg_temp
         <= g.Core.Paper_data.h2_platform.Core.Paper_data.avg_temp +. 1e-9))
    Core.Paper_data.table1

let test_paper_thermal_wins_every_row () =
  Array.iter
    (fun (v : Core.Paper_data.versus) ->
      Alcotest.(check bool) "max temp" true
        (v.Core.Paper_data.thermal.Core.Paper_data.max_temp
         <= v.Core.Paper_data.power.Core.Paper_data.max_temp);
      Alcotest.(check bool) "avg temp" true
        (v.Core.Paper_data.thermal.Core.Paper_data.avg_temp
         <= v.Core.Paper_data.power.Core.Paper_data.avg_temp))
    (Array.append Core.Paper_data.table2 Core.Paper_data.table3)

(* --- Experiments: single cells ------------------------------------------ *)

let test_run_one_platform_cell () =
  let cell =
    Core.Experiments.run_one ~arch:Core.Experiments.Platform ~policy:Policy.Baseline
      ~bench:0
  in
  Alcotest.(check bool) "power band" true
    (cell.Metrics.total_power > 1.0 && cell.Metrics.total_power < 100.0);
  Alcotest.(check bool) "temp band" true
    (cell.Metrics.max_temp > 45.0 && cell.Metrics.max_temp < 200.0)

let test_run_one_deterministic () =
  let cell () =
    Core.Experiments.run_one ~arch:Core.Experiments.Cosynthesis
      ~policy:Policy.Thermal_aware ~bench:0
  in
  let a = cell () and b = cell () in
  Alcotest.(check (float 0.0)) "repeatable" a.Metrics.max_temp b.Metrics.max_temp

let test_arch_names () =
  Alcotest.(check string) "cosynthesis" "co-synthesis"
    (Core.Experiments.arch_name Core.Experiments.Cosynthesis);
  Alcotest.(check string) "platform" "platform"
    (Core.Experiments.arch_name Core.Experiments.Platform)

let test_average_reduction_arithmetic () =
  let mk total_power max_temp avg_temp = { Metrics.total_power; max_temp; avg_temp } in
  let rows =
    [
      { Core.Experiments.bench = "x"; power = mk 1.0 100.0 90.0; thermal = mk 1.0 90.0 86.0 };
      { Core.Experiments.bench = "y"; power = mk 1.0 80.0 70.0; thermal = mk 1.0 74.0 68.0 };
    ]
  in
  let r = Core.Experiments.average_reduction rows in
  Alcotest.(check (float 1e-9)) "max" 8.0 r.Core.Experiments.d_max_temp;
  Alcotest.(check (float 1e-9)) "avg" 3.0 r.Core.Experiments.d_avg_temp

let test_workload_balance_thermal_balances () =
  let balances = Core.Experiments.workload_balance ~bench:0 in
  Alcotest.(check int) "all policies measured" 5 (List.length balances);
  List.iter
    (fun (_, spread) ->
      Alcotest.(check bool) "spread in [0,1]" true (spread >= 0.0 && spread <= 1.0))
    balances

(* --- Report ------------------------------------------------------------- *)

let contains haystack needle =
  let ln = String.length needle and lh = String.length haystack in
  let rec scan i = i + ln <= lh && (String.sub haystack i ln = needle || scan (i + 1)) in
  scan 0

let fake_cell p m a = { Metrics.total_power = p; max_temp = m; avg_temp = a }

let fake_versus_rows () =
  List.map
    (fun bench ->
      {
        Core.Experiments.bench;
        power = fake_cell 20.0 110.0 100.0;
        thermal = fake_cell 18.0 100.0 95.0;
      })
    [ "Bm1"; "Bm2"; "Bm3"; "Bm4" ]

let test_report_table2_renders () =
  let text = Core.Report.table2 (fake_versus_rows ()) in
  Alcotest.(check bool) "title" true (contains text "Table 2");
  Alcotest.(check bool) "benchmark" true (contains text "Bm3");
  Alcotest.(check bool) "paper row" true (contains text "paper");
  Alcotest.(check bool) "reduction" true (contains text "average reduction")

let test_report_table1_renders () =
  let rows =
    List.concat_map
      (fun bench ->
        List.map
          (fun policy ->
            {
              Core.Experiments.bench;
              policy;
              cosynth = fake_cell 20.0 110.0 100.0;
              platform = fake_cell 15.0 95.0 90.0;
            })
          [
            Policy.Baseline;
            Policy.Power_aware Policy.Min_task_power;
            Policy.Power_aware Policy.Min_pe_average_power;
            Policy.Power_aware Policy.Min_task_energy;
          ])
      [ "Bm1"; "Bm2"; "Bm3"; "Bm4" ]
  in
  let text = Core.Report.table1 rows in
  Alcotest.(check bool) "title" true (contains text "Table 1");
  Alcotest.(check bool) "policies present" true
    (contains text "h1" && contains text "h2" && contains text "h3")

let test_report_csv () =
  let csv = Core.Report.versus_csv (fake_versus_rows ()) in
  Alcotest.(check bool) "header" true
    (contains csv "bench,power_total_w");
  (* Header + 4 data lines. *)
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "line count" 5 (List.length lines)

let test_report_markdown () =
  let md = Core.Report.versus_markdown ~title:"T" ~paper:Core.Paper_data.table3
      (fake_versus_rows ()) in
  Alcotest.(check bool) "heading" true (contains md "## T");
  Alcotest.(check bool) "table row" true (contains md "| Bm1 |");
  Alcotest.(check bool) "reduction line" true (contains md "Average reduction");
  let rows =
    List.concat_map
      (fun bench ->
        List.map
          (fun policy ->
            { Core.Experiments.bench; policy;
              cosynth = fake_cell 20.0 110.0 100.0;
              platform = fake_cell 15.0 95.0 90.0 })
          [ Policy.Baseline; Policy.Power_aware Policy.Min_task_power;
            Policy.Power_aware Policy.Min_pe_average_power;
            Policy.Power_aware Policy.Min_task_energy ])
      [ "Bm1"; "Bm2"; "Bm3"; "Bm4" ]
  in
  let md1 = Core.Report.table1_markdown rows in
  Alcotest.(check bool) "table1 rows" true (contains md1 "| Bm4 | h3 |")

let test_report_shape_checks_render () =
  let text =
    Core.Report.shape_checks
      [
        { Core.Experiments.check = "demo"; holds = true; detail = "ok" };
        { Core.Experiments.check = "demo2"; holds = false; detail = "boom" };
      ]
  in
  Alcotest.(check bool) "pass" true (contains text "[PASS] demo");
  Alcotest.(check bool) "fail" true (contains text "[FAIL] demo2")

(* --- Facade helpers ------------------------------------------------------ *)

let test_schedule_platform_shortcut () =
  let o = Core.schedule_platform ~policy:Policy.Baseline (Core.Benchmarks.load 0) in
  Alcotest.(check int) "four PEs" 4 (Core.Schedule.n_pes o.Core.Flow.schedule)

let test_schedule_cosynthesis_shortcut () =
  let o = Core.schedule_cosynthesis ~policy:Policy.Baseline (Core.Benchmarks.load 0) in
  Alcotest.(check bool) "meets deadline" true
    (Core.Schedule.meets_deadline o.Core.Flow.schedule)

let test_version () =
  Alcotest.(check bool) "non-empty" true (String.length Core.version > 0)

let () =
  Alcotest.run "core"
    [
      ( "paper_data",
        [
          Alcotest.test_case "shapes" `Quick test_paper_table_shapes;
          Alcotest.test_case "reductions positive" `Quick test_paper_reductions_positive;
          Alcotest.test_case "h3 claim in published data" `Quick
            test_paper_h3_claim_holds_in_published_data;
          Alcotest.test_case "thermal wins every row" `Quick
            test_paper_thermal_wins_every_row;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "platform cell" `Quick test_run_one_platform_cell;
          Alcotest.test_case "deterministic" `Quick test_run_one_deterministic;
          Alcotest.test_case "arch names" `Quick test_arch_names;
          Alcotest.test_case "average reduction" `Quick test_average_reduction_arithmetic;
          Alcotest.test_case "workload balance" `Quick
            test_workload_balance_thermal_balances;
        ] );
      ( "report",
        [
          Alcotest.test_case "table2" `Quick test_report_table2_renders;
          Alcotest.test_case "table1" `Quick test_report_table1_renders;
          Alcotest.test_case "csv" `Quick test_report_csv;
          Alcotest.test_case "shape checks" `Quick test_report_shape_checks_render;
          Alcotest.test_case "markdown" `Quick test_report_markdown;
        ] );
      ( "facade",
        [
          Alcotest.test_case "platform shortcut" `Quick test_schedule_platform_shortcut;
          Alcotest.test_case "cosynthesis shortcut" `Quick
            test_schedule_cosynthesis_shortcut;
          Alcotest.test_case "version" `Quick test_version;
        ] );
    ]
