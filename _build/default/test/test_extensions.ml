(* Tests for the extension substrates: the SA floorplanner, the multi-layer
   thermal stack, TGFF-style file I/O, and conditional-graph scenario
   analysis. *)

module Rng = Tats_util.Rng
module Block = Tats_floorplan.Block
module Placement = Tats_floorplan.Placement
module Slicing = Tats_floorplan.Slicing
module Ga = Tats_floorplan.Ga
module Sa = Tats_floorplan.Sa
module Grid = Tats_floorplan.Grid
module Package = Tats_thermal.Package
module Rcmodel = Tats_thermal.Rcmodel
module Steady = Tats_thermal.Steady
module Stack = Tats_thermal.Stack
module Graph = Tats_taskgraph.Graph
module Generator = Tats_taskgraph.Generator
module Benchmarks = Tats_taskgraph.Benchmarks
module Cond = Tats_taskgraph.Cond
module Tgff_io = Tats_taskgraph.Tgff_io
module Task = Tats_taskgraph.Task

let blocks n =
  Array.init n (fun i -> Block.make ~name:(Printf.sprintf "b%d" i) ~area:1e-6 ())

let area_cost p = Placement.die_area p

(* --- Sa floorplanner ----------------------------------------------------- *)

let test_sa_improves_on_initial () =
  let bs =
    Array.init 8 (fun i ->
        Block.make ~name:(string_of_int i) ~area:((float_of_int i +. 1.0) *. 1e-6) ())
  in
  let initial = area_cost (Slicing.evaluate bs (Slicing.initial 8)) in
  let r = Sa.run ~seed:1 ~blocks:bs ~cost:area_cost () in
  Alcotest.(check bool) "sa <= initial" true (r.Sa.best_cost <= initial +. 1e-15);
  Alcotest.(check bool) "valid result" false (Placement.has_overlap r.Sa.best_placement)

let test_sa_deterministic () =
  let bs = blocks 6 in
  let a = Sa.run ~seed:3 ~blocks:bs ~cost:area_cost () in
  let b = Sa.run ~seed:3 ~blocks:bs ~cost:area_cost () in
  Alcotest.(check (float 0.0)) "same cost" a.Sa.best_cost b.Sa.best_cost

let test_sa_counts_moves () =
  let bs = blocks 4 in
  let r = Sa.run ~seed:2 ~blocks:bs ~cost:area_cost () in
  Alcotest.(check bool) "tried > 0" true (r.Sa.moves_tried > 0);
  Alcotest.(check bool) "accepted <= tried" true
    (r.Sa.moves_accepted <= r.Sa.moves_tried)

let test_sa_validation () =
  let bad f = try ignore (f () : Sa.result); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "bad cooling" true
    (bad (fun () ->
         Sa.run
           ~params:{ Sa.default_params with Sa.cooling = 1.5 }
           ~seed:1 ~blocks:(blocks 3) ~cost:area_cost ()));
  Alcotest.(check bool) "empty blocks" true
    (bad (fun () -> Sa.run ~seed:1 ~blocks:[||] ~cost:area_cost ()))

let test_sa_vs_ga_same_ballpark () =
  (* On the same blocks and cost, the two metaheuristics should land within
     20% of each other — the comparison paper [3] reports. *)
  let bs =
    Array.init 7 (fun i ->
        Block.make ~name:(string_of_int i) ~area:((float_of_int (i mod 3) +. 1.0) *. 1e-6) ())
  in
  let ga = Ga.run ~seed:5 ~blocks:bs ~cost:area_cost () in
  let sa = Sa.run ~seed:5 ~blocks:bs ~cost:area_cost () in
  let ratio = sa.Sa.best_cost /. ga.Ga.best_cost in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.3f in [0.8, 1.2]" ratio)
    true
    (ratio > 0.8 && ratio < 1.2)

(* --- Stack (multi-layer thermal) ---------------------------------------- *)

let platform_placement n =
  Grid.layout
    (Array.init n (fun i -> Block.make ~name:(Printf.sprintf "pe%d" i) ~area:1.6e-5 ()))

let test_stack_conservation () =
  let stack = Stack.build (platform_placement 4) in
  let power = [| 3.0; 1.0; 2.0; 4.0 |] in
  let sink = Stack.sink_temperature stack ~power in
  Alcotest.(check (float 1e-6)) "sink conservation"
    (Package.default.Package.ambient +. (Package.default.Package.r_convection *. 10.0))
    sink

let test_stack_gradient_descends () =
  (* Heat flows die -> TIM -> spreader: temperatures must descend. *)
  let stack = Stack.build (platform_placement 4) in
  let die, tim, spr = Stack.layer_temperatures stack ~power:[| 5.0; 5.0; 5.0; 5.0 |] in
  for i = 0 to 3 do
    Alcotest.(check bool) "die >= tim" true (die.(i) >= tim.(i) -. 1e-9);
    Alcotest.(check bool) "tim >= spreader" true (tim.(i) >= spr.(i) -. 1e-9)
  done

let test_stack_hotspot_location_agrees_with_compact () =
  let placement = platform_placement 4 in
  let stack = Stack.build placement in
  let compact = Steady.create (Rcmodel.build Package.default placement) in
  let power = [| 1.0; 7.0; 2.0; 3.0 |] in
  let t_stack = Stack.block_temperatures stack ~power in
  let t_compact = Steady.block_temperatures compact ~power in
  Alcotest.(check int) "same hottest block"
    (Tats_util.Stats.argmax t_compact)
    (Tats_util.Stats.argmax t_stack);
  (* Same global ordering of block temperatures. *)
  let order temps =
    let ids = Array.init 4 Fun.id in
    Array.sort (fun a b -> compare temps.(b) temps.(a)) ids;
    ids
  in
  Alcotest.(check (array int)) "same ranking" (order t_compact) (order t_stack)

let test_stack_monotone_in_power () =
  let stack = Stack.build (platform_placement 4) in
  let lo = Stack.block_temperatures stack ~power:(Array.make 4 2.0) in
  let hi = Stack.block_temperatures stack ~power:(Array.make 4 4.0) in
  for i = 0 to 3 do
    Alcotest.(check bool) "hotter with more power" true (hi.(i) > lo.(i))
  done

let test_stack_zero_power_ambient () =
  let stack = Stack.build (platform_placement 2) in
  Array.iter
    (fun t ->
      Alcotest.(check (float 1e-6)) "ambient" Package.default.Package.ambient t)
    (Stack.block_temperatures stack ~power:[| 0.0; 0.0 |])

let test_stack_rejects_bad_power () =
  let stack = Stack.build (platform_placement 2) in
  Alcotest.(check bool) "wrong size" true
    (try ignore (Stack.block_temperatures stack ~power:[| 1.0 |] : float array); false
     with Invalid_argument _ -> true)

(* --- Tgff_io -------------------------------------------------------------- *)

let test_tgff_roundtrip_diamond () =
  let b = Graph.builder ~name:"d" ~deadline:120.0 in
  let t0 = Graph.add_task b ~name:"src" ~task_type:1 () in
  let t1 = Graph.add_task b ~name:"mid" ~task_type:2 () in
  Graph.add_edge b ~data:33.5 t0 t1;
  let g = Graph.build b in
  match Tgff_io.of_string (Tgff_io.to_string g) with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok g' ->
      Alcotest.(check string) "name" (Graph.name g) (Graph.name g');
      Alcotest.(check (float 1e-9)) "deadline" (Graph.deadline g) (Graph.deadline g');
      Alcotest.(check int) "tasks" (Graph.n_tasks g) (Graph.n_tasks g');
      Alcotest.(check int) "edges" (Graph.n_edges g) (Graph.n_edges g');
      let e = List.hd (Graph.edges g') in
      Alcotest.(check (float 1e-6)) "edge data" 33.5 e.Graph.data

let test_tgff_parse_comments_and_blanks () =
  let text =
    "# a comment\n\ngraph g deadline 50\n  task a type 0  # trailing\ntask b type 1\nedge a -> b\n"
  in
  match Tgff_io.of_string text with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok g ->
      Alcotest.(check int) "tasks" 2 (Graph.n_tasks g);
      Alcotest.(check int) "edges" 1 (Graph.n_edges g)

let test_tgff_errors_carry_line_numbers () =
  let expect_error text fragment =
    match Tgff_io.of_string text with
    | Ok _ -> Alcotest.failf "expected failure for %S" text
    | Error msg ->
        let contains =
          let ln = String.length fragment and lh = String.length msg in
          let rec scan i =
            i + ln <= lh && (String.sub msg i ln = fragment || scan (i + 1))
          in
          scan 0
        in
        if not contains then Alcotest.failf "error %S misses %S" msg fragment
  in
  expect_error "task a type 0\n" "line 1";
  expect_error "graph g deadline 10\ntask a type x\n" "line 2";
  expect_error "graph g deadline 10\ntask a type 0\nedge a -> b\n" "unknown task";
  expect_error "graph g deadline 10\ntask a type 0\ntask a type 1\n" "duplicate task";
  expect_error "graph g deadline -3\n" "line 1";
  expect_error "" "no graph directive"

let test_tgff_file_roundtrip () =
  let g = Benchmarks.load 0 in
  let path = Filename.temp_file "tats" ".tgff" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Tgff_io.save g path;
      match Tgff_io.load path with
      | Error msg -> Alcotest.failf "load failed: %s" msg
      | Ok g' ->
          Alcotest.(check int) "tasks" (Graph.n_tasks g) (Graph.n_tasks g');
          Alcotest.(check int) "edges" (Graph.n_edges g) (Graph.n_edges g'))

let prop_tgff_roundtrip_random =
  QCheck.Test.make ~name:"tgff roundtrip preserves structure" ~count:50
    QCheck.(pair small_int (int_range 2 30))
    (fun (seed, tasks) ->
      let lo, hi = Generator.feasible_edges ~n_tasks:tasks in
      let edges = lo + ((seed * 11) mod (Stdlib.max 1 (hi - lo + 1))) in
      let g =
        Generator.generate ~seed ~name:"q"
          { Generator.default_spec with Generator.n_tasks = tasks; n_edges = edges }
      in
      match Tgff_io.of_string (Tgff_io.to_string g) with
      | Error _ -> false
      | Ok g' ->
          Graph.n_tasks g' = tasks
          && Graph.n_edges g' = edges
          && List.for_all2
               (fun (a : Graph.edge) (b : Graph.edge) ->
                 a.Graph.src = b.Graph.src && a.Graph.dst = b.Graph.dst
                 && Float.abs (a.Graph.data -. b.Graph.data) < 1e-3)
               (Graph.edges g) (Graph.edges g'))

(* --- Cond scenario analysis ---------------------------------------------- *)

let fork_graph () =
  let b = Graph.builder ~name:"fork" ~deadline:100.0 in
  let t0 = Graph.add_task b ~task_type:0 () in
  let t1 = Graph.add_task b ~task_type:0 () in
  let t2 = Graph.add_task b ~task_type:0 () in
  Graph.add_edge b t0 t1;
  Graph.add_edge b t0 t2;
  Graph.build b

let test_annotate_random_prob_zero () =
  let g = fork_graph () in
  let c = Cond.annotate_random (Rng.create 1) ~fork_probability:0.0 g in
  Alcotest.(check (list int)) "no variables" [] (Cond.variables c);
  Alcotest.(check (list (pair int bool))) "one empty scenario" []
    (List.hd (Cond.scenarios c))

let test_annotate_random_prob_one () =
  let g = fork_graph () in
  let c = Cond.annotate_random (Rng.create 1) ~fork_probability:1.0 g in
  Alcotest.(check (list int)) "one variable" [ 0 ] (Cond.variables c);
  Alcotest.(check int) "two scenarios" 2 (List.length (Cond.scenarios c));
  Alcotest.(check bool) "branches exclusive" true (Cond.mutually_exclusive c 1 2)

let test_active_tasks_per_scenario () =
  let g = fork_graph () in
  let c = Cond.annotate_random (Rng.create 1) ~fork_probability:1.0 g in
  let active_true = Cond.active_tasks c [ (0, true) ] in
  let active_false = Cond.active_tasks c [ (0, false) ] in
  (* Task 0 is unconditional; exactly one branch active per scenario. *)
  Alcotest.(check bool) "t0 always active" true
    (List.mem 0 active_true && List.mem 0 active_false);
  Alcotest.(check int) "two active under true" 2 (List.length active_true);
  Alcotest.(check int) "two active under false" 2 (List.length active_false);
  Alcotest.(check bool) "different branches" true (active_true <> active_false)

let test_scenario_makespan () =
  let g = fork_graph () in
  let c = Cond.annotate_random (Rng.create 1) ~fork_probability:1.0 g in
  (* Pretend finishes: t0=10, t1=30, t2=50. *)
  let finish = function 0 -> 10.0 | 1 -> 30.0 | _ -> 50.0 in
  let scenario_with_1 =
    List.find (fun a -> List.mem 1 (Cond.active_tasks c a)) (Cond.scenarios c)
  in
  let scenario_with_2 =
    List.find (fun a -> List.mem 2 (Cond.active_tasks c a)) (Cond.scenarios c)
  in
  Alcotest.(check (float 1e-9)) "branch 1" 30.0
    (Cond.scenario_makespan c ~finish scenario_with_1);
  Alcotest.(check (float 1e-9)) "branch 2" 50.0
    (Cond.scenario_makespan c ~finish scenario_with_2)

let test_scenarios_limit () =
  (* A graph with many forks would explode; the limit must trip. *)
  let b = Graph.builder ~name:"many" ~deadline:100.0 in
  let root = Graph.add_task b ~task_type:0 () in
  let forks =
    List.init 9 (fun _ ->
        let f = Graph.add_task b ~task_type:0 () in
        let l = Graph.add_task b ~task_type:0 () in
        let r = Graph.add_task b ~task_type:0 () in
        Graph.add_edge b root f;
        Graph.add_edge b f l;
        Graph.add_edge b f r;
        f)
  in
  ignore (forks : Task.id list);
  let g = Graph.build b in
  let c = Cond.annotate_random (Rng.create 1) ~fork_probability:1.0 g in
  (* Nine sub-forks plus the root itself (it has nine successors). *)
  Alcotest.(check int) "ten variables" 10 (List.length (Cond.variables c));
  Alcotest.(check bool) "limit trips" true
    (try ignore (Cond.scenarios ~limit:256 c : (Cond.var * bool) list list); false
     with Invalid_argument _ -> true);
  Alcotest.(check int) "raised limit ok" 1024
    (List.length (Cond.scenarios ~limit:1024 c))

let () =
  Alcotest.run "extensions"
    [
      ( "sa_floorplan",
        [
          Alcotest.test_case "improves on initial" `Quick test_sa_improves_on_initial;
          Alcotest.test_case "deterministic" `Quick test_sa_deterministic;
          Alcotest.test_case "move accounting" `Quick test_sa_counts_moves;
          Alcotest.test_case "validation" `Quick test_sa_validation;
          Alcotest.test_case "sa vs ga ballpark" `Quick test_sa_vs_ga_same_ballpark;
        ] );
      ( "stack",
        [
          Alcotest.test_case "conservation" `Quick test_stack_conservation;
          Alcotest.test_case "gradient descends" `Quick test_stack_gradient_descends;
          Alcotest.test_case "agrees with compact" `Quick
            test_stack_hotspot_location_agrees_with_compact;
          Alcotest.test_case "monotone" `Quick test_stack_monotone_in_power;
          Alcotest.test_case "zero power" `Quick test_stack_zero_power_ambient;
          Alcotest.test_case "bad power" `Quick test_stack_rejects_bad_power;
        ] );
      ( "tgff",
        [
          Alcotest.test_case "roundtrip" `Quick test_tgff_roundtrip_diamond;
          Alcotest.test_case "comments/blanks" `Quick test_tgff_parse_comments_and_blanks;
          Alcotest.test_case "error lines" `Quick test_tgff_errors_carry_line_numbers;
          Alcotest.test_case "file roundtrip" `Quick test_tgff_file_roundtrip;
        ] );
      ( "cond_scenarios",
        [
          Alcotest.test_case "probability 0" `Quick test_annotate_random_prob_zero;
          Alcotest.test_case "probability 1" `Quick test_annotate_random_prob_one;
          Alcotest.test_case "active tasks" `Quick test_active_tasks_per_scenario;
          Alcotest.test_case "scenario makespan" `Quick test_scenario_makespan;
          Alcotest.test_case "scenario limit" `Quick test_scenarios_limit;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_tgff_roundtrip_random ]);
    ]
