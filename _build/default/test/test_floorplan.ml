(* Tests for Tats_floorplan: rectangle geometry, slicing-tree evaluation,
   the GA floorplanner, grid layouts. *)

module Block = Tats_floorplan.Block
module Placement = Tats_floorplan.Placement
module Slicing = Tats_floorplan.Slicing
module Ga = Tats_floorplan.Ga
module Grid = Tats_floorplan.Grid
module Rng = Tats_util.Rng

let rect x y w h = { Block.x; y; w; h }
let check_float = Alcotest.(check (float 1e-9))

(* --- Block geometry ----------------------------------------------------- *)

let test_rect_basics () =
  let r = rect 1.0 2.0 3.0 4.0 in
  check_float "area" 12.0 (Block.rect_area r);
  let cx, cy = Block.rect_center r in
  check_float "cx" 2.5 cx;
  check_float "cy" 4.0 cy

let test_overlap_area () =
  check_float "disjoint" 0.0 (Block.overlap_area (rect 0. 0. 1. 1.) (rect 2. 2. 1. 1.));
  check_float "quarter" 0.25
    (Block.overlap_area (rect 0. 0. 1. 1.) (rect 0.5 0.5 1. 1.));
  check_float "contained" 1.0 (Block.overlap_area (rect 0. 0. 2. 2.) (rect 0.5 0.5 1. 1.))

let test_shared_boundary_vertical () =
  (* Two unit squares side by side share a full vertical edge. *)
  check_float "full edge" 1.0 (Block.shared_boundary (rect 0. 0. 1. 1.) (rect 1. 0. 1. 1.));
  (* Offset by half: only half the edge is common. *)
  check_float "half edge" 0.5
    (Block.shared_boundary (rect 0. 0. 1. 1.) (rect 1. 0.5 1. 1.))

let test_shared_boundary_horizontal () =
  check_float "stacked" 1.0 (Block.shared_boundary (rect 0. 0. 1. 1.) (rect 0. 1. 1. 1.))

let test_shared_boundary_none () =
  check_float "gap" 0.0 (Block.shared_boundary (rect 0. 0. 1. 1.) (rect 1.5 0. 1. 1.));
  (* Corner contact has zero-length boundary. *)
  check_float "corner" 0.0 (Block.shared_boundary (rect 0. 0. 1. 1.) (rect 1. 1. 1. 1.))

let test_center_distance () =
  check_float "3-4-5" 5.0 (Block.center_distance (rect 0. 0. 2. 2.) (rect 3. 4. 2. 2.))

let test_block_validation () =
  let bad f = try ignore (f () : Block.t); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "zero area" true
    (bad (fun () -> Block.make ~name:"b" ~area:0.0 ()));
  Alcotest.(check bool) "bad aspects" true
    (bad (fun () -> Block.make ~name:"b" ~area:1.0 ~min_aspect:2.0 ~max_aspect:1.0 ()))

(* --- Slicing ------------------------------------------------------------ *)

let blocks n = Array.init n (fun i -> Block.make ~name:(Printf.sprintf "b%d" i) ~area:1e-6 ())

let test_validate_initial () =
  for n = 1 to 8 do
    match Slicing.validate ~n_blocks:n (Slicing.initial n) with
    | Ok () -> ()
    | Error e -> Alcotest.failf "initial %d invalid: %s" n e
  done

let test_validate_rejects () =
  let bad expr = Slicing.validate ~n_blocks:2 expr <> Ok () in
  Alcotest.(check bool) "wrong length" true (bad [| Slicing.Op 0 |]);
  Alcotest.(check bool) "repeated operand" true
    (bad [| Slicing.Op 0; Slicing.Op 0; Slicing.V |]);
  Alcotest.(check bool) "balloting" true (bad [| Slicing.Op 0; Slicing.V; Slicing.Op 1 |]);
  Alcotest.(check bool) "out of range" true
    (bad [| Slicing.Op 0; Slicing.Op 5; Slicing.V |])

let test_evaluate_two_blocks_v () =
  let bs = blocks 2 in
  let p = Slicing.evaluate bs [| Slicing.Op 0; Slicing.Op 1; Slicing.V |] in
  Alcotest.(check bool) "no overlap" false (Placement.has_overlap p);
  (* V places side by side: total width is the sum at equal heights. *)
  let r0 = p.Placement.rects.(0) and r1 = p.Placement.rects.(1) in
  Alcotest.(check bool) "b1 right of b0" true (r1.Block.x >= r0.Block.x +. r0.Block.w -. 1e-12)

let test_evaluate_two_blocks_h () =
  let bs = blocks 2 in
  let p = Slicing.evaluate bs [| Slicing.Op 0; Slicing.Op 1; Slicing.H |] in
  let r0 = p.Placement.rects.(0) and r1 = p.Placement.rects.(1) in
  Alcotest.(check bool) "b1 above b0" true (r1.Block.y >= r0.Block.y +. r0.Block.h -. 1e-12)

let test_evaluate_preserves_areas () =
  let bs = blocks 5 in
  let p = Slicing.evaluate bs (Slicing.initial 5) in
  Array.iteri
    (fun i r ->
      Alcotest.(check bool) "area preserved" true
        (Float.abs (Block.rect_area r -. bs.(i).Block.area) < 1e-12))
    p.Placement.rects

let test_evaluate_respects_aspect_bounds () =
  let bs =
    Array.init 3 (fun i ->
        Block.make ~name:(string_of_int i) ~area:2e-6 ~min_aspect:0.5 ~max_aspect:2.0 ())
  in
  let p = Slicing.evaluate bs (Slicing.initial 3) in
  Array.iter
    (fun r ->
      let aspect = r.Block.w /. r.Block.h in
      Alcotest.(check bool) "aspect in bounds" true (aspect >= 0.49 && aspect <= 2.01))
    p.Placement.rects

let test_evaluate_rejects_invalid () =
  Alcotest.(check bool) "invalid expr" true
    (try
       ignore (Slicing.evaluate (blocks 2) [| Slicing.Op 0; Slicing.V; Slicing.Op 1 |]
               : Placement.t);
       false
     with Invalid_argument _ -> true)

let prop_random_exprs_valid =
  QCheck.Test.make ~name:"random expressions validate and evaluate overlap-free"
    ~count:100
    QCheck.(pair small_int (int_range 1 12))
    (fun (seed, n) ->
      let rng = Rng.create (seed + 11) in
      let expr = Slicing.random rng n in
      match Slicing.validate ~n_blocks:n expr with
      | Error _ -> false
      | Ok () ->
          let p = Slicing.evaluate (blocks n) expr in
          not (Placement.has_overlap p))

(* --- Placement ---------------------------------------------------------- *)

let test_placement_die_and_dead_space () =
  let bs = blocks 2 in
  let p =
    Placement.make ~blocks:bs ~rects:[| rect 0. 0. 1e-3 1e-3; rect 1e-3 0. 1e-3 1e-3 |]
  in
  check_float "die w" 2e-3 p.Placement.die_w;
  check_float "die h" 1e-3 p.Placement.die_h;
  (* blocks are 1e-6 each, die is 2e-6: zero dead space. *)
  check_float "dead space" 0.0 (Placement.dead_space_ratio p)

let test_placement_overlap_detection () =
  let bs = blocks 2 in
  let p = Placement.make ~blocks:bs ~rects:[| rect 0. 0. 1. 1.; rect 0.5 0.5 1. 1. |] in
  Alcotest.(check bool) "overlap" true (Placement.has_overlap p)

let test_wirelength () =
  let bs = blocks 2 in
  let p = Placement.make ~blocks:bs ~rects:[| rect 0. 0. 2. 2.; rect 3. 4. 2. 2. |] in
  check_float "clique wl" 5.0 (Placement.total_wirelength p);
  check_float "explicit net" 5.0 (Placement.total_wirelength ~nets:[ (0, 1) ] p);
  check_float "no nets" 0.0 (Placement.total_wirelength ~nets:[] p)

(* --- Ga ----------------------------------------------------------------- *)

let area_cost p = Placement.die_area p

let test_ga_beats_or_matches_initial () =
  let bs =
    Array.init 7 (fun i ->
        Block.make ~name:(string_of_int i) ~area:((float_of_int i +. 1.0) *. 1e-6) ())
  in
  let initial_cost = area_cost (Slicing.evaluate bs (Slicing.initial 7)) in
  let r = Ga.run ~seed:1 ~blocks:bs ~cost:area_cost () in
  Alcotest.(check bool) "ga <= initial" true (r.Ga.best_cost <= initial_cost +. 1e-15);
  Alcotest.(check bool) "result overlap-free" false (Placement.has_overlap r.Ga.best_placement)

let test_ga_history_monotone () =
  let bs = blocks 6 in
  let r = Ga.run ~seed:2 ~blocks:bs ~cost:area_cost () in
  let ok = ref true in
  for i = 1 to Array.length r.Ga.history - 1 do
    if r.Ga.history.(i) > r.Ga.history.(i - 1) +. 1e-15 then ok := false
  done;
  Alcotest.(check bool) "elitism keeps best" true !ok

let test_ga_deterministic () =
  let bs = blocks 5 in
  let a = Ga.run ~seed:3 ~blocks:bs ~cost:area_cost () in
  let b = Ga.run ~seed:3 ~blocks:bs ~cost:area_cost () in
  Alcotest.(check (float 0.0)) "same result" a.Ga.best_cost b.Ga.best_cost

let test_ga_single_block () =
  let bs = blocks 1 in
  let r = Ga.run ~seed:4 ~blocks:bs ~cost:area_cost () in
  Alcotest.(check bool) "area = block area" true
    (Float.abs (Placement.die_area r.Ga.best_placement -. 1e-6) < 1e-12)

let test_ga_validation () =
  let bad f = try ignore (f () : Ga.result); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "empty blocks" true
    (bad (fun () -> Ga.run ~seed:1 ~blocks:[||] ~cost:area_cost ()));
  Alcotest.(check bool) "elite >= population" true
    (bad (fun () ->
         Ga.run
           ~params:{ Ga.default_params with Ga.population = 4; elite = 4 }
           ~seed:1 ~blocks:(blocks 3) ~cost:area_cost ()))

let test_ga_respects_thermal_style_cost () =
  (* A cost that punishes block 0 and 1 being adjacent: the GA should
     separate them. *)
  let bs = blocks 4 in
  let cost p =
    Placement.die_area p
    +. (1e-4 *. Block.shared_boundary p.Placement.rects.(0) p.Placement.rects.(1))
  in
  let r = Ga.run ~seed:5 ~blocks:bs ~cost () in
  let shared = Block.shared_boundary r.Ga.best_placement.Placement.rects.(0)
      r.Ga.best_placement.Placement.rects.(1) in
  Alcotest.(check (float 1e-12)) "hot blocks separated" 0.0 shared

(* --- Grid --------------------------------------------------------------- *)

let test_grid_identical_blocks_abut () =
  let bs = blocks 4 in
  let p = Grid.layout bs in
  Alcotest.(check bool) "no overlap" false (Placement.has_overlap p);
  (* 2x2 grid of identical squares: horizontal neighbours share a full edge. *)
  let side = Grid.square_of_area 1e-6 in
  Alcotest.(check (float 1e-12)) "abutting"
    side
    (Block.shared_boundary p.Placement.rects.(0) p.Placement.rects.(1))

let test_grid_heterogeneous_centered () =
  let bs =
    [| Block.make ~name:"big" ~area:4e-6 (); Block.make ~name:"small" ~area:1e-6 () |]
  in
  let p = Grid.layout bs in
  Alcotest.(check bool) "no overlap" false (Placement.has_overlap p);
  (* The small block sits inside its tile, so its area is preserved. *)
  Alcotest.(check bool) "areas preserved" true
    (Float.abs (Block.rect_area p.Placement.rects.(1) -. 1e-6) < 1e-18)

let test_grid_row_wrapping () =
  let p = Grid.layout (blocks 5) in
  (* 5 blocks on a 3-wide grid: block 3 starts the second row. *)
  let r0 = p.Placement.rects.(0) and r3 = p.Placement.rects.(3) in
  Alcotest.(check (float 1e-12)) "same column" r0.Block.x r3.Block.x;
  Alcotest.(check bool) "next row" true (r3.Block.y > r0.Block.y)

let () =
  Alcotest.run "tats_floorplan"
    [
      ( "geometry",
        [
          Alcotest.test_case "rect basics" `Quick test_rect_basics;
          Alcotest.test_case "overlap area" `Quick test_overlap_area;
          Alcotest.test_case "shared boundary vertical" `Quick
            test_shared_boundary_vertical;
          Alcotest.test_case "shared boundary horizontal" `Quick
            test_shared_boundary_horizontal;
          Alcotest.test_case "no boundary" `Quick test_shared_boundary_none;
          Alcotest.test_case "center distance" `Quick test_center_distance;
          Alcotest.test_case "block validation" `Quick test_block_validation;
        ] );
      ( "slicing",
        [
          Alcotest.test_case "initial valid" `Quick test_validate_initial;
          Alcotest.test_case "invalid rejected" `Quick test_validate_rejects;
          Alcotest.test_case "V cut" `Quick test_evaluate_two_blocks_v;
          Alcotest.test_case "H cut" `Quick test_evaluate_two_blocks_h;
          Alcotest.test_case "areas preserved" `Quick test_evaluate_preserves_areas;
          Alcotest.test_case "aspect bounds" `Quick test_evaluate_respects_aspect_bounds;
          Alcotest.test_case "invalid evaluate" `Quick test_evaluate_rejects_invalid;
        ] );
      ( "placement",
        [
          Alcotest.test_case "die/dead space" `Quick test_placement_die_and_dead_space;
          Alcotest.test_case "overlap detection" `Quick test_placement_overlap_detection;
          Alcotest.test_case "wirelength" `Quick test_wirelength;
        ] );
      ( "ga",
        [
          Alcotest.test_case "beats initial" `Quick test_ga_beats_or_matches_initial;
          Alcotest.test_case "history monotone" `Quick test_ga_history_monotone;
          Alcotest.test_case "deterministic" `Quick test_ga_deterministic;
          Alcotest.test_case "single block" `Quick test_ga_single_block;
          Alcotest.test_case "validation" `Quick test_ga_validation;
          Alcotest.test_case "custom cost steers" `Quick
            test_ga_respects_thermal_style_cost;
        ] );
      ( "grid",
        [
          Alcotest.test_case "identical abut" `Quick test_grid_identical_blocks_abut;
          Alcotest.test_case "heterogeneous centered" `Quick
            test_grid_heterogeneous_centered;
          Alcotest.test_case "row wrapping" `Quick test_grid_row_wrapping;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_random_exprs_valid ]);
    ]
