(* Tests for Tats_taskgraph: graph construction, criticality, the TGFF-style
   generator, the paper's benchmark suite, conditional task graphs, DOT. *)

module Task = Tats_taskgraph.Task
module Graph = Tats_taskgraph.Graph
module Criticality = Tats_taskgraph.Criticality
module Generator = Tats_taskgraph.Generator
module Benchmarks = Tats_taskgraph.Benchmarks
module Cond = Tats_taskgraph.Cond
module Dot = Tats_taskgraph.Dot

(* A small diamond: 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3. *)
let diamond () =
  let b = Graph.builder ~name:"diamond" ~deadline:100.0 in
  let t0 = Graph.add_task b ~task_type:0 () in
  let t1 = Graph.add_task b ~task_type:1 () in
  let t2 = Graph.add_task b ~task_type:2 () in
  let t3 = Graph.add_task b ~task_type:0 () in
  Graph.add_edge b ~data:10.0 t0 t1;
  Graph.add_edge b ~data:20.0 t0 t2;
  Graph.add_edge b t1 t3;
  Graph.add_edge b t2 t3;
  Graph.build b

(* --- Construction ------------------------------------------------------- *)

let test_basic_accessors () =
  let g = diamond () in
  Alcotest.(check int) "tasks" 4 (Graph.n_tasks g);
  Alcotest.(check int) "edges" 4 (Graph.n_edges g);
  Alcotest.(check string) "name" "diamond" (Graph.name g);
  Alcotest.(check (float 0.0)) "deadline" 100.0 (Graph.deadline g);
  Alcotest.(check (list int)) "sources" [ 0 ] (Graph.sources g);
  Alcotest.(check (list int)) "sinks" [ 3 ] (Graph.sinks g);
  Alcotest.(check bool) "has_edge" true (Graph.has_edge g 0 1);
  Alcotest.(check bool) "no reverse edge" false (Graph.has_edge g 1 0)

let test_edge_data_preserved () =
  let g = diamond () in
  match List.find_opt (fun e -> e.Graph.src = 0 && e.Graph.dst = 2) (Graph.edges g) with
  | Some e -> Alcotest.(check (float 0.0)) "data" 20.0 e.Graph.data
  | None -> Alcotest.fail "edge 0->2 missing"

let test_builder_rejects_cycle () =
  let b = Graph.builder ~name:"cyc" ~deadline:10.0 in
  let t0 = Graph.add_task b ~task_type:0 () in
  let t1 = Graph.add_task b ~task_type:0 () in
  Graph.add_edge b t0 t1;
  Graph.add_edge b t1 t0;
  Alcotest.check_raises "cycle" (Invalid_argument "Graph.build: cyclic graph")
    (fun () -> ignore (Graph.build b : Graph.t))

let test_builder_rejects_bad_edges () =
  let b = Graph.builder ~name:"bad" ~deadline:10.0 in
  let t0 = Graph.add_task b ~task_type:0 () in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> Graph.add_edge b t0 t0);
  Alcotest.check_raises "unknown endpoint"
    (Invalid_argument "Graph.add_edge: unknown endpoint") (fun () ->
      Graph.add_edge b t0 5);
  let t1 = Graph.add_task b ~task_type:0 () in
  Graph.add_edge b t0 t1;
  Alcotest.check_raises "duplicate" (Invalid_argument "Graph.add_edge: duplicate edge")
    (fun () -> Graph.add_edge b t0 t1)

let test_builder_rejects_bad_deadline () =
  Alcotest.check_raises "deadline"
    (Invalid_argument "Graph.builder: non-positive deadline") (fun () ->
      ignore (Graph.builder ~name:"x" ~deadline:0.0 : Graph.builder))

let test_topological_order_diamond () =
  let g = diamond () in
  let order = Graph.topological_order g in
  let pos = Array.make 4 0 in
  Array.iteri (fun k v -> pos.(v) <- k) order;
  List.iter
    (fun { Graph.src; dst; _ } ->
      Alcotest.(check bool) "edge respects order" true (pos.(src) < pos.(dst)))
    (Graph.edges g)

let test_connectivity_and_depth () =
  let g = diamond () in
  Alcotest.(check bool) "connected" true (Graph.is_weakly_connected g);
  Alcotest.(check int) "longest chain" 3 (Graph.longest_path_hops g)

(* --- Criticality -------------------------------------------------------- *)

let test_sc_unit_weights () =
  let g = diamond () in
  let sc = Criticality.compute ~node_weight:(fun _ -> 1.0) g in
  Alcotest.(check (float 1e-9)) "sink" 1.0 sc.(3);
  Alcotest.(check (float 1e-9)) "middle" 2.0 sc.(1);
  Alcotest.(check (float 1e-9)) "source" 3.0 sc.(0)

let test_sc_weighted () =
  (* Type 1 heavier than type 2 at node weight = task_type weight below. *)
  let g = diamond () in
  let w (t : Task.t) = if t.Task.task_type = 1 then 10.0 else 1.0 in
  let sc = Criticality.compute ~node_weight:w g in
  (* Longest path from 0 goes through task 1 (weight 10). *)
  Alcotest.(check (float 1e-9)) "through heavy branch" 12.0 sc.(0)

let test_sc_edge_weights () =
  let g = diamond () in
  let sc =
    Criticality.compute
      ~edge_weight:(fun e -> e.Graph.data)
      ~node_weight:(fun _ -> 1.0)
      g
  in
  (* 0 -> 2 carries 20 bytes: path 0(1) + 20 + 2(1) + 0 + 3(1) = 23. *)
  Alcotest.(check (float 1e-9)) "comm-weighted" 23.0 sc.(0)

let test_hop_distance () =
  let g = diamond () in
  Alcotest.(check (array int)) "hops" [| 3; 2; 2; 1 |] (Criticality.hop_distance g)

let test_rank_order () =
  let order = Criticality.rank_order [| 5.0; 9.0; 9.0; 1.0 |] in
  Alcotest.(check (array int)) "desc with ties by id" [| 1; 2; 0; 3 |] order

(* --- Generator ---------------------------------------------------------- *)

let spec ~tasks ~edges =
  {
    Generator.default_spec with
    Generator.n_tasks = tasks;
    n_edges = edges;
    deadline = 500.0;
  }

let test_generator_counts () =
  let g = Generator.generate ~seed:1 ~name:"g" (spec ~tasks:25 ~edges:40) in
  Alcotest.(check int) "tasks" 25 (Graph.n_tasks g);
  Alcotest.(check int) "edges" 40 (Graph.n_edges g)

let test_generator_determinism () =
  let a = Generator.generate ~seed:5 ~name:"a" (spec ~tasks:20 ~edges:30) in
  let b = Generator.generate ~seed:5 ~name:"b" (spec ~tasks:20 ~edges:30) in
  Alcotest.(check bool) "same edges" true
    (List.for_all2
       (fun (e1 : Graph.edge) (e2 : Graph.edge) ->
         e1.Graph.src = e2.Graph.src && e1.Graph.dst = e2.Graph.dst)
       (Graph.edges a) (Graph.edges b))

let test_generator_seed_changes_graph () =
  let a = Generator.generate ~seed:5 ~name:"a" (spec ~tasks:20 ~edges:30) in
  let b = Generator.generate ~seed:6 ~name:"b" (spec ~tasks:20 ~edges:30) in
  let key g =
    List.map (fun (e : Graph.edge) -> (e.Graph.src, e.Graph.dst)) (Graph.edges g)
  in
  Alcotest.(check bool) "different seeds differ" true (key a <> key b)

let test_generator_rejects_infeasible () =
  Alcotest.(check bool) "too few edges" true
    (try
       ignore (Generator.generate ~seed:1 ~name:"x" (spec ~tasks:10 ~edges:3) : Graph.t);
       false
     with Invalid_argument _ -> true)

let test_feasible_edges () =
  let lo, hi = Generator.feasible_edges ~n_tasks:10 in
  Alcotest.(check int) "lo" 9 lo;
  Alcotest.(check int) "hi" 45 hi

let prop_generator_valid =
  QCheck.Test.make ~name:"generated graphs are connected DAGs with exact counts"
    ~count:60
    QCheck.(pair small_int (int_range 2 40))
    (fun (seed, tasks) ->
      let lo, hi = Generator.feasible_edges ~n_tasks:tasks in
      let edges = lo + ((seed * 13) mod (hi - lo + 1)) in
      let g = Generator.generate ~seed ~name:"q" (spec ~tasks ~edges) in
      Graph.n_tasks g = tasks
      && Graph.n_edges g = edges
      && Graph.is_weakly_connected g
      && Array.length (Graph.topological_order g) = tasks)

(* --- Benchmarks --------------------------------------------------------- *)

let test_benchmark_descriptors_match_paper () =
  let expect = [ ("Bm1", 19, 19, 790.0); ("Bm2", 35, 40, 1500.0);
                 ("Bm3", 39, 43, 1650.0); ("Bm4", 51, 60, 2000.0) ] in
  List.iteri
    (fun i (name, tasks, edges, deadline) ->
      let d = Benchmarks.descriptors.(i) in
      Alcotest.(check string) "name" name d.Benchmarks.bench_name;
      Alcotest.(check int) "tasks" tasks d.Benchmarks.tasks;
      Alcotest.(check int) "edges" edges d.Benchmarks.edges;
      Alcotest.(check (float 0.0)) "deadline" deadline d.Benchmarks.deadline;
      let g = Benchmarks.load i in
      Alcotest.(check int) "graph tasks" tasks (Graph.n_tasks g);
      Alcotest.(check int) "graph edges" edges (Graph.n_edges g))
    expect

let test_benchmark_by_name () =
  let g = Benchmarks.by_name "Bm3" in
  Alcotest.(check int) "Bm3 tasks" 39 (Graph.n_tasks g);
  Alcotest.(check bool) "unknown raises" true
    (try ignore (Benchmarks.by_name "nope" : Graph.t); false
     with Not_found -> true)

let test_benchmark_task_types_in_range () =
  Array.iter
    (fun g ->
      Array.iter
        (fun (t : Task.t) ->
          Alcotest.(check bool) "type in range" true
            (t.Task.task_type >= 0 && t.Task.task_type < Benchmarks.n_task_types))
        (Graph.tasks g))
    (Benchmarks.all ())

(* --- Conditional task graphs ------------------------------------------- *)

(* 0 branches on variable 0: true -> 1, false -> 2; both rejoin at 3 via a
   second diamond-like structure (3 unconditional from 0). *)
let cond_graph () =
  let b = Graph.builder ~name:"cond" ~deadline:100.0 in
  let t0 = Graph.add_task b ~task_type:0 () in
  let t1 = Graph.add_task b ~task_type:0 () in
  let t2 = Graph.add_task b ~task_type:0 () in
  let t3 = Graph.add_task b ~task_type:0 () in
  let t4 = Graph.add_task b ~task_type:0 () in
  Graph.add_edge b t0 t1;
  Graph.add_edge b t0 t2;
  Graph.add_edge b t0 t3;
  Graph.add_edge b t1 t4;
  Graph.add_edge b t2 t4;
  let g = Graph.build b in
  (g, Cond.make g [ (t0, t1, 0, true); (t0, t2, 0, false) ])

let test_cond_guards () =
  let _, c = cond_graph () in
  Alcotest.(check (list (pair int bool))) "guard of 1" [ (0, true) ] (Cond.guard_of c 1);
  Alcotest.(check (list (pair int bool))) "guard of 2" [ (0, false) ] (Cond.guard_of c 2);
  Alcotest.(check (list (pair int bool))) "unconditional" [] (Cond.guard_of c 3)

let test_cond_rejoin_cancels () =
  (* Task 4 is reached both under v0=true (via 1) and v0=false (via 2): the
     conflicting literals cancel and 4 is unconditional. *)
  let _, c = cond_graph () in
  Alcotest.(check (list (pair int bool))) "rejoin" [] (Cond.guard_of c 4)

let test_cond_exclusion () =
  let _, c = cond_graph () in
  Alcotest.(check bool) "1 and 2 exclusive" true (Cond.mutually_exclusive c 1 2);
  Alcotest.(check bool) "1 and 3 not" false (Cond.mutually_exclusive c 1 3);
  Alcotest.(check (list (pair int int))) "pairs" [ (1, 2) ] (Cond.exclusion_pairs c)

let test_cond_rejects_bad_edge () =
  let g = diamond () in
  Alcotest.(check bool) "bad edge" true
    (try ignore (Cond.make g [ (3, 0, 0, true) ] : Cond.t); false
     with Invalid_argument _ -> true)

(* --- Cluster ------------------------------------------------------------ *)

module Cluster = Tats_taskgraph.Cluster

(* A chain with a heavy middle edge plus a light side branch. *)
let chain_with_branch () =
  let b = Graph.builder ~name:"chain" ~deadline:100.0 in
  let t0 = Graph.add_task b ~task_type:0 () in
  let t1 = Graph.add_task b ~task_type:1 () in
  let t2 = Graph.add_task b ~task_type:2 () in
  let t3 = Graph.add_task b ~task_type:3 () in
  Graph.add_edge b ~data:100.0 t0 t1;
  Graph.add_edge b ~data:100.0 t1 t2;
  Graph.add_edge b ~data:1.0 t0 t3;
  Graph.build b

let test_cluster_merges_heavy_chain () =
  let g = chain_with_branch () in
  let c = Cluster.linear ~threshold:10.0 g in
  (* 0-1-2 fuse into one cluster; 3 stays alone. *)
  Alcotest.(check int) "two clusters" 2 (Graph.n_tasks c.Cluster.clustered);
  Alcotest.(check int) "same cluster 0/1" c.Cluster.cluster_of.(0)
    c.Cluster.cluster_of.(1);
  Alcotest.(check int) "same cluster 1/2" c.Cluster.cluster_of.(1)
    c.Cluster.cluster_of.(2);
  Alcotest.(check bool) "3 apart" true
    (c.Cluster.cluster_of.(3) <> c.Cluster.cluster_of.(0));
  Alcotest.(check (float 1e-9)) "internalized" 200.0 c.Cluster.internalized_data;
  (match Cluster.validate c g with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invalid clustering: %s" m)

let test_cluster_threshold_blocks_merges () =
  let g = chain_with_branch () in
  let c = Cluster.linear ~threshold:1000.0 g in
  Alcotest.(check int) "nothing merged" 4 (Graph.n_tasks c.Cluster.clustered);
  Alcotest.(check (float 1e-9)) "nothing internalized" 0.0 c.Cluster.internalized_data

let test_cluster_never_creates_cycle () =
  (* The diamond: merging 0-1 and then 1-3 would strand 2 in a cycle if
     unchecked; the result must stay a DAG (Graph.build would raise). *)
  let g = diamond () in
  let c = Cluster.linear g in
  Alcotest.(check bool) "clustered is a DAG" true
    (Array.length (Graph.topological_order c.Cluster.clustered)
    = Graph.n_tasks c.Cluster.clustered);
  (match Cluster.validate c g with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invalid: %s" m)

let test_cluster_lift_assignment () =
  let g = chain_with_branch () in
  let c = Cluster.linear ~threshold:10.0 g in
  let lifted = Cluster.lift_assignment c ~cluster_assignment:[| 7; 9 |] in
  Alcotest.(check int) "task 0 follows its cluster" lifted.(0)
    lifted.(1);
  Alcotest.(check bool) "branch may differ" true (Array.length lifted = 4)

let test_cluster_types_are_dense () =
  let g = chain_with_branch () in
  let c = Cluster.linear ~threshold:10.0 g in
  Array.iteri
    (fun i (t : Task.t) -> Alcotest.(check int) "type = cluster id" i t.Task.task_type)
    (Graph.tasks c.Cluster.clustered);
  let types = Cluster.member_types c g in
  Alcotest.(check int) "one list per cluster" (Graph.n_tasks c.Cluster.clustered)
    (Array.length types);
  Alcotest.(check (list int)) "chain types in order" [ 0; 1; 2 ] types.(0)

let prop_cluster_valid_on_random_graphs =
  QCheck.Test.make ~name:"linear clustering is structurally sound" ~count:60
    QCheck.(pair small_int (int_range 2 30))
    (fun (seed, tasks) ->
      let lo, hi = Generator.feasible_edges ~n_tasks:tasks in
      let edges = lo + ((seed * 5) mod (Stdlib.max 1 (hi - lo + 1))) in
      let g = Generator.generate ~seed ~name:"q" (spec ~tasks ~edges) in
      let c = Cluster.linear g in
      Cluster.validate c g = Ok ()
      && Array.length (Graph.topological_order c.Cluster.clustered)
         = Graph.n_tasks c.Cluster.clustered)

(* --- Dot ---------------------------------------------------------------- *)

let test_dot_contains_nodes_and_edges () =
  let g = diamond () in
  let dot = Dot.to_dot g in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  let contains needle =
    let ln = String.length needle and lh = String.length dot in
    let rec scan i = i + ln <= lh && (String.sub dot i ln = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "node" true (contains "n0 [label=");
  Alcotest.(check bool) "edge" true (contains "n0 -> n1")

let () =
  Alcotest.run "tats_taskgraph"
    [
      ( "graph",
        [
          Alcotest.test_case "accessors" `Quick test_basic_accessors;
          Alcotest.test_case "edge data" `Quick test_edge_data_preserved;
          Alcotest.test_case "cycle rejected" `Quick test_builder_rejects_cycle;
          Alcotest.test_case "bad edges rejected" `Quick test_builder_rejects_bad_edges;
          Alcotest.test_case "bad deadline rejected" `Quick
            test_builder_rejects_bad_deadline;
          Alcotest.test_case "topological order" `Quick test_topological_order_diamond;
          Alcotest.test_case "connectivity/depth" `Quick test_connectivity_and_depth;
        ] );
      ( "criticality",
        [
          Alcotest.test_case "unit weights" `Quick test_sc_unit_weights;
          Alcotest.test_case "node weights" `Quick test_sc_weighted;
          Alcotest.test_case "edge weights" `Quick test_sc_edge_weights;
          Alcotest.test_case "hop distance" `Quick test_hop_distance;
          Alcotest.test_case "rank order" `Quick test_rank_order;
        ] );
      ( "generator",
        [
          Alcotest.test_case "exact counts" `Quick test_generator_counts;
          Alcotest.test_case "determinism" `Quick test_generator_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_generator_seed_changes_graph;
          Alcotest.test_case "infeasible rejected" `Quick
            test_generator_rejects_infeasible;
          Alcotest.test_case "feasible bounds" `Quick test_feasible_edges;
        ] );
      ( "benchmarks",
        [
          Alcotest.test_case "paper descriptors" `Quick
            test_benchmark_descriptors_match_paper;
          Alcotest.test_case "by name" `Quick test_benchmark_by_name;
          Alcotest.test_case "task types" `Quick test_benchmark_task_types_in_range;
        ] );
      ( "conditional",
        [
          Alcotest.test_case "guards" `Quick test_cond_guards;
          Alcotest.test_case "rejoin cancels" `Quick test_cond_rejoin_cancels;
          Alcotest.test_case "exclusion" `Quick test_cond_exclusion;
          Alcotest.test_case "bad edge rejected" `Quick test_cond_rejects_bad_edge;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "heavy chain merges" `Quick test_cluster_merges_heavy_chain;
          Alcotest.test_case "threshold blocks" `Quick test_cluster_threshold_blocks_merges;
          Alcotest.test_case "never cyclic" `Quick test_cluster_never_creates_cycle;
          Alcotest.test_case "lift assignment" `Quick test_cluster_lift_assignment;
          Alcotest.test_case "dense fresh types" `Quick test_cluster_types_are_dense;
        ] );
      ("dot", [ Alcotest.test_case "render" `Quick test_dot_contains_nodes_and_edges ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_generator_valid; prop_cluster_valid_on_random_graphs ] );
    ]
