(* tats — command-line interface to the thermal-aware task allocation and
   scheduling library.

   Subcommands regenerate the paper's tables, run single scheduling
   experiments, inspect the thermal model and the floorplanner, and export
   task graphs.  `tats <cmd> --help` documents each one. *)

open Cmdliner

(* --- shared arguments --------------------------------------------------- *)

let bench_arg =
  let doc = "Benchmark: Bm1, Bm2, Bm3 or Bm4 (the paper's suite)." in
  Arg.(value & opt string "Bm1" & info [ "b"; "bench" ] ~docv:"BM" ~doc)

let policy_arg =
  let doc = "Policy: baseline, h1, h2, h3 or thermal." in
  Arg.(value & opt string "thermal" & info [ "p"; "policy" ] ~docv:"POLICY" ~doc)

let arch_arg =
  let doc = "Architecture: platform (4 identical PEs) or cosynth." in
  Arg.(value & opt string "platform" & info [ "a"; "arch" ] ~docv:"ARCH" ~doc)

let csv_arg =
  let doc = "Emit CSV instead of the formatted table." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let jobs_arg =
  let doc =
    "Size of the execution pool (domains) used for parallel sections — \
     table cells, GA fitness evaluation, Monte-Carlo replications, SA \
     restarts. Defaults to the number of cores; results are identical at \
     any value."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let set_jobs = function Some j -> Core.Pool.set_default_jobs j | None -> ()

let trace_arg =
  let doc =
    "Record a Chrome trace_event timeline of the run and write it to \
     $(docv) — load it in chrome://tracing or Perfetto. Spans cover \
     co-synthesis iterations, scheduler steps, thermal inquiry solves and \
     pool tasks; with the flag absent the instrumentation is disabled and \
     outputs are bit-identical."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write the process metrics registry — counters (inquiry cache \
     hits/misses, scheduler steps, LU/CG solves), gauges and latency \
     histograms with p50/p95/p99 — to $(docv) as JSON."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

(* Bracket a subcommand body with trace recording and exporter writes.
   The exports run in a [Fun.protect] finalizer so a failing run still
   leaves whatever was recorded on disk. *)
let with_observability ~trace ~metrics f =
  (match trace with Some _ -> Core.Trace.start () | None -> ());
  let finish () =
    (match trace with
    | Some path ->
        Core.Trace.stop ();
        Core.Trace.export_chrome path;
        Format.eprintf "tats: wrote %d spans to %s@." (Core.Trace.span_count ())
          path
    | None -> ());
    match metrics with
    | Some path ->
        Core.Metricsreg.export path;
        Format.eprintf "tats: wrote metrics to %s@." path
    | None -> ()
  in
  Fun.protect ~finally:finish f

let parse_bench name =
  match name with
  | "Bm1" -> Ok 0
  | "Bm2" -> Ok 1
  | "Bm3" -> Ok 2
  | "Bm4" -> Ok 3
  | other -> Error (Printf.sprintf "unknown benchmark %S (want Bm1..Bm4)" other)

let parse_policy name =
  match Core.Policy.of_name name with
  | Some p -> Ok p
  | None -> Error (Printf.sprintf "unknown policy %S" name)

let or_die = function
  | Ok v -> v
  | Error msg ->
      prerr_endline ("tats: " ^ msg);
      exit 2

(* --- heterogeneous-platform arguments ------------------------------------ *)

let parse_platform name =
  match Core.Catalog.platform_named name with
  | Some p -> Ok p
  | None ->
      Error
        (Printf.sprintf "unknown platform %S (want one of %s)" name
           (String.concat ", " (Core.Catalog.platform_names ())))

(* "T:V" pairs for --pin/--pin-kind/--isolate. *)
let parse_pair ~flag ~rhs s =
  match String.split_on_char ':' s with
  | [ a; b ] -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some a, Some b -> Ok (a, b)
      | _ -> Error (Printf.sprintf "--%s wants TASK:%s (two integers)" flag rhs))
  | _ -> Error (Printf.sprintf "--%s wants TASK:%s" flag rhs)

let parse_constraints ~pins ~pin_kinds ~isolate =
  let pair flag rhs s = or_die (parse_pair ~flag ~rhs s) in
  {
    Core.Constraints.pins =
      List.map
        (fun s ->
          let t, p = pair "pin" "PE" s in
          (t, Core.Constraints.To_pe p))
        pins
      @ List.map
          (fun s ->
            let t, k = pair "pin-kind" "KIND" s in
            (t, Core.Constraints.To_kind k))
          pin_kinds;
    isolation = List.map (pair "isolate" "CLASS") isolate;
  }

let platform_arg =
  let doc =
    "Typed (possibly heterogeneous) builtin platform: std4, biglittle4 or \
     mixed6. Overrides the default 4-identical-PE platform; the library \
     gains one WCET/WCPC column per core kind. Platform architecture only."
  in
  Arg.(value & opt (some string) None
       & info [ "platform" ] ~docv:"NAME" ~doc)

let pin_arg =
  Arg.(value & opt_all string []
       & info [ "pin" ] ~docv:"TASK:PE"
           ~doc:"Pin a task to one PE slot (repeatable).")

let pin_kind_arg =
  Arg.(value & opt_all string []
       & info [ "pin-kind" ] ~docv:"TASK:KIND"
           ~doc:"Restrict a task to PEs of one core kind (repeatable).")

let isolate_arg =
  Arg.(value & opt_all string []
       & info [ "isolate" ] ~docv:"TASK:CLASS"
           ~doc:"Assign a task to a criticality class; distinct classes \
                 never share a PE (repeatable).")

(* --- table commands ----------------------------------------------------- *)

let table1_cmd =
  let run csv jobs trace metrics =
    set_jobs jobs;
    with_observability ~trace ~metrics @@ fun () ->
    let rows = Core.Experiments.table1 () in
    print_string
      (if csv then Core.Report.table1_csv rows else Core.Report.table1 rows)
  in
  Cmd.v
    (Cmd.info "table1"
       ~doc:"Regenerate Table 1 (power heuristics on both architectures).")
    Term.(const run $ csv_arg $ jobs_arg $ trace_arg $ metrics_arg)

let versus_cmd name doc compute render render_csv =
  let run csv jobs trace metrics =
    set_jobs jobs;
    with_observability ~trace ~metrics @@ fun () ->
    let rows = compute () in
    print_string (if csv then render_csv rows else render rows)
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(const run $ csv_arg $ jobs_arg $ trace_arg $ metrics_arg)

let table2_cmd =
  versus_cmd "table2"
    "Regenerate Table 2 (power vs thermal, co-synthesis architecture)."
    (fun () -> Core.Experiments.table2 ())
    Core.Report.table2 Core.Report.versus_csv

let table3_cmd =
  versus_cmd "table3"
    "Regenerate Table 3 (power vs thermal, platform architecture)."
    (fun () -> Core.Experiments.table3 ())
    Core.Report.table3 Core.Report.versus_csv

let checks_cmd =
  let run jobs trace metrics =
    set_jobs jobs;
    (* [exit] bypasses [Fun.protect] finalizers, so the exporters must run
       before the exit-code decision. *)
    let ok =
      with_observability ~trace ~metrics @@ fun () ->
      let table1 = Core.Experiments.table1 () in
      let table2 = Core.Experiments.table2 () in
      let table3 = Core.Experiments.table3 () in
      let checks = Core.Experiments.shape_checks ~table1 ~table2 ~table3 in
      print_string (Core.Report.shape_checks checks);
      List.for_all (fun c -> c.Core.Experiments.holds) checks
    in
    if ok then exit 0 else exit 1
  in
  Cmd.v
    (Cmd.info "checks"
       ~doc:"Run every table and verify the reproduction's shape criteria.")
    Term.(const run $ jobs_arg $ trace_arg $ metrics_arg)

(* --- schedule ----------------------------------------------------------- *)

let schedule_cmd =
  let run bench policy arch platform pins pin_kinds isolate gantt stats svg
      floorplan_svg jobs trace metrics =
    set_jobs jobs;
    with_observability ~trace ~metrics @@ fun () ->
    let bench = or_die (parse_bench bench) in
    let policy = or_die (parse_policy policy) in
    let graph = Core.Benchmarks.load bench in
    let constraints = parse_constraints ~pins ~pin_kinds ~isolate in
    let outcome =
      try
        match arch with
        | "platform" -> (
            match platform with
            | None ->
                Core.Flow.run_platform ~constraints ~graph
                  ~lib:(Core.Catalog.platform_library ()) ~policy ()
            | Some name ->
                let p = or_die (parse_platform name) in
                Core.Flow.run_platform ~platform:p ~constraints ~graph
                  ~lib:(Core.Catalog.library_for p) ~policy ())
        | "cosynth" ->
            if
              platform <> None || pins <> [] || pin_kinds <> [] || isolate <> []
            then
              or_die
                (Error
                   "--platform/--pin/--pin-kind/--isolate require --arch \
                    platform");
            Core.Flow.run_cosynthesis ~graph
              ~lib:(Core.Catalog.default_library ()) ~policy ()
        | other ->
            or_die (Error (Printf.sprintf "unknown architecture %S" other))
      with
      | Core.Constraints.Invalid msg -> or_die (Error msg)
      | Core.Constraints.Infeasible msg -> or_die (Error msg)
    in
    List.iter
      (fun (e : Core.Flow.log_entry) ->
        Format.printf "[%s] %s@." (Core.Flow.stage_name e.Core.Flow.stage)
          e.Core.Flow.detail)
      outcome.Core.Flow.log;
    Format.printf "%a@." Core.Metrics.pp_row outcome.Core.Flow.row;
    let report = outcome.Core.Flow.report in
    Array.iteri
      (fun pe t -> Format.printf "PE%d: %.2f W -> %.2f °C@." pe
          report.Core.Metrics.pe_powers.(pe) t)
      report.Core.Metrics.block_temps;
    if stats then begin
      Format.printf "inquiry engine: %a@." Core.Inquiry.pp_stats
        outcome.Core.Flow.inquiry;
      print_string (Core.Report.pool_stats (Core.Pool.stats (Core.Pool.default ())))
    end;
    if gantt then Format.printf "%a@." Core.Schedule.pp outcome.Core.Flow.schedule;
    (match svg with
    | Some path ->
        Core.Visuals.save (Core.Visuals.gantt outcome.Core.Flow.schedule) ~path;
        Format.printf "wrote Gantt chart to %s@." path
    | None -> ());
    match floorplan_svg with
    | Some path ->
        Core.Visuals.save
          (Core.Visuals.floorplan
             ~temps:outcome.Core.Flow.report.Core.Metrics.block_temps
             outcome.Core.Flow.placement)
          ~path;
        Format.printf "wrote thermal floorplan to %s@." path
    | None -> ()
  in
  let gantt_arg =
    Arg.(value & flag & info [ "gantt" ] ~doc:"Also print the per-PE schedule.")
  in
  let stats_arg =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Print the thermal inquiry-engine statistics (inquiries, \
                   cache hits, fixed-point iterations, solves, wall time).")
  in
  let svg_arg =
    Arg.(value & opt (some string) None
         & info [ "svg" ] ~docv:"FILE" ~doc:"Write a Gantt chart SVG.")
  in
  let fp_svg_arg =
    Arg.(value & opt (some string) None
         & info [ "floorplan-svg" ] ~docv:"FILE"
             ~doc:"Write the temperature-annotated floorplan SVG.")
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Run one benchmark/policy/architecture combination.")
    Term.(const run $ bench_arg $ policy_arg $ arch_arg $ platform_arg
          $ pin_arg $ pin_kind_arg $ isolate_arg $ gantt_arg $ stats_arg
          $ svg_arg $ fp_svg_arg $ jobs_arg $ trace_arg $ metrics_arg)

(* --- thermal ------------------------------------------------------------ *)

let thermal_cmd =
  let run n_pes powers grid svg =
    let power =
      match powers with
      | [] -> Array.make n_pes 4.0
      | l ->
          if List.length l <> n_pes then
            or_die (Error "need exactly one --power per PE")
          else Array.of_list l
    in
    let blocks =
      Array.init n_pes (fun i ->
          Core.Block.make ~name:(Printf.sprintf "PE%d" i) ~area:1.6e-5 ())
    in
    let placement = Core.Grid.layout blocks in
    let hotspot = Core.Hotspot.create placement in
    let temps = Core.Hotspot.query hotspot ~power in
    Format.printf "steady-state block temperatures (°C):@.";
    Array.iteri (fun i t -> Format.printf "  PE%d: %6.2f W -> %7.2f °C@." i power.(i) t) temps;
    Format.printf "peak %.2f, average %.2f@."
      (Core.Stats.max temps) (Core.Stats.mean temps);
    if grid then begin
      let gm = Core.Gridmodel.build ~nx:24 ~ny:24 Core.Package.default placement in
      let cells = Core.Gridmodel.cell_temperatures gm ~power in
      let lo = Core.Stats.min (Array.concat (Array.to_list cells)) in
      let hi = Core.Gridmodel.max_cell_temperature gm ~power in
      Format.printf "@.grid-mode heat map (%.1f..%.1f °C):@." lo hi;
      let shades = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |] in
      Array.iter
        (fun row ->
          Array.iter
            (fun t ->
              let f = (t -. lo) /. Float.max (hi -. lo) 1e-9 in
              let k = Stdlib.min 9 (int_of_float (f *. 10.0)) in
              print_char shades.(k))
            row;
          print_newline ())
        cells
    end;
    match svg with
    | Some path ->
        let gm = Core.Gridmodel.build ~nx:24 ~ny:24 Core.Package.default placement in
        Core.Visuals.save (Core.Visuals.heat_map gm ~power) ~path;
        Format.printf "wrote heat map to %s@." path
    | None -> ()
  in
  let n_arg =
    Arg.(value & opt int 4 & info [ "n"; "pes" ] ~docv:"N" ~doc:"Number of PE blocks.")
  in
  let power_arg =
    Arg.(value & opt_all float [] & info [ "power" ] ~docv:"W" ~doc:"Per-PE power (repeat).")
  in
  let grid_arg =
    Arg.(value & flag & info [ "grid" ] ~doc:"Also render the grid-mode heat map.")
  in
  let svg_arg =
    Arg.(value & opt (some string) None
         & info [ "svg" ] ~docv:"FILE" ~doc:"Write a heat-map SVG (24x24 grid).")
  in
  Cmd.v
    (Cmd.info "thermal" ~doc:"Query the HotSpot-style thermal model directly.")
    Term.(const run $ n_arg $ power_arg $ grid_arg $ svg_arg)

(* --- floorplan ---------------------------------------------------------- *)

let floorplan_cmd =
  let run n seed svg jobs trace metrics =
    set_jobs jobs;
    with_observability ~trace ~metrics @@ fun () ->
    let rng = Core.Rng.create seed in
    let blocks =
      Array.init n (fun i ->
          Core.Block.make ~name:(Printf.sprintf "b%d" i)
            ~area:(Core.Rng.uniform rng 4e-6 2.5e-5)
            ())
    in
    let blocks_area = Array.fold_left (fun a b -> a +. b.Core.Block.area) 0.0 blocks in
    let result =
      Core.Ga.run ~seed ~blocks
        ~cost:(Core.Flow.floorplan_cost ~blocks_area)
        ()
    in
    Format.printf "best cost %.4f after %d generations@." result.Core.Ga.best_cost
      (Array.length result.Core.Ga.history);
    Format.printf "%a@." Core.Placement.pp result.Core.Ga.best_placement;
    Format.printf "dead space: %.1f%%@."
      (100.0 *. Core.Placement.dead_space_ratio result.Core.Ga.best_placement);
    match svg with
    | Some path ->
        Core.Visuals.save (Core.Visuals.floorplan result.Core.Ga.best_placement) ~path;
        Format.printf "wrote floorplan to %s@." path
    | None -> ()
  in
  let svg_arg =
    Arg.(value & opt (some string) None
         & info [ "svg" ] ~docv:"FILE" ~doc:"Write the floorplan SVG.")
  in
  let n_arg =
    Arg.(value & opt int 6 & info [ "n"; "blocks" ] ~docv:"N" ~doc:"Number of blocks.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"GA random seed.")
  in
  Cmd.v
    (Cmd.info "floorplan" ~doc:"Run the GA floorplanner on random blocks.")
    Term.(const run $ n_arg $ seed_arg $ svg_arg $ jobs_arg $ trace_arg
          $ metrics_arg)

(* --- compare ------------------------------------------------------------ *)

let compare_cmd =
  let run bench restarts jobs trace metrics =
    set_jobs jobs;
    with_observability ~trace ~metrics @@ fun () ->
    let bench = or_die (parse_bench bench) in
    if restarts < 1 then or_die (Error "--restarts must be >= 1");
    let graph = Core.Benchmarks.load bench in
    let lib = Core.Catalog.platform_library () in
    let pes = Core.Catalog.platform_instances 4 in
    let asp = Core.List_sched.run ~graph ~lib ~pes ~policy:Core.Policy.Baseline () in
    let heft = Core.Heft.run ~graph ~lib ~pes () in
    let sa_label, sa_makespan =
      if restarts = 1 then
        let sa =
          Core.Sa_mapper.run ~seed:1 ~objective:Core.Sa_mapper.Makespan ~graph
            ~lib ~pes ()
        in
        ("SA mapper", sa.Core.Sa_mapper.schedule.Core.Schedule.makespan)
      else begin
        let r =
          Core.Sa_mapper.run_restarts ~restarts ~seed:1
            ~objective:Core.Sa_mapper.Makespan ~graph ~lib ~pes ()
        in
        Format.printf "SA restart costs:";
        Array.iteri
          (fun i c ->
            Format.printf " %s%.1f%s"
              (if i = r.Core.Sa_mapper.best_restart then "[" else "")
              c
              (if i = r.Core.Sa_mapper.best_restart then "]" else ""))
          r.Core.Sa_mapper.restart_costs;
        Format.printf "@.";
        ( Printf.sprintf "SA mapper (%dx)" restarts,
          r.Core.Sa_mapper.best.Core.Sa_mapper.schedule.Core.Schedule.makespan )
      end
    in
    Format.printf "%-22s %12s@." "scheduler" "makespan";
    Format.printf "%-22s %12.1f@." "ASP (list, baseline)" asp.Core.Schedule.makespan;
    Format.printf "%-22s %12.1f@." "HEFT (insertion)" heft.Core.Schedule.makespan;
    Format.printf "%-22s %12.1f@." sa_label sa_makespan;
    Format.printf "%-22s %12.0f@." "deadline" (Core.Graph.deadline graph)
  in
  let restarts_arg =
    Arg.(value & opt int 1
         & info [ "restarts" ] ~docv:"R"
             ~doc:"Independent SA chains (derived seeds, best kept). 1 \
                   reproduces the single-chain behaviour exactly.")
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare the ASP against HEFT and the SA mapper.")
    Term.(const run $ bench_arg $ restarts_arg $ jobs_arg $ trace_arg
          $ metrics_arg)

(* --- dvs ---------------------------------------------------------------- *)

let dvs_cmd =
  let run bench policy =
    let bench = or_die (parse_bench bench) in
    let policy = or_die (parse_policy policy) in
    let graph = Core.Benchmarks.load bench in
    let lib = Core.Catalog.platform_library () in
    let o = Core.Flow.run_platform ~graph ~lib ~policy () in
    let plan = Core.Dvs.reclaim ~lib o.Core.Flow.schedule in
    let after = Core.Dvs.thermal_report plan ~hotspot:o.Core.Flow.hotspot in
    Format.printf "policy %s on %s:@." (Core.Policy.name policy) (Core.Graph.name graph);
    Format.printf "  energy: %.1f J -> %.1f J (%.1f%% saved)@."
      (Core.Metrics.total_task_energy o.Core.Flow.schedule)
      (Core.Dvs.total_energy plan)
      (100.0 *. Core.Dvs.energy_saving_ratio plan);
    Format.printf "  peak temperature: %.2f °C -> %.2f °C@."
      o.Core.Flow.row.Core.Metrics.max_temp after.Core.Metrics.max_temp;
    Format.printf "  makespan: %.1f -> %.1f (deadline %.0f)@."
      o.Core.Flow.schedule.Core.Schedule.makespan plan.Core.Dvs.makespan
      (Core.Graph.deadline graph);
    match Core.Dvs.validate plan ~lib with
    | [] -> Format.printf "  plan: safe@."
    | violations -> Format.printf "  plan: %d violations (bug)@." (List.length violations)
  in
  Cmd.v
    (Cmd.info "dvs" ~doc:"Apply DVS slack reclamation on top of a platform schedule.")
    Term.(const run $ bench_arg $ policy_arg)

(* --- pareto ------------------------------------------------------------- *)

let pareto_cmd =
  let run bench =
    let bench = or_die (parse_bench bench) in
    let graph = Core.Benchmarks.load bench in
    let lib = Core.Catalog.default_library () in
    let points = Core.Pareto.explore ~graph ~lib () in
    Format.printf "all design points:@.%a@." Core.Pareto.pp_points points;
    Format.printf "Pareto frontier (cost vs peak temperature):@.%a@."
      Core.Pareto.pp_points (Core.Pareto.frontier points)
  in
  Cmd.v
    (Cmd.info "pareto"
       ~doc:"Explore the cost/temperature design space via repeated co-synthesis.")
    Term.(const run $ bench_arg)

(* --- analyze ------------------------------------------------------------ *)

let analyze_cmd =
  let run bench =
    let bench = or_die (parse_bench bench) in
    let graph = Core.Benchmarks.load bench in
    Format.printf "%s:@.%a@." (Core.Graph.name graph) Core.Analysis.pp
      (Core.Analysis.analyze graph)
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Structural statistics of a benchmark task graph.")
    Term.(const run $ bench_arg)

(* --- dtm ---------------------------------------------------------------- *)

let dtm_cmd' =
  let run bench trigger passes =
    let bench = or_die (parse_bench bench) in
    let graph = Core.Benchmarks.load bench in
    let lib = Core.Catalog.platform_library () in
    Format.printf "%-10s %10s %12s %12s %10s %10s@." "policy" "static" "simulated"
      "throttled" "peak °C" "deadline";
    List.iter
      (fun policy ->
        let o = Core.Flow.run_platform ~graph ~lib ~policy () in
        let params = { Core.Dtm.default_params with Core.Dtm.trigger; passes } in
        let r =
          Core.Dtm.simulate ~params ~lib ~hotspot:o.Core.Flow.hotspot
            o.Core.Flow.schedule
        in
        Format.printf "%-10s %10.1f %12.1f %11.1f%% %10.2f %10s@."
          (Core.Policy.name policy)
          o.Core.Flow.schedule.Core.Schedule.makespan r.Core.Dtm.makespan
          (100.0 *. r.Core.Dtm.throttled_fraction)
          r.Core.Dtm.peak_temperature
          (if r.Core.Dtm.meets_deadline then "met" else "MISSED"))
      Core.Policy.all
  in
  let trigger_arg =
    Arg.(value & opt float 90.0
         & info [ "trigger" ] ~docv:"C" ~doc:"Throttle threshold, °C.")
  in
  let passes_arg =
    Arg.(value & opt int 150
         & info [ "passes" ] ~docv:"N" ~doc:"Warm-up executions of the schedule.")
  in
  Cmd.v
    (Cmd.info "dtm-sim"
       ~doc:"Simulate runtime dynamic thermal management over each policy.")
    Term.(const run $ bench_arg $ trigger_arg $ passes_arg)

(* --- transient ----------------------------------------------------------- *)

let transient_cmd =
  let run bench policy arch periods dt time_unit exact csv jobs trace metrics =
    set_jobs jobs;
    with_observability ~trace ~metrics @@ fun () ->
    let bench = or_die (parse_bench bench) in
    let policy = or_die (parse_policy policy) in
    if periods < 2 then or_die (Error "--periods must be >= 2");
    if time_unit <= 0.0 then or_die (Error "--time-unit must be positive");
    let graph = Core.Benchmarks.load bench in
    let lib, outcome =
      match arch with
      | "platform" ->
          let lib = Core.Catalog.platform_library () in
          (lib, Core.Flow.run_platform ~graph ~lib ~policy ())
      | "cosynth" ->
          let lib = Core.Catalog.default_library () in
          (lib, Core.Flow.run_cosynthesis ~graph ~lib ~policy ())
      | other -> or_die (Error (Printf.sprintf "unknown architecture %S" other))
    in
    let s = outcome.Core.Flow.schedule in
    let hotspot = outcome.Core.Flow.hotspot in
    let profile = Core.Replay.of_schedule ~time_unit ~lib s in
    let model = Core.Hotspot.model hotspot in
    let engine = Core.Transient.create (Core.Transient.of_model model) in
    let dt =
      match dt with
      | Some d -> d
      | None -> Core.Transient.profile_duration profile /. 100.0
    in
    let r =
      Core.Transient.replay ~record:true ~exact engine ~profile
        ~t0:(Core.Transient.initial_ambient model)
        ~dt ~periods
    in
    Format.printf
      "%s / %s / %s: replaying %d periods of %.4f s (%d power segments, dt = \
       %g s, %d steps, %s path)@.@."
      (Core.Graph.name graph) (Core.Policy.name policy) arch periods
      (Core.Transient.profile_duration profile)
      (Core.Transient.profile_segments profile)
      dt r.Core.Transient.steps
      (if exact then "exact factored-solve" else "propagator");
    let steady = outcome.Core.Flow.report in
    Format.printf "per-PE temperatures (°C):@.";
    Format.printf "  PE   steady(avg power)   transient peak   ripple@.";
    Array.iteri
      (fun pe st ->
        let p = r.Core.Transient.last_period_peak.(pe) in
        Format.printf "  %d        %8.2f        %8.2f      %+6.2f@." pe st p (p -. st))
      steady.Core.Metrics.block_temps;
    (match r.Core.Transient.trace with
    | Some tr -> (
        match
          Core.Transient.settle_time tr ~steady:r.Core.Transient.final ~tol:2.0
        with
        | Some t ->
            Format.printf "@.transient settles (within 2 °C of its endpoint) by \
                           t = %.2f s@." t
        | None -> Format.printf "@.trace did not settle@.")
    | None -> ());
    Format.printf "@.engine: %a@." Core.Transient.pp_stats
      (Core.Transient.stats engine);
    match (csv, r.Core.Transient.trace) with
    | Some path, Some tr ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            let n = Core.Schedule.n_pes s in
            output_string oc "time_s";
            for pe = 0 to n - 1 do
              Printf.fprintf oc ",pe%d_C" pe
            done;
            output_string oc ",spreader_C,sink_C\n";
            Array.iteri
              (fun k t ->
                Printf.fprintf oc "%.9g" t;
                Array.iter
                  (fun temp -> Printf.fprintf oc ",%.6f" temp)
                  tr.Core.Transient.temps.(k);
                output_char oc '\n')
              tr.Core.Transient.times);
        Format.printf "wrote temperature trace to %s@." path
    | _ -> ()
  in
  let periods_arg =
    Arg.(value & opt int 300
         & info [ "periods" ] ~docv:"N"
             ~doc:"Schedule repetitions to replay (warm-up included).")
  in
  let dt_arg =
    Arg.(value & opt (some float) None
         & info [ "dt" ] ~docv:"SEC"
             ~doc:"Integration step in seconds (default: period / 100).")
  in
  let time_unit_arg =
    Arg.(value & opt float 1e-3
         & info [ "time-unit" ] ~docv:"SEC"
             ~doc:"Seconds of wall clock per schedule time unit.")
  in
  let exact_arg =
    Arg.(value & flag
         & info [ "exact" ]
             ~doc:"Use the bit-exact factored-solve stepper instead of the \
                   precomputed-propagator fast path.")
  in
  let csv_arg =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE"
             ~doc:"Export the temperature trace (time + per-node °C) as CSV.")
  in
  Cmd.v
    (Cmd.info "transient"
       ~doc:"Replay a schedule's exact power breakpoints through the \
             event-driven transient engine and compare against the \
             steady-state estimate.")
    Term.(const run $ bench_arg $ policy_arg $ arch_arg $ periods_arg $ dt_arg
          $ time_unit_arg $ exact_arg $ csv_arg $ jobs_arg $ trace_arg
          $ metrics_arg)

(* --- online --------------------------------------------------------------- *)

let online_cmd =
  let run bench policy arrivals seed mean_gap n_pes platform pins pin_kinds
      isolate trigger jobs trace metrics =
    set_jobs jobs;
    with_observability ~trace ~metrics @@ fun () ->
    let bench = or_die (parse_bench bench) in
    let policy =
      match Core.Online.policy_of_name policy with
      | Some (Core.Online.Reactive r) ->
          Core.Online.Reactive
            (match trigger with
            | Some t -> { r with Core.Online.trigger = t }
            | None -> r)
      | Some p -> p
      | None ->
          or_die
            (Error
               (Printf.sprintf
                  "unknown online policy %S (want baseline, h1, h2, h3, \
                   thermal or reactive)"
                  policy))
    in
    let arrivals =
      match arrivals with
      | "zero" -> Core.Flow.Release_zero
      | "sporadic" -> Core.Flow.Release_sporadic seed
      | "trace" -> Core.Flow.Release_trace
      | other ->
          or_die
            (Error
               (Printf.sprintf
                  "unknown arrival source %S (want zero, sporadic or trace)"
                  other))
    in
    if mean_gap <= 0.0 then or_die (Error "--mean-gap must be positive");
    let graph = Core.Benchmarks.load bench in
    let constraints = parse_constraints ~pins ~pin_kinds ~isolate in
    let platform =
      match platform with
      | None -> None
      | Some name -> Some (or_die (parse_platform name))
    in
    let lib =
      match platform with
      | None -> Core.Catalog.platform_library ()
      | Some p -> Core.Catalog.library_for p
    in
    let o =
      try
        Core.Flow.run_online ~n_pes ?platform ~constraints ~mean_gap ~arrivals
          ~graph ~lib ~policy ()
      with
      | Core.Constraints.Invalid msg -> or_die (Error msg)
      | Core.Constraints.Infeasible msg -> or_die (Error msg)
    in
    let n_pes =
      match platform with None -> n_pes | Some p -> Core.Platform.n_pes p
    in
    let stats = o.Core.Flow.online.Core.Online.stats in
    Format.printf "%s / %a / %s arrivals%s on %d PEs%s@."
      (Core.Graph.name graph) Core.Online.pp_policy policy
      (Core.Flow.arrival_source_name arrivals)
      (match arrivals with
      | Core.Flow.Release_sporadic s ->
          Printf.sprintf " (seed %d, mean gap %g)" s mean_gap
      | Core.Flow.Release_zero | Core.Flow.Release_trace -> "")
      n_pes
      (match platform with
      | None -> ""
      | Some p -> Printf.sprintf " (platform %s)" (Core.Platform.name p));
    Format.printf
      "event loop: %d events, %d decisions, %d candidates evaluated, %d \
       cooldown deferrals@."
      stats.Core.Online.events stats.Core.Online.decisions
      stats.Core.Online.candidates stats.Core.Online.deferrals;
    if Float.is_finite stats.Core.Online.peak_observed then
      Format.printf "live transient peak at decision points: %.2f °C@."
        stats.Core.Online.peak_observed;
    Format.printf "@.%a@." Core.Online.pp_score o.Core.Flow.score
  in
  let arrivals_arg =
    Arg.(value & opt string "sporadic"
         & info [ "arrivals" ] ~docv:"SRC"
             ~doc:"Arrival stream: zero (everything releases at t=0), \
                   sporadic (seeded random gaps along the precedence order) \
                   or trace (the offline baseline schedule's start times).")
  in
  let seed_arg =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"N"
             ~doc:"Seed for the sporadic arrival stream (Rng.derive per \
                   task).")
  in
  let mean_gap_arg =
    Arg.(value & opt float 25.0
         & info [ "mean-gap" ] ~docv:"T"
             ~doc:"Mean release gap of the sporadic stream, in schedule time \
                   units.")
  in
  let n_pes_arg =
    Arg.(value & opt int 4
         & info [ "n-pes" ] ~docv:"N" ~doc:"Platform width.")
  in
  let trigger_arg =
    Arg.(value & opt (some float) None
         & info [ "trigger" ] ~docv:"C"
             ~doc:"Hot-PE trigger temperature (°C) for the reactive policy \
                   (default 75).")
  in
  let policy_arg =
    let doc = "Policy: baseline, h1, h2, h3, thermal or reactive." in
    Arg.(value & opt string "thermal"
         & info [ "p"; "policy" ] ~docv:"POLICY" ~doc)
  in
  Cmd.v
    (Cmd.info "online"
       ~doc:"Run the online reactive scheduler over a task-arrival stream \
             and score it against the clairvoyant offline baseline \
             (empirical competitive ratios on makespan and peak \
             temperature).")
    Term.(const run $ bench_arg $ policy_arg $ arrivals_arg $ seed_arg
          $ mean_gap_arg $ n_pes_arg $ platform_arg $ pin_arg $ pin_kind_arg
          $ isolate_arg $ trigger_arg $ jobs_arg $ trace_arg $ metrics_arg)

(* --- campaign ------------------------------------------------------------- *)

let campaign_cmd =
  let run mode spec_name spec_file dir shard jobs baseline tol_makespan
      tol_power tol_max_temp tol_avg_temp trace metrics =
    set_jobs jobs;
    with_observability ~trace ~metrics @@ fun () ->
    let spec =
      match spec_file with
      | Some path -> (
          match Core.Fsio.read_file path with
          | None -> or_die (Error (Printf.sprintf "cannot read spec file %s" path))
          | Some text ->
              or_die
                (Result.map_error
                   (fun e -> Printf.sprintf "spec file %s: %s" path e)
                   (Core.Campaign.spec_of_string text)))
      | None -> (
          match Core.Campaign.builtin spec_name with
          | Some s -> s
          | None ->
              or_die
                (Error
                   (Printf.sprintf "unknown builtin spec %S (want one of %s)"
                      spec_name
                      (String.concat ", " Core.Campaign.builtin_names))))
    in
    let dir =
      match dir with Some d -> d | None -> "campaign-" ^ spec.Core.Campaign.name
    in
    match mode with
    | "run" | "resume" ->
        (* resume IS run: valid artifacts are skipped, the rest computed. *)
        let shard, shards =
          match shard with
          | None -> (0, 1)
          | Some s -> (
              match String.split_on_char '/' s with
              | [ k; n ] -> (
                  match (int_of_string_opt k, int_of_string_opt n) with
                  | Some k, Some n when n >= 1 && k >= 0 && k < n -> (k, n)
                  | _ -> or_die (Error "--shard wants K/N with 0 <= K < N"))
              | _ -> or_die (Error "--shard wants K/N with 0 <= K < N"))
        in
        let r =
          Core.Campaign.run ~pool:(Core.Pool.default ()) ~shards ~shard ~dir
            spec
        in
        Format.printf
          "campaign %s: %d cells, shard %d/%d -> %d (%d computed, %d reused, \
           %d invalid re-run)@."
          spec.Core.Campaign.name r.Core.Campaign.total shard shards
          r.Core.Campaign.shard_cells r.Core.Campaign.computed
          r.Core.Campaign.reused r.Core.Campaign.invalid;
        if r.Core.Campaign.manifest_written then
          Format.printf "manifest: %s@." (Core.Campaign.manifest_path dir)
        else
          Format.printf
            "campaign incomplete — no manifest yet (other shards pending?)@."
    | "report" ->
        let m = or_die (Core.Campaign.load_manifest ~dir) in
        print_string (Core.Report.campaign_summary (Core.Campaign.summarize m))
    | "gate" ->
        let baseline_path =
          match baseline with
          | Some p -> p
          | None -> or_die (Error "gate needs --baseline MANIFEST")
        in
        let baseline =
          match Core.Fsio.read_file baseline_path with
          | None ->
              or_die
                (Error (Printf.sprintf "cannot read baseline %s" baseline_path))
          | Some text ->
              or_die
                (Result.map_error
                   (fun e -> Printf.sprintf "baseline %s: %s" baseline_path e)
                   (Core.Campaign.manifest_of_string text))
        in
        let candidate = or_die (Core.Campaign.load_manifest ~dir) in
        let tol =
          {
            Core.Campaign.tol_makespan;
            tol_power;
            tol_max_temp;
            tol_avg_temp;
          }
        in
        let g = Core.Campaign.gate ~tol ~baseline ~candidate in
        print_string (Core.Report.campaign_gate g);
        if not (Core.Campaign.gate_passes g) then exit 2
    | other ->
        or_die
          (Error
             (Printf.sprintf "unknown mode %S (want run, resume, report or gate)"
                other))
  in
  let mode_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"MODE"
          ~doc:
            "$(b,run) executes the campaign's missing cells; $(b,resume) is \
             the same operation, named for intent; $(b,report) renders the \
             manifest; $(b,gate) diffs the manifest against a baseline and \
             exits 2 on regression.")
  in
  let spec_arg =
    Arg.(
      value & opt string "golden"
      & info [ "s"; "spec" ] ~docv:"NAME"
          ~doc:
            "Builtin campaign spec: table1, table2, table3 (the paper's \
             tables as campaigns), golden (the pinned demo), hetero (the \
             heterogeneous-platform gate fixture) or sweep1k (1080 \
             generated cells).")
  in
  let spec_file_arg =
    Arg.(
      value & opt (some string) None
      & info [ "spec-file" ] ~docv:"FILE"
          ~doc:
            "Read the campaign spec from a JSON file instead of --spec (see \
             README for the format).")
  in
  let dir_arg =
    Arg.(
      value & opt (some string) None
      & info [ "d"; "dir" ] ~docv:"DIR"
          ~doc:
            "Artifact directory (cells/<id>.json plus manifest.json); \
             defaults to campaign-<spec name>.")
  in
  let shard_arg =
    Arg.(
      value & opt (some string) None
      & info [ "shard" ] ~docv:"K/N"
          ~doc:
            "Run only cells with expansion index = K mod N; N cooperating \
             shards sharing DIR cover the campaign, and the last one to \
             finish writes the manifest.")
  in
  let baseline_arg =
    Arg.(
      value & opt (some string) None
      & info [ "baseline" ] ~docv:"MANIFEST"
          ~doc:"Baseline manifest.json to gate against.")
  in
  let tol name doc =
    Arg.(value & opt float 0.0 & info [ name ] ~docv:"D" ~doc)
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Sharded, resumable (graph x policy x platform) sweep campaigns \
          with content-addressed JSON artifacts and regression gating.")
    Term.(
      const run $ mode_arg $ spec_arg $ spec_file_arg $ dir_arg $ shard_arg
      $ jobs_arg $ baseline_arg
      $ tol "tol-makespan" "Allowed makespan increase before gate failure."
      $ tol "tol-power" "Allowed total-power increase (W) before gate failure."
      $ tol "tol-max-temp" "Allowed peak-temperature increase (°C) before gate failure."
      $ tol "tol-avg-temp" "Allowed average-temperature increase (°C) before gate failure."
      $ trace_arg $ metrics_arg)

(* --- robustness ----------------------------------------------------------- *)

let robustness_cmd =
  let run n tasks seed =
    let r = Core.Experiments.robustness ~n ~tasks ~seed () in
    Format.printf
      "random graphs: %d (x%d tasks)@.thermal beats power-aware on max temp: \
       %d/%d; on avg temp: %d/%d@.mean reduction: %.2f °C max / %.2f °C avg@."
      r.Core.Experiments.n_graphs tasks r.Core.Experiments.wins_max
      r.Core.Experiments.n_graphs r.Core.Experiments.wins_avg
      r.Core.Experiments.n_graphs
      r.Core.Experiments.mean_reduction.Core.Experiments.d_max_temp
      r.Core.Experiments.mean_reduction.Core.Experiments.d_avg_temp
  in
  let n_arg =
    Arg.(value & opt int 12 & info [ "n" ] ~docv:"N" ~doc:"Number of random graphs.")
  in
  let tasks_arg =
    Arg.(value & opt int 30 & info [ "tasks" ] ~docv:"T" ~doc:"Tasks per graph.")
  in
  let seed_arg =
    Arg.(value & opt int 2005 & info [ "seed" ] ~docv:"S" ~doc:"Random seed.")
  in
  Cmd.v
    (Cmd.info "robustness"
       ~doc:"Compare thermal vs power-aware on fresh random workloads.")
    Term.(const run $ n_arg $ tasks_arg $ seed_arg)

(* --- artifacts ------------------------------------------------------------ *)

let artifacts_cmd =
  let run dir jobs =
    set_jobs jobs;
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let write name contents =
      let path = Filename.concat dir name in
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
          output_string oc contents);
      Format.printf "wrote %s@." path
    in
    let table1 = Core.Experiments.table1 () in
    let table2 = Core.Experiments.table2 () in
    let table3 = Core.Experiments.table3 () in
    write "table1.txt" (Core.Report.table1 table1);
    write "table2.txt" (Core.Report.table2 table2);
    write "table3.txt" (Core.Report.table3 table3);
    write "table1.csv" (Core.Report.table1_csv table1);
    write "table2.csv" (Core.Report.versus_csv table2);
    write "table3.csv" (Core.Report.versus_csv table3);
    write "table1.md" (Core.Report.table1_markdown table1);
    write "table2.md"
      (Core.Report.versus_markdown
         ~title:"Table 2 — power vs thermal, co-synthesis architecture"
         ~paper:Core.Paper_data.table2 table2);
    write "table3.md"
      (Core.Report.versus_markdown
         ~title:"Table 3 — power vs thermal, platform architecture"
         ~paper:Core.Paper_data.table3 table3);
    write "checks.txt"
      (Core.Report.shape_checks
         (Core.Experiments.shape_checks ~table1 ~table2 ~table3));
    (* One SVG set per benchmark: thermal-aware platform run. *)
    let lib = Core.Catalog.platform_library () in
    List.iter
      (fun bench ->
        let graph = Core.Benchmarks.load bench in
        let name = Core.Graph.name graph in
        let o = Core.Flow.run_platform ~graph ~lib ~policy:Core.Policy.Thermal_aware () in
        write
          (Printf.sprintf "%s_gantt.svg" name)
          (Core.Visuals.gantt o.Core.Flow.schedule);
        write
          (Printf.sprintf "%s_floorplan.svg" name)
          (Core.Visuals.floorplan
             ~temps:o.Core.Flow.report.Core.Metrics.block_temps
             o.Core.Flow.placement);
        write (Printf.sprintf "%s.dot" name) (Core.Dot.to_dot graph);
        write (Printf.sprintf "%s.tgff" name) (Core.Tgff_io.to_string graph))
      [ 0; 1; 2; 3 ]
  in
  let dir_arg =
    Arg.(value & opt string "artifacts"
         & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  Cmd.v
    (Cmd.info "artifacts"
       ~doc:"Regenerate the full experiment artifact set (tables, CSV, \
             markdown, SVG, DOT, TGFF) into a directory.")
    Term.(const run $ dir_arg $ jobs_arg)

(* --- client ------------------------------------------------------------- *)

let client_cmd =
  let module Serve = Core.Serve in
  let parse_floats field s =
    try Ok (Array.of_list (List.map float_of_string (String.split_on_char ',' s)))
    with Failure _ ->
      Error (Printf.sprintf "--%s wants comma-separated numbers" field)
  in
  let run socket kind json bench policy arch n_pes platform pins pin_kinds
      isolate power idle periods dt time_unit exact deadline_ms =
    let reply =
      match
        Serve.Client.with_client socket @@ fun c ->
        match json with
      | Some raw -> Serve.Client.call c (or_die (Serve.Json.of_string raw))
      | None ->
          let open Serve.Protocol in
          let sched () =
            let bench = or_die (parse_bench bench) in
            let policy = or_die (parse_policy policy) in
            let arch =
              match arch with
              | "platform" -> Platform
              | "cosynth" -> Cosynth
              | other ->
                  or_die
                    (Error (Printf.sprintf "unknown architecture %S" other))
            in
            let spec = parse_constraints ~pins ~pin_kinds ~isolate in
            {
              bench;
              policy;
              arch;
              n_pes;
              platform;
              pins = spec.Core.Constraints.pins;
              isolation = spec.Core.Constraints.isolation;
            }
          in
          let kind =
            match kind with
            | "ping" -> Ping
            | "stats" -> Stats
            | "shutdown" -> Shutdown
            | "schedule" -> Schedule (sched ())
            | "transient" ->
                Transient { sched = sched (); periods; dt; time_unit; exact }
            | "inquiry" ->
                let power =
                  match power with
                  | Some s -> or_die (parse_floats "power" s)
                  | None -> or_die (Error "inquiry requires --power W,W,...")
                in
                let n = Array.length power in
                let idle =
                  match idle with
                  | Some s -> or_die (parse_floats "idle" s)
                  | None -> Array.make n 0.0
                in
                if Array.length idle <> n then
                  or_die (Error "--idle must match --power in length");
                Inquiry { n_pes = n; power; idle }
            | other ->
                or_die (Error (Printf.sprintf "unknown request kind %S" other))
          in
          Serve.Client.request c (request ?deadline_ms kind)
      with
      | r -> r
      | exception Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "cannot connect to %s: %s" socket
               (Unix.error_message e))
    in
    match reply with
    | Ok v ->
        print_endline (Serve.Json.to_string v);
        if not (Serve.Protocol.reply_ok v) then exit 1
    | Error msg -> or_die (Error msg)
  in
  let socket_arg =
    Arg.(value & opt string "tatsd.sock"
         & info [ "s"; "socket" ] ~docv:"PATH" ~doc:"The tatsd socket.")
  in
  let kind_arg =
    let doc =
      "Request kind: ping, stats, schedule, inquiry, transient or shutdown."
    in
    Arg.(value & pos 0 string "ping" & info [] ~docv:"KIND" ~doc)
  in
  let json_arg =
    let doc =
      "Send $(docv) verbatim as the request (overrides every other flag) — \
       the escape hatch for hand-written requests."
    in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"JSON" ~doc)
  in
  let n_pes_arg =
    Arg.(value & opt int 4
         & info [ "n-pes" ] ~docv:"N" ~doc:"Platform width for schedule/transient.")
  in
  let power_arg =
    Arg.(value & opt (some string) None
         & info [ "power" ] ~docv:"W,W,..."
             ~doc:"Per-PE dynamic power for an inquiry request.")
  in
  let idle_arg =
    Arg.(value & opt (some string) None
         & info [ "idle" ] ~docv:"W,W,..."
             ~doc:"Per-PE idle power for an inquiry request (default zeros).")
  in
  let periods_arg =
    Arg.(value & opt int 50
         & info [ "periods" ] ~docv:"N" ~doc:"Transient: schedule repetitions.")
  in
  let dt_arg =
    Arg.(value & opt (some float) None
         & info [ "dt" ] ~docv:"SECONDS"
             ~doc:"Transient: integration step (default period/100).")
  in
  let time_unit_arg =
    Arg.(value & opt float 1e-3
         & info [ "time-unit" ] ~docv:"SECONDS"
             ~doc:"Transient: seconds per schedule time unit.")
  in
  let exact_arg =
    Arg.(value & flag
         & info [ "exact" ] ~doc:"Transient: bit-exact factored-solve stepper.")
  in
  let deadline_arg =
    Arg.(value & opt (some float) None
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Queueing budget: the server answers `deadline' instead of \
                   executing a request it could only dispatch later than this.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send one request to a running tatsd and print the JSON reply. \
             Exits 1 when the server answers with an error reply.")
    Term.(
      const run $ socket_arg $ kind_arg $ json_arg $ bench_arg $ policy_arg
      $ arch_arg $ n_pes_arg $ platform_arg $ pin_arg $ pin_kind_arg
      $ isolate_arg $ power_arg $ idle_arg $ periods_arg $ dt_arg
      $ time_unit_arg $ exact_arg $ deadline_arg)

(* --- export ------------------------------------------------------------- *)

let export_cmd =
  let run bench path =
    let bench = or_die (parse_bench bench) in
    let graph = Core.Benchmarks.load bench in
    Core.Dot.save graph path;
    Format.printf "wrote %s (%d tasks, %d edges)@." path (Core.Graph.n_tasks graph)
      (Core.Graph.n_edges graph)
  in
  let path_arg =
    Arg.(value & opt string "graph.dot" & info [ "o" ] ~docv:"FILE" ~doc:"Output path.")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export a benchmark task graph as Graphviz DOT.")
    Term.(const run $ bench_arg $ path_arg)

let () =
  let info =
    Cmd.info "tats" ~version:Core.version
      ~doc:
        "Thermal-aware task allocation and scheduling for embedded systems \
         (reproduction of Hung et al., DATE 2005)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            table1_cmd; table2_cmd; table3_cmd; checks_cmd; schedule_cmd;
            thermal_cmd; floorplan_cmd; export_cmd; compare_cmd; dvs_cmd;
            pareto_cmd; analyze_cmd; dtm_cmd'; transient_cmd; online_cmd;
            campaign_cmd; robustness_cmd; artifacts_cmd; client_cmd;
          ]))
