(* tatsd — the long-running scheduling-inquiry daemon.

   Listens on a Unix-domain socket for length-prefixed JSON requests
   (schedule / inquiry / transient / ping / stats), dispatches them onto
   the process execution pool, and keeps one warmed thermal-inquiry
   engine per platform fingerprint so repeated workloads hit the
   quantized-power cache across requests.  `tats client` is the matching
   one-shot client. *)

open Cmdliner
module Server = Core.Serve.Server

let run socket max_queue batch_max jobs trace metrics =
  (match jobs with Some j -> Core.Pool.set_default_jobs j | None -> ());
  if max_queue < 1 then begin
    Format.eprintf "tatsd: --queue must be >= 1@.";
    exit 2
  end;
  if batch_max < 1 then begin
    Format.eprintf "tatsd: --batch must be >= 1@.";
    exit 2
  end;
  (match trace with Some _ -> Core.Trace.start () | None -> ());
  let config =
    { Server.default_config with socket_path = socket; max_queue; batch_max }
  in
  let server =
    try Server.create config
    with Unix.Unix_error (e, _, _) ->
      Format.eprintf "tatsd: cannot listen on %s: %s@." socket
        (Unix.error_message e);
      exit 1
  in
  (* Handlers only flip an atomic; the accept thread notices within its
     poll interval and runs the full graceful stop. *)
  let on_signal _ = Server.signal_stop server in
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Format.eprintf
    "tatsd: listening on %s (jobs = %d, queue = %d, batch = %d)@." socket
    (Core.Pool.jobs (Core.Pool.default ()))
    max_queue batch_max;
  Server.wait server;
  (match trace with
  | Some path ->
      Core.Trace.stop ();
      Core.Trace.export_chrome path;
      Format.eprintf "tatsd: wrote %d spans to %s@." (Core.Trace.span_count ())
        path
  | None -> ());
  (match metrics with
  | Some path ->
      Core.Metricsreg.export path;
      Format.eprintf "tatsd: wrote metrics to %s@." path
  | None -> ());
  Format.eprintf "tatsd: drained, exiting@."

let socket_arg =
  let doc = "Unix-domain socket path to listen on." in
  Arg.(value & opt string "tatsd.sock" & info [ "s"; "socket" ] ~docv:"PATH" ~doc)

let queue_arg =
  let doc =
    "Admission-queue bound: requests beyond $(docv) waiting for dispatch \
     are rejected with an `overloaded' error instead of queueing without \
     limit."
  in
  Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)

let batch_arg =
  let doc =
    "Maximum requests executed per pool batch; within a batch requests run \
     on separate pool domains."
  in
  Arg.(value & opt int 8 & info [ "batch" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc =
    "Size of the execution pool (domains). Defaults to the number of cores."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let trace_arg =
  let doc =
    "Record a Chrome trace_event timeline of the server's life and write \
     it to $(docv) on shutdown."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write the metrics registry (serve.* counters, latency histogram, \
     inquiry cache statistics) to $(docv) as JSON on shutdown."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let () =
  let info =
    Cmd.info "tatsd" ~version:Core.version
      ~doc:
        "Long-running thermal-aware scheduling server: framed JSON requests \
         over a Unix-domain socket, warmed thermal-inquiry engines shared \
         across requests. Stop with SIGINT/SIGTERM or a `shutdown' request; \
         admitted work is drained before exit."
  in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(
            const run $ socket_arg $ queue_arg $ batch_arg $ jobs_arg
            $ trace_arg $ metrics_arg)))
