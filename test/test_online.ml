(* Differential and property tests for Tats_sched.Online.

   The anchor is the degenerate-stream theorem: with every task released
   at t = 0 the online event loop collapses to a single decision event
   whose candidate scan, DC arithmetic and tie-breaking are the offline
   list scheduler's — so the schedules must agree bit for bit, across
   every policy and benchmark. The property half drives randomized
   sporadic streams (Rng.derive-seeded) through feasibility, bitwise
   replay-scoring, competitive-ratio and pool-determinism checks. *)

module Graph = Tats_taskgraph.Graph
module Benchmarks = Tats_taskgraph.Benchmarks
module Pe = Tats_techlib.Pe
module Library = Tats_techlib.Library
module Catalog = Tats_techlib.Catalog
module Block = Tats_floorplan.Block
module Grid = Tats_floorplan.Grid
module Hotspot = Tats_thermal.Hotspot
module Rcmodel = Tats_thermal.Rcmodel
module Transient = Tats_thermal.Transient
module Policy = Tats_sched.Policy
module Schedule = Tats_sched.Schedule
module List_sched = Tats_sched.List_sched
module Replay = Tats_sched.Replay
module Online = Tats_sched.Online
module Pool = Tats_util.Pool

let platform_lib = Catalog.platform_library ()
let platform_pes n = Catalog.platform_instances n

let platform_hotspot n =
  Hotspot.create
    (Grid.layout
       (Array.map
          (fun (i : Pe.inst) ->
            Block.make ~name:(string_of_int i.Pe.inst_id) ~area:i.Pe.kind.Pe.area ())
          (platform_pes n)))

let bm1 () = Benchmarks.load 0
let bm2 () = Benchmarks.load 1
let bm3 () = Benchmarks.load 2

let check_bits what a b =
  Alcotest.(check int64)
    what (Int64.bits_of_float a) (Int64.bits_of_float b)

let check_same_schedule what (a : Schedule.t) (b : Schedule.t) =
  Alcotest.(check int)
    (what ^ ": entry count")
    (Array.length a.Schedule.entries)
    (Array.length b.Schedule.entries);
  Array.iteri
    (fun i (ea : Schedule.entry) ->
      let eb = b.Schedule.entries.(i) in
      let tag fmt = Printf.sprintf "%s: entry %d %s" what i fmt in
      Alcotest.(check int) (tag "task") ea.Schedule.task eb.Schedule.task;
      Alcotest.(check int) (tag "pe") ea.Schedule.pe eb.Schedule.pe;
      check_bits (tag "start") ea.Schedule.start eb.Schedule.start;
      check_bits (tag "finish") ea.Schedule.finish eb.Schedule.finish;
      check_bits (tag "energy") ea.Schedule.energy eb.Schedule.energy)
    a.Schedule.entries;
  check_bits (what ^ ": makespan") a.Schedule.makespan b.Schedule.makespan

let online_zero ?hotspot ~policy graph =
  let pes = platform_pes 4 in
  Online.run ?hotspot
    ~arrivals:(Online.zero graph)
    ~graph ~lib:platform_lib ~pes ~policy ()

(* --- Degenerate stream: online == offline, bit for bit ------------------ *)

let test_t0_bit_identity_all_policies () =
  let graph = bm1 () in
  let pes = platform_pes 4 in
  let hotspot = platform_hotspot 4 in
  List.iter
    (fun policy ->
      let hs = if policy = Policy.Thermal_aware then Some hotspot else None in
      let offline =
        List_sched.run ?hotspot:hs ~graph ~lib:platform_lib ~pes ~policy ()
      in
      let online = online_zero ?hotspot:hs ~policy:(Online.Mirror policy) graph in
      check_same_schedule
        ("Bm1 " ^ Policy.name policy)
        offline online.Online.schedule;
      Alcotest.(check int)
        "single decision event" 1 online.Online.stats.Online.events)
    Policy.all

let test_t0_bit_identity_bm2_bm3 () =
  let pes = platform_pes 4 in
  let hotspot = platform_hotspot 4 in
  List.iter
    (fun graph ->
      List.iter
        (fun policy ->
          let hs =
            if policy = Policy.Thermal_aware then Some hotspot else None
          in
          let offline =
            List_sched.run ?hotspot:hs ~graph ~lib:platform_lib ~pes ~policy ()
          in
          let online =
            online_zero ?hotspot:hs ~policy:(Online.Mirror policy) graph
          in
          check_same_schedule
            (Graph.name graph ^ " " ^ Policy.name policy)
            offline online.Online.schedule)
        [ Policy.Baseline; Policy.Thermal_aware ])
    [ bm2 (); bm3 () ]

let test_clairvoyant_zero_equals_offline () =
  let graph = bm1 () in
  let pes = platform_pes 4 in
  let hotspot = platform_hotspot 4 in
  List.iter
    (fun policy ->
      let hs = if policy = Policy.Thermal_aware then Some hotspot else None in
      let offline =
        List_sched.run ?hotspot:hs ~graph ~lib:platform_lib ~pes ~policy ()
      in
      let clair =
        Online.clairvoyant ?hotspot:hs
          ~arrivals:(Online.zero graph)
          ~graph ~lib:platform_lib ~pes ~policy ()
      in
      check_same_schedule ("clairvoyant " ^ Policy.name policy) offline clair)
    Policy.all

let test_reactive_cold_trigger_equals_mirror () =
  (* With a trigger no real platform reaches, the reactive policy never
     penalizes and never defers: it must equal its mirror base exactly —
     and, on the zero stream, the offline scheduler. *)
  let graph = bm1 () in
  let pes = platform_pes 4 in
  let hotspot = platform_hotspot 4 in
  let reactive =
    Online.Reactive { Online.default_reactive with Online.trigger = 1e9 }
  in
  let offline =
    List_sched.run ~hotspot ~graph ~lib:platform_lib ~pes
      ~policy:Policy.Thermal_aware ()
  in
  let online = online_zero ~hotspot ~policy:reactive graph in
  check_same_schedule "reactive(cold) vs offline" offline online.Online.schedule;
  Alcotest.(check int) "no deferrals" 0 online.Online.stats.Online.deferrals;
  Alcotest.(check bool)
    "live peak sampled" true
    (Float.is_finite online.Online.stats.Online.peak_observed)

(* --- Edge cases --------------------------------------------------------- *)

let test_empty_graph () =
  let graph = Graph.build (Graph.builder ~name:"empty" ~deadline:100.0) in
  let pes = platform_pes 2 in
  let r =
    Online.run
      ~arrivals:(Online.zero graph)
      ~graph ~lib:platform_lib ~pes ~policy:(Online.Mirror Policy.Baseline) ()
  in
  Alcotest.(check int) "no entries" 0 (Array.length r.Online.schedule.Schedule.entries);
  check_bits "zero makespan" 0.0 r.Online.schedule.Schedule.makespan;
  let clair =
    Online.clairvoyant
      ~arrivals:(Online.zero graph)
      ~graph ~lib:platform_lib ~pes ~policy:Policy.Baseline ()
  in
  let hotspot = platform_hotspot 2 in
  let s = Online.score ~lib:platform_lib ~hotspot ~clairvoyant:clair r in
  check_bits "degenerate makespan ratio" 1.0 s.Online.makespan_ratio;
  Alcotest.(check bool) "peak ratio >= 1" true (s.Online.peak_ratio >= 1.0)

let test_singleton_release () =
  let b = Graph.builder ~name:"one" ~deadline:100.0 in
  let _t0 = Graph.add_task b ~task_type:0 () in
  let graph = Graph.build b in
  let pes = platform_pes 2 in
  let r =
    Online.run ~arrivals:[| 7.5 |] ~graph ~lib:platform_lib ~pes
      ~policy:(Online.Mirror Policy.Baseline) ()
  in
  let e = r.Online.schedule.Schedule.entries.(0) in
  check_bits "starts exactly at release" 7.5 e.Schedule.start;
  Alcotest.(check (list Alcotest.reject)) "no violations" []
    (Schedule.validate ~lib:platform_lib r.Online.schedule);
  Alcotest.(check (list Alcotest.int)) "release respected" []
    (Online.released_before_start r)

let test_all_simultaneous_release () =
  (* Every task appears at t = 42: one decision event, everything starts
     at or after 42, and the schedule stays feasible. *)
  let graph = bm1 () in
  let pes = platform_pes 4 in
  let arrivals = Array.make (Graph.n_tasks graph) 42.0 in
  let r =
    Online.run ~arrivals ~graph ~lib:platform_lib ~pes
      ~policy:(Online.Mirror Policy.Baseline) ()
  in
  Alcotest.(check int) "one event" 1 r.Online.stats.Online.events;
  Array.iter
    (fun (e : Schedule.entry) ->
      Alcotest.(check bool) "start >= 42" true (e.Schedule.start >= 42.0))
    r.Online.schedule.Schedule.entries;
  Alcotest.(check int) "feasible" 0
    (List.length (Schedule.validate ~lib:platform_lib r.Online.schedule));
  let offline =
    List_sched.run ~graph ~lib:platform_lib ~pes ~policy:Policy.Baseline ()
  in
  Alcotest.(check bool)
    "shifted stream cannot beat the offline makespan" true
    (r.Online.schedule.Schedule.makespan
    >= offline.Schedule.makespan -. 1e-9)

(* --- Validation and policy plumbing ------------------------------------- *)

let test_arrivals_validation () =
  let graph = bm1 () in
  let pes = platform_pes 4 in
  let run arrivals =
    ignore
      (Online.run ~arrivals ~graph ~lib:platform_lib ~pes
         ~policy:(Online.Mirror Policy.Baseline) ()
        : Online.run)
  in
  let invalid f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "short array" true (invalid (fun () -> run [| 0.0 |]));
  Alcotest.(check bool) "negative release" true
    (invalid (fun () ->
         let a = Online.zero graph in
         a.(3) <- -1.0;
         run a));
  Alcotest.(check bool) "nan release" true
    (invalid (fun () ->
         let a = Online.zero graph in
         a.(0) <- Float.nan;
         run a));
  Alcotest.(check bool) "non-positive mean gap" true
    (invalid (fun () -> ignore (Online.sporadic ~mean_gap:0.0 ~seed:1 graph)))

let test_policy_needs_hotspot () =
  let graph = bm1 () in
  let pes = platform_pes 4 in
  let raises policy =
    try
      ignore
        (Online.run
           ~arrivals:(Online.zero graph)
           ~graph ~lib:platform_lib ~pes ~policy ()
          : Online.run);
      false
    with Online.Policy_needs_hotspot -> true
  in
  Alcotest.(check bool) "thermal mirror" true
    (raises (Online.Mirror Policy.Thermal_aware));
  Alcotest.(check bool) "reactive" true
    (raises (Online.Reactive Online.default_reactive));
  Alcotest.(check bool) "wrong block count" true
    (try
       ignore
         (Online.run
            ~hotspot:(platform_hotspot 2)
            ~arrivals:(Online.zero graph)
            ~graph ~lib:platform_lib ~pes
            ~policy:(Online.Mirror Policy.Thermal_aware) ()
           : Online.run);
       false
     with Invalid_argument _ -> true)

let test_policy_names_roundtrip () =
  List.iter
    (fun p ->
      let o = Online.Mirror p in
      match Online.policy_of_name (Online.policy_name o) with
      | Some (Online.Mirror p') ->
          Alcotest.(check bool) ("mirror " ^ Policy.name p) true (p = p')
      | _ -> Alcotest.failf "mirror %s did not round-trip" (Policy.name p))
    Policy.all;
  (match Online.policy_of_name "reactive" with
  | Some (Online.Reactive r) ->
      Alcotest.(check bool) "reactive default" true (r = Online.default_reactive)
  | _ -> Alcotest.fail "reactive did not parse");
  Alcotest.(check bool) "unknown name" true (Online.policy_of_name "bogus" = None)

(* --- Arrival streams ---------------------------------------------------- *)

let test_sporadic_respects_precedence () =
  let graph = bm2 () in
  let a = Online.sporadic ~seed:11 graph in
  for v = 0 to Graph.n_tasks graph - 1 do
    Alcotest.(check bool) "non-negative" true (a.(v) >= 0.0);
    List.iter
      (fun (p, _) ->
        Alcotest.(check bool)
          (Printf.sprintf "release %d after pred %d" v p)
          true (a.(v) > a.(p)))
      (Graph.preds graph v)
  done

let test_sporadic_deterministic () =
  let graph = bm1 () in
  let a = Online.sporadic ~seed:7 graph in
  let b = Online.sporadic ~seed:7 graph in
  Array.iteri (fun i ai -> check_bits (Printf.sprintf "task %d" i) ai b.(i)) a;
  let c = Online.sporadic ~seed:8 graph in
  Alcotest.(check bool) "seed changes the stream" true (a <> c)

let test_of_trace_replays_starts () =
  let graph = bm1 () in
  let pes = platform_pes 4 in
  let offline =
    List_sched.run ~graph ~lib:platform_lib ~pes ~policy:Policy.Baseline ()
  in
  let a = Online.of_trace offline in
  Array.iteri
    (fun i (e : Schedule.entry) ->
      check_bits (Printf.sprintf "task %d" i) e.Schedule.start a.(i))
    offline.Schedule.entries;
  (* The trace-driven stream is feasible to schedule online. *)
  let r =
    Online.run ~arrivals:a ~graph ~lib:platform_lib ~pes
      ~policy:(Online.Mirror Policy.Baseline) ()
  in
  Alcotest.(check int) "feasible" 0
    (List.length (Schedule.validate ~lib:platform_lib r.Online.schedule))

(* --- Properties over randomized streams --------------------------------- *)

let seeds = [ 1; 2; 3; 5; 8; 13 ]

let test_prop_always_feasible () =
  let graph = bm1 () in
  let pes = platform_pes 4 in
  let hotspot = platform_hotspot 4 in
  List.iter
    (fun seed ->
      let arrivals = Online.sporadic ~seed graph in
      List.iter
        (fun policy ->
          let r =
            Online.run ~hotspot ~arrivals ~graph ~lib:platform_lib ~pes ~policy
              ()
          in
          Alcotest.(check int)
            (Printf.sprintf "seed %d %s: validates" seed
               (Online.policy_name policy))
            0
            (List.length (Schedule.validate ~lib:platform_lib r.Online.schedule));
          Alcotest.(check (list Alcotest.int))
            (Printf.sprintf "seed %d %s: releases respected" seed
               (Online.policy_name policy))
            [] (Online.released_before_start r);
          Array.iteri
            (fun t (e : Schedule.entry) ->
              Alcotest.(check bool) "start >= release" true
                (e.Schedule.start >= arrivals.(t)))
            r.Online.schedule.Schedule.entries)
        [
          Online.Mirror Policy.Baseline;
          Online.Mirror Policy.Thermal_aware;
          Online.Reactive Online.default_reactive;
        ])
    seeds

let test_prop_clairvoyant_never_loses () =
  let graph = bm2 () in
  let pes = platform_pes 4 in
  let hotspot = platform_hotspot 4 in
  List.iter
    (fun seed ->
      let arrivals = Online.sporadic ~seed graph in
      let clair =
        Online.clairvoyant ~hotspot ~arrivals ~graph ~lib:platform_lib ~pes
          ~policy:Policy.Thermal_aware ()
      in
      let r =
        Online.run ~hotspot ~arrivals ~graph ~lib:platform_lib ~pes
          ~policy:(Online.Mirror Policy.Thermal_aware) ()
      in
      let s = Online.score ~lib:platform_lib ~hotspot ~clairvoyant:clair r in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: makespan ratio >= 1" seed)
        true
        (s.Online.makespan_ratio >= 1.0);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: peak ratio >= 1" seed)
        true
        (s.Online.peak_ratio >= 1.0))
    seeds

let test_prop_replay_peak_bitwise () =
  (* Replay-based scoring is exactly the Transient engine: driving the
     engine by hand over the same profile must reproduce the scored peak
     bit for bit. *)
  let graph = bm1 () in
  let pes = platform_pes 4 in
  let hotspot = platform_hotspot 4 in
  List.iter
    (fun seed ->
      let arrivals = Online.sporadic ~seed graph in
      let r =
        Online.run ~hotspot ~arrivals ~graph ~lib:platform_lib ~pes
          ~policy:(Online.Reactive Online.default_reactive) ()
      in
      let profile = Replay.of_schedule ~lib:platform_lib r.Online.schedule in
      let scored = Replay.peaks ~hotspot profile in
      let model = Hotspot.model hotspot in
      let engine = Transient.create (Transient.of_model model) in
      let res =
        Transient.replay engine ~profile
          ~t0:(Transient.initial_ambient model)
          ~dt:(Transient.profile_duration profile /. 100.0)
          ~periods:50
      in
      let manual =
        Array.sub res.Transient.last_period_peak 0 (Rcmodel.n_blocks model)
      in
      Alcotest.(check int) "block count" (Array.length manual)
        (Array.length scored);
      Array.iteri
        (fun i m ->
          check_bits (Printf.sprintf "seed %d block %d" seed i) m scored.(i))
        manual)
    [ 1; 5; 13 ]

let test_prop_jobs_identity () =
  (* A batch of sporadic streams evaluated under 1-, 2- and 4-domain
     pools must give bitwise-identical schedules — per-stream work is
     seeded by Rng.derive and every run builds its own transient engine. *)
  let graph = bm1 () in
  let pes = platform_pes 4 in
  let hotspot = platform_hotspot 4 in
  let streams = Array.init 8 (fun i -> i * 17) in
  let evaluate jobs =
    Pool.with_pool ~jobs (fun pool ->
        Pool.parallel_map pool
          (fun seed ->
            let arrivals = Online.sporadic ~seed graph in
            let r =
              Online.run ~hotspot ~arrivals ~graph ~lib:platform_lib ~pes
                ~policy:(Online.Reactive Online.default_reactive) ()
            in
            Array.map
              (fun (e : Schedule.entry) ->
                ( e.Schedule.task,
                  e.Schedule.pe,
                  Int64.bits_of_float e.Schedule.start,
                  Int64.bits_of_float e.Schedule.finish ))
              r.Online.schedule.Schedule.entries)
          streams)
  in
  let reference = evaluate 1 in
  List.iter
    (fun jobs ->
      let got = evaluate jobs in
      Array.iteri
        (fun i expected ->
          Alcotest.(check bool)
            (Printf.sprintf "stream %d identical at jobs %d" i jobs)
            true
            (expected = got.(i)))
        reference)
    [ 2; 4 ]

(* --- Reactive behaviour ------------------------------------------------- *)

let test_reactive_deferrals_bounded () =
  (* trigger 0 °C: every PE is always "hot", so each task is deferred
     exactly max_defers times before the cap forces the commit. *)
  let b = Graph.builder ~name:"hot" ~deadline:1000.0 in
  let t0 = Graph.add_task b ~task_type:0 () in
  let t1 = Graph.add_task b ~task_type:1 () in
  let t2 = Graph.add_task b ~task_type:2 () in
  Graph.add_edge b ~data:16.0 t0 t1;
  Graph.add_edge b ~data:16.0 t0 t2;
  let graph = Graph.build b in
  let pes = platform_pes 4 in
  let hotspot = platform_hotspot 4 in
  let policy =
    Online.Reactive
      {
        Online.default_reactive with
        Online.trigger = 0.0;
        Online.cooldown = 5.0;
        Online.max_defers = 2;
      }
  in
  let r =
    Online.run ~hotspot
      ~arrivals:(Online.zero graph)
      ~graph ~lib:platform_lib ~pes ~policy ()
  in
  Alcotest.(check int) "deferrals = tasks * max_defers" (3 * 2)
    r.Online.stats.Online.deferrals;
  Alcotest.(check int) "still schedules everything" 3
    (Array.length r.Online.schedule.Schedule.entries);
  Alcotest.(check int) "feasible" 0
    (List.length (Schedule.validate ~lib:platform_lib r.Online.schedule));
  Alcotest.(check bool) "deferrals delay the start" true
    (r.Online.schedule.Schedule.entries.(t0).Schedule.start >= 10.0)

let test_stats_sanity () =
  let graph = bm1 () in
  let pes = platform_pes 4 in
  let hotspot = platform_hotspot 4 in
  let arrivals = Online.sporadic ~seed:3 graph in
  let mirror =
    Online.run ~arrivals ~graph ~lib:platform_lib ~pes
      ~policy:(Online.Mirror Policy.Baseline) ()
  in
  Alcotest.(check int) "decisions = tasks" (Graph.n_tasks graph)
    mirror.Online.stats.Online.decisions;
  Alcotest.(check bool) "events >= 1" true (mirror.Online.stats.Online.events >= 1);
  Alcotest.(check bool) "candidates counted" true
    (mirror.Online.stats.Online.candidates >= Graph.n_tasks graph * 4);
  Alcotest.(check bool) "mirror never samples temperature" true
    (Float.is_nan mirror.Online.stats.Online.peak_observed);
  let reactive =
    Online.run ~hotspot ~arrivals ~graph ~lib:platform_lib ~pes
      ~policy:(Online.Reactive Online.default_reactive) ()
  in
  Alcotest.(check bool) "reactive samples temperature" true
    (Float.is_finite reactive.Online.stats.Online.peak_observed)

let () =
  Alcotest.run "online"
    [
      ( "differential",
        [
          Alcotest.test_case "t0 bit-identity, all policies, Bm1" `Quick
            test_t0_bit_identity_all_policies;
          Alcotest.test_case "t0 bit-identity, Bm2/Bm3" `Quick
            test_t0_bit_identity_bm2_bm3;
          Alcotest.test_case "clairvoyant(zero) = offline" `Quick
            test_clairvoyant_zero_equals_offline;
          Alcotest.test_case "reactive(cold trigger) = mirror" `Quick
            test_reactive_cold_trigger_equals_mirror;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
          Alcotest.test_case "singleton release" `Quick test_singleton_release;
          Alcotest.test_case "all-simultaneous release" `Quick
            test_all_simultaneous_release;
        ] );
      ( "validation",
        [
          Alcotest.test_case "arrival validation" `Quick
            test_arrivals_validation;
          Alcotest.test_case "policies need a hotspot" `Quick
            test_policy_needs_hotspot;
          Alcotest.test_case "policy names round-trip" `Quick
            test_policy_names_roundtrip;
        ] );
      ( "arrival streams",
        [
          Alcotest.test_case "sporadic respects precedence" `Quick
            test_sporadic_respects_precedence;
          Alcotest.test_case "sporadic is deterministic" `Quick
            test_sporadic_deterministic;
          Alcotest.test_case "of_trace replays starts" `Quick
            test_of_trace_replays_starts;
        ] );
      ( "properties",
        [
          Alcotest.test_case "always feasible" `Quick test_prop_always_feasible;
          Alcotest.test_case "clairvoyant never loses" `Quick
            test_prop_clairvoyant_never_loses;
          Alcotest.test_case "replay peak bitwise = transient engine" `Quick
            test_prop_replay_peak_bitwise;
          Alcotest.test_case "jobs 1/2/4 bit-identity" `Quick
            test_prop_jobs_identity;
        ] );
      ( "reactive",
        [
          Alcotest.test_case "deferrals bounded by max_defers" `Quick
            test_reactive_deferrals_bounded;
          Alcotest.test_case "stats sanity" `Quick test_stats_sanity;
        ] );
    ]
