(* Heterogeneous-platform battery.

   The typed platform flow claims to be a *strict generalization* of the
   historical identical-cores path. This suite holds it to that claim from
   three sides:

   - Differential: on the degenerate single-kind platform (std4) every
     policy, pool size, scheduler (list / HEFT) and the online event loop
     must reproduce the homogeneous path bit for bit — schedules entry by
     entry, metrics at the Int64 level.
   - Properties (seeded): on genuinely mixed platforms, pins are honored
     and isolation classes never co-locate, checked post hoc with
     [Constraints.violations] over generated DAGs.
   - Rejection: contradictory specs fail up front with [Constraints.Invalid]
     and a descriptive message; runtime dead-ends raise
     [Constraints.Infeasible] naming the scheduler.

   Plus the campaign "hetero" builtin (expansion, labels, round-trip,
   validation), since the campaign layer is how these cells enter CI. *)

module Flow = Tats_cosynth.Flow
module Catalog = Tats_techlib.Catalog
module Platform = Tats_techlib.Platform
module Library = Tats_techlib.Library
module Policy = Tats_sched.Policy
module Schedule = Tats_sched.Schedule
module Constraints = Tats_sched.Constraints
module List_sched = Tats_sched.List_sched
module Heft = Tats_sched.Heft
module Online = Tats_sched.Online
module Metrics = Tats_sched.Metrics
module Benchmarks = Tats_taskgraph.Benchmarks
module Graph = Tats_taskgraph.Graph
module Generator = Tats_taskgraph.Generator
module Pool = Tats_util.Pool
module Campaign = Tats_campaign.Campaign

let bits = Int64.bits_of_float

let exact what a b =
  Alcotest.(check bool)
    (Printf.sprintf "%s (%h vs %h)" what a b)
    true
    (Int64.equal (bits a) (bits b))

let std4 () = Option.get (Catalog.platform_named "std4")
let biglittle4 () = Option.get (Catalog.platform_named "biglittle4")
let mixed6 () = Option.get (Catalog.platform_named "mixed6")

let schedules_identical what (a : Schedule.t) (b : Schedule.t) =
  Alcotest.(check int)
    (what ^ ": n_pes") (Schedule.n_pes a) (Schedule.n_pes b);
  exact (what ^ ": makespan") a.Schedule.makespan b.Schedule.makespan;
  Alcotest.(check int)
    (what ^ ": entry count")
    (Array.length a.Schedule.entries)
    (Array.length b.Schedule.entries);
  Array.iteri
    (fun i (ea : Schedule.entry) ->
      let eb = b.Schedule.entries.(i) in
      let w fmt = Printf.sprintf "%s: task %d %s" what i fmt in
      Alcotest.(check int) (w "pe") ea.Schedule.pe eb.Schedule.pe;
      exact (w "start") ea.Schedule.start eb.Schedule.start;
      exact (w "finish") ea.Schedule.finish eb.Schedule.finish;
      exact (w "energy") ea.Schedule.energy eb.Schedule.energy)
    a.Schedule.entries

let assignment (s : Schedule.t) =
  Array.map (fun (e : Schedule.entry) -> e.Schedule.pe) s.Schedule.entries

(* --- differential: the degenerate platform is the homogeneous path ------- *)

let test_degenerate_library_identical () =
  (* library_for std4 must draw the same RNG stream as platform_library:
     same task types, same WCET/WCPC tables on the single kind. *)
  let classic = Catalog.platform_library () in
  let typed = Catalog.library_for (std4 ()) in
  Alcotest.(check int)
    "task types" (Library.n_task_types classic) (Library.n_task_types typed);
  Alcotest.(check int) "kinds" 1 (Array.length (Library.kinds typed));
  for tt = 0 to Library.n_task_types classic - 1 do
    exact
      (Printf.sprintf "wcet type %d" tt)
      (Library.wcet classic ~task_type:tt ~kind:0)
      (Library.wcet typed ~task_type:tt ~kind:0);
    exact
      (Printf.sprintf "wcpc type %d" tt)
      (Library.wcpc classic ~task_type:tt ~kind:0)
      (Library.wcpc typed ~task_type:tt ~kind:0)
  done

let test_degenerate_flow_bit_identity () =
  (* Every policy, benches Bm1/Bm2, pool jobs 1 and 4: the typed std4
     platform vs the historical identical-cores flow, compared on the full
     schedule and every reported metric. *)
  let platform = std4 () in
  List.iter
    (fun jobs ->
      Pool.set_default_jobs jobs;
      List.iter
        (fun bench ->
          let graph = Benchmarks.load bench in
          List.iter
            (fun policy ->
              let what =
                Printf.sprintf "%s/%s/jobs%d" (Graph.name graph)
                  (Policy.name policy) jobs
              in
              let classic =
                Flow.run_platform ~graph
                  ~lib:(Catalog.platform_library ())
                  ~policy ()
              in
              let typed =
                Flow.run_platform ~platform ~graph
                  ~lib:(Catalog.library_for platform)
                  ~policy ()
              in
              schedules_identical what classic.Flow.schedule typed.Flow.schedule;
              exact (what ^ ": total power") classic.Flow.row.Metrics.total_power
                typed.Flow.row.Metrics.total_power;
              exact (what ^ ": max temp") classic.Flow.row.Metrics.max_temp
                typed.Flow.row.Metrics.max_temp;
              exact (what ^ ": avg temp") classic.Flow.row.Metrics.avg_temp
                typed.Flow.row.Metrics.avg_temp;
              exact (what ^ ": arch cost") classic.Flow.arch_cost
                typed.Flow.arch_cost)
            Policy.all)
        [ 0; 1 ])
    [ 1; 4 ];
  Pool.set_default_jobs 1

let test_degenerate_heft_bit_identity () =
  let graph = Benchmarks.load 0 in
  let classic =
    Heft.run ~graph
      ~lib:(Catalog.platform_library ())
      ~pes:(Catalog.platform_instances 4) ()
  in
  let platform = std4 () in
  let typed =
    Heft.run ~graph
      ~lib:(Catalog.library_for platform)
      ~pes:(Platform.instances platform) ()
  in
  schedules_identical "heft std4" classic typed

let test_degenerate_online_bit_identity () =
  (* The online event loop through the same lens: zero and sporadic
     arrival streams, mirror policy, online + clairvoyant schedules. *)
  let graph = Benchmarks.load 0 in
  let platform = std4 () in
  List.iter
    (fun arrivals ->
      let classic =
        Flow.run_online ~arrivals ~graph
          ~lib:(Catalog.platform_library ())
          ~policy:(Online.Mirror Policy.Thermal_aware) ()
      in
      let typed =
        Flow.run_online ~platform ~arrivals ~graph
          ~lib:(Catalog.library_for platform)
          ~policy:(Online.Mirror Policy.Thermal_aware) ()
      in
      let what = Flow.arrival_source_name arrivals in
      schedules_identical (what ^ " online")
        classic.Flow.online.Online.schedule typed.Flow.online.Online.schedule;
      schedules_identical (what ^ " clairvoyant")
        classic.Flow.clairvoyant_schedule typed.Flow.clairvoyant_schedule;
      exact (what ^ ": makespan ratio")
        classic.Flow.score.Online.makespan_ratio
        typed.Flow.score.Online.makespan_ratio)
    [ Flow.Release_zero; Flow.Release_sporadic 3 ]

(* --- properties: pins honored, isolation never co-located ----------------- *)

(* A feasible-by-construction random spec over [n] tasks: two distinct
   pinned tasks (one To_pe, one To_kind) and three distinct classed tasks
   (classes 0, 1, 0), all five tasks distinct, classes <= n_pes. *)
let seeded_spec seed platform n =
  let n_pes = Platform.n_pes platform in
  let n_kinds = Platform.n_kinds platform in
  let distinct_tasks k =
    (* k distinct task ids, seeded but collision-free *)
    let rec grow acc i =
      if List.length acc = k then List.rev acc
      else
        let t = (seed + (i * 7)) mod n in
        grow (if List.mem t acc then acc else t :: acc) (i + 1)
    in
    grow [] 0
  in
  match distinct_tasks 5 with
  | [ a; b; c; d; e ] ->
      {
        Constraints.pins =
          [ (a, Constraints.To_pe (seed mod n_pes));
            (b, Constraints.To_kind (seed mod n_kinds)) ];
        isolation = [ (c, 0); (d, 1); (e, 0) ];
      }
  | _ -> assert false

let check_no_violations what platform spec (s : Schedule.t) =
  let pes = Platform.instances platform in
  (match Constraints.violations spec ~pes ~assignment:(assignment s) with
  | [] -> ()
  | vs ->
      Alcotest.failf "%s: %d constraint violations, first: %s" what
        (List.length vs) (List.hd vs));
  (* Spell the two key properties out explicitly as well. *)
  List.iter
    (fun (task, pin) ->
      let pe = s.Schedule.entries.(task).Schedule.pe in
      match pin with
      | Constraints.To_pe p ->
          Alcotest.(check int) (Printf.sprintf "%s: task %d pin" what task) p pe
      | Constraints.To_kind k ->
          Alcotest.(check int)
            (Printf.sprintf "%s: task %d kind pin" what task)
            k
            pes.(pe).Tats_techlib.Pe.kind.Tats_techlib.Pe.kind_id)
    spec.Constraints.pins;
  let class_pes = Hashtbl.create 8 in
  List.iter
    (fun (task, cls) ->
      Hashtbl.replace class_pes cls
        (s.Schedule.entries.(task).Schedule.pe
        :: Option.value ~default:[] (Hashtbl.find_opt class_pes cls)))
    spec.Constraints.isolation;
  Hashtbl.iter
    (fun cls pes_of_cls ->
      Hashtbl.iter
        (fun cls' pes_of_cls' ->
          if cls < cls' then
            List.iter
              (fun p ->
                if List.mem p pes_of_cls' then
                  Alcotest.failf "%s: classes %d and %d share PE %d" what cls
                    cls' p)
              pes_of_cls)
        class_pes)
    class_pes

let test_pins_and_isolation_respected () =
  for seed = 0 to 9 do
    let platform = if seed mod 2 = 0 then biglittle4 () else mixed6 () in
    let policy = if seed mod 3 = 0 then Policy.Baseline else Policy.Thermal_aware in
    let n_tasks = 10 + (seed mod 4) in
    let graph =
      Generator.generate ~seed:(100 + seed)
        ~name:(Printf.sprintf "prop%d" seed)
        (Generator.scaled_spec ~n_tasks)
    in
    let spec = seeded_spec seed platform n_tasks in
    let o =
      Flow.run_platform ~platform ~constraints:spec ~graph
        ~lib:(Catalog.library_for platform)
        ~policy ()
    in
    check_no_violations
      (Printf.sprintf "flow seed %d on %s" seed (Platform.name platform))
      platform spec o.Flow.schedule
  done

let test_heft_and_online_respect_constraints () =
  let platform = mixed6 () in
  let lib = Catalog.library_for platform in
  let graph = Benchmarks.load 0 in
  let n = Graph.n_tasks graph in
  let spec = seeded_spec 4 platform n in
  let heft_s =
    Heft.run ~constraints:spec ~graph ~lib ~pes:(Platform.instances platform) ()
  in
  check_no_violations "heft mixed6" platform spec heft_s;
  let o =
    Flow.run_online ~platform ~constraints:spec
      ~arrivals:(Flow.Release_sporadic 2) ~graph ~lib
      ~policy:(Online.Mirror Policy.Thermal_aware) ()
  in
  check_no_violations "online mixed6" platform spec
    o.Flow.online.Online.schedule;
  check_no_violations "clairvoyant mixed6" platform spec
    o.Flow.clairvoyant_schedule

(* --- rejection: named, up-front errors ------------------------------------ *)

let expect_invalid what needle f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Constraints.Invalid" what
  | exception Constraints.Invalid msg ->
      if
        not
          (let nl = String.length needle and ml = String.length msg in
           let rec scan i =
             i + nl <= ml && (String.sub msg i nl = needle || scan (i + 1))
           in
           scan 0)
      then Alcotest.failf "%s: message %S lacks %S" what msg needle

let run_constrained spec () =
  let platform = biglittle4 () in
  Flow.run_platform ~platform ~constraints:spec ~graph:(Benchmarks.load 0)
    ~lib:(Catalog.library_for platform)
    ~policy:Policy.Baseline ()

let test_invalid_specs_rejected () =
  expect_invalid "pe pin out of range" "pinned to PE 7" (fun () ->
      run_constrained
        { Constraints.pins = [ (0, Constraints.To_pe 7) ]; isolation = [] }
        ());
  expect_invalid "kind pin absent" "pinned to kind 9" (fun () ->
      run_constrained
        { Constraints.pins = [ (0, Constraints.To_kind 9) ]; isolation = [] }
        ());
  expect_invalid "task pinned twice" "pinned twice" (fun () ->
      run_constrained
        {
          Constraints.pins =
            [ (1, Constraints.To_pe 0); (1, Constraints.To_kind 1) ];
          isolation = [];
        }
        ());
  expect_invalid "too many classes" "5 isolation classes but only 4 PEs"
    (fun () ->
      run_constrained
        {
          Constraints.pins = [];
          isolation = [ (0, 0); (1, 1); (2, 2); (3, 3); (4, 4) ];
        }
        ());
  expect_invalid "conflicting class pins" "both pinned to PE 0" (fun () ->
      run_constrained
        {
          Constraints.pins =
            [ (0, Constraints.To_pe 0); (1, Constraints.To_pe 0) ];
          isolation = [ (0, 0); (1, 1) ];
        }
        ());
  expect_invalid "pinned task out of range" "pinned task 99" (fun () ->
      run_constrained
        { Constraints.pins = [ (99, Constraints.To_pe 0) ]; isolation = [] }
        ())

let test_infeasible_combo_named () =
  (* Statically fine (3 classes, 4 PEs; kind pins claim nothing up front)
     but a runtime dead-end: three mutually isolated tasks all pinned to
     the two big cores. The scheduler must name itself in the error. *)
  let spec =
    {
      Constraints.pins =
        [
          (0, Constraints.To_kind 0);
          (1, Constraints.To_kind 0);
          (2, Constraints.To_kind 0);
        ];
      isolation = [ (0, 0); (1, 1); (2, 2) ];
    }
  in
  match run_constrained spec () with
  | _ -> Alcotest.fail "expected Constraints.Infeasible"
  | exception Constraints.Infeasible msg ->
      Alcotest.(check bool)
        (Printf.sprintf "message %S names the scheduler" msg)
        true
        (String.length msg >= 10 && String.sub msg 0 10 = "List_sched")

(* --- campaign builtin ----------------------------------------------------- *)

let test_campaign_hetero_builtin () =
  let spec = Option.get (Campaign.builtin "hetero") in
  let cells = Campaign.expand spec in
  Alcotest.(check int) "2 graphs x 2 policies x 4 platforms" 16
    (List.length cells);
  (* Round-trip: the hetero arch and constraint fields survive the
     canonical encoding, so cell ids are reproducible from disk. *)
  (match Campaign.spec_of_string (Campaign.spec_to_string spec) with
  | Ok spec' ->
      Alcotest.(check (list string))
        "cell ids round-trip"
        (List.map Campaign.cell_id cells)
        (List.map Campaign.cell_id (Campaign.expand spec'))
  | Error e -> Alcotest.failf "round-trip failed: %s" e);
  (* The constrained mixed6 point advertises its constraints in the label. *)
  let labels = List.map Campaign.cell_label cells in
  Alcotest.(check bool)
    "constrained label present" true
    (List.exists
       (fun l ->
         let suffix = "mixed6@45C/c1.2" in
         let ll = String.length l and sl = String.length suffix in
         ll >= sl && String.sub l (ll - sl) sl = suffix)
       labels);
  (* Unknown platform names and cosynth constraint combos are rejected at
     expansion, with the offending name spelled out. *)
  let bad_platform =
    {
      spec with
      Campaign.platforms =
        [
          {
            Campaign.arch = Campaign.Hetero "warp9";
            ambient = 45.0;
            power_budget = None;
            pins = [];
            isolation = [];
          };
        ];
    }
  in
  (match Campaign.expand bad_platform with
  | _ -> Alcotest.fail "expected Invalid_argument for unknown platform"
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%S mentions warp9" msg)
        true
        (let nl = 5 and ml = String.length msg in
         let rec scan i =
           i + nl <= ml && (String.sub msg i nl = "warp9" || scan (i + 1))
         in
         scan 0));
  let bad_cosynth =
    {
      spec with
      Campaign.platforms =
        [
          {
            Campaign.arch = Campaign.Cosynth;
            ambient = 45.0;
            power_budget = None;
            pins = [ (0, Constraints.To_pe 0) ];
            isolation = [];
          };
        ];
    }
  in
  match Campaign.expand bad_cosynth with
  | _ -> Alcotest.fail "expected Invalid_argument for cosynth constraints"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "hetero"
    [
      ( "differential",
        [
          Alcotest.test_case "degenerate library identical" `Quick
            test_degenerate_library_identical;
          Alcotest.test_case "flow bit-identity (policies x jobs)" `Slow
            test_degenerate_flow_bit_identity;
          Alcotest.test_case "heft bit-identity" `Quick
            test_degenerate_heft_bit_identity;
          Alcotest.test_case "online bit-identity" `Slow
            test_degenerate_online_bit_identity;
        ] );
      ( "properties",
        [
          Alcotest.test_case "pins and isolation respected (seeded)" `Slow
            test_pins_and_isolation_respected;
          Alcotest.test_case "heft and online respect constraints" `Slow
            test_heft_and_online_respect_constraints;
        ] );
      ( "rejection",
        [
          Alcotest.test_case "invalid specs named" `Quick
            test_invalid_specs_rejected;
          Alcotest.test_case "infeasible combo names scheduler" `Quick
            test_infeasible_combo_named;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "hetero builtin" `Quick
            test_campaign_hetero_builtin;
        ] );
    ]
