(* Tests for the serving layer: the JSON codec (round trips, float
   fidelity, malformed-input rejection), the length-prefixed framing
   (including truncated, oversized and garbage frames), the typed request
   protocol, and the server itself — concurrent clients must observe
   bit-identical results to direct library calls (the engine-sharing
   soundness claim), deadline and overload rejections must be explicit
   error replies, shutdown must drain admitted work, and the real tatsd
   binary must serve and stop cleanly as a subprocess. *)

module Json = Tats_serve.Json
module Frame = Tats_serve.Frame
module Protocol = Tats_serve.Protocol
module Engines = Tats_serve.Engines
module Server = Tats_serve.Server
module Client = Tats_serve.Client
module Benchmarks = Tats_taskgraph.Benchmarks
module Pe = Tats_techlib.Pe
module Catalog = Tats_techlib.Catalog
module Block = Tats_floorplan.Block
module Grid = Tats_floorplan.Grid
module Hotspot = Tats_thermal.Hotspot
module Policy = Tats_sched.Policy
module Online = Tats_sched.Online
module Schedule = Tats_sched.Schedule
module Metrics = Tats_sched.Metrics
module Replay = Tats_sched.Replay
module Flow = Tats_cosynth.Flow
module Pool = Tats_util.Pool

let () = Pool.set_default_jobs 2

(* Deterministic pseudo-random bytes for the fuzz cases. *)
let lcg = ref 0x2026
let rand_int bound =
  lcg := ((!lcg * 1103515245) + 12345) land 0x3FFFFFFF;
  (!lcg lsr 7) mod bound
let rand_string max_len =
  let len = 1 + rand_int max_len in
  String.init len (fun _ -> Char.chr (rand_int 256))

let policy name = Option.get (Policy.of_name name)

(* Record-literal helpers: the heterogeneity extension fields default to
   absent/empty, exactly like requests that never mention them. *)
let sched_params ?platform ?(pins = []) ?(isolation = []) bench pname arch
    n_pes =
  { Protocol.bench; policy = policy pname; arch; n_pes; platform; pins; isolation }

let online_params ?platform ?(pins = []) ?(isolation = []) ~policy:o_policy
    ~arrivals:o_arrivals ~seed:o_seed ~mean_gap:o_mean_gap o_bench o_n_pes =
  {
    Protocol.o_bench;
    o_n_pes;
    o_policy;
    o_arrivals;
    o_seed;
    o_mean_gap;
    o_platform = platform;
    o_pins = pins;
    o_isolation = isolation;
  }

let ok_or_fail what = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: %s" what msg

let get_num reply field =
  match Json.mem field reply with
  | Some (Json.Num f) -> f
  | _ -> Alcotest.failf "missing numeric %S in %s" field (Json.to_string reply)

let get_farr reply field =
  match Option.bind (Json.mem field reply) Json.float_array with
  | Some a -> a
  | None -> Alcotest.failf "missing array %S in %s" field (Json.to_string reply)

let bits = Int64.bits_of_float

let check_bits name a b =
  if bits a <> bits b then
    Alcotest.failf "%s: served %.17g <> direct %.17g" name a b

let check_bits_arr name a b =
  Alcotest.(check int) (name ^ " length") (Array.length b) (Array.length a);
  Array.iteri (fun i x -> check_bits (Printf.sprintf "%s.(%d)" name i) x b.(i)) a

let error_code reply =
  match Protocol.reply_error reply with Some (code, _) -> code | None -> "ok"

(* --- JSON codec ----------------------------------------------------------- *)

let test_json_roundtrip () =
  let cases =
    [
      Json.Null;
      Json.Bool true;
      Json.Bool false;
      Json.Num 0.0;
      Json.Num (-1.5);
      Json.Num 3.0;
      Json.Str "";
      Json.Str "hello \"world\"\n\t\\";
      Json.Str "caf\xc3\xa9";
      Json.Arr [];
      Json.Obj [];
      Json.Arr [ Json.Num 1.0; Json.Str "x"; Json.Null ];
      Json.Obj
        [
          ("a", Json.Arr [ Json.Obj [ ("b", Json.Bool false) ] ]);
          ("empty", Json.Obj []);
        ];
    ]
  in
  List.iter
    (fun v ->
      let s = Json.to_string v in
      match Json.of_string s with
      | Ok v' -> Alcotest.(check bool) ("roundtrip " ^ s) true (v = v')
      | Error e -> Alcotest.failf "reparse of %s failed: %s" s e)
    cases

let test_json_float_fidelity () =
  let floats =
    [
      0.1; 1.0 /. 3.0; Float.pi; 1e-300; 1e300; -0.0; 12345678901234567.0;
      1.5e-9; 0x1.fffffffffffffp-2; min_float; max_float;
    ]
  in
  List.iter
    (fun f ->
      let s = Json.to_string (Json.Num f) in
      match Json.of_string s with
      | Ok (Json.Num f') ->
          if bits f <> bits f' then
            Alcotest.failf "float %h printed %s reparsed %h" f s f'
      | other ->
          Alcotest.failf "float %h printed %s reparsed oddly: %s" f s
            (match other with Ok v -> Json.to_string v | Error e -> e))
    floats;
  (* Non-finite numbers have no JSON spelling; the printer emits null. *)
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.Num Float.nan));
  Alcotest.(check string) "inf is null" "null"
    (Json.to_string (Json.Num Float.infinity))

let test_json_rejects () =
  let bad =
    [
      ""; "   "; "{"; "}"; "[1,"; "[1 2]"; "{\"a\":}"; "{\"a\" 1}";
      "\"unterminated"; "tru"; "nul"; "1.2.3"; "+5"; "01x"; "[1] trailing";
      "{\"a\":1,}"; "\xff\xfe"; "\"bad \\q escape\""; "\"\\u12\"";
    ]
  in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Error _ -> ()
      | Ok v ->
          Alcotest.failf "accepted malformed %S as %s" s (Json.to_string v))
    bad;
  (* Deep nesting is bounded, not stack-fatal. *)
  let deep = String.make 600 '[' ^ String.make 600 ']' in
  (match Json.of_string deep with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted 600-deep nesting");
  (* Fuzz: arbitrary bytes never raise. *)
  for _ = 1 to 500 do
    match Json.of_string (rand_string 80) with Ok _ | Error _ -> ()
  done

(* --- framing -------------------------------------------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let raw_header len =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.to_string b

let send_raw fd s =
  let n = Unix.write_substring fd s 0 (String.length s) in
  Alcotest.(check int) "raw write complete" (String.length s) n

let test_frame_roundtrip () =
  with_socketpair @@ fun a b ->
  List.iter
    (fun payload ->
      Frame.write a payload;
      match Frame.read b with
      | Ok p -> Alcotest.(check string) "frame payload" payload p
      | Error e ->
          Alcotest.failf "frame read failed: %a" Frame.pp_read_error e)
    [ "hello"; ""; String.make 100_000 'x'; "\x00\x01\xff" ]

let test_frame_errors () =
  (* Clean EOF between frames. *)
  with_socketpair (fun a b ->
      Unix.close a;
      match Frame.read b with
      | Error Frame.Eof -> ()
      | other ->
          Alcotest.failf "expected Eof, got %s"
            (match other with
            | Ok p -> Printf.sprintf "payload %S" p
            | Error e -> Format.asprintf "%a" Frame.pp_read_error e));
  (* EOF mid-frame is Truncated, not Eof. *)
  with_socketpair (fun a b ->
      send_raw a (raw_header 10);
      send_raw a "abc";
      Unix.close a;
      match Frame.read b with
      | Error Frame.Truncated -> ()
      | _ -> Alcotest.fail "expected Truncated");
  (* EOF mid-header is also Truncated. *)
  with_socketpair (fun a b ->
      send_raw a "\x00\x00";
      Unix.close a;
      match Frame.read b with
      | Error Frame.Truncated -> ()
      | _ -> Alcotest.fail "expected Truncated on partial header");
  (* A length beyond the cap is rejected before any allocation. *)
  with_socketpair (fun a b ->
      send_raw a (raw_header 5_000_000);
      match Frame.read ~max_frame:4_194_304 b with
      | Error (Frame.Oversized n) -> Alcotest.(check int) "size" 5_000_000 n
      | _ -> Alcotest.fail "expected Oversized");
  (* Negative when read as int32: also oversized, not a crash. *)
  with_socketpair (fun a b ->
      send_raw a "\xff\xff\xff\xff";
      match Frame.read b with
      | Error (Frame.Oversized _) -> ()
      | _ -> Alcotest.fail "expected Oversized on 0xffffffff header")

(* --- protocol ------------------------------------------------------------- *)

let test_protocol_roundtrip () =
  let reqs =
    [
      Protocol.request Protocol.Ping;
      Protocol.request ~id:(Json.Str "a") Protocol.Stats;
      Protocol.request ~deadline_ms:5.0 Protocol.Shutdown;
      Protocol.request (Protocol.Sleep 0.25);
      Protocol.request ~id:(Json.Num 7.0)
        (Protocol.Schedule (sched_params 2 "h2" Protocol.Platform 6));
      Protocol.request
        (Protocol.Schedule (sched_params 0 "thermal" Protocol.Cosynth 4));
      (* Heterogeneous platform requests: every extension field must
         survive the encode/decode round trip. *)
      Protocol.request ~id:(Json.Str "het")
        (Protocol.Schedule
           (sched_params ~platform:"biglittle4"
              ~pins:
                [
                  (0, Protocol.Constraints.To_pe 1);
                  (3, Protocol.Constraints.To_kind 1);
                ]
              ~isolation:[ (2, 0); (5, 1) ]
              1 "thermal" Protocol.Platform 4));
      Protocol.request
        (Protocol.Schedule
           (sched_params ~platform:"mixed6" 0 "h1" Protocol.Platform 4));
      Protocol.request
        (Protocol.Schedule
           (sched_params ~isolation:[ (0, 0); (1, 1); (2, 2) ] 0 "baseline"
              Protocol.Platform 4));
      Protocol.request
        (Protocol.Inquiry
           {
             Protocol.n_pes = 3;
             power = [| 0.5; 0.25; 0.125 |];
             idle = [| 0.1; 0.1; 0.1 |];
           });
      Protocol.request
        (Protocol.Transient
           {
             Protocol.sched = sched_params 1 "baseline" Protocol.Platform 4;
             periods = 10;
             dt = Some 0.0005;
             time_unit = 1e-3;
             exact = true;
           });
      Protocol.request
        (Protocol.Transient
           {
             Protocol.sched =
               sched_params ~platform:"std4"
                 ~pins:[ (1, Protocol.Constraints.To_pe 0) ]
                 0 "thermal" Protocol.Platform 4;
             periods = 10;
             dt = None;
             time_unit = 1e-3;
             exact = false;
           });
      Protocol.request ~id:(Json.Str "o1")
        (Protocol.Online
           (online_params ~policy:(Online.Mirror (policy "thermal"))
              ~arrivals:Protocol.Zero ~seed:1 ~mean_gap:25.0 0 4));
      Protocol.request
        (Protocol.Online
           (online_params
              ~policy:
                (Online.Reactive
                   { Online.default_reactive with Online.trigger = 50.0 })
              ~arrivals:Protocol.Sporadic ~seed:42 ~mean_gap:12.5 2 6));
      Protocol.request
        (Protocol.Online
           (online_params ~policy:(Online.Mirror (policy "baseline"))
              ~arrivals:Protocol.Trace ~seed:0 ~mean_gap:25.0 1 4));
      Protocol.request
        (Protocol.Online
           (online_params ~platform:"biglittle4"
              ~pins:[ (2, Protocol.Constraints.To_kind 1) ]
              ~isolation:[ (0, 0); (4, 1) ]
              ~policy:(Online.Mirror (policy "thermal"))
              ~arrivals:Protocol.Sporadic ~seed:7 ~mean_gap:20.0 0 4));
    ]
  in
  List.iter
    (fun req ->
      let json = Protocol.request_to_json req in
      let req' = ok_or_fail "decode" (Protocol.request_of_json json) in
      Alcotest.(check bool)
        ("roundtrip " ^ Json.to_string json)
        true (req = req'))
    reqs;
  (* Requests that never mention the heterogeneity extension must encode
     without its fields — old clients and goldens stay byte-stable. *)
  let plain =
    Json.to_string
      (Protocol.request_to_json
         (Protocol.request
            (Protocol.Schedule (sched_params 2 "h2" Protocol.Platform 6))))
  in
  List.iter
    (fun field ->
      (* Key position only: the arch *value* "platform" is legitimate. *)
      let re = Printf.sprintf "\"%s\":" field in
      Alcotest.(check bool)
        (Printf.sprintf "plain encoding omits %s" field)
        false
        (let len = String.length plain and flen = String.length re in
         let rec has i =
           i + flen <= len && (String.sub plain i flen = re || has (i + 1))
         in
         has 0))
    [ "platform"; "pins"; "isolation" ]

let test_protocol_rejects () =
  let bad =
    [
      "[]";
      "{}";
      {|{"kind": "warp"}|};
      {|{"kind": 7}|};
      {|{"kind": "schedule", "bench": "Bm9"}|};
      {|{"kind": "schedule", "policy": "coolest"}|};
      {|{"kind": "schedule", "arch": "quantum"}|};
      {|{"kind": "schedule", "n_pes": 0}|};
      {|{"kind": "schedule", "n_pes": 65}|};
      {|{"kind": "inquiry"}|};
      {|{"kind": "inquiry", "power": []}|};
      {|{"kind": "inquiry", "power": [1.0, "x"]}|};
      {|{"kind": "inquiry", "power": [1.0], "idle": [1.0, 2.0]}|};
      {|{"kind": "inquiry", "power": [1.0], "n_pes": 2}|};
      {|{"kind": "transient", "periods": 1}|};
      {|{"kind": "transient", "dt": -0.5}|};
      {|{"kind": "transient", "time_unit": 0}|};
      {|{"kind": "sleep", "ms": -1}|};
      {|{"kind": "sleep", "ms": 60001}|};
      {|{"kind": "ping", "deadline_ms": -2}|};
      {|{"kind": "online", "bench": "Bm9"}|};
      {|{"kind": "online", "policy": "psychic"}|};
      {|{"kind": "online", "policy": "thermal", "trigger": 60}|};
      {|{"kind": "online", "policy": "reactive", "trigger": 0}|};
      {|{"kind": "online", "policy": "reactive", "trigger": -5}|};
      {|{"kind": "online", "arrivals": "burst"}|};
      {|{"kind": "online", "seed": -1}|};
      {|{"kind": "online", "mean_gap": 0}|};
      {|{"kind": "online", "n_pes": 0}|};
      {|{"kind": "online", "n_pes": 65}|};
      {|{"kind": "schedule", "platform": "warp9"}|};
      {|{"kind": "schedule", "platform": 4}|};
      {|{"kind": "schedule", "arch": "cosynth", "platform": "std4"}|};
      {|{"kind": "schedule", "arch": "cosynth", "pins": [{"task": 0, "pe": 1}]}|};
      {|{"kind": "schedule", "arch": "cosynth", "isolation": [{"task": 0, "class": 0}]}|};
      {|{"kind": "schedule", "pins": [{"task": 0}]}|};
      {|{"kind": "schedule", "pins": [{"task": 0, "pe": 1, "kind": 1}]}|};
      {|{"kind": "schedule", "pins": [{"task": -1, "pe": 1}]}|};
      {|{"kind": "schedule", "pins": [{"task": 0.5, "pe": 1}]}|};
      {|{"kind": "schedule", "pins": 7}|};
      {|{"kind": "schedule", "isolation": [{"task": 0}]}|};
      {|{"kind": "schedule", "isolation": [{"task": 0, "class": -2}]}|};
      {|{"kind": "schedule", "isolation": "none"}|};
      {|{"kind": "online", "platform": "warp9"}|};
      {|{"kind": "online", "pins": [{"pe": 1}]}|};
    ]
  in
  List.iter
    (fun s ->
      let json = ok_or_fail ("parse " ^ s) (Json.of_string s) in
      match Protocol.request_of_json json with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted invalid request %s" s)
    bad

(* --- server: lifecycle and robustness ------------------------------------- *)

let with_server ?(config = Server.default_config) path f =
  let server = Server.create { config with Server.socket_path = path } in
  Fun.protect ~finally:(fun () -> Server.stop_and_wait server) (fun () -> f server)

let test_server_ping_stats () =
  with_server "t_serve_ping.sock" @@ fun _server ->
  Client.with_client "t_serve_ping.sock" @@ fun c ->
  let reply =
    ok_or_fail "ping" (Client.request c (Protocol.request Protocol.Ping))
  in
  Alcotest.(check bool) "ping ok" true (Protocol.reply_ok reply);
  let reply =
    ok_or_fail "stats"
      (Client.request c (Protocol.request ~id:(Json.Str "s1") Protocol.Stats))
  in
  Alcotest.(check bool) "stats ok" true (Protocol.reply_ok reply);
  Alcotest.(check bool)
    "stats echoes id" true
    (Json.mem "id" reply = Some (Json.Str "s1"));
  Alcotest.(check bool) "stats counts requests" true (get_num reply "requests" >= 1.0)

let test_server_rejects_garbage () =
  with_server "t_serve_garbage.sock" @@ fun _server ->
  (* Garbage payloads inside well-formed frames: one error reply each, and
     the connection keeps working. *)
  Client.with_client "t_serve_garbage.sock" @@ fun c ->
  for _ = 1 to 50 do
    match Client.call c (Json.Str (rand_string 60)) with
    | Ok reply ->
        (* A Str request is valid JSON but not an object. *)
        Alcotest.(check string) "code" "bad_request" (error_code reply)
    | Error e -> Alcotest.failf "transport error on garbage: %s" e
  done;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX "t_serve_garbage.sock");
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  for _ = 1 to 50 do
    let payload = rand_string 60 in
    Frame.write fd payload;
    match Frame.read fd with
    | Ok reply_s ->
        let reply = ok_or_fail "reply parses" (Json.of_string reply_s) in
        Alcotest.(check string) "code" "bad_request" (error_code reply)
    | Error e -> Alcotest.failf "no reply to garbage: %a" Frame.pp_read_error e
  done;
  (* The server survived all of it. *)
  Client.with_client "t_serve_garbage.sock" @@ fun c ->
  let reply =
    ok_or_fail "ping after garbage"
      (Client.request c (Protocol.request Protocol.Ping))
  in
  Alcotest.(check bool) "still up" true (Protocol.reply_ok reply)

let test_server_oversized_and_truncated () =
  let path = "t_serve_frames.sock" in
  with_server ~config:{ Server.default_config with Server.max_frame = 4096 }
    path
  @@ fun _server ->
  (* Oversized: explicit error reply, then the connection is dropped
     (the unread body makes resync impossible). *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  send_raw fd (raw_header 100_000);
  (match Frame.read fd with
  | Ok reply_s ->
      let reply = ok_or_fail "reply parses" (Json.of_string reply_s) in
      Alcotest.(check string) "code" "bad_request" (error_code reply)
  | Error e ->
      Alcotest.failf "no reply to oversized frame: %a" Frame.pp_read_error e);
  (match Frame.read fd with
  | Error Frame.Eof -> ()
  | Ok _ -> Alcotest.fail "connection should be closed after oversized frame"
  | Error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (* Truncated: header promises more than we send; the server just drops
     the connection without crashing. *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  send_raw fd (raw_header 64);
  send_raw fd "short";
  Unix.close fd;
  (* Still serving. *)
  Client.with_client path @@ fun c ->
  let reply =
    ok_or_fail "ping after bad frames"
      (Client.request c (Protocol.request Protocol.Ping))
  in
  Alcotest.(check bool) "still up" true (Protocol.reply_ok reply)

(* --- server: semantics ---------------------------------------------------- *)

(* Build the facade exactly as Flow.run_platform does, for direct-call
   comparison against served results. *)
let fresh_platform_hotspot n_pes =
  let insts = Catalog.platform_instances n_pes in
  let blocks =
    Array.map
      (fun (i : Pe.inst) ->
        Block.make
          ~name:(Printf.sprintf "PE%d_%s" i.Pe.inst_id i.Pe.kind.Pe.kind_name)
          ~area:i.Pe.kind.Pe.area ())
      insts
  in
  Hotspot.create (Grid.layout blocks)

let test_concurrent_bit_identity () =
  let path = "t_serve_ident.sock" in
  with_server path @@ fun _server ->
  let cases =
    [| (0, "thermal"); (0, "baseline"); (1, "thermal"); (0, "h2") |]
  in
  let replies = Array.make (Array.length cases) (Error "unset") in
  let threads =
    Array.mapi
      (fun i (bench, pname) ->
        Thread.create
          (fun () ->
            replies.(i) <-
              (try
                 Client.with_client path @@ fun c ->
                 Client.request c
                   (Protocol.request
                      (Protocol.Schedule
                         (sched_params bench pname Protocol.Platform 4)))
               with e -> Error (Printexc.to_string e)))
          ())
      cases
  in
  Array.iter Thread.join threads;
  Array.iteri
    (fun i (bench, pname) ->
      let reply = ok_or_fail (Printf.sprintf "case %d" i) replies.(i) in
      Alcotest.(check bool)
        (Printf.sprintf "case %d ok" i)
        true (Protocol.reply_ok reply);
      let graph = Benchmarks.load bench in
      let lib = Catalog.platform_library () in
      let o = Flow.run_platform ~graph ~lib ~policy:(policy pname) () in
      let name = Printf.sprintf "Bm%d/%s" (bench + 1) pname in
      check_bits (name ^ " makespan")
        (get_num reply "makespan")
        o.Flow.schedule.Schedule.makespan;
      check_bits (name ^ " total_power")
        (get_num reply "total_power")
        o.Flow.row.Metrics.total_power;
      check_bits (name ^ " max_temp")
        (get_num reply "max_temp")
        o.Flow.row.Metrics.max_temp;
      check_bits (name ^ " avg_temp")
        (get_num reply "avg_temp")
        o.Flow.row.Metrics.avg_temp;
      check_bits (name ^ " arch_cost") (get_num reply "arch_cost") o.Flow.arch_cost;
      check_bits_arr (name ^ " pe_powers")
        (get_farr reply "pe_powers")
        o.Flow.report.Metrics.pe_powers;
      check_bits_arr (name ^ " block_temps")
        (get_farr reply "block_temps")
        o.Flow.report.Metrics.block_temps)
    cases

let test_inquiry_bit_identity () =
  let path = "t_serve_inq.sock" in
  with_server path @@ fun server ->
  let power = [| 0.8; 0.4; 0.6; 0.2 |] and idle = [| 0.1; 0.1; 0.1; 0.1 |] in
  let ask c =
    ok_or_fail "inquiry"
      (Client.request c
         (Protocol.request (Protocol.Inquiry { Protocol.n_pes = 4; power; idle })))
  in
  Client.with_client path @@ fun c ->
  let first = ask c in
  let again = ask c in
  let direct =
    Hotspot.inquire_with_leakage (fresh_platform_hotspot 4) ~dynamic:power ~idle
  in
  check_bits_arr "inquiry temps" (get_farr first "temps") direct;
  Alcotest.(check bool)
    "cache hit is bit-identical" true
    (get_farr first "temps" = get_farr again "temps");
  let es = Engines.stats (Server.engines server) in
  Alcotest.(check bool) "second inquiry hit the cache" true (es.Engines.cache_hits >= 1)

let test_transient_bit_identity () =
  let path = "t_serve_trans.sock" in
  with_server path @@ fun _server ->
  let reply =
    Client.with_client path @@ fun c ->
    ok_or_fail "transient"
      (Client.request c
         (Protocol.request
            (Protocol.Transient
               {
                 Protocol.sched = sched_params 0 "thermal" Protocol.Platform 4;
                 periods = 10;
                 dt = None;
                 time_unit = 1e-3;
                 exact = false;
               })))
  in
  Alcotest.(check bool) "transient ok" true (Protocol.reply_ok reply);
  let graph = Benchmarks.load 0 in
  let lib = Catalog.platform_library () in
  let o = Flow.run_platform ~graph ~lib ~policy:(policy "thermal") () in
  let profile = Replay.of_schedule ~time_unit:1e-3 ~lib o.Flow.schedule in
  let peaks = Replay.peaks ~periods:10 ~hotspot:o.Flow.hotspot profile in
  check_bits_arr "transient peaks" (get_farr reply "peaks") peaks

let test_online_bit_identity () =
  let path = "t_serve_online.sock" in
  with_server path @@ fun _server ->
  let ask c o_arrivals o_policy o_seed =
    ok_or_fail "online"
      (Client.request c
         (Protocol.request
            (Protocol.Online
               (online_params ~policy:o_policy ~arrivals:o_arrivals
                  ~seed:o_seed ~mean_gap:25.0 0 4))))
  in
  Client.with_client path @@ fun c ->
  (* Sporadic stream under the reactive policy: every scored number the
     server reports must be bitwise the library's own. *)
  let reply =
    ask c Protocol.Sporadic (Online.Reactive Online.default_reactive) 3
  in
  Alcotest.(check bool) "online ok" true (Protocol.reply_ok reply);
  let graph = Benchmarks.load 0 in
  let lib = Catalog.platform_library () in
  let o =
    Flow.run_online ~arrivals:(Flow.Release_sporadic 3) ~graph ~lib
      ~policy:(Online.Reactive Online.default_reactive) ()
  in
  check_bits "online makespan"
    (get_num reply "makespan")
    o.Flow.online.Online.schedule.Schedule.makespan;
  check_bits "online_makespan"
    (get_num reply "online_makespan")
    o.Flow.score.Online.online_makespan;
  check_bits "clairvoyant_makespan"
    (get_num reply "clairvoyant_makespan")
    o.Flow.score.Online.clairvoyant_makespan;
  check_bits "makespan_ratio"
    (get_num reply "makespan_ratio")
    o.Flow.score.Online.makespan_ratio;
  check_bits "online_peak"
    (get_num reply "online_peak")
    o.Flow.score.Online.online_peak;
  check_bits "clairvoyant_peak"
    (get_num reply "clairvoyant_peak")
    o.Flow.score.Online.clairvoyant_peak;
  check_bits "peak_ratio"
    (get_num reply "peak_ratio")
    o.Flow.score.Online.peak_ratio;
  Alcotest.(check int)
    "events" o.Flow.online.Online.stats.Online.events
    (int_of_float (get_num reply "events"));
  Alcotest.(check int)
    "deferrals" o.Flow.online.Online.stats.Online.deferrals
    (int_of_float (get_num reply "deferrals"));
  (* Degenerate zero stream: the served ratios must be exactly 1.0 — the
     wire-level restatement of the offline bit-identity theorem. *)
  let zero = ask c Protocol.Zero (Online.Mirror (policy "thermal")) 1 in
  check_bits "zero makespan_ratio" (get_num zero "makespan_ratio") 1.0;
  check_bits "zero peak_ratio" (get_num zero "peak_ratio") 1.0

let test_served_hetero_schedule () =
  let path = "t_serve_hetero.sock" in
  with_server path @@ fun _server ->
  Client.with_client path @@ fun c ->
  (* A heterogeneous request served through the engine registry must be
     bitwise the library's own answer. *)
  let pins = [ (0, Protocol.Constraints.To_kind 1) ] in
  let isolation = [ (1, 0); (2, 1) ] in
  let reply =
    ok_or_fail "hetero schedule"
      (Client.request c
         (Protocol.request
            (Protocol.Schedule
               (sched_params ~platform:"biglittle4" ~pins ~isolation 0
                  "thermal" Protocol.Platform 4))))
  in
  Alcotest.(check bool) "hetero ok" true (Protocol.reply_ok reply);
  Alcotest.(check bool)
    "payload names the platform" true
    (Json.mem "platform" reply = Some (Json.Str "biglittle4"));
  let platform = Option.get (Catalog.platform_named "biglittle4") in
  let graph = Benchmarks.load 0 in
  let lib = Catalog.library_for platform in
  let o =
    Flow.run_platform ~platform
      ~constraints:{ Flow.Constraints.pins; isolation }
      ~graph ~lib ~policy:(policy "thermal") ()
  in
  check_bits "hetero makespan"
    (get_num reply "makespan")
    o.Flow.schedule.Schedule.makespan;
  check_bits "hetero max_temp"
    (get_num reply "max_temp")
    o.Flow.row.Metrics.max_temp;
  check_bits "hetero arch_cost" (get_num reply "arch_cost") o.Flow.arch_cost;
  check_bits_arr "hetero pe_powers"
    (get_farr reply "pe_powers")
    o.Flow.report.Metrics.pe_powers;
  (* Statically impossible constraints are the client's fault: a clean
     bad_request naming the problem, never an internal error or a crash. *)
  let infeasible =
    ok_or_fail "infeasible schedule"
      (Client.request c
         (Protocol.request
            (Protocol.Schedule
               (sched_params
                  ~isolation:[ (0, 0); (1, 1); (2, 2); (3, 3); (4, 4) ]
                  0 "thermal" Protocol.Platform 4))))
  in
  Alcotest.(check string) "infeasible code" "bad_request"
    (error_code infeasible);
  (* And the server is still healthy afterwards. *)
  let ping =
    ok_or_fail "ping after rejection"
      (Client.request c (Protocol.request Protocol.Ping))
  in
  Alcotest.(check bool) "still up" true (Protocol.reply_ok ping)

let test_deadline_expiry () =
  let path = "t_serve_deadline.sock" in
  with_server ~config:{ Server.default_config with Server.batch_max = 1 } path
  @@ fun _server ->
  (* Occupy the dispatcher with a sleep, then submit a request whose
     queueing budget is already tiny: it must be answered `deadline`. *)
  let sleeper =
    Thread.create
      (fun () ->
        Client.with_client path @@ fun c ->
        ignore (Client.request c (Protocol.request (Protocol.Sleep 0.4))))
      ()
  in
  Thread.delay 0.1;
  let reply =
    Client.with_client path @@ fun c ->
    ok_or_fail "deadline request"
      (Client.request c
         (Protocol.request ~deadline_ms:1.0 (Protocol.Sleep 0.0)))
  in
  Thread.join sleeper;
  Alcotest.(check string) "deadline code" "deadline" (error_code reply)

let test_online_deadline_expiry () =
  let path = "t_serve_online_dl.sock" in
  with_server ~config:{ Server.default_config with Server.batch_max = 1 } path
  @@ fun _server ->
  (* An online scenario whose queueing budget lapses while the dispatcher
     is busy must be answered `deadline` — the arrival stream is never
     simulated. *)
  let sleeper =
    Thread.create
      (fun () ->
        Client.with_client path @@ fun c ->
        ignore (Client.request c (Protocol.request (Protocol.Sleep 0.4))))
      ()
  in
  Thread.delay 0.1;
  let reply =
    Client.with_client path @@ fun c ->
    ok_or_fail "online deadline request"
      (Client.request c
         (Protocol.request ~deadline_ms:1.0
            (Protocol.Online
               (online_params
                  ~policy:(Online.Reactive Online.default_reactive)
                  ~arrivals:Protocol.Sporadic ~seed:1 ~mean_gap:25.0 0 4))))
  in
  Thread.join sleeper;
  Alcotest.(check string) "deadline code" "deadline" (error_code reply)

let test_overload_rejection () =
  let path = "t_serve_overload.sock" in
  with_server
    ~config:
      { Server.default_config with Server.max_queue = 1; batch_max = 1 }
    path
  @@ fun _server ->
  (* One long sleep occupies the dispatcher; with a queue bound of 1, at
     most one of the followers can be admitted — the rest must be told
     `overloaded` right away. *)
  let results = Array.make 4 (Error "unset") in
  let spawn i s delay =
    Thread.create
      (fun () ->
        Thread.delay delay;
        results.(i) <-
          (try
             Client.with_client path @@ fun c ->
             Client.request c (Protocol.request (Protocol.Sleep s))
           with e -> Error (Printexc.to_string e)))
      ()
  in
  let threads =
    [ spawn 0 0.6 0.0; spawn 1 0.05 0.15; spawn 2 0.05 0.15; spawn 3 0.05 0.15 ]
  in
  List.iter Thread.join threads;
  let codes =
    Array.to_list results
    |> List.map (fun r -> error_code (ok_or_fail "overload reply" r))
  in
  let count c = List.length (List.filter (String.equal c) codes) in
  Alcotest.(check string) "long sleep completed" "ok" (List.hd codes);
  Alcotest.(check bool)
    (Printf.sprintf "some follower rejected (codes: %s)"
       (String.concat "," codes))
    true
    (count "overloaded" >= 1);
  Alcotest.(check bool) "every reply is ok or overloaded" true
    (List.for_all (fun c -> c = "ok" || c = "overloaded") codes)

let test_shutdown_drains () =
  let path = "t_serve_drain.sock" in
  let server = Server.create { Server.default_config with Server.socket_path = path } in
  let admitted = Array.make 1 (Error "unset") in
  let worker =
    Thread.create
      (fun () ->
        admitted.(0) <-
          (try
             Client.with_client path @@ fun c ->
             Client.request c (Protocol.request (Protocol.Sleep 0.3))
           with e -> Error (Printexc.to_string e)))
      ()
  in
  Thread.delay 0.1;
  (* Admitted work must still be answered after the shutdown request. *)
  let shutdown_reply =
    Client.with_client path @@ fun c ->
    ok_or_fail "shutdown" (Client.request c (Protocol.request Protocol.Shutdown))
  in
  Alcotest.(check bool) "shutdown acked" true (Protocol.reply_ok shutdown_reply);
  Thread.join worker;
  let reply = ok_or_fail "drained reply" admitted.(0) in
  Alcotest.(check bool)
    "sleep admitted before shutdown was executed, not dropped" true
    (Protocol.reply_ok reply);
  Server.wait server;
  Alcotest.(check bool) "socket unlinked" true (not (Sys.file_exists path))

(* --- the real binary ------------------------------------------------------ *)

let test_tatsd_binary () =
  let path = "t_tatsd_smoke.sock" in
  let log = Unix.openfile "tatsd_smoke.log" [ Unix.O_CREAT; Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process "../bin/tatsd.exe"
      [| "tatsd"; "-s"; path; "-j"; "2" |]
      devnull devnull log
  in
  Unix.close devnull;
  Unix.close log;
  let rec connect tries =
    match Client.connect path with
    | c -> c
    | exception Unix.Unix_error _ ->
        if tries = 0 then Alcotest.fail "tatsd never came up";
        Thread.delay 0.1;
        connect (tries - 1)
  in
  let c = connect 100 in
  let ping = ok_or_fail "ping" (Client.request c (Protocol.request Protocol.Ping)) in
  Alcotest.(check bool) "tatsd answers ping" true (Protocol.reply_ok ping);
  let sched =
    ok_or_fail "schedule"
      (Client.request c
         (Protocol.request
            (Protocol.Schedule (sched_params 0 "thermal" Protocol.Platform 4))))
  in
  Alcotest.(check bool) "tatsd schedules" true (Protocol.reply_ok sched);
  let bye =
    ok_or_fail "shutdown" (Client.request c (Protocol.request Protocol.Shutdown))
  in
  Alcotest.(check bool) "tatsd acks shutdown" true (Protocol.reply_ok bye);
  Client.close c;
  (* Bounded wait for a clean exit. *)
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec reap () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if Unix.gettimeofday () > deadline then begin
          Unix.kill pid Sys.sigkill;
          ignore (Unix.waitpid [] pid);
          Alcotest.fail "tatsd did not exit within 30 s of shutdown"
        end
        else begin
          Thread.delay 0.1;
          reap ()
        end
    | _, status -> status
  in
  let status = reap () in
  Alcotest.(check bool)
    "tatsd exits 0" true
    (status = Unix.WEXITED 0);
  Alcotest.(check bool) "socket unlinked" true (not (Sys.file_exists path))

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "float fidelity" `Quick test_json_float_fidelity;
          Alcotest.test_case "rejects malformed" `Quick test_json_rejects;
        ] );
      ( "frame",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "eof/truncated/oversized" `Quick test_frame_errors;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "roundtrip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "rejects invalid" `Quick test_protocol_rejects;
        ] );
      ( "server",
        [
          Alcotest.test_case "ping and stats" `Quick test_server_ping_stats;
          Alcotest.test_case "garbage frames" `Quick test_server_rejects_garbage;
          Alcotest.test_case "oversized and truncated" `Quick
            test_server_oversized_and_truncated;
          Alcotest.test_case "concurrent schedule bit-identity" `Slow
            test_concurrent_bit_identity;
          Alcotest.test_case "inquiry bit-identity and cache" `Quick
            test_inquiry_bit_identity;
          Alcotest.test_case "transient bit-identity" `Slow
            test_transient_bit_identity;
          Alcotest.test_case "online bit-identity" `Slow
            test_online_bit_identity;
          Alcotest.test_case "hetero schedule bit-identity" `Slow
            test_served_hetero_schedule;
          Alcotest.test_case "deadline expiry" `Quick test_deadline_expiry;
          Alcotest.test_case "online deadline expiry" `Quick
            test_online_deadline_expiry;
          Alcotest.test_case "overload rejection" `Quick test_overload_rejection;
          Alcotest.test_case "shutdown drains admitted work" `Quick
            test_shutdown_drains;
        ] );
      ("tatsd", [ Alcotest.test_case "binary smoke" `Slow test_tatsd_binary ]);
    ]
