(* Metamorphic tests for the thermal stack: relations that must hold between
   *pairs* of solves, without knowing any exact temperature.

   - power-scaling monotonicity: scaling every dynamic power by alpha > 1
     never lowers any block temperature (leakage feedback included);
   - permutation invariance: relabeling the blocks of a placement (same
     geometry, permuted arrays) permutes the temperatures and nothing else;
   - instrumentation transparency: enabling tracing must not perturb a
     single bit of either the fast (Inquiry) or the dense (Steady) path. *)

module Rng = Tats_util.Rng
module Trace = Tats_util.Trace
module Block = Tats_floorplan.Block
module Grid = Tats_floorplan.Grid
module Placement = Tats_floorplan.Placement
module Pe = Tats_techlib.Pe
module Catalog = Tats_techlib.Catalog
module Steady = Tats_thermal.Steady
module Hotspot = Tats_thermal.Hotspot
module Inquiry = Tats_thermal.Inquiry

let platform_hotspot n =
  Hotspot.create
    (Grid.layout
       (Array.map
          (fun (i : Pe.inst) ->
            Block.make ~name:(string_of_int i.Pe.inst_id) ~area:i.Pe.kind.Pe.area ())
          (Catalog.platform_instances n)))

let idle4 = [| 0.6; 0.6; 0.6; 0.6 |]

let max_abs_diff a b =
  let d = ref 0.0 in
  Array.iteri (fun i x -> d := Float.max !d (Float.abs (x -. b.(i)))) a;
  !d

(* --- power-scaling monotonicity ------------------------------------------ *)

let test_scaling_monotone () =
  let engine = Hotspot.inquiry (platform_hotspot 4) in
  let rng = Rng.create 805 in
  for trial = 1 to 12 do
    let dynamic = Array.init 4 (fun _ -> Rng.uniform rng 0.0 8.0) in
    let alpha = 1.0 +. (Rng.uniform rng 0.0 2.0) in
    let base = Inquiry.query_with_leakage engine ~dynamic ~idle:idle4 in
    let scaled =
      Inquiry.query_with_leakage engine
        ~dynamic:(Array.map (fun p -> alpha *. p) dynamic)
        ~idle:idle4
    in
    Array.iteri
      (fun i t ->
        (* The fixed point stops within tol of the true solution, so allow
           convergence noise — but never a real drop. *)
        Alcotest.(check bool)
          (Printf.sprintf "trial %d: alpha %.2f never cools block %d" trial
             alpha i)
          true
          (scaled.(i) >= t -. 1e-6))
      base
  done

let test_scaling_monotone_dense () =
  (* Same relation on the dense Steady path — the property is a statement
     about the physics, not about the influence-matrix shortcut. *)
  let solver = Hotspot.solver (platform_hotspot 4) in
  let dynamic = [| 2.0; 6.0; 1.0; 3.0 |] in
  let prev = ref (Array.make 4 neg_infinity) in
  List.iter
    (fun alpha ->
      let t, _ =
        Steady.solve_with_leakage solver
          ~dynamic:(Array.map (fun p -> alpha *. p) dynamic)
          ~idle:idle4
      in
      Array.iteri
        (fun i x ->
          Alcotest.(check bool)
            (Printf.sprintf "alpha %.1f block %d monotone" alpha i)
            true
            (x >= !prev.(i) -. 1e-6))
        t;
      prev := t)
    [ 0.5; 1.0; 1.5; 2.0; 3.0 ]

(* --- permutation invariance ----------------------------------------------- *)

let permute_placement perm (p : Placement.t) =
  Placement.make
    ~blocks:(Array.map (fun i -> p.Placement.blocks.(i)) perm)
    ~rects:(Array.map (fun i -> p.Placement.rects.(i)) perm)

let test_permutation_invariance () =
  let n = 4 in
  let base_placement =
    Grid.layout
      (Array.map
         (fun (i : Pe.inst) ->
           Block.make ~name:(string_of_int i.Pe.inst_id) ~area:i.Pe.kind.Pe.area ())
         (Catalog.platform_instances n))
  in
  let engine = Hotspot.inquiry (Hotspot.create base_placement) in
  let rng = Rng.create 211 in
  (* perm.(k) = original index now sitting at position k. *)
  List.iter
    (fun perm ->
      let permuted =
        Hotspot.inquiry (Hotspot.create (permute_placement perm base_placement))
      in
      for trial = 1 to 4 do
        let dynamic = Array.init n (fun _ -> Rng.uniform rng 0.0 6.0) in
        let t_orig = Inquiry.query_with_leakage engine ~dynamic ~idle:idle4 in
        let t_perm =
          Inquiry.query_with_leakage permuted
            ~dynamic:(Array.map (fun i -> dynamic.(i)) perm)
            ~idle:(Array.map (fun i -> idle4.(i)) perm)
        in
        let expected = Array.map (fun i -> t_orig.(i)) perm in
        Alcotest.(check bool)
          (Printf.sprintf "trial %d: relabeled temps match (diff %.2e)" trial
             (max_abs_diff expected t_perm))
          true
          (max_abs_diff expected t_perm <= 1e-6)
      done)
    [ [| 3; 2; 1; 0 |]; [| 1; 0; 3; 2 |]; [| 2; 3; 0; 1 |]; [| 0; 1; 2; 3 |] ]

(* --- instrumentation transparency ----------------------------------------- *)

let test_tracing_bit_identical () =
  (* Run the fast and dense paths with tracing off, then again on fresh
     engines with tracing on: every temperature must be bit-identical.
     with_span only brackets the computation — any numerical difference
     means instrumentation leaked into the math. *)
  let dynamics =
    [ [| 2.0; 6.0; 1.0; 3.0 |]; [| 0.0; 0.0; 0.0; 0.0 |]; [| 8.0; 0.1; 0.1; 0.1 |] ]
  in
  let solve () =
    let h = platform_hotspot 4 in
    let engine = Hotspot.inquiry h in
    let solver = Hotspot.solver h in
    List.map
      (fun dynamic ->
        let fast = Inquiry.query_with_leakage engine ~dynamic ~idle:idle4 in
        let dense, _ = Steady.solve_with_leakage solver ~dynamic ~idle:idle4 in
        (fast, dense))
      dynamics
  in
  let plain = solve () in
  Trace.start ();
  let traced =
    Fun.protect ~finally:Trace.reset (fun () ->
        let r = solve () in
        Alcotest.(check bool) "spans were actually recorded" true
          (Trace.span_count () > 0);
        r)
  in
  List.iteri
    (fun k ((f0, d0), (f1, d1)) ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "inquiry %d: fast path bit-identical" k)
        0.0 (max_abs_diff f0 f1);
      Alcotest.(check (float 0.0))
        (Printf.sprintf "inquiry %d: dense path bit-identical" k)
        0.0 (max_abs_diff d0 d1))
    (List.combine plain traced)

let () =
  Alcotest.run "thermal_meta"
    [
      ( "scaling",
        [
          Alcotest.test_case "alpha > 1 never cools (fast path)" `Quick
            test_scaling_monotone;
          Alcotest.test_case "monotone in alpha (dense path)" `Quick
            test_scaling_monotone_dense;
        ] );
      ( "permutation",
        [
          Alcotest.test_case "block relabeling permutes temps" `Quick
            test_permutation_invariance;
        ] );
      ( "transparency",
        [
          Alcotest.test_case "tracing on/off bit-identical" `Quick
            test_tracing_bit_identical;
        ] );
    ]
