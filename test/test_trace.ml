(* Tests for the observability layer: Chrome-JSON span export (shape,
   nesting, ordering), histogram percentile math against the closed-form
   bucket geometry, disabled-mode transparency, and an end-to-end smoke
   test driving [tats --trace --metrics] as a subprocess.

   The repo has no JSON library (by design — see DESIGN.md "Dependencies"),
   so validation uses the minimal recursive-descent parser below. It
   accepts the full JSON the exporters emit (objects, arrays, strings with
   escapes, numbers, booleans, null) and nothing fancier. *)

module Trace = Tats_util.Trace
module Metricsreg = Tats_util.Metricsreg
module Benchmarks = Tats_taskgraph.Benchmarks
module Pe = Tats_techlib.Pe
module Catalog = Tats_techlib.Catalog
module Block = Tats_floorplan.Block
module Grid = Tats_floorplan.Grid
module Hotspot = Tats_thermal.Hotspot
module Policy = Tats_sched.Policy
module Schedule = Tats_sched.Schedule
module List_sched = Tats_sched.List_sched

(* --- a minimal JSON parser ------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word value =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        value
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec loop () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
            advance ();
            match peek () with
            | Some '"' -> Buffer.add_char b '"'; advance (); loop ()
            | Some '\\' -> Buffer.add_char b '\\'; advance (); loop ()
            | Some '/' -> Buffer.add_char b '/'; advance (); loop ()
            | Some 'n' -> Buffer.add_char b '\n'; advance (); loop ()
            | Some 't' -> Buffer.add_char b '\t'; advance (); loop ()
            | Some 'r' -> Buffer.add_char b '\r'; advance (); loop ()
            | Some 'b' -> Buffer.add_char b '\b'; advance (); loop ()
            | Some 'f' -> Buffer.add_char b '\012'; advance (); loop ()
            | Some 'u' ->
                advance ();
                if !pos + 4 > n then fail "truncated \\u escape";
                let code = int_of_string ("0x" ^ String.sub s !pos 4) in
                pos := !pos + 4;
                (* Exporters only escape control characters — ASCII range. *)
                if code < 128 then Buffer.add_char b (Char.chr code)
                else Buffer.add_string b (Printf.sprintf "\\u%04x" code);
                loop ()
            | _ -> fail "bad escape")
        | Some c ->
            Buffer.add_char b c;
            advance ();
            loop ()
      in
      loop ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> is_num_char c | None -> false) do
        advance ()
      done;
      if !pos = start then fail "expected number";
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "malformed number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin advance (); Obj [] end
          else begin
            let rec members acc =
              skip_ws ();
              let key = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' -> advance (); members ((key, v) :: acc)
              | Some '}' -> advance (); Obj (List.rev ((key, v) :: acc))
              | _ -> fail "expected , or }"
            in
            members []
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin advance (); Arr [] end
          else begin
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' -> advance (); elements (v :: acc)
              | Some ']' -> advance (); Arr (List.rev (v :: acc))
              | _ -> fail "expected , or ]"
            in
            elements []
          end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
      | None -> fail "unexpected end of input"
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member key = function
    | Obj fields -> (
        match List.assoc_opt key fields with
        | Some v -> v
        | None -> raise (Bad (Printf.sprintf "missing key %S" key)))
    | _ -> raise (Bad (Printf.sprintf "not an object (looking up %S)" key))

  let to_num = function Num f -> f | _ -> raise (Bad "not a number")
  let to_str = function Str s -> s | _ -> raise (Bad "not a string")
  let to_arr = function Arr l -> l | _ -> raise (Bad "not an array")

  let of_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> parse (really_input_string ic (in_channel_length ic)))
end

(* --- Chrome export: shape, nesting, ordering ------------------------------ *)

let burn () =
  (* A trivial but non-removable computation so spans have real extent. *)
  let acc = ref 0 in
  for i = 1 to 20_000 do
    acc := (!acc * 7) + i
  done;
  Sys.opaque_identity !acc

let record_sample_trace () =
  Trace.start ();
  Trace.with_span "outer" ~args:[ ("layer", Trace.Str "test"); ("k", Trace.Int 3) ]
    (fun () ->
      ignore (burn ());
      Trace.with_span "inner-a" (fun () ->
          ignore (burn ());
          Trace.with_span "leaf" ~args:[ ("ok", Trace.Bool true) ] (fun () ->
              ignore (burn ())));
      Trace.with_span "inner-b" ~args:[ ("x", Trace.Float 2.5) ] (fun () ->
          ignore (burn ())));
  Trace.stop ()

let test_chrome_export_shape () =
  record_sample_trace ();
  let json = Json.parse (Trace.to_chrome_json ()) in
  Trace.reset ();
  let events = Json.to_arr json in
  Alcotest.(check int) "four spans exported" 4 (List.length events);
  List.iter
    (fun ev ->
      Alcotest.(check string) "complete event" "X"
        (Json.to_str (Json.member "ph" ev));
      Alcotest.(check bool) "has name" true
        (String.length (Json.to_str (Json.member "name" ev)) > 0);
      Alcotest.(check bool) "ts is a number" true
        (Float.is_finite (Json.to_num (Json.member "ts" ev)));
      Alcotest.(check bool) "dur non-negative" true
        (Json.to_num (Json.member "dur" ev) >= 0.0);
      ignore (Json.to_num (Json.member "pid" ev));
      ignore (Json.to_num (Json.member "tid" ev)))
    events;
  (* Attributes survive the round-trip. *)
  let find name =
    List.find (fun ev -> Json.to_str (Json.member "name" ev) = name) events
  in
  Alcotest.(check string) "string attr" "test"
    (Json.to_str (Json.member "layer" (Json.member "args" (find "outer"))));
  Alcotest.(check (float 0.0)) "float attr" 2.5
    (Json.to_num (Json.member "x" (Json.member "args" (find "inner-b"))))

let test_chrome_export_nesting () =
  record_sample_trace ();
  let events = Json.to_arr (Json.parse (Trace.to_chrome_json ())) in
  Trace.reset ();
  let span ev =
    ( Json.to_str (Json.member "name" ev),
      Json.to_num (Json.member "ts" ev),
      Json.to_num (Json.member "ts" ev) +. Json.to_num (Json.member "dur" ev) )
  in
  let interval name =
    let _, s, e = span (List.find (fun ev -> Json.to_str (Json.member "name" ev) = name) events) in
    (s, e)
  in
  (* The exporter prints microseconds with 3 decimals, so endpoints carry
     up to half a nanosecond of rounding each. *)
  let eps = 0.002 in
  let contains (os, oe) (is_, ie) = os <= is_ +. eps && ie <= oe +. eps in
  let outer = interval "outer" in
  let inner_a = interval "inner-a" in
  let inner_b = interval "inner-b" in
  let leaf = interval "leaf" in
  Alcotest.(check bool) "outer contains inner-a" true (contains outer inner_a);
  Alcotest.(check bool) "outer contains inner-b" true (contains outer inner_b);
  Alcotest.(check bool) "inner-a contains leaf" true (contains inner_a leaf);
  Alcotest.(check bool) "siblings disjoint" true
    (snd inner_a <= fst inner_b +. eps || snd inner_b <= fst inner_a +. eps);
  (* Chrome nests by time containment per tid, so events must be
     well-nested: any two overlap only by containment. *)
  let intervals = List.map span events in
  List.iter
    (fun (na, sa, ea) ->
      List.iter
        (fun (nb, sb, eb) ->
          if na <> nb then
            Alcotest.(check bool)
              (Printf.sprintf "%s vs %s well-nested" na nb)
              true
              (ea <= sb +. eps || eb <= sa +. eps
              || contains (sa, ea) (sb, eb)
              || contains (sb, eb) (sa, ea)))
        intervals)
    intervals

let test_spans_sorted_and_counted () =
  record_sample_trace ();
  let spans = Trace.spans () in
  Alcotest.(check int) "span_count agrees" (List.length spans) (Trace.span_count ());
  let rec sorted = function
    | (a : Trace.span) :: (b :: _ as rest) -> a.Trace.ts <= b.Trace.ts && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by start time" true (sorted spans);
  Trace.reset ();
  Alcotest.(check int) "reset discards" 0 (Trace.span_count ())

(* --- histogram percentiles vs closed form --------------------------------- *)

(* The exporter's documented bucket geometry, reimplemented independently:
   bucket i >= 1 covers [1e-9 * 1.25^(i-1), 1e-9 * 1.25^i), percentile
   answers are the geometric midpoint of the hit bucket clamped to the
   exact observed [min, max]. *)
let closed_form_percentile values q =
  let base = 1e-9 and log_gamma = Float.log 1.25 in
  let bucket v =
    if not (v >= base) then 0
    else Stdlib.min 191 (1 + int_of_float (Float.log (v /. base) /. log_gamma))
  in
  let mid i =
    if i = 0 then base
    else base *. Float.exp ((float_of_int i -. 0.5) *. log_gamma)
  in
  let sorted = List.sort compare values in
  let n = List.length sorted in
  let rank =
    let r = int_of_float (Float.ceil (q /. 100.0 *. float_of_int n)) in
    Stdlib.max 1 (Stdlib.min n r)
  in
  let v_rank = List.nth sorted (rank - 1) in
  let lo = List.hd sorted and hi = List.nth sorted (n - 1) in
  Float.min hi (Float.max lo (mid (bucket v_rank)))

let test_histogram_percentiles () =
  let h = Metricsreg.histogram "test.trace.percentiles" in
  Metricsreg.reset_histogram h;
  let values =
    (* Spread over six decades, including sub-base and repeated values. *)
    [ 3e-10; 1e-9; 2.5e-9; 4e-6; 4e-6; 4e-6; 0.003; 0.0031; 0.25; 0.25; 1.7; 42.0 ]
  in
  List.iter (fun v -> Metricsreg.observe h v) values;
  let s = Metricsreg.summary h in
  Alcotest.(check int) "count" (List.length values) s.Metricsreg.count;
  Alcotest.(check (float 1e-12)) "sum exact" (List.fold_left ( +. ) 0.0 values)
    s.Metricsreg.sum;
  Alcotest.(check (float 0.0)) "min exact" 3e-10 s.Metricsreg.min;
  Alcotest.(check (float 0.0)) "max exact" 42.0 s.Metricsreg.max;
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "p%g matches closed form" q)
        (closed_form_percentile values q)
        (Metricsreg.percentile h q))
    [ 0.0; 10.0; 50.0; 90.0; 95.0; 99.0; 100.0 ];
  (* Bucketed answers are within the guaranteed 25% of the true value for
     in-range percentiles. *)
  Alcotest.(check bool) "p50 within bucket resolution" true
    (let exact = 4e-6 (* rank ceil(0.5*12) = 6 of the sorted list *) in
     let got = Metricsreg.percentile h 50.0 in
     got >= exact /. 1.25 && got <= exact *. 1.25)

let test_histogram_single_value_and_empty () =
  let h = Metricsreg.histogram "test.trace.single" in
  Metricsreg.reset_histogram h;
  Alcotest.(check bool) "empty percentile is nan" true
    (Float.is_nan (Metricsreg.percentile h 50.0));
  Metricsreg.observe h 0.125;
  (* One value: clamping to [min, max] makes every percentile exact. *)
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "p%g = the single value" q)
        0.125
        (Metricsreg.percentile h q))
    [ 0.0; 50.0; 99.0; 100.0 ]

let test_metrics_json_roundtrip () =
  let c = Metricsreg.counter "test.trace.counter" in
  Metricsreg.set_counter c 17;
  let g = Metricsreg.gauge "test.trace.gauge" in
  Metricsreg.set_gauge g 2.75;
  let json = Json.parse (Metricsreg.to_json ()) in
  Alcotest.(check (float 0.0)) "counter in export" 17.0
    (Json.to_num (Json.member "test.trace.counter" (Json.member "counters" json)));
  Alcotest.(check (float 0.0)) "gauge in export" 2.75
    (Json.to_num (Json.member "test.trace.gauge" (Json.member "gauges" json)));
  let h = Json.member "test.trace.single" (Json.member "histograms" json) in
  Alcotest.(check (float 0.0)) "histogram p50 in export" 0.125
    (Json.to_num (Json.member "p50" h))

(* --- disabled mode is a no-op --------------------------------------------- *)

let platform_run () =
  let graph = Benchmarks.load 0 in
  let pes = Catalog.platform_instances 4 in
  let h =
    Hotspot.create
      (Grid.layout
         (Array.map
            (fun (i : Pe.inst) ->
              Block.make ~name:(string_of_int i.Pe.inst_id)
                ~area:i.Pe.kind.Pe.area ())
            pes))
  in
  List_sched.run ~hotspot:h ~graph ~lib:(Catalog.platform_library ()) ~pes
    ~policy:Policy.Thermal_aware ()

let test_disabled_mode_noop () =
  Trace.reset ();
  let s_off = platform_run () in
  Alcotest.(check int) "no spans recorded while disabled" 0 (Trace.span_count ());
  Trace.start ();
  let s_on = Fun.protect ~finally:Trace.reset platform_run in
  Alcotest.(check (float 0.0)) "identical makespan" s_off.Schedule.makespan
    s_on.Schedule.makespan;
  Alcotest.(check bool) "identical entries" true
    (s_off.Schedule.entries = s_on.Schedule.entries)

(* --- end-to-end CLI smoke test -------------------------------------------- *)

let test_cli_smoke () =
  let trace_file = "smoke_trace.json" and metrics_file = "smoke_metrics.json" in
  let cmd =
    Printf.sprintf
      "../bin/tats.exe schedule -b Bm1 -p thermal --jobs 2 --trace %s \
       --metrics %s >smoke_stdout.txt 2>smoke_stderr.txt"
      trace_file metrics_file
  in
  let rc = Sys.command cmd in
  Alcotest.(check int) "tats exits 0" 0 rc;
  let trace = Json.of_file trace_file in
  let events = Json.to_arr trace in
  Alcotest.(check bool) "trace has spans" true (List.length events > 0);
  let names =
    List.sort_uniq compare
      (List.map (fun ev -> Json.to_str (Json.member "name" ev)) events)
  in
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Printf.sprintf "span %S present" expected)
        true (List.mem expected names))
    [ "sched.run"; "sched.step"; "inquiry.solve" ];
  let metrics = Json.of_file metrics_file in
  let counter name =
    int_of_float (Json.to_num (Json.member name (Json.member "counters" metrics)))
  in
  Alcotest.(check bool) "inquiries counted" true (counter "inquiry.inquiries" > 0);
  Alcotest.(check bool) "cache hits counted" true (counter "inquiry.cache_hits" > 0);
  let solve_hist =
    Json.member "inquiry.solve_iterations" (Json.member "histograms" metrics)
  in
  Alcotest.(check bool) "solve-iteration histogram populated" true
    (Json.to_num (Json.member "count" solve_hist) > 0.0);
  Alcotest.(check bool) "p95 >= p50 > 0" true
    (let p50 = Json.to_num (Json.member "p50" solve_hist) in
     let p95 = Json.to_num (Json.member "p95" solve_hist) in
     p50 > 0.0 && p95 >= p50)

let () =
  Alcotest.run "trace"
    [
      ( "chrome-export",
        [
          Alcotest.test_case "event shape and attrs" `Quick
            test_chrome_export_shape;
          Alcotest.test_case "spans nest by containment" `Quick
            test_chrome_export_nesting;
          Alcotest.test_case "sorted, counted, reset" `Quick
            test_spans_sorted_and_counted;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "percentiles vs closed form" `Quick
            test_histogram_percentiles;
          Alcotest.test_case "single value and empty" `Quick
            test_histogram_single_value_and_empty;
          Alcotest.test_case "metrics json round-trip" `Quick
            test_metrics_json_roundtrip;
        ] );
      ( "transparency",
        [
          Alcotest.test_case "disabled mode is a no-op" `Quick
            test_disabled_mode_noop;
        ] );
      ( "cli", [ Alcotest.test_case "tats --trace --metrics" `Quick test_cli_smoke ] );
    ]
