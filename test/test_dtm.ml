(* Tests for the DTM simulator (including a transcription-based
   differential check of its closed loop and hysteresis), task-graph
   analysis, the floorplan study, and idle-energy/power-gating metrics. *)

module Graph = Tats_taskgraph.Graph
module Task = Tats_taskgraph.Task
module Benchmarks = Tats_taskgraph.Benchmarks
module Analysis = Tats_taskgraph.Analysis
module Pe = Tats_techlib.Pe
module Library = Tats_techlib.Library
module Comm = Tats_techlib.Comm
module Catalog = Tats_techlib.Catalog
module Block = Tats_floorplan.Block
module Grid = Tats_floorplan.Grid
module Package = Tats_thermal.Package
module Rcmodel = Tats_thermal.Rcmodel
module Hotspot = Tats_thermal.Hotspot
module Matrix = Tats_linalg.Matrix
module Lu = Tats_linalg.Lu
module Policy = Tats_sched.Policy
module Schedule = Tats_sched.Schedule
module List_sched = Tats_sched.List_sched
module Dtm = Tats_sched.Dtm
module Metrics = Tats_sched.Metrics

let platform_lib = Catalog.platform_library ()
let platform_pes n = Catalog.platform_instances n

let platform_hotspot n =
  Hotspot.create
    (Grid.layout
       (Array.map
          (fun (i : Pe.inst) ->
            Block.make ~name:(string_of_int i.Pe.inst_id) ~area:i.Pe.kind.Pe.area ())
          (platform_pes n)))

let baseline_schedule bench =
  let graph = Benchmarks.load bench in
  List_sched.run ~graph ~lib:platform_lib ~pes:(platform_pes 4)
    ~policy:Policy.Baseline ()

(* --- Dtm ------------------------------------------------------------------ *)

let no_throttle_params =
  { Dtm.default_params with Dtm.trigger = 1000.0 }

let test_dtm_no_trigger_reproduces_schedule () =
  let s = baseline_schedule 0 in
  let hotspot = platform_hotspot 4 in
  let r = Dtm.simulate ~params:no_throttle_params ~lib:platform_lib ~hotspot s in
  (* Without throttling the simulator replays the schedule. Each task's
     finish rounds up to a dt boundary and the rounding accumulates along
     dependency chains, so the drift bound scales with the graph depth. *)
  let slack =
    float_of_int (Graph.longest_path_hops s.Schedule.graph + 1)
    *. Dtm.default_params.Dtm.dt
  in
  Array.iteri
    (fun task f ->
      let static = s.Schedule.entries.(task).Schedule.finish in
      Alcotest.(check bool)
        (Printf.sprintf "task %d: %.1f vs %.1f" task f static)
        true
        (Float.abs (f -. static) <= slack +. 1e-6))
    r.Dtm.finish;
  Alcotest.(check (float 1e-9)) "no throttling" 0.0 r.Dtm.throttled_fraction

let test_dtm_low_trigger_throttles_and_lengthens () =
  let s = baseline_schedule 0 in
  let hotspot = platform_hotspot 4 in
  let free = Dtm.simulate ~params:no_throttle_params ~lib:platform_lib ~hotspot s in
  let hot_params = { Dtm.default_params with Dtm.trigger = 60.0; hysteresis = 2.0 } in
  let managed = Dtm.simulate ~params:hot_params ~lib:platform_lib ~hotspot s in
  Alcotest.(check bool) "throttling happened" true (managed.Dtm.throttled_fraction > 0.0);
  Alcotest.(check bool) "makespan grows" true (managed.Dtm.makespan > free.Dtm.makespan);
  (* Throttling caps the excursion relative to the unmanaged run. *)
  Alcotest.(check bool) "peak reduced" true
    (managed.Dtm.peak_temperature < free.Dtm.peak_temperature)

let test_dtm_thermal_schedule_throttles_less () =
  (* The thermal-aware schedule runs cooler, so the same DTM trigger
     throttles it less than the baseline — the design-time/run-time story. *)
  let graph = Benchmarks.load 0 in
  let hotspot = platform_hotspot 4 in
  let pes = platform_pes 4 in
  let baseline = List_sched.run ~graph ~lib:platform_lib ~pes ~policy:Policy.Baseline () in
  let thermal, _ =
    List_sched.run_adaptive ~hotspot ~graph ~lib:platform_lib ~pes
      ~policy:Policy.Thermal_aware ()
  in
  let params = { Dtm.default_params with Dtm.trigger = 75.0 } in
  let r_base = Dtm.simulate ~params ~lib:platform_lib ~hotspot baseline in
  let r_thermal = Dtm.simulate ~params ~lib:platform_lib ~hotspot thermal in
  Alcotest.(check bool)
    (Printf.sprintf "thermal %.3f <= baseline %.3f" r_thermal.Dtm.throttled_fraction
       r_base.Dtm.throttled_fraction)
    true
    (r_thermal.Dtm.throttled_fraction <= r_base.Dtm.throttled_fraction +. 1e-9)

let test_dtm_validation () =
  let s = baseline_schedule 0 in
  let hotspot = platform_hotspot 4 in
  let bad params =
    try ignore (Dtm.simulate ~params ~lib:platform_lib ~hotspot s : Dtm.result); false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "bad factor" true
    (bad { Dtm.default_params with Dtm.throttle_factor = 1.5 });
  Alcotest.(check bool) "bad dt" true (bad { Dtm.default_params with Dtm.dt = 0.0 });
  Alcotest.(check bool) "wrong hotspot" true
    (try
       ignore
         (Dtm.simulate ~lib:platform_lib ~hotspot:(platform_hotspot 2) s : Dtm.result);
       false
     with Invalid_argument _ -> true)

let test_dtm_warmup_passes_raise_peak () =
  (* One cold pass never reaches steady temperature; repeated passes warm
     the package and the peak rises toward (and beyond) the steady value. *)
  let s = baseline_schedule 0 in
  let hotspot = platform_hotspot 4 in
  let run passes =
    Dtm.simulate
      ~params:{ no_throttle_params with Dtm.passes }
      ~lib:platform_lib ~hotspot s
  in
  let cold = run 1 and warm = run 150 in
  Alcotest.(check bool) "warm peak higher" true
    (warm.Dtm.peak_temperature > cold.Dtm.peak_temperature +. 5.0);
  (* Warmed up, the transient peak rides above the steady-state estimate. *)
  let steady =
    (Metrics.thermal_report ~leakage:false s ~hotspot).Metrics.max_temp
  in
  Alcotest.(check bool)
    (Printf.sprintf "warm %.1f vs steady %.1f" warm.Dtm.peak_temperature steady)
    true
    (warm.Dtm.peak_temperature > steady -. 2.0)

let test_dtm_deterministic () =
  let s = baseline_schedule 1 in
  let hotspot = platform_hotspot 4 in
  let params = { Dtm.default_params with Dtm.trigger = 70.0 } in
  let a = Dtm.simulate ~params ~lib:platform_lib ~hotspot s in
  let b = Dtm.simulate ~params ~lib:platform_lib ~hotspot s in
  Alcotest.(check (float 0.0)) "same makespan" a.Dtm.makespan b.Dtm.makespan;
  Alcotest.(check (float 0.0)) "same peak" a.Dtm.peak_temperature b.Dtm.peak_temperature

(* --- DTM closed loop: transcription differential --------------------------- *)

(* The backward-Euler stepper the seed tree in-lined in Dtm, transcribed
   verbatim; the engine-backed simulator must reproduce it bit for bit. *)
let seed_stepper model ~dt =
  let n = Rcmodel.n_nodes model in
  let lhs = Matrix.copy (Rcmodel.system_matrix model) in
  let c = Rcmodel.capacitances model in
  let c_over_dt = Array.init n (fun i -> c.(i) /. dt) in
  for i = 0 to n - 1 do
    Matrix.add_to lhs i i c_over_dt.(i)
  done;
  let factored = Lu.factor lhs in
  fun ~power temps ->
    let rhs = Rcmodel.rhs model ~power in
    let b = Array.init n (fun i -> rhs.(i) +. (c_over_dt.(i) *. temps.(i))) in
    let x = Lu.solve_factored factored b in
    Array.blit x 0 temps 0 n

type transition = { t_pe : int; temp : float; engaged : bool }

(* A faithful transcription of Dtm.simulate's closed loop, driven by the
   seed stepper, that additionally logs every throttle transition. Running
   it against Dtm.simulate pins both the engine rewiring (bit-identical
   aggregates) and, through the log, the hysteresis behaviour. *)
let dtm_replica ~params ~lib ~hotspot (s : Schedule.t) =
  let n_pes = Schedule.n_pes s in
  let graph = s.Schedule.graph in
  let n = Graph.n_tasks graph in
  let comm = Library.comm lib in
  let model = Hotspot.model hotspot in
  let step = seed_stepper model ~dt:(params.Dtm.dt *. params.Dtm.time_unit) in
  let queues = Array.init n_pes (fun pe -> ref (Schedule.tasks_on_pe s pe)) in
  let wcet_of task =
    let tt = (Graph.task graph task).Task.task_type in
    Library.wcet lib ~task_type:tt
      ~kind:s.Schedule.pes.(s.Schedule.entries.(task).Schedule.pe).Pe.kind.Pe.kind_id
  in
  let wcpc_of task =
    let tt = (Graph.task graph task).Task.task_type in
    Library.wcpc lib ~task_type:tt
      ~kind:s.Schedule.pes.(s.Schedule.entries.(task).Schedule.pe).Pe.kind.Pe.kind_id
  in
  let idle = Array.map (fun (i : Pe.inst) -> i.Pe.kind.Pe.idle_power) s.Schedule.pes in
  let temps =
    Array.make (Rcmodel.n_nodes model) (Rcmodel.package model).Package.ambient
  in
  let throttled = Array.make n_pes false in
  let peak = ref (Rcmodel.package model).Package.ambient in
  let transitions = ref [] in
  let last_lo = Array.make n_pes infinity in
  let last_hi = Array.make n_pes neg_infinity in
  let last = ref None in
  for pass = 1 to params.Dtm.passes do
    if pass = params.Dtm.passes then begin
      Array.fill last_lo 0 n_pes infinity;
      Array.fill last_hi 0 n_pes neg_infinity
    end;
    Array.iteri (fun pe _ -> queues.(pe) := Schedule.tasks_on_pe s pe) queues;
    let progress = Array.make n 0.0 in
    let finish = Array.make n nan in
    let data_ready task pe =
      List.fold_left
        (fun acc (pred, data) ->
          if Float.is_nan finish.(pred) then infinity
          else
            let delay =
              Comm.delay comm ~data
                ~same_pe:(s.Schedule.entries.(pred).Schedule.pe = pe)
            in
            Float.max acc (finish.(pred) +. delay))
        0.0 (Graph.preds graph task)
    in
    let busy_time = ref 0.0 and throttled_time = ref 0.0 in
    let done_count = ref 0 in
    let time = ref 0.0 in
    let horizon = 20.0 *. Float.max s.Schedule.makespan 1.0 in
    while !done_count < n && !time < horizon do
      let running =
        Array.mapi
          (fun pe queue ->
            match !queue with
            | [] -> None
            | (e : Schedule.entry) :: _ ->
                if data_ready e.Schedule.task pe <= !time +. 1e-9 then
                  Some e.Schedule.task
                else None)
          queues
      in
      for pe = 0 to n_pes - 1 do
        let t = temps.(pe) in
        let was = throttled.(pe) in
        if t > params.Dtm.trigger then throttled.(pe) <- true
        else if t < params.Dtm.trigger -. params.Dtm.hysteresis then
          throttled.(pe) <- false;
        if throttled.(pe) <> was then
          transitions := { t_pe = pe; temp = t; engaged = throttled.(pe) } :: !transitions
      done;
      let power = Array.copy idle in
      Array.iteri
        (fun pe task ->
          match task with
          | None -> ()
          | Some task ->
              let rate = if throttled.(pe) then params.Dtm.throttle_factor else 1.0 in
              busy_time := !busy_time +. params.Dtm.dt;
              if throttled.(pe) then throttled_time := !throttled_time +. params.Dtm.dt;
              power.(pe) <- power.(pe) +. (wcpc_of task *. rate);
              progress.(task) <- progress.(task) +. (rate *. params.Dtm.dt);
              if progress.(task) >= wcet_of task -. 1e-9 then begin
                finish.(task) <- !time +. params.Dtm.dt;
                incr done_count;
                queues.(pe) := List.tl !(queues.(pe))
              end)
        running;
      step ~power temps;
      for pe = 0 to n_pes - 1 do
        peak := Float.max !peak temps.(pe);
        if pass = params.Dtm.passes then begin
          last_lo.(pe) <- Float.min last_lo.(pe) temps.(pe);
          last_hi.(pe) <- Float.max last_hi.(pe) temps.(pe)
        end
      done;
      time := !time +. params.Dtm.dt
    done;
    let throttled_fraction =
      if !busy_time > 0.0 then !throttled_time /. !busy_time else 0.0
    in
    last := Some (finish, throttled_fraction)
  done;
  let finish, throttled_fraction =
    match !last with Some r -> r | None -> assert false
  in
  let makespan = Array.fold_left Float.max 0.0 finish in
  ( (finish, makespan, !peak, throttled_fraction),
    List.rev !transitions,
    (last_lo, last_hi) )

let bits = Int64.bits_of_float

let test_dtm_engine_matches_seed_loop () =
  (* Bm1-Bm3 with a trigger that actually throttles: the engine-backed
     simulator must agree with the seed-stepper transcription bit for
     bit — finish times, makespan, peak and throttled fraction. *)
  let params = { Dtm.default_params with Dtm.trigger = 70.0 } in
  List.iter
    (fun bench ->
      let s = baseline_schedule bench in
      let hotspot = platform_hotspot 4 in
      let (finish, makespan, peak, frac), _, _ =
        dtm_replica ~params ~lib:platform_lib ~hotspot s
      in
      let r = Dtm.simulate ~params ~lib:platform_lib ~hotspot s in
      Alcotest.(check bool)
        (Printf.sprintf "Bm%d makespan bit-equal" (bench + 1))
        true
        (bits makespan = bits r.Dtm.makespan);
      Alcotest.(check bool)
        (Printf.sprintf "Bm%d peak bit-equal" (bench + 1))
        true
        (bits peak = bits r.Dtm.peak_temperature);
      Alcotest.(check bool)
        (Printf.sprintf "Bm%d fraction bit-equal" (bench + 1))
        true
        (bits frac = bits r.Dtm.throttled_fraction);
      Array.iteri
        (fun task f ->
          if bits f <> bits r.Dtm.finish.(task) then
            Alcotest.failf "Bm%d task %d finish: %h vs %h" (bench + 1) task f
              r.Dtm.finish.(task))
        finish)
    [ 0; 1; 2 ]

let two_task_schedule () =
  (* Two chained tasks on two PEs: PE0 idles (and cools) once its task is
     done, PE1 idles until the data arrives — both hysteresis directions
     get exercised when the schedule repeats. *)
  let b = Graph.builder ~name:"hot2" ~deadline:1e9 in
  let t0 = Graph.add_task b ~task_type:0 () in
  let t1 = Graph.add_task b ~task_type:1 () in
  Graph.add_edge b ~data:8.0 t0 t1;
  let graph = Graph.build b in
  let pes = platform_pes 2 in
  let wcet task_type pe =
    Library.wcet platform_lib ~task_type ~kind:pes.(pe).Pe.kind.Pe.kind_id
  in
  let wcpc task_type pe =
    Library.wcpc platform_lib ~task_type ~kind:pes.(pe).Pe.kind.Pe.kind_id
  in
  let delay = Comm.delay (Library.comm platform_lib) ~data:8.0 ~same_pe:false in
  let f0 = wcet 0 0 in
  let s1 = f0 +. delay in
  let entries =
    [|
      {
        Schedule.task = t0;
        pe = 0;
        start = 0.0;
        finish = f0;
        energy = wcet 0 0 *. wcpc 0 0;
      };
      {
        Schedule.task = t1;
        pe = 1;
        start = s1;
        finish = s1 +. wcet 1 1;
        energy = wcet 1 1 *. wcpc 1 1;
      };
    |]
  in
  Schedule.make ~graph ~pes ~entries

let test_dtm_hysteresis_no_chatter () =
  (* Replay the hand-built scenario long enough to warm through the
     trigger band and log every throttle transition. The hysteresis
     contract: engagement only strictly above [trigger], release only
     strictly below [trigger - hysteresis] — never inside the band — so
     consecutive transitions need at least [hysteresis] degrees of travel
     (no chatter). The replica's aggregates are pinned to Dtm.simulate
     bit for bit, so the log speaks for the real simulator. *)
  let s = two_task_schedule () in
  let hotspot = platform_hotspot 2 in
  (* Calibrate the trigger to the scenario: replay once without DTM
     (unreachable trigger) and put the threshold mid-way into PE0's
     warmed-up duty-cycle oscillation, so both crossings must occur. *)
  let _, _, (lo, hi) =
    dtm_replica
      ~params:{ Dtm.default_params with Dtm.trigger = 1e9; passes = 120 }
      ~lib:platform_lib ~hotspot s
  in
  let ripple = hi.(0) -. lo.(0) in
  Alcotest.(check bool)
    (Printf.sprintf "duty cycle ripples (%.3f degC)" ripple)
    true (ripple > 0.2);
  let trigger = lo.(0) +. (0.6 *. ripple) in
  let hysteresis = 0.25 *. ripple in
  let params =
    { Dtm.default_params with Dtm.trigger; hysteresis; passes = 120 }
  in
  let (_, makespan, peak, frac), transitions, _ =
    dtm_replica ~params ~lib:platform_lib ~hotspot s
  in
  let r = Dtm.simulate ~params ~lib:platform_lib ~hotspot s in
  Alcotest.(check bool) "replica pins the simulator" true
    (bits makespan = bits r.Dtm.makespan
    && bits peak = bits r.Dtm.peak_temperature
    && bits frac = bits r.Dtm.throttled_fraction);
  let engages = List.filter (fun t -> t.engaged) transitions in
  let releases = List.filter (fun t -> not t.engaged) transitions in
  Alcotest.(check bool)
    (Printf.sprintf "scenario throttles (%d engages)" (List.length engages))
    true
    (List.length engages >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "scenario recovers (%d releases)" (List.length releases))
    true
    (List.length releases >= 1);
  List.iter
    (fun tr ->
      if tr.engaged then
        Alcotest.(check bool)
          (Printf.sprintf "engage at %.3f only above trigger" tr.temp)
          true (tr.temp > trigger)
      else
        Alcotest.(check bool)
          (Printf.sprintf "release at %.3f only below trigger - hysteresis" tr.temp)
          true
          (tr.temp < trigger -. hysteresis))
    transitions;
  (* No transition inside the dead band means consecutive opposite
     transitions on a PE are separated by >= hysteresis degrees. *)
  let last_by_pe = Hashtbl.create 4 in
  List.iter
    (fun tr ->
      (match Hashtbl.find_opt last_by_pe tr.t_pe with
      | Some prev when prev.engaged <> tr.engaged ->
          Alcotest.(check bool) "band travelled between transitions" true
            (Float.abs (tr.temp -. prev.temp) >= hysteresis)
      | _ -> ());
      Hashtbl.replace last_by_pe tr.t_pe tr)
    transitions

let test_dtm_throttled_fraction_bounded () =
  let s = baseline_schedule 0 in
  let hotspot = platform_hotspot 4 in
  List.iter
    (fun trigger ->
      let r =
        Dtm.simulate
          ~params:{ Dtm.default_params with Dtm.trigger }
          ~lib:platform_lib ~hotspot s
      in
      Alcotest.(check bool)
        (Printf.sprintf "trigger %.0f: fraction %.4f in [0,1]" trigger
           r.Dtm.throttled_fraction)
        true
        (r.Dtm.throttled_fraction >= 0.0 && r.Dtm.throttled_fraction <= 1.0))
    [ 50.0; 60.0; 70.0; 85.0; 1000.0 ]

let test_dtm_peak_monotone_in_throttle_factor () =
  (* A deeper throttle (smaller factor) sheds more power while hot, so the
     all-time peak cannot rise. *)
  let s = baseline_schedule 0 in
  let hotspot = platform_hotspot 4 in
  let peak factor =
    (Dtm.simulate
       ~params:{ Dtm.default_params with Dtm.trigger = 60.0; throttle_factor = factor }
       ~lib:platform_lib ~hotspot s)
      .Dtm.peak_temperature
  in
  let p25 = peak 0.25 and p50 = peak 0.5 and p90 = peak 0.9 in
  Alcotest.(check bool)
    (Printf.sprintf "peaks %.3f <= %.3f <= %.3f" p25 p50 p90)
    true
    (p25 <= p50 +. 1e-9 && p50 <= p90 +. 1e-9)

(* --- Analysis -------------------------------------------------------------- *)

let diamond () =
  let b = Graph.builder ~name:"d" ~deadline:10.0 in
  let t0 = Graph.add_task b ~task_type:0 () in
  let t1 = Graph.add_task b ~task_type:0 () in
  let t2 = Graph.add_task b ~task_type:0 () in
  let t3 = Graph.add_task b ~task_type:0 () in
  Graph.add_edge b t0 t1;
  Graph.add_edge b t0 t2;
  Graph.add_edge b t1 t3;
  Graph.add_edge b t2 t3;
  Graph.build b

let test_analysis_diamond () =
  let a = Analysis.analyze (diamond ()) in
  Alcotest.(check int) "depth" 3 a.Analysis.depth;
  Alcotest.(check int) "width" 2 a.Analysis.width;
  Alcotest.(check (array int)) "levels" [| 1; 2; 1 |] a.Analysis.level_sizes;
  Alcotest.(check int) "sources" 1 a.Analysis.n_sources;
  Alcotest.(check int) "sinks" 1 a.Analysis.n_sinks;
  Alcotest.(check int) "max out" 2 a.Analysis.max_out_degree;
  Alcotest.(check int) "max in" 2 a.Analysis.max_in_degree;
  Alcotest.(check (float 1e-9)) "parallelism" (4.0 /. 3.0) a.Analysis.avg_parallelism

let test_analysis_levels_respect_edges () =
  let g = Benchmarks.load 1 in
  let level = Analysis.levels g in
  List.iter
    (fun { Graph.src; dst; _ } ->
      Alcotest.(check bool) "level increases along edges" true (level.(dst) > level.(src)))
    (Graph.edges g)

let test_analysis_consistency_on_benchmarks () =
  Array.iteri
    (fun i _ ->
      let g = Benchmarks.load i in
      let a = Analysis.analyze g in
      Alcotest.(check int) "level sizes sum to tasks" a.Analysis.n_tasks
        (Array.fold_left ( + ) 0 a.Analysis.level_sizes);
      Alcotest.(check int) "depth matches graph" (Graph.longest_path_hops g)
        a.Analysis.depth;
      Alcotest.(check bool) "density in range" true
        (a.Analysis.edge_density > 0.0 && a.Analysis.edge_density <= 1.0))
    Benchmarks.descriptors

(* --- Floorplan study -------------------------------------------------------- *)

let test_floorplan_study_thermal_cooler_on_average () =
  let rows = Core.Experiments.floorplan_study () in
  Alcotest.(check int) "four seeds" 4 (List.length rows);
  let mean f =
    List.fold_left (fun acc r -> acc +. f r) 0.0 rows /. float_of_int (List.length rows)
  in
  let d =
    mean (fun (r : Core.Experiments.floorplan_study_row) ->
        r.Core.Experiments.area_only_peak -. r.Core.Experiments.thermal_aware_peak)
  in
  Alcotest.(check bool) (Printf.sprintf "mean reduction %.2f °C" d) true (d > 0.0);
  List.iter
    (fun (r : Core.Experiments.floorplan_study_row) ->
      Alcotest.(check bool) "bounded overhead" true
        (r.Core.Experiments.area_overhead < 1.6))
    rows

(* --- Idle energy / power gating ---------------------------------------------- *)

let test_idle_energy_accounting () =
  let s = baseline_schedule 0 in
  let idle = Metrics.idle_energy s in
  (* Four PEs at 0.6 W idle for (makespan - busy) each. *)
  let utils = Metrics.utilizations s in
  let expect =
    Array.fold_left
      (fun acc u -> acc +. (0.6 *. ((1.0 -. u) *. s.Schedule.makespan)))
      0.0 utils
  in
  Alcotest.(check bool) "matches utilization view" true (Float.abs (idle -. expect) < 1e-6)

let test_power_gating_monotone_in_break_even () =
  let s = baseline_schedule 0 in
  let s0 = Metrics.power_gating_saving s ~break_even:0.0 in
  let s50 = Metrics.power_gating_saving s ~break_even:50.0 in
  let s_inf = Metrics.power_gating_saving s ~break_even:1e12 in
  Alcotest.(check bool) "monotone" true (s0 >= s50 && s50 >= s_inf);
  Alcotest.(check (float 1e-9)) "nothing gated at infinity" 0.0 s_inf;
  (* With break-even 0 every idle moment is gated. *)
  Alcotest.(check bool) "full gating = idle energy" true
    (Float.abs (s0 -. Metrics.idle_energy s) < 1e-6)

let () =
  Alcotest.run "dtm_analysis"
    [
      ( "dtm",
        [
          Alcotest.test_case "no trigger = schedule" `Quick
            test_dtm_no_trigger_reproduces_schedule;
          Alcotest.test_case "low trigger throttles" `Quick
            test_dtm_low_trigger_throttles_and_lengthens;
          Alcotest.test_case "thermal schedule throttles less" `Quick
            test_dtm_thermal_schedule_throttles_less;
          Alcotest.test_case "validation" `Quick test_dtm_validation;
          Alcotest.test_case "deterministic" `Quick test_dtm_deterministic;
          Alcotest.test_case "warm-up passes" `Quick test_dtm_warmup_passes_raise_peak;
          Alcotest.test_case "engine matches seed loop" `Quick
            test_dtm_engine_matches_seed_loop;
          Alcotest.test_case "hysteresis has no chatter" `Quick
            test_dtm_hysteresis_no_chatter;
          Alcotest.test_case "throttled fraction bounded" `Quick
            test_dtm_throttled_fraction_bounded;
          Alcotest.test_case "peak monotone in factor" `Quick
            test_dtm_peak_monotone_in_throttle_factor;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "diamond" `Quick test_analysis_diamond;
          Alcotest.test_case "levels respect edges" `Quick
            test_analysis_levels_respect_edges;
          Alcotest.test_case "benchmark consistency" `Quick
            test_analysis_consistency_on_benchmarks;
        ] );
      ( "floorplan_study",
        [
          Alcotest.test_case "thermal cooler" `Quick
            test_floorplan_study_thermal_cooler_on_average;
        ] );
      ( "power_gating",
        [
          Alcotest.test_case "idle energy" `Quick test_idle_energy_accounting;
          Alcotest.test_case "gating monotone" `Quick
            test_power_gating_monotone_in_break_even;
        ] );
    ]
