(* Property tests for Rng.derive — the seed-splitting primitive behind every
   deterministic parallel workload (SA restarts, Monte-Carlo, benchmark
   generation). Three claims, each load-bearing for the Pool determinism
   contract:

   1. distinct (seed, index) pairs yield pairwise-distinct streams over
      their first draws (no accidental stream collisions);
   2. the stream a task draws is independent of the pool size and of the
      order in which domains pick tasks up;
   3. the first draws of pinned (seed, index) pairs never change across
      refactors (golden values computed from this implementation).

   The sweep in (1) uses an in-repo generator loop — Rng itself picks the
   random (seed, index) pairs — rather than an external property-testing
   framework, so the test adds no dependencies and stays reproducible from
   one literal seed. *)

module Rng = Tats_util.Rng
module Pool = Tats_util.Pool

let first_draws seed index k =
  let rng = Rng.derive seed index in
  Array.init k (fun _ -> Rng.bits64 rng)

(* --- 1. pairwise-distinct streams --------------------------------------- *)

let test_pairwise_distinct_fixed () =
  let k = 8 in
  let pairs =
    [ (0, 0); (0, 1); (1, 0); (1, 1); (1, 2); (2, 1); (42, 7); (43, 7); (42, 8) ]
  in
  let streams = List.map (fun (s, i) -> ((s, i), first_draws s i k)) pairs in
  List.iteri
    (fun a ((sa, ia), da) ->
      List.iteri
        (fun b ((sb, ib), db) ->
          if a < b then
            Alcotest.(check bool)
              (Printf.sprintf "streams (%d,%d) vs (%d,%d) differ" sa ia sb ib)
              false (da = db))
        streams)
    streams

let test_pairwise_distinct_random_sweep () =
  (* 64 random (seed, index) pairs from one meta-generator; any first-k
     collision between distinct pairs fails. With 64-bit state a collision
     over 4 draws is (barring a derive bug) impossible. *)
  let meta = Rng.create 2005 in
  let n = 64 in
  let pairs =
    Array.init n (fun _ -> (Rng.int meta 1_000_000, Rng.int meta 1024))
  in
  let tbl = Hashtbl.create n in
  Array.iter
    (fun (s, i) ->
      let d = first_draws s i 4 in
      match Hashtbl.find_opt tbl d with
      | Some (s', i') when (s', i') <> (s, i) ->
          Alcotest.failf "stream collision: derive %d %d = derive %d %d" s i s' i'
      | Some _ | None -> Hashtbl.replace tbl d (s, i))
    pairs;
  (* Every distinct pair registered a distinct stream. *)
  let distinct_pairs =
    List.length
      (List.sort_uniq compare (Array.to_list pairs))
  in
  Alcotest.(check int) "one stream per distinct pair" distinct_pairs
    (Hashtbl.length tbl)

(* --- 2. pool-size / order independence ----------------------------------- *)

let derive_batch ~jobs ~tasks ~draws seed =
  Pool.with_pool ~jobs (fun pool ->
      Pool.parallel_mapi ~chunk:1 pool
        (fun i () ->
          let rng = Rng.derive seed i in
          Array.init draws (fun _ -> Rng.bits64 rng))
        (Array.make tasks ()))

let test_jobs_independent () =
  let reference = derive_batch ~jobs:1 ~tasks:32 ~draws:16 123 in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs %d matches jobs 1" jobs)
        true
        (derive_batch ~jobs ~tasks:32 ~draws:16 123 = reference))
    [ 2; 4 ]

let test_order_independent () =
  (* Deriving in reverse order must produce the same per-index streams —
     no hidden shared state is advanced by a derive. *)
  let forward = Array.init 16 (fun i -> first_draws 9 i 8) in
  let backward = Array.init 16 (fun i -> first_draws 9 (15 - i) 8) in
  Array.iteri
    (fun i d ->
      Alcotest.(check bool)
        (Printf.sprintf "index %d order-independent" i)
        true
        (d = backward.(15 - i)))
    forward

(* --- 3. golden first draws ----------------------------------------------- *)

(* Computed from this implementation once; any change to the SplitMix64
   landing breaks every recorded experiment seed, so it must be loud. *)
let goldens =
  [
    ( (42, 0),
      [|
        6332618229526065668L;
        -816328817471504299L;
        8971565426155258802L;
        1242533817266198696L;
      |] );
    ( (42, 1),
      [|
        -245134149879684690L;
        5693819483401481853L;
        -9098865275727344972L;
        -5813066727180184615L;
      |] );
    ( (7, 3),
      [|
        -5852021776408612484L;
        4270312243260898756L;
        7932748853614185806L;
        -2482418391048538640L;
      |] );
  ]

let test_golden_first_draws () =
  List.iter
    (fun ((seed, index), expected) ->
      let got = first_draws seed index (Array.length expected) in
      Array.iteri
        (fun k e ->
          Alcotest.(check int64)
            (Printf.sprintf "derive %d %d draw %d" seed index k)
            e got.(k))
        expected)
    goldens

let () =
  Alcotest.run "props"
    [
      ( "rng-derive",
        [
          Alcotest.test_case "fixed pairs pairwise distinct" `Quick
            test_pairwise_distinct_fixed;
          Alcotest.test_case "random sweep pairwise distinct" `Quick
            test_pairwise_distinct_random_sweep;
          Alcotest.test_case "independent of pool size" `Quick
            test_jobs_independent;
          Alcotest.test_case "independent of derive order" `Quick
            test_order_independent;
          Alcotest.test_case "golden first draws stable" `Quick
            test_golden_first_draws;
        ] );
    ]
