(* Adversarial / randomized tests for Tats_util.Pool. The deterministic
   contract (positional results, index-ordered reduction, lowest-index
   exception, inline nesting) is easy to satisfy on friendly inputs; these
   trials attack it with randomized task durations — so domains finish out
   of index order — and randomized exception placements, across several
   pool sizes and chunkings, all driven by the in-repo Rng (no new test
   dependencies). *)

module Pool = Tats_util.Pool
module Rng = Tats_util.Rng

(* A busy-wait calibrated in work units, not wall time: random per-task
   spin counts scramble completion order without making the test slow or
   timing-sensitive. Returns a value derived from the spinning so the
   loop cannot be optimized away. *)
let spin units =
  let acc = ref 0 in
  for i = 1 to units * 500 do
    acc := (!acc + i) land 0xffff
  done;
  !acc

exception Planted of int

(* Steal-heavy pool sizes: oversubscribed relative to most CI hosts, so
   domains interleave adversarially. *)
let job_sizes = [| 1; 2; 4; 8 |]
let pick_jobs meta = job_sizes.(Rng.int meta (Array.length job_sizes))

let test_random_durations_positional () =
  let meta = Rng.create 31 in
  for trial = 1 to 8 do
    let n = 1 + Rng.int meta 200 in
    let jobs = pick_jobs meta in
    let chunk = 1 + Rng.int meta 8 in
    let units = Array.init n (fun _ -> Rng.int meta 40) in
    let got =
      Pool.with_pool ~jobs (fun pool ->
          Pool.parallel_mapi ~chunk pool
            (fun i () ->
              let noise = spin units.(i) in
              (i * 3) + (noise - noise))
            (Array.make n ()))
    in
    Alcotest.(check (array int))
      (Printf.sprintf "trial %d: positional despite scrambled durations" trial)
      (Array.init n (fun i -> i * 3))
      got
  done

let test_random_durations_reduce_order () =
  (* parallel_for_reduce must fold in index order even when high indices
     finish first: string concatenation is order-sensitive, so any
     reordering is visible. *)
  let meta = Rng.create 77 in
  for trial = 1 to 6 do
    let n = 1 + Rng.int meta 60 in
    let jobs = pick_jobs meta in
    let units = Array.init n (fun _ -> Rng.int meta 30) in
    let got =
      Pool.with_pool ~jobs (fun pool ->
          Pool.parallel_for_reduce ~chunk:1 pool ~n ~init:"" ~combine:( ^ )
            (fun i ->
              ignore (spin units.(i));
              Printf.sprintf "%d;" i))
    in
    let expected =
      String.concat "" (List.init n (fun i -> Printf.sprintf "%d;" i))
    in
    Alcotest.(check string)
      (Printf.sprintf "trial %d: reduction in index order" trial)
      expected got
  done

let test_random_exception_placement () =
  (* Plant 1-4 failures at random indices with random durations; the
     surfaced exception must always carry the lowest planted index, no
     matter which domain hits its failure first. *)
  let meta = Rng.create 1312 in
  for trial = 1 to 10 do
    let n = 16 + Rng.int meta 120 in
    let jobs = pick_jobs meta in
    let n_failures = 1 + Rng.int meta 4 in
    let failures =
      Array.to_list (Array.init n_failures (fun _ -> Rng.int meta n))
    in
    let lowest = List.fold_left Stdlib.min n failures in
    let units = Array.init n (fun _ -> Rng.int meta 25) in
    let result =
      try
        Pool.with_pool ~jobs (fun pool ->
            ignore
              (Pool.parallel_mapi ~chunk:1 pool
                 (fun i () ->
                   ignore (spin units.(i));
                   if List.mem i failures then raise (Planted i);
                   i)
                 (Array.make n ())));
        None
      with Planted i -> Some i
    in
    Alcotest.(check (option int))
      (Printf.sprintf "trial %d: lowest of %d planted failures wins" trial
         n_failures)
      (Some lowest) result
  done

let test_pool_survives_adversarial_batches () =
  (* Alternate failing and clean batches on one pool: a failure must not
     poison the workers for subsequent batches. *)
  Pool.with_pool ~jobs:4 (fun pool ->
      for round = 1 to 5 do
        (try
           ignore
             (Pool.parallel_mapi ~chunk:1 pool
                (fun i () -> if i = round then raise (Planted i) else i)
                (Array.make 16 ()))
         with Planted _ -> ());
        let ok = Pool.parallel_map pool (fun x -> x + round) (Array.init 16 Fun.id) in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d: clean batch after failure" round)
          (Array.init 16 (fun i -> i + round))
          ok
      done)

(* --- nested submission --------------------------------------------------- *)

(* Nested parallel_map calls must degrade to inline execution — never
   deadlock waiting for workers that are all busy waiting. The wall-clock
   bound is the deadlock detector: the work itself is milliseconds, so a
   generous bound only trips when a nested batch actually blocks. *)
let nested_deadline_s = 60.0

let test_nested_no_deadlock () =
  let t0 = Unix.gettimeofday () in
  let meta = Rng.create 4242 in
  Pool.with_pool ~jobs:4 (fun pool ->
      for _trial = 1 to 4 do
        let outer = 8 + Rng.int meta 8 in
        let inner = 8 + Rng.int meta 8 in
        let got =
          Pool.parallel_mapi ~chunk:1 pool
            (fun i () ->
              (* Every outer task submits its own batch to the same pool. *)
              let sub =
                Pool.parallel_mapi ~chunk:1 pool
                  (fun j () ->
                    ignore (spin (Rng.int meta 5 land 3));
                    i + j)
                  (Array.make inner ())
              in
              Array.fold_left ( + ) 0 sub)
            (Array.make outer ())
        in
        let expected =
          Array.init outer (fun i ->
              (i * inner) + (inner * (inner - 1) / 2))
        in
        Alcotest.(check (array int)) "nested results" expected got
      done);
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "no deadlock (finished in %.1f s < %.0f s)" elapsed
       nested_deadline_s)
    true
    (elapsed < nested_deadline_s)

let test_doubly_nested_inline () =
  (* Two levels of nesting still inline and still return positionally. *)
  let t0 = Unix.gettimeofday () in
  Pool.with_pool ~jobs:3 (fun pool ->
      let got =
        Pool.parallel_mapi ~chunk:1 pool
          (fun i () ->
            Pool.parallel_mapi ~chunk:1 pool
              (fun j () ->
                let deep =
                  Pool.parallel_map pool (fun x -> x * x) (Array.init 4 Fun.id)
                in
                (i * 10) + j + deep.(3))
              (Array.make 3 ())
            |> Array.fold_left ( + ) 0)
          (Array.make 5 ())
      in
      let expected = Array.init 5 (fun i -> (3 * ((i * 10) + 9)) + 3) in
      Alcotest.(check (array int)) "doubly nested results" expected got);
  Alcotest.(check bool) "bounded time" true
    (Unix.gettimeofday () -. t0 < nested_deadline_s)

(* --- steal-heavy reduction property -------------------------------------- *)

let test_reduce_bit_identical_grid () =
  (* parallel_for_reduce with a non-commutative, non-associative combine
     must equal the sequential fold bit for bit at every (jobs, chunk)
     configuration. Floating-point combine makes any reassociation or
     reordering visible at the ulp level. *)
  let meta = Rng.create 9090 in
  for trial = 1 to 3 do
    let n = 50 + Rng.int meta 150 in
    let values = Array.init n (fun _ -> Rng.uniform meta (-1.0) 1.0) in
    let units = Array.init n (fun _ -> Rng.int meta 10) in
    (* Pure in [i]: safe to run on any domain, any number of times. *)
    let body i =
      ignore (spin units.(i));
      sin ((values.(i) *. 3.7) +. float_of_int i)
    in
    let combine acc v = (acc /. 3.0) +. (v *. v) -. (acc *. v) in
    let expected =
      Array.fold_left combine 0.5 (Array.init n (fun i -> body i))
    in
    List.iter
      (fun jobs ->
        List.iter
          (fun chunk ->
            let got =
              Pool.with_pool ~jobs (fun pool ->
                  Pool.parallel_for_reduce ?chunk pool ~n ~init:0.5 ~combine
                    body)
            in
            Alcotest.(check (float 0.0))
              (Printf.sprintf "trial %d: jobs %d chunk %s bit-identical" trial
                 jobs
                 (match chunk with Some c -> string_of_int c | None -> "auto"))
              expected got)
          [ Some 1; Some 7; None ])
      [ 1; 2; 4; 8 ]
  done

let test_nested_submission_during_steal () =
  (* Many cheap outer tasks at chunk:1 on an oversubscribed pool: outer
     ranges split down to single indices and spread by stealing, so the
     nested submissions below fire from stolen tasks on several domains at
     once. The nested calls must inline and stay positional. *)
  let meta = Rng.create 60606 in
  Pool.with_pool ~jobs:8 (fun pool ->
      for _trial = 1 to 3 do
        let outer = 32 + Rng.int meta 32 in
        let inner = 4 + Rng.int meta 8 in
        let units = Array.init outer (fun _ -> Rng.int meta 20) in
        let got =
          Pool.parallel_mapi ~chunk:1 pool
            (fun i () ->
              ignore (spin units.(i));
              let sub =
                Pool.parallel_mapi ~chunk:1 pool
                  (fun j () -> (i * 100) + j)
                  (Array.make inner ())
              in
              Array.fold_left ( + ) 0 sub)
            (Array.make outer ())
        in
        let expected =
          Array.init outer (fun i ->
              (i * 100 * inner) + (inner * (inner - 1) / 2))
        in
        Alcotest.(check (array int)) "nested-during-steal results" expected got
      done)

(* --- shutdown under load -------------------------------------------------- *)

let test_shutdown_under_load () =
  (* A second domain calls shutdown while a batch is in flight: the batch
     must drain normally (complete, correct results), shutdown must
     return, and the pool must then run inline. *)
  for round = 1 to 3 do
    let pool = Pool.create ~jobs:4 () in
    let n = 400 in
    let started = Atomic.make false in
    let submitter =
      Domain.spawn (fun () ->
          Pool.parallel_mapi ~chunk:1 pool
            (fun i () ->
              Atomic.set started true;
              ignore (spin 5);
              i * 2)
            (Array.make n ()))
    in
    (* Wait for the batch to actually be in flight before tearing down. *)
    while not (Atomic.get started) do
      Domain.cpu_relax ()
    done;
    Pool.shutdown pool;
    let got = Domain.join submitter in
    Alcotest.(check (array int))
      (Printf.sprintf "round %d: batch drained despite shutdown" round)
      (Array.init n (fun i -> i * 2))
      got;
    Alcotest.(check (array int))
      (Printf.sprintf "round %d: inline after shutdown-under-load" round)
      [| 1; 2; 3 |]
      (Pool.parallel_map pool (fun x -> x + 1) [| 0; 1; 2 |])
  done

let test_shutdown_from_task_rejected () =
  (* Tearing down the runtime from inside one of its own tasks cannot be
     made deterministic; it must fail loudly instead of deadlocking. *)
  Pool.with_pool ~jobs:2 (fun pool ->
      let saw_invalid = ref false in
      ignore
        (Pool.parallel_mapi ~chunk:1 pool
           (fun i () ->
             if i = 0 then (
               try Pool.shutdown pool
               with Invalid_argument _ -> saw_invalid := true);
             i)
           (Array.make 8 ()));
      Alcotest.(check bool) "shutdown inside a task raises Invalid_argument"
        true !saw_invalid)

let () =
  Alcotest.run "pool_adversarial"
    [
      ( "randomized",
        [
          Alcotest.test_case "positional under random durations" `Quick
            test_random_durations_positional;
          Alcotest.test_case "reduce order under random durations" `Quick
            test_random_durations_reduce_order;
          Alcotest.test_case "lowest-index exception, random placement" `Quick
            test_random_exception_placement;
          Alcotest.test_case "pool survives adversarial batches" `Quick
            test_pool_survives_adversarial_batches;
          Alcotest.test_case "non-commutative reduce bit-identical on grid"
            `Quick test_reduce_bit_identical_grid;
        ] );
      ( "nesting",
        [
          Alcotest.test_case "nested submission never deadlocks" `Quick
            test_nested_no_deadlock;
          Alcotest.test_case "doubly nested inlines" `Quick
            test_doubly_nested_inline;
          Alcotest.test_case "nested submission during steals" `Quick
            test_nested_submission_during_steal;
        ] );
      ( "shutdown",
        [
          Alcotest.test_case "shutdown under load drains the batch" `Quick
            test_shutdown_under_load;
          Alcotest.test_case "shutdown inside a task is rejected" `Quick
            test_shutdown_from_task_rejected;
        ] );
    ]
