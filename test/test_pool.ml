(* Tests for Tats_util.Pool: the domain pool's determinism contract
   (positional results, index-ordered reduction, lowest-index exception,
   nesting degrades inline), its stats counters, and the end-to-end
   bit-identity of the parallel Monte-Carlo / GA / SA workloads at
   different pool sizes. *)

module Pool = Tats_util.Pool
module Rng = Tats_util.Rng

let with_pool = Pool.with_pool

(* --- parallel_map basics ------------------------------------------------ *)

let test_map_matches_sequential () =
  with_pool ~jobs:4 (fun pool ->
      let xs = Array.init 1000 (fun i -> i) in
      let expected = Array.map (fun x -> (x * x) - 3) xs in
      let got = Pool.parallel_map pool (fun x -> (x * x) - 3) xs in
      Alcotest.(check (array int)) "positional results" expected got)

let test_mapi_indices () =
  with_pool ~jobs:3 (fun pool ->
      let xs = Array.make 257 "x" in
      let got = Pool.parallel_mapi pool (fun i s -> Printf.sprintf "%s%d" s i) xs in
      Array.iteri
        (fun i s ->
          Alcotest.(check string) "index" (Printf.sprintf "x%d" i) s)
        got)

let test_empty_and_singleton () =
  with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (array int)) "empty" [||]
        (Pool.parallel_map pool (fun x -> x + 1) [||]);
      Alcotest.(check (array int)) "singleton" [| 43 |]
        (Pool.parallel_map pool (fun x -> x + 1) [| 42 |]))

let test_jobs_one_inline () =
  with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "jobs clamp" 1 (Pool.jobs pool);
      let got = Pool.parallel_map pool (fun x -> 2 * x) (Array.init 10 Fun.id) in
      Alcotest.(check (array int)) "inline map" (Array.init 10 (fun i -> 2 * i)) got)

let test_chunk_choice_irrelevant () =
  with_pool ~jobs:4 (fun pool ->
      let xs = Array.init 100 (fun i -> i) in
      let f x = x * 7 in
      let reference = Pool.parallel_map ~chunk:1 pool f xs in
      List.iter
        (fun chunk ->
          Alcotest.(check (array int))
            (Printf.sprintf "chunk %d" chunk)
            reference
            (Pool.parallel_map ~chunk pool f xs))
        [ 3; 17; 100; 1000 ])

exception Boom of int

let test_exception_lowest_index () =
  with_pool ~jobs:4 (fun pool ->
      let xs = Array.init 64 Fun.id in
      let attempt chunk =
        match
          Pool.parallel_map ~chunk pool
            (fun x -> if x mod 10 = 3 then raise (Boom x) else x)
            xs
        with
        | _ -> Alcotest.fail "expected exception"
        | exception Boom i -> Alcotest.(check int) "lowest index" 3 i
      in
      attempt 1;
      attempt 7)

let test_pool_survives_exception () =
  with_pool ~jobs:2 (fun pool ->
      (try ignore (Pool.parallel_map pool (fun _ -> failwith "die") [| 1; 2; 3 |])
       with Failure _ -> ());
      Alcotest.(check (array int)) "usable after failure" [| 2; 4 |]
        (Pool.parallel_map pool (fun x -> 2 * x) [| 1; 2 |]))

let test_nested_map_inlines () =
  with_pool ~jobs:4 (fun pool ->
      let got =
        Pool.parallel_map pool
          (fun row ->
            (* A task submitting to the same pool must not deadlock. *)
            Array.fold_left ( + ) 0
              (Pool.parallel_map pool (fun x -> row * x) (Array.init 10 Fun.id)))
          (Array.init 8 Fun.id)
      in
      Alcotest.(check (array int)) "nested results"
        (Array.init 8 (fun row -> row * 45))
        got)

let test_for_reduce_order () =
  with_pool ~jobs:4 (fun pool ->
      (* String concatenation is non-commutative: only the index-ordered
         fold produces this. *)
      let s =
        Pool.parallel_for_reduce pool ~n:10 ~init:""
          ~combine:(fun acc x -> acc ^ x)
          string_of_int
      in
      Alcotest.(check string) "index-ordered fold" "0123456789" s;
      let zero =
        Pool.parallel_for_reduce pool ~n:0 ~init:17 ~combine:( + ) (fun i -> i)
      in
      Alcotest.(check int) "n = 0" 17 zero)

let test_shutdown_falls_back_inline () =
  let pool = Pool.create ~jobs:4 () in
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  let got = Pool.parallel_map pool (fun x -> x + 1) (Array.init 5 Fun.id) in
  Alcotest.(check (array int)) "inline after shutdown"
    (Array.init 5 (fun i -> i + 1))
    got

let test_stats_counters () =
  with_pool ~jobs:2 (fun pool ->
      Pool.reset_stats pool;
      ignore (Pool.parallel_map pool (fun x -> x) (Array.init 50 Fun.id));
      ignore (Pool.parallel_map pool (fun x -> x) (Array.init 50 Fun.id));
      let s = Pool.stats pool in
      Alcotest.(check int) "jobs" 2 s.Pool.jobs;
      Alcotest.(check int) "batches" 2 s.Pool.batches;
      Alcotest.(check int) "tasks" 100 s.Pool.tasks;
      Alcotest.(check int) "busy slots" 2 (Array.length s.Pool.busy);
      Alcotest.(check bool) "steals non-negative" true (s.Pool.steals >= 0);
      Alcotest.(check bool) "parks non-negative" true (s.Pool.parks >= 0);
      Alcotest.(check bool) "deque depth recorded" true
        (s.Pool.max_deque_depth >= 0);
      Pool.reset_stats pool;
      let s = Pool.stats pool in
      Alcotest.(check int) "reset batches" 0 s.Pool.batches;
      Alcotest.(check int) "reset tasks" 0 s.Pool.tasks;
      Alcotest.(check int) "reset steals" 0 s.Pool.steals;
      Alcotest.(check int) "reset parks" 0 s.Pool.parks;
      Alcotest.(check int) "reset depth" 0 s.Pool.max_deque_depth)

(* --- Rng.derive --------------------------------------------------------- *)

let test_derive_pure () =
  let a = Rng.derive 42 7 and b = Rng.derive 42 7 in
  for _ = 1 to 50 do
    Alcotest.(check int64) "pure in (seed, index)" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_derive_decorrelated () =
  let a = Rng.derive 42 0 and b = Rng.derive 42 1 in
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.bits64 a) (Rng.bits64 b) then incr matches
  done;
  Alcotest.(check bool) "neighbouring indices diverge" true (!matches < 4)

let test_derive_negative () =
  Alcotest.check_raises "negative index"
    (Invalid_argument "Rng.derive: negative index") (fun () ->
      ignore (Rng.derive 1 (-1)))

(* --- end-to-end determinism of the parallel workloads ------------------- *)

let platform_fixture () =
  let graph = Core.Benchmarks.load 0 in
  let lib = Core.Catalog.platform_library () in
  let pes = Core.Catalog.platform_instances 4 in
  (graph, lib, pes)

let fresh_hotspot () =
  Core.Hotspot.create
    (Core.Grid.layout
       (Array.init 4 (fun i ->
            Core.Block.make ~name:(Printf.sprintf "PE%d" i) ~area:1.6e-5 ())))

let test_montecarlo_bit_identical () =
  let graph, lib, pes = platform_fixture () in
  let schedule =
    Core.List_sched.run ~graph ~lib ~pes ~policy:Core.Policy.Baseline ()
  in
  let run jobs =
    with_pool ~jobs (fun pool ->
        Core.Montecarlo.analyze ~runs:100 ~pool ~seed:11 ~lib
          ~hotspot:(fresh_hotspot ()) schedule)
  in
  let reference = run 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs 1 = jobs %d" jobs)
        true
        (reference = run jobs))
    [ 2; 4; 8 ]

let test_ga_bit_identical () =
  let rng = Core.Rng.create 5 in
  let blocks =
    Array.init 6 (fun i ->
        Core.Block.make ~name:(Printf.sprintf "b%d" i)
          ~area:(Core.Rng.uniform rng 8e-6 2.5e-5)
          ())
  in
  let blocks_area = Array.fold_left (fun a b -> a +. b.Core.Block.area) 0.0 blocks in
  let run jobs =
    with_pool ~jobs (fun pool ->
        let r =
          Core.Ga.run
            ~params:{ Core.Ga.default_params with Core.Ga.generations = 8 }
            ~pool ~seed:42 ~blocks
            ~cost:(Core.Flow.floorplan_cost ~blocks_area)
            ()
        in
        (r.Core.Ga.best_cost, r.Core.Ga.history, r.Core.Ga.best_expr))
  in
  let reference = run 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs 1 = jobs %d" jobs)
        true
        (reference = run jobs))
    [ 2; 4; 8 ]

let test_sa_restarts_deterministic () =
  let graph, lib, pes = platform_fixture () in
  let params =
    {
      Core.Sa_mapper.initial_temperature = 20.0;
      cooling = 0.85;
      moves_per_temperature = 20;
      min_temperature = 0.5;
    }
  in
  let run jobs =
    with_pool ~jobs (fun pool ->
        let r =
          Core.Sa_mapper.run_restarts ~params ~pool ~restarts:3 ~seed:1
            ~objective:Core.Sa_mapper.Makespan ~graph ~lib ~pes ()
        in
        (r.Core.Sa_mapper.best_restart, r.Core.Sa_mapper.restart_costs))
  in
  let reference = run 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs 1 = jobs %d" jobs)
        true
        (reference = run jobs))
    [ 2; 4; 8 ];
  (* Restart 0 replays the single-chain run with the same seed. *)
  let single =
    Core.Sa_mapper.run ~params ~seed:1 ~objective:Core.Sa_mapper.Makespan
      ~graph ~lib ~pes ()
  in
  let _, costs = run 2 in
  Alcotest.(check (float 0.0)) "restart 0 replays run" single.Core.Sa_mapper.cost
    costs.(0)

let () =
  Alcotest.run "pool"
    [
      ( "parallel_map",
        [
          Alcotest.test_case "matches sequential map" `Quick
            test_map_matches_sequential;
          Alcotest.test_case "mapi indices" `Quick test_mapi_indices;
          Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
          Alcotest.test_case "jobs=1 inline" `Quick test_jobs_one_inline;
          Alcotest.test_case "chunking never changes results" `Quick
            test_chunk_choice_irrelevant;
          Alcotest.test_case "lowest-index exception" `Quick
            test_exception_lowest_index;
          Alcotest.test_case "pool survives task failure" `Quick
            test_pool_survives_exception;
          Alcotest.test_case "nested map inlines" `Quick test_nested_map_inlines;
          Alcotest.test_case "for_reduce folds in order" `Quick
            test_for_reduce_order;
          Alcotest.test_case "shutdown falls back inline" `Quick
            test_shutdown_falls_back_inline;
          Alcotest.test_case "stats counters" `Quick test_stats_counters;
        ] );
      ( "rng-derive",
        [
          Alcotest.test_case "pure function of (seed, index)" `Quick
            test_derive_pure;
          Alcotest.test_case "indices decorrelated" `Quick test_derive_decorrelated;
          Alcotest.test_case "negative index rejected" `Quick test_derive_negative;
        ] );
      ( "workload-determinism",
        [
          Alcotest.test_case "Monte-Carlo bit-identical jobs 1 vs 2/4/8" `Quick
            test_montecarlo_bit_identical;
          Alcotest.test_case "GA bit-identical jobs 1 vs 2/4/8" `Quick
            test_ga_bit_identical;
          Alcotest.test_case "SA restarts deterministic" `Quick
            test_sa_restarts_deterministic;
        ] );
    ]
