(* Tests for the thermal inquiry engine: influence-matrix extraction, the
   numerical-equivalence guarantee against the dense Steady path (linear,
   leakage fixed point, delta evaluation), inquiry caching, and the
   instrumentation counters. *)

module Lu = Tats_linalg.Lu
module Matrix = Tats_linalg.Matrix
module Benchmarks = Tats_taskgraph.Benchmarks
module Pe = Tats_techlib.Pe
module Library = Tats_techlib.Library
module Catalog = Tats_techlib.Catalog
module Block = Tats_floorplan.Block
module Grid = Tats_floorplan.Grid
module Steady = Tats_thermal.Steady
module Hotspot = Tats_thermal.Hotspot
module Inquiry = Tats_thermal.Inquiry
module Policy = Tats_sched.Policy
module Schedule = Tats_sched.Schedule
module List_sched = Tats_sched.List_sched
module Montecarlo = Tats_sched.Montecarlo
module Pool = Tats_util.Pool

let platform_lib = Catalog.platform_library ()
let platform_pes n = Catalog.platform_instances n

let platform_hotspot n =
  Hotspot.create
    (Grid.layout
       (Array.map
          (fun (i : Pe.inst) ->
            Block.make ~name:(string_of_int i.Pe.inst_id) ~area:i.Pe.kind.Pe.area ())
          (platform_pes n)))

let max_abs_diff a b =
  let d = ref 0.0 in
  Array.iteri (fun i x -> d := Float.max !d (Float.abs (x -. b.(i)))) a;
  !d

(* Power vectors shaped like real inquiries: a few W of dynamic power plus
   the platform idle floor. *)
let idle4 = [| 0.6; 0.6; 0.6; 0.6 |]

let sample_dynamics =
  [
    [| 2.0; 6.0; 1.0; 3.0 |];
    [| 0.0; 0.0; 0.0; 0.0 |];
    [| 8.0; 0.1; 0.1; 0.1 |];
    [| 3.3; 3.3; 3.3; 3.3 |];
    [| 0.07; 4.9; 2.2; 0.0 |];
  ]

(* --- influence matrix ----------------------------------------------------- *)

let test_influence_columns_are_unit_solutions () =
  let h = platform_hotspot 4 in
  let engine = Hotspot.inquiry h in
  let factored = Steady.factored (Hotspot.solver h) in
  let n = Inquiry.n_blocks engine in
  Alcotest.(check int) "n_blocks" 4 n;
  let m = Inquiry.influence engine in
  for j = 0 to n - 1 do
    let unit = Lu.unit_solution factored j in
    let col = Inquiry.influence_column engine j in
    let mcol = Matrix.col m j in
    for i = 0 to n - 1 do
      Alcotest.(check (float 0.0)) "col = unit solution" unit.(i) col.(i);
      Alcotest.(check (float 0.0)) "influence = col" col.(i) mcol.(i)
    done
  done

let test_influence_symmetric_positive () =
  (* The RC network is reciprocal: heating block j raises block i exactly as
     much as the reverse, and any injected power raises every block. *)
  let engine = Hotspot.inquiry (platform_hotspot 4) in
  let m = Inquiry.influence engine in
  for i = 0 to 3 do
    for j = 0 to 3 do
      Alcotest.(check bool) "positive" true (Matrix.get m i j > 0.0);
      Alcotest.(check (float 1e-9)) "symmetric" (Matrix.get m i j)
        (Matrix.get m j i)
    done
  done

let test_linear_temperatures_match_dense () =
  let h = platform_hotspot 4 in
  let engine = Hotspot.inquiry h in
  let solver = Hotspot.solver h in
  List.iter
    (fun dynamic ->
      let power = Array.mapi (fun i d -> d +. idle4.(i)) dynamic in
      let fast = Inquiry.temperatures engine ~power in
      let dense = Steady.block_temperatures solver ~power in
      Alcotest.(check bool)
        (Printf.sprintf "diff %.2e" (max_abs_diff fast dense))
        true
        (max_abs_diff fast dense <= 1e-9))
    sample_dynamics

(* --- leakage equivalence -------------------------------------------------- *)

let test_leakage_query_matches_dense () =
  let h = platform_hotspot 4 in
  let engine = Hotspot.inquiry h in
  let solver = Hotspot.solver h in
  List.iter
    (fun dynamic ->
      let fast = Inquiry.query_with_leakage engine ~dynamic ~idle:idle4 in
      let dense, _ = Steady.solve_with_leakage solver ~dynamic ~idle:idle4 in
      Alcotest.(check bool)
        (Printf.sprintf "diff %.2e" (max_abs_diff fast dense))
        true
        (max_abs_diff fast dense <= 1e-6))
    sample_dynamics

let test_warm_start_stays_equivalent () =
  (* A warm start changes the iteration path: both runs stop within [tol] of
     the fixed point, but from different sides, so they agree to a few
     multiples of [tol] rather than the strict cold-start bound. This is why
     warm starting is opt-in and kept off the scheduler's candidate path. *)
  let h = platform_hotspot 4 in
  let engine = Hotspot.inquiry h in
  let solver = Hotspot.solver h in
  ignore (Inquiry.query_with_leakage engine ~dynamic:[| 2.0; 6.0; 1.0; 3.0 |]
            ~idle:idle4 : float array);
  let dynamic = [| 2.1; 5.9; 1.1; 2.9 |] in
  let fast = Inquiry.query_with_leakage ~warm:true engine ~dynamic ~idle:idle4 in
  let dense, _ = Steady.solve_with_leakage solver ~dynamic ~idle:idle4 in
  Alcotest.(check bool)
    (Printf.sprintf "diff %.2e" (max_abs_diff fast dense))
    true
    (max_abs_diff fast dense <= 1e-5)

let test_delta_query_matches_explicit_vector () =
  let h = platform_hotspot 4 in
  let engine = Hotspot.inquiry h in
  let solver = Hotspot.solver h in
  let pe_energy = [| 120.0; 40.0; 0.0; 260.0 |] in
  let base = Inquiry.base_response engine ~power:pe_energy in
  List.iter
    (fun (horizon, pe, extra) ->
      let fast =
        Inquiry.query_delta engine ~base ~horizon ~pe ~extra ~idle:idle4
      in
      let dynamic =
        Array.mapi
          (fun i e ->
            (e /. horizon) +. if i = pe then extra else 0.0)
          pe_energy
      in
      let dense, _ = Steady.solve_with_leakage solver ~dynamic ~idle:idle4 in
      Alcotest.(check bool)
        (Printf.sprintf "pe %d horizon %.0f: diff %.2e" pe horizon
           (max_abs_diff fast dense))
        true
        (max_abs_diff fast dense <= 1e-6))
    [ (100.0, 0, 4.0); (63.0, 2, 7.7); (412.0, 3, 0.5); (57.0, 1, 0.0) ]

(* Replay the inquiry stream of a real scheduling run on the paper's
   benchmarks: accumulate committed PE energies in start order and issue the
   candidate inquiry each entry would have produced, fast vs dense. *)
let test_benchmark_replay_equivalence () =
  List.iter
    (fun bench ->
      let graph = Benchmarks.load bench in
      let pes = platform_pes 4 in
      let h = platform_hotspot 4 in
      let engine = Hotspot.inquiry h in
      let solver = Hotspot.solver h in
      let s =
        List_sched.run ~hotspot:h ~graph ~lib:platform_lib ~pes
          ~policy:Policy.Thermal_aware ()
      in
      let order =
        List.sort
          (fun (a : Schedule.entry) b -> compare (a.start, a.task) (b.start, b.task))
          (Array.to_list s.Schedule.entries)
      in
      let pe_energy = Array.make 4 0.0 in
      let worst = ref 0.0 in
      List.iter
        (fun (e : Schedule.entry) ->
          let tt = (Tats_taskgraph.Graph.task graph e.Schedule.task).task_type in
          let kind = pes.(e.Schedule.pe).Pe.kind.Pe.kind_id in
          let wcpc = Library.wcpc platform_lib ~task_type:tt ~kind in
          let horizon = Float.max e.Schedule.finish 1e-9 in
          let dynamic =
            Array.mapi
              (fun p en ->
                (en /. horizon) +. if p = e.Schedule.pe then wcpc else 0.0)
              pe_energy
          in
          let fast = Inquiry.query_with_leakage engine ~dynamic ~idle:idle4 in
          let dense, _ = Steady.solve_with_leakage solver ~dynamic ~idle:idle4 in
          worst := Float.max !worst (max_abs_diff fast dense);
          pe_energy.(e.Schedule.pe) <- pe_energy.(e.Schedule.pe) +. e.Schedule.energy)
        order;
      Alcotest.(check bool)
        (Printf.sprintf "bench %d worst diff %.2e" bench !worst)
        true (!worst <= 1e-6))
    [ 0; 1; 2 ]

(* --- cache ---------------------------------------------------------------- *)

let test_cache_serves_repeats () =
  let engine = Hotspot.inquiry (platform_hotspot 4) in
  let dynamic = [| 1.5; 2.5; 0.5; 4.5 |] in
  let a = Inquiry.query_with_leakage engine ~dynamic ~idle:idle4 in
  let b = Inquiry.query_with_leakage engine ~dynamic ~idle:idle4 in
  Alcotest.(check (float 0.0)) "identical result" 0.0 (max_abs_diff a b);
  let s = Inquiry.stats engine in
  Alcotest.(check int) "two inquiries" 2 s.Inquiry.inquiries;
  Alcotest.(check int) "one hit" 1 s.Inquiry.cache_hits;
  (* The cache hands out copies: clobbering a result must not poison it. *)
  a.(0) <- -1000.0;
  let c = Inquiry.query_with_leakage engine ~dynamic ~idle:idle4 in
  Alcotest.(check (float 0.0)) "copy, not alias" 0.0 (max_abs_diff b c)

let test_cache_bypassed_on_non_default_settings () =
  let engine = Hotspot.inquiry (platform_hotspot 4) in
  let dynamic = [| 1.0; 2.0; 3.0; 4.0 |] in
  ignore (Inquiry.query_with_leakage ~tol:1e-8 engine ~dynamic ~idle:idle4
          : float array);
  ignore (Inquiry.query_with_leakage ~tol:1e-8 engine ~dynamic ~idle:idle4
          : float array);
  let s = Inquiry.stats engine in
  Alcotest.(check int) "no hits off the default path" 0 s.Inquiry.cache_hits

(* --- counters ------------------------------------------------------------- *)

let test_create_costs_n_blocks_factored_solves () =
  let engine = Hotspot.inquiry (platform_hotspot 4) in
  let s = Inquiry.stats engine in
  Alcotest.(check int) "factored solves" 4 s.Inquiry.factored_solves;
  Alcotest.(check int) "no inquiries yet" 0 s.Inquiry.inquiries

let test_schedule_run_counts_and_saves () =
  let graph = Benchmarks.load 0 in
  let h = platform_hotspot 4 in
  ignore
    (List_sched.run ~hotspot:h ~graph ~lib:platform_lib ~pes:(platform_pes 4)
       ~policy:Policy.Thermal_aware ()
     : Schedule.t);
  let s = Hotspot.inquiry_stats h in
  Alcotest.(check bool) "inquiries issued" true (s.Inquiry.inquiries > 0);
  Alcotest.(check bool) "delta evaluated" true
    (s.Inquiry.delta_evals = s.Inquiry.inquiries);
  Alcotest.(check bool) "iterations counted" true (s.Inquiry.fp_iterations > 0);
  Alcotest.(check bool)
    (Printf.sprintf "dense %d >= 5 x factored %d" s.Inquiry.dense_solves
       s.Inquiry.factored_solves)
    true
    (s.Inquiry.dense_solves >= 5 * s.Inquiry.factored_solves)

let test_global_stats_aggregate () =
  Inquiry.reset_global_stats ();
  let e1 = Hotspot.inquiry (platform_hotspot 4) in
  let e2 = Hotspot.inquiry (platform_hotspot 4) in
  ignore (Inquiry.query_with_leakage e1 ~dynamic:[| 1.0; 1.0; 1.0; 1.0 |]
            ~idle:idle4 : float array);
  ignore (Inquiry.query_with_leakage e2 ~dynamic:[| 2.0; 2.0; 2.0; 2.0 |]
            ~idle:idle4 : float array);
  let g = Inquiry.global_stats () in
  Alcotest.(check int) "both creations counted" 8 g.Inquiry.factored_solves;
  Alcotest.(check int) "both inquiries counted" 2 g.Inquiry.inquiries;
  Inquiry.reset_global_stats ();
  Alcotest.(check int) "reset" 0 (Inquiry.global_stats ()).Inquiry.inquiries

let test_wall_time_is_wall_clock () =
  (* Regression: the engine's wall_time counter once summed [Sys.time]
     deltas — process CPU time, which under a [--jobs N] pool counts every
     domain's CPU inside every measurement, inflating the counter up to
     N times per query (N² total).  Measured with the wall clock
     ({!Tats_util.Trace.now}) instead, per-domain timings are additive: the
     sum across [jobs] domains cannot exceed [jobs] x the elapsed wall
     time.  A CPU-time counter on 4 busy domains lands around 4x that
     bound, so the assertion discriminates. *)
  let graph = Benchmarks.load 1 in
  let pes = platform_pes 4 in
  let h = platform_hotspot 4 in
  let schedule =
    List_sched.run ~hotspot:h ~graph ~lib:platform_lib ~pes
      ~policy:Policy.Thermal_aware ()
  in
  let engine = Hotspot.inquiry h in
  Inquiry.reset_stats engine;
  let jobs = 4 in
  let t0 = Tats_util.Trace.now () in
  ignore
    (Pool.with_pool ~jobs (fun pool ->
         Montecarlo.analyze ~runs:400 ~pool ~seed:7 ~lib:platform_lib ~hotspot:h
           schedule)
     : Montecarlo.stats);
  let elapsed = Tats_util.Trace.now () -. t0 in
  let s = Inquiry.stats engine in
  Alcotest.(check bool) "engine exercised" true (s.Inquiry.inquiries > 0);
  Alcotest.(check bool) "wall_time positive" true (s.Inquiry.wall_time > 0.0);
  Alcotest.(check bool)
    (Printf.sprintf "wall_time %.3f <= %d x elapsed %.3f + slack" s.Inquiry.wall_time
       jobs elapsed)
    true
    (s.Inquiry.wall_time <= (float_of_int jobs *. elapsed) +. 0.5)

let test_validation () =
  let engine = Hotspot.inquiry (platform_hotspot 4) in
  let bad l = Array.make l 1.0 in
  Alcotest.(check bool) "short dynamic rejected" true
    (try
       ignore (Inquiry.query_with_leakage engine ~dynamic:(bad 3) ~idle:idle4
               : float array);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad column rejected" true
    (try ignore (Inquiry.influence_column engine 4 : float array); false
     with Invalid_argument _ -> true);
  let base = Inquiry.base_response engine ~power:(bad 4) in
  Alcotest.(check bool) "bad pe rejected" true
    (try
       ignore (Inquiry.query_delta engine ~base ~horizon:10.0 ~pe:7 ~extra:1.0
                 ~idle:idle4 : float array);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "inquiry"
    [
      ( "influence",
        [
          Alcotest.test_case "columns = unit solutions" `Quick
            test_influence_columns_are_unit_solutions;
          Alcotest.test_case "symmetric positive" `Quick
            test_influence_symmetric_positive;
          Alcotest.test_case "linear temps match dense" `Quick
            test_linear_temperatures_match_dense;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "leakage query matches dense" `Quick
            test_leakage_query_matches_dense;
          Alcotest.test_case "warm start equivalent" `Quick
            test_warm_start_stays_equivalent;
          Alcotest.test_case "delta query matches explicit" `Quick
            test_delta_query_matches_explicit_vector;
          Alcotest.test_case "benchmark replay (Bm1-Bm3)" `Quick
            test_benchmark_replay_equivalence;
        ] );
      ( "cache",
        [
          Alcotest.test_case "serves repeats" `Quick test_cache_serves_repeats;
          Alcotest.test_case "bypassed off defaults" `Quick
            test_cache_bypassed_on_non_default_settings;
        ] );
      ( "counters",
        [
          Alcotest.test_case "creation cost" `Quick
            test_create_costs_n_blocks_factored_solves;
          Alcotest.test_case "schedule run saves solves" `Quick
            test_schedule_run_counts_and_saves;
          Alcotest.test_case "global aggregate" `Quick test_global_stats_aggregate;
          Alcotest.test_case "wall_time is wall clock, not CPU" `Quick
            test_wall_time_is_wall_clock;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
    ]
