(* Property and differential tests for Tats_campaign.Campaign.

   Three pillars. (1) Expansion is a pure function of the spec:
   deterministic, duplicate-free, order-pinned — so cell content
   addresses are stable across processes and shards. (2) The artifact
   store is bit-exact: the same campaign run at pool jobs 1/2/4 writes
   byte-identical artifacts, every persisted result equals the direct
   Flow computation float for float, and a crashed store (truncated,
   corrupted, deleted artifacts) resumes to a manifest and artifact set
   byte-identical to an uninterrupted run. (3) The gate: a manifest
   self-compares clean, an injected regression fails at zero tolerance
   (and the CLI maps that to exit 2), and the same delta inside the
   tolerance is reported as drift, not failure. *)

module Graph = Tats_taskgraph.Graph
module Generator = Tats_taskgraph.Generator
module Benchmarks = Tats_taskgraph.Benchmarks
module Tgff_io = Tats_taskgraph.Tgff_io
module Catalog = Tats_techlib.Catalog
module Package = Tats_thermal.Package
module Policy = Tats_sched.Policy
module Schedule = Tats_sched.Schedule
module Metrics = Tats_sched.Metrics
module Flow = Tats_cosynth.Flow
module Pool = Tats_util.Pool
module Fsio = Tats_util.Fsio
module Campaign = Tats_campaign.Campaign

(* --- helpers -------------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  nn = 0 || at 0

let scratch_counter = ref 0

(* A fresh, guaranteed-empty scratch directory under the system temp dir. *)
let fresh_dir tag =
  incr scratch_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tats-test-campaign-%d-%s-%d" (Unix.getpid ()) tag
         !scratch_counter)
  in
  Fsio.remove_recursive d;
  d

let with_dir tag f =
  let d = fresh_dir tag in
  Fun.protect ~finally:(fun () -> Fsio.remove_recursive d) (fun () -> f d)

let sorted_artifacts dir =
  let cells = Filename.concat dir "cells" in
  Sys.readdir cells |> Array.to_list |> List.sort compare

(* The small mixed campaign most tests run: benchmark + generated graph,
   two policies, two platform points (one budget-annotated). 8 cells, all
   on the fixed platform so the suite stays fast. *)
let small_spec =
  {
    Campaign.name = "camp-test";
    graphs =
      [
        Campaign.Bench 0;
        Campaign.Generated
          { seed = 7; n_tasks = 12; n_edges = 18; deadline = 600.0 };
      ];
    policies = [ Policy.Baseline; Policy.Thermal_aware ];
    platforms =
      [
        {
          Campaign.arch = Platform 4;
          ambient = 45.0;
          power_budget = None;
          pins = [];
          isolation = [];
        };
        {
          Campaign.arch = Platform 2;
          ambient = 55.0;
          power_budget = Some 20.0;
          pins = [];
          isolation = [];
        };
      ];
  }

(* --- expansion ------------------------------------------------------------ *)

let test_expansion_deterministic_duplicate_free () =
  (* Across a family of seeded specs: expanding twice yields the same id
     sequence, and no id repeats. *)
  for seed = 0 to 19 do
    let n_tasks = 8 + (seed mod 5) in
    let spec =
      {
        Campaign.name = Printf.sprintf "seeded%d" seed;
        graphs =
          [
            Campaign.Bench (seed mod 4);
            Campaign.Generated
              {
                seed;
                n_tasks;
                n_edges = n_tasks - 1 + (seed mod 7);
                deadline = 400.0 +. float_of_int seed;
              };
          ];
        policies = [ Policy.Baseline; Policy.Thermal_aware ];
        platforms =
          [
            {
              Campaign.arch = Platform (2 + (seed mod 3));
              ambient = 35.0 +. float_of_int (seed mod 4);
              power_budget = (if seed mod 2 = 0 then None else Some 25.0);
              pins = [];
              isolation = [];
            };
          ];
      }
    in
    let ids1 = List.map Campaign.cell_id (Campaign.expand spec) in
    let ids2 = List.map Campaign.cell_id (Campaign.expand spec) in
    Alcotest.(check (list string))
      (Printf.sprintf "seed %d: expansion deterministic" seed)
      ids1 ids2;
    Alcotest.(check int)
      (Printf.sprintf "seed %d: duplicate-free" seed)
      (List.length ids1)
      (List.length (List.sort_uniq compare ids1))
  done

let test_expansion_order_pinned () =
  (* Graphs outermost, platforms innermost — the manifest's expansion
     order, which sharding and resume both key off. *)
  let cells = Campaign.expand small_spec in
  Alcotest.(check int) "8 cells" 8 (List.length cells);
  Alcotest.(check int) "n_cells agrees" 8 (Campaign.n_cells small_spec);
  let labels = List.map Campaign.cell_label cells in
  Alcotest.(check string) "first cell" "Bm1/baseline/p4@45C"
    (List.nth labels 0);
  Alcotest.(check string) "platform axis spins fastest"
    "Bm1/baseline/p2@55C/b20" (List.nth labels 1);
  Alcotest.(check string) "policy axis next" "Bm1/thermal/p4@45C"
    (List.nth labels 2);
  Alcotest.(check string) "graph axis outermost" "gen7x12/baseline/p4@45C"
    (List.nth labels 4)

let test_invalid_specs_rejected () =
  let raises what spec =
    match Campaign.expand spec with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" what
    | exception Invalid_argument _ -> ()
  in
  raises "empty graph axis" { small_spec with Campaign.graphs = [] };
  raises "empty policy axis" { small_spec with Campaign.policies = [] };
  raises "empty platform axis" { small_spec with Campaign.platforms = [] };
  raises "bench index out of range"
    { small_spec with Campaign.graphs = [ Campaign.Bench 99 ] };
  raises "infeasible generated edges"
    {
      small_spec with
      Campaign.graphs =
        [ Campaign.Generated { seed = 1; n_tasks = 4; n_edges = 100; deadline = 10.0 } ];
    };
  raises "duplicate cells"
    { small_spec with Campaign.policies = [ Policy.Baseline; Policy.Baseline ] }

let test_cell_id_is_content_address () =
  let cells = Campaign.expand small_spec in
  let c0 = List.nth cells 0 and c1 = List.nth cells 1 in
  Alcotest.(check string) "id stable across calls" (Campaign.cell_id c0)
    (Campaign.cell_id c0);
  Alcotest.(check bool) "distinct cells get distinct ids" true
    (Campaign.cell_id c0 <> Campaign.cell_id c1);
  Alcotest.(check int) "md5 hex length" 32 (String.length (Campaign.cell_id c0))

let test_spec_json_round_trip () =
  List.iter
    (fun spec ->
      let s = Campaign.spec_to_string spec in
      match Campaign.spec_of_string s with
      | Error e -> Alcotest.failf "%s: round trip failed: %s" spec.Campaign.name e
      | Ok spec' ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: round trips structurally" spec.Campaign.name)
            true (spec = spec');
          Alcotest.(check string)
            (Printf.sprintf "%s: re-encoding is byte-stable" spec.Campaign.name)
            s
            (Campaign.spec_to_string spec'))
    (small_spec
    :: List.filter_map Campaign.builtin Campaign.builtin_names);
  match Campaign.spec_of_string "{\"name\":3}" with
  | Ok _ -> Alcotest.fail "malformed spec accepted"
  | Error _ -> ()

let test_builtin_expansions () =
  let count name =
    match Campaign.builtin name with
    | None -> Alcotest.failf "builtin %s missing" name
    | Some spec -> List.length (Campaign.expand spec)
  in
  Alcotest.(check int) "table1 = 4 graphs x 4 policies x 2 archs" 32
    (count "table1");
  Alcotest.(check int) "table2 = 4 x 2 x 1" 8 (count "table2");
  Alcotest.(check int) "table3 = 4 x 2 x 1" 8 (count "table3");
  Alcotest.(check int) "golden = 2 x 3 x 2" 12 (count "golden");
  Alcotest.(check int) "sweep1k = 18 x 5 x 12" 1080 (count "sweep1k");
  Alcotest.(check bool) "unknown builtin is None" true
    (Campaign.builtin "nope" = None)

(* --- generated graphs at scale -------------------------------------------- *)

let test_scaled_generated_dags_validate () =
  (* The thousands-of-node axis: a >= 1000-task scaled spec generates a
     graph with exactly the requested counts, acyclic (every edge points
     forward in a topological order) and weakly connected. *)
  let n_tasks = 1200 in
  let spec = Generator.scaled_spec ~n_tasks in
  let lo, hi = Generator.feasible_edges ~n_tasks in
  Alcotest.(check bool) "edge count feasible" true
    (spec.Generator.n_edges >= lo && spec.Generator.n_edges <= hi);
  Alcotest.(check int) "task types match the stock libraries"
    Benchmarks.n_task_types spec.Generator.n_task_types;
  let g = Generator.generate ~seed:42 ~name:"big" spec in
  Alcotest.(check int) "task count exact" n_tasks (Graph.n_tasks g);
  Alcotest.(check int) "edge count exact" spec.Generator.n_edges
    (Graph.n_edges g);
  Alcotest.(check bool) "weakly connected" true (Graph.is_weakly_connected g);
  let order = Graph.topological_order g in
  Alcotest.(check int) "topological order covers every task" n_tasks
    (Array.length order);
  let position = Array.make n_tasks 0 in
  Array.iteri (fun i id -> position.(id) <- i) order;
  List.iter
    (fun { Graph.src; dst; _ } ->
      if position.(src) >= position.(dst) then
        Alcotest.failf "edge %d -> %d not precedence-closed" src dst)
    (Graph.edges g)

let test_scaled_generation_seed_reproducible () =
  let spec = Generator.scaled_spec ~n_tasks:1000 in
  let render seed =
    Tgff_io.to_string (Generator.generate ~seed ~name:"big" spec)
  in
  Alcotest.(check string) "same seed, same graph" (render 5) (render 5);
  Alcotest.(check bool) "different seed, different graph" true
    (render 5 <> render 6)

(* --- artifact bit-identity ------------------------------------------------ *)

let run_into ?pool ?shards ?shard dir =
  Campaign.run ?pool ?shards ?shard ~dir small_spec

let test_results_bit_identical_across_jobs_and_flow () =
  (* Run the same campaign at pool jobs 1, 2 and 4: every artifact (and
     the manifest) must come out byte-identical, and the persisted floats
     must equal a direct Flow computation exactly — no tolerance. *)
  with_dir "jobs" @@ fun root ->
  let dirs =
    List.map
      (fun jobs ->
        let dir = Filename.concat root (Printf.sprintf "j%d" jobs) in
        Pool.with_pool ~jobs (fun pool ->
            let r = run_into ~pool dir in
            Alcotest.(check int)
              (Printf.sprintf "jobs %d computed all" jobs)
              8 r.Campaign.computed;
            Alcotest.(check bool)
              (Printf.sprintf "jobs %d manifest written" jobs)
              true r.Campaign.manifest_written);
        dir)
      [ 1; 2; 4 ]
  in
  let reference = List.hd dirs in
  let ref_names = sorted_artifacts reference in
  Alcotest.(check int) "one artifact per cell" 8 (List.length ref_names);
  List.iter
    (fun dir ->
      Alcotest.(check (list string)) "same artifact set" ref_names
        (sorted_artifacts dir);
      List.iter
        (fun name ->
          Alcotest.(check string)
            (Printf.sprintf "artifact %s byte-identical" name)
            (read_file (Filename.concat (Filename.concat reference "cells") name))
            (read_file (Filename.concat (Filename.concat dir "cells") name)))
        ref_names;
      Alcotest.(check string) "manifest byte-identical"
        (read_file (Campaign.manifest_path reference))
        (read_file (Campaign.manifest_path dir)))
    (List.tl dirs);
  (* Persisted results vs the flow run directly, float for float. *)
  let manifest =
    match Campaign.load_manifest ~dir:reference with
    | Ok m -> m
    | Error e -> Alcotest.failf "manifest unreadable: %s" e
  in
  List.iter
    (fun (e : Campaign.entry) ->
      let c = e.Campaign.cell in
      let direct = Campaign.run_cell c in
      let stored = e.Campaign.result in
      let exact what a b =
        Alcotest.(check bool)
          (Printf.sprintf "%s: %s bit-identical" (Campaign.cell_label c) what)
          true
          (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
      in
      exact "makespan" direct.Campaign.makespan stored.Campaign.makespan;
      exact "total power" direct.Campaign.total_power stored.Campaign.total_power;
      exact "max temp" direct.Campaign.max_temp stored.Campaign.max_temp;
      exact "avg temp" direct.Campaign.avg_temp stored.Campaign.avg_temp;
      Alcotest.(check bool) "budget flag consistent"
        (match c.Campaign.platform.Campaign.power_budget with
        | None -> true
        | Some b -> stored.Campaign.total_power <= b)
        stored.Campaign.within_budget)
    manifest.Campaign.entries

let test_run_cell_matches_direct_flow () =
  (* Spell the equivalence out against Flow itself (not just run_cell
     twice): the campaign layer adds persistence, never arithmetic. *)
  let cell =
    {
      Campaign.graph = Campaign.Bench 0;
      policy = Policy.Thermal_aware;
      platform =
        {
          Campaign.arch = Platform 2;
          ambient = 55.0;
          power_budget = Some 20.0;
          pins = [];
          isolation = [];
        };
    }
  in
  let r = Campaign.run_cell cell in
  let outcome =
    Flow.run_platform ~n_pes:2
      ~package:{ Package.default with Package.ambient = 55.0 }
      ~graph:(Benchmarks.load 0)
      ~lib:(Catalog.platform_library ())
      ~policy:Policy.Thermal_aware ()
  in
  let exact what a b =
    Alcotest.(check bool) what true
      (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
  in
  exact "makespan" outcome.Flow.schedule.Schedule.makespan r.Campaign.makespan;
  exact "total power" outcome.Flow.row.Metrics.total_power
    r.Campaign.total_power;
  exact "max temp" outcome.Flow.row.Metrics.max_temp r.Campaign.max_temp;
  exact "avg temp" outcome.Flow.row.Metrics.avg_temp r.Campaign.avg_temp

(* --- crash / resume differential ------------------------------------------ *)

let test_crash_resume_differential () =
  (* Reference: one uninterrupted run. Victim: a partial shard, then
     three injected failure modes (truncated artifact, corrupted byte,
     deleted artifact), then a resume — which must detect all three,
     recompute them, and converge to the reference store byte for byte. *)
  with_dir "resume" @@ fun root ->
  let ref_dir = Filename.concat root "ref"
  and victim = Filename.concat root "victim" in
  let r = run_into ref_dir in
  Alcotest.(check bool) "reference complete" true r.Campaign.manifest_written;
  (* Interrupted campaign: only shard 0 of 2 ran. *)
  let partial = run_into ~shards:2 ~shard:0 victim in
  Alcotest.(check int) "shard covers half the cells" 4
    partial.Campaign.shard_cells;
  Alcotest.(check bool) "no manifest from a partial store" false
    partial.Campaign.manifest_written;
  Alcotest.(check bool) "no manifest file either" false
    (Sys.file_exists (Campaign.manifest_path victim));
  (match Campaign.load_manifest ~dir:victim with
  | Ok _ -> Alcotest.fail "load_manifest succeeded on incomplete store"
  | Error _ -> ());
  (* Injected damage: truncate one artifact mid-write, flip a byte in a
     second, delete a third. *)
  (match sorted_artifacts victim with
  | a :: b :: c :: _ ->
      let path name = Filename.concat (Filename.concat victim "cells") name in
      let bytes_a = read_file (path a) in
      Fsio.write_atomic (path a)
        (String.sub bytes_a 0 (String.length bytes_a / 2));
      let bytes_b = Bytes.of_string (read_file (path b)) in
      Bytes.set bytes_b (Bytes.length bytes_b / 2) '#';
      Fsio.write_atomic (path b) (Bytes.to_string bytes_b);
      Sys.remove (path c)
  | _ -> Alcotest.fail "expected at least 3 artifacts in shard 0");
  (* Resume: same entry point, no special mode. *)
  let resumed = Pool.with_pool ~jobs:4 (fun pool -> run_into ~pool victim) in
  Alcotest.(check int) "both damaged artifacts detected" 2
    resumed.Campaign.invalid;
  Alcotest.(check int) "damage + deletion + other shard recomputed"
    (4 + 3) resumed.Campaign.computed;
  Alcotest.(check int) "intact artifact reused" 1 resumed.Campaign.reused;
  Alcotest.(check bool) "manifest written on completion" true
    resumed.Campaign.manifest_written;
  (* The store must now be indistinguishable from the uninterrupted run. *)
  Alcotest.(check string) "manifest byte-identical to uninterrupted run"
    (read_file (Campaign.manifest_path ref_dir))
    (read_file (Campaign.manifest_path victim));
  let names = sorted_artifacts ref_dir in
  Alcotest.(check (list string)) "artifact sets agree" names
    (sorted_artifacts victim);
  List.iter
    (fun name ->
      Alcotest.(check string)
        (Printf.sprintf "artifact %s byte-identical" name)
        (read_file (Filename.concat (Filename.concat ref_dir "cells") name))
        (read_file (Filename.concat (Filename.concat victim "cells") name)))
    names;
  (* A further resume over the complete store is a no-op that still
     rewrites the same manifest bytes. *)
  let noop = run_into victim in
  Alcotest.(check int) "no-op resume computes nothing" 0 noop.Campaign.computed;
  Alcotest.(check int) "no-op resume reuses everything" 8 noop.Campaign.reused;
  Alcotest.(check bool) "manifest still written" true
    noop.Campaign.manifest_written;
  Alcotest.(check string) "manifest bytes unchanged"
    (read_file (Campaign.manifest_path ref_dir))
    (read_file (Campaign.manifest_path victim))

(* --- gating --------------------------------------------------------------- *)

let completed_manifest =
  lazy
    (let dir = fresh_dir "gate" in
     ignore (run_into dir);
     let m =
       match Campaign.load_manifest ~dir with
       | Ok m -> m
       | Error e -> Alcotest.failf "manifest unreadable: %s" e
     in
     Fsio.remove_recursive dir;
     m)

(* A baseline with max_temp lowered by [delta] on every cell, so the
   candidate (the real manifest) looks [delta] hotter. *)
let cooled_baseline m delta =
  {
    m with
    Campaign.entries =
      List.map
        (fun (e : Campaign.entry) ->
          {
            e with
            Campaign.result =
              {
                e.Campaign.result with
                Campaign.max_temp = e.Campaign.result.Campaign.max_temp -. delta;
              };
          })
        m.Campaign.entries;
  }

let test_gate_self_comparison_passes () =
  let m = Lazy.force completed_manifest in
  let g = Campaign.gate ~tol:Campaign.zero_tolerance ~baseline:m ~candidate:m in
  Alcotest.(check int) "all cells compared" 8 g.Campaign.compared;
  Alcotest.(check int) "all clean" 8 g.Campaign.clean;
  Alcotest.(check bool) "no drift" true (g.Campaign.drifted = []);
  Alcotest.(check bool) "no regressions" true (g.Campaign.regressed = []);
  Alcotest.(check bool) "gate passes" true (Campaign.gate_passes g)

let test_gate_flags_regressions_and_tolerates_drift () =
  let m = Lazy.force completed_manifest in
  let baseline = cooled_baseline m 0.5 in
  (* Zero tolerance: every cell regressed on max_temp. *)
  let strict =
    Campaign.gate ~tol:Campaign.zero_tolerance ~baseline ~candidate:m
  in
  Alcotest.(check int) "every cell regressed" 8
    (List.length strict.Campaign.regressed);
  Alcotest.(check bool) "strict gate fails" false
    (Campaign.gate_passes strict);
  List.iter
    (fun (f : Campaign.finding) ->
      Alcotest.(check string) "finding names the metric" "max_temp"
        f.Campaign.g_metric;
      Alcotest.(check bool) "delta magnitude right" true
        (Float.abs (f.Campaign.g_cand -. f.Campaign.g_base -. 0.5) < 1e-9))
    strict.Campaign.regressed;
  (* The same delta within tolerance: drift, and the gate passes. *)
  let tolerant =
    Campaign.gate
      ~tol:{ Campaign.zero_tolerance with Campaign.tol_max_temp = 1.5 }
      ~baseline ~candidate:m
  in
  Alcotest.(check int) "all drifted" 8 (List.length tolerant.Campaign.drifted);
  Alcotest.(check bool) "no regression within tolerance" true
    (tolerant.Campaign.regressed = []);
  Alcotest.(check bool) "tolerant gate passes" true
    (Campaign.gate_passes tolerant)

let test_gate_missing_and_extra_cells () =
  let m = Lazy.force completed_manifest in
  let truncated =
    { m with Campaign.entries = List.tl m.Campaign.entries }
  in
  let g =
    Campaign.gate ~tol:Campaign.zero_tolerance ~baseline:m ~candidate:truncated
  in
  Alcotest.(check int) "one baseline cell missing" 1
    (List.length g.Campaign.missing);
  Alcotest.(check bool) "missing cells fail the gate" false
    (Campaign.gate_passes g);
  let g' =
    Campaign.gate ~tol:Campaign.zero_tolerance ~baseline:truncated ~candidate:m
  in
  Alcotest.(check int) "extra candidate cell reported" 1
    (List.length g'.Campaign.extra);
  Alcotest.(check bool) "extra cells are informational" true
    (Campaign.gate_passes g')

let test_manifest_round_trip () =
  let m = Lazy.force completed_manifest in
  let s = Campaign.manifest_to_string m in
  match Campaign.manifest_of_string s with
  | Error e -> Alcotest.failf "manifest round trip failed: %s" e
  | Ok m' ->
      Alcotest.(check bool) "round trips structurally" true (m = m');
      Alcotest.(check string) "re-encoding byte-stable" s
        (Campaign.manifest_to_string m')

(* --- CLI ------------------------------------------------------------------ *)

let test_cli_run_report_gate () =
  (* End to end through bin/tats.exe: run a spec file, render the report,
     self-gate (exit 0), then gate against a cooled baseline (exit 2). *)
  with_dir "cli" @@ fun root ->
  Fsio.mkdir_p root;
  let spec_file = Filename.concat root "spec.json"
  and dir = Filename.concat root "store" in
  Fsio.write_atomic spec_file (Campaign.spec_to_string small_spec);
  let sh fmt = Printf.ksprintf Sys.command fmt in
  let rc =
    sh "../bin/tats.exe campaign run --spec-file %s --dir %s --jobs 2 >%s 2>&1"
      spec_file dir
      (Filename.concat root "run.txt")
  in
  Alcotest.(check int) "campaign run exits 0" 0 rc;
  Alcotest.(check bool) "manifest exists" true
    (Sys.file_exists (Campaign.manifest_path dir));
  let rc =
    sh "../bin/tats.exe campaign report --spec-file %s --dir %s >%s 2>&1"
      spec_file dir
      (Filename.concat root "report.txt")
  in
  Alcotest.(check int) "campaign report exits 0" 0 rc;
  Alcotest.(check bool) "report mentions the campaign" true
    (contains_substring (read_file (Filename.concat root "report.txt"))
       "camp-test");
  let self_baseline = Campaign.manifest_path dir in
  let rc =
    sh
      "../bin/tats.exe campaign gate --spec-file %s --dir %s --baseline %s \
       >%s 2>&1"
      spec_file dir self_baseline
      (Filename.concat root "gate-ok.txt")
  in
  Alcotest.(check int) "self gate exits 0" 0 rc;
  (* Inject a regression: a baseline 0.5 degC cooler than reality. *)
  let m =
    match Campaign.load_manifest ~dir with
    | Ok m -> m
    | Error e -> Alcotest.failf "manifest unreadable: %s" e
  in
  let cooled = Filename.concat root "cooled.json" in
  Fsio.write_atomic cooled (Campaign.manifest_to_string (cooled_baseline m 0.5));
  let rc =
    sh
      "../bin/tats.exe campaign gate --spec-file %s --dir %s --baseline %s \
       >%s 2>&1"
      spec_file dir cooled
      (Filename.concat root "gate-fail.txt")
  in
  Alcotest.(check int) "regression gate exits 2" 2 rc;
  (* And the same baseline passes once the drift is tolerated. *)
  let rc =
    sh
      "../bin/tats.exe campaign gate --spec-file %s --dir %s --baseline %s \
       --tol-max-temp 1.5 >%s 2>&1"
      spec_file dir cooled
      (Filename.concat root "gate-tol.txt")
  in
  Alcotest.(check int) "tolerated drift exits 0" 0 rc

(* --- bench-phase / alias drift -------------------------------------------- *)

let test_phase_list_well_formed () =
  let names = Core.Phases.names in
  Alcotest.(check int) "no duplicate phases" (List.length names)
    (List.length (List.sort_uniq compare names));
  Alcotest.(check bool) "campaign phase registered" true
    (List.mem "campaign" names);
  List.iter
    (fun (e : Core.Phases.entry) ->
      match e.Core.Phases.alias with
      | None -> ()
      | Some a ->
          Alcotest.(check bool)
            (Printf.sprintf "alias %s names a phase" a)
            true
            (List.mem e.Core.Phases.phase names))
    Core.Phases.all

let test_dune_aliases_match_phase_list () =
  (* The fast-alias names live in exactly one place (Core.Phases); this
     pins test/dune to it so a new aliased phase cannot forget its dune
     rule, and runtest keeps driving the campaign suite. *)
  let dune =
    let candidates = [ "dune"; "../../../test/dune"; "test/dune" ] in
    match List.find_opt Sys.file_exists candidates with
    | Some path -> read_file path
    | None -> Alcotest.fail "test/dune not found from the test cwd"
  in
  let contains needle = contains_substring dune needle in
  List.iter
    (fun alias ->
      Alcotest.(check bool)
        (Printf.sprintf "dune rule for @%s exists" alias)
        true
        (contains (Printf.sprintf "(alias %s)" alias)))
    Core.Phases.aliases;
  Alcotest.(check bool) "runtest drives @campaign" true
    (contains "(alias campaign)")

let () =
  Alcotest.run "campaign"
    [
      ( "expansion",
        [
          Alcotest.test_case "deterministic and duplicate-free" `Quick
            test_expansion_deterministic_duplicate_free;
          Alcotest.test_case "order pinned" `Quick test_expansion_order_pinned;
          Alcotest.test_case "invalid specs rejected" `Quick
            test_invalid_specs_rejected;
          Alcotest.test_case "cell ids are content addresses" `Quick
            test_cell_id_is_content_address;
          Alcotest.test_case "spec JSON round trip" `Quick
            test_spec_json_round_trip;
          Alcotest.test_case "builtin expansions" `Quick
            test_builtin_expansions;
        ] );
      ( "generated graphs",
        [
          Alcotest.test_case "1200-task DAG validates" `Quick
            test_scaled_generated_dags_validate;
          Alcotest.test_case "1000-task generation seed-reproducible" `Quick
            test_scaled_generation_seed_reproducible;
        ] );
      ( "bit identity",
        [
          Alcotest.test_case "artifacts identical at jobs 1/2/4" `Quick
            test_results_bit_identical_across_jobs_and_flow;
          Alcotest.test_case "run_cell equals direct Flow" `Quick
            test_run_cell_matches_direct_flow;
        ] );
      ( "crash resume",
        [
          Alcotest.test_case "differential vs uninterrupted run" `Quick
            test_crash_resume_differential;
        ] );
      ( "gate",
        [
          Alcotest.test_case "self comparison passes" `Quick
            test_gate_self_comparison_passes;
          Alcotest.test_case "regression vs tolerated drift" `Quick
            test_gate_flags_regressions_and_tolerates_drift;
          Alcotest.test_case "missing and extra cells" `Quick
            test_gate_missing_and_extra_cells;
          Alcotest.test_case "manifest round trip" `Quick
            test_manifest_round_trip;
        ] );
      ( "cli",
        [
          Alcotest.test_case "run / report / gate exit codes" `Quick
            test_cli_run_report_gate;
        ] );
      ( "drift",
        [
          Alcotest.test_case "phase list well-formed" `Quick
            test_phase_list_well_formed;
          Alcotest.test_case "dune aliases match Core.Phases" `Quick
            test_dune_aliases_match_phase_list;
        ] );
    ]
