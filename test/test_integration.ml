(* Integration tests: the full experiment pipeline, end to end.

   These regenerate the paper's Tables 1-3 (the same computation as
   `dune exec bench/main.exe`) and assert the reproduction's shape criteria
   from DESIGN.md section 2, plus cross-cutting invariants that only hold
   when every subsystem cooperates (scheduler x floorplanner x thermal
   model x co-synthesis). *)

module Policy = Core.Policy
module Metrics = Core.Metrics
module Flow = Core.Flow
module Schedule = Core.Schedule

(* The tables are computed once and shared across test cases. *)
let table1 = lazy (Core.Experiments.table1 ())
let table2 = lazy (Core.Experiments.table2 ())
let table3 = lazy (Core.Experiments.table3 ())

let test_table1_has_all_rows () =
  let rows = Lazy.force table1 in
  Alcotest.(check int) "4 benchmarks x 4 policies" 16 (List.length rows);
  List.iter
    (fun (r : Core.Experiments.table1_row) ->
      Alcotest.(check bool) "policy is not thermal" true (r.policy <> Policy.Thermal_aware))
    rows

let test_all_shape_checks_pass () =
  let checks =
    Core.Experiments.shape_checks ~table1:(Lazy.force table1) ~table2:(Lazy.force table2)
      ~table3:(Lazy.force table3)
  in
  Alcotest.(check int) "five criteria" 5 (List.length checks);
  List.iter
    (fun (c : Core.Experiments.shape_check) ->
      if not c.Core.Experiments.holds then
        Alcotest.failf "shape check failed: %s (%s)" c.Core.Experiments.check
          c.Core.Experiments.detail)
    checks

let test_thermal_beats_power_on_every_platform_benchmark () =
  (* Table 3, row by row — the strongest claim we reproduce. *)
  List.iter
    (fun (r : Core.Experiments.versus_row) ->
      Alcotest.(check bool) (r.bench ^ " max") true
        (r.thermal.Metrics.max_temp < r.power.Metrics.max_temp);
      Alcotest.(check bool) (r.bench ^ " avg") true
        (r.thermal.Metrics.avg_temp < r.power.Metrics.avg_temp);
      Alcotest.(check bool) (r.bench ^ " power") true
        (r.thermal.Metrics.total_power < r.power.Metrics.total_power))
    (Lazy.force table3)

let test_reductions_in_paper_band () =
  (* Multi-degree reductions, same order of magnitude as the paper (which
     reports ~10/7 and ~10/5 °C): between 2 and 40 °C on both axes. *)
  let check name (r : Core.Experiments.reduction) =
    Alcotest.(check bool) (name ^ " max band") true
      (r.Core.Experiments.d_max_temp > 2.0 && r.Core.Experiments.d_max_temp < 40.0);
    Alcotest.(check bool) (name ^ " avg band") true
      (r.Core.Experiments.d_avg_temp > 2.0 && r.Core.Experiments.d_avg_temp < 40.0)
  in
  check "table2" (Core.Experiments.average_reduction (Lazy.force table2));
  check "table3" (Core.Experiments.average_reduction (Lazy.force table3))

let test_temperatures_in_physical_band () =
  (* Every measured cell must be a plausible junction temperature. *)
  let check_cell (c : Metrics.row) =
    Alcotest.(check bool) "max in band" true
      (c.Metrics.max_temp > 50.0 && c.Metrics.max_temp < 160.0);
    Alcotest.(check bool) "avg <= max" true (c.Metrics.avg_temp <= c.Metrics.max_temp +. 1e-9)
  in
  List.iter
    (fun (r : Core.Experiments.table1_row) ->
      check_cell r.cosynth;
      check_cell r.platform)
    (Lazy.force table1);
  List.iter
    (fun (r : Core.Experiments.versus_row) ->
      check_cell r.power;
      check_cell r.thermal)
    (Lazy.force table2 @ Lazy.force table3)

let test_figure1_flows_complete_stage_traces () =
  (* Figure 1: both flows execute their stages in order. *)
  let graph = Core.Benchmarks.load 1 in
  let platform =
    Flow.run_platform ~graph ~lib:(Core.Catalog.platform_library ())
      ~policy:Policy.Thermal_aware ()
  in
  let cosynth =
    Flow.run_cosynthesis ~graph ~lib:(Core.Catalog.default_library ())
      ~policy:Policy.Thermal_aware ()
  in
  let names o = List.map (fun (e : Flow.log_entry) -> Flow.stage_name e.Flow.stage) o.Flow.log in
  Alcotest.(check (list string)) "platform trace"
    [ "allocation"; "floorplanning"; "scheduling"; "thermal-extraction" ]
    (names platform);
  (* The co-synthesis loop may iterate; its trace is a non-empty sequence of
     complete rounds ending in thermal extraction. *)
  let trace = names cosynth in
  Alcotest.(check bool) "ends with extraction" true
    (List.length trace >= 4 && List.nth trace (List.length trace - 1) = "thermal-extraction");
  Alcotest.(check int) "round structure" 0 (List.length trace mod 3 mod 1);
  Alcotest.(check bool) "outer iterations recorded" true (cosynth.Flow.outer_iterations >= 1)

let test_every_flow_schedule_validates () =
  (* Cross-check: the schedules behind all Table 3 cells are structurally
     valid against the platform library. *)
  let lib = Core.Catalog.platform_library () in
  List.iter
    (fun policy ->
      List.iter
        (fun bench ->
          let graph = Core.Benchmarks.load bench in
          let o = Flow.run_platform ~graph ~lib ~policy () in
          let violations = Schedule.validate ~lib o.Flow.schedule in
          if violations <> [] then
            Alcotest.failf "bench %d policy %s: invalid schedule" bench
              (Policy.name policy))
        [ 0; 1; 2; 3 ])
    [ Policy.Power_aware Policy.Min_task_energy; Policy.Thermal_aware ]

let test_thermal_improves_workload_balance () =
  (* The paper's explanation for Table 3: the thermal ASP balances the
     workloads of all PEs. On Bm1 — the benchmark with the most slack, where
     the effect is purest — the thermal utilization spread must beat both
     the baseline and the power-aware representative. *)
  let spreads = Core.Experiments.workload_balance ~bench:0 in
  let get p = List.assoc p spreads in
  Alcotest.(check bool) "thermal more balanced than baseline" true
    (get Policy.Thermal_aware < get Policy.Baseline);
  Alcotest.(check bool) "thermal more balanced than h3" true
    (get Policy.Thermal_aware < get (Policy.Power_aware Policy.Min_task_energy))

let test_inquiry_counts_scale_with_candidates () =
  (* Thermal scheduling issues one HotSpot inquiry per (ready task, PE)
     candidate: the count must exceed tasks x PEs and stay finite. *)
  let graph = Core.Benchmarks.load 0 in
  let o =
    Flow.run_platform ~graph ~lib:(Core.Catalog.platform_library ())
      ~policy:Policy.Thermal_aware ()
  in
  let n = Core.Hotspot.inquiries o.Flow.hotspot in
  let tasks = Core.Graph.n_tasks graph in
  Alcotest.(check bool) "at least tasks x PEs" true (n >= tasks * 4);
  Alcotest.(check bool) "bounded by search budget" true (n < 1_000_000)

let check_against_golden ~what ~basename rendered =
  let golden =
    (* dune runtest runs in the (staged) test directory; dune exec from
       the project root. *)
    let path =
      let staged = "goldens/" ^ basename in
      if Sys.file_exists staged then staged else "test/goldens/" ^ basename
    in
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  if String.trim rendered <> String.trim golden then begin
    (* Locate the first differing line for a readable failure. *)
    let rl = String.split_on_char '\n' (String.trim rendered)
    and gl = String.split_on_char '\n' (String.trim golden) in
    let rec first_diff i = function
      | r :: rs, g :: gs ->
          if String.equal r g then first_diff (i + 1) (rs, gs)
          else
            Alcotest.failf "%s diverge from golden at line %d:\n got: %s\nwant: %s"
              what i r g
      | r :: _, [] -> Alcotest.failf "extra output at line %d: %s" i r
      | [], g :: _ -> Alcotest.failf "missing output at line %d: %s" i g
      | [], [] -> Alcotest.failf "%s diverge from golden (whitespace only)" what
    in
    first_diff 1 (rl, gl)
  end

let test_tables_match_golden () =
  (* Byte-for-byte regression against the committed golden, which was
     captured before the linalg kernels were blocked. The blocked kernels
     preserve floating-point operation order, so any diff here is a real
     numerical regression, not rounding noise. Regenerate (only for
     intentional number changes) with:
       dune exec test/capture_goldens.exe > test/goldens/tables.golden *)
  let rendered =
    let t1 = Lazy.force table1
    and t2 = Lazy.force table2
    and t3 = Lazy.force table3 in
    String.concat "\n"
      [
        Core.Report.table1 t1;
        Core.Report.table2 t2;
        Core.Report.table3 t3;
        Core.Report.shape_checks
          (Core.Experiments.shape_checks ~table1:t1 ~table2:t2 ~table3:t3);
      ]
  in
  check_against_golden ~what:"tables" ~basename:"tables.golden" rendered

let test_transient_matches_golden () =
  (* Same discipline for the runtime layer: the event-driven replay and
     the DTM loop on Bm1, byte for byte. The engine's exact stepper is
     bit-identical to the original backward-Euler loop, so this golden
     pins both the engine and the DTM closed loop. Regenerate (only for
     intentional number changes) with:
       dune exec test/capture_goldens.exe -- transient > test/goldens/transient.golden *)
  check_against_golden ~what:"transient/DTM numbers" ~basename:"transient.golden"
    (Core.Report.transient_demo (Core.Experiments.transient_demo ()))

let test_online_matches_golden () =
  (* And for the online subsystem: the zero/sporadic/trace scenarios vs the
     clairvoyant baseline on Bm1, byte for byte. The zero-stream row is the
     bit-identity proof in golden form — its ratio column must read exactly
     1.0000. Regenerate (only for intentional number changes) with:
       dune exec test/capture_goldens.exe -- online > test/goldens/online.golden *)
  check_against_golden ~what:"online scheduling numbers"
    ~basename:"online.golden"
    (Core.Report.online_demo (Core.Experiments.online_demo ()))

let test_campaign_matches_golden () =
  (* And for the campaign layer: the "golden" builtin campaign (mixed
     benchmark/generated graphs, both architectures' platform points,
     ambient and budget variation) rendered cell by cell, byte for byte.
     The same cells are what `tats campaign run` persists, so this golden
     pins the report formatting and the underlying flow numbers at once.
     Regenerate (only for intentional number changes) with:
       dune exec test/capture_goldens.exe -- campaign > test/goldens/campaign.golden *)
  check_against_golden ~what:"campaign summary" ~basename:"campaign.golden"
    (Core.Report.campaign_summary (Core.Experiments.campaign_demo ()))

let test_hetero_matches_golden () =
  (* And for the heterogeneous-platform layer: every builtin platform under
     two policies plus two constrained cells, rendered row by row, byte for
     byte. The trailing line pins the tentpole's anchor — the typed
     single-kind std4 platform must stay bit-identical to the historical
     identical-cores flow under all five policies. Regenerate (only for
     intentional number changes) with:
       dune exec test/capture_goldens.exe -- hetero > test/goldens/hetero.golden *)
  check_against_golden ~what:"hetero platform numbers" ~basename:"hetero.golden"
    (Core.Report.hetero_demo (Core.Experiments.hetero_demo ()))

let test_csv_exports_match_tables () =
  let csv = Core.Report.table1_csv (Lazy.force table1) in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 16 rows" 17 (List.length lines)

let () =
  Alcotest.run "integration"
    [
      ( "tables",
        [
          Alcotest.test_case "table1 complete" `Quick test_table1_has_all_rows;
          Alcotest.test_case "shape checks all pass" `Quick test_all_shape_checks_pass;
          Alcotest.test_case "thermal wins every platform row" `Quick
            test_thermal_beats_power_on_every_platform_benchmark;
          Alcotest.test_case "reductions in band" `Quick test_reductions_in_paper_band;
          Alcotest.test_case "temperatures physical" `Quick
            test_temperatures_in_physical_band;
          Alcotest.test_case "tables match golden" `Quick test_tables_match_golden;
          Alcotest.test_case "transient matches golden" `Quick
            test_transient_matches_golden;
          Alcotest.test_case "online matches golden" `Quick
            test_online_matches_golden;
          Alcotest.test_case "campaign matches golden" `Quick
            test_campaign_matches_golden;
          Alcotest.test_case "hetero matches golden" `Quick
            test_hetero_matches_golden;
          Alcotest.test_case "csv export" `Quick test_csv_exports_match_tables;
        ] );
      ( "figure1",
        [
          Alcotest.test_case "stage traces" `Quick test_figure1_flows_complete_stage_traces;
          Alcotest.test_case "schedules validate" `Quick test_every_flow_schedule_validates;
          Alcotest.test_case "workload balance" `Quick test_thermal_improves_workload_balance;
          Alcotest.test_case "inquiry counts" `Quick test_inquiry_counts_scale_with_candidates;
        ] );
    ]
