(* Regenerates the end-to-end goldens used by test_integration.

   With no argument, prints the exact strings the reproduction pipeline
   renders for Tables 1-3 and the shape-check report. The committed golden
   (test/goldens/tables.golden) was captured from the pre-kernel-rewrite
   tree; the blocked linear-algebra kernels preserve floating-point
   operation order, so every later tree must reproduce it byte for byte:

     dune exec test/capture_goldens.exe > test/goldens/tables.golden

   With the argument [transient], prints the transient-replay/DTM summary
   instead (captured when the event-driven engine landed; its exact
   stepper is bit-identical to the original backward-Euler loop):

     dune exec test/capture_goldens.exe -- transient > test/goldens/transient.golden

   With the argument [online], prints the online-vs-clairvoyant summary
   (captured when the online reactive scheduler landed; the zero-stream
   row doubles as the bit-identity proof — its ratio must be exactly 1):

     dune exec test/capture_goldens.exe -- online > test/goldens/online.golden

   With the argument [campaign], prints the rendered summary of the
   "golden" builtin campaign (captured when the campaign runner landed;
   the cells run the same flow as Tables 1-3, so the same bit-stability
   argument applies):

     dune exec test/capture_goldens.exe -- campaign > test/goldens/campaign.golden

   With the argument [hetero], prints the heterogeneous-platform summary
   (captured when typed platforms landed; the degenerate std4 rows and
   the trailing bit-identity line double as the proof that the typed
   flow did not perturb the historical path):

     dune exec test/capture_goldens.exe -- hetero > test/goldens/hetero.golden

   Only regenerate a golden when a change is *meant* to move the
   numbers (new benchmarks, model changes) — never to paper over a
   kernel regression. *)

let capture_tables () =
  let table1 = Core.Experiments.table1 () in
  let table2 = Core.Experiments.table2 () in
  let table3 = Core.Experiments.table3 () in
  print_string (Core.Report.table1 table1);
  print_newline ();
  print_string (Core.Report.table2 table2);
  print_newline ();
  print_string (Core.Report.table3 table3);
  print_newline ();
  print_string
    (Core.Report.shape_checks
       (Core.Experiments.shape_checks ~table1 ~table2 ~table3))

let capture_transient () =
  print_string (Core.Report.transient_demo (Core.Experiments.transient_demo ()))

let capture_online () =
  print_string (Core.Report.online_demo (Core.Experiments.online_demo ()))

let capture_campaign () =
  print_string (Core.Report.campaign_summary (Core.Experiments.campaign_demo ()))

let capture_hetero () =
  print_string (Core.Report.hetero_demo (Core.Experiments.hetero_demo ()))

let () =
  match Sys.argv with
  | [| _ |] -> capture_tables ()
  | [| _; "transient" |] -> capture_transient ()
  | [| _; "online" |] -> capture_online ()
  | [| _; "campaign" |] -> capture_campaign ()
  | [| _; "hetero" |] -> capture_hetero ()
  | _ ->
      prerr_endline "usage: capture_goldens [transient|online|campaign|hetero]";
      exit 2
