(* Regenerates the end-to-end table goldens used by test_integration.

   Prints the exact strings the reproduction pipeline renders for Tables
   1-3 and the shape-check report. The committed golden
   (test/goldens/tables.golden) was captured from the pre-kernel-rewrite
   tree; the blocked linear-algebra kernels preserve floating-point
   operation order, so every later tree must reproduce it byte for byte:

     dune exec test/capture_goldens.exe > test/goldens/tables.golden

   Only regenerate the golden when a change is *meant* to move the
   numbers (new benchmarks, model changes) — never to paper over a
   kernel regression. *)

let () =
  let table1 = Core.Experiments.table1 () in
  let table2 = Core.Experiments.table2 () in
  let table3 = Core.Experiments.table3 () in
  print_string (Core.Report.table1 table1);
  print_newline ();
  print_string (Core.Report.table2 table2);
  print_newline ();
  print_string (Core.Report.table3 table3);
  print_newline ();
  print_string
    (Core.Report.shape_checks
       (Core.Experiments.shape_checks ~table1 ~table2 ~table3))
