(* Tests for the scheduler extensions: HEFT, the simulated-annealing mapper,
   DVS slack reclamation, bus-contention scheduling, and transient replay
   metrics. *)

module Graph = Tats_taskgraph.Graph
module Benchmarks = Tats_taskgraph.Benchmarks
module Pe = Tats_techlib.Pe
module Library = Tats_techlib.Library
module Catalog = Tats_techlib.Catalog
module Comm = Tats_techlib.Comm
module Block = Tats_floorplan.Block
module Grid = Tats_floorplan.Grid
module Hotspot = Tats_thermal.Hotspot
module Policy = Tats_sched.Policy
module Schedule = Tats_sched.Schedule
module List_sched = Tats_sched.List_sched
module Heft = Tats_sched.Heft
module Sa_mapper = Tats_sched.Sa_mapper
module Dvs = Tats_sched.Dvs
module Bus_sched = Tats_sched.Bus_sched
module Metrics = Tats_sched.Metrics
module Sched_mc = Tats_sched.Montecarlo

let platform_lib = Catalog.platform_library ()
let hetero_lib = Catalog.default_library ()
let platform_pes n = Catalog.platform_instances n

let platform_hotspot n =
  Hotspot.create
    (Grid.layout
       (Array.map
          (fun (i : Pe.inst) ->
            Block.make ~name:(string_of_int i.Pe.inst_id) ~area:i.Pe.kind.Pe.area ())
          (platform_pes n)))

(* --- Heft ---------------------------------------------------------------- *)

let test_heft_valid_on_benchmarks () =
  Array.iteri
    (fun i _ ->
      let graph = Benchmarks.load i in
      let s = Heft.run ~graph ~lib:platform_lib ~pes:(platform_pes 4) () in
      Alcotest.(check int)
        (Graph.name graph ^ " valid")
        0
        (List.length (Schedule.validate ~lib:platform_lib s)))
    Benchmarks.descriptors

let test_heft_valid_heterogeneous () =
  let graph = Benchmarks.load 1 in
  let pes = Pe.instances (Catalog.heterogeneous ()) in
  let s = Heft.run ~graph ~lib:hetero_lib ~pes () in
  Alcotest.(check int) "valid" 0 (List.length (Schedule.validate ~lib:hetero_lib s))

let test_heft_competitive_with_asp () =
  (* Insertion-based HEFT should be within 25% of the ASP baseline either
     way on every benchmark. *)
  Array.iteri
    (fun i _ ->
      let graph = Benchmarks.load i in
      let asp =
        List_sched.run ~graph ~lib:platform_lib ~pes:(platform_pes 4)
          ~policy:Policy.Baseline ()
      in
      let heft = Heft.run ~graph ~lib:platform_lib ~pes:(platform_pes 4) () in
      let ratio = heft.Schedule.makespan /. asp.Schedule.makespan in
      Alcotest.(check bool)
        (Printf.sprintf "%s ratio %.3f" (Graph.name graph) ratio)
        true
        (ratio > 0.75 && ratio < 1.25))
    Benchmarks.descriptors

let test_heft_rank_matches_static_criticality () =
  let graph = Benchmarks.load 0 in
  let a = Heft.upward_rank platform_lib graph in
  let b = Tats_sched.Dc.static_criticality platform_lib graph in
  Array.iteri (fun i x -> Alcotest.(check (float 1e-9)) "same rank" b.(i) x) a

let test_heft_uses_insertion () =
  (* Construct a case where insertion pays: a long task blocks PE0 late,
     leaving an early gap the append-only ASP cannot reuse. On the
     benchmarks it is enough to check HEFT never loses to itself without
     gaps — here we simply check determinism. *)
  let graph = Benchmarks.load 2 in
  let a = Heft.run ~graph ~lib:platform_lib ~pes:(platform_pes 4) () in
  let b = Heft.run ~graph ~lib:platform_lib ~pes:(platform_pes 4) () in
  Alcotest.(check (float 0.0)) "deterministic" a.Schedule.makespan b.Schedule.makespan

(* --- Sa_mapper ------------------------------------------------------------ *)

let fast_params =
  {
    Sa_mapper.initial_temperature = 20.0;
    cooling = 0.85;
    moves_per_temperature = 20;
    min_temperature = 0.5;
  }

let test_sa_mapper_decode_valid () =
  let graph = Benchmarks.load 0 in
  let n = Graph.n_tasks graph in
  let assignment = Array.init n (fun i -> i mod 4) in
  let priority = Array.init n Fun.id in
  let s =
    Sa_mapper.decode ~graph ~lib:platform_lib ~pes:(platform_pes 4) ~assignment
      ~priority
  in
  Alcotest.(check int) "valid" 0 (List.length (Schedule.validate ~lib:platform_lib s));
  (* The mapping is respected. *)
  Array.iteri
    (fun task (e : Schedule.entry) ->
      Alcotest.(check int) "assignment respected" assignment.(task) e.Schedule.pe)
    s.Schedule.entries

let test_sa_mapper_decode_validation () =
  let graph = Benchmarks.load 0 in
  let n = Graph.n_tasks graph in
  Alcotest.(check bool) "bad assignment" true
    (try
       ignore
         (Sa_mapper.decode ~graph ~lib:platform_lib ~pes:(platform_pes 4)
            ~assignment:(Array.make n 9) ~priority:(Array.init n Fun.id)
          : Schedule.t);
       false
     with Invalid_argument _ -> true)

let test_sa_mapper_no_worse_than_baseline () =
  let graph = Benchmarks.load 0 in
  let baseline =
    List_sched.run ~graph ~lib:platform_lib ~pes:(platform_pes 4)
      ~policy:Policy.Baseline ()
  in
  let r =
    Sa_mapper.run ~params:fast_params ~seed:1 ~objective:Sa_mapper.Makespan ~graph
      ~lib:platform_lib ~pes:(platform_pes 4) ()
  in
  Alcotest.(check bool) "sa <= baseline makespan" true
    (r.Sa_mapper.schedule.Schedule.makespan <= baseline.Schedule.makespan +. 1e-6);
  Alcotest.(check int) "valid" 0
    (List.length (Schedule.validate ~lib:platform_lib r.Sa_mapper.schedule))

let test_sa_mapper_thermal_objective () =
  let graph = Benchmarks.load 0 in
  let hotspot = platform_hotspot 4 in
  let baseline =
    List_sched.run ~graph ~lib:platform_lib ~pes:(platform_pes 4)
      ~policy:Policy.Baseline ()
  in
  let base_temp = (Metrics.thermal_report baseline ~hotspot).Metrics.max_temp in
  let r =
    Sa_mapper.run ~params:fast_params ~seed:2
      ~objective:(Sa_mapper.Peak_temperature hotspot) ~graph ~lib:platform_lib
      ~pes:(platform_pes 4) ()
  in
  let sa_temp = (Metrics.thermal_report r.Sa_mapper.schedule ~hotspot).Metrics.max_temp in
  Alcotest.(check bool)
    (Printf.sprintf "sa %.2f <= baseline %.2f" sa_temp base_temp)
    true (sa_temp <= base_temp +. 1e-6)

let test_sa_mapper_deterministic () =
  let graph = Benchmarks.load 0 in
  let run () =
    Sa_mapper.run ~params:fast_params ~seed:5 ~objective:Sa_mapper.Makespan ~graph
      ~lib:platform_lib ~pes:(platform_pes 4) ()
  in
  Alcotest.(check (float 0.0)) "same cost" (run ()).Sa_mapper.cost (run ()).Sa_mapper.cost

(* --- Dvs ------------------------------------------------------------------ *)

let baseline_schedule bench =
  let graph = Benchmarks.load bench in
  List_sched.run ~graph ~lib:platform_lib ~pes:(platform_pes 4)
    ~policy:Policy.Baseline ()

let test_dvs_levels_ladder () =
  (match Dvs.default_levels with
  | fastest :: _ ->
      Alcotest.(check (float 1e-9)) "full speed first" 1.0 fastest.Dvs.scale
  | [] -> Alcotest.fail "no levels");
  List.iter
    (fun (l : Dvs.level) ->
      Alcotest.(check bool) "power factor ~ scale^3" true
        (Float.abs (l.Dvs.power_factor -. (l.Dvs.scale ** 3.0)) < 1e-9))
    Dvs.default_levels

let test_dvs_plan_safe () =
  let s = baseline_schedule 0 in
  let plan = Dvs.reclaim ~lib:platform_lib s in
  Alcotest.(check int) "plan safe" 0 (List.length (Dvs.validate plan ~lib:platform_lib))

let test_dvs_saves_energy_with_slack () =
  (* Bm1 baseline finishes at ~538 of 790: plenty of slack to reclaim. *)
  let s = baseline_schedule 0 in
  let plan = Dvs.reclaim ~lib:platform_lib s in
  let saving = Dvs.energy_saving_ratio plan in
  Alcotest.(check bool)
    (Printf.sprintf "saving %.1f%%" (100.0 *. saving))
    true (saving > 0.05);
  Alcotest.(check bool) "bounded" true (saving < 1.0)

let test_dvs_cools () =
  let s = baseline_schedule 0 in
  let hotspot = platform_hotspot 4 in
  let plan = Dvs.reclaim ~lib:platform_lib s in
  let before = (Metrics.thermal_report s ~hotspot).Metrics.max_temp in
  let after = (Dvs.thermal_report plan ~hotspot).Metrics.max_temp in
  Alcotest.(check bool)
    (Printf.sprintf "%.2f -> %.2f" before after)
    true (after < before)

let test_dvs_single_level_is_identity () =
  let s = baseline_schedule 1 in
  let plan =
    Dvs.reclaim ~levels:[ List.hd Dvs.default_levels ] ~lib:platform_lib s
  in
  Alcotest.(check (float 1e-9)) "no energy change" 0.0 (Dvs.energy_saving_ratio plan);
  Array.iteri
    (fun task f ->
      Alcotest.(check (float 1e-6)) "finish unchanged"
        s.Schedule.entries.(task).Schedule.finish f)
    plan.Dvs.finish

let test_dvs_plan_respects_deadline () =
  List.iter
    (fun bench ->
      let s = baseline_schedule bench in
      let plan = Dvs.reclaim ~lib:platform_lib s in
      Alcotest.(check bool) "within deadline" true
        (plan.Dvs.makespan <= Graph.deadline s.Schedule.graph +. 1e-6))
    [ 0; 1; 2; 3 ]

let test_dvs_requires_full_speed_level () =
  let s = baseline_schedule 0 in
  Alcotest.(check bool) "ladder without full speed rejected" true
    (try
       ignore
         (Dvs.reclaim
            ~levels:[ Dvs.make_level ~name:"half" ~scale:0.5 ~power_factor:0.125 ]
            ~lib:platform_lib s
          : Dvs.plan);
       false
     with Invalid_argument _ -> true)

(* --- Bus_sched ------------------------------------------------------------ *)

let test_bus_schedule_valid () =
  List.iter
    (fun bench ->
      let graph = Benchmarks.load bench in
      let r =
        Bus_sched.run ~graph ~lib:platform_lib ~pes:(platform_pes 4)
          ~policy:Policy.Baseline ()
      in
      let problems = Bus_sched.validate r ~lib:platform_lib in
      if problems <> [] then
        Alcotest.failf "bench %d: %s" bench (String.concat "; " problems))
    [ 0; 1; 2; 3 ]

let test_bus_contention_lengthens () =
  (* The contention-free model is a lower bound on the bus model. *)
  let graph = Benchmarks.load 3 in
  let free =
    List_sched.run ~graph ~lib:platform_lib ~pes:(platform_pes 4)
      ~policy:Policy.Baseline ()
  in
  let bus =
    Bus_sched.run ~graph ~lib:platform_lib ~pes:(platform_pes 4)
      ~policy:Policy.Baseline ()
  in
  Alcotest.(check bool) "bus >= free" true
    (bus.Bus_sched.schedule.Schedule.makespan >= free.Schedule.makespan -. 1e-6)

let test_bus_utilization_bounds () =
  let graph = Benchmarks.load 1 in
  let r =
    Bus_sched.run ~graph ~lib:platform_lib ~pes:(platform_pes 4)
      ~policy:Policy.Baseline ()
  in
  let u = Bus_sched.bus_utilization r in
  Alcotest.(check bool) "in [0,1]" true (u >= 0.0 && u <= 1.0);
  Alcotest.(check bool) "some cross-PE traffic" true (r.Bus_sched.transfers <> [])

let test_bus_single_pe_no_transfers () =
  let graph = Benchmarks.load 0 in
  let r =
    Bus_sched.run ~graph ~lib:platform_lib ~pes:(platform_pes 1)
      ~policy:Policy.Baseline ()
  in
  Alcotest.(check int) "no transfers" 0 (List.length r.Bus_sched.transfers);
  Alcotest.(check (float 1e-9)) "idle bus" 0.0 (Bus_sched.bus_utilization r)

let test_bus_rejects_thermal () =
  let graph = Benchmarks.load 0 in
  Alcotest.(check bool) "thermal rejected" true
    (try
       ignore
         (Bus_sched.run ~graph ~lib:platform_lib ~pes:(platform_pes 4)
            ~policy:Policy.Thermal_aware ()
          : Bus_sched.result);
       false
     with Invalid_argument _ -> true)

(* --- Transient replay metrics --------------------------------------------- *)

let test_power_profile_levels () =
  let s = baseline_schedule 0 in
  (* Before time 0 nothing runs: idle only. *)
  let idle = Metrics.power_profile s ~lib:platform_lib ~time:(-1.0) in
  Array.iter
    (fun p -> Alcotest.(check (float 1e-9)) "idle floor" 0.6 p)
    idle;
  (* Mid-schedule, total power must be at least idle and at most
     idle + 4 * max wcpc. *)
  let mid = Metrics.power_profile s ~lib:platform_lib ~time:(s.Schedule.makespan /. 2.0) in
  Array.iter
    (fun p ->
      Alcotest.(check bool) "bounded" true
        (p >= 0.6 -. 1e-9 && p <= 0.6 +. Library.max_wcpc platform_lib +. 1e-9))
    mid

let test_transient_peak_brackets_steady () =
  let s = baseline_schedule 0 in
  let hotspot = platform_hotspot 4 in
  let steady = (Metrics.thermal_report ~leakage:false s ~hotspot).Metrics.block_temps in
  (* The sink time constant (~70 s) needs hundreds of sub-second periods of
     warm-up before the trace rides its steady level. *)
  let peaks =
    Metrics.transient_peak s ~lib:platform_lib ~hotspot ~periods:600
      ~dt:(s.Schedule.makespan *. 1e-3 /. 40.0) ()
  in
  Array.iteri
    (fun pe p ->
      (* Transient peak rides above the average-power steady estimate but
         within the instantaneous-power bound. *)
      Alcotest.(check bool)
        (Printf.sprintf "PE%d: %.1f vs steady %.1f" pe p steady.(pe))
        true
        (p > steady.(pe) -. 2.0 && p < steady.(pe) +. 40.0))
    peaks

(* --- Monte Carlo ------------------------------------------------------------ *)

let test_montecarlo_wcet_is_upper_envelope () =
  (* Sampling at exactly fraction 1.0 reproduces the static schedule. *)
  let s = baseline_schedule 0 in
  let hotspot = platform_hotspot 4 in
  let r =
    Sched_mc.analyze
      ~sampler:{ Sched_mc.min_fraction = 1.0; max_fraction = 1.0 }
      ~runs:3 ~seed:1 ~lib:platform_lib ~hotspot s
  in
  Alcotest.(check bool) "same makespan" true
    (Float.abs (r.Sched_mc.makespan_mean -. s.Schedule.makespan) < 1e-6);
  Alcotest.(check (float 1e-9)) "no misses" 0.0 r.Sched_mc.deadline_miss_rate

let test_montecarlo_underruns_shorten () =
  let s = baseline_schedule 0 in
  let hotspot = platform_hotspot 4 in
  let r = Sched_mc.analyze ~runs:100 ~seed:2 ~lib:platform_lib ~hotspot s in
  Alcotest.(check bool) "mean below WCET makespan" true
    (r.Sched_mc.makespan_mean < s.Schedule.makespan);
  Alcotest.(check bool) "max below WCET makespan" true
    (r.Sched_mc.makespan_max <= s.Schedule.makespan +. 1e-6);
  Alcotest.(check bool) "p95 ordering" true
    (r.Sched_mc.makespan_mean <= r.Sched_mc.makespan_p95
    && r.Sched_mc.makespan_p95 <= r.Sched_mc.makespan_max +. 1e-9)

let test_montecarlo_overruns_can_miss () =
  (* The thermal schedule sits near the deadline; 20% overruns must produce
     misses. *)
  let graph = Benchmarks.load 0 in
  let hotspot = platform_hotspot 4 in
  let thermal, _ =
    List_sched.run_adaptive ~hotspot ~graph ~lib:platform_lib ~pes:(platform_pes 4)
      ~policy:Policy.Thermal_aware ()
  in
  let r =
    Sched_mc.analyze
      ~sampler:{ Sched_mc.min_fraction = 1.0; max_fraction = 1.2 }
      ~runs:100 ~seed:3 ~lib:platform_lib ~hotspot thermal
  in
  Alcotest.(check bool) "misses occur" true (r.Sched_mc.deadline_miss_rate > 0.5)

let test_montecarlo_deterministic () =
  let s = baseline_schedule 1 in
  let hotspot = platform_hotspot 4 in
  let run () = Sched_mc.analyze ~runs:50 ~seed:9 ~lib:platform_lib ~hotspot s in
  Alcotest.(check (float 0.0)) "repeatable" (run ()).Sched_mc.makespan_mean
    (run ()).Sched_mc.makespan_mean

(* --- List_sched.run_adaptive boundary cases -------------------------------- *)

(* Rebuild a graph identical to [graph] except for its deadline. *)
let with_deadline graph deadline =
  let b = Graph.builder ~name:(Graph.name graph) ~deadline in
  Array.iter
    (fun (t : Tats_taskgraph.Task.t) ->
      ignore (Graph.add_task b ~task_type:t.task_type () : Tats_taskgraph.Task.id))
    (Graph.tasks graph);
  List.iter
    (fun (e : Graph.edge) -> Graph.add_edge b ~data:e.Graph.data e.Graph.src e.Graph.dst)
    (Graph.edges graph);
  Graph.build b

let adaptive ?base_weights ?max_multiplier ~policy graph =
  let hotspot = platform_hotspot 4 in
  List_sched.run_adaptive ?base_weights ?max_multiplier ~hotspot ~graph
    ~lib:platform_lib ~pes:(platform_pes 4) ~policy ()

let test_adaptive_ceiling_shortcut () =
  (* With a hopelessly loose deadline the full-strength attempt is already
     feasible, and the bisection must be skipped entirely: the returned
     weight is exactly base * max_multiplier. *)
  let graph = with_deadline (Benchmarks.load 0) 1e7 in
  let base = Policy.default_weights ~deadline:(Graph.deadline graph) in
  let s, w = adaptive ~policy:Policy.Thermal_aware graph in
  Alcotest.(check bool) "feasible" true (Schedule.meets_deadline s);
  Alcotest.(check (float 1e-9)) "weight at ceiling"
    (base.Policy.cost_weight *. 400.0)
    w.Policy.cost_weight

let test_adaptive_infeasible_floor () =
  (* A deadline below the best possible makespan: even the pure-performance
     schedule (weight 0) misses, and the adaptive search must report that
     schedule with a zero weight rather than loop or lie. *)
  let graph = with_deadline (Benchmarks.load 0) 1.0 in
  let s, w = adaptive ~policy:Policy.Thermal_aware graph in
  Alcotest.(check bool) "infeasible" true (not (Schedule.meets_deadline s));
  Alcotest.(check (float 0.0)) "weight collapsed to zero" 0.0 w.Policy.cost_weight;
  let baseline =
    List_sched.run ~graph ~lib:platform_lib ~pes:(platform_pes 4)
      ~policy:Policy.Baseline ()
  in
  Alcotest.(check (float 1e-9)) "floor = baseline makespan"
    baseline.Schedule.makespan s.Schedule.makespan

let test_adaptive_bisection_converges () =
  (* Pin the deadline between the floor and full-weight makespans so the
     bisection has real work to do; it must land on a feasible weight
     strictly inside (0, max). *)
  let graph0 = Benchmarks.load 0 in
  let floor_s, _ =
    adaptive ~base_weights:{ Policy.cost_weight = 0.0 }
      ~policy:Policy.Thermal_aware graph0
  in
  let m0 = floor_s.Schedule.makespan in
  let base = Policy.default_weights ~deadline:(Graph.deadline graph0) in
  let full =
    List_sched.run
      ~weights:{ Policy.cost_weight = base.Policy.cost_weight *. 400.0 }
      ~hotspot:(platform_hotspot 4) ~graph:graph0 ~lib:platform_lib
      ~pes:(platform_pes 4) ~policy:Policy.Thermal_aware ()
  in
  let m400 = full.Schedule.makespan in
  Alcotest.(check bool) "weights stretch the schedule" true (m400 > m0 +. 1e-6);
  let graph = with_deadline graph0 ((m0 +. m400) /. 2.0) in
  let s, w = adaptive ~policy:Policy.Thermal_aware graph in
  let base = Policy.default_weights ~deadline:(Graph.deadline graph) in
  Alcotest.(check bool) "meets pinned deadline" true (Schedule.meets_deadline s);
  Alcotest.(check bool) "weight strictly positive" true (w.Policy.cost_weight > 0.0);
  Alcotest.(check bool) "weight below ceiling" true
    (w.Policy.cost_weight < base.Policy.cost_weight *. 400.0)

(* --- random-graph properties for the extension schedulers ------------------- *)

let random_graph seed tasks =
  let module Generator = Tats_taskgraph.Generator in
  let lo, hi = Generator.feasible_edges ~n_tasks:tasks in
  let edges = lo + ((seed * 7) mod (Stdlib.max 1 (hi - lo + 1))) in
  Generator.generate ~seed ~name:"q"
    {
      Generator.default_spec with
      Generator.n_tasks = tasks;
      n_edges = edges;
      n_task_types = Benchmarks.n_task_types;
    }

let prop_heft_valid_on_random_graphs =
  QCheck.Test.make ~name:"HEFT schedules random graphs validly" ~count:40
    QCheck.(pair small_int (int_range 2 30))
    (fun (seed, tasks) ->
      let graph = random_graph seed tasks in
      let s = Heft.run ~graph ~lib:platform_lib ~pes:(platform_pes 3) () in
      Schedule.validate ~lib:platform_lib s = [])

let prop_bus_valid_on_random_graphs =
  QCheck.Test.make ~name:"bus scheduling of random graphs is contention-valid"
    ~count:40
    QCheck.(pair small_int (int_range 2 25))
    (fun (seed, tasks) ->
      let graph = random_graph seed tasks in
      let r =
        Bus_sched.run ~graph ~lib:platform_lib ~pes:(platform_pes 3)
          ~policy:Policy.Baseline ()
      in
      Bus_sched.validate r ~lib:platform_lib = [])

let prop_dvs_safe_on_random_graphs =
  QCheck.Test.make ~name:"DVS plans on random graphs are safe and save energy"
    ~count:40
    QCheck.(pair small_int (int_range 2 25))
    (fun (seed, tasks) ->
      let graph = random_graph seed tasks in
      let s =
        List_sched.run ~graph ~lib:platform_lib ~pes:(platform_pes 3)
          ~policy:Policy.Baseline ()
      in
      let plan = Dvs.reclaim ~lib:platform_lib s in
      Dvs.validate plan ~lib:platform_lib = []
      && Dvs.energy_saving_ratio plan >= -1e-9)

let () =
  Alcotest.run "sched_extensions"
    [
      ( "heft",
        [
          Alcotest.test_case "valid on benchmarks" `Quick test_heft_valid_on_benchmarks;
          Alcotest.test_case "valid heterogeneous" `Quick test_heft_valid_heterogeneous;
          Alcotest.test_case "competitive with ASP" `Quick test_heft_competitive_with_asp;
          Alcotest.test_case "rank = static criticality" `Quick
            test_heft_rank_matches_static_criticality;
          Alcotest.test_case "deterministic" `Quick test_heft_uses_insertion;
        ] );
      ( "sa_mapper",
        [
          Alcotest.test_case "decode valid" `Quick test_sa_mapper_decode_valid;
          Alcotest.test_case "decode validation" `Quick test_sa_mapper_decode_validation;
          Alcotest.test_case "no worse than baseline" `Quick
            test_sa_mapper_no_worse_than_baseline;
          Alcotest.test_case "thermal objective" `Quick test_sa_mapper_thermal_objective;
          Alcotest.test_case "deterministic" `Quick test_sa_mapper_deterministic;
        ] );
      ( "dvs",
        [
          Alcotest.test_case "level ladder" `Quick test_dvs_levels_ladder;
          Alcotest.test_case "plan safe" `Quick test_dvs_plan_safe;
          Alcotest.test_case "saves energy" `Quick test_dvs_saves_energy_with_slack;
          Alcotest.test_case "cools" `Quick test_dvs_cools;
          Alcotest.test_case "single level identity" `Quick
            test_dvs_single_level_is_identity;
          Alcotest.test_case "respects deadline" `Quick test_dvs_plan_respects_deadline;
          Alcotest.test_case "needs full speed" `Quick test_dvs_requires_full_speed_level;
        ] );
      ( "bus",
        [
          Alcotest.test_case "valid" `Quick test_bus_schedule_valid;
          Alcotest.test_case "contention lengthens" `Quick test_bus_contention_lengthens;
          Alcotest.test_case "utilization" `Quick test_bus_utilization_bounds;
          Alcotest.test_case "single PE" `Quick test_bus_single_pe_no_transfers;
          Alcotest.test_case "thermal rejected" `Quick test_bus_rejects_thermal;
        ] );
      ( "montecarlo",
        [
          Alcotest.test_case "wcet envelope" `Quick
            test_montecarlo_wcet_is_upper_envelope;
          Alcotest.test_case "underruns shorten" `Quick test_montecarlo_underruns_shorten;
          Alcotest.test_case "overruns can miss" `Quick test_montecarlo_overruns_can_miss;
          Alcotest.test_case "deterministic" `Quick test_montecarlo_deterministic;
        ] );
      ( "run_adaptive",
        [
          Alcotest.test_case "ceiling shortcut" `Quick test_adaptive_ceiling_shortcut;
          Alcotest.test_case "infeasible floor" `Quick test_adaptive_infeasible_floor;
          Alcotest.test_case "bisection converges" `Quick
            test_adaptive_bisection_converges;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_heft_valid_on_random_graphs; prop_bus_valid_on_random_graphs;
            prop_dvs_safe_on_random_graphs;
          ] );
      ( "transient_metrics",
        [
          Alcotest.test_case "power profile" `Quick test_power_profile_levels;
          Alcotest.test_case "transient peak" `Quick test_transient_peak_brackets_steady;
        ] );
    ]
