(* Differential verification of the cache-blocked flat-storage kernels.

   The blocked kernels in Tats_linalg (tiled Matrix.mul, right-looking
   panel LU, batched multi-RHS back-solve, fused CG) promise more than
   "close enough": the LU factor/solve path is documented to be
   *bit-identical* to the textbook unblocked kernel on finite inputs,
   because the experiment tables are pinned byte-for-byte against
   goldens. This suite re-implements the naive reference kernels inline
   — triple-loop matmul, the pre-blocking unblocked LU verbatim,
   textbook Jacobi-preconditioned CG — on plain [float array array]s,
   with no dependence on Matrix internals, and checks:

   - Matrix.mul against the triple loop to a 1e-9 relative bound
     (tiling keeps the scalar ikj order, but the reference here uses
     ijk accumulation, so only closeness is promised);
   - LU solve, determinant, and unit solutions against the unblocked
     reference with *exact* float equality — this is the test that pins
     the golden-stability guarantee;
   - [Lu.solve_many] / [Lu.unit_solutions] element-wise identical to
     loops of single solves, under domain pools of size 1, 2 and 4;
   - pivoting edge cases: permutation matrices, a Hilbert matrix, and
     [Lu.Singular] on rank-deficient input. *)

module Matrix = Tats_linalg.Matrix
module Lu = Tats_linalg.Lu
module Sparse = Tats_linalg.Sparse
module Cg = Tats_linalg.Cg
module Rng = Tats_util.Rng
module Pool = Tats_util.Pool

(* Exact float equality ([<>] distinguishes every value pair except
   0. / -0., which print identically in the goldens). *)
let vec_identical name a b =
  Alcotest.(check int) (name ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if x <> b.(i) then
        Alcotest.failf "%s: index %d: %.17g <> %.17g" name i x b.(i))
    a

let vec_rel_close ?(eps = 1e-9) name a b =
  Alcotest.(check int) (name ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      let scale = Float.max 1.0 (Float.abs b.(i)) in
      if Float.abs (x -. b.(i)) > eps *. scale then
        Alcotest.failf "%s: index %d: %.17g vs %.17g" name i x b.(i))
    a

let random_rows rng r c lo hi =
  Array.init r (fun _ -> Array.init c (fun _ -> Rng.uniform rng lo hi))

let random_dd_rows rng n =
  (* Diagonally dominant: non-singular with benign pivoting. *)
  Array.init n (fun i ->
      Array.init n (fun j ->
          if i = j then 10.0 +. Rng.float rng 5.0
          else Rng.uniform rng (-1.0) 1.0))

(* --- Reference kernels --------------------------------------------------- *)

(* Triple-loop matmul, ijk order with a scalar accumulator. *)
let ref_matmul a b =
  let m = Array.length a and kn = Array.length b in
  let cn = Array.length b.(0) in
  Array.init m (fun i ->
      Array.init cn (fun j ->
          let acc = ref 0.0 in
          for k = 0 to kn - 1 do
            acc := !acc +. (a.(i).(k) *. b.(k).(j))
          done;
          !acc))

exception Ref_singular

(* The unblocked partial-pivoting LU this library shipped before the
   kernels were blocked, transcribed onto row arrays. Every scalar
   operation and its order is preserved; this is the ground truth the
   blocked factorization must match exactly. *)
let ref_factor rows =
  let n = Array.length rows in
  let lu = Array.map Array.copy rows in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    let pivot_row = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs lu.(i).(k) > Float.abs lu.(!pivot_row).(k) then
        pivot_row := i
    done;
    if !pivot_row <> k then begin
      let tmp = lu.(k) in
      lu.(k) <- lu.(!pivot_row);
      lu.(!pivot_row) <- tmp;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!pivot_row);
      perm.(!pivot_row) <- tmp;
      sign := -. !sign
    end;
    let pivot = lu.(k).(k) in
    if Float.abs pivot < 1e-300 then raise Ref_singular;
    for i = k + 1 to n - 1 do
      let factor = lu.(i).(k) /. pivot in
      lu.(i).(k) <- factor;
      for j = k + 1 to n - 1 do
        lu.(i).(j) <- lu.(i).(j) -. (factor *. lu.(k).(j))
      done
    done
  done;
  (lu, perm, !sign)

let ref_solve (lu, perm, _) b =
  let n = Array.length lu in
  let x = Array.init n (fun i -> b.(perm.(i))) in
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      x.(i) <- x.(i) -. (lu.(i).(j) *. x.(j))
    done
  done;
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- x.(i) -. (lu.(i).(j) *. x.(j))
    done;
    x.(i) <- x.(i) /. lu.(i).(i)
  done;
  x

let ref_det (lu, _, sign) =
  let d = ref sign in
  Array.iteri (fun i row -> d := !d *. row.(i)) lu;
  !d

let dot a b =
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. (x *. b.(i))) a;
  !acc

(* Textbook Jacobi-preconditioned conjugate gradient. *)
let ref_cg ?(tol = 1e-10) a b =
  let n = Array.length b in
  let x = Array.make n 0.0 in
  let r = Array.copy b in
  let inv_d = Array.map (fun d -> 1.0 /. d) (Sparse.diag a) in
  let z = Array.mapi (fun i ri -> inv_d.(i) *. ri) r in
  let p = Array.copy z in
  let rz = ref (dot r z) in
  let limit = tol *. Float.max 1e-300 (sqrt (dot b b)) in
  let iter = ref 0 in
  while sqrt (dot r r) > limit && !iter < 10 * n do
    let ap = Sparse.mul_vec a p in
    let alpha = !rz /. dot p ap in
    for i = 0 to n - 1 do
      x.(i) <- x.(i) +. (alpha *. p.(i));
      r.(i) <- r.(i) -. (alpha *. ap.(i))
    done;
    for i = 0 to n - 1 do
      z.(i) <- inv_d.(i) *. r.(i)
    done;
    let rz' = dot r z in
    let beta = rz' /. !rz in
    rz := rz';
    for i = 0 to n - 1 do
      p.(i) <- z.(i) +. (beta *. p.(i))
    done;
    incr iter
  done;
  x

(* --- Matrix.mul vs the triple loop -------------------------------------- *)

(* Sizes straddle the 48-wide tile: below, at, just past, and at the
   suite ceiling of 96 = 2 tiles. *)
let mul_sizes = [ 1; 2; 3; 5; 8; 13; 31; 47; 48; 49; 64; 95; 96 ]

let test_mul_square_sweep () =
  List.iteri
    (fun idx n ->
      let rng = Rng.create (1000 + idx) in
      let a = random_rows rng n n (-2.0) 2.0
      and b = random_rows rng n n (-2.0) 2.0 in
      let c = Matrix.mul (Matrix.of_arrays a) (Matrix.of_arrays b) in
      let expect = ref_matmul a b in
      for i = 0 to n - 1 do
        vec_rel_close
          (Printf.sprintf "mul n=%d row %d" n i)
          (Array.init n (Matrix.get c i))
          expect.(i)
      done)
    mul_sizes

let test_mul_non_square () =
  (* (m, k, n) shapes crossing tile boundaries asymmetrically. *)
  List.iteri
    (fun idx (m, k, n) ->
      let rng = Rng.create (2000 + idx) in
      let a = random_rows rng m k (-3.0) 3.0
      and b = random_rows rng k n (-3.0) 3.0 in
      let c = Matrix.mul (Matrix.of_arrays a) (Matrix.of_arrays b) in
      let expect = ref_matmul a b in
      Alcotest.(check int) "rows" m (Matrix.rows c);
      Alcotest.(check int) "cols" n (Matrix.cols c);
      for i = 0 to m - 1 do
        vec_rel_close
          (Printf.sprintf "mul %dx%dx%d row %d" m k n i)
          (Array.init n (Matrix.get c i))
          expect.(i)
      done)
    [ (1, 96, 1); (3, 96, 5); (96, 1, 96); (7, 49, 96); (96, 50, 2); (5, 1, 7) ]

let prop_mul_matches_reference =
  QCheck.Test.make ~name:"blocked mul matches triple loop" ~count:80
    QCheck.(triple small_int (int_range 1 24) (int_range 1 24))
    (fun (seed, m, n) ->
      let rng = Rng.create (seed + 11) in
      let k = 1 + Rng.int rng 24 in
      let a = random_rows rng m k (-5.0) 5.0
      and b = random_rows rng k n (-5.0) 5.0 in
      let c = Matrix.mul (Matrix.of_arrays a) (Matrix.of_arrays b) in
      let expect = ref_matmul a b in
      let ok = ref true in
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          let e = expect.(i).(j) in
          let scale = Float.max 1.0 (Float.abs e) in
          if Float.abs (Matrix.get c i j -. e) > 1e-9 *. scale then ok := false
        done
      done;
      !ok)

(* --- LU: exact agreement with the unblocked reference -------------------- *)

let check_lu_identical name rows =
  let n = Array.length rows in
  let f = Lu.factor (Matrix.of_arrays rows) in
  let rf = ref_factor rows in
  let rng = Rng.create (n + 17) in
  let b = Array.init n (fun _ -> Rng.uniform rng (-10.0) 10.0) in
  vec_identical (name ^ " solve") (Lu.solve_factored f b) (ref_solve rf b);
  vec_identical (name ^ " det") [| Lu.det f |] [| ref_det rf |];
  if n > 0 then
    vec_identical
      (name ^ " unit solution")
      (Lu.unit_solution f (n / 2))
      (ref_solve rf
         (Array.init n (fun i -> if i = n / 2 then 1.0 else 0.0)))

let test_lu_identical_sweep () =
  (* Sizes straddle the 32-wide panel: below, at, just past, several
     panels, and the 96 ceiling = 3 panels. *)
  List.iteri
    (fun idx n ->
      let rng = Rng.create (3000 + idx) in
      check_lu_identical (Printf.sprintf "dd n=%d" n) (random_dd_rows rng n))
    [ 1; 2; 3; 5; 16; 31; 32; 33; 48; 63; 64; 65; 96 ]

let test_lu_identical_general () =
  (* Non-dominant matrices exercise real pivot swaps across panels. *)
  List.iteri
    (fun idx n ->
      let rng = Rng.create (4000 + idx) in
      check_lu_identical
        (Printf.sprintf "general n=%d" n)
        (random_rows rng n n (-10.0) 10.0))
    [ 4; 17; 33; 64; 96 ]

let prop_lu_solve_identical =
  QCheck.Test.make ~name:"blocked LU solve identical to unblocked" ~count:80
    QCheck.(pair small_int (int_range 1 40))
    (fun (seed, n) ->
      let rng = Rng.create (seed + 31) in
      let rows = random_rows rng n n (-10.0) 10.0 in
      let b = Array.init n (fun _ -> Rng.uniform rng (-10.0) 10.0) in
      match (Lu.factor (Matrix.of_arrays rows), ref_factor rows) with
      | f, rf ->
          let x = Lu.solve_factored f b and y = ref_solve rf b in
          Array.for_all2 (fun u v -> u = v) x y
      | exception Lu.Singular -> (
          match ref_factor rows with
          | exception Ref_singular -> true
          | _ -> false))

(* --- Pivoting edge cases ------------------------------------------------- *)

let test_permutation_matrix () =
  (* A permutation matrix makes every pivot search hit an off-diagonal
     row; the solve must recover the permuted RHS exactly. *)
  let n = 33 in
  let rng = Rng.create 77 in
  let p = Array.init n (fun i -> i) in
  Rng.shuffle rng p;
  let rows =
    Array.init n (fun i -> Array.init n (fun j -> if p.(i) = j then 1.0 else 0.0))
  in
  let f = Lu.factor (Matrix.of_arrays rows) in
  let b = Array.init n (fun _ -> Rng.uniform rng (-10.0) 10.0) in
  let x = Lu.solve_factored f b in
  (* A x = b with A(i, p(i)) = 1 reads x(p(i)) = b(i). *)
  let expect = Array.make n 0.0 in
  Array.iteri (fun i pi -> expect.(pi) <- b.(i)) p;
  vec_identical "permuted rhs" x expect;
  vec_identical "reference" x (ref_solve (ref_factor rows) b);
  Alcotest.(check bool) "det is +/-1" true (Float.abs (Lu.det f) = 1.0)

let test_hilbert_identical () =
  (* Hilbert matrices are notoriously ill-conditioned; the factors drift
     far from exact arithmetic, but blocked and unblocked must drift in
     exactly the same way. *)
  let n = 10 in
  let rows =
    Array.init n (fun i ->
        Array.init n (fun j -> 1.0 /. float_of_int (i + j + 1)))
  in
  let f = Lu.factor (Matrix.of_arrays rows) in
  let rf = ref_factor rows in
  let b = Array.init n (fun i -> float_of_int (1 + (i mod 3))) in
  vec_identical "hilbert solve" (Lu.solve_factored f b) (ref_solve rf b);
  vec_identical "hilbert det" [| Lu.det f |] [| ref_det rf |]

let test_rank_deficient_singular () =
  let n = 8 in
  let rng = Rng.create 5 in
  let rows = random_rows rng n n (-1.0) 1.0 in
  rows.(n - 1) <- Array.copy rows.(0);
  (* equal rows: rank n-1 *)
  Alcotest.check_raises "singular" Lu.Singular (fun () ->
      ignore (Lu.factor (Matrix.of_arrays rows) : Lu.t));
  Alcotest.check_raises "reference singular" Ref_singular (fun () ->
      ignore (ref_factor rows))

let test_zero_pivot_column () =
  let rows = [| [| 0.0; 1.0; 2.0 |]; [| 0.0; 3.0; 4.0 |]; [| 0.0; 5.0; 6.0 |] |] in
  Alcotest.check_raises "zero column" Lu.Singular (fun () ->
      ignore (Lu.factor (Matrix.of_arrays rows) : Lu.t))

(* --- Batched solves: element-wise identity ------------------------------- *)

let prop_solve_many_identical =
  QCheck.Test.make
    ~name:"solve_many identical to a loop of solve_factored_into" ~count:60
    QCheck.(triple small_int (int_range 1 24) (int_range 1 12))
    (fun (seed, n, nrhs) ->
      let rng = Rng.create (seed + 41) in
      let f = Lu.factor (Matrix.of_arrays (random_dd_rows rng n)) in
      let bs =
        Array.init nrhs (fun _ ->
            Array.init n (fun _ -> Rng.uniform rng (-10.0) 10.0))
      in
      let batched = Lu.solve_many f bs in
      let x = Array.make n 0.0 in
      Array.for_all2
        (fun b xb ->
          Lu.solve_factored_into f ~b ~x;
          Array.for_all2 (fun u v -> u = v) x xb)
        bs batched)

let test_unit_solutions_pool_sizes () =
  (* The batched extraction must agree element-wise with per-column unit
     solves, and the per-column loop itself must be bit-stable under the
     domain pool at any size — together these guarantee the influence
     matrix does not depend on --jobs. *)
  let n = 37 in
  let rng = Rng.create 91 in
  let f = Lu.factor (Matrix.of_arrays (random_dd_rows rng n)) in
  let batched = Lu.unit_solutions f in
  Alcotest.(check int) "column count" n (Array.length batched);
  let per_pool =
    List.map
      (fun jobs ->
        Pool.with_pool ~jobs (fun pool ->
            Pool.parallel_map pool (Lu.unit_solution f)
              (Array.init n (fun j -> j))))
      [ 1; 2; 4 ]
  in
  List.iteri
    (fun k cols ->
      for j = 0 to n - 1 do
        vec_identical
          (Printf.sprintf "jobs-variant %d col %d" k j)
          cols.(j) batched.(j)
      done)
    per_pool

let test_solve_many_empty_and_single () =
  let n = 5 in
  let rng = Rng.create 13 in
  let f = Lu.factor (Matrix.of_arrays (random_dd_rows rng n)) in
  Alcotest.(check int) "no rhs" 0 (Array.length (Lu.solve_many f [||]));
  let b = Array.init n (fun _ -> Rng.uniform rng (-1.0) 1.0) in
  vec_identical "single rhs" (Lu.solve_many f [| b |]).(0)
    (Lu.solve_factored f b)

(* --- CG vs the textbook iteration ---------------------------------------- *)

let random_spd rng n =
  let acc = ref [] in
  for i = 0 to n - 1 do
    acc := (i, i, 8.0 +. Rng.float rng 4.0) :: !acc;
    if i + 1 < n then begin
      let g = -.Rng.float rng 1.0 in
      acc := (i, i + 1, g) :: (i + 1, i, g) :: !acc
    end
  done;
  Sparse.of_triplets ~rows:n ~cols:n !acc

let test_cg_matches_textbook () =
  let rng = Rng.create 29 in
  let n = 40 in
  let a = random_spd rng n in
  let b = Array.init n (fun _ -> Rng.uniform rng (-5.0) 5.0) in
  let x, _ = Cg.solve ~tol:1e-12 a b in
  vec_rel_close ~eps:1e-6 "cg vs textbook" x (ref_cg ~tol:1e-12 a b)

let test_cg_workspace_identical () =
  (* The workspace only preallocates buffers; with and without it the
     iteration performs the same operations, so the solutions must be
     identical — and a reused (dirty) workspace must not leak state. *)
  let rng = Rng.create 43 in
  let n = 30 in
  let a = random_spd rng n in
  let b = Array.init n (fun _ -> Rng.uniform rng (-5.0) 5.0) in
  let fresh, _ = Cg.solve a b in
  let ws = Cg.workspace n in
  let first, _ = Cg.solve ~workspace:ws a b in
  let again, _ = Cg.solve ~workspace:ws a b in
  vec_identical "workspace vs fresh" first fresh;
  vec_identical "dirty workspace reuse" again fresh

let () =
  Alcotest.run "tats_kernels"
    [
      ( "matmul",
        [
          Alcotest.test_case "square size sweep" `Quick test_mul_square_sweep;
          Alcotest.test_case "non-square shapes" `Quick test_mul_non_square;
        ] );
      ( "lu-identity",
        [
          Alcotest.test_case "diagonally dominant sweep" `Quick
            test_lu_identical_sweep;
          Alcotest.test_case "general matrices" `Quick test_lu_identical_general;
        ] );
      ( "pivoting",
        [
          Alcotest.test_case "permutation matrix" `Quick test_permutation_matrix;
          Alcotest.test_case "hilbert" `Quick test_hilbert_identical;
          Alcotest.test_case "rank deficient" `Quick test_rank_deficient_singular;
          Alcotest.test_case "zero pivot column" `Quick test_zero_pivot_column;
        ] );
      ( "batched",
        [
          Alcotest.test_case "unit_solutions across pool sizes" `Quick
            test_unit_solutions_pool_sizes;
          Alcotest.test_case "empty and single batch" `Quick
            test_solve_many_empty_and_single;
        ] );
      ( "cg",
        [
          Alcotest.test_case "matches textbook" `Quick test_cg_matches_textbook;
          Alcotest.test_case "workspace identical" `Quick
            test_cg_workspace_identical;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_mul_matches_reference;
            prop_lu_solve_identical;
            prop_solve_many_identical;
          ] );
    ]
