(* Differential and property tests for the event-driven transient engine.

   The battery leans on three ground truths:

   - the closed-form single-node RC response
     T(t) = T_inf + (T_0 - T_inf) e^{-t/RC}, which the integrators must
     approach as dt -> 0 (backward Euler at first order, RK4 at fourth);
   - linearity of C dT/dt = -A T + u, which every path must preserve to
     round-off;
   - the original in-line backward-Euler stepper (transcribed here from
     the seed tree), which the engine's exact path must reproduce bit for
     bit on real benchmark power sequences.

   `dune build @transient` runs just this suite. *)

module Block = Tats_floorplan.Block
module Grid = Tats_floorplan.Grid
module Package = Tats_thermal.Package
module Rcmodel = Tats_thermal.Rcmodel
module Steady = Tats_thermal.Steady
module Transient = Tats_thermal.Transient
module Hotspot = Tats_thermal.Hotspot
module Matrix = Tats_linalg.Matrix
module Lu = Tats_linalg.Lu
module Benchmarks = Tats_taskgraph.Benchmarks
module Catalog = Tats_techlib.Catalog
module Policy = Tats_sched.Policy
module List_sched = Tats_sched.List_sched
module Metrics = Tats_sched.Metrics

let pkg = Package.default

let platform_model n =
  Rcmodel.build pkg
    (Grid.layout
       (Array.init n (fun i ->
            Block.make ~name:(Printf.sprintf "pe%d" i) ~area:1.6e-5 ())))

(* --- Closed-form single-node RC circuit --------------------------------- *)

(* One node, conductance g to ambient, capacitance c: the engine sees
   a = [g], base_rhs = [g * T_amb], so u(p) = p + g * T_amb and
   T(t) = T_amb + p/g + (T_0 - T_amb - p/g) e^{-t g / c}. *)
let rc_system ~g ~c ~ambient =
  Transient.system
    ~a:(Matrix.of_arrays [| [| g |] |])
    ~c:[| c |]
    ~base_rhs:[| g *. ambient |]
    ~n_inputs:1

let rc_exact ~g ~c ~ambient ~t0 ~p t =
  let t_inf = ambient +. (p /. g) in
  t_inf +. ((t0 -. t_inf) *. Float.exp (-.t *. g /. c))

let test_closed_form_heating () =
  (* tau = c/g = 0.25 s; one tau of heating at dt = 1e-7 must land within
     1e-6 of the exponential (backward Euler's first-order error at this
     dt is ~1.5e-7 for this 2 degree excursion). *)
  let g = 4.0 and c = 1.0 and ambient = 45.0 and p = 8.0 in
  let engine = Transient.create (rc_system ~g ~c ~ambient) in
  let duration = 0.25 and dt = 1e-7 in
  let profile = Transient.profile ~duration ~segments:[ (0.0, [| p |]) ] in
  let r = Transient.replay engine ~profile ~t0:[| ambient |] ~dt ~periods:1 in
  let exact = rc_exact ~g ~c ~ambient ~t0:ambient ~p duration in
  let err = Float.abs (r.Transient.final.(0) -. exact) in
  Alcotest.(check bool)
    (Printf.sprintf "closed-form error %.3g <= 1e-6" err)
    true (err <= 1e-6)

let test_closed_form_decay_first_order () =
  (* Free decay from 55 degC toward 45 degC: the error must shrink by ~2x
     when dt halves (backward Euler is first order), and the finer run
     must sit within 1e-5 of the exponential. *)
  let g = 4.0 and c = 1.0 and ambient = 45.0 in
  let duration = 0.25 in
  let exact = rc_exact ~g ~c ~ambient ~t0:55.0 ~p:0.0 duration in
  let err dt =
    let engine = Transient.create (rc_system ~g ~c ~ambient) in
    let profile = Transient.profile ~duration ~segments:[ (0.0, [| 0.0 |]) ] in
    let r = Transient.replay engine ~profile ~t0:[| 55.0 |] ~dt ~periods:1 in
    Float.abs (r.Transient.final.(0) -. exact)
  in
  let e1 = err 1e-6 and e2 = err 5e-7 in
  Alcotest.(check bool) (Printf.sprintf "fine error %.3g <= 1e-5" e2) true (e2 <= 1e-5);
  let ratio = e1 /. Float.max e2 1e-300 in
  Alcotest.(check bool)
    (Printf.sprintf "first order: err(dt)/err(dt/2) = %.3f" ratio)
    true
    (ratio > 1.6 && ratio < 2.5)

let test_step_matches_scalar_recurrence () =
  (* One engine step on the 1x1 system must equal the hand-evaluated
     backward-Euler recurrence T' = (c/dt T + u) / (c/dt + g). *)
  let g = 4.0 and c = 1.0 and ambient = 45.0 and p = 8.0 in
  let engine = Transient.create (rc_system ~g ~c ~ambient) in
  let dt = 0.01 in
  let temps = [| 50.0 |] in
  Transient.step engine ~dt ~power:[| p |] temps;
  let u = p +. (g *. ambient) in
  let expected = ((c /. dt *. 50.0) +. u) /. ((c /. dt) +. g) in
  Alcotest.(check (float 1e-12)) "scalar recurrence" expected temps.(0)

(* --- Linearity ----------------------------------------------------------- *)

let test_superposition () =
  (* With base_rhs = 0 the system is purely linear: the response to
     p1 + p2 from 0 is the sum of the individual responses. *)
  let model = platform_model 4 in
  let n = Rcmodel.n_nodes model in
  let sys =
    Transient.system ~a:(Rcmodel.system_matrix model)
      ~c:(Rcmodel.capacitances model) ~base_rhs:(Array.make n 0.0) ~n_inputs:n
  in
  let p1 = Array.init n (fun i -> 0.5 +. (0.7 *. float_of_int i)) in
  let p2 = Array.init n (fun i -> 3.0 -. (0.4 *. float_of_int i)) in
  let p12 = Array.init n (fun i -> p1.(i) +. p2.(i)) in
  let respond p =
    let engine = Transient.create sys in
    let temps = Array.make n 0.0 in
    for _ = 1 to 50 do
      Transient.step engine ~dt:0.01 ~power:p temps
    done;
    temps
  in
  let t1 = respond p1 and t2 = respond p2 and t12 = respond p12 in
  Array.iteri
    (fun i v ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "node %d superposition" i)
        v
        (t1.(i) +. t2.(i)))
    t12

(* --- Integrator cross-validation ----------------------------------------- *)

let const_power p = fun (_ : float) -> Array.copy p

let final_of_trace (tr : Transient.trace) =
  tr.Transient.temps.(Array.length tr.Transient.temps - 1)

let max_abs_diff a b =
  let d = ref 0.0 in
  Array.iteri (fun i v -> d := Float.max !d (Float.abs (v -. b.(i)))) a;
  !d

let test_integrators_converge () =
  (* Constant power to t = 0.8 s. Reference: the exact stepper at
     dt = 1e-4. Backward Euler must converge at first order toward it,
     and RK4 at the same dt must be far more accurate. *)
  let model = platform_model 4 in
  let p = [| 5.0; 8.0; 3.0; 6.0 |] in
  let t_end = 0.8 in
  let t0 = Transient.initial_ambient model in
  let reference =
    let engine = Transient.create (Transient.of_model model) in
    let profile = Transient.profile ~duration:t_end ~segments:[ (0.0, p) ] in
    (Transient.replay ~exact:true engine ~profile ~t0 ~dt:1e-4 ~periods:1)
      .Transient.final
  in
  let be dt =
    let steps = int_of_float (Float.round (t_end /. dt)) in
    max_abs_diff
      (final_of_trace (Transient.backward_euler model ~power:(const_power p) ~t0 ~dt ~steps))
      reference
  in
  let e8 = be 8e-3 and e4 = be 4e-3 in
  let ratio = e8 /. Float.max e4 1e-300 in
  Alcotest.(check bool)
    (Printf.sprintf "BE first order: %.3g / %.3g = %.2f" e8 e4 ratio)
    true
    (ratio > 1.5 && ratio < 2.6);
  let e_rk4 =
    let dt = 4e-3 in
    let steps = int_of_float (Float.round (t_end /. dt)) in
    max_abs_diff
      (final_of_trace (Transient.rk4 model ~power:(const_power p) ~t0 ~dt ~steps))
      reference
  in
  Alcotest.(check bool)
    (Printf.sprintf "RK4 (%.3g) beats BE (%.3g) at the same dt" e_rk4 e4)
    true
    (e_rk4 < e4 /. 5.0)

let test_fast_path_matches_exact () =
  (* The propagator recurrence is the same linear map as the factored
     solve, evaluated in a different association order: round-off only. *)
  let model = platform_model 4 in
  let p = [| 5.0; 8.0; 3.0; 6.0 |] in
  let t0 = Transient.initial_ambient model in
  let profile =
    Transient.profile ~duration:0.775
      ~segments:[ (0.0, p); (0.31, [| 1.0; 0.5; 9.0; 2.0 |]) ]
  in
  let run exact =
    let engine = Transient.create (Transient.of_model model) in
    (Transient.replay ~exact engine ~profile ~t0 ~dt:7e-3 ~periods:10)
      .Transient.final
  in
  let d = max_abs_diff (run true) (run false) in
  Alcotest.(check bool) (Printf.sprintf "fast vs exact %.3g" d) true (d <= 1e-8)

(* --- Fixed point ---------------------------------------------------------- *)

let test_replay_endpoint_reaches_steady () =
  (* The backward-Euler fixed point for constant power is exactly the
     steady-state solve: (C/dt + A) T = C/dt T + u  =>  A T = u. After
     ~2000 s of simulated time every transient mode is dead. *)
  let model = platform_model 4 in
  let p = [| 6.0; 2.0; 9.0; 4.0 |] in
  let engine = Transient.create (Transient.of_model model) in
  let profile = Transient.profile ~duration:50.0 ~segments:[ (0.0, p) ] in
  let r =
    Transient.replay engine ~profile
      ~t0:(Transient.initial_ambient model)
      ~dt:0.5 ~periods:40
  in
  let steady = Steady.solve (Steady.create model) ~power:p in
  let d = max_abs_diff r.Transient.final steady in
  Alcotest.(check bool) (Printf.sprintf "fixed point gap %.3g" d) true (d <= 1e-6)

let test_recorded_trace_settles () =
  let model = platform_model 4 in
  let p = [| 6.0; 2.0; 9.0; 4.0 |] in
  let engine = Transient.create (Transient.of_model model) in
  let profile = Transient.profile ~duration:50.0 ~segments:[ (0.0, p) ] in
  let r =
    Transient.replay ~record:true engine ~profile
      ~t0:(Transient.initial_ambient model)
      ~dt:0.5 ~periods:40
  in
  let trace = Option.get r.Transient.trace in
  let steady = Steady.solve (Steady.create model) ~power:p in
  match Transient.settle_time trace ~steady ~tol:0.5 with
  | Some t ->
      Alcotest.(check bool) "settles well before the end" true (t < 1000.0)
  | None -> Alcotest.fail "recorded trace never settles to the steady solve"

(* --- Replay plan vs manual stepping --------------------------------------- *)

let test_replay_exact_matches_manual_steps () =
  (* The event-driven plan (full steps + one remainder step per segment)
     must be bit-identical to stepping the engine by hand over the same
     breakpoints. *)
  let model = platform_model 4 in
  let pa = [| 5.0; 1.0; 2.0; 8.0 |]
  and pb = [| 0.5; 7.0; 3.0; 1.0 |]
  and pc = [| 2.0; 2.0; 2.0; 2.0 |] in
  let duration = 0.55 and dt = 0.06 and periods = 2 in
  let segments = [ (0.0, pa); (0.13, pb); (0.4, pc) ] in
  let t0 = Transient.initial_ambient model in
  let r =
    let engine = Transient.create (Transient.of_model model) in
    let profile = Transient.profile ~duration ~segments in
    Transient.replay ~exact:true engine ~profile ~t0 ~dt ~periods
  in
  let manual = Array.copy t0 in
  let manual_steps = ref 0 in
  let engine = Transient.create (Transient.of_model model) in
  let bounds = [ (0.0, 0.13, pa); (0.13, 0.4, pb); (0.4, duration, pc) ] in
  for _ = 1 to periods do
    List.iter
      (fun (s, e, p) ->
        let len = e -. s in
        let full = int_of_float (Float.floor ((len /. dt) +. 1e-9)) in
        let rem = len -. (float_of_int full *. dt) in
        let rem = if rem <= 1e-9 *. dt then 0.0 else rem in
        for _ = 1 to full do
          Transient.step engine ~dt ~power:p manual;
          incr manual_steps
        done;
        if rem > 0.0 then begin
          Transient.step engine ~dt:rem ~power:p manual;
          incr manual_steps
        end)
      bounds
  done;
  Alcotest.(check int) "same step count" !manual_steps r.Transient.steps;
  Array.iteri
    (fun i v ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d bit-identical" i)
        true
        (Int64.bits_of_float v = Int64.bits_of_float r.Transient.final.(i)))
    manual

(* --- Old stepper differential -------------------------------------------- *)

(* The in-line backward-Euler stepper the seed tree carried (in Dtm and
   Metrics.transient_peak), transcribed verbatim: factor (C/dt + A) once,
   then solve (C/dt + A) T' = rhs(power) + (C/dt) T. *)
let seed_stepper model ~dt =
  let n = Rcmodel.n_nodes model in
  let lhs = Matrix.copy (Rcmodel.system_matrix model) in
  let c = Rcmodel.capacitances model in
  let c_over_dt = Array.init n (fun i -> c.(i) /. dt) in
  for i = 0 to n - 1 do
    Matrix.add_to lhs i i c_over_dt.(i)
  done;
  let factored = Lu.factor lhs in
  fun ~power temps ->
    let rhs = Rcmodel.rhs model ~power in
    let b = Array.init n (fun i -> rhs.(i) +. (c_over_dt.(i) *. temps.(i))) in
    let x = Lu.solve_factored factored b in
    Array.blit x 0 temps 0 n

let test_engine_bit_identical_to_seed_stepper () =
  (* Replay each benchmark's real power sequence through both the old
     stepper and the engine: every intermediate temperature must agree
     bit for bit. *)
  let lib = Catalog.platform_library () in
  List.iter
    (fun bench ->
      let graph = Benchmarks.load bench in
      let pes = Catalog.platform_instances 4 in
      let s = List_sched.run ~graph ~lib ~pes ~policy:Policy.Baseline () in
      let hotspot =
        Hotspot.create
          (Grid.layout
             (Array.map
                (fun (i : Tats_techlib.Pe.inst) ->
                  Block.make
                    ~name:(string_of_int i.Tats_techlib.Pe.inst_id)
                    ~area:i.Tats_techlib.Pe.kind.Tats_techlib.Pe.area ())
                pes))
      in
      let model = Hotspot.model hotspot in
      let dt = 1e-3 in
      let old_step = seed_stepper model ~dt in
      let engine = Transient.create (Transient.of_model model) in
      let old_temps = Transient.initial_ambient model in
      let new_temps = Transient.initial_ambient model in
      let makespan = s.Tats_sched.Schedule.makespan in
      for k = 0 to 199 do
        let time = float_of_int k *. makespan /. 200.0 in
        let power = Metrics.power_profile s ~lib ~time in
        old_step ~power old_temps;
        Transient.step engine ~dt ~power new_temps;
        Array.iteri
          (fun i v ->
            if Int64.bits_of_float v <> Int64.bits_of_float new_temps.(i) then
              Alcotest.failf "Bm%d step %d node %d: %h vs %h" (bench + 1) k i v
                new_temps.(i))
          old_temps
      done)
    [ 0; 1; 2 ]

(* --- Validation ----------------------------------------------------------- *)

let raises_invalid f =
  try
    f ();
    false
  with Invalid_argument _ -> true

let test_power_callback_length_checked () =
  (* The bugfix: a callback returning the wrong number of entries used to
     read out of bounds (or silently under-inject); now it raises. *)
  let model = platform_model 4 in
  let t0 = Transient.initial_ambient model in
  let bad (_ : float) = [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check bool) "rk4 checks the callback" true
    (raises_invalid (fun () ->
         ignore (Transient.rk4 model ~power:bad ~t0 ~dt:1e-3 ~steps:3)));
  Alcotest.(check bool) "backward_euler checks the callback" true
    (raises_invalid (fun () ->
         ignore (Transient.backward_euler model ~power:bad ~t0 ~dt:1e-3 ~steps:3)))

let test_engine_validation () =
  let model = platform_model 4 in
  let engine () = Transient.create (Transient.of_model model) in
  let t0 = Transient.initial_ambient model in
  let p4 = [| 1.0; 1.0; 1.0; 1.0 |] in
  Alcotest.(check bool) "step rejects short power" true
    (raises_invalid (fun () ->
         Transient.step (engine ()) ~dt:1e-3 ~power:[| 1.0 |] (Array.copy t0)));
  Alcotest.(check bool) "step rejects wrong state size" true
    (raises_invalid (fun () ->
         Transient.step (engine ()) ~dt:1e-3 ~power:p4 [| 0.0 |]));
  Alcotest.(check bool) "step rejects dt <= 0" true
    (raises_invalid (fun () ->
         Transient.step (engine ()) ~dt:0.0 ~power:p4 (Array.copy t0)));
  Alcotest.(check bool) "profile rejects late first segment" true
    (raises_invalid (fun () ->
         ignore (Transient.profile ~duration:1.0 ~segments:[ (0.1, p4) ])));
  Alcotest.(check bool) "profile rejects unsorted segments" true
    (raises_invalid (fun () ->
         ignore
           (Transient.profile ~duration:1.0
              ~segments:[ (0.0, p4); (0.6, p4); (0.4, p4) ])));
  Alcotest.(check bool) "profile rejects ragged power vectors" true
    (raises_invalid (fun () ->
         ignore
           (Transient.profile ~duration:1.0
              ~segments:[ (0.0, p4); (0.5, [| 1.0 |]) ])));
  Alcotest.(check bool) "system rejects non-positive capacitance" true
    (raises_invalid (fun () ->
         ignore
           (Transient.system
              ~a:(Matrix.of_arrays [| [| 1.0 |] |])
              ~c:[| 0.0 |] ~base_rhs:[| 0.0 |] ~n_inputs:1)));
  Alcotest.(check bool) "replay rejects wrong t0 size" true
    (raises_invalid (fun () ->
         let profile = Transient.profile ~duration:1.0 ~segments:[ (0.0, p4) ] in
         ignore
           (Transient.replay (engine ()) ~profile ~t0:[| 0.0 |] ~dt:0.1 ~periods:1)))

let test_profile_power_evaluation () =
  let p0 = [| 1.0; 2.0 |] and p1 = [| 3.0; 4.0 |] in
  let profile =
    Transient.profile ~duration:1.0 ~segments:[ (0.0, p0); (0.3, p1) ]
  in
  Alcotest.(check int) "two segments" 2 (Transient.profile_segments profile);
  Alcotest.(check (float 0.0)) "duration" 1.0 (Transient.profile_duration profile);
  Alcotest.(check (array (float 0.0))) "first segment" p0
    (Transient.profile_power profile 0.1);
  Alcotest.(check (array (float 0.0))) "second segment" p1
    (Transient.profile_power profile 0.5);
  Alcotest.(check (array (float 0.0))) "wraps past the period" p0
    (Transient.profile_power profile 1.2)

(* --- Instrumentation ------------------------------------------------------ *)

let test_stats_account_for_work () =
  let model = platform_model 4 in
  let engine = Transient.create (Transient.of_model model) in
  let p = [| 5.0; 8.0; 3.0; 6.0 |] in
  let profile = Transient.profile ~duration:0.5 ~segments:[ (0.0, p) ] in
  let r =
    Transient.replay engine ~profile
      ~t0:(Transient.initial_ambient model)
      ~dt:0.05 ~periods:3
  in
  let s = Transient.stats engine in
  Alcotest.(check int) "steps counted" r.Transient.steps s.Transient.steps;
  Alcotest.(check bool) "factored at least once" true (s.Transient.factorizations >= 1);
  Alcotest.(check bool) "propagator built" true (s.Transient.propagator_builds >= 1);
  (* Repeating a power vector at the same dt must hit the q cache. *)
  let temps = Transient.initial_ambient model in
  Transient.step_fast engine ~dt:0.01 ~power:p temps;
  let before = (Transient.stats engine).Transient.q_cache_hits in
  Transient.step_fast engine ~dt:0.01 ~power:p temps;
  let after = (Transient.stats engine).Transient.q_cache_hits in
  Alcotest.(check int) "repeated power hits the cache" (before + 1) after

let () =
  Alcotest.run "transient"
    [
      ( "closed_form",
        [
          Alcotest.test_case "heating within 1e-6" `Quick test_closed_form_heating;
          Alcotest.test_case "decay is first order" `Quick
            test_closed_form_decay_first_order;
          Alcotest.test_case "scalar recurrence" `Quick
            test_step_matches_scalar_recurrence;
        ] );
      ( "linearity",
        [ Alcotest.test_case "superposition" `Quick test_superposition ] );
      ( "convergence",
        [
          Alcotest.test_case "BE first order, RK4 better" `Quick
            test_integrators_converge;
          Alcotest.test_case "fast path matches exact" `Quick
            test_fast_path_matches_exact;
        ] );
      ( "fixed_point",
        [
          Alcotest.test_case "replay reaches steady" `Quick
            test_replay_endpoint_reaches_steady;
          Alcotest.test_case "recorded trace settles" `Quick
            test_recorded_trace_settles;
        ] );
      ( "differential",
        [
          Alcotest.test_case "replay = manual steps (bitwise)" `Quick
            test_replay_exact_matches_manual_steps;
          Alcotest.test_case "engine = seed stepper (bitwise)" `Quick
            test_engine_bit_identical_to_seed_stepper;
        ] );
      ( "validation",
        [
          Alcotest.test_case "power callback length" `Quick
            test_power_callback_length_checked;
          Alcotest.test_case "engine arguments" `Quick test_engine_validation;
          Alcotest.test_case "profile evaluation" `Quick
            test_profile_power_evaluation;
        ] );
      ( "instrumentation",
        [ Alcotest.test_case "stats account for work" `Quick test_stats_account_for_work ]
      );
    ]
