(* Benchmark harness.

   Running `dune exec bench/main.exe` does three things, in order:

   1. Regenerates every table and figure of the paper's evaluation
      (Tables 1-3 side by side with the published numbers, and the two
      Figure-1 flows as executable stage traces) and verifies the
      reproduction's shape criteria.
   2. Runs the ablation studies DESIGN.md calls out: the DC cost-weight
      sweep, leakage feedback on/off, GA floorplanning effort, and the
      compact (dense LU) vs grid (sparse CG) thermal solvers.
   3. Measures the parallel scaling of the domain-pool workloads
      (Monte-Carlo, GA fitness, SA restarts) at 1/2/4 domains, verifies
      they are bit-identical to the sequential runs, and writes
      BENCH_parallel.json.
   4. Prices the blocked linalg kernels against an in-bench naive
      reference (>= 2x gate at n >= 64) and writes BENCH_kernels.json.
   5. Times the experiment kernels with Bechamel (one Test.make per table
      plus one per Figure-1 flow, and micro-benchmarks of the hot paths).

   Pass --tables-only to skip the Bechamel timing runs (CI-friendly) and
   --jobs N to size the default execution pool used by the table phase.

   Every BENCH_*.json written is echoed as one machine-readable line
   `BENCH-JSON <path>` for CI collectors. *)

open Bechamel
open Toolkit

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* One greppable line per machine-readable artifact. *)
let announce_json path = Printf.printf "BENCH-JSON %s\n" path

(* --- per-phase timing --------------------------------------------------- *)

(* Every top-level harness phase runs under [timed_phase]: wall time lands
   in BENCH_phases.json, and when --trace is active the phase is also a
   span, so the Chrome timeline shows the harness structure above the
   library's own spans. *)
let phase_times : (string * float) list ref = ref []

(* --only NAME (repeatable) restricts the run to the named phases. *)
let only_phases =
  let acc = ref [] in
  Array.iteri
    (fun i arg ->
      if arg = "--only" && i + 1 < Array.length Sys.argv then
        acc := Sys.argv.(i + 1) :: !acc)
    Sys.argv;
  !acc

(* Every name ever passed to [timed_phase]; --only arguments are checked
   against it up front, so a typo is a hard error instead of a silently
   empty run. The list itself lives in [Core.Phases] — shared with the
   dune-alias drift check in test_campaign — and [timed_phase]
   cross-checks at runtime so it cannot drift from the actual phase
   calls. *)
let known_phases = Core.Phases.names

let validate_only_phases () =
  match List.filter (fun p -> not (List.mem p known_phases)) only_phases with
  | [] -> ()
  | unknown ->
      Printf.eprintf "bench: unknown --only phase%s: %s\nvalid phases: %s\n"
        (if List.length unknown = 1 then "" else "s")
        (String.concat ", " unknown)
        (String.concat ", " known_phases);
      exit 2

let timed_phase name f =
  if not (List.mem name known_phases) then
    failwith ("bench: phase " ^ name ^ " missing from known_phases");
  if only_phases <> [] && not (List.mem name only_phases) then ()
  else begin
    let t0 = Unix.gettimeofday () in
    let v = Core.Trace.with_span ("bench." ^ name) f in
    phase_times := (name, Unix.gettimeofday () -. t0) :: !phase_times;
    v
  end

let write_phases () =
  let phases = List.rev !phase_times in
  let total = List.fold_left (fun acc (_, t) -> acc +. t) 0.0 phases in
  Printf.printf "\nper-phase wall time:\n";
  List.iter
    (fun (name, t) ->
      Printf.printf "  %-28s %8.2f s (%4.1f%%)\n" name t
        (100.0 *. t /. Float.max total 1e-9))
    phases;
  let oc = open_out "BENCH_phases.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "{\n  \"total_wall_s\": %.4f,\n  \"phases\": [\n" total;
      List.iteri
        (fun i (name, t) ->
          Printf.fprintf oc "    {\"name\": %S, \"wall_s\": %.4f}%s\n" name t
            (if i = List.length phases - 1 then "" else ","))
        phases;
      (* Process-wide execution-runtime counters accumulated across every
         phase, from the metrics registry. *)
      let pool_counter name =
        Core.Metricsreg.counter_value (Core.Metricsreg.counter name)
      in
      Printf.fprintf oc
        "  ],\n\
        \  \"pool\": {\"batches\": %d, \"tasks\": %d, \"steals\": %d, \
         \"parks\": %d, \"deque_max_depth\": %d}\n\
         }\n"
        (pool_counter "pool.batches")
        (pool_counter "pool.tasks")
        (pool_counter "pool.steals")
        (pool_counter "pool.parks")
        (pool_counter "pool.deque_max_depth"));
  Printf.printf "wrote BENCH_phases.json\n";
  announce_json "BENCH_phases.json"

(* ----------------------------------------------------------------------- *)
(* 1. Table and figure regeneration                                         *)
(* ----------------------------------------------------------------------- *)

(* Inquiry-engine accounting for the table regeneration, printed as a
   human-readable summary and dumped as BENCH_inquiry.json for machine
   consumers (CI trend lines). [factored_solves] is what the engines
   actually paid (n_blocks per engine build); [dense_solves] is what the
   pre-engine path would have paid (one factored solve per fixed-point
   iteration plus the initial solve of every inquiry). *)
let inquiry_summary ~elapsed =
  let s = Core.Inquiry.global_stats () in
  let ratio x y = if y = 0 then 0.0 else float_of_int x /. float_of_int y in
  let hit_rate = ratio s.Core.Inquiry.cache_hits s.Core.Inquiry.inquiries in
  let reduction =
    ratio s.Core.Inquiry.dense_solves s.Core.Inquiry.factored_solves
  in
  let per_sec =
    if elapsed <= 0.0 then 0.0
    else float_of_int s.Core.Inquiry.inquiries /. elapsed
  in
  Printf.printf
    "\ninquiry engine: %d inquiries (%.0f/s), %d cache hits (%.1f%%), %d \
     fixed-point iterations\n"
    s.Core.Inquiry.inquiries per_sec s.Core.Inquiry.cache_hits
    (100.0 *. hit_rate) s.Core.Inquiry.fp_iterations;
  Printf.printf
    "factored solves: %d vs %d dense-path equivalents -> %.1fx fewer (%s >= \
     5x target)\n"
    s.Core.Inquiry.factored_solves s.Core.Inquiry.dense_solves reduction
    (if reduction >= 5.0 then "PASS" else "FAIL");
  let oc = open_out "BENCH_inquiry.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc
        "{\n\
        \  \"inquiries\": %d,\n\
        \  \"inquiries_per_sec\": %.1f,\n\
        \  \"cache_hits\": %d,\n\
        \  \"cache_hit_rate\": %.4f,\n\
        \  \"fp_iterations\": %d,\n\
        \  \"delta_evals\": %d,\n\
        \  \"factored_solves\": %d,\n\
        \  \"dense_solves\": %d,\n\
        \  \"solve_reduction\": %.2f,\n\
        \  \"engine_wall_s\": %.3f,\n\
        \  \"tables_wall_s\": %.3f\n\
         }\n"
        s.Core.Inquiry.inquiries per_sec s.Core.Inquiry.cache_hits hit_rate
        s.Core.Inquiry.fp_iterations s.Core.Inquiry.delta_evals
        s.Core.Inquiry.factored_solves s.Core.Inquiry.dense_solves reduction
        s.Core.Inquiry.wall_time elapsed);
  Printf.printf "wrote BENCH_inquiry.json\n";
  announce_json "BENCH_inquiry.json"

let regenerate_tables () =
  hr "Tables 1-3 (paper vs measured)";
  Core.Inquiry.reset_global_stats ();
  let t0 = Unix.gettimeofday () in
  let table1 = Core.Experiments.table1 () in
  let table2 = Core.Experiments.table2 () in
  let table3 = Core.Experiments.table3 () in
  let elapsed = Unix.gettimeofday () -. t0 in
  Printf.printf "all tables regenerated in %.1f s\n\n" elapsed;
  print_string (Core.Report.table1 table1);
  print_newline ();
  print_string (Core.Report.table2 table2);
  print_newline ();
  print_string (Core.Report.table3 table3);
  print_newline ();
  print_string
    (Core.Report.shape_checks
       (Core.Experiments.shape_checks ~table1 ~table2 ~table3));
  inquiry_summary ~elapsed;
  (table1, table2, table3)

let figure1_flows () =
  hr "Figure 1 — the two flows as executable stage traces";
  let graph = Core.Benchmarks.load 1 in
  let show name (o : Core.Flow.outcome) =
    Printf.printf "%s:\n" name;
    List.iter
      (fun (e : Core.Flow.log_entry) ->
        Printf.printf "  [%s] %s\n" (Core.Flow.stage_name e.Core.Flow.stage)
          e.Core.Flow.detail)
      o.Core.Flow.log;
    Format.printf "  -> %a@." Core.Metrics.pp_row o.Core.Flow.row
  in
  show "(a) thermal-aware co-synthesis"
    (Core.Flow.run_cosynthesis ~graph ~lib:(Core.Catalog.default_library ())
       ~policy:Core.Policy.Thermal_aware ());
  show "(b) thermal-aware platform-based design"
    (Core.Flow.run_platform ~graph ~lib:(Core.Catalog.platform_library ())
       ~policy:Core.Policy.Thermal_aware ())

(* ----------------------------------------------------------------------- *)
(* 2. Ablations                                                             *)
(* ----------------------------------------------------------------------- *)

let ablation_weight_sweep () =
  hr "Ablation — DC cost-weight sweep (thermal policy, Bm1 platform)";
  Printf.printf "%-12s %10s %10s %10s %10s\n" "weight/D" "makespan" "TotPow(W)"
    "MaxT(C)" "AvgT(C)";
  let graph = Core.Benchmarks.load 0 in
  let lib = Core.Catalog.platform_library () in
  let deadline = Core.Graph.deadline graph in
  List.iter
    (fun mult ->
      let weights = { Core.Policy.cost_weight = mult *. deadline } in
      let pes = Core.Catalog.platform_instances 4 in
      let hotspot =
        Core.Hotspot.create
          (Core.Grid.layout
             (Array.map
                (fun (i : Core.Pe.inst) ->
                  Core.Block.make ~name:(string_of_int i.Core.Pe.inst_id)
                    ~area:i.Core.Pe.kind.Core.Pe.area ())
                pes))
      in
      let s =
        Core.List_sched.run ~weights ~hotspot ~graph ~lib ~pes
          ~policy:Core.Policy.Thermal_aware ()
      in
      let row = Core.Metrics.row s ~lib ~hotspot in
      Printf.printf "%-12.2f %10.1f %10.2f %10.2f %10.2f%s\n" mult
        s.Core.Schedule.makespan row.Core.Metrics.total_power
        row.Core.Metrics.max_temp row.Core.Metrics.avg_temp
        (if s.Core.Schedule.makespan > deadline then "  (deadline MISSED)" else ""))
    [ 0.0; 0.15; 0.4; 1.0; 2.0; 4.0; 8.0; 16.0 ];
  Printf.printf
    "(the adaptive ASP bisects for the strongest weight that still meets the \
     deadline)\n"

let ablation_leakage () =
  hr "Ablation — temperature-dependent leakage feedback";
  Printf.printf "%-8s %-10s %12s %12s\n" "bench" "policy" "MaxT w/leak" "MaxT linear";
  let lib = Core.Catalog.platform_library () in
  List.iter
    (fun bench ->
      let graph = Core.Benchmarks.load bench in
      List.iter
        (fun policy ->
          let with_leak = Core.Flow.run_platform ~graph ~lib ~policy () in
          let without = Core.Flow.run_platform ~leakage:false ~graph ~lib ~policy () in
          Printf.printf "%-8s %-10s %12.2f %12.2f\n" (Core.Graph.name graph)
            (Core.Policy.name policy) with_leak.Core.Flow.row.Core.Metrics.max_temp
            without.Core.Flow.row.Core.Metrics.max_temp)
        [ Core.Policy.Baseline; Core.Policy.Thermal_aware ])
    [ 0; 3 ]

let ablation_ga_effort () =
  hr "Ablation — GA floorplanning effort";
  Printf.printf "%-14s %12s %12s\n" "generations" "cost" "dead space";
  let rng = Core.Rng.create 7 in
  let blocks =
    Array.init 6 (fun i ->
        Core.Block.make ~name:(Printf.sprintf "b%d" i)
          ~area:(Core.Rng.uniform rng 8e-6 2.5e-5)
          ())
  in
  let blocks_area = Array.fold_left (fun a b -> a +. b.Core.Block.area) 0.0 blocks in
  List.iter
    (fun generations ->
      let params = { Core.Ga.default_params with Core.Ga.generations } in
      let r =
        Core.Ga.run ~params ~seed:42 ~blocks
          ~cost:(Core.Flow.floorplan_cost ~blocks_area)
          ()
      in
      Printf.printf "%-14d %12.4f %11.1f%%\n" generations r.Core.Ga.best_cost
        (100.0 *. Core.Placement.dead_space_ratio r.Core.Ga.best_placement))
    [ 1; 5; 15; 60; 200 ]

let ablation_solvers () =
  hr "Ablation — compact (dense LU) vs grid (sparse CG) thermal model";
  let placement =
    Core.Grid.layout
      (Array.init 4 (fun i ->
           Core.Block.make ~name:(Printf.sprintf "PE%d" i) ~area:1.6e-5 ()))
  in
  let power = [| 2.0; 6.0; 1.0; 3.0 |] in
  let compact = Core.Steady.create (Core.Rcmodel.build Core.Package.default placement) in
  let t_compact = Core.Steady.block_temperatures compact ~power in
  Printf.printf "%-14s %10s %10s %10s %10s\n" "model" "PE0" "PE1" "PE2" "PE3";
  Printf.printf "%-14s %10.2f %10.2f %10.2f %10.2f\n" "compact" t_compact.(0)
    t_compact.(1) t_compact.(2) t_compact.(3);
  List.iter
    (fun n ->
      let grid = Core.Gridmodel.build ~nx:n ~ny:n Core.Package.default placement in
      let t = Core.Gridmodel.block_temperatures grid ~power in
      Printf.printf "%-14s %10.2f %10.2f %10.2f %10.2f\n"
        (Printf.sprintf "grid %dx%d" n n) t.(0) t.(1) t.(2) t.(3))
    [ 8; 16; 32 ];
  Printf.printf "(block means agree within a couple of °C; see the timing benches)\n"

let ablation_floorplanners () =
  hr "Ablation — GA vs simulated-annealing floorplanner (same cost, same blocks)";
  Printf.printf "%-10s %12s %14s\n" "method" "cost" "evaluations";
  let rng = Core.Rng.create 7 in
  let blocks =
    Array.init 8 (fun i ->
        Core.Block.make ~name:(Printf.sprintf "b%d" i)
          ~area:(Core.Rng.uniform rng 6e-6 2.5e-5)
          ())
  in
  let blocks_area = Array.fold_left (fun a b -> a +. b.Core.Block.area) 0.0 blocks in
  let cost = Core.Flow.floorplan_cost ~blocks_area in
  let ga = Core.Ga.run ~seed:42 ~blocks ~cost () in
  let sa = Core.Sa.run ~seed:42 ~blocks ~cost () in
  Printf.printf "%-10s %12.4f %14d\n" "GA" ga.Core.Ga.best_cost
    (Core.Ga.default_params.Core.Ga.population
    * Core.Ga.default_params.Core.Ga.generations);
  Printf.printf "%-10s %12.4f %14d\n" "SA" sa.Core.Sa.best_cost sa.Core.Sa.moves_tried

let ablation_mappers () =
  hr "Ablation — constructive ASP vs HEFT vs SA mapper (makespans, 4-PE platform)";
  Printf.printf "%-8s %10s %10s %10s %10s\n" "bench" "ASP" "HEFT" "SA" "deadline";
  let lib = Core.Catalog.platform_library () in
  let pes = Core.Catalog.platform_instances 4 in
  List.iter
    (fun bench ->
      let graph = Core.Benchmarks.load bench in
      let asp =
        Core.List_sched.run ~graph ~lib ~pes ~policy:Core.Policy.Baseline ()
      in
      let heft = Core.Heft.run ~graph ~lib ~pes () in
      let sa =
        Core.Sa_mapper.run
          ~params:
            {
              Core.Sa_mapper.initial_temperature = 30.0;
              cooling = 0.9;
              moves_per_temperature = 40;
              min_temperature = 0.3;
            }
          ~seed:1 ~objective:Core.Sa_mapper.Makespan ~graph ~lib ~pes ()
      in
      Printf.printf "%-8s %10.1f %10.1f %10.1f %10.0f\n" (Core.Graph.name graph)
        asp.Core.Schedule.makespan heft.Core.Schedule.makespan
        sa.Core.Sa_mapper.schedule.Core.Schedule.makespan
        (Core.Graph.deadline graph))
    [ 0; 1; 2; 3 ]

let ablation_dvs () =
  hr "Ablation — DVS slack reclamation on top of each policy (Bm1 platform)";
  Printf.printf "%-10s %12s %12s %14s %12s\n" "policy" "MaxT before" "MaxT after"
    "energy saved" "makespan";
  let graph = Core.Benchmarks.load 0 in
  let lib = Core.Catalog.platform_library () in
  List.iter
    (fun policy ->
      let o = Core.Flow.run_platform ~graph ~lib ~policy () in
      let s = o.Core.Flow.schedule in
      let plan = Core.Dvs.reclaim ~lib s in
      let after = Core.Dvs.thermal_report plan ~hotspot:o.Core.Flow.hotspot in
      Printf.printf "%-10s %12.2f %12.2f %13.1f%% %12.1f\n" (Core.Policy.name policy)
        o.Core.Flow.row.Core.Metrics.max_temp after.Core.Metrics.max_temp
        (100.0 *. Core.Dvs.energy_saving_ratio plan)
        plan.Core.Dvs.makespan)
    Core.Policy.all;
  Printf.printf
    "(the thermal ASP already spent the slack, so DVS has little left to reclaim)\n"

let ablation_bus () =
  hr "Ablation — communication models: free bus, contended bus, 2x2 mesh NoC";
  Printf.printf "%-8s %14s %12s %12s %12s\n" "bench" "free makespan" "bus makespan"
    "bus util" "mesh mksp";
  let lib = Core.Catalog.platform_library () in
  let mesh_lib =
    Core.Library.generate ~seed:77
      ~n_task_types:Core.Benchmarks.n_task_types
      ~kinds:[ Core.Catalog.platform_kind () ]
      ~comm:(Core.Comm.mesh ~cols:2 ~per_hop_delay:8.0 ())
      ()
  in
  let pes = Core.Catalog.platform_instances 4 in
  List.iter
    (fun bench ->
      let graph = Core.Benchmarks.load bench in
      let free =
        Core.List_sched.run ~graph ~lib ~pes ~policy:Core.Policy.Baseline ()
      in
      let bus = Core.Bus_sched.run ~graph ~lib ~pes ~policy:Core.Policy.Baseline () in
      let mesh =
        Core.List_sched.run ~graph ~lib:mesh_lib ~pes ~policy:Core.Policy.Baseline ()
      in
      Printf.printf "%-8s %14.1f %12.1f %11.1f%% %12.1f\n" (Core.Graph.name graph)
        free.Core.Schedule.makespan
        bus.Core.Bus_sched.schedule.Core.Schedule.makespan
        (100.0 *. Core.Bus_sched.bus_utilization bus)
        mesh.Core.Schedule.makespan)
    [ 0; 1; 2; 3 ]

let ablation_stack () =
  hr "Ablation — compact model vs multi-layer die/TIM/spreader stack";
  let placement =
    Core.Grid.layout
      (Array.init 4 (fun i ->
           Core.Block.make ~name:(Printf.sprintf "PE%d" i) ~area:1.6e-5 ()))
  in
  let power = [| 2.0; 6.0; 1.0; 3.0 |] in
  let compact = Core.Steady.create (Core.Rcmodel.build Core.Package.default placement) in
  let stack = Core.Stack.build placement in
  let t_c = Core.Steady.block_temperatures compact ~power in
  let t_die, t_tim, t_spr = Core.Stack.layer_temperatures stack ~power in
  Printf.printf "%-16s %10s %10s %10s %10s\n" "layer" "PE0" "PE1" "PE2" "PE3";
  let line name t =
    Printf.printf "%-16s %10.2f %10.2f %10.2f %10.2f\n" name t.(0) t.(1) t.(2) t.(3)
  in
  line "compact (die)" t_c;
  line "stack die" t_die;
  line "stack TIM" t_tim;
  line "stack spreader" t_spr

let ablation_clustering () =
  hr "Ablation — linear task clustering before scheduling";
  Printf.printf "%-8s %9s %12s %12s %12s %12s\n" "bench" "clusters" "mksp plain"
    "mksp clust" "comm plain" "comm clust";
  let lib = Core.Catalog.platform_library () in
  let pes = Core.Catalog.platform_instances 4 in
  List.iter
    (fun bench ->
      let graph = Core.Benchmarks.load bench in
      let c = Core.Cluster.linear ~threshold:60.0 graph in
      let clib =
        Core.Library.aggregate lib ~member_types:(Core.Cluster.member_types c graph)
      in
      let plain =
        Core.List_sched.run ~graph ~lib ~pes ~policy:Core.Policy.Baseline ()
      in
      let clustered =
        Core.List_sched.run ~graph:c.Core.Cluster.clustered ~lib:clib ~pes
          ~policy:Core.Policy.Baseline ()
      in
      Printf.printf "%-8s %4d/%-4d %12.1f %12.1f %12.1f %12.1f\n"
        (Core.Graph.name graph)
        (Core.Graph.n_tasks c.Core.Cluster.clustered)
        (Core.Graph.n_tasks graph) plain.Core.Schedule.makespan
        clustered.Core.Schedule.makespan
        (Core.Metrics.total_comm_energy plain ~lib)
        (Core.Metrics.total_comm_energy clustered ~lib:clib))
    [ 0; 1; 2; 3 ];
  Printf.printf
    "(fusing heavy edges removes bus traffic but serializes the fused chains)\n"

let ablation_refinement () =
  hr "Ablation — floorplan <-> schedule refinement rounds (thermal cosynth)";
  Printf.printf "%-8s %10s %10s %10s\n" "bench" "1 round" "2 rounds" "3 rounds";
  let lib = Core.Catalog.default_library () in
  List.iter
    (fun bench ->
      let graph = Core.Benchmarks.load bench in
      let peak rounds =
        (Core.Flow.run_cosynthesis ~refine_rounds:rounds ~graph ~lib
           ~policy:Core.Policy.Thermal_aware ())
          .Core.Flow.row
          .Core.Metrics.max_temp
      in
      Printf.printf "%-8s %10.2f %10.2f %10.2f\n" (Core.Graph.name graph) (peak 1)
        (peak 2) (peak 3))
    [ 0; 1 ];
  Printf.printf
    "(round 2 re-floorplans under the policy schedule's own powers)\n"

let ablation_dtm () =
  hr "Ablation — runtime DTM throttling vs design-time policy (Bm1, warmed up)";
  Printf.printf "%-10s %12s %12s %12s %10s\n" "policy" "static" "simulated"
    "throttled" "deadline";
  let graph = Core.Benchmarks.load 0 in
  let lib = Core.Catalog.platform_library () in
  let params =
    { Core.Dtm.default_params with Core.Dtm.trigger = 90.0; passes = 150 }
  in
  List.iter
    (fun policy ->
      let o = Core.Flow.run_platform ~graph ~lib ~policy () in
      let r = Core.Dtm.simulate ~params ~lib ~hotspot:o.Core.Flow.hotspot
          o.Core.Flow.schedule in
      Printf.printf "%-10s %12.1f %12.1f %11.1f%% %10s\n" (Core.Policy.name policy)
        o.Core.Flow.schedule.Core.Schedule.makespan r.Core.Dtm.makespan
        (100.0 *. r.Core.Dtm.throttled_fraction)
        (if r.Core.Dtm.meets_deadline then "met" else "MISSED"))
    Core.Policy.all;
  Printf.printf
    "(the thermal-aware schedule needs the least runtime intervention)\n"

let ablation_montecarlo () =
  hr "Ablation — Monte-Carlo execution-time variation (Bm1, 200 runs)";
  Printf.printf "%-10s %10s %10s %10s %10s %12s\n" "policy" "WCET mksp" "mean"
    "p95" "peak °C" "miss rate";
  let graph = Core.Benchmarks.load 0 in
  let lib = Core.Catalog.platform_library () in
  List.iter
    (fun policy ->
      let o = Core.Flow.run_platform ~graph ~lib ~policy () in
      let r =
        Core.Montecarlo.analyze ~seed:11 ~lib ~hotspot:o.Core.Flow.hotspot
          o.Core.Flow.schedule
      in
      Printf.printf "%-10s %10.1f %10.1f %10.1f %10.2f %11.1f%%\n"
        (Core.Policy.name policy) o.Core.Flow.schedule.Core.Schedule.makespan
        r.Core.Montecarlo.makespan_mean r.Core.Montecarlo.makespan_p95
        r.Core.Montecarlo.peak_temp_mean
        (100.0 *. r.Core.Montecarlo.deadline_miss_rate))
    Core.Policy.all;
  Printf.printf
    "(actuals drawn uniformly from [0.6, 1.0] x WCET; mapping and order kept)\n"

let design_space_exploration () =
  hr "Design-space exploration — cost vs peak temperature (Bm1, co-synthesis)";
  let graph = Core.Benchmarks.load 0 in
  let lib = Core.Catalog.default_library () in
  let points = Core.Pareto.explore ~graph ~lib () in
  Format.printf "%a@." Core.Pareto.pp_points points;
  Format.printf "Pareto frontier:@.%a@." Core.Pareto.pp_points
    (Core.Pareto.frontier points)

(* ----------------------------------------------------------------------- *)
(* 3. Parallel scaling of the domain-pool workloads                         *)
(* ----------------------------------------------------------------------- *)

(* Each workload returns an observable fingerprint of its result; the same
   fingerprint must come back at every pool size (the pool's determinism
   contract), and wall time should drop with domains when cores exist. *)
type scaling_row = {
  workload : string;
  times : (int * float) list; (* jobs -> wall seconds *)
  identical : bool;
}

let scaling_jobs = [ 1; 2; 4 ]

let measure_workload ~name (f : Core.Pool.t -> 'a) =
  let run jobs =
    Core.Pool.with_pool ~jobs (fun pool ->
        let t0 = Unix.gettimeofday () in
        let v = f pool in
        (jobs, Unix.gettimeofday () -. t0, v))
  in
  let results = List.map run scaling_jobs in
  let _, _, reference = List.hd results in
  {
    workload = name;
    times = List.map (fun (j, t, _) -> (j, t)) results;
    identical = List.for_all (fun (_, _, v) -> v = reference) results;
  }

(* A pure sub-millisecond task: ~10-40 us of float work, no allocation.
   Thousands of these at chunk:1 are the schedule the old mutex-FIFO pool
   paid one lock round-trip per task for; the work-stealing runtime pays
   owner-local deque operations instead. *)
let fine_task i =
  let x = ref (float_of_int (i + 1) *. 1e-3) in
  for _ = 1 to 2000 do
    x := !x +. (1.0 /. (1.0 +. (!x *. !x)))
  done;
  !x

let fine_tasks = 4000

let skip_reason_of_cores cores =
  Printf.sprintf "host has %d core%s (< 4): speedup is not measurable" cores
    (if cores = 1 then "" else "s")

let parallel_scaling () =
  hr "Parallel scaling — domain-pool workloads at 1/2/4 domains";
  let cores = Domain.recommended_domain_count () in
  let graph = Core.Benchmarks.load 0 in
  let lib = Core.Catalog.platform_library () in
  let pes = Core.Catalog.platform_instances 4 in
  let schedule =
    Core.List_sched.run ~graph ~lib ~pes ~policy:Core.Policy.Baseline ()
  in
  let rng = Core.Rng.create 7 in
  let blocks =
    Array.init 6 (fun i ->
        Core.Block.make ~name:(Printf.sprintf "b%d" i)
          ~area:(Core.Rng.uniform rng 8e-6 2.5e-5)
          ())
  in
  let blocks_area = Array.fold_left (fun a b -> a +. b.Core.Block.area) 0.0 blocks in
  let thermal_cost p =
    Core.Flow.floorplan_cost ~blocks_area p
    +. 0.05
       *. (Core.Hotspot.peak_temperature (Core.Hotspot.create p)
             ~power:[| 9.0; 10.0; 1.0; 1.5; 0.8; 1.2 |]
           -. Core.Package.default.Core.Package.ambient)
  in
  let rows =
    [
      measure_workload ~name:"monte-carlo (Bm1, 1000 runs)" (fun pool ->
          (* A fresh facade per pool size: the fingerprint must not depend
             on cache state left by a previous measurement. *)
          let hotspot =
            Core.Hotspot.create
              (Core.Grid.layout
                 (Array.init 4 (fun i ->
                      Core.Block.make ~name:(Printf.sprintf "PE%d" i)
                        ~area:1.6e-5 ())))
          in
          Core.Montecarlo.analyze ~runs:1000 ~pool ~seed:11 ~lib ~hotspot
            schedule);
      measure_workload ~name:"GA thermal floorplan (15 generations)" (fun pool ->
          let r =
            Core.Ga.run
              ~params:{ Core.Ga.default_params with Core.Ga.generations = 15 }
              ~pool ~seed:42 ~blocks ~cost:thermal_cost ()
          in
          (r.Core.Ga.best_cost, r.Core.Ga.history));
      measure_workload ~name:"SA mapper (4 restarts)" (fun pool ->
          let r =
            Core.Sa_mapper.run_restarts
              ~params:
                {
                  Core.Sa_mapper.initial_temperature = 30.0;
                  cooling = 0.9;
                  moves_per_temperature = 40;
                  min_temperature = 0.3;
                }
              ~pool ~restarts:4 ~seed:1 ~objective:Core.Sa_mapper.Makespan
              ~graph ~lib ~pes ()
          in
          (r.Core.Sa_mapper.best_restart, r.Core.Sa_mapper.restart_costs));
    ]
  in
  (* Fine-grained phase: thousands of sub-millisecond tasks, scheduled one
     index at a time (chunk:1) so every task is an individually stealable
     unit — the schedule that exposes per-task runtime overhead. *)
  let fine_row =
    measure_workload
      ~name:(Printf.sprintf "fine-grained (%d sub-ms tasks, chunk 1)" fine_tasks)
      (fun pool ->
        Core.Pool.parallel_for_reduce ~chunk:1 pool ~n:fine_tasks ~init:0.0
          ~combine:( +. ) fine_task)
  in
  (* One extra 4-domain run to surface the runtime counters of a
     steal-heavy schedule. *)
  let fine_stats =
    Core.Pool.with_pool ~jobs:4 (fun pool ->
        ignore
          (Core.Pool.parallel_for_reduce ~chunk:1 pool ~n:fine_tasks ~init:0.0
             ~combine:( +. ) fine_task);
        Core.Pool.stats pool)
  in
  let time_at jobs row = List.assoc jobs row.times in
  let speedup4 row = time_at 1 row /. Float.max (time_at 4 row) 1e-9 in
  Printf.printf "detected cores: %d\n" cores;
  Printf.printf "%-38s %9s %9s %9s %9s %10s\n" "workload" "jobs=1" "jobs=2"
    "jobs=4" "speedup" "identical";
  List.iter
    (fun row ->
      Printf.printf "%-38s %8.3fs %8.3fs %8.3fs %8.2fx %10s\n" row.workload
        (time_at 1 row) (time_at 2 row) (time_at 4 row) (speedup4 row)
        (if row.identical then "yes" else "NO"))
    (rows @ [ fine_row ]);
  Printf.printf
    "fine-grained runtime counters at jobs=4: %d steals, %d parks, max \
     deque depth %d\n"
    fine_stats.Core.Pool.steals fine_stats.Core.Pool.parks
    fine_stats.Core.Pool.max_deque_depth;
  let all_identical = List.for_all (fun r -> r.identical) (rows @ [ fine_row ]) in
  let best_speedup =
    List.fold_left (fun acc r -> Float.max acc (speedup4 r)) 0.0 rows
  in
  let fine_speedup = speedup4 fine_row in
  (* The >= 2x assertion only means something when the machine has cores to
     scale onto; on fewer than 4 cores it is reported as SKIP — with the
     host core count and an explicit reason recorded, so the perf
     trajectory can tell "1-core host" apart from "regression". *)
  let skip = cores < 4 in
  let skip_reason = if skip then Some (skip_reason_of_cores cores) else None in
  let verdict s = if skip then "SKIP" else if s >= 2.0 then "PASS" else "FAIL" in
  let speedup_verdict = verdict best_speedup in
  let fine_verdict = verdict fine_speedup in
  let pp_verdict v =
    match skip_reason with Some r -> Printf.sprintf "%s (%s)" v r | None -> v
  in
  Printf.printf "determinism across pool sizes: %s\n"
    (if all_identical then "[PASS] bit-identical at jobs 1/2/4" else "[FAIL]");
  Printf.printf "coarse speedup at 4 domains (best %.2fx, >= 2x target): %s\n"
    best_speedup (pp_verdict speedup_verdict);
  Printf.printf "fine-grained speedup at 4 domains (%.2fx, >= 2x target): %s\n"
    fine_speedup (pp_verdict fine_verdict);
  let json_opt_string oc = function
    | Some s -> Printf.fprintf oc "%S" s
    | None -> Printf.fprintf oc "null"
  in
  let oc = open_out "BENCH_parallel.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc
        "{\n  \"cores\": %d,\n  \"host_cores\": %d,\n  \"jobs\": [1, 2, 4],\n"
        cores cores;
      Printf.fprintf oc "  \"workloads\": [\n";
      List.iteri
        (fun i row ->
          Printf.fprintf oc
            "    {\"name\": %S, \"wall_s\": [%.4f, %.4f, %.4f], \"speedup4\": \
             %.3f, \"identical\": %b}%s\n"
            row.workload (time_at 1 row) (time_at 2 row) (time_at 4 row)
            (speedup4 row) row.identical
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Printf.fprintf oc "  ],\n";
      Printf.fprintf oc
        "  \"fine_grained\": {\"name\": %S, \"tasks\": %d, \"wall_s\": [%.4f, \
         %.4f, %.4f], \"speedup4\": %.3f, \"identical\": %b, \"steals4\": %d, \
         \"parks4\": %d, \"deque_max_depth4\": %d, \"speedup_check\": %S, \
         \"skip_reason\": "
        fine_row.workload fine_tasks (time_at 1 fine_row) (time_at 2 fine_row)
        (time_at 4 fine_row) fine_speedup fine_row.identical
        fine_stats.Core.Pool.steals fine_stats.Core.Pool.parks
        fine_stats.Core.Pool.max_deque_depth fine_verdict;
      json_opt_string oc skip_reason;
      Printf.fprintf oc "},\n";
      Printf.fprintf oc "  \"identical\": %b,\n" all_identical;
      Printf.fprintf oc "  \"best_speedup4\": %.3f,\n" best_speedup;
      Printf.fprintf oc "  \"speedup_target\": 2.0,\n";
      Printf.fprintf oc "  \"speedup_check\": %S,\n" speedup_verdict;
      Printf.fprintf oc "  \"skip_reason\": ";
      json_opt_string oc skip_reason;
      Printf.fprintf oc "\n}\n");
  Printf.printf "wrote BENCH_parallel.json\n";
  announce_json "BENCH_parallel.json";
  if not all_identical then exit 1

(* ----------------------------------------------------------------------- *)
(* 4. Kernel speedup — blocked flat-storage linalg vs naive reference       *)
(* ----------------------------------------------------------------------- *)

(* In-bench transcription of the pre-blocking kernels: unblocked
   right-looking LU driven through the bounds-checked Matrix.get/set
   interface, and the influence matrix built as one unit solve per
   column. test_kernels.ml proves the blocked kernels compute the *same*
   floats; this section prices the difference. The acceptance gate is a
   >= 2x speedup on LU factorization and on the batched influence build
   at n >= 64; smaller sizes are reported for the trend but SKIPped by
   the gate (they fit in L1 either way, so blocking buys little). *)
module Naive_lu = struct
  type t = { lu : Core.Matrix.t; perm : int array }

  let factor a =
    let n = Core.Matrix.rows a in
    let lu = Core.Matrix.copy a in
    let perm = Array.init n (fun i -> i) in
    for k = 0 to n - 1 do
      let pivot_row = ref k in
      for i = k + 1 to n - 1 do
        if
          Float.abs (Core.Matrix.get lu i k)
          > Float.abs (Core.Matrix.get lu !pivot_row k)
        then pivot_row := i
      done;
      if !pivot_row <> k then begin
        for j = 0 to n - 1 do
          let tmp = Core.Matrix.get lu k j in
          Core.Matrix.set lu k j (Core.Matrix.get lu !pivot_row j);
          Core.Matrix.set lu !pivot_row j tmp
        done;
        let tmp = perm.(k) in
        perm.(k) <- perm.(!pivot_row);
        perm.(!pivot_row) <- tmp
      end;
      let pivot = Core.Matrix.get lu k k in
      for i = k + 1 to n - 1 do
        let factor = Core.Matrix.get lu i k /. pivot in
        Core.Matrix.set lu i k factor;
        for j = k + 1 to n - 1 do
          Core.Matrix.set lu i j
            (Core.Matrix.get lu i j -. (factor *. Core.Matrix.get lu k j))
        done
      done
    done;
    { lu; perm }

  let solve_factored { lu; perm } b =
    let n = Core.Matrix.rows lu in
    let x = Array.init n (fun i -> b.(perm.(i))) in
    for i = 1 to n - 1 do
      for j = 0 to i - 1 do
        x.(i) <- x.(i) -. (Core.Matrix.get lu i j *. x.(j))
      done
    done;
    for i = n - 1 downto 0 do
      for j = i + 1 to n - 1 do
        x.(i) <- x.(i) -. (Core.Matrix.get lu i j *. x.(j))
      done;
      x.(i) <- x.(i) /. Core.Matrix.get lu i i
    done;
    x

  let unit_solutions f n =
    Array.init n (fun j ->
        let e = Array.make n 0.0 in
        e.(j) <- 1.0;
        solve_factored f e)
end

let kernel_speedups () =
  hr "Kernel speedup — blocked flat-storage linalg vs naive reference";
  let sizes = [ 16; 32; 64; 96 ] in
  (* Best-of-samples timing with enough inner iterations per sample to
     dwarf the timer resolution at the small sizes. *)
  let time_min ~iters f =
    let best = ref infinity in
    for _ = 1 to 7 do
      let t0 = Unix.gettimeofday () in
      for _ = 1 to iters do
        ignore (Sys.opaque_identity (f ()))
      done;
      best := Float.min !best ((Unix.gettimeofday () -. t0) /. float_of_int iters)
    done;
    !best
  in
  Printf.printf "%-6s %12s %12s %9s %12s %12s %9s %8s\n" "n" "factor old"
    "factor new" "speedup" "infl old" "infl new" "speedup" "gate";
  let rows =
    List.map
      (fun n ->
        let rng = Core.Rng.create (97 + n) in
        let a =
          Core.Matrix.init n n (fun i j ->
              if i = j then 10.0 +. Core.Rng.float rng 5.0
              else Core.Rng.uniform rng (-1.0) 1.0)
        in
        let iters = Stdlib.max 1 (20_000 / (n * n)) in
        let t_factor_old = time_min ~iters (fun () -> Naive_lu.factor a) in
        let t_factor_new = time_min ~iters (fun () -> Core.Lu.factor a) in
        let nf = Naive_lu.factor a and f = Core.Lu.factor a in
        let t_infl_old =
          time_min ~iters (fun () -> Naive_lu.unit_solutions nf n)
        in
        let t_infl_new = time_min ~iters (fun () -> Core.Lu.unit_solutions f) in
        let s_factor = t_factor_old /. Float.max t_factor_new 1e-12 in
        let s_infl = t_infl_old /. Float.max t_infl_new 1e-12 in
        let gate =
          if n < 64 then "SKIP"
          else if s_factor >= 2.0 && s_infl >= 2.0 then "PASS"
          else "FAIL"
        in
        Printf.printf "%-6d %11.1fus %11.1fus %8.2fx %11.1fus %11.1fus %8.2fx %8s\n"
          n (1e6 *. t_factor_old) (1e6 *. t_factor_new) s_factor
          (1e6 *. t_infl_old) (1e6 *. t_infl_new) s_infl gate;
        (n, t_factor_old, t_factor_new, s_factor, t_infl_old, t_infl_new, s_infl, gate))
      sizes
  in
  let gated = List.filter (fun (n, _, _, _, _, _, _, _) -> n >= 64) rows in
  let verdict =
    if gated = [] then "SKIP (no gated sizes)"
    else if
      List.for_all (fun (_, _, _, _, _, _, _, gate) -> gate = "PASS") gated
    then "PASS"
    else "FAIL"
  in
  Printf.printf "kernel speedup at n >= 64 (>= 2x target on both): %s\n" verdict;
  Printf.printf
    "flops counted so far: factor %d, solve %d, matmul %d (lu.solves %d, \
     batched %d)\n"
    (Core.Metricsreg.counter_value (Core.Metricsreg.counter "lu.factor_flops"))
    (Core.Metricsreg.counter_value (Core.Metricsreg.counter "lu.solve_flops"))
    (Core.Metricsreg.counter_value (Core.Metricsreg.counter "matrix.mul_flops"))
    (Core.Metricsreg.counter_value (Core.Metricsreg.counter "lu.solves"))
    (Core.Metricsreg.counter_value
       (Core.Metricsreg.counter "lu.batched_solves"));
  let oc = open_out "BENCH_kernels.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "{\n  \"speedup_target\": 2.0,\n  \"sizes\": [\n";
      List.iteri
        (fun i (n, fo, fn, sf, io, inew, si, gate) ->
          Printf.fprintf oc
            "    {\"n\": %d, \"factor_old_s\": %.8f, \"factor_new_s\": %.8f, \
             \"factor_speedup\": %.3f, \"influence_old_s\": %.8f, \
             \"influence_new_s\": %.8f, \"influence_speedup\": %.3f, \
             \"gate\": %S}%s\n"
            n fo fn sf io inew si gate
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Printf.fprintf oc "  ],\n  \"speedup_check\": %S\n}\n" verdict);
  Printf.printf "wrote BENCH_kernels.json\n";
  announce_json "BENCH_kernels.json"

(* ----------------------------------------------------------------------- *)
(* 4b. Transient replay speedup                                             *)
(* ----------------------------------------------------------------------- *)

(* The seed transient path replayed a schedule by sampling its power
   profile on a uniform grid and integrating with RK4 (four full rhs
   rebuilds and a dense mat-vec per step, all freshly allocated). The
   event-driven engine turns the same replay into exact power breakpoints
   and one precomputed-propagator mat-vec per step. Both paths integrate
   the same periods at the same dt (the largest grid at which RK4 is still
   stable on this stiff system); the gate is >= 5x on the wall clock, with
   the per-PE peak agreement reported alongside. *)
let transient_speedup () =
  hr "Transient replay — event-driven engine vs the seed RK4 path";
  let time_min ~samples f =
    let best = ref infinity in
    let v = ref None in
    for _ = 1 to samples do
      let t0 = Unix.gettimeofday () in
      let r = Sys.opaque_identity (f ()) in
      best := Float.min !best (Unix.gettimeofday () -. t0);
      v := Some r
    done;
    (!best, Option.get !v)
  in
  let time_unit = 1e-3 and periods = 40 in
  Printf.printf "%-5s %9s %7s %10s %10s %10s %8s %9s %6s\n" "bench" "dt"
    "steps" "rk4" "bw-euler" "engine" "speedup" "Δpeak" "gate";
  let rows =
    List.map
      (fun bench ->
        let graph = Core.Benchmarks.load bench in
        let lib = Core.Catalog.platform_library () in
        let o =
          Core.Flow.run_platform ~graph ~lib ~policy:Core.Policy.Thermal_aware ()
        in
        let s = o.Core.Flow.schedule in
        let model = Core.Hotspot.model o.Core.Flow.hotspot in
        let n_pes = Core.Schedule.n_pes s in
        let profile = Core.Replay.of_schedule ~time_unit ~lib s in
        let period = Core.Transient.profile_duration profile in
        let t0 = Core.Transient.initial_ambient model in
        (* The seed sampling closure, as Metrics.transient_peak and the
           transient example used to build it. *)
        let power wall =
          Core.Metrics.power_profile s ~lib ~time:(Float.rem wall period /. time_unit)
        in
        let finite_rk4 dt =
          let steps = int_of_float (Float.ceil (2.0 *. period /. dt)) in
          let tr = Core.Transient.rk4 model ~power ~t0 ~dt ~steps in
          Array.for_all Float.is_finite tr.Core.Transient.temps.(steps)
        in
        (* Largest stable RK4 grid: start at the engine's default replay
           resolution and halve until the explicit integrator survives. *)
        let dt = ref (period /. 100.0) in
        while (not (finite_rk4 !dt)) && !dt > period /. 204_800.0 do
          dt := !dt /. 2.0
        done;
        let dt = !dt in
        let steps = int_of_float (Float.ceil (float_of_int periods *. period /. dt)) in
        let last_period_peak (tr : Core.Transient.trace) =
          let start_k = Stdlib.max 0 (steps - int_of_float (period /. dt)) in
          Array.init n_pes (fun pe ->
              let peak = ref neg_infinity in
              for k = start_k to steps do
                peak := Float.max !peak tr.Core.Transient.temps.(k).(pe)
              done;
              !peak)
        in
        let t_rk4, peak_rk4 =
          time_min ~samples:3 (fun () ->
              last_period_peak (Core.Transient.rk4 model ~power ~t0 ~dt ~steps))
        in
        let t_be, _ =
          time_min ~samples:3 (fun () ->
              last_period_peak
                (Core.Transient.backward_euler model ~power ~t0 ~dt ~steps))
        in
        let t_engine, peak_engine =
          time_min ~samples:3 (fun () ->
              (* A fresh engine per run: factorization, propagator build and
                 q precomputation are all inside the measurement. *)
              let engine = Core.Transient.create (Core.Transient.of_model model) in
              let r = Core.Transient.replay engine ~profile ~t0 ~dt ~periods in
              Array.sub r.Core.Transient.last_period_peak 0 n_pes)
        in
        let speedup = t_rk4 /. Float.max t_engine 1e-12 in
        let delta =
          let d = ref 0.0 in
          Array.iteri
            (fun pe p -> d := Float.max !d (Float.abs (p -. peak_engine.(pe))))
            peak_rk4;
          !d
        in
        let gate = if speedup >= 5.0 then "PASS" else "FAIL" in
        Printf.printf "%-5s %8.2gs %7d %9.1fms %9.1fms %9.1fms %7.1fx %8.3f°C %6s\n"
          (Core.Graph.name graph) dt steps (1e3 *. t_rk4) (1e3 *. t_be)
          (1e3 *. t_engine) speedup delta gate;
        (Core.Graph.name graph, dt, steps, t_rk4, t_be, t_engine, speedup, delta, gate))
      [ 0; 2 ]
  in
  let verdict =
    if List.for_all (fun (_, _, _, _, _, _, _, _, g) -> g = "PASS") rows then "PASS"
    else "FAIL"
  in
  Printf.printf "transient replay speedup (>= 5x target vs seed RK4): %s\n" verdict;
  let oc = open_out "BENCH_transient.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "{\n  \"speedup_target\": 5.0,\n  \"benches\": [\n";
      List.iteri
        (fun i (name, dt, steps, rk4, be, engine, speedup, delta, gate) ->
          Printf.fprintf oc
            "    {\"bench\": %S, \"dt_s\": %.8f, \"steps\": %d, \"rk4_s\": \
             %.6f, \"backward_euler_s\": %.6f, \"engine_s\": %.6f, \
             \"speedup_vs_rk4\": %.2f, \"max_peak_delta_C\": %.6f, \"gate\": \
             %S}%s\n"
            name dt steps rk4 be engine speedup delta gate
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Printf.fprintf oc "  ],\n  \"speedup_check\": %S\n}\n" verdict);
  Printf.printf "wrote BENCH_transient.json\n";
  announce_json "BENCH_transient.json"

(* ----------------------------------------------------------------------- *)
(* 4c. Online scheduling — event-loop throughput and competitive ratios     *)
(* ----------------------------------------------------------------------- *)

(* The online event loop replans at every release, so its cost is measured
   in scheduling decisions per second (one decision = one committed task),
   not in schedules per second. Each scenario is scored against the
   clairvoyant offline baseline; the gate restates the subsystem's core
   guarantee — the clairvoyant never loses, so both empirical competitive
   ratios are >= 1 on every stream. *)
let online_bench () =
  hr "Online scheduling — event-loop throughput vs clairvoyant baseline";
  let lib = Core.Catalog.platform_library () in
  let pes = Core.Catalog.platform_instances 4 in
  let time_min ~samples f =
    let best = ref infinity in
    let v = ref None in
    for _ = 1 to samples do
      let t0 = Unix.gettimeofday () in
      let r = Sys.opaque_identity (f ()) in
      best := Float.min !best (Unix.gettimeofday () -. t0);
      v := Some r
    done;
    (!best, Option.get !v)
  in
  let scenarios =
    [
      (0, Core.Flow.Release_sporadic 1, Core.Online.Mirror Core.Policy.Baseline);
      (0, Core.Flow.Release_sporadic 1, Core.Online.Mirror Core.Policy.Thermal_aware);
      ( 0,
        Core.Flow.Release_sporadic 1,
        Core.Online.Reactive
          { Core.Online.default_reactive with Core.Online.trigger = 50.0 } );
      (1, Core.Flow.Release_sporadic 2, Core.Online.Mirror Core.Policy.Thermal_aware);
      (2, Core.Flow.Release_trace, Core.Online.Mirror Core.Policy.Thermal_aware);
    ]
  in
  Printf.printf "%-6s %-9s %-9s %9s %12s %8s %8s %6s\n" "bench" "arrivals"
    "policy" "decisions" "decisions/s" "mkspn r" "peak r" "gate";
  let rows =
    List.map
      (fun (bench, arrivals, policy) ->
        let graph = Core.Benchmarks.load bench in
        let o = Core.Flow.run_online ~arrivals ~graph ~lib ~policy () in
        let st = o.Core.Flow.online.Core.Online.stats in
        (* Throughput of the event loop alone — arrivals, platform and
           facade held fixed, so the clairvoyant baseline and the Replay
           scoring stay out of the measurement. *)
        let run_wall, _ =
          time_min ~samples:5 (fun () ->
              Core.Online.run ~hotspot:o.Core.Flow.online_hotspot
                ~arrivals:o.Core.Flow.online.Core.Online.arrivals ~graph ~lib
                ~pes ~policy ())
        in
        let dps = float_of_int st.Core.Online.decisions /. Float.max run_wall 1e-9 in
        let sc = o.Core.Flow.score in
        let gate =
          if
            sc.Core.Online.makespan_ratio >= 1.0
            && sc.Core.Online.peak_ratio >= 1.0
          then "PASS"
          else "FAIL"
        in
        Printf.printf "%-6s %-9s %-9s %9d %12.0f %8.4f %8.4f %6s\n"
          (Core.Graph.name graph)
          (Core.Flow.arrival_source_name arrivals)
          (Core.Online.policy_name policy)
          st.Core.Online.decisions dps sc.Core.Online.makespan_ratio
          sc.Core.Online.peak_ratio gate;
        ( Core.Graph.name graph,
          Core.Flow.arrival_source_name arrivals,
          Core.Online.policy_name policy,
          st,
          run_wall,
          dps,
          sc,
          gate ))
      scenarios
  in
  let verdict =
    if List.for_all (fun (_, _, _, _, _, _, _, g) -> g = "PASS") rows then "PASS"
    else "FAIL"
  in
  Printf.printf
    "clairvoyant never loses (both ratios >= 1 on every stream): %s\n" verdict;
  let oc = open_out "BENCH_online.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "{\n  \"ratio_floor\": 1.0,\n  \"scenarios\": [\n";
      List.iteri
        (fun i (bench, arrivals, policy, st, run_wall, dps, sc, gate) ->
          Printf.fprintf oc
            "    {\"bench\": %S, \"arrivals\": %S, \"policy\": %S, \
             \"events\": %d, \"decisions\": %d, \"deferrals\": %d, \
             \"run_wall_s\": %.6f, \"decisions_per_sec\": %.1f, \
             \"makespan_ratio\": %.6f, \"peak_ratio\": %.6f, \"gate\": %S}%s\n"
            bench arrivals policy st.Core.Online.events
            st.Core.Online.decisions st.Core.Online.deferrals run_wall dps
            sc.Core.Online.makespan_ratio sc.Core.Online.peak_ratio gate
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Printf.fprintf oc "  ],\n  \"ratio_check\": %S\n}\n" verdict);
  Printf.printf "wrote BENCH_online.json\n";
  announce_json "BENCH_online.json"

(* ----------------------------------------------------------------------- *)
(* 5. Serving throughput — in-process tatsd under a concurrent load        *)
(* ----------------------------------------------------------------------- *)

(* Load generator: [clients] threads, one connection each, every thread
   issuing [per_client] requests back to back.  Per-thread ok/error slots
   need no locking; the wall clock covers connect-to-join. *)
let serve_load ~socket ~clients ~per_client ~make_req =
  let oks = Array.make clients 0 and errs = Array.make clients 0 in
  let body ci =
    Core.Serve.Client.with_client socket @@ fun c ->
    for k = 0 to per_client - 1 do
      match Core.Serve.Client.request c (make_req ci k) with
      | Ok reply when Core.Serve.Protocol.reply_ok reply ->
          oks.(ci) <- oks.(ci) + 1
      | Ok _ | Error _ -> errs.(ci) <- errs.(ci) + 1
    done
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init clients (fun ci -> Thread.create body ci) in
  List.iter Thread.join threads;
  ( Unix.gettimeofday () -. t0,
    Array.fold_left ( + ) 0 oks,
    Array.fold_left ( + ) 0 errs )

let serve_throughput () =
  hr "Serving throughput — in-process tatsd under concurrent clients";
  let module Server = Core.Serve.Server in
  let module Protocol = Core.Serve.Protocol in
  let module Engines = Core.Serve.Engines in
  let cores = Domain.recommended_domain_count () in
  let jobs = Core.Pool.jobs (Core.Pool.default ()) in
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tats-bench-%d.sock" (Unix.getpid ()))
  in
  let server =
    Server.create
      { Server.default_config with socket_path = socket; max_queue = 256 }
  in
  Fun.protect ~finally:(fun () -> Server.stop_and_wait server)
  @@ fun () ->
  let policies = [| "baseline"; "h1"; "h2"; "h3"; "thermal" |] in
  let schedule_req i =
    let policy =
      Option.get (Core.Policy.of_name policies.(i mod Array.length policies))
    in
    Protocol.request
      (Protocol.Schedule
         {
           Protocol.bench = 0;
           policy;
           arch = Protocol.Platform;
           n_pes = 4;
           platform = None;
           pins = [];
           isolation = [];
         })
  in
  (* A small pool of repeated power vectors: every vector recurs across
     clients, so the quantized-power cache sees cross-request repeats. *)
  let n_vectors = 16 in
  let inquiry_req ci k =
    let v = (ci + (k * 5)) mod n_vectors in
    let power = Array.init 4 (fun p -> 0.4 +. (0.03 *. float_of_int (v + p))) in
    Protocol.request
      (Protocol.Inquiry { Protocol.n_pes = 4; power; idle = Array.make 4 0.1 })
  in
  (* Warm: the full schedule mix once, so the 1-client / 4-client runs
     below compare at equal cache warmth. *)
  let sched_total = 8 in
  let _, warm_ok, warm_err =
    serve_load ~socket ~clients:1 ~per_client:sched_total
      ~make_req:(fun _ k -> schedule_req k)
  in
  let sched_wall_1, ok_1, err_1 =
    serve_load ~socket ~clients:1 ~per_client:sched_total
      ~make_req:(fun _ k -> schedule_req k)
  in
  let sched_wall_4, ok_4, err_4 =
    serve_load ~socket ~clients:4
      ~per_client:(sched_total / 4)
      ~make_req:(fun ci k -> schedule_req ((ci * (sched_total / 4)) + k))
  in
  let conc_speedup = sched_wall_1 /. Float.max sched_wall_4 1e-9 in
  (* Inquiry throughput: latency percentiles come from the server's own
     serve.latency_s histogram, reset so it covers exactly this run. *)
  let latency = Core.Metricsreg.histogram "serve.latency_s" in
  Core.Metricsreg.reset_histogram latency;
  let inq_clients = 4 and inq_per_client = 200 in
  let inq_wall, inq_ok, inq_err =
    serve_load ~socket ~clients:inq_clients ~per_client:inq_per_client
      ~make_req:inquiry_req
  in
  let inq_total = inq_clients * inq_per_client in
  let req_per_s = float_of_int inq_total /. Float.max inq_wall 1e-9 in
  let s = Core.Metricsreg.summary latency in
  let es = Engines.stats (Server.engines server) in
  let hit_rate = Engines.hit_rate es in
  let total_errs = warm_err + err_1 + err_4 + inq_err in
  let total_oks = warm_ok + ok_1 + ok_4 + inq_ok in
  let skip = cores < 4 in
  let skip_reason = if skip then Some (skip_reason_of_cores cores) else None in
  let conc_verdict =
    if skip then "SKIP" else if conc_speedup >= 1.2 then "PASS" else "FAIL"
  in
  let cache_verdict = if hit_rate > 0.0 then "PASS" else "FAIL" in
  Printf.printf "detected cores: %d, pool jobs: %d\n" cores jobs;
  Printf.printf "replies: %d ok, %d errors\n" total_oks total_errs;
  Printf.printf
    "schedule mix (%d requests, warm): 1 client %.3fs, 4 clients %.3fs — \
     %.2fx concurrency speedup (>= 1.2x target): %s%s\n"
    sched_total sched_wall_1 sched_wall_4 conc_speedup conc_verdict
    (match skip_reason with Some r -> " (" ^ r ^ ")" | None -> "");
  Printf.printf
    "inquiry load: %d clients x %d requests in %.3fs = %.0f req/s\n"
    inq_clients inq_per_client inq_wall req_per_s;
  Printf.printf "request latency: p50 %.3g ms, p95 %.3g ms, p99 %.3g ms\n"
    (s.Core.Metricsreg.p50 *. 1e3)
    (s.Core.Metricsreg.p95 *. 1e3)
    (s.Core.Metricsreg.p99 *. 1e3);
  Printf.printf
    "cross-request inquiry cache: %d inquiries, %d hits (%.1f%%, > 0 gate): \
     %s\n"
    es.Engines.inquiries es.Engines.cache_hits (100.0 *. hit_rate)
    cache_verdict;
  let json_opt_string oc = function
    | Some r -> Printf.fprintf oc "%S" r
    | None -> Printf.fprintf oc "null"
  in
  let oc = open_out "BENCH_serve.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "{\n  \"cores\": %d,\n  \"host_cores\": %d,\n" cores
        cores;
      Printf.fprintf oc "  \"jobs\": %d,\n" jobs;
      Printf.fprintf oc "  \"replies_ok\": %d,\n  \"replies_error\": %d,\n"
        total_oks total_errs;
      Printf.fprintf oc
        "  \"schedule\": {\"requests\": %d, \"wall_1client_s\": %.4f, \
         \"wall_4clients_s\": %.4f, \"concurrency_speedup\": %.3f, \
         \"speedup_target\": 1.2, \"speedup_check\": %S, \"skip_reason\": "
        sched_total sched_wall_1 sched_wall_4 conc_speedup conc_verdict;
      json_opt_string oc skip_reason;
      Printf.fprintf oc "},\n";
      Printf.fprintf oc
        "  \"inquiry\": {\"clients\": %d, \"requests\": %d, \"wall_s\": \
         %.4f, \"req_per_s\": %.1f, \"latency_ms\": {\"count\": %d, \"p50\": \
         %.4f, \"p95\": %.4f, \"p99\": %.4f}},\n"
        inq_clients inq_total inq_wall req_per_s s.Core.Metricsreg.count
        (s.Core.Metricsreg.p50 *. 1e3)
        (s.Core.Metricsreg.p95 *. 1e3)
        (s.Core.Metricsreg.p99 *. 1e3);
      Printf.fprintf oc
        "  \"cache\": {\"engines\": %d, \"inquiries\": %d, \"hits\": %d, \
         \"hit_rate\": %.4f, \"check\": %S}\n}\n"
        es.Engines.engines es.Engines.inquiries es.Engines.cache_hits hit_rate
        cache_verdict);
  Printf.printf "wrote BENCH_serve.json\n";
  announce_json "BENCH_serve.json";
  if total_errs > 0 || hit_rate <= 0.0 then exit 1

(* ----------------------------------------------------------------------- *)
(* 6. Campaign runner — sharded resumable sweeps at the 1000-cell scale    *)
(* ----------------------------------------------------------------------- *)

(* Three measurements on the campaign runner:
   - cells/sec on the pinned golden spec at pool jobs 1/2/4, with the
     manifests of all three runs byte-compared (the runner's determinism
     contract in bench form);
   - the sweep1k builtin (1080 cells) run uninterrupted, then a second
     directory taken through interrupt simulation — one shard of three,
     one artifact truncated mid-"write" — and resumed, with the final
     manifests byte-compared;
   - a no-op resume over the complete 1080-cell store, gated at < 25% of
     the full compute wall (validate-and-skip must stay cheap or resuming
     a mostly-done campaign would not be worth it). *)
let campaign_bench () =
  hr "Campaign runner — resumable sweeps, content-addressed artifacts";
  let module C = Core.Campaign in
  let scratch name =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tats-campaign-bench-%d-%s" (Unix.getpid ()) name)
  in
  let manifest_bytes dir =
    Option.value ~default:"" (Core.Fsio.read_file (C.manifest_path dir))
  in
  (* jobs scaling on the 12-cell golden spec *)
  let small = Option.get (C.builtin "golden") in
  let small_rows =
    List.map
      (fun jobs ->
        let dir = scratch (Printf.sprintf "jobs%d" jobs) in
        Core.Fsio.remove_recursive dir;
        let t0 = Unix.gettimeofday () in
        let r = Core.Pool.with_pool ~jobs (fun pool -> C.run ~pool ~dir small) in
        let wall = Unix.gettimeofday () -. t0 in
        (jobs, dir, r, wall, float_of_int r.C.total /. Float.max wall 1e-9))
      [ 1; 2; 4 ]
  in
  let jobs_identical =
    match small_rows with
    | (_, d0, _, _, _) :: rest ->
        let m0 = manifest_bytes d0 in
        (not (String.equal m0 ""))
        && List.for_all
             (fun (_, d, _, _, _) -> String.equal m0 (manifest_bytes d))
             rest
    | [] -> false
  in
  Printf.printf "%-22s %6s %9s %12s\n" "spec" "jobs" "wall s" "cells/sec";
  List.iter
    (fun (jobs, _, (r : C.run_report), wall, cps) ->
      Printf.printf "%-22s %6d %9.3f %12.1f\n"
        (Printf.sprintf "golden (%d cells)" r.C.total)
        jobs wall cps)
    small_rows;
  Printf.printf "manifests byte-identical across jobs 1/2/4: %s\n"
    (if jobs_identical then "PASS" else "FAIL");
  (* the >= 1000-cell scale run, interrupt simulation and resume *)
  let sweep = Option.get (C.builtin "sweep1k") in
  let dir_full = scratch "full" and dir_int = scratch "interrupted" in
  Core.Fsio.remove_recursive dir_full;
  Core.Fsio.remove_recursive dir_int;
  let t0 = Unix.gettimeofday () in
  let r_full =
    Core.Pool.with_pool ~jobs:4 (fun pool -> C.run ~pool ~dir:dir_full sweep)
  in
  let full_wall = Unix.gettimeofday () -. t0 in
  let full_cps = float_of_int r_full.C.total /. Float.max full_wall 1e-9 in
  Printf.printf "%-22s %6d %9.3f %12.1f\n"
    (Printf.sprintf "sweep1k (%d cells)" r_full.C.total)
    4 full_wall full_cps;
  ignore
    (Core.Pool.with_pool ~jobs:4 (fun pool ->
         C.run ~pool ~shards:3 ~shard:0 ~dir:dir_int sweep)
      : C.run_report);
  (* simulate a kill mid-write: truncate the first shard-0 artifact *)
  (let first_id = C.cell_id (List.hd (C.expand sweep)) in
   let path = C.artifact_path dir_int first_id in
   match Core.Fsio.read_file path with
   | Some bytes ->
       Core.Fsio.write_atomic path (String.sub bytes 0 (String.length bytes / 2))
   | None -> ());
  let t0 = Unix.gettimeofday () in
  let r_resume =
    Core.Pool.with_pool ~jobs:4 (fun pool -> C.run ~pool ~dir:dir_int sweep)
  in
  let resume_wall = Unix.gettimeofday () -. t0 in
  let resume_identical =
    (not (String.equal (manifest_bytes dir_full) ""))
    && String.equal (manifest_bytes dir_full) (manifest_bytes dir_int)
  in
  Printf.printf
    "interrupted at shard 0/3 (+1 truncated artifact), resume computed \
     %d/%d (%d invalid re-run) in %.3f s: manifest %s\n"
    r_resume.C.computed r_resume.C.total r_resume.C.invalid resume_wall
    (if resume_identical then "PASS (byte-identical)" else "FAIL");
  (* no-op resume overhead over the complete store *)
  let t0 = Unix.gettimeofday () in
  let r_noop = C.run ~dir:dir_full sweep in
  let noop_wall = Unix.gettimeofday () -. t0 in
  let overhead = noop_wall /. Float.max full_wall 1e-9 in
  let overhead_gate = r_noop.C.computed = 0 && overhead < 0.25 in
  Printf.printf
    "no-op resume (all %d cells reused): %.3f s = %.1f%% of full compute \
     (target < 25%%): %s\n"
    r_noop.C.reused noop_wall (100.0 *. overhead)
    (if overhead_gate then "PASS" else "FAIL");
  let oc = open_out "BENCH_campaign.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "{\n  \"jobs_scaling\": {\"cells\": %d, \"jobs\": [1, 2, 4],\n"
        (match small_rows with (_, _, r, _, _) :: _ -> r.C.total | [] -> 0);
      Printf.fprintf oc "    \"wall_s\": [%s],\n"
        (String.concat ", "
           (List.map (fun (_, _, _, w, _) -> Printf.sprintf "%.6f" w) small_rows));
      Printf.fprintf oc "    \"cells_per_sec\": [%s],\n"
        (String.concat ", "
           (List.map (fun (_, _, _, _, c) -> Printf.sprintf "%.1f" c) small_rows));
      Printf.fprintf oc "    \"manifest_identical\": %S},\n"
        (if jobs_identical then "PASS" else "FAIL");
      Printf.fprintf oc
        "  \"scale\": {\"cells\": %d, \"jobs\": 4, \"wall_s\": %.6f, \
         \"cells_per_sec\": %.1f,\n"
        r_full.C.total full_wall full_cps;
      Printf.fprintf oc
        "    \"interrupted_shard\": \"0/3\", \"resume_computed\": %d, \
         \"resume_invalid\": %d, \"resume_wall_s\": %.6f,\n"
        r_resume.C.computed r_resume.C.invalid resume_wall;
      Printf.fprintf oc "    \"resume_manifest_identical\": %S},\n"
        (if resume_identical then "PASS" else "FAIL");
      Printf.fprintf oc
        "  \"resume_overhead\": {\"noop_wall_s\": %.6f, \"fraction_of_full\": \
         %.4f, \"target\": 0.25, \"check\": %S}\n}\n"
        noop_wall overhead
        (if overhead_gate then "PASS" else "FAIL"));
  Printf.printf "wrote BENCH_campaign.json\n";
  announce_json "BENCH_campaign.json";
  List.iter (fun (_, d, _, _, _) -> Core.Fsio.remove_recursive d) small_rows;
  Core.Fsio.remove_recursive dir_full;
  Core.Fsio.remove_recursive dir_int;
  if not (jobs_identical && resume_identical && overhead_gate) then exit 1

(* ----------------------------------------------------------------------- *)
(* 6b. Heterogeneous platforms                                              *)
(* ----------------------------------------------------------------------- *)

(* Throughput of the typed-platform flow on the mixed big.LITTLE builtin
   (free and under pins + isolation), plus the gate the whole extension
   hangs on: the degenerate single-kind platform must reproduce the
   historical identical-cores flow bit for bit under every policy. *)
let hetero_bench () =
  hr "Heterogeneous platforms — typed-flow throughput and degeneracy gate";
  let graph = Core.Benchmarks.load 0 in
  let platform = Option.get (Core.Catalog.platform_named "biglittle4") in
  let lib = Core.Catalog.library_for platform in
  let throughput name constraints =
    let flow () =
      ignore
        (Core.Flow.run_platform ~platform ~constraints ~graph ~lib
           ~policy:Core.Policy.Thermal_aware ()
          : Core.Flow.outcome)
    in
    flow () (* warm the factorization caches once *);
    let reps = 10 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      flow ()
    done;
    let wall = Unix.gettimeofday () -. t0 in
    let sps = float_of_int reps /. Float.max wall 1e-9 in
    Printf.printf "%-28s %6d reps %9.3f s %12.1f schedules/sec\n" name reps
      wall sps;
    sps
  in
  let free_sps = throughput "biglittle4 free" Core.Constraints.empty in
  let pinned_sps =
    throughput "biglittle4 pinned+isolated"
      {
        Core.Constraints.pins = [ (0, Core.Constraints.To_kind 1) ];
        isolation = [ (1, 0); (2, 1) ];
      }
  in
  (* Degeneracy gate: typed std4 vs the historical path, all five
     policies, bit-compared on makespan/power/temperatures/cost. *)
  let std4 = Option.get (Core.Catalog.platform_named "std4") in
  let bits = Int64.bits_of_float in
  let degenerate_identical =
    List.for_all
      (fun policy ->
        let classic =
          Core.Flow.run_platform ~graph
            ~lib:(Core.Catalog.platform_library ())
            ~policy ()
        in
        let typed =
          Core.Flow.run_platform ~platform:std4 ~graph
            ~lib:(Core.Catalog.library_for std4) ~policy ()
        in
        bits classic.Core.Flow.schedule.Core.Schedule.makespan
        = bits typed.Core.Flow.schedule.Core.Schedule.makespan
        && bits classic.Core.Flow.row.Core.Metrics.total_power
           = bits typed.Core.Flow.row.Core.Metrics.total_power
        && bits classic.Core.Flow.row.Core.Metrics.max_temp
           = bits typed.Core.Flow.row.Core.Metrics.max_temp
        && bits classic.Core.Flow.row.Core.Metrics.avg_temp
           = bits typed.Core.Flow.row.Core.Metrics.avg_temp
        && bits classic.Core.Flow.arch_cost = bits typed.Core.Flow.arch_cost)
      Core.Policy.all
  in
  Printf.printf "degenerate std4 == identical-cores path (all policies): %s\n"
    (if degenerate_identical then "PASS (bit-identical)" else "FAIL");
  let oc = open_out "BENCH_hetero.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc
        "{\n\
        \  \"platform\": \"biglittle4\", \"policy\": \"thermal\",\n\
        \  \"free_schedules_per_sec\": %.1f,\n\
        \  \"constrained_schedules_per_sec\": %.1f,\n\
        \  \"degenerate_bit_identity\": %S\n\
         }\n"
        free_sps pinned_sps
        (if degenerate_identical then "PASS" else "FAIL"));
  Printf.printf "wrote BENCH_hetero.json\n";
  announce_json "BENCH_hetero.json";
  if not degenerate_identical then exit 1

(* ----------------------------------------------------------------------- *)
(* 7. Observability overhead                                                *)
(* ----------------------------------------------------------------------- *)

(* The tracing layer promises that a disabled [with_span] costs one atomic
   load — cheap enough for permanent residence on the hot paths. This
   section puts a number on that promise without needing a pre-PR build:
   measure the per-call cost of a disabled bracket and of a registry
   counter bump, count how many spans one thermal-ASP kernel would record
   when traced, and bound the disabled-mode overhead as
   span_count * (guard + counter) / kernel_wall. The <2% target is the
   acceptance bar for keeping the instrumentation always compiled in. *)
let observability_overhead () =
  hr "Observability overhead — disabled instrumentation on the thermal ASP";
  Core.Trace.reset ();
  (* Per-call cost of a disabled span bracket (atomic load + closure). *)
  let reps = 5_000_000 in
  let sink = ref 0 in
  let t0 = Unix.gettimeofday () in
  for i = 1 to reps do
    sink := Core.Trace.with_span "noop" (fun () -> !sink + i)
  done;
  let guard_ns = (Unix.gettimeofday () -. t0) /. float_of_int reps *. 1e9 in
  (* Per-call cost of an always-on registry counter bump. *)
  let c = Core.Metricsreg.counter "bench.overhead_probe" in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    Core.Metricsreg.incr c
  done;
  let incr_ns = (Unix.gettimeofday () -. t0) /. float_of_int reps *. 1e9 in
  (* The kernel: one thermal-aware ASP run, the span-densest path. *)
  let graph = Core.Benchmarks.load 0 in
  let lib = Core.Catalog.platform_library () in
  let pes = Core.Catalog.platform_instances 4 in
  let hotspot =
    Core.Hotspot.create
      (Core.Grid.layout
         (Array.init 4 (fun i ->
              Core.Block.make ~name:(Printf.sprintf "PE%d" i) ~area:1.6e-5 ())))
  in
  let kernel () =
    ignore
      (Core.List_sched.run ~hotspot ~graph ~lib ~pes
         ~policy:Core.Policy.Thermal_aware ())
  in
  kernel () (* warm the inquiry engine and cache once *);
  let kernel_reps = 5 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to kernel_reps do
    kernel ()
  done;
  let kernel_wall = (Unix.gettimeofday () -. t0) /. float_of_int kernel_reps in
  (* Count the spans the same kernel records when tracing is on. *)
  Core.Trace.start ();
  kernel ();
  Core.Trace.stop ();
  let spans = Core.Trace.span_count () in
  Core.Trace.reset ();
  let per_span_ns = guard_ns +. incr_ns in
  let overhead =
    float_of_int spans *. per_span_ns *. 1e-9 /. Float.max kernel_wall 1e-9
  in
  let verdict = if overhead < 0.02 then "PASS" else "FAIL" in
  Printf.printf "disabled with_span bracket: %.1f ns/call\n" guard_ns;
  Printf.printf "registry counter bump:      %.1f ns/call\n" incr_ns;
  Printf.printf "thermal ASP kernel:         %.4f s/run, %d spans when traced\n"
    kernel_wall spans;
  Printf.printf
    "estimated disabled-mode overhead: %.4f%% (< 2%% target: %s)\n"
    (100.0 *. overhead) verdict;
  let oc = open_out "BENCH_observability.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc
        "{\n\
        \  \"guard_ns\": %.2f,\n\
        \  \"counter_ns\": %.2f,\n\
        \  \"kernel_wall_s\": %.6f,\n\
        \  \"kernel_spans\": %d,\n\
        \  \"overhead_fraction\": %.6f,\n\
        \  \"overhead_target\": 0.02,\n\
        \  \"overhead_check\": %S\n\
         }\n"
        guard_ns incr_ns kernel_wall spans overhead verdict);
  Printf.printf "wrote BENCH_observability.json\n";
  announce_json "BENCH_observability.json"

(* ----------------------------------------------------------------------- *)
(* 6. Bechamel timing benches                                               *)
(* ----------------------------------------------------------------------- *)

let platform_hotspot () =
  Core.Hotspot.create
    (Core.Grid.layout
       (Array.init 4 (fun i ->
            Core.Block.make ~name:(Printf.sprintf "PE%d" i) ~area:1.6e-5 ())))

let timing_tests () =
  let platform_lib = Core.Catalog.platform_library () in
  let hetero_lib = Core.Catalog.default_library () in
  let bm1 = Core.Benchmarks.load 0 in
  let hotspot = platform_hotspot () in
  let steady = Core.Hotspot.solver hotspot in
  let power = [| 2.0; 6.0; 1.0; 3.0 |] in
  let grid32 =
    Core.Gridmodel.build ~nx:32 ~ny:32 Core.Package.default
      (Core.Hotspot.placement hotspot)
  in
  let pes = Core.Catalog.platform_instances 4 in
  let rng = Core.Rng.create 7 in
  let ga_blocks =
    Array.init 6 (fun i ->
        Core.Block.make ~name:(Printf.sprintf "b%d" i)
          ~area:(Core.Rng.uniform rng 8e-6 2.5e-5)
          ())
  in
  let ga_area = Array.fold_left (fun a b -> a +. b.Core.Block.area) 0.0 ga_blocks in
  [
    (* One experiment kernel per table: a representative cell each. *)
    Test.make ~name:"table1-cell (Bm1 cosynth h3)"
      (Staged.stage (fun () ->
           Core.Experiments.run_one ~arch:Core.Experiments.Cosynthesis
             ~policy:(Core.Policy.Power_aware Core.Policy.Min_task_energy) ~bench:0));
    Test.make ~name:"table2-cell (Bm1 cosynth thermal)"
      (Staged.stage (fun () ->
           Core.Experiments.run_one ~arch:Core.Experiments.Cosynthesis
             ~policy:Core.Policy.Thermal_aware ~bench:0));
    Test.make ~name:"table3-cell (Bm1 platform thermal)"
      (Staged.stage (fun () ->
           Core.Experiments.run_one ~arch:Core.Experiments.Platform
             ~policy:Core.Policy.Thermal_aware ~bench:0));
    (* Figure-1 flows. *)
    Test.make ~name:"figure1a (cosynthesis flow)"
      (Staged.stage (fun () ->
           Core.Flow.run_cosynthesis ~graph:bm1 ~lib:hetero_lib
             ~policy:Core.Policy.Baseline ()));
    Test.make ~name:"figure1b (platform flow)"
      (Staged.stage (fun () ->
           Core.Flow.run_platform ~graph:bm1 ~lib:platform_lib
             ~policy:Core.Policy.Baseline ()));
    (* Micro-benchmarks of the hot paths. *)
    Test.make ~name:"steady solve (6-node back-substitution)"
      (Staged.stage (fun () -> Core.Steady.block_temperatures steady ~power));
    Test.make ~name:"leakage fixed point"
      (Staged.stage (fun () ->
           Core.Steady.solve_with_leakage steady ~dynamic:power
             ~idle:[| 0.6; 0.6; 0.6; 0.6 |]));
    Test.make ~name:"grid CG solve (32x32)"
      (Staged.stage (fun () -> Core.Gridmodel.block_temperatures grid32 ~power));
    Test.make ~name:"ASP baseline (Bm1, 4 PEs)"
      (Staged.stage (fun () ->
           Core.List_sched.run ~graph:bm1 ~lib:platform_lib ~pes
             ~policy:Core.Policy.Baseline ()));
    Test.make ~name:"ASP thermal (Bm1, 4 PEs, inquiries)"
      (Staged.stage (fun () ->
           Core.List_sched.run ~hotspot ~graph:bm1 ~lib:platform_lib ~pes
             ~policy:Core.Policy.Thermal_aware ()));
    Test.make ~name:"GA floorplan (pop 24, 10 generations)"
      (Staged.stage (fun () ->
           Core.Ga.run
             ~params:{ Core.Ga.default_params with Core.Ga.generations = 10 }
             ~seed:42 ~blocks:ga_blocks
             ~cost:(Core.Flow.floorplan_cost ~blocks_area:ga_area)
             ()));
    Test.make ~name:"SA floorplan (default schedule)"
      (Staged.stage (fun () ->
           Core.Sa.run ~seed:42 ~blocks:ga_blocks
             ~cost:(Core.Flow.floorplan_cost ~blocks_area:ga_area)
             ()));
    Test.make ~name:"HEFT (Bm1, 4 PEs)"
      (Staged.stage (fun () -> Core.Heft.run ~graph:bm1 ~lib:platform_lib ~pes ()));
    Test.make ~name:"DVS reclaim (Bm1 baseline)"
      (Staged.stage
         (let s =
            Core.List_sched.run ~graph:bm1 ~lib:platform_lib ~pes
              ~policy:Core.Policy.Baseline ()
          in
          fun () -> Core.Dvs.reclaim ~lib:platform_lib s));
    Test.make ~name:"bus-contention ASP (Bm1, 4 PEs)"
      (Staged.stage (fun () ->
           Core.Bus_sched.run ~graph:bm1 ~lib:platform_lib ~pes
             ~policy:Core.Policy.Baseline ()));
    Test.make ~name:"stack solve (13-node)"
      (Staged.stage
         (let stack = Core.Stack.build (Core.Hotspot.placement hotspot) in
          fun () -> Core.Stack.block_temperatures stack ~power));
    Test.make ~name:"DTM simulate (Bm1, 10 passes)"
      (Staged.stage
         (let s =
            Core.List_sched.run ~graph:bm1 ~lib:platform_lib ~pes
              ~policy:Core.Policy.Baseline ()
          in
          let params = { Core.Dtm.default_params with Core.Dtm.passes = 10 } in
          fun () -> Core.Dtm.simulate ~params ~lib:platform_lib ~hotspot s));
    Test.make ~name:"Monte-Carlo (Bm1, 50 runs)"
      (Staged.stage
         (let s =
            Core.List_sched.run ~graph:bm1 ~lib:platform_lib ~pes
              ~policy:Core.Policy.Baseline ()
          in
          fun () ->
            Core.Montecarlo.analyze ~runs:50 ~seed:1 ~lib:platform_lib ~hotspot s));
    Test.make ~name:"linear clustering (Bm4)"
      (Staged.stage
         (let g = Core.Benchmarks.load 3 in
          fun () -> Core.Cluster.linear ~threshold:60.0 g));
  ]

let run_timings () =
  hr "Bechamel timings (one kernel per table/figure + hot paths)";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  Printf.printf "%-42s %14s %10s\n" "benchmark" "time/run" "r^2";
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg Instance.[ monotonic_clock ] elt in
          let est = Analyze.one ols Instance.monotonic_clock raw in
          let nanos =
            match Analyze.OLS.estimates est with Some (t :: _) -> t | _ -> nan
          in
          let pretty =
            if nanos > 1e9 then Printf.sprintf "%8.2f  s" (nanos /. 1e9)
            else if nanos > 1e6 then Printf.sprintf "%8.2f ms" (nanos /. 1e6)
            else if nanos > 1e3 then Printf.sprintf "%8.2f us" (nanos /. 1e3)
            else Printf.sprintf "%8.0f ns" nanos
          in
          let r2 =
            match Analyze.OLS.r_square est with Some r -> r | None -> nan
          in
          Printf.printf "%-42s %14s %10.4f\n%!" (Test.Elt.name elt) pretty r2)
        (Test.elements test))
    (timing_tests ())

let () =
  validate_only_phases ();
  let tables_only = Array.exists (( = ) "--tables-only") Sys.argv in
  let flag_value name =
    let v = ref None in
    Array.iteri
      (fun i arg ->
        if arg = name && i + 1 < Array.length Sys.argv then
          v := Some Sys.argv.(i + 1))
      Sys.argv;
    !v
  in
  (* --jobs N sizes the default pool used by the table phase; the scaling
     section always measures explicit 1/2/4-domain pools. *)
  (match flag_value "--jobs" with
  | None -> ()
  | Some j -> (
      match int_of_string_opt j with
      | Some j -> Core.Pool.set_default_jobs j
      | None ->
          prerr_endline "bench: --jobs expects an integer";
          exit 2));
  let trace_path = flag_value "--trace" in
  let metrics_path = flag_value "--metrics" in
  (match trace_path with Some _ -> Core.Trace.start () | None -> ());
  timed_phase "tables" (fun () -> ignore (regenerate_tables ()));
  timed_phase "figure1" figure1_flows;
  timed_phase "ablation-weight-sweep" ablation_weight_sweep;
  timed_phase "ablation-leakage" ablation_leakage;
  timed_phase "ablation-ga-effort" ablation_ga_effort;
  timed_phase "ablation-solvers" ablation_solvers;
  timed_phase "ablation-floorplanners" ablation_floorplanners;
  timed_phase "ablation-mappers" ablation_mappers;
  timed_phase "ablation-dvs" ablation_dvs;
  timed_phase "ablation-bus" ablation_bus;
  timed_phase "ablation-stack" ablation_stack;
  timed_phase "ablation-clustering" ablation_clustering;
  timed_phase "ablation-refinement" ablation_refinement;
  timed_phase "ablation-dtm" ablation_dtm;
  timed_phase "ablation-montecarlo" ablation_montecarlo;
  timed_phase "design-space" design_space_exploration;
  timed_phase "parallel-scaling" parallel_scaling;
  timed_phase "kernels" kernel_speedups;
  timed_phase "transient" transient_speedup;
  timed_phase "online" online_bench;
  timed_phase "serve" serve_throughput;
  timed_phase "campaign" campaign_bench;
  timed_phase "hetero" hetero_bench;
  (* The overhead probe resets the trace, so a --trace run exports what
     was recorded up to here. *)
  (match trace_path with
  | Some path ->
      Core.Trace.stop ();
      Core.Trace.export_chrome path;
      Printf.printf "wrote %d spans to %s\n" (Core.Trace.span_count ()) path;
      announce_json path
  | None -> ());
  timed_phase "observability-overhead" observability_overhead;
  if not tables_only then timed_phase "timings" run_timings;
  write_phases ();
  (match metrics_path with
  | Some path ->
      Core.Metricsreg.export path;
      Printf.printf "wrote metrics to %s\n" path;
      announce_json path
  | None -> ());
  print_newline ()
