(* Hierarchical span tracing with a Chrome trace_event exporter.

   Design constraints, in decreasing order of importance:

   - Disabled is free: every entry point first reads one atomic flag and
     bails.  [with_span] costs a closure allocation plus that load — a few
     nanoseconds — so instrumentation can live permanently on hot paths
     (per scheduling step, per inquiry solve) without perturbing tier-1
     timings.  Disabled tracing allocates no spans and writes no state.

   - Domain-safe without a hot lock: every domain accumulates completed
     spans in its own domain-local buffer (registered once, under the
     global registry mutex).  Recording a span touches no shared state, so
     tracing composes with [Pool] workers; the export walks all buffers.

   - Nesting by construction: spans are recorded as Chrome "X" (complete)
     events carrying begin-timestamp and duration; per thread-id they nest
     by time containment, which the domain-local span stack guarantees. *)

type value = Str of string | Int of int | Float of float | Bool of bool

type span = {
  name : string;
  ts : float; (* seconds since trace start *)
  dur : float;
  tid : int; (* domain id *)
  args : (string * value) list;
}

(* An open span: pushed on the domain-local stack by [with_span], filled by
   [add_attr], turned into a [span] when its thunk returns. *)
type frame = { fname : string; t0 : float; mutable fargs : (string * value) list }

type dstate = {
  tid : int;
  mutable gen : int; (* trace generation this buffer belongs to *)
  mutable stack : frame list;
  mutable spans : span list; (* completed, most recent first *)
  mutable n_spans : int;
}

let enabled_flag = Atomic.make false
let generation = Atomic.make 0

(* Wall clock for spans and for callers that need to time work spread over
   several domains ([Inquiry]'s wall-time counter, [Pool]'s busy times).
   [Unix.gettimeofday] is the only sub-microsecond clock the stdlib + unix
   give us; unlike [Sys.time] it measures elapsed wall time, not the CPU
   time of every domain in the process, which is what makes per-domain
   accounting additive under a pool. *)
let now = Unix.gettimeofday

let t0 = ref (now ())

let registry_mutex = Mutex.create ()
let registry : dstate list ref = ref []

let fresh_dstate () =
  let d =
    {
      tid = (Domain.self () :> int);
      gen = Atomic.get generation;
      stack = [];
      spans = [];
      n_spans = 0;
    }
  in
  Mutex.lock registry_mutex;
  registry := d :: !registry;
  Mutex.unlock registry_mutex;
  d

let dls : dstate Domain.DLS.key = Domain.DLS.new_key fresh_dstate

(* A buffer left over from a previous trace run is lazily cleared the first
   time its domain records into the new generation. *)
let state () =
  let d = Domain.DLS.get dls in
  let gen = Atomic.get generation in
  if d.gen <> gen then begin
    d.gen <- gen;
    d.stack <- [];
    d.spans <- [];
    d.n_spans <- 0
  end;
  d

let enabled () = Atomic.get enabled_flag

let start () =
  Atomic.incr generation;
  t0 := now ();
  Atomic.set enabled_flag true

let stop () = Atomic.set enabled_flag false

let reset () =
  stop ();
  Atomic.incr generation

let record d frame =
  let t1 = now () -. !t0 in
  d.spans <-
    {
      name = frame.fname;
      ts = frame.t0;
      dur = t1 -. frame.t0;
      tid = d.tid;
      args = List.rev frame.fargs;
    }
    :: d.spans;
  d.n_spans <- d.n_spans + 1

let with_span ?(args = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let d = state () in
    let frame = { fname = name; t0 = now () -. !t0; fargs = List.rev args } in
    d.stack <- frame :: d.stack;
    let finish () =
      (match d.stack with
      | top :: rest when top == frame -> d.stack <- rest
      | _ -> (* unbalanced (exception skipped frames); drop down to ours *)
          let rec pop = function
            | top :: rest ->
                if top == frame then d.stack <- rest else pop rest
            | [] -> ()
          in
          pop d.stack);
      record d frame
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let add_attr key v =
  if Atomic.get enabled_flag then
    match (state ()).stack with
    | frame :: _ -> frame.fargs <- (key, v) :: frame.fargs
    | [] -> ()

let span_count () =
  Mutex.lock registry_mutex;
  let ds = !registry in
  Mutex.unlock registry_mutex;
  let gen = Atomic.get generation in
  List.fold_left (fun acc d -> if d.gen = gen then acc + d.n_spans else acc) 0 ds

let spans () =
  Mutex.lock registry_mutex;
  let ds = !registry in
  Mutex.unlock registry_mutex;
  let gen = Atomic.get generation in
  let all =
    List.concat_map (fun d -> if d.gen = gen then List.rev d.spans else []) ds
  in
  List.sort (fun a b -> compare (a.ts, a.tid) (b.ts, b.tid)) all

(* --- Chrome trace_event JSON ------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_value = function
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Int i -> string_of_int i
  | Float f ->
      if Float.is_finite f then Printf.sprintf "%.17g" f
      else Printf.sprintf "\"%h\"" f
  | Bool b -> string_of_bool b

(* One Chrome "X" (complete) event per span; timestamps in microseconds as
   the trace_event format prescribes.  Loads in chrome://tracing and
   Perfetto. *)
let to_chrome_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "[\n";
  let first = ref true in
  List.iter
    (fun s ->
      if not !first then Buffer.add_string b ",\n";
      first := false;
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"tats\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d"
           (json_escape s.name) (s.ts *. 1e6) (s.dur *. 1e6) s.tid);
      (match s.args with
      | [] -> ()
      | args ->
          Buffer.add_string b ",\"args\":{";
          List.iteri
            (fun i (k, v) ->
              if i > 0 then Buffer.add_char b ',';
              Buffer.add_string b
                (Printf.sprintf "\"%s\":%s" (json_escape k) (json_of_value v)))
            args;
          Buffer.add_char b '}');
      Buffer.add_char b '}')
    (spans ());
  Buffer.add_string b "\n]\n";
  Buffer.contents b

let export_chrome path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json ()))
