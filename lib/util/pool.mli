(** Work-stealing domain pool for embarrassingly parallel outer loops.

    The repo's stochastic workloads — Monte-Carlo replications, GA
    floorplan fitness evaluation, SA mapper restarts, benchmark sweeps,
    table regeneration — are independent task batches over pure
    functions. This pool runs such batches across OCaml 5 domains on a
    {e work-stealing} runtime: every domain owns a Chase–Lev deque
    (lock-free push/pop at the bottom for the owner, lock-free
    compare-and-set steals from the top for everyone else), and a batch
    is distributed as a single index range that splits in half as it
    executes, so fine-grained batches of thousands of sub-millisecond
    tasks pay owner-local deque operations instead of one shared-lock
    round-trip per task. Idle domains steal from randomized victims with
    exponential backoff and park on a condition variable only when every
    deque is empty. No dependencies beyond the stdlib.

    {1 Determinism contract}

    Parallelism here is {e observation-free}: for a pure task function,
    {!parallel_map} and {!parallel_for_reduce} return results that are
    bit-identical at any domain count and under any steal schedule,
    including [jobs = 1].

    - Results are delivered {e positionally}: slot [i] of the output always
      holds [f xs.(i)], whatever domain computed it, whether the range
      containing [i] was stolen, and in whatever order tasks finished.
    - {!parallel_for_reduce} folds the per-index results in index order
      after the parallel phase, so non-commutative [combine] functions are
      safe.
    - Nothing random is introduced by the pool itself (victim selection is
      randomized, but only the schedule depends on it). Callers that need
      per-task randomness must derive one generator per task index from a
      master seed ({!Rng.derive}) {e before} submitting, never share one
      mutable generator across tasks; with that discipline the random
      stream consumed by task [i] is a pure function of [(seed, i)] and the
      whole batch is reproducible at any [jobs].
    - On exception, the batch still runs to completion and the exception
      re-raised in the caller is the one thrown by the {e lowest} failing
      task index — again independent of scheduling.

    Task functions must be thread-safe: they run concurrently on multiple
    domains, and steals interleave them arbitrarily. Pure functions over
    immutable (or task-local) data qualify; shared mutable caches need
    their own locking (see {!Tats_thermal.Inquiry} for the pattern used by
    the thermal engine).

    {1 Nesting and concurrent batches}

    A task that itself calls [parallel_map] on any pool does not deadlock:
    nested calls detect that they already run inside a pool task and
    degrade to inline sequential execution on the current domain. The
    result is the same by the determinism contract; only the parallelism
    is flattened. Batches submitted concurrently from {e different}
    domains are serialized: the second submitter blocks until the first
    batch has drained, then runs normally. *)

type t
(** A pool of worker domains, each owning a work-stealing deque. The pool
    owns [jobs - 1] spawned domains; the domain calling {!parallel_map} is
    the [jobs]-th worker for the duration of the call, so [jobs = 1]
    spawns no domains at all and runs everything inline. *)

type stats = {
  jobs : int;  (** size of the pool, including the submitting domain *)
  batches : int;  (** [parallel_map] / [parallel_for_reduce] calls served *)
  tasks : int;  (** individual task-function applications executed *)
  steals : int;  (** ranges taken from another domain's deque *)
  parks : int;  (** times a domain found no work anywhere and slept *)
  max_deque_depth : int;
      (** high-water mark of queued ranges in any one deque *)
  busy : float array;
      (** wall-clock seconds spent inside task bodies, per domain; slot [0]
          is the submitting domain, slots [1 .. jobs - 1] the spawned
          workers *)
}
(** Cumulative counters since {!create} (or the last {!reset_stats}). The
    same quantities feed the process-wide metrics registry as
    [pool.batches], [pool.tasks], [pool.steals], [pool.parks] and
    [pool.deque_max_depth]. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains. [jobs] defaults to
    [Domain.recommended_domain_count ()] and is clamped to [\[1, 128\]].
    Pools are cheap but not free ([Domain.spawn] per worker): create one
    and reuse it, or use the process-wide {!default} pool. *)

val jobs : t -> int
(** Pool size, including the submitting domain. *)

val parallel_map : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map pool f xs] is [Array.map f xs] computed on up to
    [jobs pool] domains. [chunk] is the {e grain}: ranges of more than
    [chunk] consecutive indices split in half (the upper half becoming
    stealable) until they are at most [chunk] long, then run as one task
    (default: enough to make roughly [8 * jobs] leaf ranges). Larger
    grains amortize per-range overhead for cheap [f], smaller grains
    balance load for expensive [f]; [chunk:1] forces a maximally
    steal-heavy schedule. The choice of [chunk] never affects the result,
    only the schedule.

    Runs inline (sequentially, on the calling domain) when the batch has
    fewer than two tasks, when [jobs pool = 1], when the pool has been
    {!shutdown}, or when called from inside another pool task. *)

val parallel_mapi : ?chunk:int -> t -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** [Array.mapi] counterpart of {!parallel_map}. *)

val parallel_for_reduce :
  ?chunk:int ->
  t ->
  n:int ->
  init:'acc ->
  combine:('acc -> 'a -> 'acc) ->
  (int -> 'a) ->
  'acc
(** [parallel_for_reduce pool ~n ~init ~combine body] evaluates [body i]
    for [i] in [\[0, n)] in parallel, then folds the results with
    [combine] in index order: the exact sequential
    [fold_left combine init [body 0; ...; body (n-1)]]. *)

val stats : t -> stats
(** Racy-but-monotone snapshot of the pool's counters; exact whenever no
    batch is in flight. *)

val reset_stats : t -> unit
(** Zeroes the counters. Call between batches, not during one. *)

val pp_stats : Format.formatter -> stats -> unit
(** One compact line: jobs, batches, tasks, steals, parks, max deque
    depth, and per-domain busy seconds. *)

val shutdown : t -> unit
(** Stops and joins the worker domains. Idempotent, and safe to call
    while a batch is in flight: shutdown queues behind the running batch,
    which {e drains normally} (its submitter gets complete, bit-identical
    results), and only then are the workers stopped. After shutdown the
    pool remains usable: batches simply run inline on the calling domain.

    @raise Invalid_argument when called from inside a pool task (a batch
    cannot deterministically outlive a runtime torn down from within
    itself). *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and always shuts it
    down, even if [f] raises. *)

(** {1 The process-wide default pool}

    Library entry points with a [?pool] parameter fall back to this shared
    pool, so a single [--jobs N] flag at the CLI/bench level parallelizes
    every workload underneath without threading a pool through each
    call. *)

val default : unit -> t
(** The shared pool, created on first use with {!default_jobs} workers
    and shut down automatically at process exit. *)

val set_default_jobs : int -> unit
(** Sets the size used by {!default}. If the default pool already exists
    at a different size it is shut down and recreated on next use. The
    [--jobs] flags of [tats] and [bench/main.exe] call this. *)

val default_jobs : unit -> int
(** The size {!default} has, or will be created with:
    the last {!set_default_jobs} value, else
    [Domain.recommended_domain_count ()]. *)
