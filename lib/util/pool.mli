(** Fixed-size domain pool for embarrassingly parallel outer loops.

    The repo's stochastic workloads — Monte-Carlo replications, GA
    floorplan fitness evaluation, SA mapper restarts, benchmark sweeps —
    are independent task batches over pure functions. This pool runs such
    batches across OCaml 5 domains with a plain [Mutex]/[Condition] work
    queue: no new dependencies, no effects, no work stealing beyond the
    submitting domain draining the shared queue alongside the workers.

    {1 Determinism contract}

    Parallelism here is {e observation-free}: for a pure task function,
    {!parallel_map} and {!parallel_for_reduce} return results that are
    bit-identical at any domain count, including [jobs = 1].

    - Results are delivered {e positionally}: slot [i] of the output always
      holds [f xs.(i)], whatever domain computed it and in whatever order
      tasks finished.
    - {!parallel_for_reduce} folds the per-index results in index order
      after the parallel phase, so non-commutative [combine] functions are
      safe.
    - Nothing random is introduced by the pool itself. Callers that need
      per-task randomness must derive one generator per task index from a
      master seed ({!Rng.derive}) {e before} submitting, never share one
      mutable generator across tasks; with that discipline the random
      stream consumed by task [i] is a pure function of [(seed, i)] and the
      whole batch is reproducible at any [jobs].
    - On exception, the batch still runs to completion and the exception
      re-raised in the caller is the one thrown by the {e lowest} failing
      task index — again independent of scheduling.

    Task functions must be thread-safe: they run concurrently on multiple
    domains. Pure functions over immutable (or task-local) data qualify;
    shared mutable caches need their own locking (see {!Tats_thermal.Inquiry}
    for the pattern used by the thermal engine).

    {1 Nesting}

    A task that itself calls [parallel_map] on any pool does not deadlock:
    nested calls detect that they already run inside a pool task and
    degrade to inline sequential execution on the current domain. The
    result is the same by the determinism contract; only the parallelism
    is flattened. *)

type t
(** A pool of worker domains sharing one FIFO work queue. The pool owns
    [jobs - 1] spawned domains; the domain calling {!parallel_map} is the
    [jobs]-th worker for the duration of the call, so [jobs = 1] spawns no
    domains at all and runs everything inline. *)

type stats = {
  jobs : int;  (** size of the pool, including the submitting domain *)
  batches : int;  (** [parallel_map] / [parallel_for_reduce] calls served *)
  tasks : int;  (** individual task-function applications executed *)
  waits : int;  (** times a worker found the queue empty and slept *)
  busy : float array;
      (** wall-clock seconds spent inside task bodies, per domain; slot [0]
          is the submitting domain, slots [1 .. jobs - 1] the spawned
          workers *)
}
(** Cumulative counters since {!create} (or the last {!reset_stats}). *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains. [jobs] defaults to
    [Domain.recommended_domain_count ()] and is clamped to [\[1, 128\]].
    Pools are cheap but not free ([Domain.spawn] per worker): create one
    and reuse it, or use the process-wide {!default} pool. *)

val jobs : t -> int
(** Pool size, including the submitting domain. *)

val parallel_map : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map pool f xs] is [Array.map f xs] computed on up to
    [jobs pool] domains. [chunk] is the number of consecutive indices
    grouped into one queued task (default: enough to make roughly
    [8 * jobs] tasks); larger chunks amortize queue traffic for cheap [f],
    smaller chunks balance load for expensive [f]. The choice of [chunk]
    never affects the result, only the schedule.

    Runs inline (sequentially, on the calling domain) when the batch has
    fewer than two tasks, when [jobs pool = 1], when the pool has been
    {!shutdown}, or when called from inside another pool task. *)

val parallel_mapi : ?chunk:int -> t -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** [Array.mapi] counterpart of {!parallel_map}. *)

val parallel_for_reduce :
  ?chunk:int ->
  t ->
  n:int ->
  init:'acc ->
  combine:('acc -> 'a -> 'acc) ->
  (int -> 'a) ->
  'acc
(** [parallel_for_reduce pool ~n ~init ~combine body] evaluates [body i]
    for [i] in [\[0, n)] in parallel, then folds the results with
    [combine] in index order: the exact sequential
    [fold_left combine init [body 0; ...; body (n-1)]]. *)

val stats : t -> stats
(** Snapshot of the pool's counters (consistent: taken under the pool
    lock). *)

val reset_stats : t -> unit

val pp_stats : Format.formatter -> stats -> unit
(** One compact line: jobs, batches, tasks, waits, and per-domain busy
    seconds. *)

val shutdown : t -> unit
(** Stops and joins the worker domains. Idempotent. Must not be called
    while a [parallel_map] on this pool is in flight. After shutdown the
    pool remains usable: batches simply run inline on the calling
    domain. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and always shuts it
    down, even if [f] raises. *)

(** {1 The process-wide default pool}

    Library entry points with a [?pool] parameter fall back to this shared
    pool, so a single [--jobs N] flag at the CLI/bench level parallelizes
    every workload underneath without threading a pool through each
    call. *)

val default : unit -> t
(** The shared pool, created on first use with {!default_jobs} workers
    and shut down automatically at process exit. *)

val set_default_jobs : int -> unit
(** Sets the size used by {!default}. If the default pool already exists
    at a different size it is shut down and recreated on next use. The
    [--jobs] flags of [tats] and [bench/main.exe] call this. *)

val default_jobs : unit -> int
(** The size {!default} has, or will be created with:
    the last {!set_default_jobs} value, else
    [Domain.recommended_domain_count ()]. *)
