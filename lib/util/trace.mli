(** Hierarchical span tracing with a Chrome [trace_event] exporter.

    The library's stages — co-synthesis iterations, scheduler steps,
    thermal inquiry solves, pool tasks — are bracketed with {!with_span}.
    Tracing is {e off} by default and every instrumentation point then
    reduces to one atomic load (a few nanoseconds, no allocation of
    spans), so the brackets live permanently on hot paths.  When enabled
    ({!start}), each domain records completed spans into its own
    domain-local buffer; {!export_chrome} merges the buffers into a JSON
    file loadable in [chrome://tracing] or Perfetto.

    Spans nest lexically per domain (a domain-local stack tracks the open
    frames), and are exported as Chrome "X" (complete) events, which nest
    by time containment within a thread id.  [tats --trace FILE] and
    [bench/main.exe --trace FILE] drive this module from the CLI. *)

type value = Str of string | Int of int | Float of float | Bool of bool
(** Span attribute values — exported under the Chrome event's [args]. *)

type span = {
  name : string;
  ts : float;  (** start, seconds since {!start} *)
  dur : float;  (** duration, seconds *)
  tid : int;  (** recording domain's id *)
  args : (string * value) list;
}

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]).  This is the clock every
    span and every wall-time counter in the library uses: unlike
    [Sys.time] it measures elapsed time rather than the process' CPU time
    summed over all domains, so per-domain timings stay additive under a
    {!Pool}. *)

val enabled : unit -> bool

val start : unit -> unit
(** Enable tracing and start a fresh trace (spans of any previous trace
    are discarded; the epoch for {!span}[.ts] is reset). *)

val stop : unit -> unit
(** Disable tracing, keeping recorded spans for export. *)

val reset : unit -> unit
(** Disable tracing and discard all recorded spans. *)

val with_span : ?args:(string * value) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()] bracketed by a span.  The span is
    recorded even when [f] raises (the exception is re-raised).  When
    tracing is disabled this is exactly [f ()] after one atomic load. *)

val add_attr : string -> value -> unit
(** Attach an attribute to the innermost open span of the calling domain
    (no-op when tracing is disabled or no span is open) — how a stage
    records its {e outcome} discovered only at the end, e.g. whether a
    co-synthesis iteration met its deadline. *)

val span_count : unit -> int
(** Completed spans recorded in the current trace, across all domains. *)

val spans : unit -> span list
(** Completed spans of the current trace, sorted by start time. *)

val to_chrome_json : unit -> string
(** The current trace as a Chrome [trace_event] JSON array. *)

val export_chrome : string -> unit
(** Write {!to_chrome_json} to a file. *)
