(* A fixed-size domain pool over a Mutex/Condition FIFO queue.

   Design notes, in decreasing order of importance:

   - Determinism: results are written positionally into a pre-sized array,
     the fold of parallel_for_reduce runs in index order after the barrier,
     and on failure the recorded exception is the one from the lowest task
     index. Nothing observable depends on which domain ran what.

   - The submitting domain is a worker too: after enqueueing its batch it
     drains the same queue until the batch completes, so a pool of size 1
     never spawns a domain and [jobs] means "domains doing work", not
     "domains doing work plus one coordinator doing nothing".

   - Nested parallel_map calls (a task submitting a batch to any pool) run
     inline on the current domain, detected through a domain-local flag.
     This cannot deadlock and keeps the determinism contract trivially. *)

type batch = {
  mutable remaining : int; (* queued tasks not yet finished *)
  mutable failed : (int * exn) option; (* lowest failing index wins *)
}

type t = {
  n_jobs : int;
  mutex : Mutex.t;
  work : Condition.t; (* workers sleep here when the queue is empty *)
  finished : Condition.t; (* submitters sleep here when their batch is out *)
  queue : (unit -> unit) Queue.t;
  mutable live : bool;
  mutable workers : unit Domain.t array;
  (* counters, all guarded by [mutex] *)
  mutable c_batches : int;
  mutable c_tasks : int;
  mutable c_waits : int;
  busy : float array;
}

type stats = {
  jobs : int;
  batches : int;
  tasks : int;
  waits : int;
  busy : float array;
}

let in_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let now = Unix.gettimeofday

(* Fleet-wide registry counters, mirroring the per-pool ones. *)
let m_batches = Metricsreg.counter "pool.batches"
let m_tasks = Metricsreg.counter "pool.tasks"

(* Run one queued task on this domain with the nested-call flag set; tasks
   are pre-wrapped and never raise. Returns the wall time spent. The span
   makes each domain's busy stretches visible on its own trace row. *)
let run_task task =
  let t0 = now () in
  Domain.DLS.set in_task true;
  Trace.with_span "pool.task" task;
  Domain.DLS.set in_task false;
  now () -. t0

let worker_loop t slot =
  Mutex.lock t.mutex;
  let rec loop () =
    if not t.live then Mutex.unlock t.mutex
    else
      match Queue.take_opt t.queue with
      | Some task ->
          Mutex.unlock t.mutex;
          let dt = run_task task in
          Mutex.lock t.mutex;
          t.busy.(slot) <- t.busy.(slot) +. dt;
          loop ()
      | None ->
          t.c_waits <- t.c_waits + 1;
          Condition.wait t.work t.mutex;
          loop ()
  in
  loop ()

let create ?jobs () =
  let n_jobs =
    match jobs with
    | None -> Stdlib.max 1 (Domain.recommended_domain_count ())
    | Some j -> Stdlib.min 128 (Stdlib.max 1 j)
  in
  let t =
    {
      n_jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      queue = Queue.create ();
      live = true;
      workers = [||];
      c_batches = 0;
      c_tasks = 0;
      c_waits = 0;
      busy = Array.make n_jobs 0.0;
    }
  in
  t.workers <-
    Array.init (n_jobs - 1) (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let jobs t = t.n_jobs

let shutdown t =
  Mutex.lock t.mutex;
  if t.live then begin
    t.live <- false;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end
  else Mutex.unlock t.mutex

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      jobs = t.n_jobs;
      batches = t.c_batches;
      tasks = t.c_tasks;
      waits = t.c_waits;
      busy = Array.copy t.busy;
    }
  in
  Mutex.unlock t.mutex;
  s

let reset_stats t =
  Mutex.lock t.mutex;
  t.c_batches <- 0;
  t.c_tasks <- 0;
  t.c_waits <- 0;
  Array.fill t.busy 0 (Array.length t.busy) 0.0;
  Mutex.unlock t.mutex

let pp_stats ppf s =
  Format.fprintf ppf "jobs %d, batches %d, tasks %d, waits %d, busy [" s.jobs
    s.batches s.tasks s.waits;
  Array.iteri
    (fun i b -> Format.fprintf ppf "%s%.3fs" (if i = 0 then "" else " ") b)
    s.busy;
  Format.fprintf ppf "]"

(* The workhorse. [f] is applied as [f i xs.(i)] and results land in slot
   [i]; everything else is scheduling. *)
let parallel_mapi ?chunk t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let inline_run () =
      (* Inline path: plain sequential mapi, accounted as one batch on the
         submitting domain. Used for tiny batches, single-job pools, shut
         pools, and nested calls (where the accounting is skipped: the
         enclosing task's runner is already charging this time). *)
      let nested = Domain.DLS.get in_task in
      let t0 = now () in
      let r = Array.mapi f xs in
      if not nested then begin
        Mutex.lock t.mutex;
        t.c_batches <- t.c_batches + 1;
        t.c_tasks <- t.c_tasks + n;
        t.busy.(0) <- t.busy.(0) +. (now () -. t0);
        Mutex.unlock t.mutex;
        Metricsreg.incr m_batches;
        Metricsreg.add m_tasks n
      end;
      r
    in
    if t.n_jobs = 1 || n = 1 || (not t.live) || Domain.DLS.get in_task then
      inline_run ()
    else begin
      let chunk =
        match chunk with
        | Some c -> Stdlib.max 1 c
        | None -> Stdlib.max 1 (n / (8 * t.n_jobs))
      in
      let n_chunks = (n + chunk - 1) / chunk in
      let results = Array.make n None in
      let batch = { remaining = n_chunks; failed = None } in
      let task c () =
        let lo = c * chunk in
        let hi = Stdlib.min (n - 1) (lo + chunk - 1) in
        let rec go i =
          if i > hi then None
          else
            match f i xs.(i) with
            | v ->
                results.(i) <- Some v;
                go (i + 1)
            | exception e -> Some (i, e)
        in
        let failure = go lo in
        Metricsreg.add m_tasks (hi - lo + 1);
        Mutex.lock t.mutex;
        t.c_tasks <- t.c_tasks + (hi - lo + 1);
        (match failure with
        | Some (i, _) -> (
            match batch.failed with
            | Some (j, _) when j <= i -> ()
            | Some _ | None -> batch.failed <- failure)
        | None -> ());
        batch.remaining <- batch.remaining - 1;
        if batch.remaining = 0 then Condition.broadcast t.finished;
        Mutex.unlock t.mutex
      in
      Metricsreg.incr m_batches;
      Mutex.lock t.mutex;
      t.c_batches <- t.c_batches + 1;
      for c = 0 to n_chunks - 1 do
        Queue.add (task c) t.queue
      done;
      Condition.broadcast t.work;
      (* The submitting domain drains the queue too (slot 0). When the
         queue is empty but the batch is still in flight on other domains,
         it sleeps until the last task signals. *)
      let rec drain () =
        if batch.remaining = 0 then Mutex.unlock t.mutex
        else
          match Queue.take_opt t.queue with
          | Some task ->
              Mutex.unlock t.mutex;
              let dt = run_task task in
              Mutex.lock t.mutex;
              t.busy.(0) <- t.busy.(0) +. dt;
              drain ()
          | None ->
              Condition.wait t.finished t.mutex;
              drain ()
      in
      drain ();
      (match batch.failed with Some (_, e) -> raise e | None -> ());
      Array.map (function Some v -> v | None -> assert false) results
    end
  end

let parallel_map ?chunk t f xs = parallel_mapi ?chunk t (fun _ x -> f x) xs

let parallel_for_reduce ?chunk t ~n ~init ~combine body =
  if n < 0 then invalid_arg "Pool.parallel_for_reduce: negative n";
  let values = parallel_mapi ?chunk t (fun i () -> body i) (Array.make n ()) in
  Array.fold_left combine init values

(* --- the process-wide default pool ------------------------------------- *)

let default_mutex = Mutex.create ()
let default_pool = ref None
let requested_jobs = ref None

let default_jobs () =
  Mutex.lock default_mutex;
  let j =
    match !requested_jobs with
    | Some j -> j
    | None -> Stdlib.max 1 (Domain.recommended_domain_count ())
  in
  Mutex.unlock default_mutex;
  j

let set_default_jobs j =
  let j = Stdlib.min 128 (Stdlib.max 1 j) in
  Mutex.lock default_mutex;
  requested_jobs := Some j;
  let stale =
    match !default_pool with
    | Some p when p.n_jobs <> j ->
        default_pool := None;
        Some p
    | Some _ | None -> None
  in
  Mutex.unlock default_mutex;
  match stale with Some p -> shutdown p | None -> ()

let () =
  (* Worker domains must be joined before the process can exit. *)
  at_exit (fun () ->
      Mutex.lock default_mutex;
      let p = !default_pool in
      default_pool := None;
      Mutex.unlock default_mutex;
      match p with Some p -> shutdown p | None -> ())

let default () =
  Mutex.lock default_mutex;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create ?jobs:!requested_jobs () in
        default_pool := Some p;
        p
  in
  Mutex.unlock default_mutex;
  p
