(* A work-stealing domain pool: one Chase-Lev deque per domain.

   Design notes, in decreasing order of importance:

   - Determinism: results are written positionally into a pre-sized array,
     the fold of parallel_for_reduce runs in index order after the barrier,
     and on failure the recorded exception is the one from the lowest task
     index. Nothing observable depends on which domain ran what, so the
     steal schedule - inherently racy - can never change a result.

   - The hot path is lock-free. Work is distributed as range tasks
     [lo, hi] that split in half on execution: the executor pushes the
     upper half onto its own deque (bottom, LIFO) and recurses on the
     lower half until a range is at most [grain] indices, then runs it.
     Idle domains steal from the top (FIFO) of a random victim's deque
     with a single compare-and-set - thieves get the oldest, and therefore
     largest, ranges, which they then split locally. A batch of thousands
     of fine-grained tasks thus costs one shared-queue operation never:
     only owner-local deque pushes and O(domains * log n) steals.

   - Blocking is the cold path. A domain that finds every deque empty
     backs off with Domain.cpu_relax and finally parks on a Condition;
     pushers wake parked domains only when the parked-count says someone
     is actually asleep, so steady-state pushes stay lock-free.

   - The submitting domain is a worker too: after pushing its batch's
     root range it pops/steals like everyone else until the batch
     completes, so a pool of size 1 never spawns a domain and [jobs]
     means "domains doing work".

   - Nested parallel_map calls (a task submitting a batch to any pool) run
     inline on the current domain, detected through a domain-local flag.
     This cannot deadlock and keeps the determinism contract trivially.

   - Batches are serialized by a submission mutex. This is what makes
     [shutdown] safe while a batch is in flight: shutdown queues behind
     the running batch, which drains normally, and only then are the
     workers stopped.

   Memory-ordering argument for the Chase-Lev operations: OCaml's
   [Atomic] operations are sequentially consistent, strictly stronger
   than the acquire/release + fence discipline of the canonical C11
   implementation (Le et al., "Correct and Efficient Work-Stealing for
   Weak Memory Models"), so the classical correctness argument applies
   directly. The two load-bearing facts are (1) [top] only ever grows, so
   a successful CAS on [top] can never be an ABA - the stolen slot is
   exactly the one read; and (2) a slot is only reused by the owner after
   [bottom] has advanced a full buffer length past it, which requires the
   intervening elements - including that slot - to have been consumed
   first, advancing [top] past it and making any stale thief's CAS fail.
   Buffer growth preserves this: the owner installs the doubled buffer
   with an [Atomic.set] and never writes to the old one again, so a thief
   holding the old buffer still reads valid (if possibly already-stolen)
   elements, and the CAS on [top] remains the single commit point. *)

type batch = {
  remaining : int Atomic.t; (* indices not yet executed *)
  failed : (int * exn) option Atomic.t; (* lowest failing index wins *)
}

(* A contiguous index range [lo, hi] (inclusive) of one batch. [body lo hi]
   applies the batch's task function to each index, recording results
   positionally and returning the lowest in-range failure, if any. *)
type task = {
  lo : int;
  hi : int;
  grain : int; (* ranges longer than this split in half *)
  batch : batch;
  body : int -> int -> (int * exn) option;
}

let dummy_batch = { remaining = Atomic.make 0; failed = Atomic.make None }
let dummy_task =
  { lo = 0; hi = -1; grain = 1; batch = dummy_batch; body = (fun _ _ -> None) }

(* --- Chase-Lev deque ---------------------------------------------------- *)

module Deque : sig
  type t

  val create : unit -> t
  val push : t -> task -> unit (* owner only *)
  val pop : t -> task option (* owner only *)
  val steal : t -> task option (* any domain *)
  val size : t -> int (* racy snapshot *)
  val max_depth : t -> int
  val reset_max_depth : t -> unit
end = struct
  type buffer = { data : task array; mask : int } (* length a power of 2 *)

  type t = {
    top : int Atomic.t; (* next index to steal *)
    bottom : int Atomic.t; (* next index to push *)
    buf : buffer Atomic.t;
    mutable max_depth : int; (* owner-maintained high-water mark *)
  }

  let buffer cap = { data = Array.make cap dummy_task; mask = cap - 1 }

  let create () =
    {
      top = Atomic.make 0;
      bottom = Atomic.make 0;
      buf = Atomic.make (buffer 32);
      max_depth = 0;
    }

  (* Owner-only; copies the live window [t, b) into a doubled buffer. The
     old buffer is never written again (see the module comment's ordering
     argument). *)
  let grow q b t =
    let old = Atomic.get q.buf in
    let nu = buffer (2 * Array.length old.data) in
    for i = t to b - 1 do
      nu.data.(i land nu.mask) <- old.data.(i land old.mask)
    done;
    Atomic.set q.buf nu

  let push q v =
    let b = Atomic.get q.bottom in
    let t = Atomic.get q.top in
    let buf = Atomic.get q.buf in
    let buf =
      if b - t > buf.mask then begin
        grow q b t;
        Atomic.get q.buf
      end
      else buf
    in
    buf.data.(b land buf.mask) <- v;
    Atomic.set q.bottom (b + 1);
    let depth = b + 1 - t in
    if depth > q.max_depth then q.max_depth <- depth

  let pop q =
    let b = Atomic.get q.bottom - 1 in
    Atomic.set q.bottom b;
    let t = Atomic.get q.top in
    if b < t then begin
      (* Empty: undo the reservation. *)
      Atomic.set q.bottom t;
      None
    end
    else begin
      let buf = Atomic.get q.buf in
      let v = buf.data.(b land buf.mask) in
      if b > t then Some v
      else begin
        (* Last element: race the thieves for it through [top]. *)
        let won = Atomic.compare_and_set q.top t (t + 1) in
        Atomic.set q.bottom (t + 1);
        if won then Some v else None
      end
    end

  let steal q =
    let t = Atomic.get q.top in
    let b = Atomic.get q.bottom in
    if t >= b then None
    else begin
      let buf = Atomic.get q.buf in
      let v = buf.data.(t land buf.mask) in
      if Atomic.compare_and_set q.top t (t + 1) then Some v else None
    end

  let size q = Stdlib.max 0 (Atomic.get q.bottom - Atomic.get q.top)
  let max_depth q = q.max_depth
  let reset_max_depth q = q.max_depth <- 0
end

(* --- pool --------------------------------------------------------------- *)

type t = {
  n_jobs : int;
  deques : Deque.t array; (* slot 0: the submitting domain *)
  park_mutex : Mutex.t; (* guards [cv] and the park protocol *)
  cv : Condition.t; (* parked domains sleep here *)
  n_parked : int Atomic.t; (* registered sleepers (incl. submitter) *)
  submit_mutex : Mutex.t; (* serializes batches and shutdown *)
  live : bool Atomic.t;
  mutable workers : unit Domain.t array;
  (* counters *)
  c_batches : int Atomic.t;
  c_tasks : int Atomic.t; (* task-function applications *)
  c_steals : int Atomic.t; (* successful steals *)
  c_parks : int Atomic.t; (* times a domain went to sleep *)
  busy : float array; (* wall seconds in task bodies, slot-owned writes *)
}

type stats = {
  jobs : int;
  batches : int;
  tasks : int;
  steals : int;
  parks : int;
  max_deque_depth : int;
  busy : float array;
}

let in_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let now = Unix.gettimeofday

(* Fleet-wide registry counters, mirroring the per-pool ones. *)
let m_batches = Metricsreg.counter "pool.batches"
let m_tasks = Metricsreg.counter "pool.tasks"
let m_steals = Metricsreg.counter "pool.steals"
let m_parks = Metricsreg.counter "pool.parks"
let m_depth = Metricsreg.counter "pool.deque_max_depth"

(* Any queued-but-unclaimed work in any deque? Racy by design: callers
   re-check under [park_mutex] before sleeping. *)
let any_work t =
  let rec go i = i < t.n_jobs && (Deque.size t.deques.(i) > 0 || go (i + 1)) in
  go 0

(* Wake sleepers after a push, but only when somebody is actually parked:
   the [n_parked] read keeps the steady-state push lock-free. *)
let wake_if_parked t =
  if Atomic.get t.n_parked > 0 then begin
    Mutex.lock t.park_mutex;
    Condition.broadcast t.cv;
    Mutex.unlock t.park_mutex
  end

(* Record [failure] into the batch, keeping the lowest index. *)
let rec record_failure batch ((i, _) as failure) =
  match Atomic.get batch.failed with
  | Some (j, _) when j <= i -> ()
  | cur ->
      if not (Atomic.compare_and_set batch.failed cur (Some failure)) then
        record_failure batch failure

(* Execute one range task on this domain: split halves above [grain] onto
   our own deque (waking thieves), then run the leaf. Completion of the
   leaf's indices is what retires the batch. *)
let exec_task t slot ~stolen task =
  let rec narrow task =
    if task.hi - task.lo + 1 > task.grain then begin
      let mid = task.lo + ((task.hi - task.lo) / 2) in
      Deque.push t.deques.(slot) { task with lo = mid + 1 };
      wake_if_parked t;
      narrow { task with hi = mid }
    end
    else task
  in
  let leaf = narrow task in
  let t0 = now () in
  Domain.DLS.set in_task true;
  let failure =
    Trace.with_span "pool.task" (fun () ->
        if stolen then Trace.add_attr "stolen" (Trace.Bool true);
        leaf.body leaf.lo leaf.hi)
  in
  Domain.DLS.set in_task false;
  t.busy.(slot) <- t.busy.(slot) +. (now () -. t0);
  let k = leaf.hi - leaf.lo + 1 in
  Atomic.fetch_and_add t.c_tasks k |> ignore;
  Metricsreg.add m_tasks k;
  (match failure with Some f -> record_failure leaf.batch f | None -> ());
  if Atomic.fetch_and_add leaf.batch.remaining (-k) = k then begin
    (* Last indices of the batch: wake the submitter (and anyone else). *)
    Mutex.lock t.park_mutex;
    Condition.broadcast t.cv;
    Mutex.unlock t.park_mutex
  end

(* A cheap domain-local xorshift for victim selection (nonzero state stays
   nonzero: each step is an invertible linear map). The schedule it
   induces is irrelevant to results (determinism contract), so the
   statistical quality bar is "spreads thieves across victims". *)
let rand_victim state ~self ~n =
  let s = !state in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) in
  state := s;
  let v = (s land max_int) mod (n - 1) in
  if v >= self then v + 1 else v

(* Look for work: our own deque first (LIFO), then a few randomized steal
   sweeps with exponential backoff. Returns [None] when the domain should
   park. *)
let try_find_work t slot rng =
  match Deque.pop t.deques.(slot) with
  | Some task -> Some (task, false)
  | None ->
      if t.n_jobs = 1 then None
      else begin
        let sweeps = 2 * t.n_jobs in
        let rec attempt i relax =
          if i >= sweeps then None
          else
            let victim = rand_victim rng ~self:slot ~n:t.n_jobs in
            match Deque.steal t.deques.(victim) with
            | Some task ->
                Atomic.incr t.c_steals;
                Metricsreg.incr m_steals;
                Some (task, true)
            | None ->
                for _ = 1 to relax do
                  Domain.cpu_relax ()
                done;
                attempt (i + 1) (Stdlib.min 256 (relax * 2))
        in
        attempt 0 1
      end

(* Park until [should_wake] (re-checked under the mutex, so a push or a
   batch completion between our last scan and the wait cannot be lost:
   wakers either see our registration in [n_parked] and take the mutex, or
   completed their update before we re-check). *)
let park t ~should_wake =
  Mutex.lock t.park_mutex;
  Atomic.incr t.n_parked;
  if should_wake () then begin
    Atomic.decr t.n_parked;
    Mutex.unlock t.park_mutex
  end
  else begin
    Atomic.incr t.c_parks;
    Metricsreg.incr m_parks;
    Trace.with_span "pool.park" (fun () -> Condition.wait t.cv t.park_mutex);
    Atomic.decr t.n_parked;
    Mutex.unlock t.park_mutex
  end

let worker_loop t slot =
  let rng = ref (0x2545f4914f6cdd1d * (slot + 1)) in
  let rec loop () =
    if not (Atomic.get t.live) then ()
    else
      match try_find_work t slot rng with
      | Some (task, stolen) ->
          exec_task t slot ~stolen task;
          loop ()
      | None ->
          park t ~should_wake:(fun () ->
              (not (Atomic.get t.live)) || any_work t);
          loop ()
  in
  loop ()

let create ?jobs () =
  let n_jobs =
    match jobs with
    | None -> Stdlib.max 1 (Domain.recommended_domain_count ())
    | Some j -> Stdlib.min 128 (Stdlib.max 1 j)
  in
  let t =
    {
      n_jobs;
      deques = Array.init n_jobs (fun _ -> Deque.create ());
      park_mutex = Mutex.create ();
      cv = Condition.create ();
      n_parked = Atomic.make 0;
      submit_mutex = Mutex.create ();
      live = Atomic.make true;
      workers = [||];
      c_batches = Atomic.make 0;
      c_tasks = Atomic.make 0;
      c_steals = Atomic.make 0;
      c_parks = Atomic.make 0;
      busy = Array.make n_jobs 0.0;
    }
  in
  t.workers <-
    Array.init (n_jobs - 1) (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let jobs t = t.n_jobs

let shutdown t =
  if Domain.DLS.get in_task then
    invalid_arg "Pool.shutdown: called from inside a pool task";
  (* Queue behind any in-flight batch: it drains normally first. *)
  Mutex.lock t.submit_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.submit_mutex)
    (fun () ->
      if Atomic.get t.live then begin
        Atomic.set t.live false;
        Mutex.lock t.park_mutex;
        Condition.broadcast t.cv;
        Mutex.unlock t.park_mutex;
        Array.iter Domain.join t.workers;
        t.workers <- [||]
      end)

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let stats t =
  let max_depth =
    Array.fold_left
      (fun acc d -> Stdlib.max acc (Deque.max_depth d))
      0 t.deques
  in
  {
    jobs = t.n_jobs;
    batches = Atomic.get t.c_batches;
    tasks = Atomic.get t.c_tasks;
    steals = Atomic.get t.c_steals;
    parks = Atomic.get t.c_parks;
    max_deque_depth = max_depth;
    busy = Array.copy t.busy;
  }

let reset_stats t =
  Atomic.set t.c_batches 0;
  Atomic.set t.c_tasks 0;
  Atomic.set t.c_steals 0;
  Atomic.set t.c_parks 0;
  Array.iter Deque.reset_max_depth t.deques;
  Array.fill t.busy 0 (Array.length t.busy) 0.0

let pp_stats ppf s =
  Format.fprintf ppf
    "jobs %d, batches %d, tasks %d, steals %d, parks %d, max depth %d, busy ["
    s.jobs s.batches s.tasks s.steals s.parks s.max_deque_depth;
  Array.iteri
    (fun i b -> Format.fprintf ppf "%s%.3fs" (if i = 0 then "" else " ") b)
    s.busy;
  Format.fprintf ppf "]"

(* Keep the fleet-wide high-water mark in step with the deepest deque seen
   by any pool. Called once per batch, not per push. *)
let publish_depth t =
  let d =
    Array.fold_left
      (fun acc q -> Stdlib.max acc (Deque.max_depth q))
      0 t.deques
  in
  if d > Metricsreg.counter_value m_depth then Metricsreg.set_counter m_depth d

(* The workhorse. [f] is applied as [f i xs.(i)] and results land in slot
   [i]; everything else is scheduling. *)
let parallel_mapi ?chunk t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let inline_run () =
      (* Inline path: plain sequential mapi, accounted as one batch on the
         submitting domain. Used for tiny batches, single-job pools, shut
         pools, and nested calls (where the accounting is skipped: the
         enclosing task's runner is already charging this time). *)
      let nested = Domain.DLS.get in_task in
      let t0 = now () in
      let r = Array.mapi f xs in
      if not nested then begin
        Atomic.incr t.c_batches;
        Atomic.fetch_and_add t.c_tasks n |> ignore;
        t.busy.(0) <- t.busy.(0) +. (now () -. t0);
        Metricsreg.incr m_batches;
        Metricsreg.add m_tasks n
      end;
      r
    in
    if t.n_jobs = 1 || n = 1 || (not (Atomic.get t.live)) || Domain.DLS.get in_task
    then inline_run ()
    else begin
      Mutex.lock t.submit_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.submit_mutex)
        (fun () ->
          if not (Atomic.get t.live) then inline_run ()
          else begin
            let grain =
              match chunk with
              | Some c -> Stdlib.max 1 c
              | None -> Stdlib.max 1 (n / (8 * t.n_jobs))
            in
            let results = Array.make n None in
            let batch =
              { remaining = Atomic.make n; failed = Atomic.make None }
            in
            let body lo hi =
              (* Runs each index of the leaf; stops at the first failure
                 (the rest of the batch still runs - only this leaf's tail
                 is skipped, exactly like the FIFO runtime's chunks). *)
              let rec go i =
                if i > hi then None
                else
                  match f i xs.(i) with
                  | v ->
                      results.(i) <- Some v;
                      go (i + 1)
                  | exception e -> Some (i, e)
              in
              go lo
            in
            Atomic.incr t.c_batches;
            Metricsreg.incr m_batches;
            let root = { lo = 0; hi = n - 1; grain; batch; body } in
            Trace.with_span "pool.batch" (fun () ->
                Deque.push t.deques.(0) root;
                wake_if_parked t;
                (* The submitting domain works as slot 0 until the batch
                   retires, then reaps results. *)
                let rng = ref 0x2545f4914f6cdd1d in
                let rec drive () =
                  if Atomic.get batch.remaining = 0 then ()
                  else
                    match try_find_work t 0 rng with
                    | Some (task, stolen) ->
                        exec_task t 0 ~stolen task;
                        drive ()
                    | None ->
                        park t ~should_wake:(fun () ->
                            Atomic.get batch.remaining = 0 || any_work t);
                        drive ()
                in
                drive ());
            publish_depth t;
            (match Atomic.get batch.failed with
            | Some (_, e) -> raise e
            | None -> ());
            Array.map (function Some v -> v | None -> assert false) results
          end)
    end
  end

let parallel_map ?chunk t f xs = parallel_mapi ?chunk t (fun _ x -> f x) xs

let parallel_for_reduce ?chunk t ~n ~init ~combine body =
  if n < 0 then invalid_arg "Pool.parallel_for_reduce: negative n";
  let values = parallel_mapi ?chunk t (fun i () -> body i) (Array.make n ()) in
  Array.fold_left combine init values

(* --- the process-wide default pool ------------------------------------- *)

let default_mutex = Mutex.create ()
let default_pool = ref None
let requested_jobs = ref None

let default_jobs () =
  Mutex.lock default_mutex;
  let j =
    match !requested_jobs with
    | Some j -> j
    | None -> Stdlib.max 1 (Domain.recommended_domain_count ())
  in
  Mutex.unlock default_mutex;
  j

let set_default_jobs j =
  let j = Stdlib.min 128 (Stdlib.max 1 j) in
  Mutex.lock default_mutex;
  requested_jobs := Some j;
  let stale =
    match !default_pool with
    | Some p when p.n_jobs <> j ->
        default_pool := None;
        Some p
    | Some _ | None -> None
  in
  Mutex.unlock default_mutex;
  match stale with Some p -> shutdown p | None -> ()

let () =
  (* Worker domains must be joined before the process can exit. *)
  at_exit (fun () ->
      Mutex.lock default_mutex;
      let p = !default_pool in
      default_pool := None;
      Mutex.unlock default_mutex;
      match p with Some p -> shutdown p | None -> ())

let default () =
  Mutex.lock default_mutex;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create ?jobs:!requested_jobs () in
        default_pool := Some p;
        p
  in
  Mutex.unlock default_mutex;
  p
