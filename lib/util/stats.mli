(** Small statistics helpers over float arrays. *)

val sum : float array -> float
(** Sum in index order (deterministic across runs); 0.0 on an empty array. *)

val mean : float array -> float
(** Mean of a non-empty array. *)

val min : float array -> float
(** Smallest element of a non-empty array. *)

val max : float array -> float
(** Largest element of a non-empty array. *)

val stddev : float array -> float
(** Population standard deviation of a non-empty array. *)

val spread : float array -> float
(** [max - min] of a non-empty array. *)

val median : float array -> float
(** 50th percentile of a non-empty array — [percentile a 50.0]. The input
    is not modified (sorting happens on a copy). *)

val percentile : float array -> float -> float
(** [percentile a p] with [p] in [\[0, 100\]], linear interpolation. *)

val argmax : float array -> int
(** Index of the largest element of a non-empty array; on ties, the lowest
    such index. *)

val argmin : float array -> int
(** Index of the smallest element of a non-empty array; on ties, the lowest
    such index. *)
