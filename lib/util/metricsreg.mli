(** Process-global metrics registry: named counters, gauges and log-scale
    latency/size histograms.

    Handles are interned by name — [counter "inquiry.cache_hits"] returns
    the same cell everywhere — so modules declare their metrics once at top
    level and bump them from any domain.  Counters are lock-free
    ([Atomic.fetch_and_add]); gauges and histograms take a per-metric mutex
    for a handful of instructions.  All metrics are always on: an update is
    cheap enough to live on the paths it measures, and [tats --metrics
    FILE] / {!export} snapshot the registry into a flat [metrics.json].

    Asking for an existing name with a different kind raises
    [Invalid_argument]. *)

type counter
type gauge
type histogram

type summary = {
  count : int;
  sum : float;
  min : float;  (** +inf when empty *)
  max : float;  (** -inf when empty *)
  p50 : float;
  p95 : float;
  p99 : float;
}

val counter : string -> counter
val gauge : string -> gauge
val histogram : string -> histogram

(** {1 Counters} *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int
val set_counter : counter -> int -> unit
val counter_name : counter -> string

(** {1 Gauges} *)

val set_gauge : gauge -> float -> unit
val add_gauge : gauge -> float -> unit
(** Gauges double as float accumulators (e.g. total engine wall seconds). *)

val gauge_value : gauge -> float
val gauge_name : gauge -> string

(** {1 Histograms}

    Geometric buckets: bucket [i >= 1] covers
    [1e-9 * 1.25^(i-1), 1e-9 * 1.25^i), bucket 0 everything smaller.  192
    buckets span nanoseconds to about a minute; percentile answers are the
    geometric midpoint of the hit bucket, i.e. exact to 25% relative
    error, clamped to the exactly-tracked observed [min, max]. *)

val observe : histogram -> float -> unit

val percentile : histogram -> float -> float
(** [percentile h q] for [q] in [\[0, 100\]]; [nan] when empty. *)

val summary : histogram -> summary
val reset_histogram : histogram -> unit
val histogram_name : histogram -> string

(** {1 Registry-wide} *)

val names : unit -> string list
(** Registered metric names, sorted. *)

val reset : unit -> unit
(** Zero every registered metric (registrations are kept). *)

val to_json : unit -> string
(** The registry as a flat JSON object:
    [{"counters": {...}, "gauges": {...}, "histograms": {...}}] with
    per-histogram count/sum/min/max/p50/p95/p99. *)

val export : string -> unit
(** Write {!to_json} to a file. *)
