let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          try Some (really_input_string ic (in_channel_length ic))
          with Sys_error _ | End_of_file -> None)

(* A per-process counter keeps temporary names unique across pool domains
   writing into the same directory. *)
let tmp_seq = Atomic.make 0

let write_atomic path content =
  let tmp =
    Printf.sprintf "%s.%d.%d.tmp" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_seq 1)
  in
  let oc = open_out_bin tmp in
  (try
     output_string oc content;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir && not (Sys.file_exists parent) then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ as e -> (
      (* Lost a creation race, or a genuine failure: keep quiet only when
         the directory is there now. *)
      match Sys.is_directory dir with
      | true -> ()
      | false | (exception Sys_error _) -> raise e)
  end

let rec remove_recursive path =
  match Sys.is_directory path with
  | exception Sys_error _ -> ()
  | true ->
      Array.iter
        (fun entry -> remove_recursive (Filename.concat path entry))
        (Sys.readdir path);
      (try Sys.rmdir path with Sys_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
