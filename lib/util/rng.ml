type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* SplitMix64 output function (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = mix s }

let derive seed index =
  if index < 0 then invalid_arg "Rng.derive: negative index";
  (* Pure in (seed, index): land each task on its own well-separated point
     of the SplitMix64 sequence, then scramble so neighbouring indices are
     decorrelated. Unlike [split], no generator is advanced. *)
  let z =
    Int64.add (Int64.of_int seed)
      (Int64.mul golden_gamma (Int64.of_int (index + 1)))
  in
  { state = mix z }

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value fits OCaml's 63-bit native int. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let range t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits scaled into [0, 1). *)
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r /. 9007199254740992.0 *. bound

let uniform t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mu +. (sigma *. z)

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
