(* Process-global metrics registry: named counters, gauges and log-scale
   histograms.

   Handles are interned by name (the first [counter "x"] creates it, later
   calls return the same cell), so modules declare their metrics at top
   level and bump them from any domain:

   - counters are a single [Atomic] fetch-and-add — lock-free, safe from
     every pool worker;
   - gauges and histograms take a per-metric mutex on update (they carry
     floats and multi-word state), held for a handful of instructions.

   Histograms are geometric ("log-scale"): bucket [i >= 1] covers
   [base * gamma^(i-1), base * gamma^i), bucket 0 everything below [base].
   With base 1e-9 and gamma 1.25 the 192 buckets span nanoseconds to about
   a minute at a guaranteed 25% relative resolution — good enough to read
   p50/p95 of solve latencies or iteration counts straight off the bucket
   boundaries.  Exact count, sum, min and max are tracked alongside. *)

type counter = { c_name : string; cell : int Atomic.t }
type gauge = { g_name : string; g_mutex : Mutex.t; mutable g_value : float }

let n_buckets = 192
let bucket_base = 1e-9
let bucket_gamma = 1.25
let log_gamma = Float.log bucket_gamma

type histogram = {
  h_name : string;
  h_mutex : Mutex.t;
  buckets : int array;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type summary = {
  count : int;
  sum : float;
  min : float;  (** +inf when empty *)
  max : float;  (** -inf when empty *)
  p50 : float;
  p95 : float;
  p99 : float;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry_mutex = Mutex.create ()
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let intern name make cast describe =
  Mutex.lock registry_mutex;
  let m =
    match Hashtbl.find_opt registry name with
    | Some m -> m
    | None ->
        let m = make () in
        Hashtbl.replace registry name m;
        m
  in
  Mutex.unlock registry_mutex;
  match cast m with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Metricsreg: %S already registered as a %s" name describe)

let counter name =
  intern name
    (fun () -> Counter { c_name = name; cell = Atomic.make 0 })
    (function Counter c -> Some c | _ -> None)
    "non-counter"

let gauge name =
  intern name
    (fun () -> Gauge { g_name = name; g_mutex = Mutex.create (); g_value = 0.0 })
    (function Gauge g -> Some g | _ -> None)
    "non-gauge"

let histogram name =
  intern name
    (fun () ->
      Histogram
        {
          h_name = name;
          h_mutex = Mutex.create ();
          buckets = Array.make n_buckets 0;
          h_count = 0;
          h_sum = 0.0;
          h_min = infinity;
          h_max = neg_infinity;
        })
    (function Histogram h -> Some h | _ -> None)
    "non-histogram"

(* --- counters ----------------------------------------------------------- *)

let incr c = ignore (Atomic.fetch_and_add c.cell 1)
let add c n = ignore (Atomic.fetch_and_add c.cell n)
let counter_value c = Atomic.get c.cell
let set_counter c v = Atomic.set c.cell v
let counter_name c = c.c_name

(* --- gauges ------------------------------------------------------------- *)

let locked m f =
  Mutex.lock m;
  let v = f () in
  Mutex.unlock m;
  v

let set_gauge g v = locked g.g_mutex (fun () -> g.g_value <- v)
let add_gauge g dv = locked g.g_mutex (fun () -> g.g_value <- g.g_value +. dv)
let gauge_value g = locked g.g_mutex (fun () -> g.g_value)
let gauge_name g = g.g_name

(* --- histograms --------------------------------------------------------- *)

let bucket_index v =
  if not (v >= bucket_base) then 0 (* also catches nan and negatives *)
  else
    let i = 1 + int_of_float (Float.log (v /. bucket_base) /. log_gamma) in
    if i >= n_buckets then n_buckets - 1 else i

(* Geometric midpoint of bucket [i] — the value reported for percentiles
   landing in it, exact to the bucket's 25% width. *)
let bucket_mid i =
  if i = 0 then bucket_base
  else bucket_base *. Float.exp ((float_of_int i -. 0.5) *. log_gamma)

let observe h v =
  let i = bucket_index v in
  Mutex.lock h.h_mutex;
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  Mutex.unlock h.h_mutex

let percentile_locked h q =
  if h.h_count = 0 then nan
  else begin
    let rank =
      let r = int_of_float (Float.ceil (q /. 100.0 *. float_of_int h.h_count)) in
      if r < 1 then 1 else if r > h.h_count then h.h_count else r
    in
    let rec walk i cum =
      if i >= n_buckets then h.h_max
      else
        let cum = cum + h.buckets.(i) in
        if cum >= rank then
          (* Clamp to the observed range: the extreme buckets are wide and
             min/max are tracked exactly. *)
          Float.min h.h_max (Float.max h.h_min (bucket_mid i))
        else walk (i + 1) cum
    in
    walk 0 0
  end

let percentile h q = locked h.h_mutex (fun () -> percentile_locked h q)

let summary h =
  locked h.h_mutex (fun () ->
      {
        count = h.h_count;
        sum = h.h_sum;
        min = h.h_min;
        max = h.h_max;
        p50 = percentile_locked h 50.0;
        p95 = percentile_locked h 95.0;
        p99 = percentile_locked h 99.0;
      })

let reset_histogram h =
  locked h.h_mutex (fun () ->
      Array.fill h.buckets 0 n_buckets 0;
      h.h_count <- 0;
      h.h_sum <- 0.0;
      h.h_min <- infinity;
      h.h_max <- neg_infinity)

let histogram_name h = h.h_name

(* --- registry-wide operations ------------------------------------------- *)

let all_metrics () =
  Mutex.lock registry_mutex;
  let ms = Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [] in
  Mutex.unlock registry_mutex;
  List.sort (fun (a, _) (b, _) -> compare a b) ms

let names () = List.map fst (all_metrics ())

let reset () =
  List.iter
    (fun (_, m) ->
      match m with
      | Counter c -> Atomic.set c.cell 0
      | Gauge g -> set_gauge g 0.0
      | Histogram h -> reset_histogram h)
    (all_metrics ())

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_finite f then Printf.sprintf "%.17g" f else "null"

(* Flat metrics.json: one object per kind, metric names as keys, sorted —
   byte-stable for a given set of values. *)
let to_json () =
  let b = Buffer.create 1024 in
  let section title render filter =
    Buffer.add_string b (Printf.sprintf "  \"%s\": {\n" title);
    let entries = List.filter_map filter (all_metrics ()) in
    List.iteri
      (fun i (name, body) ->
        Buffer.add_string b
          (Printf.sprintf "    \"%s\": %s%s\n" (json_escape name) body
             (if i = List.length entries - 1 then "" else ",")))
      entries;
    Buffer.add_string b (Printf.sprintf "  }%s\n" render)
  in
  Buffer.add_string b "{\n";
  section "counters" ","
    (fun (name, m) ->
      match m with
      | Counter c -> Some (name, string_of_int (counter_value c))
      | _ -> None);
  section "gauges" ","
    (fun (name, m) ->
      match m with
      | Gauge g -> Some (name, json_float (gauge_value g))
      | _ -> None);
  section "histograms" ""
    (fun (name, m) ->
      match m with
      | Histogram h ->
          let s = summary h in
          Some
            ( name,
              Printf.sprintf
                "{\"count\": %d, \"sum\": %s, \"min\": %s, \"max\": %s, \
                 \"p50\": %s, \"p95\": %s, \"p99\": %s}"
                s.count (json_float s.sum)
                (json_float (if s.count = 0 then nan else s.min))
                (json_float (if s.count = 0 then nan else s.max))
                (json_float s.p50) (json_float s.p95) (json_float s.p99) )
      | _ -> None);
  Buffer.add_string b "}\n";
  Buffer.contents b

let export path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ()))
