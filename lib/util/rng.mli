(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic component of the library (benchmark generation, the GA
    floorplanner, technology-library synthesis) draws from an explicit [Rng.t]
    so that experiments are reproducible from a single integer seed. *)

type t

val create : int -> t
(** [create seed] returns a generator whose stream is a pure function of
    [seed]. *)

val copy : t -> t
(** Independent copy sharing the current position. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    decorrelated from [t]'s subsequent output. *)

val derive : int -> int -> t
(** [derive seed index] is an independent generator for task [index] of a
    parallel batch seeded with [seed]: a pure function of its two
    arguments, with streams decorrelated across indices. This is the seed
    splitting the {!Pool} determinism contract prescribes — because no
    shared generator is advanced, the stream task [index] consumes does not
    depend on how many domains run the batch or in which order tasks
    finish. [index] must be non-negative. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [\[lo, hi\]] (inclusive). Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool

val gaussian : t -> mu:float -> sigma:float -> float
(** Box–Muller normal deviate. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
