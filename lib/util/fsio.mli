(** Small filesystem helpers shared by the artifact-writing layers
    (campaign runner, bench JSON emitters).

    The one interesting guarantee is {!write_atomic}: readers never see a
    half-written file. Everything else is a total wrapper around [Sys]
    that turns the usual exception noise into options and no-ops, which
    is what a resumable runner wants — a missing or unreadable artifact
    is "recompute it", not a crash. *)

val read_file : string -> string option
(** The whole file as bytes; [None] when it does not exist or cannot be
    read. *)

val write_atomic : string -> string -> unit
(** [write_atomic path content] writes [content] to a unique temporary
    file in [path]'s directory and renames it over [path]. On POSIX the
    rename is atomic, so concurrent readers (and a campaign killed
    mid-write) observe either the old file or the complete new one,
    never a prefix. Concurrent writers of the same content are benign:
    last rename wins, bytes identical. *)

val mkdir_p : string -> unit
(** Create a directory and any missing parents; existing directories are
    fine (racing creators too). *)

val remove_recursive : string -> unit
(** Best-effort recursive delete; missing paths are a no-op. Used by
    tests and the bench harness to clean scratch campaign directories. *)
