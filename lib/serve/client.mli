(** A blocking [tatsd] client: one connection, framed JSON round trips.

    The client is deliberately minimal — connect, send one frame, read one
    frame — because the protocol is symmetric enough that tests, the
    [tats client] subcommand and the bench load generator all share it.
    One {!t} must not be used from two threads at once; the bench's
    concurrent load generator opens one connection per worker instead. *)

type t

val connect : ?timeout_s:float -> ?max_frame:int -> string -> t
(** Connect to the Unix-domain socket at the given path. [timeout_s]
    (default 30) bounds each receive via [SO_RCVTIMEO] so a dead server
    surfaces as an error rather than a hang; [max_frame] as in
    {!Frame.read}. Raises [Unix.Unix_error] when the socket is absent or
    refuses. *)

val call : t -> Json.t -> (Json.t, string) result
(** Send one JSON value as a frame and block for the reply frame.
    [Error] covers transport failures (closed socket, timeout, truncated
    or oversized reply) and an unparseable reply body. *)

val request : t -> Protocol.request -> (Json.t, string) result
(** [call] on {!Protocol.request_to_json}. *)

val close : t -> unit
(** Idempotent. *)

val with_client :
  ?timeout_s:float -> ?max_frame:int -> string -> (t -> 'a) -> 'a
(** [connect], run, [close] (also on exception). *)
