type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- printing ----------------------------------------------------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest decimal form that parses back to the same bits: floats
   round-trip exactly through the wire, which is what lets the test suite
   compare served results to direct library calls with [=]. *)
let number_string f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.0f" f
  else
    let s15 = Printf.sprintf "%.15g" f in
    if float_of_string s15 = f then s15
    else
      let s16 = Printf.sprintf "%.16g" f in
      if float_of_string s16 = f then s16 else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (number_string f)
  | Str s -> escape_string buf s
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj members ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          write buf v)
        members;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------ *)

exception Parse_error of int * string

let max_depth = 512

type state = { s : string; mutable pos : int }

let fail st msg = raise (Parse_error (st.pos, msg))
let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let next st =
  match peek st with
  | Some c ->
      st.pos <- st.pos + 1;
      c
  | None -> fail st "unexpected end of input"

let skip_ws st =
  while
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        st.pos <- st.pos + 1;
        true
    | _ -> false
  do
    ()
  done

let expect st c =
  let got = next st in
  if got <> c then fail st (Printf.sprintf "expected %C, got %C" c got)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "invalid literal (expected %s)" word)

(* UTF-8 encode one code point (surrogate pairs already combined). *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex4 st =
  let v = ref 0 in
  for _ = 1 to 4 do
    let c = next st in
    let d =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail st "invalid \\u escape"
    in
    v := (!v * 16) + d
  done;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match next st with
    | '"' -> Buffer.contents buf
    | '\\' -> (
        (match next st with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
            let cp = hex4 st in
            let cp =
              (* High surrogate: require and combine the low half. *)
              if cp >= 0xD800 && cp <= 0xDBFF then begin
                expect st '\\';
                expect st 'u';
                let lo = hex4 st in
                if lo < 0xDC00 || lo > 0xDFFF then
                  fail st "unpaired surrogate in \\u escape";
                0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
              end
              else if cp >= 0xDC00 && cp <= 0xDFFF then
                fail st "unpaired surrogate in \\u escape"
              else cp
            in
            add_utf8 buf cp
        | c -> fail st (Printf.sprintf "invalid escape \\%c" c));
        loop ())
    | c when Char.code c < 0x20 -> fail st "raw control character in string"
    | c ->
        Buffer.add_char buf c;
        loop ()
  in
  loop ()

let parse_number st =
  let start = st.pos in
  let consume_digits () =
    let had = ref false in
    while (match peek st with Some '0' .. '9' -> true | _ -> false) do
      had := true;
      st.pos <- st.pos + 1
    done;
    if not !had then fail st "malformed number"
  in
  if peek st = Some '-' then st.pos <- st.pos + 1;
  consume_digits ();
  if peek st = Some '.' then begin
    st.pos <- st.pos + 1;
    consume_digits ()
  end;
  (match peek st with
  | Some ('e' | 'E') ->
      st.pos <- st.pos + 1;
      (match peek st with
      | Some ('+' | '-') -> st.pos <- st.pos + 1
      | _ -> ());
      consume_digits ()
  | _ -> ());
  let text = String.sub st.s start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> fail st "malformed number"

let rec parse_value st depth =
  if depth > max_depth then fail st "nesting too deep";
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number st)
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        Arr []
      end
      else begin
        let items = ref [] in
        let rec loop () =
          items := parse_value st (depth + 1) :: !items;
          skip_ws st;
          match next st with
          | ',' -> loop ()
          | ']' -> ()
          | c -> fail st (Printf.sprintf "expected ',' or ']', got %C" c)
        in
        loop ();
        Arr (List.rev !items)
      end
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let members = ref [] in
        let rec loop () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st (depth + 1) in
          members := (k, v) :: !members;
          skip_ws st;
          match next st with
          | ',' -> loop ()
          | '}' -> ()
          | c -> fail st (Printf.sprintf "expected ',' or '}', got %C" c)
        in
        loop ();
        Obj (List.rev !members)
      end
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

let of_string s =
  let st = { s; pos = 0 } in
  match
    let v = parse_value st 0 in
    skip_ws st;
    if st.pos <> String.length s then fail st "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Parse_error (pos, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" pos msg)

(* --- accessors ---------------------------------------------------------- *)

let mem k = function Obj members -> List.assoc_opt k members | _ -> None
let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None
let bool = function Bool b -> Some b | _ -> None
let arr = function Arr items -> Some items | _ -> None

let float_array v =
  match v with
  | Arr items ->
      let n = List.length items in
      let out = Array.make n 0.0 in
      let ok = ref true in
      List.iteri
        (fun i item ->
          match item with Num f -> out.(i) <- f | _ -> ok := false)
        items;
      if !ok then Some out else None
  | _ -> None

let get key extract ~default obj =
  match mem key obj with
  | None -> Some default
  | Some v -> extract v

let get_bool ~default k obj = get k bool ~default obj
let get_num ~default k obj = get k num ~default obj
let get_str ~default k obj = get k str ~default obj
