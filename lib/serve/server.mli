(** The [tatsd] server core: a Unix-domain-socket listener dispatching
    {!Protocol} requests onto the process-wide work-stealing pool.

    {1 Architecture}

    Three kinds of threads cooperate (all plain [Thread.t] — the domains
    stay inside {!Tats_util.Pool}):

    - an {e accept} thread [select]s on the listener with a short timeout
      so it can poll the stop flag, and spawns one reader per connection;
    - one {e reader} thread per connection decodes frames and requests.
      Control-plane kinds ([ping], [stats], [shutdown]) are answered
      inline; work-plane kinds ([schedule], [inquiry], [transient],
      [sleep]) go through admission control — a bounded queue; a full
      queue answers [overloaded] immediately rather than stalling the
      connection (the client knows {e now} and can back off);
    - a single {e dispatcher} thread dequeues up to [batch_max] admitted
      requests at a time and executes the batch with one
      {!Tats_util.Pool.parallel_map} call, so concurrent requests use the
      pool's domains while library-internal pool calls degrade to inline
      (nested-call contract). Being the pool's only client, the dispatcher
      never hits the cross-domain batch-serialization path.

    A request's [deadline_ms] is its {e queueing budget}: the dispatcher
    checks it at dequeue time and answers [deadline] instead of executing
    work whose result would arrive too late. Execution is never aborted
    mid-flight.

    Replies can be produced by the reader (errors) and the dispatcher
    (results) concurrently, so each connection carries a write mutex;
    frames from interleaved requests are matched by the echoed [id].

    {1 Shutdown}

    {!stop} is safe from any thread (including a reader handling a
    [shutdown] request): it only flips flags and signals. The drain then
    happens in {!wait}: stop accepting, let the dispatcher {e execute}
    everything already admitted (work admitted is work answered), reject
    new arrivals with [shutting_down], close the connections, join every
    thread and unlink the socket. *)

type config = {
  socket_path : string;
  max_queue : int;  (** admission-queue bound; beyond it, [overloaded] *)
  batch_max : int;  (** max requests executed per pool batch *)
  max_frame : int;  (** per-frame byte cap, see {!Frame.read} *)
}

val default_config : config
(** [{socket_path = "tatsd.sock"; max_queue = 64; batch_max = 8;
    max_frame = Frame.max_frame_default}] *)

type t

val create : config -> t
(** Binds and listens on [config.socket_path] (removing a stale socket
    file first), starts the accept and dispatcher threads, and returns.
    Raises [Unix.Unix_error] when the socket cannot be bound. *)

val engines : t -> Engines.t
(** The server's warmed-engine registry (for in-process inspection). *)

val stop : t -> unit
(** Request shutdown: stop admitting, wake everything. Idempotent,
    non-blocking, callable from any thread. *)

val signal_stop : t -> unit
(** The async-signal-safe half of {!stop}: flips the atomic stop flag and
    nothing else (no mutex — safe inside a [Sys.Signal_handle]). The
    accept thread notices within its 0.2 s poll and completes the stop.
    [tatsd]'s SIGINT/SIGTERM handlers call this. *)

val stopping : t -> bool

val stop_and_wait : t -> unit
(** [stop] followed by [wait] — the in-process test/bench teardown. *)

val wait : t -> unit
(** Blocks until the server has fully drained after a {!stop}: joins the
    accept thread, lets the dispatcher finish the admitted queue, closes
    every connection, joins the readers and unlinks the socket. *)
