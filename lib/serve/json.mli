(** A minimal JSON value type with a parser and a printer — the wire
    format of the {!Server} protocol, hand-rolled so the serving layer
    adds no dependencies beyond what the repo already links.

    The dialect is RFC 8259 minus two deliberate restrictions:

    - All numbers are OCaml [float]s. Integers up to 2{^53} survive the
      round trip exactly, which covers every count the protocol carries.
    - Non-finite floats have no JSON spelling; {!to_string} emits them as
      [null] (they never appear in well-formed replies — temperatures,
      latencies and counters are finite by construction).

    Printing uses the shortest [%.15g]/[%.16g]/[%.17g] form that parses
    back to the identical bit pattern, so a float that crosses the wire
    and is parsed again compares [=] to the original — the property the
    serve test suite's bit-identity checks lean on. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line, no insignificant whitespace) serialization.
    Object member order is preserved. *)

val of_string : string -> (t, string) result
(** Parse one JSON value; trailing non-whitespace is an error, as are
    unterminated strings/structures, bad escapes, malformed numbers, and
    nesting deeper than 512 (a cheap stack-overflow guard against
    adversarial ["[[[[..."] frames — see [test_serve]'s fuzz cases). The
    error string carries a 0-based byte offset. *)

(** {1 Accessors}

    Total functions used by the protocol decoder: each returns [None]
    (or the [default]) rather than raising on a shape mismatch. *)

val mem : string -> t -> t option
(** [mem k (Obj _)] is the value bound to the {e first} occurrence of
    [k]; [None] on missing keys and non-objects. *)

val str : t -> string option
val num : t -> float option
val bool : t -> bool option
val arr : t -> t list option

val float_array : t -> float array option
(** An [Arr] of numbers, as a float array; [None] on anything else. *)

val get_bool : default:bool -> string -> t -> bool option
(** [get_bool ~default k obj] is [Some b] when [k] is absent (then
    [default]) or bound to a boolean; [None] when bound to any other
    shape — absence is fine, a type error is not. [get_num]/[get_str]
    behave the same way. *)

val get_num : default:float -> string -> t -> float option
val get_str : default:string -> string -> t -> string option
