(** Length-prefixed framing over a stream socket.

    One frame is a 4-byte big-endian unsigned payload length followed by
    that many bytes of UTF-8 JSON. The prefix makes message boundaries
    explicit on a byte stream without any in-band delimiter scanning, and
    lets the receiver reject an oversized request {e before} buffering it
    — the first line of admission control.

    Reads distinguish three failure shapes, because the server reacts
    differently to each: a clean [Eof] between frames ends the
    connection silently; a [Truncated] frame (EOF or error mid-frame)
    means the peer died mid-send and the connection is unusable; an
    [Oversized] length prefix is reported back to the peer (the framing
    is still synchronized — the payload was never read) before the
    server closes the connection rather than consume an attacker-sized
    allocation. *)

val max_frame_default : int
(** 4 MiB — far above any request or reply the protocol produces. *)

type read_error =
  | Eof  (** clean end of stream on a frame boundary *)
  | Truncated  (** stream ended inside a length prefix or payload *)
  | Oversized of int
      (** declared payload length, which exceeded [max_frame]; the
          payload bytes were {e not} consumed *)

val read : ?max_frame:int -> Unix.file_descr -> (string, read_error) result
(** Blocking read of one frame's payload. Retries interrupted reads
    ([EINTR]); any other [Unix_error] maps to [Truncated] ([Eof] if on
    the frame boundary). *)

val write : Unix.file_descr -> string -> unit
(** Blocking write of one frame (prefix + payload). Raises
    [Invalid_argument] when the payload cannot be length-prefixed in 31
    bits, and lets [Unix_error] (e.g. [EPIPE] on a dead peer) escape to
    the caller. *)

val pp_read_error : Format.formatter -> read_error -> unit
