type t = {
  fd : Unix.file_descr;
  max_frame : int;
  mutable closed : bool;
}

let connect ?(timeout_s = 30.0) ?(max_frame = Frame.max_frame_default) path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_UNIX path);
     (* SO_RCVTIMEO may be unsupported on exotic platforms; a hangless
        receive is best-effort there. *)
     try Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s
     with Unix.Unix_error _ | Invalid_argument _ -> ()
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; max_frame; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let call t json =
  if t.closed then Error "client is closed"
  else
    match Frame.write t.fd (Json.to_string json) with
    | () -> (
        match Frame.read ~max_frame:t.max_frame t.fd with
        | Ok payload -> (
            match Json.of_string payload with
            | Ok reply -> Ok reply
            | Error msg -> Error ("unparseable reply: " ^ msg))
        | Error e -> Error (Format.asprintf "%a" Frame.pp_read_error e))
    | exception Unix.Unix_error (e, _, _) ->
        Error ("send failed: " ^ Unix.error_message e)

let request t req = call t (Protocol.request_to_json req)

let with_client ?timeout_s ?max_frame path f =
  let t = connect ?timeout_s ?max_frame path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
