let max_frame_default = 4 * 1024 * 1024

type read_error = Eof | Truncated | Oversized of int

let pp_read_error ppf = function
  | Eof -> Format.fprintf ppf "end of stream"
  | Truncated -> Format.fprintf ppf "truncated frame"
  | Oversized n -> Format.fprintf ppf "oversized frame (%d bytes declared)" n

(* [`Full] read all [len] bytes; [`None] the stream ended (or errored)
   before the first byte; [`Partial] it ended inside the span. *)
let read_exact fd buf len =
  let rec go pos =
    if pos = len then `Full
    else
      match Unix.read fd buf pos (len - pos) with
      | 0 -> if pos = 0 then `None else `Partial
      | n -> go (pos + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
      | exception Unix.Unix_error _ -> if pos = 0 then `None else `Partial
  in
  go 0

let read ?(max_frame = max_frame_default) fd =
  let header = Bytes.create 4 in
  match read_exact fd header 4 with
  | `None -> Error Eof
  | `Partial -> Error Truncated
  | `Full -> (
      let len =
        (Char.code (Bytes.get header 0) lsl 24)
        lor (Char.code (Bytes.get header 1) lsl 16)
        lor (Char.code (Bytes.get header 2) lsl 8)
        lor Char.code (Bytes.get header 3)
      in
      if len > max_frame then Error (Oversized len)
      else
        let payload = Bytes.create len in
        match read_exact fd payload len with
        | `Full -> Ok (Bytes.unsafe_to_string payload)
        | `None | `Partial -> Error Truncated)

let rec really_write fd buf pos len =
  if len > 0 then
    match Unix.write fd buf pos len with
    | n -> really_write fd buf (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> really_write fd buf pos len

let write fd payload =
  let len = String.length payload in
  if len > 0x3FFFFFFF then invalid_arg "Frame.write: payload too large";
  let msg = Bytes.create (4 + len) in
  Bytes.set msg 0 (Char.chr ((len lsr 24) land 0xFF));
  Bytes.set msg 1 (Char.chr ((len lsr 16) land 0xFF));
  Bytes.set msg 2 (Char.chr ((len lsr 8) land 0xFF));
  Bytes.set msg 3 (Char.chr (len land 0xFF));
  Bytes.blit_string payload 0 msg 4 len;
  really_write fd msg 0 (4 + len)
