module Policy = Tats_sched.Policy
module Online = Tats_sched.Online
module Constraints = Tats_sched.Constraints
module Catalog = Tats_techlib.Catalog

type arch = Platform | Cosynth

let arch_name = function Platform -> "platform" | Cosynth -> "cosynth"

type schedule_params = {
  bench : int;
  policy : Policy.t;
  arch : arch;
  n_pes : int;
  platform : string option;
  pins : (int * Constraints.pin) list;
  isolation : (int * int) list;
}

type transient_params = {
  sched : schedule_params;
  periods : int;
  dt : float option;
  time_unit : float;
  exact : bool;
}

type inquiry_params = {
  n_pes : int;
  power : float array;
  idle : float array;
}

type online_arrivals = Zero | Sporadic | Trace

let online_arrivals_name = function
  | Zero -> "zero"
  | Sporadic -> "sporadic"
  | Trace -> "trace"

type online_params = {
  o_bench : int;
  o_n_pes : int;
  o_policy : Online.policy;
  o_arrivals : online_arrivals;
  o_seed : int;
  o_mean_gap : float;
  o_platform : string option;
  o_pins : (int * Constraints.pin) list;
  o_isolation : (int * int) list;
}

type kind =
  | Ping
  | Stats
  | Schedule of schedule_params
  | Inquiry of inquiry_params
  | Transient of transient_params
  | Online of online_params
  | Sleep of float
  | Shutdown

let kind_name = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Schedule _ -> "schedule"
  | Inquiry _ -> "inquiry"
  | Transient _ -> "transient"
  | Online _ -> "online"
  | Sleep _ -> "sleep"
  | Shutdown -> "shutdown"

type request = {
  id : Json.t option;
  deadline_ms : float option;
  kind : kind;
}

let request ?id ?deadline_ms kind = { id; deadline_ms; kind }

(* --- decoding ----------------------------------------------------------- *)

let ( let* ) = Result.bind

let field_error field what =
  Error (Printf.sprintf "field %S: %s" field what)

let bench_of_name = function
  | "Bm1" -> Ok 0
  | "Bm2" -> Ok 1
  | "Bm3" -> Ok 2
  | "Bm4" -> Ok 3
  | other ->
      field_error "bench" (Printf.sprintf "unknown benchmark %S (want Bm1..Bm4)" other)

let bench_name i = Printf.sprintf "Bm%d" (i + 1)

let req_get obj field extract ~default ~what =
  match extract ~default field obj with
  | Some v -> Ok v
  | None -> field_error field what

(* --- heterogeneous platform specs --------------------------------------- *)

let decode_platform obj =
  match Json.mem "platform" obj with
  | None -> Ok None
  | Some v -> (
      match Json.str v with
      | None -> field_error "platform" "must be a string"
      | Some name ->
          if Option.is_some (Catalog.platform_named name) then Ok (Some name)
          else
            field_error "platform"
              (Printf.sprintf "unknown platform %S (want %s)" name
                 (String.concat "|" (Catalog.platform_names ()))))

let nat_field item name =
  match Option.bind (Json.mem name item) Json.num with
  | Some f when Float.is_finite f && f >= 0.0 && Float.is_integer f ->
      Some (int_of_float f)
  | _ -> None

let decode_pins obj =
  match Json.mem "pins" obj with
  | None -> Ok []
  | Some (Json.Arr items) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest -> (
            match
              (nat_field item "task", nat_field item "pe", nat_field item "kind")
            with
            | Some t, Some p, None -> go ((t, Constraints.To_pe p) :: acc) rest
            | Some t, None, Some k -> go ((t, Constraints.To_kind k) :: acc) rest
            | _ ->
                field_error "pins"
                  "each pin must be {\"task\": int, \"pe\": int} or {\"task\": \
                   int, \"kind\": int}")
      in
      go [] items
  | Some _ -> field_error "pins" "must be an array of pin objects"

let decode_isolation obj =
  match Json.mem "isolation" obj with
  | None -> Ok []
  | Some (Json.Arr items) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest -> (
            match (nat_field item "task", nat_field item "class") with
            | Some t, Some c -> go ((t, c) :: acc) rest
            | _ ->
                field_error "isolation"
                  "each entry must be {\"task\": int, \"class\": int}")
      in
      go [] items
  | Some _ -> field_error "isolation" "must be an array of class objects"

(* Encoded only when present/non-empty, so requests without the
   heterogeneity extension keep their historical byte-exact encodings. *)
let hetero_fields ~platform ~pins ~isolation =
  (match platform with Some n -> [ ("platform", Json.Str n) ] | None -> [])
  @ (match pins with
    | [] -> []
    | pins ->
        [
          ( "pins",
            Json.Arr
              (List.map
                 (fun (t, pin) ->
                   let t = Json.Num (float_of_int t) in
                   match pin with
                   | Constraints.To_pe p ->
                       Json.Obj
                         [ ("task", t); ("pe", Json.Num (float_of_int p)) ]
                   | Constraints.To_kind k ->
                       Json.Obj
                         [ ("task", t); ("kind", Json.Num (float_of_int k)) ])
                 pins) );
        ])
  @
  match isolation with
  | [] -> []
  | iso ->
      [
        ( "isolation",
          Json.Arr
            (List.map
               (fun (t, c) ->
                 Json.Obj
                   [
                     ("task", Json.Num (float_of_int t));
                     ("class", Json.Num (float_of_int c));
                   ])
               iso) );
      ]

let decode_schedule obj =
  let* bench_s = req_get obj "bench" Json.get_str ~default:"Bm1" ~what:"must be a string" in
  let* bench = bench_of_name bench_s in
  let* policy_s =
    req_get obj "policy" Json.get_str ~default:"thermal" ~what:"must be a string"
  in
  let* policy =
    match Policy.of_name policy_s with
    | Some p -> Ok p
    | None -> field_error "policy" (Printf.sprintf "unknown policy %S" policy_s)
  in
  let* arch_s =
    req_get obj "arch" Json.get_str ~default:"platform" ~what:"must be a string"
  in
  let* arch =
    match arch_s with
    | "platform" -> Ok Platform
    | "cosynth" -> Ok Cosynth
    | other ->
        field_error "arch"
          (Printf.sprintf "unknown architecture %S (want platform|cosynth)" other)
  in
  let* n_pes_f = req_get obj "n_pes" Json.get_num ~default:4.0 ~what:"must be a number" in
  let n_pes = int_of_float n_pes_f in
  if n_pes < 1 || n_pes > 64 then field_error "n_pes" "must be in [1, 64]"
  else
    let* platform = decode_platform obj in
    let* pins = decode_pins obj in
    let* isolation = decode_isolation obj in
    if arch = Cosynth && (platform <> None || pins <> [] || isolation <> [])
    then
      field_error "arch"
        "platform/pins/isolation require the platform architecture"
    else Ok { bench; policy; arch; n_pes; platform; pins; isolation }

let decode_transient obj =
  let* sched = decode_schedule obj in
  let* periods_f =
    req_get obj "periods" Json.get_num ~default:50.0 ~what:"must be a number"
  in
  let periods = int_of_float periods_f in
  if periods < 2 then field_error "periods" "must be >= 2"
  else
    let* dt =
      match Json.mem "dt" obj with
      | None -> Ok None
      | Some v -> (
          match Json.num v with
          | Some d when d > 0.0 -> Ok (Some d)
          | _ -> field_error "dt" "must be a positive number")
    in
    let* time_unit =
      req_get obj "time_unit" Json.get_num ~default:1e-3 ~what:"must be a number"
    in
    if time_unit <= 0.0 then field_error "time_unit" "must be positive"
    else
      let* exact =
        req_get obj "exact" Json.get_bool ~default:false ~what:"must be a boolean"
      in
      Ok { sched; periods; dt; time_unit; exact }

let decode_inquiry obj =
  let* power =
    match Json.mem "power" obj with
    | Some v -> (
        match Json.float_array v with
        | Some a when Array.length a > 0 && Array.for_all Float.is_finite a ->
            Ok a
        | _ -> field_error "power" "must be a non-empty array of finite numbers")
    | None -> field_error "power" "required"
  in
  let* n_pes_f =
    req_get obj "n_pes" Json.get_num
      ~default:(float_of_int (Array.length power))
      ~what:"must be a number"
  in
  let n_pes = int_of_float n_pes_f in
  if n_pes <> Array.length power then
    field_error "n_pes" "must equal the length of \"power\""
  else
    let* idle =
      match Json.mem "idle" obj with
      | None -> Ok (Array.make n_pes 0.0)
      | Some v -> (
          match Json.float_array v with
          | Some a when Array.length a = n_pes && Array.for_all Float.is_finite a
            ->
              Ok a
          | _ ->
              field_error "idle"
                "must be an array of finite numbers, one per PE")
    in
    Ok { n_pes; power; idle }

let decode_online obj =
  let* bench_s = req_get obj "bench" Json.get_str ~default:"Bm1" ~what:"must be a string" in
  let* o_bench = bench_of_name bench_s in
  let* policy_s =
    req_get obj "policy" Json.get_str ~default:"thermal" ~what:"must be a string"
  in
  let* policy =
    match Online.policy_of_name policy_s with
    | Some p -> Ok p
    | None ->
        field_error "policy"
          (Printf.sprintf "unknown online policy %S (want baseline|h1|h2|h3|thermal|reactive)"
             policy_s)
  in
  let* o_policy =
    match Json.mem "trigger" obj with
    | None -> Ok policy
    | Some v -> (
        match (policy, Json.num v) with
        | Online.Reactive r, Some t when t > 0.0 && Float.is_finite t ->
            Ok (Online.Reactive { r with Online.trigger = t })
        | Online.Reactive _, _ -> field_error "trigger" "must be a positive number"
        | Online.Mirror _, _ ->
            field_error "trigger" "only meaningful with the reactive policy")
  in
  let* arrivals_s =
    req_get obj "arrivals" Json.get_str ~default:"sporadic" ~what:"must be a string"
  in
  let* o_arrivals =
    match arrivals_s with
    | "zero" -> Ok Zero
    | "sporadic" -> Ok Sporadic
    | "trace" -> Ok Trace
    | other ->
        field_error "arrivals"
          (Printf.sprintf "unknown arrival stream %S (want zero|sporadic|trace)" other)
  in
  let* seed_f = req_get obj "seed" Json.get_num ~default:1.0 ~what:"must be a number" in
  let o_seed = int_of_float seed_f in
  if o_seed < 0 then field_error "seed" "must be non-negative"
  else
    let* o_mean_gap =
      req_get obj "mean_gap" Json.get_num ~default:25.0 ~what:"must be a number"
    in
    if not (o_mean_gap > 0.0 && Float.is_finite o_mean_gap) then
      field_error "mean_gap" "must be a positive number"
    else
      let* n_pes_f =
        req_get obj "n_pes" Json.get_num ~default:4.0 ~what:"must be a number"
      in
      let o_n_pes = int_of_float n_pes_f in
      if o_n_pes < 1 || o_n_pes > 64 then field_error "n_pes" "must be in [1, 64]"
      else
        let* o_platform = decode_platform obj in
        let* o_pins = decode_pins obj in
        let* o_isolation = decode_isolation obj in
        Ok
          {
            o_bench;
            o_n_pes;
            o_policy;
            o_arrivals;
            o_seed;
            o_mean_gap;
            o_platform;
            o_pins;
            o_isolation;
          }

let request_of_json json =
  match json with
  | Json.Obj _ ->
      let id = Json.mem "id" json in
      let* deadline_ms =
        match Json.mem "deadline_ms" json with
        | None -> Ok None
        | Some v -> (
            match Json.num v with
            | Some d when d >= 0.0 && Float.is_finite d -> Ok (Some d)
            | _ -> field_error "deadline_ms" "must be a non-negative number")
      in
      let* kind_s =
        match Json.mem "kind" json with
        | Some v -> (
            match Json.str v with
            | Some s -> Ok s
            | None -> field_error "kind" "must be a string")
        | None -> field_error "kind" "required"
      in
      let* kind =
        match kind_s with
        | "ping" -> Ok Ping
        | "stats" -> Ok Stats
        | "shutdown" -> Ok Shutdown
        | "schedule" ->
            let* p = decode_schedule json in
            Ok (Schedule p)
        | "inquiry" ->
            let* p = decode_inquiry json in
            Ok (Inquiry p)
        | "transient" ->
            let* p = decode_transient json in
            Ok (Transient p)
        | "online" ->
            let* p = decode_online json in
            Ok (Online p)
        | "sleep" ->
            let* ms =
              req_get json "ms" Json.get_num ~default:0.0 ~what:"must be a number"
            in
            if ms < 0.0 || ms > 60_000.0 then
              field_error "ms" "must be in [0, 60000]"
            else Ok (Sleep (ms /. 1000.0))
        | other -> field_error "kind" (Printf.sprintf "unknown kind %S" other)
      in
      Ok { id; deadline_ms; kind }
  | _ -> Error "request must be a JSON object"

(* --- encoding ----------------------------------------------------------- *)

let request_to_json { id; deadline_ms; kind } =
  let base = [ ("kind", Json.Str (kind_name kind)) ] in
  let base = match id with Some v -> ("id", v) :: base | None -> base in
  let base =
    match deadline_ms with
    | Some d -> base @ [ ("deadline_ms", Json.Num d) ]
    | None -> base
  in
  let params =
    let sched (p : schedule_params) =
      [
        ("bench", Json.Str (bench_name p.bench));
        ("policy", Json.Str (Policy.name p.policy));
        ("arch", Json.Str (arch_name p.arch));
        ("n_pes", Json.Num (float_of_int p.n_pes));
      ]
      @ hetero_fields ~platform:p.platform ~pins:p.pins ~isolation:p.isolation
    in
    match kind with
    | Ping | Stats | Shutdown -> []
    | Sleep s -> [ ("ms", Json.Num (s *. 1000.0)) ]
    | Schedule p -> sched p
    | Inquiry p ->
        [
          ("n_pes", Json.Num (float_of_int p.n_pes));
          ("power", Json.Arr (Array.to_list (Array.map (fun f -> Json.Num f) p.power)));
          ("idle", Json.Arr (Array.to_list (Array.map (fun f -> Json.Num f) p.idle)));
        ]
    | Transient p ->
        sched p.sched
        @ [
            ("periods", Json.Num (float_of_int p.periods));
            ("time_unit", Json.Num p.time_unit);
            ("exact", Json.Bool p.exact);
          ]
        @ (match p.dt with Some d -> [ ("dt", Json.Num d) ] | None -> [])
    | Online p ->
        [
          ("bench", Json.Str (bench_name p.o_bench));
          ("policy", Json.Str (Online.policy_name p.o_policy));
          ("arrivals", Json.Str (online_arrivals_name p.o_arrivals));
          ("seed", Json.Num (float_of_int p.o_seed));
          ("mean_gap", Json.Num p.o_mean_gap);
          ("n_pes", Json.Num (float_of_int p.o_n_pes));
        ]
        @ (match p.o_policy with
          | Online.Reactive r -> [ ("trigger", Json.Num r.Online.trigger) ]
          | Online.Mirror _ -> [])
        @ hetero_fields ~platform:p.o_platform ~pins:p.o_pins
            ~isolation:p.o_isolation
  in
  Json.Obj (base @ params)

(* --- replies ------------------------------------------------------------ *)

type error_code = Bad_request | Overloaded | Deadline | Shutting_down | Internal

let error_code_name = function
  | Bad_request -> "bad_request"
  | Overloaded -> "overloaded"
  | Deadline -> "deadline"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

let with_id id members =
  match id with Some v -> ("id", v) :: members | None -> members

let ok_reply ?id ~kind payload =
  Json.Obj (with_id id (("ok", Json.Bool true) :: ("kind", Json.Str kind) :: payload))

let error_reply ?id code message =
  Json.Obj
    (with_id id
       [
         ("ok", Json.Bool false);
         ( "error",
           Json.Obj
             [
               ("code", Json.Str (error_code_name code));
               ("message", Json.Str message);
             ] );
       ])

let reply_ok reply =
  match Json.mem "ok" reply with Some (Json.Bool b) -> b | _ -> false

let reply_error reply =
  match Json.mem "error" reply with
  | Some err -> (
      match (Json.mem "code" err, Json.mem "message" err) with
      | Some (Json.Str code), Some (Json.Str msg) -> Some (code, msg)
      | Some (Json.Str code), _ -> Some (code, "")
      | _ -> None)
  | None -> None
