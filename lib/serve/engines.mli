(** Warmed thermal-engine registry: one {!Tats_thermal.Hotspot} facade
    (and therefore one {!Tats_thermal.Inquiry} engine and one
    quantized-power cache) per {e platform fingerprint}, shared across
    every request the server dispatches.

    The quantized-power inquiry cache already hits 60%+ {e within} one
    scheduling run; a long-running server sees the same platforms and
    similar power vectors over and over {e across} requests, so keeping
    the engine (influence matrix, factored network, cache) alive between
    requests converts the first request's warm-up into every later
    request's fast path. Cross-request reuse is observable as a non-zero
    {!hit_rate} on a repeated-platform workload — the gate
    [BENCH_serve.json] enforces.

    A fingerprint identifies everything the engine's numbers depend on:
    currently ["platform:<n_pes>"] — the fixed grid of identical catalog
    PEs that {!Tats_cosynth.Flow.run_platform} would build for that
    width, with the default package. Co-synthesis requests are {e not}
    served from the registry: their placement is part of the answer, so
    each builds its own facade (see DESIGN.md §11, engine-sharing
    lifecycle).

    Sharing is sound for bit-identity because the facade is thread-safe
    and the cache is value-safe: a cache hit returns a bit-exact copy of
    what a fresh default-settings solve would produce
    ({!Tats_thermal.Inquiry}), so a served result never depends on which
    requests warmed the cache first. *)

type t

val create : unit -> t
(** An empty registry. Engines are built lazily, on first use of each
    fingerprint, under the registry mutex. *)

val platform : t -> n_pes:int -> Tats_thermal.Hotspot.t
(** The shared facade for the [n_pes]-wide platform: a grid layout of
    identical catalog PEs with the default package — numerically
    identical to the facade a fresh
    {!Tats_cosynth.Flow.run_platform} call would create. *)

val typed_platform : t -> Tats_techlib.Platform.t -> Tats_thermal.Hotspot.t
(** The shared facade for a typed (possibly heterogeneous) platform:
    one block per slot with the slot kind's area, fingerprinted
    ["platform-name:<name>"] — numerically identical to the facade
    {!Tats_cosynth.Flow.run_platform} builds for that platform. Builtin
    platforms are immutable, so the name identifies the geometry. *)

val count : t -> int
(** Distinct fingerprints currently warmed. *)

val fingerprints : t -> string list
(** Warmed fingerprints, sorted. *)

type stats = {
  engines : int;
  inquiries : int;  (** inquiries served across all registry engines *)
  cache_hits : int;
}

val stats : t -> stats
(** Aggregated {!Tats_thermal.Inquiry} counters over the registry's
    engines — the cross-request reuse measurement. Engines whose inquiry
    side was never touched contribute zeros. *)

val hit_rate : stats -> float
(** [cache_hits / inquiries], 0 when no inquiries were served. *)
