(** The `tatsd` request/response protocol: typed requests, their JSON
    decoding, and the reply envelopes.

    One frame ({!Frame}) carries one JSON object. Requests:

    {v
    request    := { "kind": KIND, ["id": any], ["deadline_ms": num], ...params }
    KIND       := "ping" | "stats" | "schedule" | "inquiry"
                | "transient" | "online" | "sleep" | "shutdown"
    schedule   := "bench": "Bm1".."Bm4", ["policy": POLICY = "thermal"],
                  ["arch": "platform" | "cosynth" = "platform"],
                  ["n_pes": int = 4], HETERO
    HETERO     := ["platform": "std4" | "biglittle4" | "mixed6"],
                  ["pins": [{"task": int, "pe": int}
                           |{"task": int, "kind": int}...]],
                  ["isolation": [{"task": int, "class": int}...]]
                  (platform architecture only)
    inquiry    := "power": [num...], ["idle": [num...] = zeros],
                  ["n_pes": int = length of power]
    transient  := schedule params plus ["periods": int = 50], ["dt": num],
                  ["time_unit": num = 1e-3], ["exact": bool = false]
    online     := "bench": "Bm1".."Bm4", ["policy": OPOLICY = "thermal"],
                  ["trigger": num, reactive only],
                  ["arrivals": "zero" | "sporadic" | "trace" = "sporadic"],
                  ["seed": int = 1], ["mean_gap": num = 25],
                  ["n_pes": int = 4], HETERO
    sleep      := ["ms": num = 0]          (testing / load-generation aid)
    POLICY     := "baseline" | "h1" | "h2" | "h3" | "thermal"
    OPOLICY    := POLICY | "reactive"
    v}

    Replies are [{"ok": true, "kind": ..., "id": <echoed>, ...payload}] or
    [{"ok": false, "id": ..., "error": {"code": CODE, "message": str}}]
    with [CODE] one of [bad_request], [overloaded], [deadline],
    [shutting_down], [internal]. The [id] member, when present in the
    request, is echoed verbatim (any JSON value) so pipelining clients can
    match replies to requests.

    [deadline_ms] is the request's {e queueing budget}: if the dispatcher
    dequeues it more than that many milliseconds after admission, it is
    answered with a [deadline] error instead of being executed (the result
    would arrive too late to matter). Execution, once started, always runs
    to completion — see DESIGN.md §11 for why aborting mid-inquiry is not
    worth its complexity. *)

module Policy = Tats_sched.Policy
module Online = Tats_sched.Online
module Constraints = Tats_sched.Constraints

type arch = Platform | Cosynth

val arch_name : arch -> string

val bench_name : int -> string
(** [bench_name 0] is ["Bm1"], and so on. *)

type schedule_params = {
  bench : int;  (** benchmark index 0-3 = Bm1-Bm4 *)
  policy : Policy.t;
  arch : arch;
  n_pes : int;  (** platform width; ignored by [Cosynth] and [platform] *)
  platform : string option;
      (** builtin typed platform name ({!Tats_techlib.Catalog.platform_named});
          overrides [n_pes]; platform architecture only *)
  pins : (int * Constraints.pin) list;  (** task -> PE/kind affinities *)
  isolation : (int * int) list;  (** task -> criticality class *)
}

type transient_params = {
  sched : schedule_params;
  periods : int;
  dt : float option;  (** integration step, seconds; default period/100 *)
  time_unit : float;  (** seconds per schedule time unit *)
  exact : bool;  (** bit-exact factored stepper vs propagator fast path *)
}

type inquiry_params = {
  n_pes : int;
  power : float array;  (** per-PE dynamic power, W *)
  idle : float array;  (** per-PE idle (leakage-coupled) power, W *)
}

type online_arrivals =
  | Zero  (** every task released at t = 0 (offline-degenerate) *)
  | Sporadic  (** seeded sporadic stream ({!Tats_sched.Online.sporadic}) *)
  | Trace  (** releases from a baseline offline schedule's start times *)

val online_arrivals_name : online_arrivals -> string

type online_params = {
  o_bench : int;  (** benchmark index 0-3 = Bm1-Bm4 *)
  o_n_pes : int;
  o_policy : Online.policy;
  o_arrivals : online_arrivals;
  o_seed : int;  (** sporadic stream seed; ignored by [Zero]/[Trace] *)
  o_mean_gap : float;  (** mean sporadic inter-release gap, time units *)
  o_platform : string option;  (** builtin typed platform; overrides [o_n_pes] *)
  o_pins : (int * Constraints.pin) list;
  o_isolation : (int * int) list;
}

type kind =
  | Ping
  | Stats
  | Schedule of schedule_params
  | Inquiry of inquiry_params
  | Transient of transient_params
  | Online of online_params
  | Sleep of float  (** seconds *)
  | Shutdown

val kind_name : kind -> string

type request = {
  id : Json.t option;  (** echoed verbatim in the reply *)
  deadline_ms : float option;
  kind : kind;
}

val request : ?id:Json.t -> ?deadline_ms:float -> kind -> request

val request_of_json : Json.t -> (request, string) result
(** Decode and validate one request. Unknown kinds, missing or ill-typed
    parameters, wrong-length arrays and out-of-range values are all
    [Error] with a message naming the offending field. *)

val request_to_json : request -> Json.t
(** The client-side encoder; [request_of_json (request_to_json r) = Ok r]
    for any well-formed [r]. The one caveat: of a reactive online policy
    only the trigger travels on the wire, so round-tripping requires the
    other reactive knobs to be {!Tats_sched.Online.default_reactive}. *)

(** {1 Replies} *)

type error_code =
  | Bad_request  (** unparseable frame or invalid parameters *)
  | Overloaded  (** admission queue full — retry later, or not at all *)
  | Deadline  (** queueing budget exhausted before dispatch *)
  | Shutting_down  (** server is draining; no new work admitted *)
  | Internal  (** the handler raised; message carries the exception *)

val error_code_name : error_code -> string

val ok_reply : ?id:Json.t -> kind:string -> (string * Json.t) list -> Json.t
(** [{"ok": true, "kind": kind, ("id": id,) ...payload}] *)

val error_reply : ?id:Json.t -> error_code -> string -> Json.t
(** [{"ok": false, ("id": id,) "error": {"code": ..., "message": ...}}] *)

val reply_ok : Json.t -> bool
(** True iff the reply's ["ok"] member is [true]. *)

val reply_error : Json.t -> (string * string) option
(** [(code, message)] of an error reply; [None] for ok replies. *)
