module Pool = Tats_util.Pool
module Trace = Tats_util.Trace
module Metricsreg = Tats_util.Metricsreg
module Graph = Tats_taskgraph.Graph
module Benchmarks = Tats_taskgraph.Benchmarks
module Catalog = Tats_techlib.Catalog
module Hotspot = Tats_thermal.Hotspot
module Policy = Tats_sched.Policy
module Constraints = Tats_sched.Constraints
module Schedule = Tats_sched.Schedule
module Metrics = Tats_sched.Metrics
module Replay = Tats_sched.Replay
module Online = Tats_sched.Online
module Flow = Tats_cosynth.Flow

let m_requests = Metricsreg.counter "serve.requests"
let m_ok = Metricsreg.counter "serve.ok"
let m_errors = Metricsreg.counter "serve.errors"
let m_overloaded = Metricsreg.counter "serve.rejected_overload"
let m_deadline = Metricsreg.counter "serve.rejected_deadline"
let m_bad_frames = Metricsreg.counter "serve.bad_frames"
let m_connections = Metricsreg.counter "serve.connections"
let m_queue_depth = Metricsreg.gauge "serve.queue_depth"
let m_latency = Metricsreg.histogram "serve.latency_s"

type config = {
  socket_path : string;
  max_queue : int;
  batch_max : int;
  max_frame : int;
}

let default_config =
  {
    socket_path = "tatsd.sock";
    max_queue = 64;
    batch_max = 8;
    max_frame = Frame.max_frame_default;
  }

type conn = {
  fd : Unix.file_descr;
  wmutex : Mutex.t;
  mutable alive : bool;  (* still worth writing replies to *)
  mutable closed : bool;  (* fd released; guarded by wmutex *)
}

type job = { conn : conn; req : Protocol.request; admitted : float }

type t = {
  config : config;
  engines : Engines.t;
  listener : Unix.file_descr;
  queue : job Queue.t;  (* guarded by qmutex *)
  qmutex : Mutex.t;
  qcond : Condition.t;
  mutable stop_requested : bool;  (* guarded by qmutex *)
  stop_flag : bool Atomic.t;  (* async-signal-safe mirror *)
  cmutex : Mutex.t;
  mutable conns : conn list;  (* guarded by cmutex *)
  mutable readers : Thread.t list;  (* guarded by cmutex *)
  mutable accept_thread : Thread.t option;
  mutable dispatcher_thread : Thread.t option;
  started : float;
}

let engines t = t.engines

(* --- connection plumbing ------------------------------------------------- *)

let send conn json =
  Mutex.lock conn.wmutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock conn.wmutex) @@ fun () ->
  if conn.alive && not conn.closed then
    try Frame.write conn.fd (Json.to_string json)
    with Unix.Unix_error _ | Sys_error _ -> conn.alive <- false

(* Wakes a reader blocked in Frame.read without releasing the fd; the
   reader owns the close (close_conn) so the descriptor is never reused
   under a blocked read. *)
let shutdown_conn conn =
  Mutex.lock conn.wmutex;
  conn.alive <- false;
  if not conn.closed then (
    try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  Mutex.unlock conn.wmutex

let close_conn conn =
  Mutex.lock conn.wmutex;
  if not conn.closed then begin
    conn.closed <- true;
    conn.alive <- false;
    (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end;
  Mutex.unlock conn.wmutex

let prune t conn =
  let self = Thread.id (Thread.self ()) in
  Mutex.lock t.cmutex;
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  t.readers <- List.filter (fun th -> Thread.id th <> self) t.readers;
  Mutex.unlock t.cmutex

(* --- request execution --------------------------------------------------- *)

let num_arr a = Json.Arr (Array.to_list (Array.map (fun f -> Json.Num f) a))

(* Decode already validated the name against the catalog; a miss here
   would mean the builtin set changed between decode and dispatch. *)
let resolve_platform name =
  match Catalog.platform_named name with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "unknown platform %S" name)

let run_flow t (p : Protocol.schedule_params) =
  let graph = Benchmarks.load p.bench in
  match p.arch with
  | Protocol.Platform -> (
      let constraints =
        { Constraints.pins = p.pins; isolation = p.isolation }
      in
      match p.platform with
      | None ->
          let lib = Catalog.platform_library () in
          let hotspot = Engines.platform t.engines ~n_pes:p.n_pes in
          ( graph,
            lib,
            Flow.run_platform ~n_pes:p.n_pes ~constraints ~hotspot ~graph ~lib
              ~policy:p.policy () )
      | Some name ->
          let platform = resolve_platform name in
          let lib = Catalog.library_for platform in
          let hotspot = Engines.typed_platform t.engines platform in
          ( graph,
            lib,
            Flow.run_platform ~platform ~constraints ~hotspot ~graph ~lib
              ~policy:p.policy () ))
  | Protocol.Cosynth ->
      let lib = Catalog.default_library () in
      (graph, lib, Flow.run_cosynthesis ~graph ~lib ~policy:p.policy ())

let schedule_payload (p : Protocol.schedule_params) graph (o : Flow.outcome) =
  let s = o.Flow.schedule in
  [
    ("bench", Json.Str (Protocol.bench_name p.bench));
    ("policy", Json.Str (Policy.name p.policy));
    ("arch", Json.Str (Protocol.arch_name p.arch));
    ("n_pes", Json.Num (float_of_int (Schedule.n_pes s)));
    ("makespan", Json.Num s.Schedule.makespan);
    ("deadline", Json.Num (Graph.deadline graph));
    ("deadline_met", Json.Bool (Schedule.meets_deadline s));
    ("total_power", Json.Num o.Flow.row.Metrics.total_power);
    ("max_temp", Json.Num o.Flow.row.Metrics.max_temp);
    ("avg_temp", Json.Num o.Flow.row.Metrics.avg_temp);
    ("arch_cost", Json.Num o.Flow.arch_cost);
    ("outer_iterations", Json.Num (float_of_int o.Flow.outer_iterations));
    ("pe_powers", num_arr o.Flow.report.Metrics.pe_powers);
    ("block_temps", num_arr o.Flow.report.Metrics.block_temps);
  ]
  @ match p.platform with
    | None -> []
    | Some name -> [ ("platform", Json.Str name) ]

let uptime t = Unix.gettimeofday () -. t.started

let queue_depth t =
  Mutex.lock t.qmutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.qmutex;
  n

let stats_payload t =
  let es = Engines.stats t.engines in
  let c m = Json.Num (float_of_int (Metricsreg.counter_value m)) in
  [
    ("uptime_s", Json.Num (uptime t));
    ("jobs", Json.Num (float_of_int (Pool.jobs (Pool.default ()))));
    ("queue_depth", Json.Num (float_of_int (queue_depth t)));
    ("engines", Json.Num (float_of_int es.Engines.engines));
    ( "fingerprints",
      Json.Arr (List.map (fun s -> Json.Str s) (Engines.fingerprints t.engines))
    );
    ("inquiries", Json.Num (float_of_int es.Engines.inquiries));
    ("cache_hits", Json.Num (float_of_int es.Engines.cache_hits));
    ("hit_rate", Json.Num (Engines.hit_rate es));
    ("requests", c m_requests);
    ("ok", c m_ok);
    ("errors", c m_errors);
    ("rejected_overload", c m_overloaded);
    ("rejected_deadline", c m_deadline);
  ]

let handle t (req : Protocol.request) =
  match req.Protocol.kind with
  | Protocol.Ping ->
      [ ("pong", Json.Bool true); ("uptime_s", Json.Num (uptime t)) ]
  | Protocol.Stats -> stats_payload t
  | Protocol.Shutdown -> [ ("stopping", Json.Bool true) ]
  | Protocol.Sleep s ->
      if s > 0.0 then Unix.sleepf s;
      [ ("slept_s", Json.Num s) ]
  | Protocol.Schedule p ->
      let graph, _lib, o = run_flow t p in
      schedule_payload p graph o
  | Protocol.Inquiry p ->
      let hotspot = Engines.platform t.engines ~n_pes:p.n_pes in
      let temps =
        Hotspot.inquire_with_leakage hotspot ~dynamic:p.power ~idle:p.idle
      in
      let max_t = Array.fold_left Float.max neg_infinity temps in
      let sum = Array.fold_left ( +. ) 0.0 temps in
      [
        ("n_pes", Json.Num (float_of_int p.n_pes));
        ("temps", num_arr temps);
        ("max_temp", Json.Num max_t);
        ("avg_temp", Json.Num (sum /. float_of_int (Array.length temps)));
      ]
  | Protocol.Online p ->
      let graph = Benchmarks.load p.Protocol.o_bench in
      let constraints =
        {
          Constraints.pins = p.Protocol.o_pins;
          isolation = p.Protocol.o_isolation;
        }
      in
      let platform, lib, hotspot =
        match p.Protocol.o_platform with
        | None ->
            ( None,
              Catalog.platform_library (),
              Engines.platform t.engines ~n_pes:p.Protocol.o_n_pes )
        | Some name ->
            let platform = resolve_platform name in
            ( Some platform,
              Catalog.library_for platform,
              Engines.typed_platform t.engines platform )
      in
      let arrivals =
        match p.Protocol.o_arrivals with
        | Protocol.Zero -> Flow.Release_zero
        | Protocol.Sporadic -> Flow.Release_sporadic p.Protocol.o_seed
        | Protocol.Trace -> Flow.Release_trace
      in
      let o =
        Flow.run_online ~n_pes:p.Protocol.o_n_pes ?platform ~constraints
          ~hotspot ~mean_gap:p.Protocol.o_mean_gap ~arrivals ~graph ~lib
          ~policy:p.Protocol.o_policy ()
      in
      let s = o.Flow.online.Online.schedule in
      let st = o.Flow.online.Online.stats in
      let sc = o.Flow.score in
      [
        ("bench", Json.Str (Protocol.bench_name p.Protocol.o_bench));
        ("policy", Json.Str (Online.policy_name p.Protocol.o_policy));
        ( "arrivals",
          Json.Str (Protocol.online_arrivals_name p.Protocol.o_arrivals) );
        ("seed", Json.Num (float_of_int p.Protocol.o_seed));
        ("mean_gap", Json.Num p.Protocol.o_mean_gap);
        ("n_pes", Json.Num (float_of_int (Schedule.n_pes s)));
        ("makespan", Json.Num s.Schedule.makespan);
        ("deadline", Json.Num (Graph.deadline graph));
        ("deadline_met", Json.Bool (Schedule.meets_deadline s));
        ("events", Json.Num (float_of_int st.Online.events));
        ("decisions", Json.Num (float_of_int st.Online.decisions));
        ("candidates", Json.Num (float_of_int st.Online.candidates));
        ("deferrals", Json.Num (float_of_int st.Online.deferrals));
        ("online_makespan", Json.Num sc.Online.online_makespan);
        ("clairvoyant_makespan", Json.Num sc.Online.clairvoyant_makespan);
        ("makespan_ratio", Json.Num sc.Online.makespan_ratio);
        ("online_peak", Json.Num sc.Online.online_peak);
        ("clairvoyant_peak", Json.Num sc.Online.clairvoyant_peak);
        ("peak_ratio", Json.Num sc.Online.peak_ratio);
        ("mimicked_makespan", Json.Bool sc.Online.mimicked_makespan);
        ("mimicked_peak", Json.Bool sc.Online.mimicked_peak);
      ]
      @ (match p.Protocol.o_platform with
        | None -> []
        | Some name -> [ ("platform", Json.Str name) ])
  | Protocol.Transient tp ->
      let graph, lib, o = run_flow t tp.Protocol.sched in
      let profile =
        Replay.of_schedule ~time_unit:tp.Protocol.time_unit ~lib
          o.Flow.schedule
      in
      let peaks =
        Replay.peaks ~periods:tp.Protocol.periods ?dt:tp.Protocol.dt
          ~exact:tp.Protocol.exact ~hotspot:o.Flow.hotspot profile
      in
      schedule_payload tp.Protocol.sched graph o
      @ [
          ("periods", Json.Num (float_of_int tp.Protocol.periods));
          ("time_unit", Json.Num tp.Protocol.time_unit);
          ("exact", Json.Bool tp.Protocol.exact);
          ("peaks", num_arr peaks);
          ( "peak_max",
            Json.Num (Array.fold_left Float.max neg_infinity peaks) );
        ]

let execute t (job : job) =
  let req = job.req in
  let reply =
    Trace.with_span "serve.execute"
      ~args:[ ("kind", Trace.Str (Protocol.kind_name req.Protocol.kind)) ]
    @@ fun () ->
    match handle t req with
    | payload ->
        Protocol.ok_reply ?id:req.Protocol.id
          ~kind:(Protocol.kind_name req.Protocol.kind)
          payload
    (* Constraint problems are the client's spec, not server failures. *)
    | exception Constraints.Invalid msg ->
        Protocol.error_reply ?id:req.Protocol.id Protocol.Bad_request msg
    | exception Constraints.Infeasible msg ->
        Protocol.error_reply ?id:req.Protocol.id Protocol.Bad_request msg
    | exception e ->
        Protocol.error_reply ?id:req.Protocol.id Protocol.Internal
          (Printexc.to_string e)
  in
  (reply, Unix.gettimeofday ())

(* --- admission and dispatch ---------------------------------------------- *)

let admit t conn (req : Protocol.request) =
  let now = Unix.gettimeofday () in
  Mutex.lock t.qmutex;
  if t.stop_requested then begin
    Mutex.unlock t.qmutex;
    Metricsreg.incr m_errors;
    send conn
      (Protocol.error_reply ?id:req.Protocol.id Protocol.Shutting_down
         "server is draining")
  end
  else if Queue.length t.queue >= t.config.max_queue then begin
    Mutex.unlock t.qmutex;
    Metricsreg.incr m_overloaded;
    Metricsreg.incr m_errors;
    send conn
      (Protocol.error_reply ?id:req.Protocol.id Protocol.Overloaded
         (Printf.sprintf "admission queue is full (%d in flight)"
            t.config.max_queue))
  end
  else begin
    Queue.push { conn; req; admitted = now } t.queue;
    Metricsreg.set_gauge m_queue_depth (float_of_int (Queue.length t.queue));
    Condition.signal t.qcond;
    Mutex.unlock t.qmutex
  end

let stop t =
  Atomic.set t.stop_flag true;
  Mutex.lock t.qmutex;
  t.stop_requested <- true;
  Condition.broadcast t.qcond;
  Mutex.unlock t.qmutex

let signal_stop t = Atomic.set t.stop_flag true

let stopping t = Atomic.get t.stop_flag

let dispatcher t =
  let pool = Pool.default () in
  let rec loop () =
    Mutex.lock t.qmutex;
    while Queue.is_empty t.queue && not t.stop_requested do
      Condition.wait t.qcond t.qmutex
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.qmutex (* drained: exit *)
    else begin
      let batch = ref [] in
      while
        (not (Queue.is_empty t.queue))
        && List.length !batch < t.config.batch_max
      do
        batch := Queue.pop t.queue :: !batch
      done;
      Metricsreg.set_gauge m_queue_depth (float_of_int (Queue.length t.queue));
      Mutex.unlock t.qmutex;
      let jobs = List.rev !batch in
      let now = Unix.gettimeofday () in
      let expired, live =
        List.partition
          (fun job ->
            match job.req.Protocol.deadline_ms with
            | Some d -> (now -. job.admitted) *. 1000.0 > d
            | None -> false)
          jobs
      in
      List.iter
        (fun job ->
          Metricsreg.incr m_deadline;
          Metricsreg.incr m_errors;
          send job.conn
            (Protocol.error_reply ?id:job.req.Protocol.id Protocol.Deadline
               "queueing budget exhausted before dispatch"))
        expired;
      let live = Array.of_list live in
      let results = Pool.parallel_map pool (execute t) live in
      Array.iteri
        (fun i (reply, finished) ->
          let job = live.(i) in
          Metricsreg.observe m_latency (finished -. job.admitted);
          if Protocol.reply_ok reply then Metricsreg.incr m_ok
          else Metricsreg.incr m_errors;
          send job.conn reply)
        results;
      loop ()
    end
  in
  loop ()

(* --- reading ------------------------------------------------------------- *)

let handle_incoming t conn (req : Protocol.request) =
  match req.Protocol.kind with
  (* Control plane: answered inline by the reader, never queued. *)
  | Protocol.Ping | Protocol.Stats ->
      let reply, _ = execute t { conn; req; admitted = Unix.gettimeofday () } in
      if Protocol.reply_ok reply then Metricsreg.incr m_ok
      else Metricsreg.incr m_errors;
      send conn reply
  | Protocol.Shutdown ->
      Metricsreg.incr m_ok;
      send conn
        (Protocol.ok_reply ?id:req.Protocol.id ~kind:"shutdown"
           [ ("stopping", Json.Bool true) ]);
      stop t
  | Protocol.Schedule _ | Protocol.Inquiry _ | Protocol.Transient _
  | Protocol.Online _ | Protocol.Sleep _ ->
      admit t conn req

let reader t conn =
  let rec loop () =
    match Frame.read ~max_frame:t.config.max_frame conn.fd with
    | Error Frame.Eof -> ()
    | Error Frame.Truncated -> Metricsreg.incr m_bad_frames
    | Error (Frame.Oversized n) ->
        (* The oversized body was never consumed, so the stream cannot be
           resynchronized: answer and drop the connection. *)
        Metricsreg.incr m_bad_frames;
        Metricsreg.incr m_errors;
        send conn
          (Protocol.error_reply Protocol.Bad_request
             (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" n
                t.config.max_frame))
    | Ok payload -> (
        Metricsreg.incr m_requests;
        match Json.of_string payload with
        | Error msg ->
            Metricsreg.incr m_errors;
            send conn
              (Protocol.error_reply Protocol.Bad_request
                 ("invalid JSON: " ^ msg));
            loop ()
        | Ok json -> (
            let id =
              match json with Json.Obj _ -> Json.mem "id" json | _ -> None
            in
            match Protocol.request_of_json json with
            | Error msg ->
                Metricsreg.incr m_errors;
                send conn (Protocol.error_reply ?id Protocol.Bad_request msg);
                loop ()
            | Ok req ->
                handle_incoming t conn req;
                loop ()))
  in
  (try loop () with _ -> ());
  close_conn conn;
  prune t conn

(* --- lifecycle ----------------------------------------------------------- *)

let accept_loop t =
  let rec loop () =
    if not (Atomic.get t.stop_flag) then begin
      (match Unix.select [ t.listener ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept t.listener with
          | fd, _ ->
              Metricsreg.incr m_connections;
              let conn =
                { fd; wmutex = Mutex.create (); alive = true; closed = false }
              in
              Mutex.lock t.cmutex;
              t.conns <- conn :: t.conns;
              t.readers <- Thread.create (reader t) conn :: t.readers;
              Mutex.unlock t.cmutex
          | exception Unix.Unix_error _ -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  (* A signal handler can only flip the atomic (signal_stop); complete the
     mutexed half of the stop here so the dispatcher wakes and drains. *)
  stop t

let create config =
  if config.max_queue < 1 then invalid_arg "Server.create: max_queue < 1";
  if config.batch_max < 1 then invalid_arg "Server.create: batch_max < 1";
  if config.max_frame < 4 then invalid_arg "Server.create: max_frame < 4";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listener (Unix.ADDR_UNIX config.socket_path);
     Unix.listen listener 64
   with e ->
     (try Unix.close listener with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      config;
      engines = Engines.create ();
      listener;
      queue = Queue.create ();
      qmutex = Mutex.create ();
      qcond = Condition.create ();
      stop_requested = false;
      stop_flag = Atomic.make false;
      cmutex = Mutex.create ();
      conns = [];
      readers = [];
      accept_thread = None;
      dispatcher_thread = None;
      started = Unix.gettimeofday ();
    }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  t.dispatcher_thread <- Some (Thread.create dispatcher t);
  t

let wait t =
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  (match t.dispatcher_thread with Some th -> Thread.join th | None -> ());
  (try Unix.close t.listener with Unix.Unix_error _ -> ());
  (try Unix.unlink t.config.socket_path
   with Unix.Unix_error _ | Sys_error _ -> ());
  Mutex.lock t.cmutex;
  let conns = t.conns and readers = t.readers in
  Mutex.unlock t.cmutex;
  List.iter shutdown_conn conns;
  List.iter Thread.join readers

let stop_and_wait t =
  stop t;
  wait t
