module Pe = Tats_techlib.Pe
module Catalog = Tats_techlib.Catalog
module Block = Tats_floorplan.Block
module Grid = Tats_floorplan.Grid
module Hotspot = Tats_thermal.Hotspot
module Inquiry = Tats_thermal.Inquiry

type t = {
  mutex : Mutex.t;
  table : (string, Hotspot.t) Hashtbl.t;
}

let create () = { mutex = Mutex.create (); table = Hashtbl.create 8 }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* The exact facade Flow.run_platform builds for this width: identical
   catalog PEs on a grid layout under the default package, so schedule
   requests served through the registry produce the same floats as a
   one-shot CLI run that builds its own. *)
let build_platform ~n_pes =
  let insts = Catalog.platform_instances n_pes in
  let blocks =
    Array.map
      (fun (i : Pe.inst) ->
        Block.make
          ~name:(Printf.sprintf "PE%d_%s" i.Pe.inst_id i.Pe.kind.Pe.kind_name)
          ~area:i.Pe.kind.Pe.area ())
      insts
  in
  Hotspot.create (Grid.layout blocks)

let platform t ~n_pes =
  if n_pes < 1 then invalid_arg "Engines.platform: need at least one PE";
  let key = Printf.sprintf "platform:%d" n_pes in
  with_lock t @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | Some h -> h
  | None ->
      let h = build_platform ~n_pes in
      Hashtbl.add t.table key h;
      h

(* Same facade recipe over a typed platform's slots: per-slot kind areas
   flow into the block model, so heterogeneous power densities are
   represented. Fingerprinted by name — builtin platforms are immutable. *)
let build_typed platform =
  let insts = Tats_techlib.Platform.instances platform in
  let blocks =
    Array.map
      (fun (i : Pe.inst) ->
        Block.make
          ~name:(Printf.sprintf "PE%d_%s" i.Pe.inst_id i.Pe.kind.Pe.kind_name)
          ~area:i.Pe.kind.Pe.area ())
      insts
  in
  Hotspot.create (Grid.layout blocks)

let typed_platform t platform =
  let key =
    Printf.sprintf "platform-name:%s" (Tats_techlib.Platform.name platform)
  in
  with_lock t @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | Some h -> h
  | None ->
      let h = build_typed platform in
      Hashtbl.add t.table key h;
      h

let count t = with_lock t @@ fun () -> Hashtbl.length t.table

let fingerprints t =
  with_lock t @@ fun () ->
  Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] |> List.sort compare

type stats = { engines : int; inquiries : int; cache_hits : int }

let stats t =
  let hotspots = with_lock t @@ fun () ->
    Hashtbl.fold (fun _ h acc -> h :: acc) t.table []
  in
  List.fold_left
    (fun acc h ->
      let s = Hotspot.inquiry_stats h in
      {
        acc with
        inquiries = acc.inquiries + s.Inquiry.inquiries;
        cache_hits = acc.cache_hits + s.Inquiry.cache_hits;
      })
    { engines = List.length hotspots; inquiries = 0; cache_hits = 0 }
    hotspots

let hit_rate s =
  if s.inquiries = 0 then 0.0
  else float_of_int s.cache_hits /. float_of_int s.inquiries
