(** Genetic-algorithm floorplanner (the ISQED'05 [3] substrate).

    Individuals are Polish expressions; fitness is a caller-supplied cost
    over the evaluated placement (lower is better), letting the co-synthesis
    flow mix die area, wirelength and peak temperature. Selection is
    tournament with elitism; crossover recombines the operand order of one
    parent with the cut structure of the other; mutation swaps operands,
    complements cut chains, or moves an operator. *)

type params = {
  population : int;   (** >= 2 *)
  generations : int;  (** >= 1 *)
  crossover_rate : float; (** in [0, 1] *)
  mutation_rate : float;  (** in [0, 1] *)
  tournament : int;   (** >= 1 *)
  elite : int;        (** carried over unchanged, < population *)
}

val default_params : params
(** population 24, generations 60, crossover 0.9, mutation 0.35,
    tournament 3, elite 2. *)

type result = {
  best_expr : Slicing.expr;
  best_placement : Placement.t;
  best_cost : float;
  history : float array; (** best cost after each generation *)
}

val run :
  ?params:params ->
  ?pool:Tats_util.Pool.t ->
  seed:int ->
  blocks:Block.t array ->
  cost:(Placement.t -> float) ->
  unit ->
  result
(** Runs the GA. The initial population contains the canonical chain plus
    random expressions. Deterministic for a fixed seed.

    Fitness evaluation runs on [pool] (default: {!Tats_util.Pool.default}).
    Breeding — selection, crossover, mutation, everything that draws from
    the seed's random stream — stays sequential; only the (randomness-free)
    [Slicing.evaluate] + [cost] calls fan out, and their results return
    positionally, so the run is bit-identical at any pool size. [cost]
    must therefore be pure, or at least thread-safe and
    schedule-independent: it is called concurrently from multiple domains.
    The co-synthesis flow's thermal cost qualifies — it builds a fresh
    private {!Tats_thermal.Hotspot} per evaluation. *)
