module Rng = Tats_util.Rng

let m_moves = Tats_util.Metricsreg.counter "sa.moves"

type params = {
  initial_temperature : float;
  cooling : float;
  moves_per_temperature : int;
  min_temperature : float;
}

let default_params =
  {
    initial_temperature = 1.0;
    cooling = 0.92;
    moves_per_temperature = 64;
    min_temperature = 1e-4;
  }

type result = {
  best_expr : Slicing.expr;
  best_placement : Placement.t;
  best_cost : float;
  moves_tried : int;
  moves_accepted : int;
}

(* The classic Wong–Liu move set on Polish expressions. *)
let propose rng expr =
  let expr = Array.copy expr in
  let len = Array.length expr in
  let operand_positions =
    Array.of_list
      (List.filter_map
         (fun i ->
           match expr.(i) with
           | Slicing.Op _ -> Some i
           | Slicing.H | Slicing.V -> None)
         (List.init len Fun.id))
  in
  (match Rng.int rng 3 with
  | 0 when Array.length operand_positions >= 2 ->
      (* M1: swap two adjacent (in operand order) operands. *)
      let k = Rng.int rng (Array.length operand_positions - 1) in
      let i = operand_positions.(k) and j = operand_positions.(k + 1) in
      let tmp = expr.(i) in
      expr.(i) <- expr.(j);
      expr.(j) <- tmp
  | 1 ->
      (* M2: complement the operator chain after a random position. *)
      let start = Rng.int rng len in
      let rec flip i =
        if i < len then
          match expr.(i) with
          | Slicing.H ->
              expr.(i) <- Slicing.V;
              flip (i + 1)
          | Slicing.V ->
              expr.(i) <- Slicing.H;
              flip (i + 1)
          | Slicing.Op _ -> ()
      in
      let rec seek i =
        if i < len then
          match expr.(i) with
          | Slicing.Op _ -> seek (i + 1)
          | Slicing.H | Slicing.V -> flip i
      in
      seek start
  | _ ->
      (* M3: swap an adjacent operand/operator pair, keeping validity. *)
      let candidates = ref [] in
      for i = 0 to len - 2 do
        match (expr.(i), expr.(i + 1)) with
        | Slicing.Op _, (Slicing.H | Slicing.V) | (Slicing.H | Slicing.V), Slicing.Op _ ->
            candidates := i :: !candidates
        | _ -> ()
      done;
      (match !candidates with
      | [] -> ()
      | l ->
          let arr = Array.of_list l in
          let i = arr.(Rng.int rng (Array.length arr)) in
          let tmp = expr.(i) in
          expr.(i) <- expr.(i + 1);
          expr.(i + 1) <- tmp;
          let n_blocks = (len + 1) / 2 in
          (match Slicing.validate ~n_blocks expr with
          | Ok () -> ()
          | Error _ ->
              (* revert *)
              let tmp = expr.(i) in
              expr.(i) <- expr.(i + 1);
              expr.(i + 1) <- tmp)));
  expr

let run ?(params = default_params) ~seed ~blocks ~cost () =
  let { initial_temperature; cooling; moves_per_temperature; min_temperature } =
    params
  in
  if initial_temperature <= 0.0 || min_temperature <= 0.0 then
    invalid_arg "Sa.run: non-positive temperature";
  if cooling <= 0.0 || cooling >= 1.0 then invalid_arg "Sa.run: cooling not in (0,1)";
  if moves_per_temperature < 1 then invalid_arg "Sa.run: no moves per temperature";
  let n = Array.length blocks in
  if n = 0 then invalid_arg "Sa.run: no blocks";
  Tats_util.Trace.with_span "sa.run"
    ~args:[ ("blocks", Tats_util.Trace.Int n) ]
  @@ fun () ->
  let rng = Rng.create seed in
  let evaluate expr = cost (Slicing.evaluate blocks expr) in
  let current = ref (Slicing.initial n) in
  let current_cost = ref (evaluate !current) in
  let best = ref !current and best_cost = ref !current_cost in
  let tried = ref 0 and accepted = ref 0 in
  let temperature = ref initial_temperature in
  while !temperature > min_temperature do
    for _ = 1 to moves_per_temperature do
      incr tried;
      let candidate = propose rng !current in
      let candidate_cost = evaluate candidate in
      let delta = candidate_cost -. !current_cost in
      let accept =
        delta <= 0.0 || Rng.float rng 1.0 < exp (-.delta /. !temperature)
      in
      if accept then begin
        incr accepted;
        current := candidate;
        current_cost := candidate_cost;
        if candidate_cost < !best_cost then begin
          best := candidate;
          best_cost := candidate_cost
        end
      end
    done;
    temperature := !temperature *. cooling
  done;
  Tats_util.Metricsreg.add m_moves !tried;
  {
    best_expr = !best;
    best_placement = Slicing.evaluate blocks !best;
    best_cost = !best_cost;
    moves_tried = !tried;
    moves_accepted = !accepted;
  }
