module Rng = Tats_util.Rng
module Pool = Tats_util.Pool
module Trace = Tats_util.Trace
module Metricsreg = Tats_util.Metricsreg

let m_evaluations = Metricsreg.counter "ga.evaluations"

type params = {
  population : int;
  generations : int;
  crossover_rate : float;
  mutation_rate : float;
  tournament : int;
  elite : int;
}

let default_params =
  {
    population = 24;
    generations = 60;
    crossover_rate = 0.9;
    mutation_rate = 0.35;
    tournament = 3;
    elite = 2;
  }

type result = {
  best_expr : Slicing.expr;
  best_placement : Placement.t;
  best_cost : float;
  history : float array;
}

let operand_positions expr =
  let acc = ref [] in
  Array.iteri
    (fun i elt -> match elt with Slicing.Op _ -> acc := i :: !acc | Slicing.H | Slicing.V -> ())
    expr;
  Array.of_list (List.rev !acc)

(* Keep the cut skeleton of [a]; fill its operand slots with the operands in
   the order they appear in [b] (an order-crossover specialized to Polish
   expressions: the result is automatically valid). *)
let crossover a b =
  let child = Array.copy a in
  let order_b =
    Array.to_list b
    |> List.filter_map (function Slicing.Op x -> Some x | Slicing.H | Slicing.V -> None)
  in
  let slots = operand_positions a in
  List.iteri (fun k x -> child.(slots.(k)) <- Slicing.Op x) order_b;
  child

let mutate rng expr =
  let expr = Array.copy expr in
  let slots = operand_positions expr in
  let n_ops = Array.length slots in
  (match Rng.int rng 3 with
  | 0 when n_ops >= 2 ->
      (* M1: swap two operands. *)
      let i = Rng.int rng n_ops and j = Rng.int rng n_ops in
      let tmp = expr.(slots.(i)) in
      expr.(slots.(i)) <- expr.(slots.(j));
      expr.(slots.(j)) <- tmp
  | 1 ->
      (* M2: complement a maximal chain of operators starting at a random
         operator position. *)
      let len = Array.length expr in
      let start = Rng.int rng len in
      let rec flip i =
        if i < len then
          match expr.(i) with
          | Slicing.H ->
              expr.(i) <- Slicing.V;
              flip (i + 1)
          | Slicing.V ->
              expr.(i) <- Slicing.H;
              flip (i + 1)
          | Slicing.Op _ -> ()
      in
      let rec seek i = (* find the first operator at or after start *)
        if i < len then
          match expr.(i) with Slicing.Op _ -> seek (i + 1) | Slicing.H | Slicing.V -> flip i
      in
      seek start
  | _ ->
      (* M3: swap an adjacent operand/operator pair when the result keeps the
         balloting property. *)
      let len = Array.length expr in
      let candidates = ref [] in
      for i = 0 to len - 2 do
        match (expr.(i), expr.(i + 1)) with
        | Slicing.Op _, (Slicing.H | Slicing.V) | (Slicing.H | Slicing.V), Slicing.Op _ ->
            candidates := i :: !candidates
        | _ -> ()
      done;
      let tryswap i =
        let tmp = expr.(i) in
        expr.(i) <- expr.(i + 1);
        expr.(i + 1) <- tmp
      in
      (match !candidates with
      | [] -> ()
      | l ->
          let arr = Array.of_list l in
          let i = arr.(Rng.int rng (Array.length arr)) in
          tryswap i;
          (* Revert when the swap broke validity. *)
          let n_blocks = (len + 1) / 2 in
          (match Slicing.validate ~n_blocks expr with
          | Ok () -> ()
          | Error _ -> tryswap i)));
  expr

let run ?(params = default_params) ?pool ~seed ~blocks ~cost () =
  let { population; generations; crossover_rate; mutation_rate; tournament; elite } =
    params
  in
  if population < 2 then invalid_arg "Ga.run: population too small";
  if elite >= population then invalid_arg "Ga.run: elite >= population";
  let n = Array.length blocks in
  if n = 0 then invalid_arg "Ga.run: no blocks";
  let pool = match pool with Some p -> p | None -> Pool.default () in
  Trace.with_span "ga.run"
    ~args:
      [ ("blocks", Trace.Int n); ("population", Trace.Int population) ]
  @@ fun () ->
  let rng = Rng.create seed in
  (* Fitness evaluation consumes no randomness, so only it fans out: every
     generation first breeds its children sequentially (the RNG stream is
     untouched by parallelism), then evaluates them on the pool. Results
     land positionally, so the population array — and hence selection,
     sorting and the whole run — is bit-identical at any pool size. *)
  let evaluate_all exprs =
    Metricsreg.add m_evaluations (Array.length exprs);
    Pool.parallel_map pool
      (fun expr ->
        let placement = Slicing.evaluate blocks expr in
        (expr, placement, cost placement))
      exprs
  in
  let pop =
    ref
      (evaluate_all
         (Array.init population (fun i ->
              if i = 0 then Slicing.initial n else Slicing.random rng n)))
  in
  let by_cost (_, _, c1) (_, _, c2) = compare c1 c2 in
  Array.sort by_cost !pop;
  let history = Array.make generations 0.0 in
  let select () =
    let best = ref (Rng.int rng population) in
    for _ = 2 to tournament do
      let c = Rng.int rng population in
      let (_, _, cc) = !pop.(c) and (_, _, cb) = !pop.(!best) in
      if cc < cb then best := c
    done;
    let e, _, _ = !pop.(!best) in
    e
  in
  for gen = 0 to generations - 1 do
    Trace.with_span "ga.generation" ~args:[ ("gen", Trace.Int gen) ]
    @@ fun () ->
    let children =
      Array.init (population - elite) (fun _ ->
          let a = select () in
          let child =
            if Rng.float rng 1.0 < crossover_rate then crossover a (select ())
            else Array.copy a
          in
          if Rng.float rng 1.0 < mutation_rate then mutate rng child else child)
    in
    let evaluated = evaluate_all children in
    let next = Array.make population !pop.(0) in
    for i = 0 to elite - 1 do
      next.(i) <- !pop.(i)
    done;
    Array.blit evaluated 0 next elite (population - elite);
    Array.sort by_cost next;
    pop := next;
    let _, _, best_cost = !pop.(0) in
    history.(gen) <- best_cost
  done;
  let best_expr, best_placement, best_cost = !pop.(0) in
  { best_expr; best_placement; best_cost; history }
