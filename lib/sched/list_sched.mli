(** The allocation-and-scheduling procedure (ASP) of the paper.

    A list scheduler: repeatedly pick, among all (ready task, PE) pairs, the
    one with the highest dynamic criticality, and commit it. The
    thermal-aware policy issues a HotSpot inquiry per candidate pair,
    passing each PE's cumulative power plus the power the candidate task
    would add on the candidate PE, and folds the returned average
    temperature into DC — exactly the paper's Section 2.2 loop. *)

module Graph = Tats_taskgraph.Graph
module Task = Tats_taskgraph.Task
module Pe = Tats_techlib.Pe
module Library = Tats_techlib.Library
module Hotspot = Tats_thermal.Hotspot

exception Thermal_policy_needs_hotspot
(** Raised when scheduling with [Policy.Thermal_aware] and no [hotspot]. *)

val run :
  ?weights:Policy.weights ->
  ?hotspot:Hotspot.t ->
  ?exclusive:(Task.id -> Task.id -> bool) ->
  ?constraints:Constraints.spec ->
  graph:Graph.t ->
  lib:Library.t ->
  pes:Pe.inst array ->
  policy:Policy.t ->
  unit ->
  Schedule.t
(** [weights] defaults to {!Policy.default_weights} for the graph's
    deadline. [hotspot] must describe one block per entry of [pes] (same
    order); it is required for [Thermal_aware] and ignored otherwise.
    [exclusive] enables conditional-task-graph time-sharing: mutually
    exclusive tasks may overlap on one PE.

    [constraints] restricts placements to pinned PEs/kinds and keeps
    isolation classes on disjoint PEs (see {!Constraints}); a
    contradictory spec raises {!Constraints.Invalid} before any work, a
    spec with no admissible candidate at some step raises
    {!Constraints.Infeasible}. Omitted (or empty), the scheduler is
    bit-identical to the historical unconstrained path.

    The result always covers every task; it may miss the deadline — callers
    (e.g. co-synthesis) decide what to do then. Deterministic. *)

val run_adaptive :
  ?base_weights:Policy.weights ->
  ?max_multiplier:float ->
  ?search_steps:int ->
  ?hotspot:Hotspot.t ->
  ?exclusive:(Task.id -> Task.id -> bool) ->
  ?constraints:Constraints.spec ->
  graph:Graph.t ->
  lib:Library.t ->
  pes:Pe.inst array ->
  policy:Policy.t ->
  unit ->
  Schedule.t * Policy.weights
(** Deadline-adaptive weight selection — "while meeting real time
    constraints" for every policy: a larger cost weight trades schedule
    length for its objective (temperature, power), so this bisects
    ([search_steps] runs, default 16) for the largest cost weight in
    [0, max_multiplier x base_weights] whose schedule still meets the
    deadline. [max_multiplier] defaults to 400 — the thermal setting, where
    stretching toward the deadline is the point; power-aware callers cap it
    at 1.0 so the heuristic only ever weakens to regain feasibility. At
    multiplier 0 the policy degenerates to Baseline; if even that misses
    the deadline the infeasible schedule is returned (the architecture is
    too small; co-synthesis reacts by adding a PE). Returns the chosen
    schedule and the weights that produced it. *)
