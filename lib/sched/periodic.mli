(** Periodic, multi-application scheduling over a hyperperiod.

    Embedded systems run their task graphs periodically (the paper's
    steady-state thermal analysis implicitly assumes it). This module
    schedules several applications, each with its own period, by expanding
    every application into its job instances over the hyperperiod (the LCM
    of the periods): instance [k] of an application releases at
    [k * period] and must finish by [k * period + deadline]. Jobs inherit
    the intra-instance precedence edges; instances are independent.

    The scheduler is the same DC-driven list scheduler as {!List_sched},
    extended with release times. *)

module Graph = Tats_taskgraph.Graph
module Task = Tats_taskgraph.Task
module Pe = Tats_techlib.Pe
module Library = Tats_techlib.Library
module Hotspot = Tats_thermal.Hotspot

type app = { graph : Graph.t; period : float }
(** [period] must be a positive integer (in schedule time units) and at
    least the graph's deadline — otherwise instances of the same app could
    legitimately overlap, which this expansion does not model. *)

val make_app : graph:Graph.t -> period:float -> app

val hyperperiod : app list -> float
(** LCM of the (integer) periods. Raises [Invalid_argument] on an empty
    list. *)

type job = { app : int; instance : int; task : Task.id }

type entry = { job : job; pe : int; start : float; finish : float; energy : float }

type t = {
  apps : app array;
  pes : Pe.inst array;
  hyper : float;
  entries : entry array; (** all jobs, in scheduling order *)
}

val schedule :
  ?policy:Policy.t ->
  ?weights:Policy.weights ->
  ?hotspot:Hotspot.t ->
  apps:app list ->
  lib:Library.t ->
  pes:Pe.inst array ->
  unit ->
  t
(** Expands and schedules every job. [policy] defaults to [Baseline];
    [Thermal_aware] requires [hotspot] (as in {!List_sched}). *)

type violation =
  | Release of job        (** job starts before its release *)
  | Job_deadline of job   (** job finishes after its absolute deadline *)
  | Precedence of job * job
  | Pe_overlap of int * job * job

val validate : t -> lib:Library.t -> violation list

val meets_all_deadlines : t -> bool

val total_energy : t -> float
val average_power : t -> float
(** Total energy (tasks only) over the hyperperiod — the steady-state
    dynamic power the thermal model consumes. *)

val pe_average_powers : t -> float array
(** Per-PE dynamic average over the hyperperiod plus idle floor. *)

val thermal_report : ?leakage:bool -> t -> hotspot:Hotspot.t -> Metrics.thermal_report

val transient_peak :
  ?time_unit:float -> ?periods:int -> ?dt:float -> t -> hotspot:Hotspot.t -> float array
(** Per-PE peak transient temperature when the hyperperiod schedule
    repeats: the entries become exact power breakpoints
    ({!Replay.profile_of_intervals}) replayed through the event-driven
    transient engine; the peak is taken over the last of [periods]
    (default 20) hyperperiods. [time_unit] (default 1e-3) maps schedule
    time units to seconds; [dt] defaults to one hundredth of the
    hyperperiod. The steady-state {!thermal_report} is this number with
    the ripple averaged out. *)

val utilization : t -> float
(** Fraction of total PE capacity (n_pes x hyperperiod) spent computing. *)

val schedule_adaptive :
  ?base_weights:Policy.weights ->
  ?max_multiplier:float ->
  ?search_steps:int ->
  ?hotspot:Hotspot.t ->
  apps:app list ->
  lib:Library.t ->
  pes:Pe.inst array ->
  policy:Policy.t ->
  unit ->
  t * Policy.weights
(** The periodic counterpart of {!List_sched.run_adaptive}: bisects for the
    strongest cost weight under which every job still meets its absolute
    deadline. The base weight defaults to
    [Policy.default_weights ~deadline:(smallest graph deadline)]. *)
