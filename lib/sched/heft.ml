module Graph = Tats_taskgraph.Graph
module Task = Tats_taskgraph.Task
module Criticality = Tats_taskgraph.Criticality
module Pe = Tats_techlib.Pe
module Library = Tats_techlib.Library
module Comm = Tats_techlib.Comm

let upward_rank = Dc.static_criticality

(* Earliest start on a PE with the insertion policy: scan the sorted busy
   intervals for the first gap that fits [duration] at or after [ready]. *)
let insertion_start intervals ~ready ~duration =
  let rec scan prev_end = function
    | [] -> Float.max ready prev_end
    | (s, f) :: rest ->
        let candidate = Float.max ready prev_end in
        if candidate +. duration <= s +. 1e-9 then candidate else scan f rest
  in
  scan 0.0 intervals

let insert_interval intervals (s, f) =
  let rec go = function
    | [] -> [ (s, f) ]
    | ((s', _) as hd) :: rest when s < s' -> (s, f) :: hd :: rest
    | hd :: rest -> hd :: go rest
  in
  go intervals

let run ?constraints ~graph ~lib ~pes () =
  let n = Graph.n_tasks graph in
  let checker =
    match constraints with
    | Some spec when not (Constraints.is_empty spec) ->
        Some (Constraints.make spec ~n_tasks:n ~pes)
    | _ -> None
  in
  let admissible task pe =
    match checker with
    | None -> true
    | Some c -> Constraints.admissible c ~task ~pe ~pes
  in
  let comm = Library.comm lib in
  let rank = upward_rank lib graph in
  let order = Criticality.rank_order rank in
  let entries = Array.make n None in
  let busy = Array.make (Array.length pes) [] in
  Array.iter
    (fun task ->
      let tt = (Graph.task graph task).Task.task_type in
      let best = ref None in
      Array.iteri
        (fun pe (inst : Pe.inst) ->
          if admissible task pe then begin
          let kind = inst.Pe.kind.Pe.kind_id in
          let wcet = Library.wcet lib ~task_type:tt ~kind in
          let ready =
            List.fold_left
              (fun acc (pred, data) ->
                match entries.(pred) with
                | None ->
                    (* rank order is a topological order, so predecessors
                       are always placed first *)
                    assert false
                | Some (e : Schedule.entry) ->
                    let delay = Comm.delay_between comm ~src:e.Schedule.pe ~dst:pe ~data in
                    Float.max acc (e.Schedule.finish +. delay))
              0.0 (Graph.preds graph task)
          in
          let start = insertion_start busy.(pe) ~ready ~duration:wcet in
          let finish = start +. wcet in
          let better =
            match !best with
            | None -> true
            | Some (f', _, _, _) -> finish < f' -. 1e-12
          in
          if better then best := Some (finish, pe, start, wcet)
          end)
        pes;
      match !best with
      | None -> (
          match checker with
          | Some _ ->
              raise
                (Constraints.Infeasible (Constraints.infeasible_msg "Heft.run"))
          | None -> assert false)
      | Some (finish, pe, start, _wcet) ->
          (match checker with
          | Some c -> Constraints.commit c ~task ~pe
          | None -> ());
          let kind = pes.(pe).Pe.kind.Pe.kind_id in
          let energy = Library.energy lib ~task_type:tt ~kind in
          entries.(task) <- Some { Schedule.task; pe; start; finish; energy };
          busy.(pe) <- insert_interval busy.(pe) (start, finish))
    order;
  let entries =
    Array.map (function Some e -> e | None -> assert false) entries
  in
  Schedule.make ~graph ~pes ~entries
