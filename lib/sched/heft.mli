(** HEFT — Heterogeneous Earliest Finish Time (Topcuoglu et al., 2002) — as
    an independent comparator for the paper's ASP.

    Differences from {!List_sched}: tasks are ordered once by upward rank
    (no per-step re-selection), each task goes to the PE minimizing its
    earliest {e finish} time, and the insertion policy may place a task in
    an idle gap between two already-scheduled tasks — something the ASP's
    append-only timeline never does. *)

module Graph = Tats_taskgraph.Graph
module Pe = Tats_techlib.Pe
module Library = Tats_techlib.Library

val upward_rank : Library.t -> Graph.t -> float array
(** Mean-WCET node weights, mean cross/same-PE communication edge weights —
    the same quantity {!Dc.static_criticality} computes; exposed under its
    HEFT name for clarity. *)

val run :
  ?constraints:Constraints.spec ->
  graph:Graph.t ->
  lib:Library.t ->
  pes:Pe.inst array ->
  unit ->
  Schedule.t
(** Deterministic. The schedule covers every task and is valid by
    {!Schedule.validate}; it may or may not meet the deadline.
    [constraints] behaves as in {!List_sched.run}: pins and isolation
    enforced per placement, {!Constraints.Invalid} /
    {!Constraints.Infeasible} on contradiction / dead-end. *)
