module Graph = Tats_taskgraph.Graph
module Task = Tats_taskgraph.Task
module Pe = Tats_techlib.Pe
module Library = Tats_techlib.Library
module Comm = Tats_techlib.Comm
module Hotspot = Tats_thermal.Hotspot
module Stats = Tats_util.Stats

type app = { graph : Graph.t; period : float }

let make_app ~graph ~period =
  if period <= 0.0 || Float.rem period 1.0 <> 0.0 then
    invalid_arg "Periodic.make_app: period must be a positive integer";
  if period < Graph.deadline graph then
    invalid_arg "Periodic.make_app: period shorter than the graph deadline";
  { graph; period }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let hyperperiod apps =
  match apps with
  | [] -> invalid_arg "Periodic.hyperperiod: no applications"
  | first :: rest ->
      let lcm a b = a / gcd a b * b in
      let p app = int_of_float app.period in
      float_of_int (List.fold_left (fun acc app -> lcm acc (p app)) (p first) rest)

type job = { app : int; instance : int; task : Task.id }

type entry = { job : job; pe : int; start : float; finish : float; energy : float }

type t = {
  apps : app array;
  pes : Pe.inst array;
  hyper : float;
  entries : entry array;
}

(* Dense job numbering: offsets.(a) + instance * n_tasks(a) + task. *)
type expansion = {
  offsets : int array;
  instances : int array; (* per app *)
  jobs : job array;
}

let expand apps hyper =
  let n_apps = Array.length apps in
  let offsets = Array.make n_apps 0 in
  let instances = Array.make n_apps 0 in
  let total = ref 0 in
  for a = 0 to n_apps - 1 do
    offsets.(a) <- !total;
    instances.(a) <- int_of_float (hyper /. apps.(a).period);
    total := !total + (instances.(a) * Graph.n_tasks apps.(a).graph)
  done;
  let jobs = Array.make !total { app = 0; instance = 0; task = 0 } in
  for a = 0 to n_apps - 1 do
    let n = Graph.n_tasks apps.(a).graph in
    for k = 0 to instances.(a) - 1 do
      for task = 0 to n - 1 do
        jobs.(offsets.(a) + (k * n) + task) <- { app = a; instance = k; task }
      done
    done
  done;
  { offsets; instances; jobs }

let job_index exp apps j =
  exp.offsets.(j.app) + (j.instance * Graph.n_tasks apps.(j.app).graph) + j.task

let release apps j = float_of_int j.instance *. apps.(j.app).period

let job_deadline apps j = release apps j +. Graph.deadline apps.(j.app).graph

let schedule ?(policy = Policy.Baseline) ?weights ?hotspot ~apps ~lib ~pes () =
  (match apps with [] -> invalid_arg "Periodic.schedule: no applications" | _ -> ());
  let apps = Array.of_list apps in
  let hyper = hyperperiod (Array.to_list apps) in
  let exp = expand apps hyper in
  let n_jobs = Array.length exp.jobs in
  (match (policy, hotspot) with
  | Policy.Thermal_aware, None -> raise List_sched.Thermal_policy_needs_hotspot
  | Policy.Thermal_aware, Some h ->
      if Hotspot.n_blocks h <> Array.length pes then
        invalid_arg "Periodic.schedule: hotspot must have one block per PE"
  | (Policy.Baseline | Policy.Power_aware _), _ -> ());
  let weights =
    match weights with
    | Some w -> w
    | None -> Policy.default_weights ~deadline:hyper
  in
  Tats_util.Trace.with_span "periodic.schedule"
    ~args:[ ("jobs", Tats_util.Trace.Int n_jobs) ]
  @@ fun () ->
  let comm = Library.comm lib in
  (* Static criticality per app (shared by all its instances). *)
  let sc = Array.map (fun app -> Dc.static_criticality lib app.graph) apps in
  let idle = Array.map (fun (i : Pe.inst) -> i.Pe.kind.Pe.idle_power) pes in
  let committed = Array.make n_jobs None in
  let pe_tasks : entry list array = Array.make (Array.length pes) [] in
  let pe_energy = Array.make (Array.length pes) 0.0 in
  let unscheduled_preds =
    Array.map
      (fun j -> List.length (Graph.preds apps.(j.app).graph j.task))
      exp.jobs
  in
  let module Iset = Set.Make (Int) in
  let ready = ref Iset.empty in
  Array.iteri
    (fun idx d -> if d = 0 then ready := Iset.add idx !ready)
    unscheduled_preds;
  let earliest_start j pe =
    let data_ready =
      List.fold_left
        (fun acc (pred, data) ->
          let pidx = job_index exp apps { j with task = pred } in
          match committed.(pidx) with
          | None -> assert false
          | Some e ->
              let delay = Comm.delay_between comm ~src:e.pe ~dst:pe ~data in
              Float.max acc (e.finish +. delay))
        (release apps j)
        (Graph.preds apps.(j.app).graph j.task)
    in
    let avail =
      List.fold_left (fun acc (e : entry) -> Float.max acc e.finish) 0.0 pe_tasks.(pe)
    in
    Float.max data_ready avail
  in
  let order = ref [] in
  let n_scheduled = ref 0 in
  while !n_scheduled < n_jobs do
    (* One horizon per selection round (the current frontier), so the
       thermal inquiry compares candidates on equal footing. *)
    let now =
      Array.fold_left
        (fun acc tasks ->
          List.fold_left (fun acc (e : entry) -> Float.max acc e.finish) acc tasks)
        1.0 pe_tasks
    in
    let best = ref None in
    Iset.iter
      (fun idx ->
        let j = exp.jobs.(idx) in
        let tt = (Graph.task apps.(j.app).graph j.task).Task.task_type in
        Array.iteri
          (fun pe (inst : Pe.inst) ->
            let kind = inst.Pe.kind.Pe.kind_id in
            let wcet = Library.wcet lib ~task_type:tt ~kind in
            let task_energy = Library.energy lib ~task_type:tt ~kind in
            let start = earliest_start j pe in
            let finish = start +. wcet in
            let cost =
              match policy with
              | Policy.Baseline -> 0.0
              | Policy.Power_aware Policy.Min_task_power ->
                  Dc.cost_task_power lib ~task_type:tt ~kind
              | Policy.Power_aware Policy.Min_pe_average_power ->
                  Dc.cost_pe_average_power lib ~pe_energy:pe_energy.(pe) ~task_energy
                    ~finish
              | Policy.Power_aware Policy.Min_task_energy ->
                  Dc.cost_task_energy lib ~task_type:tt ~kind
              | Policy.Thermal_aware ->
                  let hotspot = Option.get hotspot in
                  let dynamic =
                    Array.init (Array.length pes) (fun p ->
                        (pe_energy.(p) /. now)
                        +.
                        if p = pe then Library.wcpc lib ~task_type:tt ~kind else 0.0)
                  in
                  let temps = Hotspot.inquire_with_leakage hotspot ~dynamic ~idle in
                  Dc.cost_temperature
                    ~ambient:(Hotspot.package hotspot).Tats_thermal.Package.ambient
                    ~avg_temp:(Stats.mean temps)
            in
            (* Job urgency: criticality relative to the instance release. *)
            let dc =
              Dc.value
                ~sc:(sc.(j.app).(j.task) -. release apps j)
                ~wcet ~start ~cost ~weight:weights.Policy.cost_weight
            in
            let better =
              match !best with
              | None -> true
              | Some (dc', idx', pe', _, _, _) ->
                  dc > dc' +. 1e-12
                  || (Float.abs (dc -. dc') <= 1e-12
                     && (idx < idx' || (idx = idx' && pe < pe')))
            in
            if better then best := Some (dc, idx, pe, start, finish, task_energy))
          pes)
      !ready;
    (match !best with
    | None -> assert false
    | Some (_, idx, pe, start, finish, energy) ->
        let j = exp.jobs.(idx) in
        let entry = { job = j; pe; start; finish; energy } in
        committed.(idx) <- Some entry;
        pe_tasks.(pe) <- entry :: pe_tasks.(pe);
        pe_energy.(pe) <- pe_energy.(pe) +. energy;
        order := entry :: !order;
        incr n_scheduled;
        ready := Iset.remove idx !ready;
        List.iter
          (fun (succ, _) ->
            let sidx = job_index exp apps { j with task = succ } in
            unscheduled_preds.(sidx) <- unscheduled_preds.(sidx) - 1;
            if unscheduled_preds.(sidx) = 0 then ready := Iset.add sidx !ready)
          (Graph.succs apps.(j.app).graph j.task))
  done;
  { apps; pes; hyper; entries = Array.of_list (List.rev !order) }

type violation =
  | Release of job
  | Job_deadline of job
  | Precedence of job * job
  | Pe_overlap of int * job * job

let validate t ~lib =
  let comm = Library.comm lib in
  let violations = ref [] in
  let by_job = Hashtbl.create (Array.length t.entries) in
  Array.iter (fun e -> Hashtbl.replace by_job e.job e) t.entries;
  Array.iter
    (fun e ->
      let j = e.job in
      if e.start +. 1e-9 < release t.apps j then violations := Release j :: !violations;
      if e.finish > job_deadline t.apps j +. 1e-6 then
        violations := Job_deadline j :: !violations;
      (* Duration against the library. *)
      List.iter
        (fun (pred, data) ->
          let pj = { j with task = pred } in
          match Hashtbl.find_opt by_job pj with
          | None -> violations := Precedence (pj, j) :: !violations
          | Some pe_entry ->
              let delay = Comm.delay_between comm ~src:pe_entry.pe ~dst:e.pe ~data in
              if e.start +. 1e-6 < pe_entry.finish +. delay then
                violations := Precedence (pj, j) :: !violations)
        (Graph.preds t.apps.(j.app).graph j.task))
    t.entries;
  for pe = 0 to Array.length t.pes - 1 do
    let on_pe =
      Array.to_list t.entries
      |> List.filter (fun e -> e.pe = pe)
      |> List.sort (fun a b -> compare a.start b.start)
    in
    let rec scan = function
      | a :: (b :: _ as rest) ->
          if b.start +. 1e-9 < a.finish then
            violations := Pe_overlap (pe, a.job, b.job) :: !violations;
          scan rest
      | [ _ ] | [] -> ()
    in
    scan on_pe
  done;
  List.rev !violations

let meets_all_deadlines t =
  Array.for_all (fun e -> e.finish <= job_deadline t.apps e.job +. 1e-6) t.entries

let total_energy t = Array.fold_left (fun acc e -> acc +. e.energy) 0.0 t.entries

let average_power t = total_energy t /. Float.max t.hyper 1e-9

let pe_average_powers t =
  let dyn = Array.make (Array.length t.pes) 0.0 in
  Array.iter (fun e -> dyn.(e.pe) <- dyn.(e.pe) +. e.energy) t.entries;
  Array.mapi
    (fun pe e -> (e /. Float.max t.hyper 1e-9) +. t.pes.(pe).Pe.kind.Pe.idle_power)
    dyn

let thermal_report ?(leakage = true) t ~hotspot =
  if Hotspot.n_blocks hotspot <> Array.length t.pes then
    invalid_arg "Periodic.thermal_report: hotspot must have one block per PE";
  let dyn = Array.make (Array.length t.pes) 0.0 in
  Array.iter (fun e -> dyn.(e.pe) <- dyn.(e.pe) +. e.energy) t.entries;
  let dynamic = Array.map (fun e -> e /. Float.max t.hyper 1e-9) dyn in
  let idle = Array.map (fun (i : Pe.inst) -> i.Pe.kind.Pe.idle_power) t.pes in
  let block_temps =
    if leakage then Hotspot.inquire_with_leakage hotspot ~dynamic ~idle
    else Hotspot.query hotspot ~power:(Array.mapi (fun i d -> d +. idle.(i)) dynamic)
  in
  {
    Metrics.pe_powers = Array.mapi (fun i d -> d +. idle.(i)) dynamic;
    block_temps;
    max_temp = Stats.max block_temps;
    avg_temp = Stats.mean block_temps;
  }

let transient_peak ?(time_unit = 1e-3) ?(periods = 20) ?dt t ~hotspot =
  if Hotspot.n_blocks hotspot <> Array.length t.pes then
    invalid_arg "Periodic.transient_peak: hotspot must have one block per PE";
  let idle = Array.map (fun (i : Pe.inst) -> i.Pe.kind.Pe.idle_power) t.pes in
  (* entry.energy = wcet x wcpc and finish - start = wcet, so the
     interval's draw is exactly the job's WCPC. *)
  let intervals =
    Array.to_list t.entries
    |> List.filter (fun e -> e.finish > e.start)
    |> List.map (fun e ->
           {
             Replay.pe = e.pe;
             start = e.start;
             finish = e.finish;
             power = e.energy /. (e.finish -. e.start);
           })
  in
  let profile =
    Replay.profile_of_intervals
      ~duration:(Float.max t.hyper 1e-9)
      ~time_unit ~idle intervals
  in
  Replay.peaks ~periods ?dt ~hotspot profile

let utilization t =
  let busy = Array.fold_left (fun acc e -> acc +. (e.finish -. e.start)) 0.0 t.entries in
  busy /. (float_of_int (Array.length t.pes) *. Float.max t.hyper 1e-9)

let schedule_adaptive ?base_weights ?(max_multiplier = 400.0) ?(search_steps = 16)
    ?hotspot ~apps ~lib ~pes ~policy () =
  if max_multiplier <= 0.0 then
    invalid_arg "Periodic.schedule_adaptive: non-positive multiplier";
  let base =
    match base_weights with
    | Some w -> w
    | None ->
        let min_deadline =
          List.fold_left
            (fun acc app -> Float.min acc (Graph.deadline app.graph))
            infinity apps
        in
        Policy.default_weights ~deadline:min_deadline
  in
  let attempt mult =
    let weights = { Policy.cost_weight = base.Policy.cost_weight *. mult } in
    (schedule ~policy ~weights ?hotspot ~apps ~lib ~pes (), weights)
  in
  let meets (t, _) = meets_all_deadlines t in
  (* Find the feasibility boundary. *)
  let boundary =
    let ceiling = attempt max_multiplier in
    if meets ceiling then max_multiplier
    else begin
      let lo = ref 0.0 and hi = ref max_multiplier in
      for _ = 1 to search_steps do
        let mid = (!lo +. !hi) /. 2.0 in
        if meets (attempt mid) then lo := mid else hi := mid
      done;
      !lo
    end
  in
  (* The hyperperiod-average power is fixed, so unlike the one-shot ASP a
     larger weight is not automatically cooler: scan the feasible range and
     keep the coolest candidate (or the strongest feasible weight when no
     thermal objective is available). *)
  let candidates =
    List.sort_uniq compare
      [ 0.0; boundary /. 8.0; boundary /. 4.0; boundary /. 2.0;
        3.0 *. boundary /. 4.0; boundary ]
  in
  let evaluate mult =
    let ((t, _) as r) = attempt mult in
    let key =
      if not (meets_all_deadlines t) then infinity
      else
        match (policy, hotspot) with
        | Policy.Thermal_aware, Some h ->
            (thermal_report t ~hotspot:h).Metrics.max_temp
        | (Policy.Baseline | Policy.Power_aware _ | Policy.Thermal_aware), _ ->
            -.mult
    in
    (key, r)
  in
  let scored = List.map evaluate candidates in
  let best =
    List.fold_left
      (fun acc (key, r) ->
        match acc with
        | None -> Some (key, r)
        | Some (k', _) when key < k' -. 1e-12 -> Some (key, r)
        | Some _ -> acc)
      None scored
  in
  match best with
  | Some (key, r) when key < infinity -> r
  | _ -> attempt 0.0
