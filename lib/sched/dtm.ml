module Graph = Tats_taskgraph.Graph
module Task = Tats_taskgraph.Task
module Pe = Tats_techlib.Pe
module Library = Tats_techlib.Library
module Comm = Tats_techlib.Comm
module Hotspot = Tats_thermal.Hotspot
module Rcmodel = Tats_thermal.Rcmodel
module Package = Tats_thermal.Package
module Transient = Tats_thermal.Transient

type params = {
  trigger : float;
  hysteresis : float;
  throttle_factor : float;
  time_unit : float;
  dt : float;
  passes : int;
}

let default_params =
  {
    trigger = 85.0;
    hysteresis = 3.0;
    throttle_factor = 0.5;
    time_unit = 1e-3;
    dt = 1.0;
    passes = 1;
  }

type result = {
  finish : float array;
  makespan : float;
  peak_temperature : float;
  throttled_fraction : float;
  meets_deadline : bool;
}

let simulate ?(params = default_params) ~lib ~hotspot (s : Schedule.t) =
  if params.throttle_factor <= 0.0 || params.throttle_factor >= 1.0 then
    invalid_arg "Dtm.simulate: throttle factor must be in (0,1)";
  if params.dt <= 0.0 || params.time_unit <= 0.0 then
    invalid_arg "Dtm.simulate: bad time parameters";
  if params.hysteresis < 0.0 then invalid_arg "Dtm.simulate: negative hysteresis";
  Tats_util.Trace.with_span "dtm.simulate" @@ fun () ->
  let n_pes = Schedule.n_pes s in
  if Hotspot.n_blocks hotspot <> n_pes then
    invalid_arg "Dtm.simulate: hotspot must have one block per PE";
  let graph = s.Schedule.graph in
  let n = Graph.n_tasks graph in
  let comm = Library.comm lib in
  let model = Hotspot.model hotspot in
  (* The event-driven engine's exact stepper: the same factored
     (C/dt + A), the same operand order — bit-identical to the in-line
     backward-Euler stepper this loop originally carried. *)
  let engine = Transient.create (Transient.of_model model) in
  let dt_seconds = params.dt *. params.time_unit in
  (* Per-PE task queues, in the schedule's start order. *)
  let queues = Array.init n_pes (fun pe -> ref (Schedule.tasks_on_pe s pe)) in
  let wcet_of task =
    let tt = (Graph.task graph task).Task.task_type in
    Library.wcet lib ~task_type:tt
      ~kind:s.Schedule.pes.(s.Schedule.entries.(task).Schedule.pe).Pe.kind.Pe.kind_id
  in
  let wcpc_of task =
    let tt = (Graph.task graph task).Task.task_type in
    Library.wcpc lib ~task_type:tt
      ~kind:s.Schedule.pes.(s.Schedule.entries.(task).Schedule.pe).Pe.kind.Pe.kind_id
  in
  if params.passes < 1 then invalid_arg "Dtm.simulate: need at least one pass";
  let idle = Array.map (fun (i : Pe.inst) -> i.Pe.kind.Pe.idle_power) s.Schedule.pes in
  (* Thermal and DTM state persist across passes; execution state resets. *)
  let temps = Array.make (Rcmodel.n_nodes model) (Rcmodel.package model).Package.ambient in
  let throttled = Array.make n_pes false in
  let peak = ref (Rcmodel.package model).Package.ambient in
  let last = ref None in
  for _pass = 1 to params.passes do
    Array.iteri (fun pe _ -> queues.(pe) := Schedule.tasks_on_pe s pe) queues;
    let progress = Array.make n 0.0 in
    let finish = Array.make n nan in
    let data_ready task pe =
      List.fold_left
        (fun acc (pred, data) ->
          if Float.is_nan finish.(pred) then infinity
          else
            let delay =
              Comm.delay comm ~data
                ~same_pe:(s.Schedule.entries.(pred).Schedule.pe = pe)
            in
            Float.max acc (finish.(pred) +. delay))
        0.0 (Graph.preds graph task)
    in
    let busy_time = ref 0.0 and throttled_time = ref 0.0 in
    let done_count = ref 0 in
    let time = ref 0.0 in
    (* Hard stop: even fully throttled, everything finishes within
       total-wcet / factor plus the schedule span; 20x makespan is generous. *)
    let horizon = 20.0 *. Float.max s.Schedule.makespan 1.0 in
    while !done_count < n && !time < horizon do
      (* Which task runs on each PE this step? *)
      let running =
        Array.mapi
          (fun pe queue ->
            match !queue with
            | [] -> None
            | (e : Schedule.entry) :: _ ->
                if data_ready e.Schedule.task pe <= !time +. 1e-9 then
                  Some e.Schedule.task
                else None)
          queues
      in
      (* Update DTM state from current temperatures. *)
      for pe = 0 to n_pes - 1 do
        let t = temps.(pe) in
        if t > params.trigger then throttled.(pe) <- true
        else if t < params.trigger -. params.hysteresis then throttled.(pe) <- false
      done;
      (* Advance progress and accumulate power. *)
      let power = Array.copy idle in
      Array.iteri
        (fun pe task ->
          match task with
          | None -> ()
          | Some task ->
              let rate = if throttled.(pe) then params.throttle_factor else 1.0 in
              busy_time := !busy_time +. params.dt;
              if throttled.(pe) then throttled_time := !throttled_time +. params.dt;
              (* Throttled PEs also draw proportionally less dynamic power. *)
              power.(pe) <- power.(pe) +. (wcpc_of task *. rate);
              progress.(task) <- progress.(task) +. (rate *. params.dt);
              if progress.(task) >= wcet_of task -. 1e-9 then begin
                finish.(task) <- !time +. params.dt;
                incr done_count;
                queues.(pe) := List.tl !(queues.(pe))
              end)
        running;
      Transient.step engine ~dt:dt_seconds ~power temps;
      for pe = 0 to n_pes - 1 do
        peak := Float.max !peak temps.(pe)
      done;
      time := !time +. params.dt
    done;
    if !done_count < n then
      failwith "Dtm.simulate: horizon exceeded (throttling livelock?)";
    let throttled_fraction =
      if !busy_time > 0.0 then !throttled_time /. !busy_time else 0.0
    in
    last := Some (finish, throttled_fraction)
  done;
  let finish, throttled_fraction =
    match !last with Some r -> r | None -> assert false
  in
  let makespan = Array.fold_left Float.max 0.0 finish in
  {
    finish;
    makespan;
    peak_temperature = !peak;
    throttled_fraction;
    meets_deadline = makespan <= Graph.deadline graph +. 1e-6;
  }
