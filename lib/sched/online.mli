(** Online reactive scheduling: sporadic task arrivals, irrevocable
    decisions, and a clairvoyant competitive baseline.

    The offline list scheduler ({!List_sched}) sees the whole DAG at time
    zero. This module models the streaming setting of the online
    literature: tasks are {e released} over time, the scheduler learns of
    a task only at its release, and every (task, PE, start) commitment is
    irrevocable. Decisions are made at {e events} — release times, plus
    cooldown wake-ups injected by the reactive policy — and at each event
    the scheduler re-plans all currently plannable work with the same
    max-DC greedy core as the offline scheduler.

    Two policy families are provided:

    - {!Mirror}: the offline DC policies applied online, restricted to
      released tasks. With the degenerate all-zero arrival stream the
      event loop collapses to a single event at [t = 0] and reproduces
      {!List_sched.run} bit-identically (the differential test battery's
      anchor property).
    - {!Reactive}: a temperature-reactive adaptation that tracks the live
      {!Tats_thermal.Transient} state of the platform between events,
      penalizes candidate PEs whose current temperature exceeds a trigger
      (migration pressure towards cooler PEs), and defers work to a
      cooldown wake-up when every PE is hot (throttling as a stall —
      WCETs are never stretched, so {!Schedule.validate} still holds).

    Every run is scored against the {e clairvoyant} baseline — the
    offline list scheduler handed the full arrival trace as start-time
    floors — by re-simulating both schedules bit-exactly through
    {!Replay.of_schedule} and reporting empirical competitive ratios on
    makespan and peak temperature.

    Activity is visible as [online.*] counters in
    {!Tats_util.Metricsreg} and [online.run] / [online.event] /
    [online.score] spans in {!Tats_util.Trace}. *)

module Graph = Tats_taskgraph.Graph
module Task = Tats_taskgraph.Task
module Pe = Tats_techlib.Pe
module Library = Tats_techlib.Library
module Hotspot = Tats_thermal.Hotspot

exception Policy_needs_hotspot
(** Raised when the chosen policy requires temperature state (a thermal
    mirror, or any reactive policy) and no hotspot facade was supplied. *)

(** {1 Arrival streams} *)

type arrivals = float array
(** [arrivals.(t)] is the release time of task [t]: the instant the
    scheduler first learns the task exists. All entries must be finite
    and non-negative. *)

val zero : Graph.t -> arrivals
(** Everything releases at [t = 0] — the degenerate stream under which
    the online scheduler must reproduce the offline one bit-identically. *)

val sporadic : ?mean_gap:float -> seed:int -> Graph.t -> arrivals
(** A seeded sporadic stream: in topological order, each task releases a
    random gap (uniform on [[0, 2 mean_gap)), drawn from
    [Rng.derive seed task]) after the latest release among its
    predecessors — so releases are random but never precede the data
    producers' releases. Deterministic in [(seed, graph)] and independent
    of evaluation order. [mean_gap] defaults to [25.0] schedule time
    units; it must be positive. *)

val of_trace : Schedule.t -> arrivals
(** Trace-driven arrivals: each task releases at its start time in an
    existing schedule — replaying a previously observed execution trace
    (e.g. the offline baseline on Bm1–Bm3) as an arrival stream. *)

val validate_arrivals : Graph.t -> arrivals -> unit
(** Raises [Invalid_argument] unless the array covers every task with
    finite, non-negative release times. *)

(** {1 Policies} *)

type reactive = {
  base : Policy.t;  (** DC cost family used for candidate ranking. *)
  trigger : float;  (** block temperature (°C) above which a PE is hot *)
  penalty : float;
      (** extra normalized DC cost per °C above [trigger] on the
          candidate PE — steers work towards cooler PEs (migration). *)
  cooldown : float;
      (** stall, in schedule time units, applied when {e every} PE is hot:
          the picked task is deferred to a wake-up event [cooldown] later
          instead of being committed (throttling without stretching
          WCETs). *)
  max_defers : int;
      (** per-task cap on cooldown deferrals; once exhausted the task is
          committed even on a hot PE, guaranteeing termination. *)
}

type policy =
  | Mirror of Policy.t
      (** The offline DC policy applied to released tasks only. *)
  | Reactive of reactive
      (** Temperature-reactive variant driven by the live transient
          state. *)

val default_reactive : reactive
(** [{ base = Thermal_aware; trigger = 75.0; penalty = 4.0;
      cooldown = 40.0; max_defers = 8 }]. *)

val policy_name : policy -> string
(** ["baseline"], ["h1"], ["h2"], ["h3"], ["thermal"] for mirrors (as
    {!Policy.name}); ["reactive"] for the reactive policy. *)

val policy_of_name : string -> policy option
(** Inverse of {!policy_name}; ["reactive"] maps to
    [Reactive default_reactive]. *)

val pp_policy : Format.formatter -> policy -> unit

val base_policy : policy -> Policy.t
(** The DC cost family underneath: the mirrored policy itself, or a
    reactive policy's [base]. The clairvoyant baseline runs this. *)

(** {1 Running} *)

type stats = {
  events : int;  (** decision points visited (releases + wake-ups) *)
  decisions : int;  (** committed (task, PE) choices, = number of tasks *)
  candidates : int;  (** (task, PE) pairs evaluated across all events *)
  deferrals : int;  (** reactive cooldown stalls taken *)
  peak_observed : float;
      (** hottest block temperature (°C) sampled from the live transient
          state at any decision point; [nan] when the policy never
          consults the transient engine (mirrors). *)
}

type run = {
  schedule : Schedule.t;
  arrivals : arrivals;
  policy : policy;
  stats : stats;
}

val run :
  ?weights:Policy.weights ->
  ?hotspot:Hotspot.t ->
  ?constraints:Constraints.spec ->
  ?time_unit:float ->
  arrivals:arrivals ->
  graph:Graph.t ->
  lib:Library.t ->
  pes:Pe.inst array ->
  policy:policy ->
  unit ->
  run
(** Run the online event loop over [arrivals]. [weights] defaults to
    {!Policy.default_weights} on the graph deadline, exactly as the
    offline scheduler. [hotspot] is required for [Mirror Thermal_aware]
    and for every [Reactive] policy (raises {!Policy_needs_hotspot}
    otherwise) and must have one block per PE. [time_unit] (default
    [1e-3] — the {!Replay.of_schedule} convention, seconds per schedule
    time unit) scales the live transient integration between events.

    The schedule always satisfies [start >= release] for every task in
    addition to the {!Schedule.validate} invariants.

    [constraints] restricts placements (pins and isolation, see
    {!Constraints}) exactly as in {!List_sched.run}: absent or empty, the
    event loop is bit-identical to the historical unconstrained path. *)

val clairvoyant :
  ?weights:Policy.weights ->
  ?hotspot:Hotspot.t ->
  ?constraints:Constraints.spec ->
  arrivals:arrivals ->
  graph:Graph.t ->
  lib:Library.t ->
  pes:Pe.inst array ->
  policy:Policy.t ->
  unit ->
  Schedule.t
(** The competitive baseline: the offline list scheduler given the full
    arrival trace up front — all tasks visible at [t = 0], but no task
    may start before its release. With all-zero arrivals this {e is}
    {!List_sched.run}, bit for bit. *)

val released_before_start : run -> Task.id list
(** Tasks whose committed start precedes their release — always empty
    for schedules produced by {!run}; exposed for the property suite. *)

(** {1 Competitive scoring} *)

type score = {
  online_makespan : float;
  clairvoyant_makespan : float;
  makespan_ratio : float;  (** >= 1 by construction, see below *)
  online_peak : float;  (** peak block temperature (°C), replay-scored *)
  clairvoyant_peak : float;
  peak_ratio : float;  (** >= 1 by construction *)
  mimicked_makespan : bool;
  mimicked_peak : bool;
      (** true when the clairvoyant adversary adopted the online
          schedule for that metric (see below). *)
}

val score :
  ?periods:int ->
  ?dt:float ->
  ?time_unit:float ->
  lib:Library.t ->
  hotspot:Hotspot.t ->
  clairvoyant:Schedule.t ->
  run ->
  score
(** Score [run] against the [clairvoyant] schedule. Both schedules are
    re-simulated bit-exactly through {!Replay.of_schedule} (with
    [time_unit], default [1e-3]) and peak-scored with {!Replay.peaks}
    ([periods] default [50]; [dt] defaults per profile as in
    {!Replay.peaks}).

    The greedy DC heuristic is not optimal, so on some streams the
    online schedule can beat the clairvoyant {e heuristic} run. The
    adversary, however, sees everything the online player does and may
    simply mimic it — so the baseline for each metric is the better of
    the clairvoyant schedule and the online schedule itself, making both
    ratios [>= 1] by construction. [mimicked_*] records when that clause
    fired. Degenerate zero-over-zero ratios (empty graphs) report [1.]. *)

val pp_score : Format.formatter -> score -> unit
