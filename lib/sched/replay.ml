module Graph = Tats_taskgraph.Graph
module Task = Tats_taskgraph.Task
module Pe = Tats_techlib.Pe
module Library = Tats_techlib.Library
module Hotspot = Tats_thermal.Hotspot
module Rcmodel = Tats_thermal.Rcmodel
module Transient = Tats_thermal.Transient

type interval = { pe : int; start : float; finish : float; power : float }

let profile_of_intervals ~duration ~time_unit ~idle intervals =
  if duration <= 0.0 then
    invalid_arg "Replay.profile_of_intervals: duration must be positive";
  if time_unit <= 0.0 then
    invalid_arg "Replay.profile_of_intervals: time_unit must be positive";
  let n_pes = Array.length idle in
  List.iter
    (fun iv ->
      if iv.pe < 0 || iv.pe >= n_pes then
        invalid_arg "Replay.profile_of_intervals: interval on unknown PE")
    intervals;
  (* Breakpoints: every interval endpoint inside [0, duration), plus 0. *)
  let cuts =
    List.concat_map (fun iv -> [ iv.start; iv.finish ]) intervals
    |> List.cons 0.0
    |> List.filter (fun t -> t >= 0.0 && t < duration)
    |> List.sort_uniq Float.compare
  in
  (* Power in force on the segment starting at [t]: no interval endpoint
     lies strictly inside a segment, so evaluating at its start is exact.
     PE exclusivity means at most one interval covers (pe, t); the fold
     mirrors Metrics.power_profile's operand order (idle +. running). *)
  let power_at t =
    Array.init n_pes (fun pe ->
        let running =
          List.fold_left
            (fun acc iv ->
              if iv.pe = pe && iv.start <= t && t < iv.finish then acc +. iv.power
              else acc)
            0.0 intervals
        in
        idle.(pe) +. running)
  in
  Transient.profile ~duration:(duration *. time_unit)
    ~segments:(List.map (fun t -> (t *. time_unit, power_at t)) cuts)

let of_schedule ?(time_unit = 1e-3) ~lib (s : Schedule.t) =
  let idle = Array.map (fun (i : Pe.inst) -> i.Pe.kind.Pe.idle_power) s.Schedule.pes in
  let wcpc (e : Schedule.entry) =
    let tt = (Graph.task s.Schedule.graph e.task).Task.task_type in
    Library.wcpc lib ~task_type:tt ~kind:s.Schedule.pes.(e.pe).Pe.kind.Pe.kind_id
  in
  let intervals =
    Array.to_list s.Schedule.entries
    |> List.map (fun (e : Schedule.entry) ->
           { pe = e.pe; start = e.start; finish = e.finish; power = wcpc e })
  in
  profile_of_intervals
    ~duration:(Float.max s.Schedule.makespan 1e-9)
    ~time_unit ~idle intervals

let peaks ?(periods = 50) ?dt ?(exact = false) ~hotspot profile =
  if periods < 2 then invalid_arg "Replay.peaks: need at least 2 periods";
  let model = Hotspot.model hotspot in
  let dt =
    match dt with
    | Some d -> d
    | None -> Transient.profile_duration profile /. 100.0
  in
  let engine = Transient.create (Transient.of_model model) in
  let t0 = Transient.initial_ambient model in
  let r = Transient.replay ~exact engine ~profile ~t0 ~dt ~periods in
  Array.sub r.Transient.last_period_peak 0 (Rcmodel.n_blocks model)
