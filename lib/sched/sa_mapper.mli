(** Simulated-annealing task mapper — a search-based comparator for the
    constructive ASP.

    The state is a full mapping (task -> PE) plus a scheduling priority
    permutation; a state decodes to a schedule by list-scheduling the tasks
    in priority order onto their assigned PEs. Annealing moves either remap
    one task or swap two priorities. Because it searches globally instead of
    deciding greedily, it bounds how much the one-pass ASP leaves on the
    table (at ~1000x the cost — see the bench). *)

module Graph = Tats_taskgraph.Graph
module Pe = Tats_techlib.Pe
module Library = Tats_techlib.Library
module Hotspot = Tats_thermal.Hotspot

type objective =
  | Makespan
  | Peak_temperature of Hotspot.t
      (** steady-state peak under per-PE average power (with leakage),
          plus a large penalty per unit of deadline violation *)

type params = {
  initial_temperature : float;
  cooling : float;
  moves_per_temperature : int;
  min_temperature : float;
}

val default_params : params

type result = {
  schedule : Schedule.t;
  cost : float;
  moves_tried : int;
  moves_accepted : int;
}

val decode :
  graph:Graph.t ->
  lib:Library.t ->
  pes:Pe.inst array ->
  assignment:int array ->
  priority:int array ->
  Schedule.t
(** [decode ~assignment ~priority] builds the schedule for a fixed mapping:
    tasks become eligible in dependency order and ties are broken by
    [priority] (lower value = scheduled first). Exposed for tests. *)

val run :
  ?params:params ->
  seed:int ->
  objective:objective ->
  graph:Graph.t ->
  lib:Library.t ->
  pes:Pe.inst array ->
  unit ->
  result
(** Deterministic for a fixed seed. The initial state is the ASP baseline
    schedule's own mapping, so the result is never worse than a decoded
    baseline. *)

type restarts_result = {
  best : result;  (** the winning chain's result *)
  best_restart : int;  (** its restart index *)
  restart_costs : float array;  (** final cost of every chain, by index *)
}

val run_restarts :
  ?params:params ->
  ?pool:Tats_util.Pool.t ->
  ?restarts:int ->
  seed:int ->
  objective:objective ->
  graph:Graph.t ->
  lib:Library.t ->
  pes:Pe.inst array ->
  unit ->
  restarts_result
(** Multi-start annealing: [restarts] (default 4) independent chains from
    the same baseline state, run on [pool] (default:
    {!Tats_util.Pool.default}). Chain 0 uses [Rng.create seed] and replays
    {!run} with that seed bit-for-bit; chain [i > 0] uses the derived
    generator {!Tats_util.Rng.derive}[ seed i]. Each chain is
    self-contained, so the whole search is deterministic in
    [(seed, restarts)] at any pool size; the best chain wins, ties broken
    by lowest restart index. *)
