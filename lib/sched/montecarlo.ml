module Graph = Tats_taskgraph.Graph
module Task = Tats_taskgraph.Task
module Pe = Tats_techlib.Pe
module Library = Tats_techlib.Library
module Comm = Tats_techlib.Comm
module Hotspot = Tats_thermal.Hotspot
module Rng = Tats_util.Rng
module Stats = Tats_util.Stats
module Pool = Tats_util.Pool

let m_runs = Tats_util.Metricsreg.counter "montecarlo.runs"

type sampler = { min_fraction : float; max_fraction : float }

let default_sampler = { min_fraction = 0.6; max_fraction = 1.0 }

type stats = {
  runs : int;
  makespan_mean : float;
  makespan_p95 : float;
  makespan_max : float;
  deadline_miss_rate : float;
  peak_temp_mean : float;
  peak_temp_max : float;
}

(* The parts of re-timing that do not depend on the sampled durations:
   per-PE predecessor links and the original start order. Shared read-only
   by every replication. *)
type retime_plan = { prev_on_pe : int option array; order : int array }

let plan_retime (s : Schedule.t) =
  let n = Graph.n_tasks s.Schedule.graph in
  let prev_on_pe = Array.make n None in
  for pe = 0 to Schedule.n_pes s - 1 do
    let rec link = function
      | (a : Schedule.entry) :: (b :: _ as rest) ->
          prev_on_pe.(b.Schedule.task) <- Some a.Schedule.task;
          link rest
      | [ _ ] | [] -> ()
    in
    link (Schedule.tasks_on_pe s pe)
  done;
  (* The original start order is consistent with both constraint kinds, so
     one pass in that order suffices. *)
  let order =
    let ids = Array.init n Fun.id in
    Array.sort
      (fun a b ->
        compare s.Schedule.entries.(a).Schedule.start
          s.Schedule.entries.(b).Schedule.start)
      ids;
    ids
  in
  { prev_on_pe; order }

(* Re-time the schedule under scaled durations, keeping mapping and per-PE
   order: each task starts when its predecessors' data has arrived and the
   previous task on its PE (in the original order) has finished. *)
let retime_with plan (s : Schedule.t) ~lib ~durations =
  let graph = s.Schedule.graph in
  let comm = Library.comm lib in
  let n = Graph.n_tasks graph in
  let finish = Array.make n nan in
  Array.iter
    (fun task ->
      let pe = s.Schedule.entries.(task).Schedule.pe in
      let data_ready =
        List.fold_left
          (fun acc (pred, data) ->
            let delay =
              Comm.delay_between comm ~src:s.Schedule.entries.(pred).Schedule.pe
                ~dst:pe ~data
            in
            Float.max acc (finish.(pred) +. delay))
          0.0 (Graph.preds graph task)
      in
      let pe_free =
        match plan.prev_on_pe.(task) with None -> 0.0 | Some p -> finish.(p)
      in
      finish.(task) <- Float.max data_ready pe_free +. durations.(task))
    plan.order;
  finish

let analyze ?(sampler = default_sampler) ?(runs = 200) ?pool ~seed ~lib
    ~hotspot (s : Schedule.t) =
  if sampler.min_fraction <= 0.0 || sampler.max_fraction < sampler.min_fraction then
    invalid_arg "Montecarlo.analyze: bad sampler bounds";
  if runs < 1 then invalid_arg "Montecarlo.analyze: need at least one run";
  if Hotspot.n_blocks hotspot <> Schedule.n_pes s then
    invalid_arg "Montecarlo.analyze: hotspot must have one block per PE";
  let pool = match pool with Some p -> p | None -> Pool.default () in
  Tats_util.Trace.with_span "montecarlo.analyze"
    ~args:[ ("runs", Tats_util.Trace.Int runs) ]
  @@ fun () ->
  Tats_util.Metricsreg.add m_runs runs;
  let graph = s.Schedule.graph in
  let n = Graph.n_tasks graph in
  let rng = Rng.create seed in
  let deadline = Graph.deadline graph in
  let idle =
    Array.map (fun (i : Pe.inst) -> i.Pe.kind.Pe.idle_power) s.Schedule.pes
  in
  (* All randomness is drawn here, sequentially, in the exact order the
     sequential implementation consumed it — the sample stream is a pure
     function of [seed], independent of the pool size. *)
  let samples =
    Array.init runs (fun _ ->
        Array.init n (fun _ ->
            Rng.uniform rng sampler.min_fraction sampler.max_fraction))
  in
  let plan = plan_retime s in
  (* Force the engine's influence matrix before fanning out, and query it
     statelessly (no warm start, no cache) so each replication's peak
     temperature is a pure function of its sampled fractions. *)
  ignore (Hotspot.inquiry hotspot);
  let evaluate fractions =
    let durations =
      Array.mapi
        (fun task (e : Schedule.entry) ->
          (e.Schedule.finish -. e.Schedule.start) *. fractions.(task))
        s.Schedule.entries
    in
    let finish = retime_with plan s ~lib ~durations in
    let makespan = Array.fold_left Float.max 0.0 finish in
    let missed = makespan > deadline +. 1e-9 in
    (* Energy scales with actual duration (constant power while running). *)
    let dynamic = Array.make (Schedule.n_pes s) 0.0 in
    Array.iteri
      (fun task (e : Schedule.entry) ->
        dynamic.(e.Schedule.pe) <-
          dynamic.(e.Schedule.pe)
          +. (e.Schedule.energy *. fractions.(task) /. Float.max makespan 1e-9))
      s.Schedule.entries;
    let temps =
      Hotspot.inquire_with_leakage ~warm:false ~cache:false hotspot ~dynamic
        ~idle
    in
    (makespan, missed, Stats.max temps)
  in
  let results = Pool.parallel_map pool evaluate samples in
  let makespans = Array.map (fun (m, _, _) -> m) results in
  let peaks = Array.map (fun (_, _, p) -> p) results in
  let misses =
    Array.fold_left (fun acc (_, m, _) -> if m then acc + 1 else acc) 0 results
  in
  {
    runs;
    makespan_mean = Stats.mean makespans;
    makespan_p95 = Stats.percentile makespans 95.0;
    makespan_max = Stats.max makespans;
    deadline_miss_rate = float_of_int misses /. float_of_int runs;
    peak_temp_mean = Stats.mean peaks;
    peak_temp_max = Stats.max peaks;
  }
