(** Monte-Carlo execution-time analysis of a schedule.

    Schedules are built from worst-case execution times; at run time tasks
    usually finish earlier. This replays a schedule's mapping and per-PE
    order under sampled actual execution times (a fraction of WCET) and
    reports the distributions that matter: makespan spread, deadline-miss
    probability (zero by construction when actuals never exceed WCET, so
    the sampler also supports overruns), and the per-PE energy spread that
    feeds the thermal model. *)

module Graph = Tats_taskgraph.Graph
module Library = Tats_techlib.Library
module Hotspot = Tats_thermal.Hotspot
module Pool = Tats_util.Pool

type sampler = {
  min_fraction : float; (** lower bound of actual/WCET, > 0 *)
  max_fraction : float; (** upper bound; > 1 models overruns *)
}

val default_sampler : sampler
(** Uniform in [0.6, 1.0] — the usual "actuals rarely hit worst case". *)

type stats = {
  runs : int;
  makespan_mean : float;
  makespan_p95 : float;
  makespan_max : float;
  deadline_miss_rate : float; (** in [0, 1] *)
  peak_temp_mean : float;     (** °C, steady state per sampled run *)
  peak_temp_max : float;
}

val analyze :
  ?sampler:sampler ->
  ?runs:int ->
  ?pool:Pool.t ->
  seed:int ->
  lib:Library.t ->
  hotspot:Hotspot.t ->
  Schedule.t ->
  stats
(** [runs] defaults to 200. Each run keeps the schedule's task-to-PE
    mapping and per-PE order, scales every task's duration by an
    independent uniform draw, recomputes start/finish by the list
    semantics (data readiness + PE order), and evaluates the steady-state
    peak temperature under the run's average powers.

    Replications are evaluated on [pool] (default: {!Pool.default}).
    Deterministic in [seed] {e at any pool size}: every uniform draw is
    made sequentially up front, in the order the sequential implementation
    consumed them, and each replication's thermal query is stateless
    ([~warm:false ~cache:false] — see {!Hotspot.inquire_with_leakage}), so
    the returned statistics are bit-identical whether evaluated on 1
    domain or 32. *)
