module Graph = Tats_taskgraph.Graph
module Task = Tats_taskgraph.Task
module Pe = Tats_techlib.Pe
module Library = Tats_techlib.Library
module Comm = Tats_techlib.Comm
module Hotspot = Tats_thermal.Hotspot
module Rng = Tats_util.Rng
module Stats = Tats_util.Stats
module Pool = Tats_util.Pool
module Trace = Tats_util.Trace
module Metricsreg = Tats_util.Metricsreg

let m_moves = Metricsreg.counter "sa_mapper.moves"

type objective = Makespan | Peak_temperature of Hotspot.t

type params = {
  initial_temperature : float;
  cooling : float;
  moves_per_temperature : int;
  min_temperature : float;
}

let default_params =
  {
    initial_temperature = 50.0;
    cooling = 0.93;
    moves_per_temperature = 60;
    min_temperature = 0.05;
  }

type result = {
  schedule : Schedule.t;
  cost : float;
  moves_tried : int;
  moves_accepted : int;
}

let decode ~graph ~lib ~pes ~assignment ~priority =
  let n = Graph.n_tasks graph in
  if Array.length assignment <> n || Array.length priority <> n then
    invalid_arg "Sa_mapper.decode: vector length mismatch";
  Array.iter
    (fun pe ->
      if pe < 0 || pe >= Array.length pes then
        invalid_arg "Sa_mapper.decode: assignment out of range")
    assignment;
  let comm = Library.comm lib in
  let entries = Array.make n None in
  let pe_avail = Array.make (Array.length pes) 0.0 in
  let unscheduled_preds = Array.init n (fun v -> List.length (Graph.preds graph v)) in
  let module Pq = Set.Make (struct
    type t = int * int (* (priority, task) *)

    let compare = compare
  end) in
  let ready = ref Pq.empty in
  List.iter
    (fun v -> ready := Pq.add (priority.(v), v) !ready)
    (Graph.sources graph);
  let scheduled = ref 0 in
  while !scheduled < n do
    let ((_, task) as key) = Pq.min_elt !ready in
    ready := Pq.remove key !ready;
    let pe = assignment.(task) in
    let tt = (Graph.task graph task).Task.task_type in
    let kind = pes.(pe).Pe.kind.Pe.kind_id in
    let wcet = Library.wcet lib ~task_type:tt ~kind in
    let data_ready =
      List.fold_left
        (fun acc (pred, data) ->
          match entries.(pred) with
          | None -> assert false
          | Some (e : Schedule.entry) ->
              let delay = Comm.delay_between comm ~src:e.Schedule.pe ~dst:pe ~data in
              Float.max acc (e.Schedule.finish +. delay))
        0.0 (Graph.preds graph task)
    in
    let start = Float.max data_ready pe_avail.(pe) in
    let finish = start +. wcet in
    entries.(task) <-
      Some
        {
          Schedule.task;
          pe;
          start;
          finish;
          energy = Library.energy lib ~task_type:tt ~kind;
        };
    pe_avail.(pe) <- finish;
    incr scheduled;
    List.iter
      (fun (succ, _) ->
        unscheduled_preds.(succ) <- unscheduled_preds.(succ) - 1;
        if unscheduled_preds.(succ) = 0 then
          ready := Pq.add (priority.(succ), succ) !ready)
      (Graph.succs graph task)
  done;
  let entries = Array.map (function Some e -> e | None -> assert false) entries in
  Schedule.make ~graph ~pes ~entries

let evaluate ~objective (s : Schedule.t) =
  match objective with
  | Makespan -> s.Schedule.makespan
  | Peak_temperature hotspot ->
      let report = Metrics.thermal_report s ~hotspot in
      let lateness = Float.max 0.0 (s.Schedule.makespan -. Graph.deadline s.Schedule.graph) in
      report.Metrics.max_temp +. (10.0 *. lateness)

let check_params params =
  if params.initial_temperature <= 0.0 || params.min_temperature <= 0.0 then
    invalid_arg "Sa_mapper.run: non-positive temperature";
  if params.cooling <= 0.0 || params.cooling >= 1.0 then
    invalid_arg "Sa_mapper.run: cooling not in (0,1)"

(* One annealing chain from the baseline state, consuming [rng]. All
   mutable state is chain-local, so chains with independent generators can
   run on separate domains. *)
let anneal ~params ~rng ~objective ~graph ~lib ~pes ~baseline =
  Trace.with_span "sa_mapper.anneal" @@ fun () ->
  let n = Graph.n_tasks graph in
  let assignment =
    Array.map (fun (e : Schedule.entry) -> e.Schedule.pe) baseline.Schedule.entries
  in
  let priority =
    let ids = Array.init n Fun.id in
    Array.sort
      (fun a b ->
        compare baseline.Schedule.entries.(a).Schedule.start
          baseline.Schedule.entries.(b).Schedule.start)
      ids;
    let p = Array.make n 0 in
    Array.iteri (fun rank v -> p.(v) <- rank) ids;
    p
  in
  let decode_state (a, p) = decode ~graph ~lib ~pes ~assignment:a ~priority:p in
  let cost_of state = evaluate ~objective (decode_state state) in
  let current = ref (Array.copy assignment, Array.copy priority) in
  let current_cost = ref (cost_of !current) in
  let best = ref (Array.copy assignment, Array.copy priority) in
  let best_cost = ref !current_cost in
  let tried = ref 0 and accepted = ref 0 in
  let temperature = ref params.initial_temperature in
  while !temperature > params.min_temperature do
    for _ = 1 to params.moves_per_temperature do
      incr tried;
      let a, p = !current in
      let a' = Array.copy a and p' = Array.copy p in
      if Rng.bool rng && Array.length pes > 1 then begin
        (* remap one task *)
        let t = Rng.int rng n in
        let pe = Rng.int rng (Array.length pes) in
        a'.(t) <- pe
      end
      else if n >= 2 then begin
        (* swap two priorities *)
        let i = Rng.int rng n and j = Rng.int rng n in
        let tmp = p'.(i) in
        p'.(i) <- p'.(j);
        p'.(j) <- tmp
      end;
      let candidate = (a', p') in
      let candidate_cost = cost_of candidate in
      let delta = candidate_cost -. !current_cost in
      if delta <= 0.0 || Rng.float rng 1.0 < exp (-.delta /. !temperature) then begin
        incr accepted;
        current := candidate;
        current_cost := candidate_cost;
        if candidate_cost < !best_cost then begin
          best := (Array.copy a', Array.copy p');
          best_cost := candidate_cost
        end
      end
    done;
    temperature := !temperature *. params.cooling
  done;
  Metricsreg.add m_moves !tried;
  {
    schedule = decode_state !best;
    cost = !best_cost;
    moves_tried = !tried;
    moves_accepted = !accepted;
  }

(* Seed state: the baseline ASP's own mapping and start-time order. *)
let baseline_schedule ~graph ~lib ~pes =
  List_sched.run ~graph ~lib ~pes ~policy:Policy.Baseline ()

let run ?(params = default_params) ~seed ~objective ~graph ~lib ~pes () =
  check_params params;
  let baseline = baseline_schedule ~graph ~lib ~pes in
  anneal ~params ~rng:(Rng.create seed) ~objective ~graph ~lib ~pes ~baseline

type restarts_result = {
  best : result;
  best_restart : int;
  restart_costs : float array;
}

let run_restarts ?(params = default_params) ?pool ?(restarts = 4) ~seed
    ~objective ~graph ~lib ~pes () =
  check_params params;
  if restarts < 1 then invalid_arg "Sa_mapper.run_restarts: need >= 1 restart";
  Trace.with_span "sa_mapper.restarts"
    ~args:[ ("restarts", Trace.Int restarts) ]
  @@ fun () ->
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let baseline = baseline_schedule ~graph ~lib ~pes in
  (* Restart 0 replays [run ~seed] exactly; restart i > 0 anneals with the
     derived generator for (seed, i). Chains are fully independent, so they
     fan out as pool tasks; the thermal facade of [Peak_temperature] is
     thread-safe and its cache value-exact, so shared use stays
     deterministic. *)
  (match objective with
  | Peak_temperature h -> ignore (Hotspot.inquiry h)
  | Makespan -> ());
  let results =
    Pool.parallel_mapi ~chunk:1 pool
      (fun i () ->
        let rng = if i = 0 then Rng.create seed else Rng.derive seed i in
        anneal ~params ~rng ~objective ~graph ~lib ~pes ~baseline)
      (Array.make restarts ())
  in
  let best_restart = ref 0 in
  Array.iteri
    (fun i (r : result) ->
      if r.cost < results.(!best_restart).cost then best_restart := i)
    results;
  {
    best = results.(!best_restart);
    best_restart = !best_restart;
    restart_costs = Array.map (fun (r : result) -> r.cost) results;
  }
