module Task = Tats_taskgraph.Task
module Graph = Tats_taskgraph.Graph
module Criticality = Tats_taskgraph.Criticality
module Library = Tats_techlib.Library
module Comm = Tats_techlib.Comm

let static_criticality lib g =
  let node_weight (task : Task.t) = Library.wcet_avg lib ~task_type:task.Task.task_type in
  let comm = Library.comm lib in
  let edge_weight ({ Graph.data; _ } : Graph.edge) =
    (* Mapping is unknown at SC time; average the same-PE (free) and
       cross-PE (bus) cases. *)
    Comm.delay comm ~data ~same_pe:false /. 2.0
  in
  Criticality.compute ~edge_weight ~node_weight g

let cost_task_power lib ~task_type ~kind =
  Library.wcpc lib ~task_type ~kind /. Library.max_wcpc lib

let cost_pe_average_power lib ~pe_energy ~task_energy ~finish =
  if finish <= 0.0 then 0.0
  else (pe_energy +. task_energy) /. finish /. Library.max_wcpc lib

let cost_task_energy lib ~task_type ~kind =
  Library.energy lib ~task_type ~kind /. Library.max_energy lib

let cost_temperature ~ambient ~avg_temp = (avg_temp -. ambient) /. 100.0

(* The paper's thermal inquiry, served by the influence-matrix engine: the
   cumulating power of every PE (the per-step [base]) plus the consuming
   power the candidate task would incur on the candidate PE. Leakage
   coupling matters here — in a purely linear network the average
   temperature is nearly independent of which PE receives the task, and
   the inquiry could not discriminate. *)
let cost_thermal ~engine ~base ~idle ~finish ~pe ~task_power =
  let horizon = Float.max finish 1e-9 in
  let temps =
    Tats_thermal.Inquiry.query_delta engine ~base ~horizon ~pe
      ~extra:task_power ~idle
  in
  cost_temperature
    ~ambient:(Tats_thermal.Inquiry.package engine).Tats_thermal.Package.ambient
    ~avg_temp:(Tats_util.Stats.mean temps)

let value ~sc ~wcet ~start ~cost ~weight = sc -. wcet -. start -. (weight *. cost)
