(** Schedule metrics: the three columns of the paper's tables plus
    supporting detail.

    "Total Pow." is the design's average power draw while it runs (task
    energy + bus energy, divided by the makespan) — the definition under
    which the paper's thermal-aware rows draw {e less} power than the
    power-aware ones: stretching the schedule toward the deadline lowers
    the average draw. Temperatures are
    steady-state HotSpot block temperatures under each PE's average power
    (its task energy over the makespan, plus its idle floor); Max/Avg Temp
    are the maximum and mean over PEs. *)

module Library = Tats_techlib.Library
module Hotspot = Tats_thermal.Hotspot

val pe_energies : Schedule.t -> float array
(** Task energy committed to each PE instance. *)

val total_task_energy : Schedule.t -> float
val total_comm_energy : Schedule.t -> lib:Library.t -> float
(** Bus energy of all cross-PE edges. *)

val total_power : Schedule.t -> lib:Library.t -> float
(** (task energy + comm energy) / makespan — the tables' "Total Pow.". *)

val pe_average_powers : Schedule.t -> float array
(** Per PE: task energy / makespan + idle power, W. *)

val utilizations : Schedule.t -> float array
(** Per PE: busy time / makespan, in [0, 1]. *)

val utilization_spread : Schedule.t -> float
(** max - min utilization: the "workload balance" the paper credits the
    thermal ASP with improving. *)

type thermal_report = {
  pe_powers : float array;   (** W per PE, as passed to HotSpot *)
  block_temps : float array; (** °C per PE *)
  max_temp : float;
  avg_temp : float;
}

val thermal_report : ?leakage:bool -> Schedule.t -> hotspot:Hotspot.t -> thermal_report
(** [leakage] (default true) couples idle power to temperature through the
    leakage fixed point; when false, idle power enters at its nominal
    value. *)

type row = { total_power : float; max_temp : float; avg_temp : float }
(** One table cell group, as printed in the paper. *)

val row : ?leakage:bool -> Schedule.t -> lib:Library.t -> hotspot:Hotspot.t -> row
val pp_row : Format.formatter -> row -> unit

val power_profile :
  Schedule.t -> lib:Library.t -> time:float -> float array
(** Instantaneous per-PE power at schedule time [time]: WCPC of whatever
    runs on each PE at that moment plus its idle floor. The basis for
    transient thermal replay. *)

val transient_peak :
  Schedule.t ->
  lib:Library.t ->
  hotspot:Hotspot.t ->
  ?time_unit:float ->
  ?periods:int ->
  ?dt:float ->
  unit ->
  float array
(** Replays the schedule's power profile periodically through the
    event-driven transient engine ({!Replay.of_schedule} breakpoints, the
    propagator fast path) and returns the per-PE peak transient
    temperature over the last period (after warm-up). [time_unit] maps one
    schedule time unit to seconds (default 1e-3), [periods] defaults to
    50, [dt] to one hundredth of the period. *)

val makespan_lower_bound :
  Tats_taskgraph.Graph.t -> lib:Library.t -> n_pes:int -> float
(** A schedule-independent lower bound on any makespan over [n_pes]
    instances drawn from [lib]: the max of the critical path with
    best-case (fastest-kind) WCETs and the total best-case work divided by
    [n_pes]. Every valid schedule's makespan is at least this (property
    tested). *)

val idle_energy : Schedule.t -> float
(** Energy the idle floors burn over the makespan on top of task energy:
    sum over PEs of idle_power x (makespan - busy time). *)

val power_gating_saving : Schedule.t -> break_even:float -> float
(** Idle energy recoverable by gating: the idle-floor energy of every
    per-PE gap (including the leading gap and the tail to the makespan)
    longer than [break_even] time units. Always <= {!idle_energy}. *)
